package repro

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/deque"
	"repro/internal/queue"
	"repro/internal/set"
	"repro/internal/stack"
)

// The backend catalog: one descriptor per exported backend, carrying
// the metadata the README table quotes and the constructor closures
// the harnesses consume. internal/bench, cmd/lincheck, and the
// lockstep fuzzers iterate Catalog() instead of keeping their own
// backend lists, so a backend's name is written exactly once — here.

// Object kinds, the values of Backend.Kind.
const (
	KindStack = "stack"
	KindQueue = "queue"
	KindDeque = "deque"
	KindSet   = "set"
)

// Catalog names, one constant per exported backend. The string after
// the kind prefix is also accepted bare by the options constructors
// (NewStackBackend("treiber") == NewStackBackend("stack/treiber")).
const (
	nameStackSensitive     = "stack/sensitive"
	nameStackAbortable     = "stack/abortable"
	nameStackNonBlocking   = "stack/non-blocking"
	nameStackTreiber       = "stack/treiber"
	nameStackElimination   = "stack/elimination"
	nameStackCombining     = "stack/combining"
	nameStackTreiberPooled = "stack/treiber-pooled"
	nameStackCombiningPool = "stack/combining-pooled"
	nameQueueSensitive     = "queue/sensitive"
	nameQueueAbortable     = "queue/abortable"
	nameQueueNonBlocking   = "queue/non-blocking"
	nameQueueCombining     = "queue/combining"
	nameQueueSharded       = "queue/sharded"
	nameQueueMSPooled      = "queue/michael-scott-pooled"
	nameQueueCombiningPool = "queue/combining-pooled"
	nameDequeSensitive     = "deque/sensitive"
	nameDequeAbortable     = "deque/abortable"
	nameDequeNonBlocking   = "deque/non-blocking"
	nameStackAdaptive      = "stack/adaptive"
	nameQueueAdaptive      = "queue/adaptive"
	nameSetSensitive       = "set/sensitive"
	nameSetAbortable       = "set/abortable"
	nameSetNonBlocking     = "set/non-blocking"
	nameSetCombining       = "set/combining"
	nameSetHarris          = "set/harris"
	nameSetHash            = "set/hashset"
	nameSetAdaptive        = "set/adaptive"
)

// Ops is a uniform op-indexed driver over one backend instance: Do
// executes op code op (see below) with value v on behalf of pid and
// returns the popped/dequeued value (or 1/0 for set booleans) plus
// the backend's error. Op codes per kind:
//
//	stack, queue:  0 push/enqueue(v), 1 pop/dequeue
//	deque:         0 pushL(v), 1 pushR(v), 2 popL, 3 popR
//	set:           0 add(v), 1 remove(v), 2 contains(v)
//
// N is the number of op codes the kind has.
//
// Abandon and ArmCrash are the fault-injection seams, non-nil exactly
// when the backend supports them (the flat-combining family). Abandon
// publishes op (an update op code; reads have nothing to abandon)
// without waiting — the §5 model of a process crashing mid-operation,
// leaving a pending request a combiner may or may not serve; the pid
// must never operate on the instance again. ArmCrash arms a one-shot
// combiner crash: pid's next combining pass dies after `after` slot
// applications with the lease held (see combine.Core.ArmCombinerCrash).
type Ops struct {
	N        int
	Do       func(pid, op int, v uint64) (uint64, error)
	Abandon  func(pid, op int, v uint64) bool
	ArmCrash func(pid, after int) bool

	// Instance is the capability-interface value Do drives (Drive
	// fills it; Direct builders may leave it nil). Harnesses that need
	// an optional extension — an adaptive backend's migration stats,
	// a pool's reuse counters — reach it through repro.Unwrap or
	// repro.AdaptiveStatsOf instead of rebuilding the instance.
	Instance any
}

// Backend describes one catalog entry. The string fields mirror the
// README backend-catalog table (TestCatalogMatchesReadme keeps the
// two in lockstep); the closures build fresh instances.
type Backend struct {
	// Name is the catalog identifier, "<kind>/<variant>".
	Name string
	// Kind is the object kind: KindStack, KindQueue, KindDeque, KindSet.
	Kind string
	// Constructor is the legacy concrete-type constructor, as the
	// README table quotes it (e.g. "NewStack[T](k, n)").
	Constructor string
	// Object is the one-line object description.
	Object string
	// Tier places the backend on the ladder: "paper" (Figures 1-3),
	// "baseline" (classic lock-free), "scaling" (combining/sharded),
	// "allocation" (pooled recycled nodes), "hash" (split-ordered),
	// "adaptive" (contention-adaptive meta-backends morphing between
	// the other tiers' rungs).
	Tier string
	// Progress is the liveness guarantee, as prose ("lock-free",
	// "starvation-free", "abortable", qualified where mixed).
	Progress string
	// Domain is the element domain: "generic" ([T any]), "uint64", or
	// "uint32".
	Domain string
	// Allocation is the allocation profile ("boxed", "pooled, 0
	// allocs/op", "packed words", "COW boxed", ...).
	Allocation string
	// Experiments lists the experiment ids that cover this backend.
	Experiments []string
	// Robustness classifies the backend's §5 crash tolerance, measured
	// by experiment E22 and quoted by the README table:
	//
	//	"survivor-safe":  lock-free (or single-attempt weak) operations;
	//	                  a crashed process never blocks the survivors.
	//	"lease-takeover": flat combining; a crashed combiner is deposed
	//	                  by a waiter after the heartbeat lease budget
	//	                  and pending requests are re-served.
	//	"lock-vulnerable": Figure 3 lock fallback; a process that
	//	                  crashes inside the critical section wedges
	//	                  every later slow-path operation.
	Robustness string
	// Weak marks Figure 1 backends: uniform operations are single
	// attempts that may return the kind's abort sentinel.
	Weak bool
	// Bounded marks backends with a capacity bound (WithCapacity).
	Bounded bool
	// LinOpts are options a history checker must apply for the
	// backend's global behavior to match the sequential model (the
	// sharded queue is FIFO only when pinned to one stripe); LinNote
	// names the restriction in reports.
	LinOpts []Option
	LinNote string

	// Exactly one of the following four is non-nil, matching Kind: it
	// builds a fresh instance behind the kind's capability interface,
	// instantiated at the uniform measurement domain (uint64 values;
	// uint32 for deques).
	Stack func(opts ...Option) StackAPI[uint64]
	Queue func(opts ...Option) QueueAPI[uint64]
	Deque func(opts ...Option) DequeAPI
	Set   func(opts ...Option) SetAPI

	// Direct builds a fresh instance and returns closures over the
	// concrete type's own methods — no adapter, no interface
	// dispatch. Experiment E20 measures Drive (the interface path)
	// against this baseline.
	Direct func(opts ...Option) Ops
}

// Drive builds a fresh instance of b behind its capability interface
// and wraps it in the uniform Ops driver — the unified-dispatch path
// (compare Backend.Direct). Values are truncated to the backend's
// domain where it is narrower than uint64.
func Drive(b Backend, opts ...Option) Ops {
	o := applyOptions(opts)
	switch b.Kind {
	case KindStack:
		s := b.Stack(opts...)
		applyRetryPolicy(s, o)
		ops := Ops{N: 2, Instance: s, Do: func(pid, op int, v uint64) (uint64, error) {
			if op == 0 {
				return 0, s.Push(pid, v)
			}
			return s.Pop(pid)
		}}
		if c, ok := Unwrap(s).(interface {
			AbandonPush(pid int, v uint64)
			AbandonPop(pid int)
		}); ok {
			ops.Abandon = func(pid, op int, v uint64) bool {
				if op == 0 {
					c.AbandonPush(pid, v)
				} else {
					c.AbandonPop(pid)
				}
				return true
			}
		}
		armCrash(&ops, s)
		return ops
	case KindQueue:
		q := b.Queue(opts...)
		applyRetryPolicy(q, o)
		ops := Ops{N: 2, Instance: q, Do: func(pid, op int, v uint64) (uint64, error) {
			if op == 0 {
				return 0, q.Enqueue(pid, v)
			}
			return q.Dequeue(pid)
		}}
		if c, ok := Unwrap(q).(interface {
			AbandonEnqueue(pid int, v uint64)
			AbandonDequeue(pid int)
		}); ok {
			ops.Abandon = func(pid, op int, v uint64) bool {
				if op == 0 {
					c.AbandonEnqueue(pid, v)
				} else {
					c.AbandonDequeue(pid)
				}
				return true
			}
		}
		armCrash(&ops, q)
		return ops
	case KindDeque:
		d := b.Deque(opts...)
		applyRetryPolicy(d, o)
		return Ops{N: 4, Instance: d, Do: func(pid, op int, v uint64) (uint64, error) {
			switch op {
			case 0:
				return 0, d.PushLeft(pid, uint32(v))
			case 1:
				return 0, d.PushRight(pid, uint32(v))
			case 2:
				got, err := d.PopLeft(pid)
				return uint64(got), err
			default:
				got, err := d.PopRight(pid)
				return uint64(got), err
			}
		}}
	default: // KindSet
		s := b.Set(opts...)
		applyRetryPolicy(s, o)
		ops := Ops{N: 3, Instance: s, Do: func(pid, op int, v uint64) (uint64, error) {
			var got bool
			var err error
			switch op {
			case 0:
				got, err = s.Add(pid, v)
			case 1:
				got, err = s.Remove(pid, v)
			default:
				got, err = s.Contains(pid, v)
			}
			return boolOp(got, err)
		}}
		if c, ok := Unwrap(s).(interface {
			AbandonAdd(pid int, k uint64)
			AbandonRemove(pid int, k uint64)
		}); ok {
			ops.Abandon = func(pid, op int, v uint64) bool {
				switch op {
				case 0:
					c.AbandonAdd(pid, v)
				case 1:
					c.AbandonRemove(pid, v)
				default:
					return false // reads have nothing to abandon
				}
				return true
			}
		}
		armCrash(&ops, s)
		return ops
	}
}

// armCrash wires Ops.ArmCrash when the backend underneath exposes the
// combiner fault injection.
func armCrash(ops *Ops, x any) {
	if c, ok := Unwrap(x).(interface {
		ArmCombinerCrash(pid, after int) bool
	}); ok {
		ops.ArmCrash = c.ArmCombinerCrash
	}
}

// boolOp folds a set operation's boolean into the Ops value domain.
func boolOp(got bool, err error) (uint64, error) {
	if got {
		return 1, err
	}
	return 0, err
}

// Catalog returns a descriptor for every exported backend, in ladder
// order within each kind. The slice is freshly allocated; the
// closures are shared and safe for concurrent use (each call builds
// a fresh backend instance).
func Catalog() []Backend {
	return append(append(append(stackCatalog(), queueCatalog()...), dequeCatalog()...), setCatalog()...)
}

// CatalogByKind returns the catalog entries of one kind.
func CatalogByKind(kind string) []Backend {
	var out []Backend
	for _, b := range Catalog() {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func stackCatalog() []Backend {
	return []Backend{
		{
			Name: nameStackAbortable, Kind: KindStack,
			Constructor: "NewAbortableStack[T](k)",
			Object:      "weak bounded stack, Figure 1",
			Tier:        "paper", Progress: "abortable", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E1", "E2", "E3", "E8", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Weak:        true, Bounded: true,
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return liftWeakStack[uint64](stack.NewAbortable[uint64](o.capacity))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewAbortable[uint64](o.capacity)
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.TryPush(v)
					}
					return s.TryPop()
				}}
			},
		},
		{
			Name: nameStackNonBlocking, Kind: KindStack,
			Constructor: "NewNonBlockingStack[T](k)",
			Object:      "bounded stack, Figure 2",
			Tier:        "paper", Progress: "lock-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E3", "E5", "E7", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Bounded:     true,
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return liftStack[uint64](stack.NewNonBlocking[uint64](o.capacity))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewNonBlocking[uint64](o.capacity)
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(v)
					}
					return s.Pop()
				}}
			},
		},
		{
			Name: nameStackSensitive, Kind: KindStack,
			Constructor: "NewStack[T](k, n)",
			Object:      "bounded stack, Figure 3",
			Tier:        "paper", Progress: "starvation-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E1", "E4", "E5", "E6", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "lock-vulnerable",
			Bounded:     true,
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return stack.NewSensitive[uint64](o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewSensitive[uint64](o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}}
			},
		},
		{
			Name: nameStackTreiber, Kind: KindStack,
			Constructor: "NewTreiberStack[T]()",
			Object:      "unbounded stack",
			Tier:        "baseline", Progress: "lock-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E5", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Stack: func(opts ...Option) StackAPI[uint64] {
				return liftStack[uint64](stack.NewTreiber[uint64]())
			},
			Direct: func(opts ...Option) Ops {
				s := stack.NewTreiber[uint64]()
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(v)
					}
					return s.Pop()
				}}
			},
		},
		{
			Name: nameStackElimination, Kind: KindStack,
			Constructor: "NewEliminationStack[T](width)",
			Object:      "unbounded stack + exchanger",
			Tier:        "baseline", Progress: "lock-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E5", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return liftStack[uint64](stack.NewElimination[uint64](o.width))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewElimination[uint64](o.width)
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(v)
					}
					return s.Pop()
				}}
			},
		},
		{
			Name: nameStackCombining, Kind: KindStack,
			Constructor: "NewCombiningStack[T](k, n)",
			Object:      "bounded stack, flat combining",
			Tier:        "scaling", Progress: "starvation-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E5", "E11", "E15", "E17", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Bounded:     true,
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return stack.NewCombining[uint64](o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewCombining[uint64](o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}}
			},
		},
		{
			Name: nameStackTreiberPooled, Kind: KindStack,
			Constructor: "NewPooledStack(n)",
			Object:      "unbounded Treiber stack",
			Tier:        "allocation", Progress: "lock-free", Domain: "uint64", Allocation: "pooled, 0 allocs/op",
			Experiments: []string{"E5", "E8", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return stack.NewTreiberPooled(o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewTreiberPooled(o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}}
			},
		},
		{
			Name: nameStackCombiningPool, Kind: KindStack,
			Constructor: "NewCombiningPooledStack(k, n)",
			Object:      "bounded stack, flat combining",
			Tier:        "scaling", Progress: "starvation-free", Domain: "uint64", Allocation: "pooled, 0 allocs/op",
			Experiments: []string{"E5", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Bounded:     true,
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return stack.NewCombiningPooled(o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := stack.NewCombiningPooled(o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}}
			},
		},
		{
			Name: nameStackAdaptive, Kind: KindStack,
			Constructor: "NewAdaptiveStack[T](k, n)",
			Object:      "contention-adaptive stack, sensitive-combining ladder",
			Tier:        "adaptive", Progress: "starvation-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E5", "E11", "E17", "E20", "E21", "E22", "E23"},
			Robustness:  "lock-vulnerable",
			Bounded:     true,
			LinOpts:     []Option{WithThresholds(adaptive.ForcingThresholds())},
			LinNote:     "forced morphs",
			Stack: func(opts ...Option) StackAPI[uint64] {
				o := applyOptions(opts)
				return adaptive.NewStack[uint64](o.capacity, o.procs, o.thr())
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := adaptive.NewStack[uint64](o.capacity, o.procs, o.thr())
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}}
			},
		},
	}
}

func queueCatalog() []Backend {
	return []Backend{
		{
			Name: nameQueueAbortable, Kind: KindQueue,
			Constructor: "NewAbortableQueue[T](k)",
			Object:      "weak bounded FIFO queue, Figure 1",
			Tier:        "paper", Progress: "abortable", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Weak:        true, Bounded: true,
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return liftWeakQueue[uint64](queue.NewAbortable[uint64](o.capacity))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewAbortable[uint64](o.capacity)
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.TryEnqueue(v)
					}
					return q.TryDequeue()
				}}
			},
		},
		{
			Name: nameQueueNonBlocking, Kind: KindQueue,
			Constructor: "NewNonBlockingQueue[T](k)",
			Object:      "bounded FIFO queue, Figure 2",
			Tier:        "paper", Progress: "lock-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Bounded:     true,
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return liftQueue[uint64](queue.NewNonBlocking[uint64](o.capacity))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewNonBlocking[uint64](o.capacity)
				return Ops{N: 2, Do: func(_, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(v)
					}
					return q.Dequeue()
				}}
			},
		},
		{
			Name: nameQueueSensitive, Kind: KindQueue,
			Constructor: "NewQueue[T](k, n)",
			Object:      "bounded FIFO queue, Figure 3",
			Tier:        "paper", Progress: "starvation-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E16", "E17", "E20", "E21", "E22"},
			Robustness:  "lock-vulnerable",
			Bounded:     true,
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return queue.NewSensitive[uint64](o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewSensitive[uint64](o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(pid, v)
					}
					return q.Dequeue(pid)
				}}
			},
		},
		{
			Name: nameQueueCombining, Kind: KindQueue,
			Constructor: "NewCombiningQueue[T](k, n)",
			Object:      "bounded FIFO queue, flat combining",
			Tier:        "scaling", Progress: "starvation-free", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Bounded:     true,
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return queue.NewCombining[uint64](o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewCombining[uint64](o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(pid, v)
					}
					return q.Dequeue(pid)
				}}
			},
		},
		{
			Name: nameQueueSharded, Kind: KindQueue,
			Constructor: "NewShardedQueue[T](k, n, shards)",
			Object:      "pid-striped queue, per-shard FIFO",
			Tier:        "scaling", Progress: "starvation-free, relaxed cross-shard order", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E16", "E17", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Bounded:     true,
			LinOpts:     []Option{WithShards(1)},
			LinNote:     "K=1",
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return queue.NewSharded[uint64](o.capacity, o.procs, o.shards)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewSharded[uint64](o.capacity, o.procs, o.shards)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(pid, v)
					}
					return q.Dequeue(pid)
				}}
			},
		},
		{
			Name: nameQueueMSPooled, Kind: KindQueue,
			Constructor: "NewPooledQueue(n)",
			Object:      "unbounded Michael-Scott queue",
			Tier:        "allocation", Progress: "lock-free", Domain: "uint64", Allocation: "pooled, 0 allocs/op",
			Experiments: []string{"E8", "E9", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return msPooledQueue{queue.NewMichaelScottPooled(o.procs)}
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewMichaelScottPooled(o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						q.Enqueue(pid, v)
						return 0, nil
					}
					return q.Dequeue(pid)
				}}
			},
		},
		{
			Name: nameQueueCombiningPool, Kind: KindQueue,
			Constructor: "NewCombiningPooledQueue(k, n)",
			Object:      "bounded FIFO queue, flat combining",
			Tier:        "scaling", Progress: "starvation-free", Domain: "uint64", Allocation: "pooled in-place ring, 0 allocs/op",
			Experiments: []string{"E9", "E11", "E17", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Bounded:     true,
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return queue.NewCombiningPooled(o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := queue.NewCombiningPooled(o.capacity, o.procs)
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(pid, v)
					}
					return q.Dequeue(pid)
				}}
			},
		},
		{
			Name: nameQueueAdaptive, Kind: KindQueue,
			Constructor: "NewAdaptiveQueue[T](k, n, shards)",
			Object:      "contention-adaptive queue, sensitive-combining-sharded ladder",
			Tier:        "adaptive", Progress: "starvation-free, relaxed cross-shard order on the top rung", Domain: "generic", Allocation: "boxed",
			Experiments: []string{"E9", "E11", "E17", "E20", "E21", "E22", "E23"},
			Robustness:  "lock-vulnerable",
			Bounded:     true,
			LinOpts:     []Option{WithShards(1), WithThresholds(adaptive.ForcingThresholds())},
			LinNote:     "K=1, forced morphs",
			Queue: func(opts ...Option) QueueAPI[uint64] {
				o := applyOptions(opts)
				return adaptive.NewQueue[uint64](o.capacity, o.procs, o.shards, o.thr())
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				q := adaptive.NewQueue[uint64](o.capacity, o.procs, o.shards, o.thr())
				return Ops{N: 2, Do: func(pid, op int, v uint64) (uint64, error) {
					if op == 0 {
						return 0, q.Enqueue(pid, v)
					}
					return q.Dequeue(pid)
				}}
			},
		},
	}
}

func dequeCatalog() []Backend {
	return []Backend{
		{
			Name: nameDequeAbortable, Kind: KindDeque,
			Constructor: "NewAbortableDeque(k)",
			Object:      "weak HLM deque",
			Tier:        "paper", Progress: "abortable", Domain: "uint32", Allocation: "packed words",
			Experiments: []string{"E14", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Weak:        true, Bounded: true,
			Deque: func(opts ...Option) DequeAPI {
				o := applyOptions(opts)
				return weakDeque[*deque.Abortable]{deque.NewAbortable(o.capacity)}
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				d := deque.NewAbortable(o.capacity)
				return Ops{N: 4, Do: func(_, op int, v uint64) (uint64, error) {
					switch op {
					case 0:
						return 0, d.TryPushLeft(uint32(v))
					case 1:
						return 0, d.TryPushRight(uint32(v))
					case 2:
						got, err := d.TryPopLeft()
						return uint64(got), err
					default:
						got, err := d.TryPopRight()
						return uint64(got), err
					}
				}}
			},
		},
		{
			Name: nameDequeNonBlocking, Kind: KindDeque,
			Constructor: "NewNonBlockingDeque(k)",
			Object:      "HLM deque, Figure 2",
			Tier:        "paper", Progress: "lock-free", Domain: "uint32", Allocation: "packed words",
			Experiments: []string{"E14", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Bounded:     true,
			Deque: func(opts ...Option) DequeAPI {
				o := applyOptions(opts)
				return pidlessDeque[*deque.NonBlocking]{deque.NewNonBlocking(o.capacity)}
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				d := deque.NewNonBlocking(o.capacity)
				return Ops{N: 4, Do: func(_, op int, v uint64) (uint64, error) {
					switch op {
					case 0:
						return 0, d.PushLeft(uint32(v))
					case 1:
						return 0, d.PushRight(uint32(v))
					case 2:
						got, err := d.PopLeft()
						return uint64(got), err
					default:
						got, err := d.PopRight()
						return uint64(got), err
					}
				}}
			},
		},
		{
			Name: nameDequeSensitive, Kind: KindDeque,
			Constructor: "NewDeque(k, n)",
			Object:      "bounded HLM deque, Figure 3",
			Tier:        "paper", Progress: "starvation-free", Domain: "uint32", Allocation: "packed words",
			Experiments: []string{"E14", "E20", "E21", "E22"},
			Robustness:  "lock-vulnerable",
			Bounded:     true,
			Deque: func(opts ...Option) DequeAPI {
				o := applyOptions(opts)
				return deque.NewSensitive(o.capacity, o.procs)
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				d := deque.NewSensitive(o.capacity, o.procs)
				return Ops{N: 4, Do: func(pid, op int, v uint64) (uint64, error) {
					switch op {
					case 0:
						return 0, d.PushLeft(pid, uint32(v))
					case 1:
						return 0, d.PushRight(pid, uint32(v))
					case 2:
						got, err := d.PopLeft(pid)
						return uint64(got), err
					default:
						got, err := d.PopRight(pid)
						return uint64(got), err
					}
				}}
			},
		},
	}
}

func setCatalog() []Backend {
	return []Backend{
		{
			Name: nameSetAbortable, Kind: KindSet,
			Constructor: "NewAbortableSet()",
			Object:      "weak sorted set",
			Tier:        "paper", Progress: "abortable updates, wait-free Contains", Domain: "uint64", Allocation: "COW boxed",
			Experiments: []string{"E11", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Weak:        true,
			Set: func(opts ...Option) SetAPI {
				return weakSet{set.NewAbortable()}
			},
			Direct: func(opts ...Option) Ops {
				s := set.NewAbortable()
				return Ops{N: 3, Do: func(_, op int, v uint64) (uint64, error) {
					switch op {
					case 0:
						return boolOp(s.TryAdd(v))
					case 1:
						return boolOp(s.TryRemove(v))
					default:
						return boolOp(s.TryContains(v))
					}
				}}
			},
		},
		{
			Name: nameSetNonBlocking, Kind: KindSet,
			Constructor: "NewNonBlockingSet()",
			Object:      "sorted set, Figure 2",
			Tier:        "paper", Progress: "lock-free updates, wait-free Contains", Domain: "uint64", Allocation: "COW boxed",
			Experiments: []string{"E11", "E18", "E19", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Set: func(opts ...Option) SetAPI {
				return liftSet(set.NewNonBlocking())
			},
			Direct: func(opts ...Option) Ops {
				s := set.NewNonBlocking()
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
		{
			Name: nameSetSensitive, Kind: KindSet,
			Constructor: "NewSet(n)",
			Object:      "sorted set, Figure 3",
			Tier:        "paper", Progress: "starvation-free updates, wait-free Contains", Domain: "uint64", Allocation: "COW boxed",
			Experiments: []string{"E11", "E18", "E20", "E21", "E22"},
			Robustness:  "lock-vulnerable",
			Set: func(opts ...Option) SetAPI {
				o := applyOptions(opts)
				return liftSet(set.NewSensitive(o.procs))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := set.NewSensitive(o.procs)
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
		{
			Name: nameSetCombining, Kind: KindSet,
			Constructor: "NewCombiningSet(n)",
			Object:      "sorted set, flat combining",
			Tier:        "scaling", Progress: "starvation-free", Domain: "uint64", Allocation: "COW boxed",
			Experiments: []string{"E11", "E18", "E20", "E21", "E22"},
			Robustness:  "lease-takeover",
			Set: func(opts ...Option) SetAPI {
				o := applyOptions(opts)
				return liftSet(set.NewCombining(o.procs))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := set.NewCombining(o.procs)
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
		{
			Name: nameSetHarris, Kind: KindSet,
			Constructor: "NewLockFreeSet(n)",
			Object:      "Harris/Michael list-based set",
			Tier:        "allocation", Progress: "lock-free", Domain: "uint64", Allocation: "pooled",
			Experiments: []string{"E11", "E18", "E19", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Set: func(opts ...Option) SetAPI {
				o := applyOptions(opts)
				return liftSet(set.NewHarris(o.procs))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := set.NewHarris(o.procs)
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
		{
			Name: nameSetHash, Kind: KindSet,
			Constructor: "NewHashSet(n)",
			Object:      "split-ordered hash set (keys < 2^63)",
			Tier:        "hash", Progress: "lock-free", Domain: "uint64", Allocation: "pooled + shortcut words",
			Experiments: []string{"E11", "E18", "E19", "E20", "E21", "E22"},
			Robustness:  "survivor-safe",
			Set: func(opts ...Option) SetAPI {
				o := applyOptions(opts)
				return liftSet(set.NewHash(o.procs))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := set.NewHash(o.procs)
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
		{
			Name: nameSetAdaptive, Kind: KindSet,
			Constructor: "NewAdaptiveSet(n)",
			Object:      "contention-adaptive set, cow-harris-hash ladder (keys < 2^63)",
			Tier:        "adaptive", Progress: "non-blocking updates, wait-free reads on the cow rung", Domain: "uint64", Allocation: "rung-dependent",
			Experiments: []string{"E11", "E18", "E20", "E21", "E22", "E23"},
			Robustness:  "survivor-safe",
			LinOpts:     []Option{WithThresholds(adaptive.ForcingThresholds())},
			LinNote:     "forced morphs",
			Set: func(opts ...Option) SetAPI {
				o := applyOptions(opts)
				return liftSet(adaptive.NewSet(o.procs, o.thr()))
			},
			Direct: func(opts ...Option) Ops {
				o := applyOptions(opts)
				s := adaptive.NewSet(o.procs, o.thr())
				return setDirect(s.Add, s.Remove, s.Contains)
			},
		},
	}
}

// setDirect builds the direct-call Ops driver from a strong set's
// bound methods.
func setDirect(add, remove, contains func(int, uint64) bool) Ops {
	return Ops{N: 3, Do: func(pid, op int, v uint64) (uint64, error) {
		switch op {
		case 0:
			return boolOp(add(pid, v), nil)
		case 1:
			return boolOp(remove(pid, v), nil)
		default:
			return boolOp(contains(pid, v), nil)
		}
	}}
}

// find resolves a backend name of the given kind, accepting both the
// full catalog name ("stack/treiber") and the bare variant
// ("treiber"), and applies the WithPooled redirection.
func find(kind, name string, opts []Option) (Backend, options, error) {
	o := applyOptions(opts)
	if !strings.Contains(name, "/") {
		name = kind + "/" + name
	}
	entries := CatalogByKind(kind)
	lookup := func(n string) (Backend, bool) {
		for _, b := range entries {
			if b.Name == n {
				return b, true
			}
		}
		return Backend{}, false
	}
	b, ok := lookup(name)
	if !ok {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name)
		}
		return Backend{}, o, fmt.Errorf("repro: unknown %s backend %q (catalog: %s)",
			kind, name, strings.Join(names, ", "))
	}
	if o.pooled && !strings.Contains(b.Allocation, "pooled") {
		p, ok := lookup(b.Name + "-pooled")
		if !ok {
			return Backend{}, o, fmt.Errorf("repro: backend %s has no pooled sibling", b.Name)
		}
		b = p
	}
	if o.adaptive && b.Tier != "adaptive" {
		a, ok := lookup(kind + "/adaptive")
		if !ok {
			return Backend{}, o, fmt.Errorf("repro: the %s kind has no adaptive meta-backend", kind)
		}
		b = a
	}
	return b, o, nil
}

// genericStack instantiates a generic-domain stack backend at T. It
// lives next to the catalog literals so each backend's construction
// is written only in this file.
func genericStack[T any](name string, o options) (StackAPI[T], bool) {
	switch name {
	case nameStackSensitive:
		return stack.NewSensitive[T](o.capacity, o.procs), true
	case nameStackAbortable:
		return liftWeakStack[T](stack.NewAbortable[T](o.capacity)), true
	case nameStackNonBlocking:
		return liftStack[T](stack.NewNonBlocking[T](o.capacity)), true
	case nameStackTreiber:
		return liftStack[T](stack.NewTreiber[T]()), true
	case nameStackElimination:
		return liftStack[T](stack.NewElimination[T](o.width)), true
	case nameStackCombining:
		return stack.NewCombining[T](o.capacity, o.procs), true
	case nameStackAdaptive:
		return adaptive.NewStack[T](o.capacity, o.procs, o.thr()), true
	}
	return nil, false
}

// genericQueue is genericStack's FIFO sibling.
func genericQueue[T any](name string, o options) (QueueAPI[T], bool) {
	switch name {
	case nameQueueSensitive:
		return queue.NewSensitive[T](o.capacity, o.procs), true
	case nameQueueAbortable:
		return liftWeakQueue[T](queue.NewAbortable[T](o.capacity)), true
	case nameQueueNonBlocking:
		return liftQueue[T](queue.NewNonBlocking[T](o.capacity)), true
	case nameQueueCombining:
		return queue.NewCombining[T](o.capacity, o.procs), true
	case nameQueueSharded:
		return queue.NewSharded[T](o.capacity, o.procs, o.shards), true
	case nameQueueAdaptive:
		return adaptive.NewQueue[T](o.capacity, o.procs, o.shards, o.thr()), true
	}
	return nil, false
}

// NewStackBackend builds the named stack backend from the catalog
// behind the uniform StackAPI contract. Generic-domain backends
// instantiate at any T; the pooled tiers carry uint64 elements and
// are available exactly when T is uint64. Options: WithCapacity,
// WithProcs, WithWidth, WithPooled.
//
//	s, err := repro.NewStackBackend[string]("sensitive",
//	    repro.WithCapacity(1024), repro.WithProcs(8))
func NewStackBackend[T any](name string, opts ...Option) (StackAPI[T], error) {
	b, o, err := find(KindStack, name, opts)
	if err != nil {
		return nil, err
	}
	if s, ok := genericStack[T](b.Name, o); ok {
		applyRetryPolicy(s, o)
		return s, nil
	}
	if s, ok := any(b.Stack(opts...)).(StackAPI[T]); ok {
		applyRetryPolicy(s, o)
		return s, nil
	}
	return nil, fmt.Errorf("repro: backend %s carries %s elements; instantiate it at that type", b.Name, b.Domain)
}

// NewQueueBackend is NewStackBackend's FIFO sibling. Options:
// WithCapacity, WithProcs, WithShards, WithPooled.
func NewQueueBackend[T any](name string, opts ...Option) (QueueAPI[T], error) {
	b, o, err := find(KindQueue, name, opts)
	if err != nil {
		return nil, err
	}
	if q, ok := genericQueue[T](b.Name, o); ok {
		applyRetryPolicy(q, o)
		return q, nil
	}
	if q, ok := any(b.Queue(opts...)).(QueueAPI[T]); ok {
		applyRetryPolicy(q, o)
		return q, nil
	}
	return nil, fmt.Errorf("repro: backend %s carries %s elements; instantiate it at that type", b.Name, b.Domain)
}

// NewDequeBackend builds the named deque backend (uint32 values).
// Options: WithCapacity, WithProcs.
func NewDequeBackend(name string, opts ...Option) (DequeAPI, error) {
	b, o, err := find(KindDeque, name, opts)
	if err != nil {
		return nil, err
	}
	d := b.Deque(opts...)
	applyRetryPolicy(d, o)
	return d, nil
}

// NewSetBackend builds the named set backend (uint64 keys). Options:
// WithProcs.
func NewSetBackend(name string, opts ...Option) (SetAPI, error) {
	b, o, err := find(KindSet, name, opts)
	if err != nil {
		return nil, err
	}
	s := b.Set(opts...)
	applyRetryPolicy(s, o)
	return s, nil
}
