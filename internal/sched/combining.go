package sched

import (
	"fmt"

	lin "repro/internal/linearizability"
	"repro/internal/memory"
	"repro/internal/stack"
)

// combiningLeaseBudget is the shrunken steal budget the deterministic
// combining runs pin: a waiter that observes the (lease, heartbeat)
// pair frozen for 3 consecutive iterations presumes the combiner
// crashed and steals the lease. Small enough that a pinned schedule
// reaches the takeover in a handful of decisions, large enough that
// the waiter demonstrably tolerates a live-but-slow combiner first.
const combiningLeaseBudget = 3

// CombiningCrashBuilder builds the §5 crash run for the flat-combining
// stack: process 0 pushes 100 on the contended path (publish, acquire
// the combiner lease, serve the publication list) and is crashed by
// the run's CrashPlan at a chosen shared access — including points
// where it holds the lease mid-pass, the failure a plain combiner lock
// cannot survive. Process 1 pops on the contended path; with the
// combiner dead its only way forward is the lease takeover: observe
// the heartbeat frozen for the lease budget, CAS-steal the lease, and
// re-serve the pending slots (its own pop, and the crashed process's
// push if still pending).
//
// Check asserts the dual §5 claim: process 1 completes, and the
// history is linearizable either without the crashed push or with it
// taking effect. With assertSteal it additionally requires that the
// recovery went through an actual lease steal — pin that only on
// schedules that crash the combiner with the lease held (early crash
// points die before acquisition, so the survivor acquires a free
// lease and no steal occurs).
func CombiningCrashBuilder(assertSteal bool) Builder {
	return func(obs memory.Observer) Run {
		s := stack.NewCombiningObserved(4, 2, obs)
		s.SetLeaseBudget(combiningLeaseBudget)
		rec := lin.NewRecorder(2)
		var opCall int64
		crasher := func() {
			pend := rec.Invoke(0, "push", 100)
			opCall = pend.CallTime()
			err := s.PushContended(0, 100) // crashes inside at the planned gate
			rec.Return(pend, 0, stackOutcome(err))
			opCall = 0
		}
		survivor := func() {
			pend := rec.Invoke(1, "pop", 0)
			v, err := s.PopContended(1)
			rec.Return(pend, v, stackOutcome(err))
		}
		return Run{Ops: [][]func(){{crasher}, {survivor}}, Check: func() error {
			if assertSteal {
				if st := s.Stats(); st.Steals < 1 {
					return fmt.Errorf("recovery did not steal the lease (steals=%d)", st.Steals)
				}
			}
			h := rec.History()
			if res := lin.Check(lin.StackModel(4), h, 0); res.Ok {
				return nil // the crashed push took no effect
			}
			if opCall == 0 {
				return fmt.Errorf("completed history not linearizable: %v", h)
			}
			var maxRet int64
			for _, o := range h {
				if o.Return > maxRet {
					maxRet = o.Return
				}
			}
			h2 := append([]lin.Op{{
				Proc: 0, Call: opCall, Return: maxRet + 1,
				Kind: "push", Input: 100, Outcome: lin.OutcomeOK,
			}}, h...)
			sortOpsByCall(h2)
			if res := lin.Check(lin.StackModel(4), h2, 0); res.Ok {
				return nil // the crashed push took effect
			}
			return fmt.Errorf("history not linearizable with or without the crashed push: %v", h)
		}}
	}
}

// CombiningTakeoverSchedule returns the builder, schedule and CrashPlan
// of the canonical deterministic lease takeover (the combining sibling
// of the ABA replays): process 0 runs alone until it holds the lease
// mid-pass — it has acquired the lease, raised CONTENTION, served its
// own push, and re-read the lease for process 1's pending pop — and is
// crashed at its next access (the slot's heartbeat bump), the worst
// case: lease held, CONTENTION up, a foreign request accepted but not
// served. The remaining decisions default to process 1, whose pop can
// only complete via the takeover: it observes (lease, beat) frozen for
// the full budget, steals the lease, and re-serves its own pop — so the
// replay's Check asserts Steals >= 1 as well as linearizability.
//
// The crash gate is implementation-exact and verified by the sched
// tests: p0's contended push gates loadLease + acquire CAS +
// CONTENTION write (3), then its own slot's deposed-check load +
// heartbeat bump + the 5-access boxed weak push (7), then the pending
// pop slot's deposed-check load (1) = 11 granted accesses; it parks at
// access 12, the pop slot's heartbeat bump.
func CombiningTakeoverSchedule() (Builder, []int, CrashPlan) {
	const crashGate = 11
	sched := make([]int, crashGate)
	for i := range sched {
		sched[i] = 0
	}
	return CombiningCrashBuilder(true), sched, CrashPlan{0: crashGate}
}

// CombiningCrashGates is one past the crash-free contended-push gate
// count of CombiningCrashBuilder's process 0 (acquire + CONTENTION +
// two slot applications + CONTENTION clear + release); sweeping crashAt
// over [0, CombiningCrashGates] therefore crashes the combiner at
// every §5 step of the protocol, lease-held points included, plus the
// completed-run endpoint. Verified by the sched tests against a probe
// of the actual trace.
const CombiningCrashGates = 20

var _ memory.Observer = (*controller)(nil)
