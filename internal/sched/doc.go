// Package sched is a deterministic scheduler and stateless model
// checker for the algorithms in this repository. The paper's proofs
// (Lemmas 1-3, Theorem 1) quantify over every interleaving an
// adversarial scheduler can produce; goroutine stress tests exercise
// only a vanishing fraction of those, and Go offers no control over
// preemption. This package restores that control:
//
//   - every register constructor accepts a memory.Observer; the
//     Controller here is an observer that blocks the accessing
//     goroutine just before each shared access until the scheduler
//     grants it, turning real register accesses of the *production
//     implementation* (not a re-encoding) into scheduling points;
//   - Explore enumerates schedules depth-first with replay (stateless
//     model checking), Walk samples them randomly, and Replay runs one
//     handcrafted schedule — which is how experiment E8 exhibits the
//     exact ABA interleaving of §2.2 deterministically;
//   - each run's operations are recorded and checked against a
//     sequential model with the linearizability checker, so the oracle
//     is the paper's own safety condition.
//
// Restrictions: the scheduled code must perform a bounded number of
// shared accesses per operation (weak/abortable operations qualify;
// spinning slow paths do not), and scheduled operations must not
// synchronize with each other except through observed registers. The
// goroutine-identity bridge uses runtime.Stack parsing, which is slow
// and deliberately confined to this testing substrate.
package sched
