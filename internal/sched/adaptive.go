package sched

import (
	"fmt"

	"repro/internal/adaptive"
	lin "repro/internal/linearizability"
	"repro/internal/memory"
	"repro/internal/set"
)

// adaptiveSetBuilder wires an adaptive set, its prefill, and a
// linearizability recorder into a Run. The adaptive set's strong ops
// never abort, so every history outcome is OK; MorphTo is a control
// action, not an abstract set operation, and is kept out of the
// history.
func adaptiveSetRecordedOp(rec *lin.Recorder, s *adaptive.Set, pid int, p SetOp) func() {
	return func() {
		pend := rec.Invoke(pid, p.Kind, p.Key)
		var res bool
		switch p.Kind {
		case "add":
			res = s.Add(pid, p.Key)
		case "rem":
			res = s.Remove(pid, p.Key)
		case "has":
			res = s.Contains(pid, p.Key)
		default:
			panic("sched: unknown set op kind")
		}
		out := uint64(0)
		if res {
			out = 1
		}
		rec.Return(pend, out, lin.OutcomeOK)
	}
}

// AdaptiveMigrationSchedule returns the builder and handcrafted
// schedule that drive a full cow→harris migration of the adaptive set
// THROUGH a parked writer. Process 0 starts Add(30) on the cow rung —
// it reads the epoch record, reads the cow root (the list [10 20]),
// builds its path copy, and is preempted one step before the root CAS.
// Process 1 then runs MorphTo(harris) to completion: it opens the
// migration window with a fresh epoch record, seals the cow root (the
// seal CAS wins because the root register still holds the head p0
// read), snapshots the frozen list, builds the harris rung privately,
// and closes the window with one epoch CAS. When p0 resumes, its stale
// root CAS targets the sealed wrapper and MUST fail — were it to
// succeed, the insert would land in a structure that has already been
// snapshotted and abandoned, silently losing key 30. The failed CAS
// sends p0 back to the epoch record, where it finds the closed window
// and re-dispatches the same Add through the announce protocol onto
// the NEW harris rung. Check asserts the history linearizes, exactly
// one migration closed with none aborted, and the final harris rung
// holds {10 20 30}.
//
// Gate counts (observed accesses are the epoch record, the announce
// slots, the cow root, and — once built — the harris head and node
// next-registers; key loads and pool traffic are arena-private): p0's
// prefix is epoch read (1) + cow root read (1) = 2, parking it at the
// root CAS. p1's morph is epoch read (1) + window-open epoch CAS (1)
// + seal root read + seal root CAS (2) + snapshot root read (1) +
// the private harris rebuild from the descending snapshot — Add(20)
// on the empty list is head read (1) + node prep (2) + link CAS (1),
// Add(10) is head read (1) + one find step over node 20 (2) + prep
// (2) + link CAS (1), 10 in all — + the closing epoch CAS (1) + the
// re-read that observes the new stable rung (1) = 17. p0 finishes
// with the failed stale root CAS (1), the epoch re-read (1), its
// announce write + validating epoch re-read (2), the harris Add(30) —
// head read (1) + find steps over nodes 10 and 20 (4) + prep (2) +
// link CAS (1) — and the announce clear (1) = 13.
func AdaptiveMigrationSchedule() (Builder, []int) {
	initial := []uint64{10, 20}
	build := func(obs memory.Observer) Run {
		s := adaptive.NewSetObserved(2, adaptive.Thresholds{QuiesceBudget: 1 << 10}, obs)
		for _, k := range initial {
			if !s.Add(0, k) {
				panic(fmt.Sprintf("sched: prefill add(%d) = false", k))
			}
		}
		rec := lin.NewRecorder(2)
		for _, k := range initial {
			pend := rec.Invoke(0, "add", k)
			rec.Return(pend, 1, lin.OutcomeOK)
		}
		var morphOK bool
		ops := [][]func(){
			{adaptiveSetRecordedOp(rec, s, 0, SetOp{Kind: "add", Key: 30})},
			{func() { morphOK = s.MorphTo(1, 1) }}, // rung 1 = harris
		}
		return Run{Ops: ops, Check: func() error {
			if !morphOK {
				return fmt.Errorf("MorphTo(harris) did not reach its rung")
			}
			h := rec.History()
			res := lin.Check(lin.SetModel(), h, 0)
			if !res.Ok {
				return fmt.Errorf("history not linearizable: %v", h)
			}
			st := s.Stats()
			if st.Migrations != 1 || st.Aborted != 0 {
				return fmt.Errorf("migrations = %d aborted = %d, want 1 and 0", st.Migrations, st.Aborted)
			}
			if _, ok := s.Unwrap().(*set.Harris); !ok {
				return fmt.Errorf("final rung is %T, want *set.Harris", s.Unwrap())
			}
			return checkSnapshot(s.Snapshot(), []uint64{10, 20, 30})
		}}
	}
	sched := make([]int, 0, 32)
	for i := 0; i < 2; i++ {
		sched = append(sched, 0)
	}
	for i := 0; i < 17; i++ {
		sched = append(sched, 1)
	}
	for i := 0; i < 13; i++ {
		sched = append(sched, 0)
	}
	return build, sched
}

// AdaptiveMigrationGates is the number of shared accesses in the solo
// cow→harris MorphTo of CrashAdaptiveMigration's process 0 — the same
// 17-gate window pinned by AdaptiveMigrationSchedule (the migrator's
// gate profile does not depend on the parked writer). Sweeping crash
// points 0..AdaptiveMigrationGates+1 kills the migrator at every §5
// step of the window, including before its first access and after its
// last.
const AdaptiveMigrationGates = 17

// CrashAdaptiveMigration builds a §5 crash-tolerance run for the
// migration window itself: process 0 runs MorphTo(harris) over the
// prefilled cow set {10 20} and crashes after crashAt shared accesses;
// process 1 then runs a strong op sequence to completion, solo. A
// migrator that dies before the seal leaves the window open but the
// cow source live — the survivor's updates go straight to the source
// and the stuck-open window is harmless. A migrator that dies after
// the seal leaves a frozen root — the survivor's first update helps:
// it snapshots, rebuilds the target, and closes the window itself. In
// no case may an element be stranded: Check asserts the survivor's
// history linearizes against the sequential set model, the final
// snapshot is exactly the expected membership on whichever rung the
// run ended, and no migration window aborted.
func CrashAdaptiveMigration(crashAt int) (Builder, CrashPlan) {
	initial := []uint64{10, 20}
	survivor := []SetOp{
		{Kind: "add", Key: 30},
		{Kind: "rem", Key: 10},
		{Kind: "has", Key: 20},
		{Kind: "has", Key: 10},
		{Kind: "has", Key: 30},
	}
	build := func(obs memory.Observer) Run {
		s := adaptive.NewSetObserved(2, adaptive.Thresholds{QuiesceBudget: 1 << 10}, obs)
		for _, k := range initial {
			if !s.Add(0, k) {
				panic(fmt.Sprintf("sched: prefill add(%d) = false", k))
			}
		}
		rec := lin.NewRecorder(2)
		for _, k := range initial {
			pend := rec.Invoke(0, "add", k)
			rec.Return(pend, 1, lin.OutcomeOK)
		}
		ops := [][]func(){
			{func() { s.MorphTo(0, 1) }}, // rung 1 = harris; crashes mid-window
			nil,
		}
		for _, p := range survivor {
			ops[1] = append(ops[1], adaptiveSetRecordedOp(rec, s, 1, p))
		}
		return Run{Ops: ops, Check: func() error {
			h := rec.History()
			res := lin.Check(lin.SetModel(), h, 0)
			if !res.Ok {
				return fmt.Errorf("survivor history not linearizable: %v", h)
			}
			st := s.Stats()
			if st.Migrations > 1 || st.Aborted != 0 {
				return fmt.Errorf("migrations = %d aborted = %d, want <= 1 and 0", st.Migrations, st.Aborted)
			}
			return checkSnapshot(s.Snapshot(), []uint64{20, 30})
		}}
	}
	return build, CrashPlan{0: crashAt}
}

// checkSnapshot compares a quiescent snapshot against the expected
// ascending membership.
func checkSnapshot(got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("final set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("final set %v, want %v", got, want)
		}
	}
	return nil
}
