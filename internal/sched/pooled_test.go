package sched

import (
	"strings"
	"testing"
)

// TestPooledTreiberABAScheduleReplays verifies the satellite claim of
// E17's design: a recycled node returns to the same handle (address)
// mid-CAS, and the sequence tag makes the stale CAS fail — the builder
// checks the remaining history is linearizable AND that recycling
// actually happened.
func TestPooledTreiberABAScheduleReplays(t *testing.T) {
	build, schedule := PooledTreiberABASchedule()
	trace, err := Replay(build, schedule, 0)
	if err != nil {
		t.Fatalf("pooled Treiber ABA schedule failed: %v (trace %v)", err, trace)
	}
	if len(trace) != len(schedule) {
		t.Fatalf("trace has %d steps, schedule %d (gate-count drift)", len(trace), len(schedule))
	}
}

func TestPooledMSABAScheduleReplays(t *testing.T) {
	build, schedule := PooledMSABASchedule()
	trace, err := Replay(build, schedule, 0)
	if err != nil {
		t.Fatalf("pooled Michael-Scott ABA schedule failed: %v (trace %v)", err, trace)
	}
	if len(trace) != len(schedule) {
		t.Fatalf("trace has %d steps, schedule %d (gate-count drift)", len(trace), len(schedule))
	}
}

// TestPooledBackendsSoloNeverAbort extends the E2 obligation to the
// pooled backends: exhaustive solo schedules across the full/empty
// boundaries must never abort (recycling must not cost abortability).
func TestPooledBackendsSoloNeverAbort(t *testing.T) {
	plan := []StackOp{
		{Push: true, Value: 1}, {Push: true, Value: 2}, {Push: true, Value: 3},
		{Push: false}, {Push: false}, {Push: false},
	}
	for backend, k := range map[StackBackend]int{
		PooledTreiber:   0, // unbounded: k only bounds the model
		PooledAbortable: 2,
	} {
		rep := Explore(SoloNeverAborts(backend, k, nil, plan), Options{})
		if rep.Failure != nil {
			t.Fatalf("%v: %v", backend, rep.Failure.Err)
		}
		if rep.Schedules == 0 {
			t.Fatalf("%v: no schedules explored", backend)
		}
	}
}

// TestPooledAbortableRandomWalks hammers the pooled Figure 1 stack
// with random schedules of a contended plan: every explored
// interleaving must stay linearizable despite record recycling.
func TestPooledAbortableRandomWalks(t *testing.T) {
	runs := 400
	if testing.Short() {
		runs = 80
	}
	build := WeakStackBuilder(PooledAbortable, 4, []uint64{10, 20},
		[][]StackOp{
			{{Push: false}, {Push: true, Value: 30}},
			{{Push: false}, {Push: false}, {Push: true, Value: 40}},
		})
	rep := Walk(build, runs, 0x9e37, Options{})
	if rep.Failure != nil {
		t.Fatalf("pooled abortable violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

// TestPooledTreiberRandomWalks is the same obligation for the pooled
// Treiber stack, whose recycling is the most aggressive (LIFO free
// lists hand a popped node straight back to the next push).
func TestPooledTreiberRandomWalks(t *testing.T) {
	runs := 400
	if testing.Short() {
		runs = 80
	}
	build := WeakStackBuilder(PooledTreiber, 0, []uint64{10, 20},
		[][]StackOp{
			{{Push: false}, {Push: true, Value: 30}},
			{{Push: false}, {Push: false}, {Push: true, Value: 40}},
		})
	rep := Walk(build, runs, 0x5eed, Options{})
	if rep.Failure != nil {
		t.Fatalf("pooled treiber violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

// TestPooledMSRandomWalks walks the pooled Michael-Scott queue.
func TestPooledMSRandomWalks(t *testing.T) {
	runs := 300
	if testing.Short() {
		runs = 60
	}
	build := WeakPooledMSQueueBuilder([]uint64{10},
		[][]QueueOp{
			{{Enq: false}, {Enq: true, Value: 30}},
			{{Enq: false}, {Enq: true, Value: 40}, {Enq: false}},
		})
	rep := Walk(build, runs, 0xaba, Options{})
	if rep.Failure != nil {
		t.Fatalf("pooled michael-scott violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

func TestQueueBackendNames(t *testing.T) {
	for b, want := range map[QueueBackend]string{
		BoxedQueue: "boxed", PackedQueue: "packed", PooledMSQueue: "pooled-ms",
	} {
		if got := b.String(); got != want {
			t.Fatalf("QueueBackend(%d).String() = %q, want %q", b, got, want)
		}
	}
	for _, b := range []StackBackend{PooledTreiber, PooledAbortable} {
		if !strings.HasPrefix(b.String(), "pooled-") {
			t.Fatalf("StackBackend %d name %q", b, b.String())
		}
	}
}
