package sched

import "fmt"

// Options tunes an exploration.
type Options struct {
	// MaxSchedules caps the number of schedules executed; 0 means
	// 100000. When the cap is hit, Report.Complete is false.
	MaxSchedules int
	// MaxSteps caps scheduling decisions per run (a guard against
	// accidentally scheduling spinning code); 0 means 10000.
	MaxSteps int
}

func (o Options) withDefaults() Options {
	if o.MaxSchedules == 0 {
		o.MaxSchedules = 100000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 10000
	}
	return o
}

// Failure describes a schedule whose run failed its check.
type Failure struct {
	// Schedule is the decision sequence (pids) to pass to Replay.
	Schedule []int
	// Trace is the per-decision access trace.
	Trace []Step
	// Err is the check's error.
	Err error
}

func (f *Failure) Error() string {
	return fmt.Sprintf("schedule %v failed: %v", f.Schedule, f.Err)
}

// Report summarizes an exploration.
type Report struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Complete is true when the whole schedule tree was enumerated.
	Complete bool
	// Failure is the first failing schedule found, or nil.
	Failure *Failure
}

// Explore enumerates the schedule tree of build depth-first with
// replay (stateless model checking), stopping at the first failing
// schedule or when the budget runs out.
func Explore(build Builder, opts Options) Report {
	opts = opts.withDefaults()
	var rep Report
	prefix := []int{}
	for {
		out := runOnce(build, prefix, opts.MaxSteps)
		rep.Schedules++
		if out.err != nil {
			rep.Failure = &Failure{Schedule: chosen(out.decisions), Trace: out.trace, Err: out.err}
			return rep
		}
		if rep.Schedules >= opts.MaxSchedules {
			return rep
		}
		// Backtrack to the deepest decision with an unexplored
		// sibling choice.
		d := len(out.decisions) - 1
		for d >= 0 {
			dec := out.decisions[d]
			idx := -1
			for i, c := range dec.candidates {
				if c == dec.chosen {
					idx = i
					break
				}
			}
			if idx+1 < len(dec.candidates) {
				prefix = append(chosen(out.decisions[:d]), dec.candidates[idx+1])
				break
			}
			d--
		}
		if d < 0 {
			rep.Complete = true
			return rep
		}
	}
}

// Walk samples random schedules of build. It is the fallback when the
// schedule tree is too large to enumerate; seed makes it reproducible.
func Walk(build Builder, runs int, seed uint64, opts Options) Report {
	opts = opts.withDefaults()
	var rep Report
	rng := seed
	for i := 0; i < runs; i++ {
		// A random schedule is produced by replaying a prefix of
		// random choices that is longer than any run: each decision
		// picks uniformly among candidates via the prefix value
		// modulo the candidate count, resolved in runRandom.
		out := runRandom(build, &rng, opts.MaxSteps)
		rep.Schedules++
		if out.err != nil {
			rep.Failure = &Failure{Schedule: chosen(out.decisions), Trace: out.trace, Err: out.err}
			return rep
		}
	}
	return rep
}

// Replay executes one explicit schedule (a decision sequence as found
// in Failure.Schedule) and returns the run's check error, the access
// trace, and any replay error.
func Replay(build Builder, schedule []int, maxSteps int) (trace []Step, err error) {
	if maxSteps == 0 {
		maxSteps = 10000
	}
	out := runOnce(build, schedule, maxSteps)
	return out.trace, out.err
}

func chosen(decs []decision) []int {
	out := make([]int, len(decs))
	for i, d := range decs {
		out[i] = d.chosen
	}
	return out
}

// splitmix64 is the step function of the deterministic PRNG used for
// random walks.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
