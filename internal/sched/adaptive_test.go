package sched

import "testing"

// TestAdaptiveMigrationScheduleReplays verifies the adaptive set's
// mid-flight migration property deterministically: a writer parked
// between its cow root read and root CAS while a full cow→harris
// migration runs to completion MUST fail its stale CAS against the
// sealed root and re-dispatch onto the new rung. The trace length is
// pinned to the schedule length: any drift in the protocol's gate
// count (an access added or removed anywhere in the open/seal/
// snapshot/rebuild/close window) fails loudly here rather than
// silently exploring a different interleaving.
func TestAdaptiveMigrationScheduleReplays(t *testing.T) {
	build, schedule := AdaptiveMigrationSchedule()
	trace, err := Replay(build, schedule, 0)
	if err != nil {
		t.Fatalf("adaptive migration schedule failed: %v (trace %v)", err, trace)
	}
	if len(trace) != len(schedule) {
		t.Fatalf("trace has %d steps, schedule %d (gate-count drift)", len(trace), len(schedule))
	}
}

// TestAdaptiveMigrationCrashSweep kills the migrating process at every
// gate of the cow→harris window — before the open, between open and
// seal, mid-rebuild, at the close, and past the end — and checks that
// the survivor always completes with the exact expected membership:
// a crashed migrator must never strand an element.
func TestAdaptiveMigrationCrashSweep(t *testing.T) {
	if err := SweepCrashPoints(AdaptiveMigrationGates+1, CrashAdaptiveMigration); err != nil {
		t.Fatalf("adaptive migration crash sweep: %v", err)
	}
}
