package sched

import "runtime"

// gid returns the current goroutine's id by parsing the first line of
// its stack trace ("goroutine N [running]: ..."). This is the standard
// trick for test scaffolding that needs goroutine identity; it is far
// too slow for production paths and is used only under the model
// checker.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
