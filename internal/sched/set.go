package sched

import (
	"errors"
	"fmt"

	lin "repro/internal/linearizability"
	"repro/internal/memory"
	"repro/internal/set"
)

// SetOp is one planned set operation for a model-checked run. Kind is
// "add", "rem" or "has"; Key is the operated key.
type SetOp struct {
	Kind string
	Key  uint64
}

// setOutcome maps a weak set attempt's error to a history outcome.
func setOutcome(err error) string {
	switch {
	case err == nil:
		return lin.OutcomeOK
	case errors.Is(err, set.ErrAborted):
		return lin.OutcomeAborted
	default:
		panic(err)
	}
}

// schedSet is the common surface of the model-checked sets: one
// attempt per op, pid-aware (the pooled Harris backend routes node
// recycling through per-pid free lists; the boxed backend ignores it).
type schedSet interface {
	TryAdd(pid int, k uint64) (bool, error)
	TryRemove(pid int, k uint64) (bool, error)
	TryContains(pid int, k uint64) (bool, error)
}

// pidlessSet adapts the pid-oblivious weak set.
type pidlessSet struct{ s set.Weak }

func (a pidlessSet) TryAdd(_ int, k uint64) (bool, error)      { return a.s.TryAdd(k) }
func (a pidlessSet) TryRemove(_ int, k uint64) (bool, error)   { return a.s.TryRemove(k) }
func (a pidlessSet) TryContains(_ int, k uint64) (bool, error) { return a.s.TryContains(k) }

// harrisAdapter fits the lock-free list to the schedSet shape. Its
// operations are strong (they retry internally and never abort).
type harrisAdapter struct{ s *set.Harris }

func (a harrisAdapter) TryAdd(pid int, k uint64) (bool, error) { return a.s.Add(pid, k), nil }
func (a harrisAdapter) TryRemove(pid int, k uint64) (bool, error) {
	return a.s.Remove(pid, k), nil
}
func (a harrisAdapter) TryContains(pid int, k uint64) (bool, error) {
	return a.s.Contains(pid, k), nil
}

// hashAdapter fits the split-ordered hash set to the schedSet shape;
// like the Harris list its operations are strong.
type hashAdapter struct{ s *set.Hash }

func (a hashAdapter) TryAdd(pid int, k uint64) (bool, error) { return a.s.Add(pid, k), nil }
func (a hashAdapter) TryRemove(pid int, k uint64) (bool, error) {
	return a.s.Remove(pid, k), nil
}
func (a hashAdapter) TryContains(pid int, k uint64) (bool, error) {
	return a.s.Contains(pid, k), nil
}

// SetBackend selects the implementation a set Builder checks.
type SetBackend int

const (
	// CowSet is the abortable copy-on-write sorted list (one boxed
	// root register).
	CowSet SetBackend = iota
	// HarrisSet is the Harris/Michael lock-free list over pooled,
	// tagged, markable next registers.
	HarrisSet
	// HashSet is the split-ordered hash layer over the same list:
	// bucket-shortcut words plus per-bucket sentinel nodes, all on the
	// one pool, so bucket initialization shares the recycling hazards.
	HashSet
)

// String names the backend.
func (b SetBackend) String() string {
	switch b {
	case CowSet:
		return "cow"
	case HarrisSet:
		return "harris"
	case HashSet:
		return "hash"
	default:
		return "unknown"
	}
}

// WeakSetBuilder returns a Builder that prefills a fresh set with
// initial, runs the per-process plans as single attempts (strong,
// never-aborting operations on the Harris backend), and checks the
// recorded history against the sequential set model. Aborted attempts
// are dropped from the history; a backend whose "aborted" attempt did
// take effect — or whose stale CAS on a recycled node succeeds — is
// caught as a linearizability violation of the remaining history.
func WeakSetBuilder(backend SetBackend, initial []uint64, plans [][]SetOp) Builder {
	return weakSetBuilder(backend, initial, plans, false, nil)
}

// SoloSetNeverAborts is WeakSetBuilder for a single process whose
// check additionally fails if any attempt returned ⊥ (claim A2 lifted
// to the set tier: a solo weak operation must always succeed).
func SoloSetNeverAborts(backend SetBackend, initial []uint64, plan []SetOp) Builder {
	return weakSetBuilder(backend, initial, [][]SetOp{plan}, true, nil)
}

func weakSetBuilder(backend SetBackend, initial []uint64, plans [][]SetOp, forbidAborts bool, post func(s schedSet) error) Builder {
	return func(obs memory.Observer) Run {
		var s schedSet
		switch backend {
		case CowSet:
			s = pidlessSet{set.NewAbortableObserved(obs)}
		case HarrisSet:
			s = harrisAdapter{set.NewHarrisObserved(max(len(plans), 1), obs)}
		case HashSet:
			s = hashAdapter{set.NewHashObserved(max(len(plans), 1), obs)}
		default:
			panic("sched: unknown set backend")
		}
		for _, k := range initial {
			if added, err := s.TryAdd(0, k); err != nil || !added {
				panic(fmt.Sprintf("sched: prefill add(%d) = (%v, %v)", k, added, err))
			}
		}
		rec := lin.NewRecorder(len(plans))
		// The prefill is part of the object's initial state: replay it
		// as history ops that precede everything else.
		for _, k := range initial {
			pend := rec.Invoke(0, "add", k)
			rec.Return(pend, 1, lin.OutcomeOK)
		}
		ops := make([][]func(), len(plans))
		for pid, plan := range plans {
			for _, p := range plan {
				pid, p := pid, p
				ops[pid] = append(ops[pid], func() {
					pend := rec.Invoke(pid, p.Kind, p.Key)
					var res bool
					var err error
					switch p.Kind {
					case "add":
						res, err = s.TryAdd(pid, p.Key)
					case "rem":
						res, err = s.TryRemove(pid, p.Key)
					case "has":
						res, err = s.TryContains(pid, p.Key)
					default:
						panic("sched: unknown set op kind")
					}
					out := uint64(0)
					if res {
						out = 1
					}
					rec.Return(pend, out, setOutcome(err))
				})
			}
		}
		return Run{Ops: ops, Check: func() error {
			if forbidAborts {
				if n := rec.Aborts(); n > 0 {
					return fmt.Errorf("%d solo weak operation(s) aborted", n)
				}
			}
			h := rec.History()
			res := lin.Check(lin.SetModel(), h, 0)
			if res.Exhausted {
				return fmt.Errorf("sched: linearizability check exhausted")
			}
			if !res.Ok {
				return fmt.Errorf("history not linearizable: %v", h)
			}
			if post != nil {
				return post(s)
			}
			return nil
		}}
	}
}

// HarrisABASchedule returns the builder and handcrafted schedule that
// force the §2.2 recycled-node scenario on the lock-free list: process
// 0 walks Add(25) over the list [10 20] down to its insertion window —
// its pred register is node 20's next word 〈nil, t〉 — and is preempted
// after preparing its new node, one step before the link CAS. Process
// 1 then removes 20 (retiring its node to p1's free list) and adds 30,
// which recycles 20's node at the SAME handle, relinked after 10. When
// p0 resumes, its stale CAS targets that recycled node's next register
// with the old 〈nil, t〉 word; the register again holds a nil successor,
// so without the tag the CAS would succeed — appending 25 after the
// node that now carries 30, i.e. breaking sorted order and making 25
// unreachable by later traversals. The tag (advanced by the mark and
// the reuse) makes it fail; p0 restarts its walk and inserts 25
// between 10 and 30. Check asserts the history linearizes AND that
// recycling actually happened.
//
// Gate counts (observed accesses are the head register and every node
// next-register Read/Write/CAS; key loads and pool traffic are
// arena-private): a find step costs 2 gates per node (next read +
// pred validation re-read) after 1 gate for the head read; preparing a
// fresh node costs 2 (its next read + write). So p0's prefix is
// 1+2+2+2 = 7 gates; p1's Remove(20) is 1+2+2 (find) + 1 (mark CAS)
// + 1 (unlink CAS) = 7 and its Add(30) is 1+2 (find stops after node
// 10) + 2 (prep) + 1 (link CAS) = 6; p0 finishes with its failed CAS
// (1), a fresh find (1+2+2), a re-prep of its recycled own node (2)
// and the winning CAS (1) — 9 gates.
func HarrisABASchedule() (Builder, []int) {
	build := weakSetBuilder(HarrisSet,
		[]uint64{10, 20},
		[][]SetOp{
			{{Kind: "add", Key: 25}}, // p0
			{ // p1: remove 20, add 30 (recycling 20's node)
				{Kind: "rem", Key: 20},
				{Kind: "add", Key: 30},
			},
		},
		false,
		func(s schedSet) error {
			h := s.(harrisAdapter).s
			st := h.PoolStats()
			if st.Reuses < 1 {
				return fmt.Errorf("schedule recycled %d nodes, want >= 1 (no reuse pressure)", st.Reuses)
			}
			want := []uint64{10, 25, 30}
			got := h.Snapshot()
			if len(got) != len(want) {
				return fmt.Errorf("final set %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("final set %v, want %v", got, want)
				}
			}
			return nil
		})
	sched := make([]int, 0, 29)
	for i := 0; i < 7; i++ {
		sched = append(sched, 0)
	}
	for i := 0; i < 13; i++ {
		sched = append(sched, 1)
	}
	for i := 0; i < 9; i++ {
		sched = append(sched, 0)
	}
	return build, sched
}

// HashSplitABASchedule returns the builder and handcrafted schedule
// that force the recycled-sentinel ABA window on the split-ordered
// hash set's bucket-initialization path. The set starts as {4, 6}
// (both bucket 0 of the 2-bucket initial table); sentinel₀ → 4 → 6 in
// split order, bucket 1 uninitialized.
//
// Process 0 runs Add(1): key 1 is bucket 1, so it starts the split —
// walks to sentinel 1's window (node 6's next register, holding
// 〈nil, t〉), prepares its own would-be sentinel node, and is preempted
// one step before the link CAS. Process 1 then runs Remove(6) — which
// marks and unlinks node 6 and retires its handle to p1's free list —
// and Contains(5): key 5 is also bucket 1, so p1 re-runs the split,
// and its pool Get hands back node 6's just-retired handle: the
// RECYCLED handle becomes bucket 1's published sentinel, linked in
// node 6's old position, its next register again holding a nil
// successor — 〈nil, t+2〉.
//
// When p0 resumes, its stale sentinel-link CAS targets that register
// with the old 〈nil, t〉 word. Handle part equal (nil, the very §2.2
// shape): without the sequence tag the CAS would succeed and chain a
// DUPLICATE bucket-1 sentinel after the real one, corrupting the
// bucket skeleton. The tag — advanced by node 6's deletion mark and by
// the recycled node's re-preparation — makes it fail; p0 re-finds the
// published sentinel, adopts it, loses the (equally stale) bucket-word
// CAS, recycles its never-published node, and inserts key 1 through
// the adopted sentinel — reusing its own retired handle for the
// regular node. Check asserts the history linearizes, the final set is
// exactly {1, 4}, both recycles actually happened, and no resize
// interfered.
//
// Gate counts (observed accesses are bucket-shortcut words and node
// next registers; key loads, the table pointer, and pool traffic are
// unobserved): a find from a start register costs 1 gate for the start
// read plus 2 per node crossed (next read + predecessor re-read);
// preparing a fresh node costs 2 (its next read + write). p0's prefix
// is bucket-1 word read (1) + bucket-0 word read (1) + find over
// nodes 4, 6 (5) + prep (2) = 9, parking it at the link CAS. p1's
// Remove(6) is bucket-0 read (1) + find stopping at 6 (5) + mark (1)
// + unlink (1) = 8, and its Contains(5) is bucket-1 read (1) +
// bucket-0 read (1) + find over node 4 only (3) + prep of the recycled
// handle (2) + link CAS (1) + bucket-word CAS (1) + the membership
// find from the new sentinel (1) = 10 — 18 total. p0 finishes with the
// failed stale CAS (1), the re-find that adopts the sentinel (5), the
// failed bucket-word CAS (1), the insert find from the sentinel (1),
// re-prep of its recycled node (2) and the winning link CAS (1) — 11.
func HashSplitABASchedule() (Builder, []int) {
	build := weakSetBuilder(HashSet,
		[]uint64{4, 6},
		[][]SetOp{
			{{Kind: "add", Key: 1}}, // p0: triggers the bucket-1 split
			{ // p1: retires node 6, then re-splits bucket 1 on its handle
				{Kind: "rem", Key: 6},
				{Kind: "has", Key: 5},
			},
		},
		false,
		func(s schedSet) error {
			h := s.(hashAdapter).s
			st := h.PoolStats()
			if st.Reuses < 2 {
				return fmt.Errorf("schedule recycled %d nodes, want >= 2 (sentinel and regular reuse)", st.Reuses)
			}
			if n := h.Resizes(); n != 0 {
				return fmt.Errorf("schedule resized %d times, want 0 (gate counts assume a fixed table)", n)
			}
			if got, want := h.Size(), 2; got != want {
				return fmt.Errorf("Size() = %d, want %d", got, want)
			}
			want := []uint64{1, 4}
			got := h.Snapshot()
			if len(got) != len(want) {
				return fmt.Errorf("final set %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("final set %v, want %v", got, want)
				}
			}
			return nil
		})
	sched := make([]int, 0, 38)
	for i := 0; i < 9; i++ {
		sched = append(sched, 0)
	}
	for i := 0; i < 18; i++ {
		sched = append(sched, 1)
	}
	for i := 0; i < 11; i++ {
		sched = append(sched, 0)
	}
	return build, sched
}
