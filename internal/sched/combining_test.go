package sched

import (
	"fmt"
	"testing"
)

// traceString renders a trace compactly for exact (byte-for-byte)
// schedule pinning.
func traceString(tr []Step) string {
	s := ""
	for _, st := range tr {
		s += fmt.Sprintf("%d:%v ", st.Pid, st.Access)
	}
	return s
}

func TestCombiningTakeoverSchedule(t *testing.T) {
	// The canonical pinned lease takeover: the combiner crashes with
	// the lease held, CONTENTION raised and a foreign request pending;
	// the survivor's pop can only complete by stealing the lease (the
	// builder's Check asserts Steals >= 1 on top of linearizability).
	build, sched, plan := CombiningTakeoverSchedule()
	tr, err := ReplayWithCrashes(build, sched, plan, 0)
	if err != nil {
		t.Fatalf("takeover schedule failed: %v", err)
	}
	// The schedule is exact: p0 gets its planned prefix and nothing
	// after the crash; every remaining step is the survivor's.
	for i, st := range tr {
		want := 1
		if i < len(sched) {
			want = sched[i]
		}
		if st.Pid != want {
			t.Fatalf("step %d ran pid %d, want %d (trace %s)", i, st.Pid, want, traceString(tr))
		}
	}
	// Deterministic replay: the same schedule reproduces the identical
	// access trace, byte for byte.
	build2, sched2, plan2 := CombiningTakeoverSchedule()
	tr2, err := ReplayWithCrashes(build2, sched2, plan2, 0)
	if err != nil {
		t.Fatalf("takeover replay failed: %v", err)
	}
	if traceString(tr) != traceString(tr2) {
		t.Fatalf("replay diverged:\n  first:  %s\n  second: %s", traceString(tr), traceString(tr2))
	}
}

func TestCombiningCrashGateCount(t *testing.T) {
	// CombiningCrashGates is implementation-exact: one past the number
	// of shared accesses p0's crash-free contended push performs under
	// the default schedule. A drift here silently weakens the sweep.
	tr, err := ReplayWithCrashes(CombiningCrashBuilder(false), nil, nil, 0)
	if err != nil {
		t.Fatalf("crash-free combining run failed: %v", err)
	}
	p0 := 0
	for _, st := range tr {
		if st.Pid == 0 {
			p0++
		}
	}
	if p0+1 != CombiningCrashGates {
		t.Fatalf("p0 performed %d accesses; CombiningCrashGates = %d, want %d (trace %s)",
			p0, CombiningCrashGates, p0+1, traceString(tr))
	}
}

func TestCombiningCrashSweep(t *testing.T) {
	// Crash the combiner at every §5 step of the contended push —
	// before publication is collected, between lease acquisition and
	// CONTENTION, mid-apply, after serving the foreign slot, and past
	// the end (no crash) — and require the survivor to complete with a
	// linearizable history at every point.
	err := SweepCrashPoints(CombiningCrashGates, func(crashAt int) (Builder, CrashPlan) {
		return CombiningCrashBuilder(false), CrashPlan{0: crashAt}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCombiningCrashPooledBackends(t *testing.T) {
	// The generalized single-op crash runs on the pooled backends too:
	// a crashed process's in-flight node is leaked, never recycled, and
	// the survivor stays consistent at every crash point.
	survivor := []StackOp{{Push: true, Value: 100}, {Push: false}, {Push: false}, {Push: false}}
	for _, backend := range []StackBackend{PooledTreiber, PooledAbortable} {
		for _, op := range []StackOp{{Push: true, Value: 77}, {Push: false}} {
			err := SweepCrashPoints(8, func(crashAt int) (Builder, CrashPlan) {
				return CrashStackOp(backend, 8, []uint64{10, 20}, op, crashAt, survivor)
			})
			if err != nil {
				t.Fatalf("%v op=%+v: %v", backend, op, err)
			}
		}
	}
}

func TestCrashPopEveryPoint(t *testing.T) {
	// The pop sibling of TestCrashMidPushEveryPoint: crash a popper at
	// every point; the history must be explainable with the crashed pop
	// absent, returning any reachable value, or reporting empty.
	survivor := []StackOp{{Push: true, Value: 100}, {Push: false}, {Push: false}, {Push: false}}
	for _, backend := range []StackBackend{Boxed, PackedWords} {
		err := SweepCrashPoints(6, func(crashAt int) (Builder, CrashPlan) {
			return CrashStackOp(backend, 8, []uint64{10, 20}, StackOp{}, crashAt, survivor)
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
	}
}
