package sched

import (
	"fmt"

	lin "repro/internal/linearizability"
	"repro/internal/memory"
)

// CrashPlan is the §5 crash model made replayable: it maps a pid to
// the number of granted shared accesses after which that process
// crashes. A crashed process stops between two shared accesses —
// parked at its gate — and takes no further steps; it is never
// scheduled again, and the run ends when every surviving process
// finishes. A nil plan disables crashes. Like an explicit schedule, a
// CrashPlan is a value: the same plan over the same builder replays
// the same execution.
type CrashPlan map[int]int

// SweepCrashPoints drives mk's run once per crash point g in
// [0, points]: the plan returned by mk(g) is executed under the
// default deterministic schedule (lowest ready pid first), so by the
// pid-0-crasher convention the crasher runs alone up to its g-th
// granted access and dies there, after which the survivors run to
// completion. It returns the first failing crash point's error,
// wrapped with the point, or nil when every point passes. Sweeping
// every g from 0 to one past the operation's access count exercises a
// crash at every §5 step of the operation, including "crashed before
// any step" and "crashed after completing".
func SweepCrashPoints(points int, mk func(crashAt int) (Builder, CrashPlan)) error {
	for g := 0; g <= points; g++ {
		build, plan := mk(g)
		if _, err := ReplayWithCrashes(build, nil, plan, 0); err != nil {
			return fmt.Errorf("crash point %d: %w", g, err)
		}
	}
	return nil
}

// CrashStackOp builds a §5 crash-tolerance run and its CrashPlan:
// process 0 performs the single weak operation op on a stack
// prefilled with initial and crashes after crashAt shared accesses;
// process 1 then runs survivor to completion, solo.
//
// Check asserts the paper's §5 claim for lock-free code: the survivor
// completes every operation, and the history is linearizable either
// without the crashed operation or with some completion of it — a
// crashed push may or may not have taken effect; a crashed pop may
// have removed any value that was reachable (from initial or the
// survivor's pushes) or found the stack empty. The object is never
// left in a state explained by no completion at all.
//
// All stack backends are supported, including the pooled ones (their
// free lists are sized for the two processes; a crashed process's
// in-flight node is simply never recycled — leaked, as §5's model
// demands).
func CrashStackOp(backend StackBackend, k int, initial []uint64, op StackOp, crashAt int, survivor []StackOp) (Builder, CrashPlan) {
	build := func(obs memory.Observer) Run {
		s := newWeakStack(backend, k, 2, obs)
		for _, v := range initial {
			if err := s.TryPush(0, v); err != nil {
				panic(fmt.Sprintf("sched: prefill: %v", err))
			}
		}
		rec := lin.NewRecorder(2)
		for _, v := range initial {
			pend := rec.Invoke(0, "push", v)
			rec.Return(pend, 0, lin.OutcomeOK)
		}
		var opCall int64
		crasher := func() {
			if op.Push {
				pend := rec.Invoke(0, "push", op.Value)
				opCall = pend.CallTime()
				err := s.TryPush(0, op.Value) // crashes inside when crashAt is interior
				// Past-the-end crash points let the op complete; record
				// it normally so the check stays exact.
				rec.Return(pend, 0, stackOutcome(err))
			} else {
				pend := rec.Invoke(0, "pop", 0)
				opCall = pend.CallTime()
				v, err := s.TryPop(0)
				rec.Return(pend, v, stackOutcome(err))
			}
			opCall = 0
		}
		ops := [][]func(){{crasher}, nil}
		for _, p := range survivor {
			p := p
			if p.Push {
				ops[1] = append(ops[1], func() {
					pend := rec.Invoke(1, "push", p.Value)
					err := s.TryPush(1, p.Value)
					rec.Return(pend, 0, stackOutcome(err))
				})
			} else {
				ops[1] = append(ops[1], func() {
					pend := rec.Invoke(1, "pop", 0)
					v, err := s.TryPop(1)
					rec.Return(pend, v, stackOutcome(err))
				})
			}
		}
		return Run{Ops: ops, Check: func() error {
			h := rec.History()
			if res := lin.Check(lin.StackModel(k), h, 0); res.Ok {
				return nil // the crashed op took no effect
			}
			if opCall == 0 {
				return fmt.Errorf("completed history not linearizable: %v", h)
			}
			// Retry with each possible completion of the crashed op,
			// spanning from its real invocation to after everything.
			var maxRet int64
			for _, o := range h {
				if o.Return > maxRet {
					maxRet = o.Return
				}
			}
			for _, c := range crashCompletions(op, initial, survivor) {
				c.Call, c.Return = opCall, maxRet+1
				h2 := append([]lin.Op{c}, h...)
				sortOpsByCall(h2)
				if res := lin.Check(lin.StackModel(k), h2, 0); res.Ok {
					return nil // the crashed op took this effect
				}
			}
			return fmt.Errorf("history not linearizable with or without the crashed %s: %v",
				map[bool]string{true: "push", false: "pop"}[op.Push], h)
		}}
	}
	return build, CrashPlan{0: crashAt}
}

// crashCompletions enumerates the effects a crashed op could have had:
// a push succeeded or found the stack full; a pop removed any value
// the run ever made reachable, or found the stack empty. Call/Return
// are filled in by the caller.
func crashCompletions(op StackOp, initial []uint64, survivor []StackOp) []lin.Op {
	if op.Push {
		return []lin.Op{
			{Proc: 0, Kind: "push", Input: op.Value, Outcome: lin.OutcomeOK},
			{Proc: 0, Kind: "push", Input: op.Value, Outcome: lin.OutcomeFull},
		}
	}
	seen := make(map[uint64]bool)
	var cands []lin.Op
	addPop := func(v uint64) {
		if !seen[v] {
			seen[v] = true
			cands = append(cands, lin.Op{Proc: 0, Kind: "pop", Output: v, Outcome: lin.OutcomeOK})
		}
	}
	for _, v := range initial {
		addPop(v)
	}
	for _, p := range survivor {
		if p.Push {
			addPop(p.Value)
		}
	}
	return append(cands, lin.Op{Proc: 0, Kind: "pop", Outcome: lin.OutcomeEmpty})
}

// CrashPush is CrashStackOp specialised to the original §5 shape: the
// crashed operation is a push of marker.
func CrashPush(backend StackBackend, k int, initial []uint64, marker uint64, crashAt int, survivor []StackOp) (Builder, CrashPlan) {
	return CrashStackOp(backend, k, initial, StackOp{Push: true, Value: marker}, crashAt, survivor)
}
