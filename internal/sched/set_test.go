package sched

import "testing"

// TestHarrisABAScheduleReplays verifies the set tier's recycled-node
// ABA window deterministically: a node retired by Remove comes back at
// the same handle holding a different key while a slow Add still holds
// its old next word; the sequence tag makes the stale link CAS fail,
// and the builder checks linearizability, the final sorted contents,
// and that recycling actually happened.
func TestHarrisABAScheduleReplays(t *testing.T) {
	build, schedule := HarrisABASchedule()
	trace, err := Replay(build, schedule, 0)
	if err != nil {
		t.Fatalf("harris ABA schedule failed: %v (trace %v)", err, trace)
	}
	if len(trace) != len(schedule) {
		t.Fatalf("trace has %d steps, schedule %d (gate-count drift)", len(trace), len(schedule))
	}
}

// TestHashSplitABAScheduleReplays verifies the split-ordered hash
// set's bucket-initialization ABA window deterministically: a node
// retired by Remove comes back at the same handle as the bucket's
// published sentinel while a slow splitter still holds the register's
// old word; handle parts are equal (both nil successors), so only the
// sequence tag makes the stale link CAS fail — without it a duplicate
// sentinel would corrupt the bucket skeleton. The builder checks
// linearizability, the final contents, and that both recycles (the
// sentinel's and the loser's never-published node) actually happened.
func TestHashSplitABAScheduleReplays(t *testing.T) {
	build, schedule := HashSplitABASchedule()
	trace, err := Replay(build, schedule, 0)
	if err != nil {
		t.Fatalf("hash split ABA schedule failed: %v (trace %v)", err, trace)
	}
	if len(trace) != len(schedule) {
		t.Fatalf("trace has %d steps, schedule %d (gate-count drift)", len(trace), len(schedule))
	}
}

// TestSetSoloNeverAborts extends the E2 obligation to the set tier:
// exhaustive solo schedules over add/remove/contains — duplicate adds
// and absent removes included — must never abort.
func TestSetSoloNeverAborts(t *testing.T) {
	plan := []SetOp{
		{Kind: "add", Key: 5}, {Kind: "add", Key: 3}, {Kind: "add", Key: 5},
		{Kind: "has", Key: 3}, {Kind: "rem", Key: 5}, {Kind: "has", Key: 5},
		{Kind: "rem", Key: 5}, {Kind: "rem", Key: 3},
	}
	for _, backend := range []SetBackend{CowSet, HarrisSet, HashSet} {
		rep := Explore(SoloSetNeverAborts(backend, nil, plan), Options{})
		if rep.Failure != nil {
			t.Fatalf("%v: %v", backend, rep.Failure.Err)
		}
		if rep.Schedules == 0 {
			t.Fatalf("%v: no schedules explored", backend)
		}
	}
}

// TestCowSetRandomWalks hammers the copy-on-write abortable set with
// random schedules of a contended plan: every interleaving must stay
// linearizable, with aborted attempts taking no effect.
func TestCowSetRandomWalks(t *testing.T) {
	runs := 400
	if testing.Short() {
		runs = 80
	}
	build := WeakSetBuilder(CowSet, []uint64{10, 20},
		[][]SetOp{
			{{Kind: "rem", Key: 10}, {Kind: "add", Key: 15}, {Kind: "has", Key: 20}},
			{{Kind: "add", Key: 15}, {Kind: "rem", Key: 20}, {Kind: "has", Key: 10}},
		})
	rep := Walk(build, runs, 0x5e7, Options{})
	if rep.Failure != nil {
		t.Fatalf("cow set violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

// TestHarrisRandomWalks walks the lock-free list under a plan mixing
// overlapping windows and recycling (removes feeding later adds
// through the per-pid free lists).
func TestHarrisRandomWalks(t *testing.T) {
	runs := 300
	if testing.Short() {
		runs = 60
	}
	build := WeakSetBuilder(HarrisSet, []uint64{10, 20, 30},
		[][]SetOp{
			{{Kind: "rem", Key: 20}, {Kind: "add", Key: 25}, {Kind: "has", Key: 30}},
			{{Kind: "rem", Key: 30}, {Kind: "add", Key: 20}, {Kind: "rem", Key: 10}},
		})
	rep := Walk(build, runs, 0xaba5e7, Options{})
	if rep.Failure != nil {
		t.Fatalf("harris set violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

// TestHashRandomWalks walks the split-ordered hash set under a plan
// that mixes same-bucket contention (keys 1, 3, 5 all live in bucket 1
// of the initial 2-bucket table, so splits, adoptions and window CASes
// collide) with cross-bucket traffic and recycling.
func TestHashRandomWalks(t *testing.T) {
	runs := 300
	if testing.Short() {
		runs = 60
	}
	build := WeakSetBuilder(HashSet, []uint64{4, 6},
		[][]SetOp{
			{{Kind: "add", Key: 1}, {Kind: "rem", Key: 6}, {Kind: "has", Key: 3}},
			{{Kind: "add", Key: 3}, {Kind: "rem", Key: 1}, {Kind: "add", Key: 5}},
		})
	rep := Walk(build, runs, 0x5b117, Options{})
	if rep.Failure != nil {
		t.Fatalf("hash set violated linearizability: %v (schedule %v)",
			rep.Failure.Err, rep.Failure.Schedule)
	}
}

func TestSetBackendNames(t *testing.T) {
	for b, want := range map[SetBackend]string{
		CowSet: "cow", HarrisSet: "harris", HashSet: "hash",
	} {
		if got := b.String(); got != want {
			t.Fatalf("SetBackend(%d).String() = %q, want %q", b, got, want)
		}
	}
}
