package sched

import (
	"errors"
	"fmt"

	"repro/internal/deque"
	lin "repro/internal/linearizability"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/stack"
)

// StackOp is one planned weak stack operation for a model-checked run.
type StackOp struct {
	// Push selects weak_push (with Value) over weak_pop.
	Push bool
	// Value is the pushed value.
	Value uint64
}

// QueueOp is one planned weak queue operation for a model-checked run.
type QueueOp struct {
	// Enq selects a weak enqueue (with Value) over a weak dequeue.
	Enq bool
	// Value is the enqueued value.
	Value uint64
}

func stackOutcome(err error) string {
	switch {
	case err == nil:
		return lin.OutcomeOK
	case errors.Is(err, stack.ErrFull):
		return lin.OutcomeFull
	case errors.Is(err, stack.ErrEmpty):
		return lin.OutcomeEmpty
	case errors.Is(err, stack.ErrAborted):
		return lin.OutcomeAborted
	default:
		panic(err)
	}
}

func queueOutcome(err error) string {
	switch {
	case err == nil:
		return lin.OutcomeOK
	case errors.Is(err, queue.ErrFull):
		return lin.OutcomeFull
	case errors.Is(err, queue.ErrEmpty):
		return lin.OutcomeEmpty
	case errors.Is(err, queue.ErrAborted):
		return lin.OutcomeAborted
	default:
		panic(err)
	}
}

// weakStack is the common surface of the model-checked stacks. The
// operations take the calling pid: the pooled backends route node
// recycling through per-pid free lists; the others ignore it.
type weakStack interface {
	TryPush(pid int, v uint64) error
	TryPop(pid int) (uint64, error)
}

// pidlessStack adapts the pid-oblivious weak stacks.
type pidlessStack struct {
	s interface {
		TryPush(v uint64) error
		TryPop() (uint64, error)
	}
}

func (a pidlessStack) TryPush(_ int, v uint64) error { return a.s.TryPush(v) }
func (a pidlessStack) TryPop(_ int) (uint64, error)  { return a.s.TryPop() }

// packedAdapter lifts the uint32-valued packed stack to uint64.
type packedAdapter struct{ s *stack.Packed }

func (a packedAdapter) TryPush(v uint64) error { return a.s.TryPush(uint32(v)) }
func (a packedAdapter) TryPop() (uint64, error) {
	v, err := a.s.TryPop()
	return uint64(v), err
}

// StackBackend selects the implementation a stack Builder checks.
type StackBackend int

const (
	// Boxed is the Figure 1 stack on boxed registers.
	Boxed StackBackend = iota
	// PackedWords is the Figure 1 stack on bit-packed registers.
	PackedWords
	// NaiveABA is the deliberately untagged strawman of §2.2.
	NaiveABA
	// PooledTreiber is the Treiber stack over recycled pooled nodes
	// with a tagged head register.
	PooledTreiber
	// PooledAbortable is the Figure 1 stack over pooled, tagged
	// registers (validated-snapshot reads).
	PooledAbortable
)

// String names the backend.
func (b StackBackend) String() string {
	switch b {
	case Boxed:
		return "boxed"
	case PackedWords:
		return "packed"
	case NaiveABA:
		return "naive"
	case PooledTreiber:
		return "pooled-treiber"
	case PooledAbortable:
		return "pooled-abortable"
	default:
		return "unknown"
	}
}

// WeakStackBuilder returns a Builder that prefills a fresh stack of
// capacity k with initial (bottom first), runs the per-process plans
// as weak operations, and checks the recorded history against the
// sequential stack model. Aborted operations take no effect by the
// abortable-object contract, so they are dropped from the history; a
// backend that "aborts" an operation that *did* take effect (the ABA
// failure mode) is caught as a linearizability violation of the
// remaining history.
func WeakStackBuilder(backend StackBackend, k int, initial []uint64, plans [][]StackOp) Builder {
	return weakStackBuilder(backend, k, initial, plans, false)
}

// SoloNeverAborts is WeakStackBuilder for a single process whose check
// additionally fails if any operation returned ⊥: a solo weak
// operation must always succeed (claim A2, the obstruction-freedom of
// the abortable object).
func SoloNeverAborts(backend StackBackend, k int, initial []uint64, plan []StackOp) Builder {
	return weakStackBuilder(backend, k, initial, [][]StackOp{plan}, true)
}

func weakStackBuilder(backend StackBackend, k int, initial []uint64, plans [][]StackOp, forbidAborts bool) Builder {
	return weakStackBuilderPost(backend, k, initial, plans, forbidAborts, nil)
}

// newWeakStack builds the observed weak stack a backend selects, for
// procs processes (the pooled backends size their free lists by it).
func newWeakStack(backend StackBackend, k, procs int, obs memory.Observer) weakStack {
	switch backend {
	case Boxed:
		return pidlessStack{stack.NewAbortableObserved[uint64](k, obs)}
	case PackedWords:
		return pidlessStack{packedAdapter{stack.NewPackedObserved(k, obs)}}
	case NaiveABA:
		return pidlessStack{stack.NewNaiveObserved[uint64](k, obs)}
	case PooledTreiber:
		return stack.NewTreiberPooledObserved(max(procs, 1), obs)
	case PooledAbortable:
		return stack.NewAbortablePooledObserved(k, max(procs, 1), obs)
	default:
		panic("sched: unknown stack backend")
	}
}

// weakStackBuilderPost additionally runs post(s) during Check, after
// the linearizability verdict; the pooled ABA schedules use it to
// assert that node recycling actually occurred.
func weakStackBuilderPost(backend StackBackend, k int, initial []uint64, plans [][]StackOp, forbidAborts bool, post func(s weakStack) error) Builder {
	return func(obs memory.Observer) Run {
		s := newWeakStack(backend, k, len(plans), obs)
		for _, v := range initial {
			if err := s.TryPush(0, v); err != nil {
				panic(fmt.Sprintf("sched: prefill: %v", err))
			}
		}
		rec := lin.NewRecorder(len(plans))
		// The prefill is part of the object's initial state: replay
		// it as history ops that precede everything else.
		for _, v := range initial {
			pend := rec.Invoke(0, "push", v)
			rec.Return(pend, 0, lin.OutcomeOK)
		}
		ops := make([][]func(), len(plans))
		for pid, plan := range plans {
			for _, p := range plan {
				pid, p := pid, p
				if p.Push {
					ops[pid] = append(ops[pid], func() {
						pend := rec.Invoke(pid, "push", p.Value)
						err := s.TryPush(pid, p.Value)
						rec.Return(pend, 0, stackOutcome(err))
					})
				} else {
					ops[pid] = append(ops[pid], func() {
						pend := rec.Invoke(pid, "pop", 0)
						v, err := s.TryPop(pid)
						rec.Return(pend, v, stackOutcome(err))
					})
				}
			}
		}
		return Run{Ops: ops, Check: func() error {
			if forbidAborts {
				if n := rec.Aborts(); n > 0 {
					return fmt.Errorf("%d solo weak operation(s) aborted", n)
				}
			}
			h := rec.History()
			res := lin.Check(lin.StackModel(k), h, 0)
			if res.Exhausted {
				return fmt.Errorf("sched: linearizability check exhausted")
			}
			if !res.Ok {
				return fmt.Errorf("history not linearizable: %v", h)
			}
			if post != nil {
				return post(s)
			}
			return nil
		}}
	}
}

// weakQueue is the common surface of the model-checked queues. The
// operations take the calling pid (used by the pooled backend's free
// lists, ignored elsewhere).
type weakQueue interface {
	TryEnqueue(pid int, v uint64) error
	TryDequeue(pid int) (uint64, error)
}

// pidlessQueue adapts the pid-oblivious weak queues.
type pidlessQueue struct {
	q interface {
		TryEnqueue(v uint64) error
		TryDequeue() (uint64, error)
	}
}

func (a pidlessQueue) TryEnqueue(_ int, v uint64) error { return a.q.TryEnqueue(v) }
func (a pidlessQueue) TryDequeue(_ int) (uint64, error) { return a.q.TryDequeue() }

// packedQueueAdapter lifts the uint32-valued packed queue to uint64.
type packedQueueAdapter struct{ q *queue.Packed }

func (a packedQueueAdapter) TryEnqueue(v uint64) error { return a.q.TryEnqueue(uint32(v)) }
func (a packedQueueAdapter) TryDequeue() (uint64, error) {
	v, err := a.q.TryDequeue()
	return uint64(v), err
}

// pooledMSAdapter fits the pooled Michael-Scott queue to the weakQueue
// shape. Its operations are strong (they retry internally and never
// abort), so the "weak" enqueue always returns nil.
type pooledMSAdapter struct{ q *queue.MichaelScottPooled }

func (a pooledMSAdapter) TryEnqueue(pid int, v uint64) error { a.q.Enqueue(pid, v); return nil }
func (a pooledMSAdapter) TryDequeue(pid int) (uint64, error) { return a.q.Dequeue(pid) }

// QueueBackend selects the implementation a queue Builder checks.
type QueueBackend int

const (
	// BoxedQueue is the abortable ring queue on boxed value registers.
	BoxedQueue QueueBackend = iota
	// PackedQueue is the abortable ring queue on bit-packed registers.
	PackedQueue
	// PooledMSQueue is the Michael-Scott queue over recycled pooled
	// nodes with tagged head/tail registers (k is ignored: unbounded).
	PooledMSQueue
)

// String names the backend.
func (b QueueBackend) String() string {
	switch b {
	case BoxedQueue:
		return "boxed"
	case PackedQueue:
		return "packed"
	case PooledMSQueue:
		return "pooled-ms"
	default:
		return "unknown"
	}
}

// WeakQueueBuilder is WeakStackBuilder's FIFO sibling over the boxed
// abortable bounded queue.
func WeakQueueBuilder(k int, initial []uint64, plans [][]QueueOp) Builder {
	return weakQueueBuilder(BoxedQueue, k, initial, plans, nil)
}

// WeakPackedQueueBuilder model-checks the packed queue backend.
func WeakPackedQueueBuilder(k int, initial []uint64, plans [][]QueueOp) Builder {
	return weakQueueBuilder(PackedQueue, k, initial, plans, nil)
}

// WeakPooledMSQueueBuilder model-checks the pooled Michael-Scott
// queue (unbounded; k only bounds the linearizability model, pass 0).
func WeakPooledMSQueueBuilder(initial []uint64, plans [][]QueueOp) Builder {
	return weakQueueBuilder(PooledMSQueue, 0, initial, plans, nil)
}

func weakQueueBuilder(backend QueueBackend, k int, initial []uint64, plans [][]QueueOp, post func(q weakQueue) error) Builder {
	return func(obs memory.Observer) Run {
		var q weakQueue
		switch backend {
		case BoxedQueue:
			q = pidlessQueue{queue.NewAbortableObserved[uint64](k, obs)}
		case PackedQueue:
			q = pidlessQueue{packedQueueAdapter{queue.NewPackedObserved(k, obs)}}
		case PooledMSQueue:
			q = pooledMSAdapter{queue.NewMichaelScottPooledObserved(max(len(plans), 1), obs)}
		default:
			panic("sched: unknown queue backend")
		}
		for _, v := range initial {
			if err := q.TryEnqueue(0, v); err != nil {
				panic(fmt.Sprintf("sched: prefill: %v", err))
			}
		}
		rec := lin.NewRecorder(len(plans))
		for _, v := range initial {
			pend := rec.Invoke(0, "enq", v)
			rec.Return(pend, 0, lin.OutcomeOK)
		}
		ops := make([][]func(), len(plans))
		for pid, plan := range plans {
			for _, p := range plan {
				pid, p := pid, p
				if p.Enq {
					ops[pid] = append(ops[pid], func() {
						pend := rec.Invoke(pid, "enq", p.Value)
						err := q.TryEnqueue(pid, p.Value)
						rec.Return(pend, 0, queueOutcome(err))
					})
				} else {
					ops[pid] = append(ops[pid], func() {
						pend := rec.Invoke(pid, "deq", 0)
						v, err := q.TryDequeue(pid)
						rec.Return(pend, v, queueOutcome(err))
					})
				}
			}
		}
		return Run{Ops: ops, Check: func() error {
			h := rec.History()
			res := lin.Check(lin.QueueModel(k), h, 0)
			if res.Exhausted {
				return fmt.Errorf("sched: linearizability check exhausted")
			}
			if !res.Ok {
				return fmt.Errorf("history not linearizable: %v", h)
			}
			if post != nil {
				return post(q)
			}
			return nil
		}}
	}
}

// DequeOp is one planned weak deque operation for a model-checked run.
type DequeOp struct {
	// Kind is one of "pushl", "pushr", "popl", "popr".
	Kind string
	// Value is the pushed value (push kinds only).
	Value uint64
}

func dequeOutcome(err error) string {
	switch {
	case err == nil:
		return lin.OutcomeOK
	case errors.Is(err, deque.ErrFull):
		return lin.OutcomeFull
	case errors.Is(err, deque.ErrEmpty):
		return lin.OutcomeEmpty
	case errors.Is(err, deque.ErrAborted):
		return lin.OutcomeAborted
	default:
		panic(err)
	}
}

// WeakDequeBuilder model-checks the HLM abortable deque of capacity
// k: prefill with rightward pushes of initial, run the per-process
// plans, check the recorded history against the deque model.
func WeakDequeBuilder(k int, initial []uint64, plans [][]DequeOp) Builder {
	return func(obs memory.Observer) Run {
		d := deque.NewAbortableObserved(k, obs)
		for _, v := range initial {
			if err := d.TryPushRight(uint32(v)); err != nil {
				panic(fmt.Sprintf("sched: prefill: %v", err))
			}
		}
		rec := lin.NewRecorder(len(plans))
		for _, v := range initial {
			pend := rec.Invoke(0, "pushr", v)
			rec.Return(pend, 0, lin.OutcomeOK)
		}
		ops := make([][]func(), len(plans))
		for pid, plan := range plans {
			for _, p := range plan {
				pid, p := pid, p
				ops[pid] = append(ops[pid], func() {
					pend := rec.Invoke(pid, p.Kind, p.Value)
					var v uint32
					var err error
					switch p.Kind {
					case "pushr":
						err = d.TryPushRight(uint32(p.Value))
					case "pushl":
						err = d.TryPushLeft(uint32(p.Value))
					case "popr":
						v, err = d.TryPopRight()
					case "popl":
						v, err = d.TryPopLeft()
					default:
						panic("sched: unknown deque op kind")
					}
					rec.Return(pend, uint64(v), dequeOutcome(err))
				})
			}
		}
		return Run{Ops: ops, Check: func() error {
			h := rec.History()
			res := lin.Check(lin.DequeModel(k), h, 0)
			if res.Exhausted {
				return fmt.Errorf("sched: linearizability check exhausted")
			}
			if !res.Ok {
				return fmt.Errorf("history not linearizable: %v", h)
			}
			return nil
		}}
	}
}

func sortOpsByCall(h []lin.Op) {
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && h[j].Call < h[j-1].Call; j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

// ABASchedule returns the builder and the handcrafted schedule that
// exhibit §2.2's ABA failure deterministically on the Naive stack
// (experiment E8): process 0 starts a pop of b from [a b], is
// preempted between its value read and its index CAS, while process 1
// pops b, pops a, then pushes x and y. Process 0's stale CAS then
// succeeds — it returns the already-popped b and the freshly pushed y
// is lost. The same schedule shape on the tagged backends fails the
// stale CAS instead, so their checks pass.
func ABASchedule(backend StackBackend) (Builder, []int) {
	build := WeakStackBuilder(backend, 4,
		[]uint64{10, 20}, // a=10, b=20
		[][]StackOp{
			{{Push: false}}, // p0: pop
			{ // p1: pop b, pop a, push x, push y
				{Push: false},
				{Push: false},
				{Push: true, Value: 30},
				{Push: true, Value: 40},
			},
		})
	// p0 performs its pop's accesses except the final CAS; p1 runs all
	// four operations to completion; p0 finishes. The access counts
	// are implementation-exact and verified by the sched tests:
	//
	//   naive:  p0 pop prefix = 2 (read TOP, read cell);
	//           p1 = 4 ops × 3 accesses = 12.
	//   packed: p0 pop prefix = 4 (read TOP, help read, help CAS,
	//           read below); p1 = 4 ops × 5 accesses = 20 (the packed
	//           help CAS is unconditional, as in the paper).
	//   boxed:  p0 prefix = 4 as above, but p1's first pop skips its
	//           help CAS (p0 already completed that lazy write), so
	//           p1 = 4 + 5 + 5 + 5 = 19.
	var p0Prefix, p1Ops int
	switch backend {
	case NaiveABA:
		p0Prefix, p1Ops = 2, 12
	case Boxed:
		p0Prefix, p1Ops = 4, 19
	default:
		p0Prefix, p1Ops = 4, 20
	}
	sched := make([]int, 0, p0Prefix+p1Ops+1)
	for i := 0; i < p0Prefix; i++ {
		sched = append(sched, 0)
	}
	for i := 0; i < p1Ops; i++ {
		sched = append(sched, 1)
	}
	sched = append(sched, 0) // p0's final CAS
	return build, sched
}

// PooledTreiberABASchedule returns the builder and handcrafted
// schedule that force the §2.2 recycled-node scenario on the pooled
// Treiber stack: process 0 starts a pop of b from [a b], is preempted
// between its head read and head CAS, while process 1 pops b, pops a,
// then pushes 30 and 40 — the per-pid free list is LIFO, so 30 reuses
// a's node and 40 reuses b's, and b's handle is the head again when p0
// resumes. Without the tag p0's stale CAS would succeed on the
// recycled handle (returning the long-gone b and unlinking 40); the
// tag, advanced by p1's four head CASes, makes it fail, so the pop
// aborts and the history stays linearizable. Check also asserts that
// recycling really happened (>= 2 reuses).
//
// Gate counts: every pooled Treiber attempt performs exactly 2
// observed accesses (head read, head CAS; node derefs and pool traffic
// are arena-private). p0's prefix is its head read; p1 runs 4 ops to
// completion (8 accesses); p0's final grant is the stale CAS.
func PooledTreiberABASchedule() (Builder, []int) {
	build := weakStackBuilderPost(PooledTreiber, 4,
		[]uint64{10, 20}, // a=10, b=20
		[][]StackOp{
			{{Push: false}}, // p0: pop
			{ // p1: pop b, pop a, push 30, push 40
				{Push: false},
				{Push: false},
				{Push: true, Value: 30},
				{Push: true, Value: 40},
			},
		},
		false,
		func(s weakStack) error {
			st := s.(*stack.TreiberPooled).PoolStats()
			if st.Reuses < 2 {
				return fmt.Errorf("schedule recycled %d nodes, want >= 2 (no reuse pressure)", st.Reuses)
			}
			return nil
		})
	sched := []int{0}
	for i := 0; i < 8; i++ {
		sched = append(sched, 1)
	}
	return build, append(sched, 0)
}

// PooledMSABASchedule is the queue-shaped sibling on the pooled
// Michael-Scott queue: process 0 starts a dequeue of [10] (head = the
// dummy d), is preempted before its head CAS, while process 1
// dequeues 10 (retiring d), enqueues 30 (recycling d as the new node)
// and dequeues 30 — moving head THROUGH other nodes and BACK to d's
// handle. p0's stale CAS then compares equal on the handle — the
// textbook ABA — and only the tag (advanced by two head CASes) makes
// it fail; p0 retries and correctly reports empty.
//
// Gate counts (observed accesses are head/tail register reads and
// CASes; node next-words and pool traffic are arena-private): a
// dequeue attempt gates head read, tail read, head re-read
// (consistency), head CAS — the empty path stops after the re-read; an
// enqueue gates tail read, tail re-read, tail swing CAS. So p0
// prefixes 3 gates, p1 runs deq+enq+deq = 4+3+4 = 11, p0 finishes
// with its failed CAS plus a 3-gate empty retry.
func PooledMSABASchedule() (Builder, []int) {
	build := weakQueueBuilder(PooledMSQueue, 0,
		[]uint64{10},
		[][]QueueOp{
			{{Enq: false}}, // p0: deq
			{ // p1: deq 10, enq 30, deq 30
				{Enq: false},
				{Enq: true, Value: 30},
				{Enq: false},
			},
		},
		func(q weakQueue) error {
			st := q.(pooledMSAdapter).q.PoolStats()
			if st.Reuses < 1 {
				return fmt.Errorf("schedule recycled %d nodes, want >= 1 (no reuse pressure)", st.Reuses)
			}
			return nil
		})
	sched := []int{0, 0, 0}
	for i := 0; i < 11; i++ {
		sched = append(sched, 1)
	}
	return build, append(sched, 0, 0, 0, 0)
}
