package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/memory"
)

// counterBuilder builds a run of two processes each CAS-incrementing a
// shared register once, retry-free; check verifies both observed a
// consistent outcome.
func counterBuilder(fails *atomic.Int64) Builder {
	return func(obs memory.Observer) Run {
		w := memory.NewWordObserved(0, obs)
		results := make([]bool, 2)
		op := func(pid int) func() {
			return func() {
				v := w.Read()
				results[pid] = w.CAS(v, v+1)
			}
		}
		return Run{
			Ops: [][]func(){{op(0)}, {op(1)}},
			Check: func() error {
				wins := 0
				for _, r := range results {
					if r {
						wins++
					}
				}
				final := w.Read()
				if uint64(wins) != final {
					return fmt.Errorf("wins %d != final %d", wins, final)
				}
				if wins == 0 {
					fails.Add(1)
					return errors.New("both CASes failed (impossible)")
				}
				return nil
			},
		}
	}
}

func TestExploreEnumeratesAllInterleavings(t *testing.T) {
	var fails atomic.Int64
	rep := Explore(counterBuilder(&fails), Options{})
	if rep.Failure != nil {
		t.Fatalf("unexpected failure: %v", rep.Failure)
	}
	if !rep.Complete {
		t.Fatal("exploration did not complete")
	}
	// Two processes, two accesses each: C(4,2) = 6 interleavings.
	if rep.Schedules != 6 {
		t.Fatalf("schedules = %d, want 6", rep.Schedules)
	}
}

func TestExploreFindsInjectedBug(t *testing.T) {
	// A broken check: claim that the final counter is always 2 (only
	// true when the two increments do not race).
	build := func(obs memory.Observer) Run {
		w := memory.NewWordObserved(0, obs)
		op := func() {
			v := w.Read()
			w.CAS(v, v+1)
		}
		return Run{
			Ops: [][]func(){{op}, {op}},
			Check: func() error {
				if got := w.Read(); got != 2 {
					return fmt.Errorf("final = %d, want 2", got)
				}
				return nil
			},
		}
	}
	rep := Explore(build, Options{})
	if rep.Failure == nil {
		t.Fatal("exploration missed the interleaving where an increment is lost")
	}
	// The failing schedule must replay to the same failure.
	_, err := Replay(build, rep.Failure.Schedule, 0)
	if err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("replay of failing schedule: %v", err)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	build, schedule := ABASchedule(NaiveABA)
	var firstErr error
	for i := 0; i < 5; i++ {
		_, err := Replay(build, schedule, 0)
		if i == 0 {
			firstErr = err
			continue
		}
		if (err == nil) != (firstErr == nil) {
			t.Fatalf("replay %d differs: %v vs %v", i, err, firstErr)
		}
	}
}

func TestABAScheduleBreaksNaiveStack(t *testing.T) {
	// E8, deterministic half: the handcrafted §2.2 interleaving makes
	// the untagged stack return a non-linearizable history.
	build, schedule := ABASchedule(NaiveABA)
	trace, err := Replay(build, schedule, 0)
	if err == nil {
		t.Fatalf("ABA schedule did not break the naive stack (trace %v)", trace)
	}
	if !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

func TestABAScheduleHarmlessOnTaggedStacks(t *testing.T) {
	// E8, control half: the same interleaving shape cannot hurt the
	// sequence-tagged backends — the stale CAS fails and the operation
	// aborts instead of corrupting the stack.
	for _, backend := range []StackBackend{Boxed, PackedWords} {
		build, schedule := ABASchedule(backend)
		if _, err := Replay(build, schedule, 0); err != nil {
			t.Fatalf("%v backend failed under the ABA schedule: %v", backend, err)
		}
	}
}

func TestExhaustiveWeakStackTwoProcs(t *testing.T) {
	// Every interleaving of one weak push against one weak pop on a
	// small stack is linearizable, for both tagged backends.
	for _, backend := range []StackBackend{Boxed, PackedWords} {
		build := WeakStackBuilder(backend, 2, []uint64{7},
			[][]StackOp{
				{{Push: true, Value: 9}},
				{{Push: false}},
			})
		rep := Explore(build, Options{})
		if rep.Failure != nil {
			t.Fatalf("%v: %v\ntrace: %v", backend, rep.Failure.Err, rep.Failure.Trace)
		}
		if !rep.Complete {
			t.Fatalf("%v: exploration incomplete after %d schedules", backend, rep.Schedules)
		}
		t.Logf("%v: %d schedules, all linearizable", backend, rep.Schedules)
	}
}

func TestExhaustiveWeakStackPopPop(t *testing.T) {
	// Two racing pops must never both return the same value.
	build := WeakStackBuilder(Boxed, 2, []uint64{1, 2},
		[][]StackOp{
			{{Push: false}},
			{{Push: false}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("pop/pop race: %v", rep.Failure.Err)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestExhaustiveWeakQueueTwoProcs(t *testing.T) {
	// Enqueue racing dequeue on capacities 1 and 2, exhaustively.
	for _, k := range []int{1, 2} {
		var initial []uint64
		if k == 2 {
			initial = []uint64{5}
		}
		build := WeakQueueBuilder(k, initial,
			[][]QueueOp{
				{{Enq: true, Value: 9}},
				{{Enq: false}},
			})
		rep := Explore(build, Options{})
		if rep.Failure != nil {
			t.Fatalf("k=%d: %v\ntrace: %v", k, rep.Failure.Err, rep.Failure.Trace)
		}
		if !rep.Complete {
			t.Fatalf("k=%d: exploration incomplete", k)
		}
	}
}

func TestExhaustiveWeakPackedQueueTwoProcs(t *testing.T) {
	// The packed backend under the same exhaustive races.
	for _, k := range []int{1, 2} {
		var initial []uint64
		if k == 2 {
			initial = []uint64{5}
		}
		build := WeakPackedQueueBuilder(k, initial,
			[][]QueueOp{
				{{Enq: true, Value: 9}},
				{{Enq: false}},
			})
		rep := Explore(build, Options{})
		if rep.Failure != nil {
			t.Fatalf("k=%d: %v\ntrace: %v", k, rep.Failure.Err, rep.Failure.Trace)
		}
		if !rep.Complete {
			t.Fatalf("k=%d: exploration incomplete", k)
		}
	}
}

func TestExhaustiveWeakPackedQueueDeqDeq(t *testing.T) {
	build := WeakPackedQueueBuilder(2, []uint64{1, 2},
		[][]QueueOp{
			{{Enq: false}},
			{{Enq: false}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("deq/deq race: %v", rep.Failure.Err)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestExhaustiveWeakQueueEnqEnq(t *testing.T) {
	// Two racing enqueues on the last slot: exactly one may win; the
	// other aborts or reports full, never both succeeding.
	build := WeakQueueBuilder(1, nil,
		[][]QueueOp{
			{{Enq: true, Value: 1}},
			{{Enq: true, Value: 2}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("enq/enq race: %v", rep.Failure.Err)
	}
}

func TestSoloNeverAbortsModelChecked(t *testing.T) {
	// Claim A2 under the scheduler: a single process's weak ops never
	// abort, on every backend, including at the full/empty boundaries.
	plan := []StackOp{
		{Push: true, Value: 1},
		{Push: true, Value: 2},
		{Push: true, Value: 3}, // full (k=2)
		{Push: false},
		{Push: false},
		{Push: false}, // empty
	}
	for _, backend := range []StackBackend{Boxed, PackedWords} {
		rep := Explore(SoloNeverAborts(backend, 2, nil, plan), Options{})
		if rep.Failure != nil {
			t.Fatalf("%v: %v", backend, rep.Failure.Err)
		}
		if rep.Schedules != 1 {
			t.Fatalf("%v: solo run should have exactly 1 schedule, got %d", backend, rep.Schedules)
		}
	}
}

func TestWalkSamplesWithoutFailure(t *testing.T) {
	build := WeakStackBuilder(Boxed, 3, []uint64{1},
		[][]StackOp{
			{{Push: true, Value: 2}, {Push: false}},
			{{Push: false}, {Push: true, Value: 3}},
		})
	rep := Walk(build, 300, 42, Options{})
	if rep.Failure != nil {
		t.Fatalf("random walk found failure: %v", rep.Failure.Err)
	}
	if rep.Schedules != 300 {
		t.Fatalf("schedules = %d, want 300", rep.Schedules)
	}
}

func TestWalkFindsNaiveABAEventually(t *testing.T) {
	// E8, probabilistic half: random walks alone stumble on the ABA
	// interleaving of the naive stack.
	build := WeakStackBuilder(NaiveABA, 4, []uint64{10, 20},
		[][]StackOp{
			{{Push: false}},
			{{Push: false}, {Push: false}, {Push: true, Value: 30}, {Push: true, Value: 40}},
		})
	rep := Walk(build, 5000, 7, Options{})
	if rep.Failure == nil {
		t.Fatal("5000 random schedules never exhibited the ABA bug")
	}
}

func TestExploreRespectsScheduleBudget(t *testing.T) {
	var fails atomic.Int64
	rep := Explore(counterBuilder(&fails), Options{MaxSchedules: 2})
	if rep.Complete {
		t.Fatal("exploration claims completeness under a 2-schedule budget")
	}
	if rep.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2", rep.Schedules)
	}
}

func TestStepBudgetCatchesSpinning(t *testing.T) {
	// An op that spins on a register forever must be caught by the
	// step budget rather than hanging the scheduler.
	build := func(obs memory.Observer) Run {
		w := memory.NewWordObserved(0, obs)
		spin := func() {
			for w.Read() != 1 {
			}
		}
		return Run{Ops: [][]func(){{spin}}}
	}
	rep := Explore(build, Options{MaxSteps: 50, MaxSchedules: 1})
	if rep.Failure == nil || !errors.Is(rep.Failure.Err, ErrStepBudget) {
		t.Fatalf("spinning op not caught: %+v", rep.Failure)
	}
}

func TestReplayRejectsBogusSchedule(t *testing.T) {
	build := WeakStackBuilder(Boxed, 2, nil, [][]StackOp{{{Push: true, Value: 1}}})
	_, err := Replay(build, []int{5}, 0) // pid 5 does not exist
	if err == nil || !strings.Contains(err.Error(), "non-deterministic replay") {
		t.Fatalf("bogus schedule not rejected: %v", err)
	}
}

func TestBackendString(t *testing.T) {
	if Boxed.String() != "boxed" || PackedWords.String() != "packed" ||
		NaiveABA.String() != "naive" || StackBackend(9).String() != "unknown" {
		t.Fatal("StackBackend.String mismatch")
	}
}

func TestGidStable(t *testing.T) {
	a, b := gid(), gid()
	if a != b || a == 0 {
		t.Fatalf("gid unstable: %d, %d", a, b)
	}
	ch := make(chan uint64)
	go func() { ch <- gid() }()
	if other := <-ch; other == a {
		t.Fatal("distinct goroutines share a gid")
	}
}
