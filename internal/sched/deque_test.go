package sched

import "testing"

func TestExhaustiveDequeOppositeEnds(t *testing.T) {
	// pushr racing popl on a deque with one element: every
	// interleaving must be linearizable.
	build := WeakDequeBuilder(4, []uint64{7},
		[][]DequeOp{
			{{Kind: "pushr", Value: 9}},
			{{Kind: "popl"}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("pushr/popl race: %v\ntrace: %v", rep.Failure.Err, rep.Failure.Trace)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
	t.Logf("%d schedules, all linearizable", rep.Schedules)
}

func TestExhaustiveDequeSameEndPops(t *testing.T) {
	// Two racing right-pops over two elements: no duplicates, no
	// losses, in every interleaving.
	build := WeakDequeBuilder(4, []uint64{1, 2},
		[][]DequeOp{
			{{Kind: "popr"}},
			{{Kind: "popr"}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("popr/popr race: %v", rep.Failure.Err)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestExhaustiveDequeBothEndsOfSingleton(t *testing.T) {
	// The HLM hot spot: popl racing popr over ONE element — exactly
	// one may win it, the other gets empty or aborts.
	build := WeakDequeBuilder(4, []uint64{42},
		[][]DequeOp{
			{{Kind: "popl"}},
			{{Kind: "popr"}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("popl/popr singleton race: %v\ntrace: %v", rep.Failure.Err, rep.Failure.Trace)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestExhaustiveDequeEmptyRace(t *testing.T) {
	// pushl racing popr on an empty deque: the pop may see empty or
	// the pushed value, never garbage.
	build := WeakDequeBuilder(4, nil,
		[][]DequeOp{
			{{Kind: "pushl", Value: 5}},
			{{Kind: "popr"}},
		})
	rep := Explore(build, Options{})
	if rep.Failure != nil {
		t.Fatalf("pushl/popr empty race: %v", rep.Failure.Err)
	}
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
}

func TestWalkDequeThreeProcs(t *testing.T) {
	// Larger configuration via random walks: two ops per process,
	// all four kinds in play.
	build := WeakDequeBuilder(6, []uint64{1, 2},
		[][]DequeOp{
			{{Kind: "pushr", Value: 10}, {Kind: "popl"}},
			{{Kind: "pushl", Value: 20}, {Kind: "popr"}},
			{{Kind: "popr"}, {Kind: "pushr", Value: 30}},
		})
	rep := Walk(build, 400, 99, Options{})
	if rep.Failure != nil {
		t.Fatalf("3-proc walk: %v\ntrace: %v", rep.Failure.Err, rep.Failure.Trace)
	}
}
