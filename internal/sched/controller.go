package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
)

// Run is one concurrent test case instance: per-process operation
// sequences over a freshly built object, plus a final invariant check
// executed after all operations complete (in quiescence).
type Run struct {
	// Ops holds one operation list per process; operations of one
	// process execute sequentially on one goroutine.
	Ops [][]func()
	// Check, if non-nil, validates the final state and the collected
	// results (typically via the linearizability checker).
	Check func() error
}

// Builder constructs a fresh Run whose object's registers report to
// obs. It is invoked once per explored schedule, so it must not share
// mutable state between invocations.
type Builder func(obs memory.Observer) Run

// Step is one scheduled shared access.
type Step struct {
	// Pid is the process that performed the access.
	Pid int
	// Access is the kind of register access.
	Access memory.Kind
}

// decision is one scheduling choice: which ready process got the next
// access, among which candidates.
type decision struct {
	chosen     int
	candidates []int
}

// controller serializes the shared accesses of the run's processes:
// it blocks each process at its next access until granted, so that at
// every instant at most one process is between accesses. Unregistered
// goroutines (the builder and checker) pass through unhindered.
type controller struct {
	events chan event
	grants []chan struct{}
	open   atomic.Bool

	regMu sync.Mutex
	reg   map[uint64]int
}

type event struct {
	pid     int
	blocked bool // true: at a gate; false: process finished all ops
	access  memory.Kind
}

func newController() *controller {
	return &controller{
		events: make(chan event),
		reg:    make(map[uint64]int),
	}
}

// start sizes the per-process grant channels; it must be called after
// the run is built and before its processes are spawned.
func (c *controller) start(procs int) {
	c.grants = make([]chan struct{}, procs)
	for i := range c.grants {
		c.grants[i] = make(chan struct{}, 1)
	}
}

// OnAccess implements memory.Observer: block until the scheduler
// grants this process's next shared access.
func (c *controller) OnAccess(k memory.Kind) {
	if c.open.Load() {
		return
	}
	c.regMu.Lock()
	pid, ok := c.reg[gid()]
	c.regMu.Unlock()
	if !ok {
		return // builder/checker access: not scheduled
	}
	c.events <- event{pid: pid, blocked: true, access: k}
	<-c.grants[pid]
}

func (c *controller) register(pid int) {
	c.regMu.Lock()
	c.reg[gid()] = pid
	c.regMu.Unlock()
}

// runOutcome is the full record of one executed schedule.
type runOutcome struct {
	decisions []decision
	trace     []Step
	err       error // Check failure or run error (step budget, panic)
}

// ErrStepBudget reports a run that exceeded the per-run step budget,
// which under this scheduler means some operation performs an
// unbounded number of shared accesses (e.g. a spin loop).
var ErrStepBudget = fmt.Errorf("sched: step budget exceeded (spinning operation?)")

// runOnce executes one schedule of build's run: decisions follow
// prefix while it lasts, then always pick the lowest ready pid.
// maxSteps > 0 bounds the number of scheduling decisions.
func runOnce(build Builder, prefix []int, maxSteps int) runOutcome {
	return runSchedule(build, maxSteps, nil, func(d int, cands []int, blocked map[int]memory.Kind) (int, error) {
		if d < len(prefix) {
			pick := prefix[d]
			if _, ready := blocked[pick]; !ready {
				return 0, fmt.Errorf("sched: non-deterministic replay: pid %d not ready at decision %d (ready %v)", pick, d, cands)
			}
			return pick, nil
		}
		return cands[0], nil
	})
}

// runRandom executes one uniformly random schedule drawn from rng.
func runRandom(build Builder, rng *uint64, maxSteps int) runOutcome {
	return runSchedule(build, maxSteps, nil, func(_ int, cands []int, _ map[int]memory.Kind) (int, error) {
		return cands[int(splitmix64(rng)%uint64(len(cands)))], nil
	})
}

// runSchedule executes one schedule, consulting pick at every decision
// point. crashAfter is the run's CrashPlan: it maps a pid to the
// number of granted accesses after which that process crashes — it is
// never scheduled again and stays parked at its gate (the paper's §5
// crash model — a process stops between two shared accesses and takes
// no further steps). A nil plan disables crashes.
func runSchedule(build Builder, maxSteps int, crashAfter CrashPlan, pick func(d int, cands []int, blocked map[int]memory.Kind) (int, error)) runOutcome {
	var out runOutcome

	c := newController()
	run := build(c)
	procs := len(run.Ops)
	c.start(procs)

	var panicMu sync.Mutex
	var panicErr error
	var wg sync.WaitGroup
	for pid := range run.Ops {
		wg.Add(1)
		go func(pid int, ops []func()) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicErr == nil {
						panicErr = fmt.Errorf("sched: process %d panicked: %v", pid, r)
					}
					panicMu.Unlock()
					c.events <- event{pid: pid, blocked: false}
				}
			}()
			c.register(pid)
			for _, op := range ops {
				op()
			}
			c.events <- event{pid: pid, blocked: false}
		}(pid, run.Ops[pid])
	}

	// Scheduler loop: wait until every live process is blocked at a
	// gate (or finished), then grant one.
	running := procs
	finished := 0
	crashed := 0
	granted := make(map[int]int)
	blocked := make(map[int]memory.Kind)
	for finished+crashed < procs {
		for running > 0 {
			ev := <-c.events
			running--
			if !ev.blocked {
				finished++
				continue
			}
			if limit, dies := crashAfter[ev.pid]; dies && granted[ev.pid] >= limit {
				// The process crashes here: it stays parked at its
				// gate forever and is never scheduled again.
				crashed++
				continue
			}
			blocked[ev.pid] = ev.access
		}
		if len(blocked) == 0 {
			break // everyone finished or crashed
		}

		// Decision point.
		cands := make([]int, 0, len(blocked))
		for pid := range blocked {
			cands = append(cands, pid)
		}
		sort.Ints(cands)
		var next int
		next, out.err = pick(len(out.decisions), cands, blocked)
		if out.err == nil && maxSteps > 0 && len(out.decisions) >= maxSteps {
			out.err = ErrStepBudget
		}
		if out.err != nil {
			// Abort the run. Every live process is parked at its gate
			// (running == 0 here), so simply returning leaks them in a
			// permanently parked state: zero CPU, reclaimed only at
			// process exit. Releasing them instead would let a
			// genuinely spinning operation (the very thing the step
			// budget catches) burn a core forever. Acceptable for a
			// test substrate; aborts are rare and terminal.
			return out
		}

		out.decisions = append(out.decisions, decision{chosen: next, candidates: cands})
		out.trace = append(out.trace, Step{Pid: next, Access: blocked[next]})
		granted[next]++
		delete(blocked, next)
		running = 1
		c.grants[next] <- struct{}{}
	}
	c.open.Store(true)
	if crashed == 0 {
		wg.Wait()
	}
	// Survivor done-events happen-before their receipt above, so the
	// panic flag is safely visible even without wg.Wait.
	panicMu.Lock()
	out.err = panicErr
	panicMu.Unlock()
	if out.err == nil && run.Check != nil {
		out.err = run.Check()
	}
	return out
}

// ReplayWithCrashes executes one explicit schedule in which each pid
// in the CrashPlan permanently stops after its given number of granted
// shared accesses (the §5 crash model: a crashed process takes no
// further steps; its goroutine is leaked parked). The run ends when
// every non-crashed process finishes; Check then validates the
// survivors' view.
func ReplayWithCrashes(build Builder, schedule []int, crashAfter CrashPlan, maxSteps int) (trace []Step, err error) {
	if maxSteps == 0 {
		maxSteps = 10000
	}
	out := runSchedule(build, maxSteps, crashAfter, func(d int, cands []int, blocked map[int]memory.Kind) (int, error) {
		if d < len(schedule) {
			pick := schedule[d]
			if _, ready := blocked[pick]; !ready {
				return 0, fmt.Errorf("sched: non-deterministic replay: pid %d not ready at decision %d (ready %v)", pick, d, cands)
			}
			return pick, nil
		}
		return cands[0], nil
	})
	return out.trace, out.err
}
