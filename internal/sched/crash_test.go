package sched

import (
	"strings"
	"testing"

	"repro/internal/memory"
)

// crashSchedule grants p0 exactly n accesses; after p0 crashes the
// default policy schedules the survivor.
func crashSchedule(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func TestCrashMidPushEveryPoint(t *testing.T) {
	// §5: crash the pusher after each possible number of shared
	// accesses (a boxed weak push has 5); the survivor must complete
	// all its operations and see a consistent stack either way.
	survivor := []StackOp{
		{Push: true, Value: 100},
		{Push: false},
		{Push: false},
		{Push: false},
		{Push: false}, // drains to empty eventually
	}
	for _, backend := range []StackBackend{Boxed, PackedWords} {
		for crashAt := 0; crashAt <= 5; crashAt++ {
			build, crashes := CrashPush(backend, 8, []uint64{10, 20}, 77, crashAt, survivor)
			if _, err := ReplayWithCrashes(build, crashSchedule(crashAt), crashes, 0); err != nil {
				t.Fatalf("%v crashAt=%d: %v", backend, crashAt, err)
			}
		}
	}
}

func TestCrashBeyondOpCompletes(t *testing.T) {
	// A crash limit beyond the op's access count means no crash: the
	// run completes and the marker must be on the stack.
	build, crashes := CrashPush(Boxed, 8, nil, 77, 50,
		[]StackOp{{Push: false}})
	if _, err := ReplayWithCrashes(build, crashSchedule(5), crashes, 0); err != nil {
		t.Fatalf("uncrashed run failed: %v", err)
	}
}

func TestCrashSurvivorSeesEffectiveCrashedPush(t *testing.T) {
	// Crash the pusher right after its TOP CAS (access 5 of a boxed
	// push, counting the 5th as the CAS: grant all 5, crash before
	// any further op). The push took effect, so the survivor's pop
	// must return the marker — and the check must accept it via the
	// "crashed op took effect" branch.
	build, crashes := CrashPush(Boxed, 8, nil, 77, 5,
		[]StackOp{{Push: false}})
	if _, err := ReplayWithCrashes(build, crashSchedule(5), crashes, 0); err != nil {
		t.Fatalf("effective crashed push rejected: %v", err)
	}
}

func TestCrashRejectsNondeterministicSchedule(t *testing.T) {
	build, crashes := CrashPush(Boxed, 8, nil, 77, 1, []StackOp{{Push: false}})
	// Granting p0 three accesses contradicts a crash after one.
	_, err := ReplayWithCrashes(build, crashSchedule(3), crashes, 0)
	if err == nil || !strings.Contains(err.Error(), "non-deterministic replay") {
		t.Fatalf("expected replay mismatch, got %v", err)
	}
}

func TestCrashedHolderOfNaiveInvariantStillChecked(t *testing.T) {
	// Control: a run with no crashes through ReplayWithCrashes behaves
	// like Replay.
	build := WeakStackBuilder(Boxed, 2, []uint64{7},
		[][]StackOp{{{Push: true, Value: 9}}, {{Push: false}}})
	if _, err := ReplayWithCrashes(build, nil, nil, 0); err != nil {
		t.Fatalf("crash-free ReplayWithCrashes failed: %v", err)
	}
}

// TestCrashLeavesGateOpenForSurvivorChecks ensures the post-run Check
// (which reads registers through the same observer) is not blocked by
// the crashed process's controller.
func TestCrashLeavesGateOpenForSurvivorChecks(t *testing.T) {
	checked := false
	build := func(obs memory.Observer) Run {
		w := memory.NewWordObserved(0, obs)
		return Run{
			Ops: [][]func(){
				{func() { w.Write(1); w.Write(2) }},
				{func() { w.Read() }},
			},
			Check: func() error {
				_ = w.Read() // must not block
				checked = true
				return nil
			},
		}
	}
	if _, err := ReplayWithCrashes(build, []int{0}, map[int]int{0: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("Check did not run")
	}
}
