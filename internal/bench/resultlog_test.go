package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenDoc is a fully populated Doc exercising every field of the
// -json schema, including the optional error string and a
// multi-table experiment.
func goldenDoc() Doc {
	return Doc{
		Generated: "2026-08-07T00:00:00Z",
		Provenance: Provenance{
			GoVersion: "go1.24.0",
			OS:        "linux",
			Arch:      "amd64",
			NumCPU:    8,
			GitSHA:    "deadbeefcafe",
		},
		Procs:      4,
		DurationMS: 12.5,
		Quick:      true,
		Seed:       0x5eed,
		Failed:     1,
		Experiment: []ExperimentResult{
			{
				ID: "E21", Title: "scenario suite", Claim: "regime-dependent",
				Passed: true, DurationMS: 250.75,
				Tables: []TableResult{
					{
						Caption: "E21 scenario suite",
						Headers: []string{"scenario", "backend", "ops/s"},
						Rows: [][]string{
							{"steady-mixed", "stack/treiber", "123456.7"},
							{"steady-mixed", "stack/sensitive", "98765.4"},
						},
					},
					{
						Caption: "E21 extra",
						Headers: []string{"k", "v"},
						Rows:    [][]string{{"a", "1"}},
					},
				},
			},
			{
				ID: "E1", Title: "conservation", Claim: "no loss",
				Passed: false, Error: "stack/weak lost 1 element",
				DurationMS: 3.25,
				Tables:     nil,
			},
		},
	}
}

// golden is the exact serialized form of goldenDoc. Pinning the bytes
// pins the schema: committed BENCH_*.json files and cmd/slogate both
// depend on these field names and shapes, so renaming or retyping a
// field fails this test before it silently breaks a consumer. New
// fields may be appended — update the golden text when they are.
const golden = `{
  "generated": "2026-08-07T00:00:00Z",
  "provenance": {
    "go_version": "go1.24.0",
    "os": "linux",
    "arch": "amd64",
    "num_cpu": 8,
    "git_sha": "deadbeefcafe"
  },
  "procs": 4,
  "duration_ms": 12.5,
  "quick": true,
  "seed": 24301,
  "failed": 1,
  "experiments": [
    {
      "id": "E21",
      "title": "scenario suite",
      "claim": "regime-dependent",
      "passed": true,
      "duration_ms": 250.75,
      "tables": [
        {
          "caption": "E21 scenario suite",
          "headers": [
            "scenario",
            "backend",
            "ops/s"
          ],
          "rows": [
            [
              "steady-mixed",
              "stack/treiber",
              "123456.7"
            ],
            [
              "steady-mixed",
              "stack/sensitive",
              "98765.4"
            ]
          ]
        },
        {
          "caption": "E21 extra",
          "headers": [
            "k",
            "v"
          ],
          "rows": [
            [
              "a",
              "1"
            ]
          ]
        }
      ]
    },
    {
      "id": "E1",
      "title": "conservation",
      "claim": "no loss",
      "passed": false,
      "error": "stack/weak lost 1 element",
      "duration_ms": 3.25,
      "tables": null
    }
  ]
}
`

// TestDocGoldenRoundTrip pins the -json document schema: the golden
// bytes must encode exactly, decode back to a deeply equal value, and
// survive a WriteFile/ReadDoc disk round trip.
func TestDocGoldenRoundTrip(t *testing.T) {
	doc := goldenDoc()

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(raw) + "\n"; got != golden {
		t.Fatalf("Doc JSON schema drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}

	var back Doc
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, doc) {
		t.Fatalf("decode(golden) != original:\ngot  %+v\nwant %+v", back, doc)
	}

	path := filepath.Join(t.TempDir(), "golden.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != golden {
		t.Fatalf("WriteFile bytes drifted from golden:\n%s", onDisk)
	}
	fromDisk, err := ReadDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDisk, doc) {
		t.Fatalf("ReadDoc(WriteFile(doc)) != doc:\ngot  %+v\nwant %+v", fromDisk, doc)
	}
}

func TestDocFindHelpers(t *testing.T) {
	doc := goldenDoc()
	exp, ok := doc.FindExperiment("E21")
	if !ok || exp.ID != "E21" {
		t.Fatalf("FindExperiment(E21) = %+v, %v", exp, ok)
	}
	if _, ok := doc.FindExperiment("E99"); ok {
		t.Fatal("FindExperiment found a nonexistent id")
	}
	table, ok := exp.FindTable("E21 scenario suite")
	if !ok || len(table.Rows) != 2 {
		t.Fatalf("FindTable = %+v, %v", table, ok)
	}
	if _, ok := exp.FindTable("nope"); ok {
		t.Fatal("FindTable found a nonexistent caption")
	}
}

func TestCollectProvenance(t *testing.T) {
	t.Setenv("GITHUB_SHA", "")
	t.Setenv("GIT_SHA", "abc123")
	p := CollectProvenance()
	if p.GitSHA != "abc123" {
		t.Fatalf("GitSHA = %q, want GIT_SHA fallback", p.GitSHA)
	}
	if !strings.HasPrefix(p.GoVersion, "go") || p.NumCPU < 1 || p.OS == "" || p.Arch == "" {
		t.Fatalf("implausible provenance: %+v", p)
	}
	t.Setenv("GIT_SHA", "")
	// With no env override the stamp comes from `git rev-parse HEAD`
	// (the local-soak-artifact path); only with git unavailable too
	// does it degrade to "unknown".
	if head := gitHeadSHA(); head != "" {
		if p := CollectProvenance(); p.GitSHA != head {
			t.Fatalf("GitSHA with no env = %q, want git HEAD %q", p.GitSHA, head)
		}
	} else if p := CollectProvenance(); p.GitSHA != "unknown" {
		t.Fatalf("GitSHA with no env and no git = %q, want unknown", p.GitSHA)
	}
	t.Setenv("GITHUB_SHA", "ci-sha")
	if p := CollectProvenance(); p.GitSHA != "ci-sha" {
		t.Fatalf("GitSHA = %q, want GITHUB_SHA to win", p.GitSHA)
	}
}

func TestGitHeadSHAShape(t *testing.T) {
	// Whatever git answers (or doesn't), the helper only ever returns
	// the empty string or a full 40-hex sha — never an error message.
	sha := gitHeadSHA()
	if sha == "" {
		t.Skip("git unavailable here; the empty-string path is the result")
	}
	if len(sha) != 40 {
		t.Fatalf("gitHeadSHA = %q, not 40 chars", sha)
	}
	for _, c := range sha {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("gitHeadSHA = %q, not lowercase hex", sha)
		}
	}
}
