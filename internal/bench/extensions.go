package bench

import (
	"fmt"
	"io"

	"repro/internal/lock"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Lamport's fast mutex [16]: seven accesses contention-free (§1.2)",
		Claim: "in a contention-free context a process executes only seven shared-memory accesses to enter (and leave) the critical section, independent of n; under contention the cost depends on n",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "crash tolerance of the lock-free parts (§5)",
		Claim: "the algorithms still work despite process crashes if no process crashes while holding the lock: crash a weak push at every possible point and the survivor completes every operation on a consistent stack",
		Run:   runE13,
	})
}

func runE12(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()

	// Solo cost, for growing n: the defining property is that the
	// count is 7 regardless of n.
	tb := metrics.NewTable("n", "entry accesses", "entry+exit", "paper", "verdict")
	defer cfg.logTable("E12 entry cost", tb)
	for _, n := range []int{1, 2, 8, 64, 512} {
		var st memory.Stats
		l := lock.NewFastMutexObserved(n, &st)
		l.Acquire(n - 1)
		entry := st.Total()
		l.Release(n - 1)
		total := st.Total()
		verdict := "pass"
		if total != 7 {
			verdict = "FAIL"
		}
		tb.AddRow(n, entry, total, 7, verdict)
		if total != 7 {
			fprintf(w, "%s", tb.String())
			return fmt.Errorf("E12: solo fast-mutex cycle = %d accesses, want 7", total)
		}
	}
	if err := fprintf(w, "%s\n", tb.String()); err != nil {
		return err
	}

	// Contended cost: mean accesses per critical section as
	// contention grows (the paper: "depends on the number of
	// processes and the actual concurrency pattern").
	tb2 := metrics.NewTable("procs", "sections", "mean accesses/section")
	defer cfg.logTable("E12 sections", tb2)
	for _, procs := range procSteps(cfg.Procs) {
		var st memory.Stats
		l := lock.NewFastMutexObserved(procs, &st)
		counts := hammer(procs, cfg.Duration/2, cfg.Seed, func(pid int, _ uint64) error {
			l.Acquire(pid)
			l.Release(pid)
			return nil
		}, func(pid int) (uint64, error) {
			l.Acquire(pid)
			l.Release(pid)
			return 0, nil
		})
		sections := metrics.Sum(counts)
		tb2.AddRow(procs, sections, float64(st.Total())/float64(max64(sections, 1)))
	}
	return fprintf(w, "%s", tb2.String())
}

func runE13(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("backend", "crash point (accesses into weak_push)", "survivor ops", "verdict")
	defer cfg.logTable("E13 crash survival", tb)
	survivor := []sched.StackOp{
		{Push: true, Value: 100},
		{Push: false},
		{Push: false},
		{Push: false},
		{Push: false},
	}
	for _, backend := range []sched.StackBackend{sched.Boxed, sched.PackedWords} {
		for crashAt := 0; crashAt <= 5; crashAt++ {
			build, crashes := sched.CrashPush(backend, 8, []uint64{10, 20}, 77, crashAt, survivor)
			schedule := make([]int, crashAt)
			_, err := sched.ReplayWithCrashes(build, schedule, crashes, 0)
			verdict := "survivor consistent, all ops complete"
			if err != nil {
				verdict = "FAIL: " + err.Error()
			}
			tb.AddRow(backend.String(), crashAt, len(survivor), verdict)
			if err != nil {
				fprintf(w, "%s", tb.String())
				return fmt.Errorf("E13: %v crashAt=%d: %v", backend, crashAt, err)
			}
		}
	}
	if err := fprintf(w, "%s", tb.String()); err != nil {
		return err
	}
	return fprintf(w, "note: the slow-path lock is the only crash-vulnerable window (§5); the weak operations themselves tolerate a crash at every point\n")
}
