package bench

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Doc is the contbench -json document: the run's configuration and
// provenance plus one structured record per executed experiment. It
// is the schema of the committed BENCH_*.json trajectory files and
// the input contract of cmd/slogate, so it is pinned by a golden
// round-trip test (TestDocGoldenRoundTrip) — extend it with new
// fields freely, but never rename or retype an existing one.
type Doc struct {
	Generated  string             `json:"generated"`
	Provenance Provenance         `json:"provenance"`
	Procs      int                `json:"procs"`
	DurationMS float64            `json:"duration_ms"`
	Quick      bool               `json:"quick"`
	Seed       uint64             `json:"seed"`
	Failed     int                `json:"failed"`
	Experiment []ExperimentResult `json:"experiments"`
}

// Provenance stamps a result document with where its numbers came
// from, so a trajectory point is attributable to a toolchain, a
// host shape, and a commit.
type Provenance struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	// GitSHA is the commit of the checked-out tree the run was built
	// from, taken from $GITHUB_SHA (CI) or $GIT_SHA, else from
	// `git rev-parse HEAD` so local soak artifacts are attributable
	// too; "unknown" only when all three are unavailable.
	GitSHA string `json:"git_sha"`
}

// CollectProvenance fills a Provenance from the running binary and
// environment.
func CollectProvenance() Provenance {
	sha := os.Getenv("GITHUB_SHA")
	if sha == "" {
		sha = os.Getenv("GIT_SHA")
	}
	if sha == "" {
		sha = gitHeadSHA()
	}
	if sha == "" {
		sha = "unknown"
	}
	return Provenance{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GitSHA:    sha,
	}
}

// gitHeadSHA asks git for the working tree's HEAD commit; empty when
// git is missing, the cwd is not a repository, or the output is not a
// 40-hex sha (a shallow environment printing an error to stdout must
// not become the provenance stamp).
func gitHeadSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if len(sha) != 40 {
		return ""
	}
	for _, c := range sha {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
	}
	return sha
}

// WriteFile marshals the document (indented, trailing newline) to
// path.
func (d Doc) WriteFile(path string) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadDoc loads a -json document, as cmd/slogate and other
// BENCH_*.json consumers do.
func ReadDoc(path string) (Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return Doc{}, err
	}
	return d, nil
}

// FindExperiment returns the record with the given experiment id.
func (d Doc) FindExperiment(id string) (ExperimentResult, bool) {
	for _, e := range d.Experiment {
		if e.ID == id {
			return e, true
		}
	}
	return ExperimentResult{}, false
}

// FindTable returns the experiment's table with the given caption.
func (e ExperimentResult) FindTable(caption string) (TableResult, bool) {
	for _, t := range e.Tables {
		if t.Caption == caption {
			return t, true
		}
	}
	return TableResult{}, false
}

// ResultLog collects every experiment's result rows in structured form
// while the text tables stream to the console. cmd/contbench attaches
// one via Config.Log when asked for -json output: the same
// metrics.Table an experiment prints is recorded as headers+rows under
// the experiment's id, and the driver wraps them with pass/fail and
// timing metadata. Experiments run sequentially, but the log is
// mutex-guarded anyway so a table emitted from a helper goroutine
// cannot corrupt it.
type ResultLog struct {
	mu      sync.Mutex
	current *ExperimentResult
	results []ExperimentResult
}

// ExperimentResult is one experiment's structured outcome.
type ExperimentResult struct {
	ID         string        `json:"id"`
	Title      string        `json:"title"`
	Claim      string        `json:"claim"`
	Passed     bool          `json:"passed"`
	Error      string        `json:"error,omitempty"`
	DurationMS float64       `json:"duration_ms"`
	Tables     []TableResult `json:"tables"`
}

// TableResult is one metrics table in structured form. Caption names
// the table within its experiment (most experiments emit exactly one,
// captioned with the experiment id).
type TableResult struct {
	Caption string     `json:"caption"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Begin opens the record for one experiment; subsequent Table calls
// attach to it until End.
func (l *ResultLog) Begin(e Experiment) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.current = &ExperimentResult{ID: e.ID, Title: e.Title, Claim: e.Claim}
}

// Table records one emitted metrics table under the open experiment.
// Without an open experiment (a table printed outside the driver loop)
// the call is dropped.
func (l *ResultLog) Table(caption string, t *metrics.Table) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.current == nil {
		return
	}
	l.current.Tables = append(l.current.Tables, TableResult{
		Caption: caption,
		Headers: t.Headers(),
		Rows:    t.Rows(),
	})
}

// End closes the open experiment record with its verdict and timing.
func (l *ResultLog) End(err error, durationMS float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.current == nil {
		return
	}
	l.current.Passed = err == nil
	if err != nil {
		l.current.Error = err.Error()
	}
	l.current.DurationMS = durationMS
	l.results = append(l.results, *l.current)
	l.current = nil
}

// Results returns the completed experiment records.
func (l *ResultLog) Results() []ExperimentResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ExperimentResult(nil), l.results...)
}

// logTable records tb under the caption when a ResultLog is attached;
// every experiment defers it at table creation, so -json output
// carries exactly the rows the console shows. Tables are identified
// by caption — defer ordering means an experiment's Tables array is
// not guaranteed to match its console print order.
func (c Config) logTable(caption string, tb *metrics.Table) {
	if c.Log != nil {
		c.Log.Table(caption, tb)
	}
}
