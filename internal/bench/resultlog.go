package bench

import (
	"sync"

	"repro/internal/metrics"
)

// ResultLog collects every experiment's result rows in structured form
// while the text tables stream to the console. cmd/contbench attaches
// one via Config.Log when asked for -json output: the same
// metrics.Table an experiment prints is recorded as headers+rows under
// the experiment's id, and the driver wraps them with pass/fail and
// timing metadata. Experiments run sequentially, but the log is
// mutex-guarded anyway so a table emitted from a helper goroutine
// cannot corrupt it.
type ResultLog struct {
	mu      sync.Mutex
	current *ExperimentResult
	results []ExperimentResult
}

// ExperimentResult is one experiment's structured outcome.
type ExperimentResult struct {
	ID         string        `json:"id"`
	Title      string        `json:"title"`
	Claim      string        `json:"claim"`
	Passed     bool          `json:"passed"`
	Error      string        `json:"error,omitempty"`
	DurationMS float64       `json:"duration_ms"`
	Tables     []TableResult `json:"tables"`
}

// TableResult is one metrics table in structured form. Caption names
// the table within its experiment (most experiments emit exactly one,
// captioned with the experiment id).
type TableResult struct {
	Caption string     `json:"caption"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Begin opens the record for one experiment; subsequent Table calls
// attach to it until End.
func (l *ResultLog) Begin(e Experiment) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.current = &ExperimentResult{ID: e.ID, Title: e.Title, Claim: e.Claim}
}

// Table records one emitted metrics table under the open experiment.
// Without an open experiment (a table printed outside the driver loop)
// the call is dropped.
func (l *ResultLog) Table(caption string, t *metrics.Table) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.current == nil {
		return
	}
	l.current.Tables = append(l.current.Tables, TableResult{
		Caption: caption,
		Headers: t.Headers(),
		Rows:    t.Rows(),
	})
}

// End closes the open experiment record with its verdict and timing.
func (l *ResultLog) End(err error, durationMS float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.current == nil {
		return
	}
	l.current.Passed = err == nil
	if err != nil {
		l.current.Error = err.Error()
	}
	l.current.DurationMS = durationMS
	l.results = append(l.results, *l.current)
	l.current = nil
}

// Results returns the completed experiment records.
func (l *ResultLog) Results() []ExperimentResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ExperimentResult(nil), l.results...)
}

// logTable records tb under the caption when a ResultLog is attached;
// every experiment defers it at table creation, so -json output
// carries exactly the rows the console shows. Tables are identified
// by caption — defer ordering means an experiment's Tables array is
// not guaranteed to match its console print order.
func (c Config) logTable(caption string, tb *metrics.Table) {
	if c.Log != nil {
		c.Log.Table(caption, tb)
	}
}
