package bench

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmanager"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/stack"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "non-blocking global progress under maximal contention (Figure 2)",
		Claim: "whatever the contention pattern, at least one operation terminates: every window completes ops; abort rate grows with processes but throughput never reaches zero",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E5",
		Title: "throughput vs processes across implementations",
		Claim: "contention-sensitive ≈ lock-free solo; under contention it degrades gracefully toward the lock-based cost instead of collapsing",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "phased solo/storm/solo workload: latency and accesses per op (contention-sensitivity)",
		Claim: "in solo phases the sensitive stack pays the 6-access lock-free cost; only the storm phase pays for locking",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "contention-manager ablation on the retry loop (§5)",
		Claim: "pacing retries (yield/backoff) cuts aborts per operation at equal or better throughput than the bare loop",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E9",
		Title: "queue family: throughput and enq/deq non-interference (§1.1)",
		Claim: "enqueue and dequeue on a non-empty, non-full queue do not interfere: disjoint-end abort rates stay near zero while same-end contention behaves like the stack",
		Run:   runE9,
	})
}

func runE3(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("procs", "ops/s", "aborts/op", "min window ops", "windows")
	defer cfg.logTable("E3 contention windows", tb)
	for _, procs := range procSteps(cfg.Procs) {
		s := stack.NewNonBlocking[uint64](4) // tiny stack maximizes interference
		var stop atomic.Bool
		var totalOps, totalAborts atomic.Uint64
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := workload.NewRNG(cfg.Seed + uint64(pid))
				i := 0
				for !stop.Load() {
					var aborts int
					if workload.Balanced.NextIsPush(rng) {
						_, aborts = s.PushCounted(workload.Value(pid, i))
						i++
					} else {
						_, _, aborts = s.PopCounted()
					}
					totalOps.Add(1)
					totalAborts.Add(uint64(aborts))
				}
			}(p)
		}
		// Sample completed ops per window: global progress means every
		// window sees a positive delta.
		windows := 10
		window := cfg.Duration / time.Duration(windows)
		if window <= 0 {
			window = time.Millisecond
		}
		minWindow := uint64(1<<63 - 1)
		last := uint64(0)
		for i := 0; i < windows; i++ {
			time.Sleep(window)
			cur := totalOps.Load()
			if delta := cur - last; delta < minWindow {
				minWindow = delta
			}
			last = cur
		}
		stop.Store(true)
		wg.Wait()
		ops := totalOps.Load()
		abortsPerOp := float64(totalAborts.Load()) / float64(max64(ops, 1))
		tb.AddRow(procs, int64(opsPerSec(ops, cfg.Duration)), abortsPerOp, minWindow, windows)
		if minWindow == 0 {
			fprintf(w, "%s", tb.String())
			return errors.New("E3: a window with zero completed operations (global progress violated)")
		}
	}
	return fprintf(w, "%s", tb.String())
}

func runE5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const k = 1024
	tb := metrics.NewTable(append([]string{"impl"}, procLabels(procSteps(cfg.Procs))...)...)
	defer cfg.logTable("E5 stack scaling", tb)
	// The lock-based references, then every strong stack backend the
	// public catalog exports.
	for _, impl := range append(lockStackImpls(), catalogStackImpls()...) {
		row := []interface{}{impl.name}
		for _, procs := range procSteps(cfg.Procs) {
			push, pop := impl.build(k, procs)
			counts := hammer(procs, cfg.Duration, cfg.Seed, push, pop)
			row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		}
		tb.AddRow(row...)
	}
	if err := fprintf(w, "throughput (ops/s), stack capacity %d, balanced push/pop mix\n", k); err != nil {
		return err
	}
	return fprintf(w, "%s", tb.String())
}

func procLabels(steps []int) []string {
	out := make([]string, len(steps))
	for i, p := range steps {
		out[i] = "p=" + itoa(p)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func max64(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// phasedImpl is one measured configuration of E6: an instrumented
// stack and its per-phase driver.
func runE6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	opsPerPhase := 200000
	if cfg.Quick {
		opsPerPhase = 5000
	}
	phases := workload.SoloThenStorm(cfg.Procs, opsPerPhase)
	tb := metrics.NewTable("impl", "phase", "procs", "accesses/op", "mean latency", "p99")
	defer cfg.logTable("E6 latency phases", tb)

	type cfgRow struct {
		name  string
		stats *memory.Stats
		push  func(pid int, v uint64) error
		pop   func(pid int) (uint64, error)
		slow  func() uint64 // slow-path entries so far (sensitive only)
	}
	mk := func(name string) cfgRow {
		var st memory.Stats
		switch name {
		case "cont-sensitive":
			s := stack.NewSensitiveObserved[uint64](1024, cfg.Procs, &st)
			return cfgRow{name: name, stats: &st, push: s.Push, pop: s.Pop,
				slow: func() uint64 { return s.Guard().Stats().Slow }}
		case "non-blocking":
			weak := stack.NewAbortableObserved[uint64](1024, &st)
			s := stack.NewNonBlockingFrom[uint64](weak, nil)
			return cfgRow{name: name, stats: &st,
				push: func(_ int, v uint64) error { return s.Push(v) },
				pop:  func(_ int) (uint64, error) { return s.Pop() }}
		default:
			panic("unknown impl")
		}
	}

	for _, name := range []string{"cont-sensitive", "non-blocking"} {
		row := mk(name)
		for pi, ph := range phases {
			before := row.stats.Snapshot()
			var hist metrics.Histogram
			var wg sync.WaitGroup
			for p := 0; p < ph.Procs; p++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					rng := workload.NewRNG(cfg.Seed + uint64(pid*31+pi))
					for i := 0; i < ph.Ops; i++ {
						start := time.Now()
						if workload.Balanced.NextIsPush(rng) {
							_ = row.push(pid, workload.Value(pid, i))
						} else {
							_, _ = row.pop(pid)
						}
						hist.Record(time.Since(start))
					}
				}(p)
			}
			wg.Wait()
			delta := row.stats.Snapshot().Sub(before)
			totalOps := uint64(ph.Procs * ph.Ops)
			tb.AddRow(row.name, phaseName(pi), ph.Procs,
				float64(delta.Total())/float64(totalOps),
				hist.Mean().String(), hist.Percentile(99).String())
		}
	}
	if err := fprintf(w, "%s", tb.String()); err != nil {
		return err
	}
	return fprintf(w, "note: solo-phase accesses/op ≈ 6 for cont-sensitive (Theorem 1); storm pays retries/locking\n")
}

func phaseName(i int) string {
	switch i {
	case 0:
		return "solo-warm"
	case 1:
		return "storm"
	default:
		return "solo-cool"
	}
}

func runE7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("manager", "procs", "ops/s", "aborts/op")
	defer cfg.logTable("E7 contention managers", tb)
	procs := cfg.Procs

	// measure drives procs goroutines, each retrying weak ops through
	// its own manager instance from mk (shared managers just return
	// the same one).
	measure := func(name string, mk func(pid int) core.Manager) {
		weak := stack.NewAbortable[uint64](4)
		var stop atomic.Bool
		var totalOps, totalAborts atomic.Uint64
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				s := stack.NewNonBlockingFrom[uint64](weak, mk(pid))
				rng := workload.NewRNG(cfg.Seed + uint64(pid))
				i := 0
				for !stop.Load() {
					var aborts int
					if workload.Balanced.NextIsPush(rng) {
						_, aborts = s.PushCounted(workload.Value(pid, i))
						i++
					} else {
						_, _, aborts = s.PopCounted()
					}
					totalOps.Add(1)
					totalAborts.Add(uint64(aborts))
				}
			}(p)
		}
		time.Sleep(cfg.Duration)
		stop.Store(true)
		wg.Wait()
		ops := totalOps.Load()
		tb.AddRow(name, procs, int64(opsPerSec(ops, cfg.Duration)),
			float64(totalAborts.Load())/float64(max64(ops, 1)))
	}

	for _, name := range cmanager.Names() {
		m := cmanager.ByName(name)
		measure(name, func(int) core.Manager { return m })
	}
	// The §5 boosting extension: per-process handles of one shared
	// priority token.
	prio := cmanager.NewPriority(0)
	measure("priority", func(int) core.Manager { return prio.ForProc() })
	return fprintf(w, "%s", tb.String())
}

func runE9(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const k = 1024

	// Part 1: throughput scaling, mirroring E5: the lock-based and
	// boxed Michael-Scott references, then every strong queue backend
	// the public catalog exports.
	tb := metrics.NewTable(append([]string{"impl"}, procLabels(procSteps(cfg.Procs))...)...)
	defer cfg.logTable("E9 queue scaling", tb)
	for _, impl := range append(lockQueueImpls(), catalogQueueImpls()...) {
		row := []interface{}{impl.name}
		for _, procs := range procSteps(cfg.Procs) {
			enq, deq := impl.build(k, procs)
			counts := hammer(procs, cfg.Duration, cfg.Seed, enq, deq)
			row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		}
		tb.AddRow(row...)
	}
	if err := fprintf(w, "queue throughput (ops/s), capacity %d, balanced enq/deq mix\n%s", k, tb.String()); err != nil {
		return err
	}

	// Part 2: non-interference of disjoint ends. One enqueuer and one
	// dequeuer paced to stay in disjoint ring regions; then the
	// same-end control (two enqueuers).
	q := queue.NewAbortable[uint64](k)
	for i := uint64(0); i < k/2; i++ {
		if err := q.TryEnqueue(i); err != nil {
			return err
		}
	}
	side := 200000
	if cfg.Quick {
		side = 10000
	}
	var enqAborts, deqAborts atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		done := 0
		for done < side {
			if q.Len() > k*7/8 {
				continue
			}
			if err := q.TryEnqueue(uint64(done)); errors.Is(err, queue.ErrAborted) {
				enqAborts.Add(1)
			} else {
				done++
			}
		}
	}()
	go func() {
		defer wg.Done()
		done := 0
		for done < side {
			if q.Len() < k/8 {
				continue
			}
			if _, err := q.TryDequeue(); errors.Is(err, queue.ErrAborted) {
				deqAborts.Add(1)
			} else {
				done++
			}
		}
	}()
	wg.Wait()

	// Same-end control: two enqueuers on one queue.
	q2 := queue.NewAbortable[uint64](k)
	var sameEndAborts atomic.Uint64
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			done := 0
			for done < side/2 {
				err := q2.TryEnqueue(uint64(done))
				switch {
				case errors.Is(err, queue.ErrAborted):
					sameEndAborts.Add(1)
				case errors.Is(err, queue.ErrFull):
					if _, err := q2.TryDequeue(); err == nil {
						// drain to keep going; not counted
					}
				default:
					done++
				}
			}
		}(g)
	}
	wg.Wait()

	tb2 := metrics.NewTable("pattern", "ops/side", "abort rate")
	defer cfg.logTable("E9 non-interference", tb2)
	tb2.AddRow("enq vs deq (disjoint ends)", side,
		float64(enqAborts.Load()+deqAborts.Load())/float64(2*side))
	tb2.AddRow("enq vs enq (same end)", side,
		float64(sameEndAborts.Load())/float64(side))
	if err := fprintf(w, "\nnon-interference (§1.1): disjoint ends should not conflict\n%s", tb2.String()); err != nil {
		return err
	}
	return nil
}
