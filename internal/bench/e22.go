package bench

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "crash injection: §5 mid-operation crashes and combiner kills over every applicable backend",
		Claim: "crash tolerance is a property of the implementation, not the object: lock-free backends keep survivor progress with a crashed process's request at worst leaked (survivor-safe); flat combining survives even a combiner killed with the lease held, via the heartbeat lease takeover, recovering within the lease budget (lease-takeover); the Figure 3 lock family would wedge on an in-lock crash and is classified, not crashed (lock-vulnerable)",
		Gate:  "cmd/slogate -exp E22",
		Run:   runE22,
	})
}

// e22Caption names the table cmd/slogate looks up in the -json
// document; scenario.ParseCrashRows pins its column schema.
const e22Caption = "E22 crash suite"

func runE22(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	reruns, scale := 3, 1.0
	if cfg.Quick {
		reruns, scale = 2, 0.02
	}

	// Part 1: the pinned deterministic takeover replay — the combining
	// sibling of the ABA replays. The combiner is crashed at the exact
	// gate where it holds the lease with CONTENTION raised and a
	// foreign request accepted but unserved; the survivor must steal
	// the lease (the builder asserts Steals >= 1) and linearize.
	build, schedule, plan := sched.CombiningTakeoverSchedule()
	if _, err := sched.ReplayWithCrashes(build, schedule, plan, 0); err != nil {
		return fmt.Errorf("E22: pinned combiner-crash takeover replay: %v", err)
	}
	if err := fprintf(w, "pinned takeover replay: combiner crashed lease-held at gate %d; survivor stole the lease and the history linearized\n",
		len(schedule)); err != nil {
		return err
	}

	// Part 2: exhaustive crash-point sweep — the combiner dies at
	// every shared access of its contended push (lease acquisition,
	// CONTENTION raise, mid-apply, between slots, release) and the
	// survivor must always complete with a linearizable history.
	if err := sched.SweepCrashPoints(sched.CombiningCrashGates, func(crashAt int) (sched.Builder, sched.CrashPlan) {
		return sched.CombiningCrashBuilder(false), sched.CrashPlan{0: crashAt}
	}); err != nil {
		return fmt.Errorf("E22: combining crash-point sweep: %v", err)
	}
	if err := fprintf(w, "crash-point sweep: combiner crashed at each of %d gates, survivor linearized at every point\n",
		sched.CombiningCrashGates+1); err != nil {
		return err
	}

	// Part 3: the crash scenario suite over every applicable backend —
	// mid-operation crashes (abandoned requests), armed combiner kills,
	// and a half-fleet crash storm. The rows feed cmd/slogate's E22
	// gates: survivor progress, recovery latency, the conservation
	// bracket, and the catalog's Robustness classification.
	tb := metrics.NewTable(scenario.CrashRowColumns()...)
	defer cfg.logTable(e22Caption, tb)

	violations, stalls := 0, 0
	cells := 0
	for _, sc := range scenario.CrashLibrary() {
		// The scenario's own seed keeps streams stable across hosts;
		// a caller-chosen seed shifts every scenario deterministically.
		if cfg.Seed != 0x5eed {
			sc.Seed += cfg.Seed
		}
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			cells++
			for rerun := 0; rerun < reruns; rerun++ {
				res := scenario.Run(b, sc, scenario.Options{Scale: scale})
				conserved := "ok"
				if res.Conserved != nil {
					conserved = fmt.Sprintf("FAIL: %v", res.Conserved)
					violations++
				}
				if res.SurvivorOps == 0 {
					stalls++
				}
				tb.AddRow(sc.Name, b.Name, rerun, res.Procs, res.Ops, res.OKOps,
					res.Abandoned, res.OpsPerSec(), res.SurvivorOps, res.RecoveryNS,
					conserved, b.Robustness)
			}
		}
	}

	if err := fprintf(w, "%d crash scenarios x applicable backends (%d cells) x %d reruns, op-budget scale %.2f\n%s",
		len(scenario.CrashLibrary()), cells, reruns, scale, tb.String()); err != nil {
		return err
	}
	if err := fprintf(w, "note: abandoned ops may or may not take effect, so conservation is a bracket; recovery-ns is the worst process's crash-to-first-completed-op latency; gates are applied by cmd/slogate over the -json rows\n"); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("E22: %d crash run(s) violated the conservation bracket", violations)
	}
	if stalls > 0 {
		return fmt.Errorf("E22: %d crash run(s) made no survivor progress after the crash", stalls)
	}
	return nil
}
