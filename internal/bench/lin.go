package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro"
	lin "repro/internal/linearizability"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/set"
	"repro/internal/stack"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "linearizability of recorded histories (§3 linearization points, Theorem 1)",
		Claim: "every implementation's concurrent histories admit a legal linearization; aborted weak operations take no effect",
		Run:   runE11,
	})
}

// LinTarget is one implementation checked by E11 and by cmd/lincheck:
// a named builder that returns a uniform do(pid, push, v) driver for a
// fresh instance plus that implementation's sentinel errors.
type LinTarget struct {
	Name  string
	Kind  string // "stack" or "queue"
	K     int    // model capacity (0 = unbounded)
	Build func(procs int) (do func(pid int, push bool, v uint64) (uint64, error), full, empty, aborted error)
}

// LinTargets returns the implementations the linearizability
// experiments cover: every stack and queue backend in the public
// catalog (built through its capability interface, with the
// catalog's LinOpts applied — e.g. the sharded queue is globally
// FIFO only when pinned to one stripe), plus the internal-only
// packed and pooled Figure 1 variants the catalog does not export.
func LinTargets() []LinTarget {
	var out []LinTarget
	for _, b := range repro.Catalog() {
		if b.Kind != repro.KindStack && b.Kind != repro.KindQueue {
			continue
		}
		b := b
		modelK := 0
		capacity := 6 // stack model capacity; queues use 5
		if b.Kind == repro.KindQueue {
			capacity = 5
		}
		if b.Bounded {
			modelK = capacity
		}
		name := b.Name
		if b.LinNote != "" {
			name += "[" + b.LinNote + "]"
		}
		out = append(out, LinTarget{name, b.Kind, modelK, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			opts := append([]repro.Option{repro.WithCapacity(capacity), repro.WithProcs(procs)}, b.LinOpts...)
			if b.Kind == repro.KindStack {
				s := b.Stack(opts...)
				return func(pid int, push bool, v uint64) (uint64, error) {
					if push {
						return 0, s.Push(pid, v)
					}
					return s.Pop(pid)
				}, stack.ErrFull, stack.ErrEmpty, abortSentinel(b, stack.ErrAborted)
			}
			q := b.Queue(opts...)
			return func(pid int, enq bool, v uint64) (uint64, error) {
				if enq {
					return 0, q.Enqueue(pid, v)
				}
				return q.Dequeue(pid)
			}, queue.ErrFull, queue.ErrEmpty, abortSentinel(b, queue.ErrAborted)
		}})
	}
	return append(out, internalLinTargets()...)
}

// abortSentinel returns the kind's abort error for weak backends and
// nil for strong ones (whose uniform operations never abort).
func abortSentinel(b repro.Backend, aborted error) error {
	if b.Weak {
		return aborted
	}
	return nil
}

// internalLinTargets covers the implementations that are deliberately
// not in the public catalog — the packed bit-packing variants and the
// pooled Figure 1 retrofits — so their histories stay checked too.
func internalLinTargets() []LinTarget {
	return []LinTarget{
		{"stack/packed", "stack", 6, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			s := stack.NewPacked(6)
			return func(_ int, push bool, v uint64) (uint64, error) {
				if push {
					return 0, s.TryPush(uint32(v))
				}
				got, err := s.TryPop()
				return uint64(got), err
			}, stack.ErrFull, stack.ErrEmpty, stack.ErrAborted
		}},
		{"stack/abortable-pooled", "stack", 6, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			s := stack.NewAbortablePooled(6, procs)
			return func(pid int, push bool, v uint64) (uint64, error) {
				if push {
					return 0, s.TryPush(pid, v)
				}
				return s.TryPop(pid)
			}, stack.ErrFull, stack.ErrEmpty, stack.ErrAborted
		}},
		{"queue/packed", "queue", 5, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			q := queue.NewPacked(5)
			return func(_ int, enq bool, v uint64) (uint64, error) {
				if enq {
					return 0, q.TryEnqueue(uint32(v))
				}
				got, err := q.TryDequeue()
				return uint64(got), err
			}, queue.ErrFull, queue.ErrEmpty, queue.ErrAborted
		}},
		{"queue/michael-scott", "queue", 0, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			q := queue.NewMichaelScott[uint64]()
			return func(_ int, enq bool, v uint64) (uint64, error) {
				if enq {
					q.Enqueue(v)
					return 0, nil
				}
				return q.Dequeue()
			}, queue.ErrFull, queue.ErrEmpty, nil
		}},
		{"queue/abortable-pooled", "queue", 5, func(procs int) (func(int, bool, uint64) (uint64, error), error, error, error) {
			q := queue.NewAbortablePooled(5)
			return func(_ int, enq bool, v uint64) (uint64, error) {
				if enq {
					return 0, q.TryEnqueue(v)
				}
				return q.TryDequeue()
			}, queue.ErrFull, queue.ErrEmpty, queue.ErrAborted
		}},
	}
}

// SetLinTarget is one set-tier implementation checked by E11 and by
// cmd/lincheck: a named builder returning a uniform do(pid, op, key)
// driver — op is 0 for add, 1 for remove, 2 for contains — plus the
// implementation's abort sentinel (nil for strong backends).
type SetLinTarget struct {
	Name  string
	Build func(procs int) (do func(pid int, op int, k uint64) (bool, error), aborted error)
}

// SetLinTargets returns the set implementations the linearizability
// experiments cover: every set backend in the public catalog, driven
// through SetAPI (whose op shape — a boolean answer plus an abort
// error on the weak backend — is exactly what RunSetLin records).
// The hash target starts at its initial bucket count, and RunSetLin's
// 8-key range over the 2-bucket fresh table keeps every lazy split
// and sentinel adoption inside the recorded histories.
func SetLinTargets() []SetLinTarget {
	var out []SetLinTarget
	for _, b := range repro.CatalogByKind(repro.KindSet) {
		b := b
		name := b.Name
		if b.LinNote != "" {
			name += "[" + b.LinNote + "]"
		}
		out = append(out, SetLinTarget{name, func(procs int) (func(int, int, uint64) (bool, error), error) {
			opts := append([]repro.Option{repro.WithProcs(procs)}, b.LinOpts...)
			s := b.Set(opts...)
			return func(pid int, op int, k uint64) (bool, error) {
				switch op {
				case 0:
					return s.Add(pid, k)
				case 1:
					return s.Remove(pid, k)
				default:
					return s.Contains(pid, k)
				}
			}, abortSentinel(b, set.ErrAborted)
		}})
	}
	return out
}

// setKinds maps the op code to the history kind the set model steps.
var setKinds = [3]string{"add", "rem", "has"}

// RunSetLin is RunLin's set-tier sibling: keys are drawn from a small
// range so windows overlap constantly, and every answer (the boolean,
// as Output 0/1) must admit a legal linearization of the sorted-set
// model. Aborted weak attempts are dropped.
func RunSetLin(tgt SetLinTarget, procs, rounds, perRound int, seed uint64) (ops, aborts int, res lin.Result) {
	do, aborted := tgt.Build(procs)
	rec := lin.NewRecorder(procs)
	const keyRange = 8
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid, round int) {
				defer wg.Done()
				rng := workload.NewRNG(seed + uint64(round*procs+pid))
				for i := 0; i < perRound; i++ {
					op := rng.Intn(3)
					k := uint64(rng.Intn(keyRange))
					pend := rec.Invoke(pid, setKinds[op], k)
					got, err := do(pid, op, k)
					out := uint64(0)
					if got {
						out = 1
					}
					switch {
					case err == nil:
						rec.Return(pend, out, lin.OutcomeOK)
					case aborted != nil && errors.Is(err, aborted):
						rec.Return(pend, 0, lin.OutcomeAborted)
					default:
						panic(err)
					}
				}
			}(p, round)
		}
		wg.Wait()
	}
	h := rec.History()
	return len(h), rec.Aborts(), lin.CheckSegmented(lin.SetModel(), h, 0, 0)
}

// RunLin records concurrent histories of one target (rounds bursts of
// perRound ops by each of procs processes, with quiescent joins
// between bursts) and checks them against the sequential model. It
// returns the number of checked (non-aborted) ops, the number of
// dropped aborted ops, and the checker result. Shared by E11 and
// cmd/lincheck.
func RunLin(tgt LinTarget, procs, rounds, perRound int, seed uint64) (ops, aborts int, res lin.Result) {
	do, full, empty, aborted := tgt.Build(procs)
	rec := lin.NewRecorder(procs)
	var next seqCounter
	pushKind, popKind := "push", "pop"
	var model lin.Model = lin.StackModel(tgt.K)
	if tgt.Kind == "queue" {
		pushKind, popKind = "enq", "deq"
		model = lin.QueueModel(tgt.K)
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid, round int) {
				defer wg.Done()
				rng := workload.NewRNG(seed + uint64(round*procs+pid))
				for i := 0; i < perRound; i++ {
					if workload.Balanced.NextIsPush(rng) {
						v := next.inc()
						pend := rec.Invoke(pid, pushKind, v)
						_, err := do(pid, true, v)
						rec.Return(pend, 0, outcomeFor(err, full, empty, aborted))
					} else {
						pend := rec.Invoke(pid, popKind, 0)
						v, err := do(pid, false, 0)
						rec.Return(pend, v, outcomeFor(err, full, empty, aborted))
					}
				}
			}(p, round)
		}
		wg.Wait()
	}
	h := rec.History()
	// The checker disambiguates pops by the pushed values being
	// distinct, which the counter guarantees; more recorded pushes than
	// issued values would mean that assumption broke (a copied or torn
	// counter), so fail loudly instead of checking an unsound history.
	pushes := 0
	for _, op := range h {
		if op.Kind == pushKind {
			pushes++
		}
	}
	if uint64(pushes) > next.issued() {
		panic("bench: history records more pushes than values issued")
	}
	return len(h), rec.Aborts(), lin.CheckSegmented(model, h, 0, 0)
}

func runE11(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rounds, perRound, procs := 60, 4, 4
	if cfg.Quick {
		rounds = 15
	}
	tb := metrics.NewTable("implementation", "ops checked", "aborts dropped", "search states", "verdict")
	defer cfg.logTable("E11 linearizability", tb)
	// row adds one target's result and reports a hard violation.
	row := func(name string, ops, aborts int, res lin.Result) error {
		verdict := "linearizable"
		if res.Exhausted {
			verdict = "UNDECIDED (budget)"
		} else if !res.Ok {
			verdict = "VIOLATION"
		}
		tb.AddRow(name, ops, aborts, res.States, verdict)
		if !res.Ok && !res.Exhausted {
			fprintf(w, "%s", tb.String())
			return fmt.Errorf("E11: %s produced a non-linearizable history", name)
		}
		return nil
	}
	for _, tgt := range LinTargets() {
		ops, aborts, res := RunLin(tgt, procs, rounds, perRound, cfg.Seed)
		if err := row(tgt.Name, ops, aborts, res); err != nil {
			return err
		}
	}
	for _, tgt := range SetLinTargets() {
		ops, aborts, res := RunSetLin(tgt, procs, rounds, perRound, cfg.Seed)
		if err := row(tgt.Name, ops, aborts, res); err != nil {
			return err
		}
	}
	return fprintf(w, "%s", tb.String())
}

// seqCounter issues the distinct values the recorded histories push.
// The word is accessed exclusively through sync/atomic — contlint's
// mixedatomic pass holds every other access to the same discipline, so
// a plain read of v anywhere fails the lint step — replacing a
// mutex-boxed predecessor on the one word every recording process
// shares.
type seqCounter struct {
	v uint64
}

// inc hands out the next value, starting at 1 (the models reserve 0).
func (a *seqCounter) inc() uint64 {
	return atomic.AddUint64(&a.v, 1)
}

// issued returns how many values have been handed out so far.
func (a *seqCounter) issued() uint64 {
	return atomic.LoadUint64(&a.v)
}

func outcomeFor(err, full, empty, aborted error) string {
	switch {
	case err == nil:
		return lin.OutcomeOK
	case full != nil && errors.Is(err, full):
		return lin.OutcomeFull
	case empty != nil && errors.Is(err, empty):
		return lin.OutcomeEmpty
	case aborted != nil && errors.Is(err, aborted):
		return lin.OutcomeAborted
	default:
		panic(err)
	}
}
