package bench

import (
	"os"
	"regexp"
	"testing"
)

// expEntry matches an experiment catalog entry in EXPERIMENTS.md: a
// bold "**E<n> — title**" heading (prose references like "E8's" do not
// match). The same ids must be registered in this package, and vice
// versa — a new experiment must ship with its catalog entry, and a
// documented experiment must actually exist.
var expEntry = regexp.MustCompile(`\*\*(E\d+) — `)

func TestRegistryMatchesExperimentsDoc(t *testing.T) {
	raw, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range expEntry.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no **E<n> — ...** entries found in EXPERIMENTS.md (pattern drift?)")
	}
	registered := map[string]bool{}
	for _, e := range All() {
		registered[e.ID] = true
	}
	for id := range registered {
		if !documented[id] {
			t.Errorf("experiment %s is registered in internal/bench but has no EXPERIMENTS.md entry", id)
		}
	}
	for id := range documented {
		if !registered[id] {
			t.Errorf("EXPERIMENTS.md documents %s but internal/bench does not register it", id)
		}
	}
}
