package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Procs: 4} }

func TestAllExperimentsRegisteredInOrder(t *testing.T) {
	all := All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24"}
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incompletely described", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
}

func TestRegisterRejectsDuplicateIDs(t *testing.T) {
	before := len(registry)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("register accepted a duplicate experiment id")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "E1") ||
			!strings.Contains(msg, "contention-free step complexity") ||
			!strings.Contains(msg, "imposter") {
			t.Fatalf("duplicate panic must name both experiments, got: %v", r)
		}
		if len(registry) != before {
			t.Fatalf("failed register mutated the registry: %d -> %d", before, len(registry))
		}
	}()
	//contlint:allow benchregistry the duplicate id is the point: this test asserts register panics on it
	register(Experiment{ID: "E1", Title: "imposter", Claim: "none", Run: nil})
}

// runQuick executes one experiment in Quick mode and returns its
// output, failing the test on error.
func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(quickCfg(), &buf); err != nil {
		t.Fatalf("%s failed: %v\noutput:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestE1CountsMatchTheorem(t *testing.T) {
	out := runQuick(t, "E1")
	if !strings.Contains(out, "strong_push") || !strings.Contains(out, "verdict: measured == paper") {
		t.Fatalf("E1 output incomplete:\n%s", out)
	}
}

func TestE2NoSoloAborts(t *testing.T) {
	out := runQuick(t, "E2")
	if !strings.Contains(out, "model-checked") || strings.Contains(out, "FAIL") {
		t.Fatalf("E2 output unexpected:\n%s", out)
	}
}

func TestE3GlobalProgress(t *testing.T) {
	out := runQuick(t, "E3")
	if !strings.Contains(out, "aborts/op") {
		t.Fatalf("E3 output unexpected:\n%s", out)
	}
}

func TestE4Fairness(t *testing.T) {
	out := runQuick(t, "E4")
	if !strings.Contains(out, "sensitive RR(TAS) [paper]") || !strings.Contains(out, "jain") {
		t.Fatalf("E4 output unexpected:\n%s", out)
	}
}

func TestE5Throughput(t *testing.T) {
	out := runQuick(t, "E5")
	for _, impl := range []string{"lock(mutex)", "stack/treiber", "stack/non-blocking", "stack/sensitive", "stack/treiber-pooled"} {
		if !strings.Contains(out, impl) {
			t.Fatalf("E5 missing %s:\n%s", impl, out)
		}
	}
}

func TestE6Phases(t *testing.T) {
	out := runQuick(t, "E6")
	for _, phase := range []string{"solo-warm", "storm", "solo-cool"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("E6 missing phase %s:\n%s", phase, out)
		}
	}
}

func TestE7Managers(t *testing.T) {
	out := runQuick(t, "E7")
	for _, m := range []string{"none", "yield", "spin", "backoff", "priority"} {
		if !strings.Contains(out, m) {
			t.Fatalf("E7 missing manager %s:\n%s", m, out)
		}
	}
}

func TestE8ABA(t *testing.T) {
	out := runQuick(t, "E8")
	if !strings.Contains(out, "reproduces §2.2") || !strings.Contains(out, "tags prevent ABA") {
		t.Fatalf("E8 output unexpected:\n%s", out)
	}
	for _, row := range []string{"pooled-treiber", "pooled-ms-queue", "pooled-abortable", "tags prevent reuse ABA"} {
		if !strings.Contains(out, row) {
			t.Fatalf("E8 missing pooled row %s:\n%s", row, out)
		}
	}
}

func TestE9Queue(t *testing.T) {
	out := runQuick(t, "E9")
	if !strings.Contains(out, "michael-scott") || !strings.Contains(out, "disjoint ends") {
		t.Fatalf("E9 output unexpected:\n%s", out)
	}
}

func TestE10Locks(t *testing.T) {
	out := runQuick(t, "E10")
	if !strings.Contains(out, "RR(TAS) [§4.4]") || !strings.Contains(out, "starvation-free") {
		t.Fatalf("E10 output unexpected:\n%s", out)
	}
}

func TestE11Linearizability(t *testing.T) {
	out := runQuick(t, "E11")
	if strings.Contains(out, "VIOLATION") {
		t.Fatalf("E11 found a violation:\n%s", out)
	}
	for _, impl := range []string{
		"stack/abortable", "stack/elimination", "queue/michael-scott",
		"stack/treiber-pooled", "stack/abortable-pooled",
		"queue/michael-scott-pooled", "queue/abortable-pooled",
		"queue/sharded[K=1]", "queue/combining-pooled",
		"set/harris", "set/hashset",
	} {
		if !strings.Contains(out, impl) {
			t.Fatalf("E11 missing %s:\n%s", impl, out)
		}
	}
}

func TestE12FastMutex(t *testing.T) {
	out := runQuick(t, "E12")
	if !strings.Contains(out, "entry+exit") || strings.Contains(out, "FAIL") {
		t.Fatalf("E12 output unexpected:\n%s", out)
	}
}

func TestE13CrashTolerance(t *testing.T) {
	out := runQuick(t, "E13")
	if !strings.Contains(out, "survivor consistent") || strings.Contains(out, "FAIL") {
		t.Fatalf("E13 output unexpected:\n%s", out)
	}
}

func TestE14Deque(t *testing.T) {
	out := runQuick(t, "E14")
	if !strings.Contains(out, "cross-end abort rate") || strings.Contains(out, "VIOLATION") {
		t.Fatalf("E14 output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "deque/sensitive") {
		t.Fatalf("E14 missing lin check:\n%s", out)
	}
}

func TestProcSteps(t *testing.T) {
	got := procSteps(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("procSteps(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("procSteps(8) = %v, want %v", got, want)
		}
	}
	got = procSteps(6)
	if got[len(got)-1] != 6 {
		t.Fatalf("procSteps(6) = %v, must end at 6", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Procs < 4 || c.Duration == 0 || c.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Duration >= c.Duration {
		t.Fatal("Quick did not shrink the duration")
	}
}

func TestE15Combining(t *testing.T) {
	out := runQuick(t, "E15")
	for _, impl := range []string{"lock(mutex)", "lock(tas)", "stack/sensitive", "flat-combining"} {
		if !strings.Contains(out, impl) {
			t.Fatalf("E15 missing %s:\n%s", impl, out)
		}
	}
	if !strings.Contains(out, "fast share") {
		t.Fatalf("E15 missing diagnostics table:\n%s", out)
	}
	for _, row := range []string{"serialized RR(TAS)", "serialized mutex", "batched flat-combining"} {
		if !strings.Contains(out, row) {
			t.Fatalf("E15 missing contended-path row %s:\n%s", row, out)
		}
	}
}

func TestE16Sharded(t *testing.T) {
	out := runQuick(t, "E16")
	for _, row := range []string{"cont-sensitive", "sharded K=1", "sharded K=4", "steals/op"} {
		if !strings.Contains(out, row) {
			t.Fatalf("E16 missing %s:\n%s", row, out)
		}
	}
}

func TestE19SplitOrderedHash(t *testing.T) {
	out := runQuick(t, "E19")
	for _, row := range []string{
		"set/non-blocking", "set/harris", "set/hashset",
		"flatness", "resizes",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E19 missing %s:\n%s", row, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E19 verdicts include FAIL:\n%s", out)
	}
}

func TestE17AllocationFreeHotPaths(t *testing.T) {
	out := runQuick(t, "E17")
	for _, row := range []string{
		"stack/treiber", "stack/treiber-pooled",
		"queue/michael-scott-pooled", "stack/abortable-pooled",
		"stack/combining-pooled", "queue/abortable-pooled", "stack/packed",
		"forced reuse",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E17 missing %s:\n%s", row, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E17 verdicts include FAIL:\n%s", out)
	}
	// The acceptance bar: the pooled Treiber and Michael-Scott rows
	// must report exactly 0.000 steady-state allocs/op (scan only the
	// steady-state table; the forced-reuse table repeats the names).
	steady, _, _ := strings.Cut(out, "forced reuse")
	for _, line := range strings.Split(steady, "\n") {
		if strings.HasPrefix(line, "stack/treiber-pooled") ||
			strings.HasPrefix(line, "queue/michael-scott-pooled") {
			if !strings.Contains(line, "0.000") || !strings.Contains(line, "0 allocs/op") {
				t.Fatalf("pooled hot path still allocates: %s", line)
			}
		}
	}
}

func TestE21ScenarioSuite(t *testing.T) {
	out := runQuick(t, "E21")
	// Every library scenario and at least one backend of each kind
	// must appear, alongside the quantile columns slogate parses.
	for _, row := range []string{
		"steady-mixed", "read-mostly", "bursty", "zipf-hot", "phase-flip",
		"producer-consumer", "solo-storm", "churn-slow",
		"stack/treiber", "queue/michael-scott", "deque/sensitive", "set/hashset",
		"p50 ns", "p99 ns", "p999 ns",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E21 missing %s:\n%s", row, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E21 reported a conservation failure:\n%s", out)
	}
}

func TestE22CrashSuite(t *testing.T) {
	out := runQuick(t, "E22")
	// The pinned takeover replay, the gate sweep, every crash scenario,
	// and at least one backend per kind must appear, alongside the
	// columns slogate's crash gates parse.
	for _, row := range []string{
		"pinned takeover replay", "crash-point sweep",
		"mid-op-storm", "combiner-crash", "crash-storm",
		"stack/combining", "queue/michael-scott", "deque/sensitive", "set/hashset",
		"survivor-ops", "recovery-ns", "robustness",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E22 missing %s:\n%s", row, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E22 reported a conservation failure:\n%s", out)
	}
}

func TestE24SoakSuite(t *testing.T) {
	out := runQuick(t, "E24")
	// Every default soak backend, the schema columns slogate's soak
	// gates parse, and the invariant verdict must appear.
	for _, row := range []string{
		"queue/combining", "stack/treiber-pooled", "set/adaptive",
		"faults", "recovered", "stalls", "heap-bytes", "pool-allocs", "audit",
		"soak invariants hold",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E24 missing %s:\n%s", row, out)
		}
	}
	if strings.Contains(out, "FAIL") || strings.Contains(out, "INVARIANT FAILED") {
		t.Fatalf("E24 reported an invariant failure:\n%s", out)
	}
}

func TestE20UnifiedDispatch(t *testing.T) {
	out := runQuick(t, "E20")
	// One row per catalog backend, across all four kinds.
	for _, row := range []string{
		"stack/sensitive", "stack/treiber-pooled", "queue/sharded",
		"deque/sensitive", "set/hashset", "overhead",
	} {
		if !strings.Contains(out, row) {
			t.Fatalf("E20 missing %s:\n%s", row, out)
		}
	}
}
