package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/spec"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "set throughput vs read ratio: the list-based set tier across backends",
		Claim: "membership traversals open a read-dominated workload shape the stack/queue tier never sees: backends with wait-free or guard-free Contains (sensitive, non-blocking over the COW list) keep read-mostly throughput high, the lock-free Harris list trades per-read validation for disjoint-window updates, and the key range is the contention knob — small ranges collide constantly, large ranges rarely; per-key add/remove accounting must balance on every backend whatever the mix",
		Run:   runE18,
	})
}

// setImpl is a uniform handle on one set implementation for E18.
type setImpl struct {
	name string
	// build returns pid-aware add/remove/contains closures over a
	// fresh instance for procs processes.
	build func(procs int) (
		add func(pid int, k uint64) bool,
		remove func(pid int, k uint64) bool,
		contains func(pid int, k uint64) bool)
}

// setImpls returns E18's comparison set: the lock-based baseline
// plus every strong set backend the public catalog exports (weak
// backends abort under a hammer and are excluded).
func setImpls() []setImpl {
	out := []setImpl{
		{
			name: "lock(mutex)",
			build: func(procs int) (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool) {
				var mu sync.Mutex
				s := spec.NewSet()
				return func(_ int, k uint64) bool {
						mu.Lock()
						defer mu.Unlock()
						return s.Add(k)
					}, func(_ int, k uint64) bool {
						mu.Lock()
						defer mu.Unlock()
						return s.Remove(k)
					}, func(_ int, k uint64) bool {
						mu.Lock()
						defer mu.Unlock()
						return s.Contains(k)
					}
			},
		},
	}
	for _, b := range repro.CatalogByKind(repro.KindSet) {
		if b.Weak {
			continue
		}
		b := b
		out = append(out, setImpl{name: b.Name, build: func(procs int) (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool) {
			return strongSetOps(b, procs)
		}})
	}
	return out
}

// strongSetOps builds a fresh instance of a strong catalog set and
// returns its answers stripped of the always-nil error.
func strongSetOps(b repro.Backend, procs int) (add, remove, contains func(int, uint64) bool) {
	s := b.Set(repro.WithProcs(procs))
	return func(pid int, k uint64) bool { ok, _ := s.Add(pid, k); return ok },
		func(pid int, k uint64) bool { ok, _ := s.Remove(pid, k); return ok },
		func(pid int, k uint64) bool { ok, _ := s.Contains(pid, k); return ok }
}

// driveSetMix prefills every other key (descending, so the insert
// position is always the current front and prefilling stays O(1) per
// key even on the COW backend), then drives procs goroutines of the
// given mix over keys in [0, keyRange) for the duration with per-key
// accounting of successful adds and removes. It returns the
// completed-op count and the accounting arrays for the caller's
// conservation check; at return the object is quiescent and
// adds[k]-removes[k] ∈ {0, 1} is the invariant every verifier tests.
// Shared by E18 and E19.
func driveSetMix(procs int, d time.Duration, seed uint64, keyRange int, mix workload.SetMix,
	add, remove, contains func(pid int, k uint64) bool) (total uint64, adds, removes []atomic.Int64) {
	for k := (keyRange - 1) &^ 1; k >= 0; k -= 2 { // largest even key first, odd ranges included
		add(0, uint64(k))
	}
	adds = make([]atomic.Int64, keyRange)
	removes = make([]atomic.Int64, keyRange)
	for k := 0; k < keyRange; k += 2 {
		adds[k].Add(1)
	}
	var stop atomic.Bool
	counts := make([]uint64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := workload.NewRNG(seed + uint64(pid))
			n := uint64(0)
			for !stop.Load() {
				k := uint64(rng.Intn(keyRange))
				switch mix.Next(rng) {
				case workload.SetAdd:
					if add(pid, k) {
						adds[k].Add(1)
					}
				case workload.SetRemove:
					if remove(pid, k) {
						removes[k].Add(1)
					}
				default:
					contains(pid, k)
				}
				n++
			}
			counts[pid] = n
		}(p)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	for _, n := range counts {
		total += n
	}
	return total, adds, removes
}

// hammerSet is E18's driver: driveSetMix plus conservation verified by
// probing every key — adds(k) - removes(k) must be 1 exactly when k
// ended in the set (a recycled-node tag mistake or a lost update
// breaks the balance). The per-key probe is itself O(n) on the list
// backends, which is fine at E18's ranges; E19's wider sweep verifies
// against one snapshot walk instead.
func hammerSet(procs int, d time.Duration, seed uint64, keyRange int, mix workload.SetMix,
	add, remove, contains func(pid int, k uint64) bool) (total uint64, err error) {
	total, adds, removes := driveSetMix(procs, d, seed, keyRange, mix, add, remove, contains)
	for k := 0; k < keyRange; k++ {
		diff := adds[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			return total, fmt.Errorf("key %d: %d adds vs %d removes", k, adds[k].Load(), removes[k].Load())
		}
		if got, want := contains(0, uint64(k)), diff == 1; got != want {
			return total, fmt.Errorf("key %d: Contains = %v, accounting says %v", k, got, want)
		}
	}
	return total, nil
}

func runE18(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const procs = 4
	smallKeys, largeKeys := 64, 4096
	if cfg.Quick {
		largeKeys = 512
	}
	mixes := []struct {
		name string
		mix  workload.SetMix
	}{
		{"read-mostly 90/9/1", workload.SetReadMostly},
		{"mixed 50/25/25", workload.SetMixed},
	}
	tb := metrics.NewTable("backend", "mix",
		fmt.Sprintf("keys=%d ops/s", smallKeys),
		fmt.Sprintf("keys=%d ops/s", largeKeys),
		"verdict")
	defer cfg.logTable("E18 set throughput", tb)
	var failed []string
	for _, impl := range setImpls() {
		implFailed := false
		for _, m := range mixes {
			verdict := "conserved"
			var rates [2]float64
			for i, keys := range []int{smallKeys, largeKeys} {
				add, remove, contains := impl.build(procs)
				total, err := hammerSet(procs, cfg.Duration, cfg.Seed, keys, m.mix, add, remove, contains)
				rates[i] = opsPerSec(total, cfg.Duration)
				if err != nil {
					verdict = fmt.Sprintf("FAIL: %v", err)
					implFailed = true
				}
			}
			tb.AddRow(impl.name, m.name, int64(rates[0]), int64(rates[1]), verdict)
		}
		if implFailed {
			failed = append(failed, impl.name)
		}
	}
	if err := fprintf(w, "%d procs, %v per cell, key range = contention knob\n%s",
		procs, cfg.Duration, tb.String()); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("E18: conservation violated on %v", failed)
	}
	return nil
}
