package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/deque"
	lin "repro/internal/linearizability"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "obstruction-free deque family (reference [8]) under the paper's constructions",
		Claim: "the HLM array deque — the object obstruction-freedom was defined for — becomes abortable with single attempts, non-blocking under Figure 2, and starvation-free under Figure 3; opposite ends interfere only when the deque is nearly empty",
		Run:   runE14,
	})
}

func runE14(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()

	// Part 1: throughput of the tower under both-end traffic, over
	// every strong deque backend in the public catalog (the weak
	// deque's single attempts abort under a hammer; part 2 measures it
	// on its own terms).
	type impl struct {
		name string
		mk   func(procs int) (push func(pid int, right bool, v uint32) error, pop func(pid int, right bool) (uint32, error))
	}
	var impls []impl
	for _, b := range repro.CatalogByKind(repro.KindDeque) {
		if b.Weak {
			continue
		}
		b := b
		impls = append(impls, impl{b.Name, func(procs int) (func(int, bool, uint32) error, func(int, bool) (uint32, error)) {
			d := b.Deque(repro.WithCapacity(1024), repro.WithProcs(procs))
			return func(pid int, right bool, v uint32) error {
					if right {
						return d.PushRight(pid, v)
					}
					return d.PushLeft(pid, v)
				}, func(pid int, right bool) (uint32, error) {
					if right {
						return d.PopRight(pid)
					}
					return d.PopLeft(pid)
				}
		}})
	}
	tb := metrics.NewTable(append([]string{"impl"}, procLabels(procSteps(cfg.Procs))...)...)
	defer cfg.logTable("E14 deque scaling", tb)
	for _, im := range impls {
		row := []interface{}{im.name}
		for _, procs := range procSteps(cfg.Procs) {
			push, pop := im.mk(procs)
			var stop atomic.Bool
			counts := make([]uint64, procs)
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					rng := workload.NewRNG(cfg.Seed + uint64(pid))
					i := 0
					for !stop.Load() {
						right := rng.Intn(2) == 0
						if workload.Balanced.NextIsPush(rng) {
							_ = push(pid, right, uint32(pid)<<24|uint32(i))
							i++
						} else {
							_, _ = pop(pid, right)
						}
						counts[pid]++
					}
				}(p)
			}
			time.Sleep(cfg.Duration)
			stop.Store(true)
			wg.Wait()
			row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		}
		tb.AddRow(row...)
	}
	if err := fprintf(w, "deque throughput (ops/s), both-end balanced mix, capacity 1024\n%s\n", tb.String()); err != nil {
		return err
	}

	// Part 2: opposite-end non-interference (HLM's claim, §1.1's
	// theme): one side works each end of a half-full deque.
	d := deque.NewAbortable(1024)
	for i := uint32(0); i < 256; i++ {
		if err := d.TryPushRight(i); err != nil {
			return err
		}
	}
	side := 100000
	if cfg.Quick {
		side = 5000
	}
	var aborts atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		done := 0
		for done < side {
			if err := d.TryPushRight(1); errors.Is(err, deque.ErrAborted) {
				aborts.Add(1)
				continue
			}
			done++
			_, n := core.RetryCounted(nil, func() (error, bool) {
				_, err := d.TryPopRight()
				return err, !errors.Is(err, deque.ErrAborted)
			})
			aborts.Add(uint64(n))
		}
	}()
	go func() {
		defer wg.Done()
		done := 0
		for done < side {
			v, err := d.TryPopLeft()
			if errors.Is(err, deque.ErrAborted) {
				aborts.Add(1)
				continue
			}
			if err != nil {
				continue
			}
			done++
			_, n := core.RetryCounted(nil, func() (error, bool) {
				err := d.TryPushLeft(v)
				return err, !errors.Is(err, deque.ErrAborted)
			})
			aborts.Add(uint64(n))
		}
	}()
	wg.Wait()
	tb2 := metrics.NewTable("pattern", "ops/side", "cross-end abort rate")
	defer cfg.logTable("E14 cross-end aborts", tb2)
	tb2.AddRow("left vs right on half-full deque", side, float64(aborts.Load())/float64(2*side))
	if err := fprintf(w, "%s\n", tb2.String()); err != nil {
		return err
	}

	// Part 3: linearizability of the strong deque's histories.
	rounds := 40
	if cfg.Quick {
		rounds = 10
	}
	const procs, perRound = 4, 4
	// The strong deque, resolved from the catalog (paper tier,
	// starvation-free) so its name is not restated here.
	var strong repro.Backend
	for _, b := range repro.CatalogByKind(repro.KindDeque) {
		if b.Tier == "paper" && b.Progress == "starvation-free" {
			strong = b
		}
	}
	if strong.Deque == nil {
		panic("bench: the catalog has no paper-tier starvation-free deque")
	}
	sd := strong.Deque(repro.WithCapacity(6), repro.WithProcs(procs))
	rec := lin.NewRecorder(procs)
	var next atomic.Uint64
	kinds := []string{"pushl", "pushr", "popl", "popr"}
	for round := 0; round < rounds; round++ {
		var rwg sync.WaitGroup
		for p := 0; p < procs; p++ {
			rwg.Add(1)
			go func(pid, round int) {
				defer rwg.Done()
				rng := workload.NewRNG(cfg.Seed + uint64(round*procs+pid))
				for i := 0; i < perRound; i++ {
					kind := kinds[rng.Intn(4)]
					switch kind {
					case "pushl", "pushr":
						v := next.Add(1)
						pend := rec.Invoke(pid, kind, v)
						var err error
						if kind == "pushl" {
							err = sd.PushLeft(pid, uint32(v))
						} else {
							err = sd.PushRight(pid, uint32(v))
						}
						out := lin.OutcomeOK
						if errors.Is(err, deque.ErrFull) {
							out = lin.OutcomeFull
						}
						rec.Return(pend, 0, out)
					default:
						pend := rec.Invoke(pid, kind, 0)
						var v uint32
						var err error
						if kind == "popl" {
							v, err = sd.PopLeft(pid)
						} else {
							v, err = sd.PopRight(pid)
						}
						out := lin.OutcomeOK
						if errors.Is(err, deque.ErrEmpty) {
							out = lin.OutcomeEmpty
						}
						rec.Return(pend, uint64(v), out)
					}
				}
			}(p, round)
		}
		rwg.Wait()
	}
	h := rec.History()
	res := lin.CheckSegmented(lin.DequeModel(6), h, 0, 0)
	verdict := "linearizable"
	if res.Exhausted {
		verdict = "UNDECIDED (budget)"
	} else if !res.Ok {
		verdict = "VIOLATION"
	}
	tb3 := metrics.NewTable("implementation", "ops checked", "search states", "verdict")
	defer cfg.logTable("E14 linearizability", tb3)
	tb3.AddRow(strong.Name, len(h), res.States, verdict)
	if err := fprintf(w, "%s", tb3.String()); err != nil {
		return err
	}
	if !res.Ok && !res.Exhausted {
		return fmt.Errorf("E14: strong deque produced a non-linearizable history")
	}
	return nil
}
