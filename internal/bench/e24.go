package bench

import (
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/soak"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "soak: long-running fault-injected sessions with watchdog, leak audit, and graceful drain",
		Claim: "an implementation that is efficient under the §5 failure model is one a service can sit on: open-loop session traffic (Poisson arrivals, geometric lengths, think times) over the lease-takeover, pooled, and adaptive backends sustains throughput across a full fault plan — mid-op crashes, combiner kills, slow-process stalls, forced morphs — with every fault recovered, no operation stalled past the watchdog deadline, heap and pool growth bounded window over window, and the crash-widened conservation bracket holding at the graceful drain",
		Gate:  "cmd/slogate -exp E24",
		Run:   runE24,
	})
}

// e24Caption names the table cmd/slogate looks up in the -json
// document; soak.ParseRows pins its column schema.
const e24Caption = "E24 soak suite"

// runE24 soaks each default backend under the default fault plan and
// emits the windowed rows. Wall clock per backend: cfg.Duration when
// set explicitly, else 10s (1.2s under Quick — still enough for the
// strict gate's two windows and the full four-fault plan, whose last
// fault lands at 85% of the clock). Hard failures here are the
// invariant (non-strict) gates; the strict full-run contract —
// coverage, fault floor, recovery bound — belongs to cmd/slogate so
// an interrupted or quick run is not mislabeled a correctness bug.
func runE24(cfg Config, w io.Writer) error {
	perBackend := cfg.Duration // before defaulting: 0 means unset
	cfg = cfg.withDefaults()

	scfg := soak.Config{Seed: cfg.Seed, Duration: perBackend}
	if scfg.Duration == 0 {
		scfg.Duration = 10 * time.Second
		if cfg.Quick {
			scfg.Duration = 1200 * time.Millisecond
		}
	}
	if cfg.Quick {
		scfg.Window = scfg.Duration / 4
		scfg.Workers = 4
		scfg.ArrivalMean = 100 * time.Microsecond
		scfg.ThinkMean = 50 * time.Microsecond
		scfg.SessionOps = 16
		scfg.StallDeadline = 2 * time.Second
	}

	byName := map[string]repro.Backend{}
	for _, b := range repro.Catalog() {
		byName[b.Name] = b
	}

	var all []soak.Row
	for _, name := range soak.DefaultBackends() {
		b, ok := byName[name]
		if !ok {
			return fmt.Errorf("E24: soak backend %q not in catalog", name)
		}
		rows := soak.Run(b, scfg)
		all = append(all, rows...)
		sum := rows[len(rows)-1]
		if err := fprintf(w, "%s: %d ops (%d ok) over %d sessions in %v; %d/%d faults recovered (worst %v), %d stalls, drain audit %s\n",
			name, sum.Ops, sum.OKOps, sum.Sessions, scfg.Duration,
			sum.Recovered, sum.Faults, time.Duration(sum.RecoveryNS), sum.Stalls, sum.Audit); err != nil {
			return err
		}
	}
	tb := soak.Table(all)
	cfg.logTable(e24Caption, tb)
	if err := fprintf(w, "\n%s\n", tb); err != nil {
		return err
	}

	failed := 0
	for _, v := range soak.Evaluate(all, false) {
		if !v.OK {
			failed++
			if err := fprintf(w, "INVARIANT FAILED: %s/%s: observed %s, bound %s\n",
				v.Backend, v.Gate, v.Observed, v.Bound); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("E24: %d soak invariant(s) violated", failed)
	}
	return fprintf(w, "soak invariants hold on every backend; strict release gates: cmd/slogate -exp E24\n")
}
