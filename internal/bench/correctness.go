package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/lock"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stack"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "contention-free step complexity (Theorem 1)",
		Claim: "a contention-free strong push/pop uses no lock and exactly 6 shared accesses (1 CONTENTION read + 5 in the weak op); full/empty cost 4; weak ops alone cost 5",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "solo weak operations never abort (abortability ⇒ obstruction-freedom)",
		Claim: "an operation executed in a concurrency-free context always returns a non-⊥ value",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E8",
		Title: "the ABA problem (§2.2): untagged CAS corrupts, sequence tags do not",
		Claim: "without tags a stale CAS can succeed after the register returns to an old value, popping a value twice and losing another; the §2.2 tags make the stale CAS fail",
		Run:   runE8,
	})
}

// measureStrongOp runs a single solo strong op and returns the access
// delta and whether the slow path was entered.
func runE1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("backend", "operation", "reads", "writes", "cas", "total", "paper", "lock taken")
	defer cfg.logTable("E1 access counts", tb)

	type probe struct {
		backend string
		op      string
		run     func() (memory.Snapshot, uint64) // access delta, slow-path count
		paper   int
	}
	var probes []probe

	// Boxed backend, full lifecycle: push, pop, push-on-full,
	// pop-on-empty. A fresh stack per probe keeps the help state
	// identical to the paper's per-operation accounting.
	mkBoxed := func(prefill int, op func(s *stack.Sensitive[uint64]) error) func() (memory.Snapshot, uint64) {
		return func() (memory.Snapshot, uint64) {
			var st memory.Stats
			s := stack.NewSensitiveObserved[uint64](2, 2, &st)
			for i := 0; i < prefill; i++ {
				if err := s.Push(0, uint64(i)); err != nil {
					panic(err)
				}
			}
			before := st.Snapshot()
			if err := op(s); err != nil {
				panic(err)
			}
			return st.Snapshot().Sub(before), s.Guard().Stats().Slow
		}
	}
	mkPacked := func(prefill int, op func(s *stack.Sensitive[uint32]) error) func() (memory.Snapshot, uint64) {
		return func() (memory.Snapshot, uint64) {
			var st memory.Stats
			weak := stack.NewPackedObserved(2, &st)
			s := stack.NewSensitiveFromObserved[uint32](weak, lock.NewRoundRobin(lock.NewTAS(), 2), &st)
			for i := 0; i < prefill; i++ {
				if err := s.Push(0, uint32(i)); err != nil {
					panic(err)
				}
			}
			before := st.Snapshot()
			if err := op(s); err != nil {
				panic(err)
			}
			return st.Snapshot().Sub(before), s.Guard().Stats().Slow
		}
	}
	okOrSentinel := func(err error, sentinel error) error {
		if err == nil || errors.Is(err, sentinel) {
			return nil
		}
		return err
	}

	probes = append(probes,
		probe{"boxed", "strong_push", mkBoxed(1, func(s *stack.Sensitive[uint64]) error { return s.Push(0, 9) }), 6},
		probe{"boxed", "strong_pop", mkBoxed(1, func(s *stack.Sensitive[uint64]) error { _, err := s.Pop(0); return err }), 6},
		probe{"boxed", "push→full", mkBoxed(2, func(s *stack.Sensitive[uint64]) error { return okOrSentinel(s.Push(0, 9), stack.ErrFull) }), 4},
		probe{"boxed", "pop→empty", mkBoxed(0, func(s *stack.Sensitive[uint64]) error { _, err := s.Pop(0); return okOrSentinel(err, stack.ErrEmpty) }), 4},
		probe{"packed", "strong_push", mkPacked(1, func(s *stack.Sensitive[uint32]) error { return s.Push(0, 9) }), 6},
		probe{"packed", "strong_pop", mkPacked(1, func(s *stack.Sensitive[uint32]) error { _, err := s.Pop(0); return err }), 6},
	)

	// Weak operations alone (5 accesses, the §3 count).
	probes = append(probes, probe{"boxed", "weak_push", func() (memory.Snapshot, uint64) {
		var st memory.Stats
		s := stack.NewAbortableObserved[uint64](2, &st)
		if err := s.TryPush(1); err != nil {
			panic(err)
		}
		return st.Snapshot(), 0
	}, 5})
	probes = append(probes, probe{"packed", "weak_pop", func() (memory.Snapshot, uint64) {
		var st memory.Stats
		s := stack.NewPackedObserved(2, &st)
		if err := s.TryPush(1); err != nil {
			panic(err)
		}
		before := st.Snapshot()
		if _, err := s.TryPop(); err != nil {
			panic(err)
		}
		return st.Snapshot().Sub(before), 0
	}, 5})

	ok := true
	for _, p := range probes {
		delta, slow := p.run()
		lockTaken := "no"
		if slow > 0 {
			lockTaken = "YES"
			ok = false
		}
		if int(delta.Total()) != p.paper {
			ok = false
		}
		tb.AddRow(p.backend, p.op, delta.Reads, delta.Writes, delta.CASes, delta.Total(), p.paper, lockTaken)
	}
	if err := fprintf(w, "%s", tb.String()); err != nil {
		return err
	}
	if !ok {
		return errors.New("E1: measured access counts deviate from Theorem 1")
	}
	return fprintf(w, "verdict: measured == paper for all rows; lock never taken solo\n")
}

func runE2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("backend", "method", "ops", "aborts", "verdict")
	defer cfg.logTable("E2 solo aborts", tb)

	// Exhaustive half: every schedule of a solo process (there is
	// exactly one) across the full/empty boundaries.
	plan := []sched.StackOp{
		{Push: true, Value: 1}, {Push: true, Value: 2}, {Push: true, Value: 3},
		{Push: false}, {Push: false}, {Push: false},
	}
	for _, backend := range []sched.StackBackend{sched.Boxed, sched.PackedWords} {
		rep := sched.Explore(sched.SoloNeverAborts(backend, 2, nil, plan), sched.Options{})
		verdict := "pass"
		if rep.Failure != nil {
			verdict = "FAIL: " + rep.Failure.Err.Error()
		}
		tb.AddRow(backend.String(), "model-checked", len(plan), 0, verdict)
		if rep.Failure != nil {
			fprintf(w, "%s", tb.String())
			return fmt.Errorf("E2: %v", rep.Failure.Err)
		}
	}

	// Statistical half: long random solo runs on the live backends.
	ops := 200000
	if cfg.Quick {
		ops = 5000
	}
	for _, backend := range []string{"boxed", "packed"} {
		var tryPush func(v uint64) error
		var tryPop func() (uint64, error)
		if backend == "boxed" {
			s := stack.NewAbortable[uint64](16)
			tryPush, tryPop = s.TryPush, func() (uint64, error) { return s.TryPop() }
		} else {
			s := stack.NewPacked(16)
			tryPush = func(v uint64) error { return s.TryPush(uint32(v)) }
			tryPop = func() (uint64, error) { v, err := s.TryPop(); return uint64(v), err }
		}
		rng := workload.NewRNG(cfg.Seed)
		aborts := 0
		for i := 0; i < ops; i++ {
			var err error
			if workload.Balanced.NextIsPush(rng) {
				err = tryPush(uint64(i))
			} else {
				_, err = tryPop()
			}
			if errors.Is(err, stack.ErrAborted) {
				aborts++
			}
		}
		verdict := "pass"
		if aborts > 0 {
			verdict = "FAIL"
		}
		tb.AddRow(backend, "random solo run", ops, aborts, verdict)
		if aborts > 0 {
			fprintf(w, "%s", tb.String())
			return fmt.Errorf("E2: %d solo aborts on %s", aborts, backend)
		}
	}
	return fprintf(w, "%s", tb.String())
}

func runE8(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tb := metrics.NewTable("backend", "schedule", "outcome", "verdict")
	defer cfg.logTable("E8 ABA outcomes", tb)

	// Deterministic half: the handcrafted §2.2 interleaving.
	for _, backend := range []sched.StackBackend{sched.NaiveABA, sched.Boxed, sched.PackedWords} {
		build, schedule := sched.ABASchedule(backend)
		_, err := sched.Replay(build, schedule, 0)
		switch backend {
		case sched.NaiveABA:
			if err == nil {
				fprintf(w, "%s", tb.String())
				return errors.New("E8: the ABA schedule failed to break the naive stack")
			}
			tb.AddRow(backend.String(), "handcrafted ABA", "corrupted (pop repeated, push lost)", "reproduces §2.2")
		default:
			if err != nil {
				fprintf(w, "%s", tb.String())
				return fmt.Errorf("E8: tagged backend %v corrupted: %v", backend, err)
			}
			tb.AddRow(backend.String(), "handcrafted ABA", "stale CAS failed; history linearizable", "tags prevent ABA")
		}
	}

	// Pooled half: on the recycled-node backends the §2.2 window is
	// forced deterministically — a node is retired, recycled, and back
	// at the register when the stale CAS fires — and the tag must make
	// that CAS fail (the builders also assert reuse really occurred).
	for _, tc := range []struct {
		name    string
		sched   func() (sched.Builder, []int)
		outcome string
	}{
		{"pooled-treiber", sched.PooledTreiberABASchedule,
			"node recycled to same handle; stale CAS failed"},
		{"pooled-ms-queue", sched.PooledMSABASchedule,
			"dummy recycled, head returned to old handle; stale CAS failed"},
	} {
		build, schedule := tc.sched()
		if _, err := sched.Replay(build, schedule, 0); err != nil {
			fprintf(w, "%s", tb.String())
			return fmt.Errorf("E8: pooled backend %s corrupted: %v", tc.name, err)
		}
		tb.AddRow(tc.name, "forced recycle", tc.outcome, "tags prevent reuse ABA")
	}

	// Random-walk half for the pooled Figure 1 stack: the validated
	// snapshots plus tags must keep every explored interleaving
	// linearizable despite record recycling.
	pooledRuns := 800
	if cfg.Quick {
		pooledRuns = 200
	}
	pooledBuild := sched.WeakStackBuilder(sched.PooledAbortable, 4, []uint64{10, 20},
		[][]sched.StackOp{
			{{Push: false}, {Push: true, Value: 30}},
			{{Push: false}, {Push: false}, {Push: true, Value: 40}},
		})
	if rep := sched.Walk(pooledBuild, pooledRuns, cfg.Seed, sched.Options{}); rep.Failure != nil {
		fprintf(w, "%s", tb.String())
		return fmt.Errorf("E8: pooled-abortable violated linearizability: %v", rep.Failure.Err)
	}
	tb.AddRow("pooled-abortable", fmt.Sprintf("%d random schedules", pooledRuns),
		"all histories linearizable", "tags prevent reuse ABA")

	// Search half: random schedules rediscover the bug unaided.
	runs := 5000
	if cfg.Quick {
		runs = 800
	}
	build := sched.WeakStackBuilder(sched.NaiveABA, 4, []uint64{10, 20},
		[][]sched.StackOp{
			{{Push: false}},
			{{Push: false}, {Push: false}, {Push: true, Value: 30}, {Push: true, Value: 40}},
		})
	rep := sched.Walk(build, runs, cfg.Seed, sched.Options{})
	if rep.Failure == nil {
		tb.AddRow("naive", fmt.Sprintf("%d random schedules", rep.Schedules), "no violation found", "(search too small)")
	} else {
		tb.AddRow("naive", fmt.Sprintf("random search, run %d", rep.Schedules), "violation found", "reproduces §2.2")
	}
	if err := fprintf(w, "%s", tb.String()); err != nil {
		return err
	}
	if rep.Failure != nil {
		return fprintf(w, "first failing schedule (pids): %v\n", rep.Failure.Schedule)
	}
	return nil
}
