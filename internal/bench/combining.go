package bench

import (
	"io"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/stack"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "flat combining on the contended path: stack throughput at 1-64 procs",
		Claim: "batching the contended path (one combiner serves every published request per lock acquisition) beats handing the fallback lock to each process in turn: with the contended path isolated, the batched fallback out-throughputs Figure 3's serialized starvation-free fallback (round-robin over TAS) from 8 procs up at the same liveness guarantee, while the mixed workload keeps the sensitive six-access fast path when uncontended",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E16",
		Title: "sharded queue: scaling curve and steal rate",
		Claim: "pid-striping over K flat-combining shards spreads contention across K independent combiner locks (on multicore hosts throughput grows with K) while the owner-first/steal-on-empty dequeue keeps conservation: steals and spills stay near zero under balanced load, rising only when a home shard runs dry or fills",
		Run:   runE16,
	})
}

// scalingProcs returns the proc sweep for the scaling-tier
// experiments: the contended regime they target reaches 64 processes
// unless the caller pinned a count.
func scalingProcs(cfg Config) []int {
	max := cfg.Procs
	if max == 0 {
		max = 64
	}
	return procSteps(max)
}

func runE15(cfg Config, w io.Writer) error {
	steps := scalingProcs(cfg)
	cfg = cfg.withDefaults()
	const k = 1024

	tb := metrics.NewTable(append([]string{"impl"}, procLabels(steps)...)...)
	defer cfg.logTable("E15 scaling", tb)

	// The lock-based fallback baselines and the paper's sensitive
	// tower (resolved from the catalog, not by name).
	impls := []hammerImpl{paperSensitiveStack()}
	for _, impl := range lockStackImpls() {
		if impl.name == "lock(mutex)" || impl.name == "lock(tas)" {
			impls = append(impls, impl)
		}
	}
	for _, impl := range impls {
		row := []interface{}{impl.name}
		for _, procs := range steps {
			push, pop := impl.build(k, procs)
			counts := hammer(procs, cfg.Duration, cfg.Seed, push, pop)
			row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		}
		tb.AddRow(row...)
	}

	// The combining stack, instrumented: keep each step's counters for
	// the diagnostics table.
	row := []interface{}{"flat-combining"}
	diags := metrics.NewTable("procs", "fast share", "batch mean", "max batch")
	defer cfg.logTable("E15 diagnostics", diags)
	for _, procs := range steps {
		s := stack.NewCombining[uint64](k, procs)
		counts := hammer(procs, cfg.Duration, cfg.Seed, s.Push, s.Pop)
		row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		st := s.Stats()
		share := 1.0
		if total := st.Fast + st.Published; total > 0 {
			share = float64(st.Fast) / float64(total)
		}
		diags.AddRow(procs, share, st.BatchMean(), st.MaxBatch)
	}
	tb.AddRow(row...)

	if err := fprintf(w, "stack throughput (ops/s), capacity %d, balanced push/pop mix\n%s", k, tb.String()); err != nil {
		return err
	}
	if err := fprintf(w, "\ncombining-path diagnostics (fast share = lock-free shortcut fraction)\n%s", diags.String()); err != nil {
		return err
	}
	return runE15Contended(cfg, steps, w)
}

// runE15Contended isolates the contended path: every operation takes
// the fallback, so the table compares Figure 3's serialized fallback
// (acquire the lock, apply the weak op, release — once per operation)
// against the batched one (publish; one combiner serves the batch).
// The mixed workload above only reaches this regime when fast-path
// attempts abort, which a lightly loaded host may never show.
func runE15Contended(cfg Config, steps []int, w io.Writer) error {
	const k = 1024
	type pathImpl struct {
		name  string
		build func(procs int) (func(pid int, v uint64) error, func(pid int) (uint64, error))
	}
	serialized := func(mk func(procs int) lock.PidLock) func(int) (func(int, uint64) error, func(int) (uint64, error)) {
		return func(procs int) (func(int, uint64) error, func(int) (uint64, error)) {
			weak := stack.NewAbortable[uint64](k)
			lk := mk(procs)
			push := func(pid int, v uint64) error {
				lk.Acquire(pid)
				defer lk.Release(pid)
				return core.Retry(nil, func() (error, bool) {
					err := weak.TryPush(v)
					return err, err != stack.ErrAborted
				})
			}
			pop := func(pid int) (uint64, error) {
				lk.Acquire(pid)
				defer lk.Release(pid)
				type res struct {
					v   uint64
					err error
				}
				r := core.Retry(nil, func() (res, bool) {
					v, err := weak.TryPop()
					return res{v, err}, err != stack.ErrAborted
				})
				return r.v, r.err
			}
			return push, pop
		}
	}
	impls := []pathImpl{
		{"serialized RR(TAS) [Figure 3 fallback]", serialized(func(procs int) lock.PidLock {
			return lock.NewRoundRobin(lock.NewTAS(), procs)
		})},
		{"serialized mutex", serialized(func(int) lock.PidLock {
			return lock.IgnorePid(lock.NewMutex())
		})},
		{"batched flat-combining", func(procs int) (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewCombining[uint64](k, procs)
			return s.PushContended, s.PopContended
		}},
	}

	iso := metrics.NewTable(append([]string{"contended path"}, procLabels(steps)...)...)
	defer cfg.logTable("E15 contended isolation", iso)
	for _, impl := range impls {
		row := []interface{}{impl.name}
		for _, procs := range steps {
			push, pop := impl.build(procs)
			counts := hammer(procs, cfg.Duration, cfg.Seed, push, pop)
			row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
		}
		iso.AddRow(row...)
	}
	return fprintf(w, "\ncontended-path isolation: every op takes the fallback (ops/s)\n%s", iso.String())
}

func runE16(cfg Config, w io.Writer) error {
	steps := scalingProcs(cfg)
	cfg = cfg.withDefaults()
	const k = 1024
	shardCounts := []int{1, 2, 4, 8}

	tb := metrics.NewTable(append([]string{"impl"}, procLabels(steps)...)...)
	defer cfg.logTable("E16 sharded scaling", tb)

	// Single-queue baseline: the Figure 3 sensitive queue.
	row := []interface{}{"cont-sensitive"}
	for _, procs := range steps {
		q := queue.NewSensitive[uint64](k, procs)
		counts := hammer(procs, cfg.Duration, cfg.Seed, q.Enqueue, q.Dequeue)
		row = append(row, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)))
	}
	tb.AddRow(row...)

	// K shards; K=1 is the plain flat-combining queue, the degenerate
	// stripe that keeps global FIFO order.
	rates := metrics.NewTable("shards", "procs", "steals/op", "spills/op")
	defer cfg.logTable("E16 steal rates", rates)
	for _, shards := range shardCounts {
		row := []interface{}{"sharded K=" + itoa(shards)}
		for _, procs := range steps {
			q := queue.NewSharded[uint64](k, procs, shards)
			counts := hammer(procs, cfg.Duration, cfg.Seed, q.Enqueue, q.Dequeue)
			ops := metrics.Sum(counts)
			row = append(row, int64(opsPerSec(ops, cfg.Duration)))
			if procs == steps[len(steps)-1] {
				rates.AddRow(shards, procs,
					float64(q.Steals())/float64(max64(ops, 1)),
					float64(q.Spills())/float64(max64(ops, 1)))
			}
		}
		tb.AddRow(row...)
	}

	if err := fprintf(w, "queue throughput (ops/s), total capacity %d, balanced enq/deq mix\n%s", k, tb.String()); err != nil {
		return err
	}
	if err := fprintf(w, "\nsteal/spill rate at the top of the sweep (owner-first discipline)\n%s", rates.String()); err != nil {
		return err
	}
	return fprintf(w, "note: K=1 is globally FIFO; K>1 relaxes cross-process order (each shard stays FIFO)\n")
}
