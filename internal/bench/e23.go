package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "contention-adaptive meta-backends: phase-shifting workloads over the adaptive ladders vs their fixed rungs",
		Claim: "no single rung wins every regime (E15/E16/E18 crossovers), but an object that MIGRATES between rungs as live contention and size signals cross the measured boundaries tracks the best fixed rung in every phase — within slack — while the epoch-gated handoff stays linearizable under a writer parked across the flip and under a migrator crashed at every gate of its window",
		Gate:  "cmd/slogate -exp E23",
		Run:   runE23,
	})
}

// e23Caption names the table cmd/slogate looks up in the -json
// document; scenario.ParseAdaptiveRows pins its column schema.
const e23Caption = "E23 adaptive suite"

// e23SmokeThresholds replaces DefaultThresholds in -quick runs and on
// hosts with fewer than 4 CPUs. In -quick, op-budget scale 0.02 gives
// each pid only dozens of ops, which never fills the default 256-op
// per-pid decision window — automatic adaptation would silently be
// off and the migration-sanity gate would (correctly) fail. On a
// small host the default contention signals themselves are
// unreachable at any budget: goroutines run in sequential bursts, so
// a decision observes at most two active pids (the decider plus one
// residual at a burst boundary) and the contended counters sit near
// zero, meaning UpProcs 3 / UpContended 64 never fire. Shrinking the
// window and boundaries keeps the same decision machinery live.
// Three values are shaped by that burst scheduling: UpProcs is 2
// because a burst boundary exposes at most two active pids to one
// decision; the window (24) must divide neither the quick per-pid
// phase budget (80) nor the full one (4000), or every pid's final
// window boundary would consume its own residue and no decision would
// ever see a second active pid; and DownProcs is 0 (descent disabled
// — the deciding pid always counts as active) because with zero
// contended deltas any reachable descent rule oscillates against the
// burst-boundary climbs and the migration churn swamps throughput.
// The down direction stays covered where it is deterministic: the
// pinned replays, the crash sweeps, the forced-morph fuzzers, and
// full-scale multicore runs under DefaultThresholds.
func e23SmokeThresholds() repro.Thresholds {
	return repro.Thresholds{
		Window:        24,
		UpContended:   6,
		DownContended: 2,
		UpProcs:       2,
		DownProcs:     0,
		SetSizeUp:     [2]int{16, 128},
		SetSizeDown:   [2]int{8, 64},
	}
}

func runE23(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	reruns, scale := 3, 1.0
	var extra []repro.Option
	if cfg.Quick {
		reruns, scale = 2, 0.02
	}
	if cfg.Quick || runtime.NumCPU() < 4 {
		extra = []repro.Option{repro.WithThresholds(e23SmokeThresholds())}
	}

	// Part 1: the pinned deterministic migration replay — the adaptive
	// sibling of the ABA and takeover replays. A writer is parked
	// between its cow root read and root CAS while a full cow→harris
	// migration runs to completion; the stale CAS must fail against the
	// sealed root and the op re-dispatch onto the new rung, with the
	// gate count pinned so any protocol drift fails loudly.
	mbuild, msched := sched.AdaptiveMigrationSchedule()
	if _, err := sched.Replay(mbuild, msched, 0); err != nil {
		return fmt.Errorf("E23: pinned mid-migration replay: %v", err)
	}
	if err := fprintf(w, "pinned migration replay: writer parked across the epoch flip for %d gates; stale CAS failed, op re-dispatched, history linearized\n",
		len(msched)); err != nil {
		return err
	}

	// Part 2: exhaustive migrator crash sweep — the migrating process
	// dies at every gate of its cow→harris window (before the open,
	// between open and seal, mid-rebuild, at the close) and the
	// survivor must always complete with the exact expected membership.
	if err := sched.SweepCrashPoints(sched.AdaptiveMigrationGates+1, sched.CrashAdaptiveMigration); err != nil {
		return fmt.Errorf("E23: migration crash-point sweep: %v", err)
	}
	if err := fprintf(w, "migration crash sweep: migrator crashed at each of %d gates, survivors completed and linearized at every point\n",
		sched.AdaptiveMigrationGates+2); err != nil {
		return err
	}

	// Part 3: the phase-shifting scenario sweep. Each ladder's adaptive
	// meta-backend and every fixed rung run the same contention wave;
	// one table row per (backend, rerun, PHASE), because the claim is
	// per-regime. The rows feed cmd/slogate's E23 gates: within-slack
	// vs the best fixed rung per phase, migration sanity, coverage, and
	// conservation.
	tb := metrics.NewTable(scenario.AdaptiveRowColumns()...)
	defer cfg.logTable(e23Caption, tb)

	byName := map[string]repro.Backend{}
	for _, b := range repro.Catalog() {
		byName[b.Name] = b
	}

	violations, cells := 0, 0
	for _, sc := range scenario.AdaptiveLibrary() {
		if cfg.Seed != 0x5eed {
			sc.Seed += cfg.Seed
		}
		for _, ladder := range scenario.AdaptiveLadders() {
			if !sc.AppliesTo(ladder.Kind) {
				continue
			}
			for _, name := range append([]string{ladder.Adaptive}, ladder.Fixed...) {
				b, ok := byName[name]
				if !ok {
					return fmt.Errorf("E23: ladder backend %q is not in the catalog", name)
				}
				cells++
				for rerun := 0; rerun < reruns; rerun++ {
					type sample struct {
						rung   string
						mig    uint64
						inRung time.Duration
					}
					var samples []sample
					var prevMig uint64
					res := scenario.Run(b, sc, scenario.Options{
						Scale:     scale,
						ExtraOpts: extra,
						AfterPhase: func(_ int, _ string, drv repro.Ops) {
							s := sample{rung: "fixed"}
							if st, ok := repro.AdaptiveStatsOf(drv.Instance); ok {
								s.rung = st.Rung
								s.mig = st.Migrations - prevMig
								prevMig = st.Migrations
								s.inRung = st.InRung[st.Rung]
							}
							samples = append(samples, s)
						},
					})
					conserved := "ok"
					if res.Conserved != nil {
						conserved = fmt.Sprintf("FAIL: %v", res.Conserved)
						violations++
					}
					for i, ph := range res.Phases {
						tb.AddRow(sc.Name, b.Name, rerun, ph.Name, sc.Phases[i].Procs,
							ph.Ops, ph.OpsPerSec(), samples[i].rung, samples[i].mig,
							samples[i].inRung.Nanoseconds(), conserved)
					}
				}
			}
		}
	}

	if err := fprintf(w, "%d phase-shift scenarios x ladder backends (%d cells) x %d reruns x per-phase rows, op-budget scale %.2f\n%s",
		len(scenario.AdaptiveLibrary()), cells, reruns, scale, tb.String()); err != nil {
		return err
	}
	if err := fprintf(w, "note: rung and migrations are sampled at each phase's quiescent join (migrations as the per-phase delta); in-rung-ns is cumulative time on the phase-end rung; fixed rungs report rung \"fixed\" and 0 migrations; gates are applied by cmd/slogate over the -json rows\n"); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("E23: %d run(s) violated conservation", violations)
	}
	return nil
}
