package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/stack"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "allocation & GC pressure: boxed vs pooled vs packed hot paths",
		Claim: "recycling nodes through per-pid pools with §2.2 sequence tags removes the allocator from the hot path: the pooled Treiber and Michael-Scott paths run at 0 steady-state allocs/op where the boxed backends allocate a record per op (with GC cycles to match), and forced reuse — every op recycling a just-retired node — preserves conservation because the tags make every stale CAS fail",
		Run:   runE17,
	})
}

// allocBackend is one implementation measured by E17: pid-aware push
// and pop closures over a freshly built instance.
type allocBackend struct {
	name     string
	pool     func() memory.PoolStats // nil for unpooled backends
	push     func(pid int, v uint64) error
	pop      func(pid int) (uint64, error)
	wantZero bool // acceptance: steady state must not allocate
}

// allocBackends builds the E17 comparison set: every stack and queue
// backend the public catalog exports (the catalog's allocation
// profile decides which must measure 0 allocs/op), plus the
// internal-only variants — the packed bit-packing stack and the
// pooled Figure 1 retrofits — that complete each family's
// boxed/packed/pooled triangle.
func allocBackends(procs int) []allocBackend {
	k := 1024
	var out []allocBackend
	for _, b := range repro.Catalog() {
		var push func(int, uint64) error
		var pop func(int) (uint64, error)
		var inner any
		switch b.Kind {
		case repro.KindStack:
			s := b.Stack(repro.WithCapacity(k), repro.WithProcs(procs))
			push, pop, inner = s.Push, s.Pop, repro.Unwrap(s)
		case repro.KindQueue:
			q := b.Queue(repro.WithCapacity(k), repro.WithProcs(procs))
			push, pop, inner = q.Enqueue, q.Dequeue, repro.Unwrap(q)
		default:
			continue // the set tier has its own workload shape (E18/E19)
		}
		if b.Weak {
			// Weak entries make single attempts through the uniform
			// interface; retry aborts so every measured op completed and
			// allocs/op stays comparable with the strong rows (a boxed
			// aborted attempt still pays its records).
			rawPush, rawPop := push, pop
			aborted := stack.ErrAborted
			if b.Kind == repro.KindQueue {
				aborted = queue.ErrAborted
			}
			push = func(pid int, v uint64) error {
				for {
					if err := rawPush(pid, v); !errors.Is(err, aborted) {
						return err
					}
				}
			}
			pop = func(pid int) (uint64, error) {
				for {
					if v, err := rawPop(pid); !errors.Is(err, aborted) {
						return v, err
					}
				}
			}
		}
		be := allocBackend{
			name: b.Name, push: push, pop: pop,
			wantZero: strings.Contains(b.Allocation, "pooled"),
		}
		if ps, ok := inner.(interface{ PoolStats() memory.PoolStats }); ok {
			be.pool = ps.PoolStats
		}
		out = append(out, be)
	}

	ap := stack.NewAbortablePooled(k, procs)
	out = append(out, allocBackend{
		name: "stack/abortable-pooled", pool: ap.PoolStats, wantZero: true,
		push: func(pid int, v uint64) error { return retryPush(func(v uint64) error { return ap.TryPush(pid, v) }, v) },
		pop:  func(pid int) (uint64, error) { return retryPop(func() (uint64, error) { return ap.TryPop(pid) }) },
	})
	pk := stack.NewPacked(k)
	out = append(out, allocBackend{
		name: "stack/packed", wantZero: true,
		push: func(_ int, v uint64) error {
			return retryPush(func(v uint64) error { return pk.TryPush(uint32(v)) }, v)
		},
		pop: func(_ int) (uint64, error) {
			return retryPop(func() (uint64, error) { v, err := pk.TryPop(); return uint64(v), err })
		},
	})
	ms := queue.NewMichaelScott[uint64]()
	out = append(out, allocBackend{
		name: "queue/michael-scott(boxed)",
		push: func(_ int, v uint64) error { ms.Enqueue(v); return nil },
		pop:  func(_ int) (uint64, error) { return ms.Dequeue() },
	})
	qp := queue.NewAbortablePooled(k)
	out = append(out, allocBackend{
		name: "queue/abortable-pooled", wantZero: true,
		push: func(_ int, v uint64) error { return retryQPush(qp.TryEnqueue, v) },
		pop:  func(_ int) (uint64, error) { return retryQPop(qp.TryDequeue) },
	})

	return out
}

func retryPush(try func(uint64) error, v uint64) error {
	for {
		if err := try(v); !errors.Is(err, stack.ErrAborted) {
			return err
		}
	}
}

func retryPop(try func() (uint64, error)) (uint64, error) {
	for {
		if v, err := try(); !errors.Is(err, stack.ErrAborted) {
			return v, err
		}
	}
}

func retryQPush(try func(uint64) error, v uint64) error {
	for {
		if err := try(v); !errors.Is(err, queue.ErrAborted) {
			return err
		}
	}
}

func retryQPop(try func() (uint64, error)) (uint64, error) {
	for {
		if v, err := try(); !errors.Is(err, queue.ErrAborted) {
			return v, err
		}
	}
}

// allocResult is one measured row.
type allocResult struct {
	allocsPerOp float64
	bytesPerOp  float64
	gcCycles    uint64
	opsPerSec   float64
}

// measureAllocs drives procs goroutines of a balanced push/pop mix and
// measures the heap traffic of the steady state: every worker warms up
// first (growing its structure, pools, and free lists to steady
// state), then the measured window runs a fixed op count per worker
// between two MemStats snapshots. Worker parking around the barrier
// costs a handful of runtime allocations; they are amortized over the
// op count and show up only in the fourth decimal place.
func measureAllocs(procs, warmup, ops int, seed uint64,
	push func(pid int, v uint64) error, pop func(pid int) (uint64, error)) allocResult {
	var warm, done sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < procs; p++ {
		warm.Add(1)
		done.Add(1)
		go func(pid int) {
			defer done.Done()
			rng := workload.NewRNG(seed + uint64(pid))
			i := 0
			mix := func(n int) {
				for j := 0; j < n; j++ {
					if workload.Balanced.NextIsPush(rng) {
						_ = push(pid, workload.Value(pid, i))
						i++
					} else {
						_, _ = pop(pid)
					}
				}
			}
			mix(warmup)
			warm.Done()
			<-start
			mix(ops)
		}(p)
	}
	warm.Wait()
	runtime.GC() // settle warmup garbage before the window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	close(start)
	done.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	total := float64(procs * ops)
	return allocResult{
		allocsPerOp: float64(m1.Mallocs-m0.Mallocs) / total,
		bytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / total,
		gcCycles:    uint64(m1.NumGC - m0.NumGC),
		opsPerSec:   total / elapsed.Seconds(),
	}
}

func runE17(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const procs = 4
	warmup, ops := 20000, 200000
	if cfg.Quick {
		warmup, ops = 2000, 20000
	}

	tb := metrics.NewTable("backend", "allocs/op", "B/op", "GC cycles", "ops/s", "verdict")
	defer cfg.logTable("E17 steady state", tb)
	var failed []string
	for _, be := range allocBackends(procs) {
		res := measureAllocs(procs, warmup, ops, cfg.Seed, be.push, be.pop)
		verdict := "allocating"
		if res.allocsPerOp < 0.01 {
			verdict = "0 allocs/op"
		}
		if be.wantZero && res.allocsPerOp >= 0.01 {
			verdict = "FAIL: allocates"
			failed = append(failed, be.name)
		}
		tb.AddRow(be.name,
			fmt.Sprintf("%.3f", res.allocsPerOp),
			fmt.Sprintf("%.1f", res.bytesPerOp),
			res.gcCycles,
			int64(res.opsPerSec),
			verdict)
	}
	if err := fprintf(w, "steady state, %d procs, %d ops/proc after %d warmup (balanced mix)\n%s",
		procs, ops, warmup, tb.String()); err != nil {
		return err
	}
	if err := runE17ForcedReuse(cfg, w); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("E17: steady state still allocates on %v", failed)
	}
	return nil
}

// runE17ForcedReuse drives the pooled backends with every worker
// popping right after it pushes, so nearly every operation lands on a
// just-recycled node — recycling pressure high enough that a single
// tag mistake (a stale CAS wrongly succeeding on a reused handle)
// would lose or duplicate a value. Conservation of a full multiset
// plus reuse dominance is the verdict.
func runE17ForcedReuse(cfg Config, w io.Writer) error {
	const procs = 4
	perProc := 50000
	if cfg.Quick {
		perProc = 5000
	}

	// Every catalog backend whose instances expose recycling counters
	// runs the forced-reuse schedule, plus the internal-only pooled
	// Figure 1 stack.
	type target struct {
		name string
		pool func() memory.PoolStats
		push func(pid int, v uint64) error
		pop  func(pid int) (uint64, error)
	}
	var targets []target
	for _, be := range allocBackends(procs) {
		if be.pool != nil {
			targets = append(targets, target{be.name, be.pool, be.push, be.pop})
		}
	}

	tb := metrics.NewTable("backend", "ops", "reuses/op", "arena records", "drops", "verdict")
	defer cfg.logTable("E17 forced reuse", tb)
	for _, tgt := range targets {
		var wg sync.WaitGroup
		popped := make([][]uint64, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < perProc; i++ {
					_ = tgt.push(pid, uint64(pid)<<32|uint64(i))
					if v, err := tgt.pop(pid); err == nil {
						popped[pid] = append(popped[pid], v)
					}
				}
			}(p)
		}
		wg.Wait()
		seen := make(map[uint64]int)
		for _, vs := range popped {
			for _, v := range vs {
				seen[v]++
			}
		}
		for {
			v, err := tgt.pop(0)
			if err != nil {
				break
			}
			seen[v]++
		}
		conserved := len(seen) == procs*perProc
		for _, n := range seen {
			if n != 1 {
				conserved = false
				break
			}
		}
		st := tgt.pool()
		ops := 2 * procs * perProc
		verdict := "conserved; tags held"
		if !conserved {
			verdict = "FAIL: ABA corruption"
		} else if st.Reuses < st.Allocs {
			verdict = "conserved (reuse low)"
		}
		tb.AddRow(tgt.name, ops,
			fmt.Sprintf("%.2f", float64(st.Reuses)/float64(ops)),
			st.Allocs, st.Drops, verdict)
		if !conserved {
			fprintf(w, "\nforced reuse: every op recycles a just-retired node\n%s", tb.String())
			return fmt.Errorf("E17: %s lost or duplicated values under forced reuse", tgt.name)
		}
	}
	return fprintf(w, "\nforced reuse: every op recycles a just-retired node\n%s", tb.String())
}
