package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// Config tunes an experiment run.
type Config struct {
	// Procs is the maximum process (goroutine) count used by scaling
	// experiments; 0 means min(2*GOMAXPROCS, 16).
	Procs int
	// Duration is the measuring window per data point; 0 means 200ms
	// (or 10ms under Quick).
	Duration time.Duration
	// Quick shrinks all budgets for use in unit tests.
	Quick bool
	// Seed seeds the deterministic workload generators.
	Seed uint64
	// Log, when non-nil, collects every experiment's tables in
	// structured form for machine-readable export (contbench -json).
	Log *ResultLog
}

func (c Config) withDefaults() Config {
	if c.Procs == 0 {
		c.Procs = 2 * runtime.GOMAXPROCS(0)
		if c.Procs > 16 {
			c.Procs = 16
		}
		if c.Procs < 4 {
			c.Procs = 4
		}
	}
	if c.Duration == 0 {
		if c.Quick {
			c.Duration = 10 * time.Millisecond
		} else {
			c.Duration = 200 * time.Millisecond
		}
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Experiment is one reproduction experiment.
type Experiment struct {
	// ID is the experiment identifier used by DESIGN.md §4 ("E1"...).
	ID string
	// Title is a one-line description.
	Title string
	// Claim restates what the paper claims (the expected shape).
	Claim string
	// Gate, when non-empty, is the command that applies the
	// experiment's release gates to its -json rows (contbench -list
	// prints it so the gate tool is discoverable next to the id).
	Gate string
	// Run executes the experiment and writes its table(s) to w.
	Run func(cfg Config, w io.Writer) error
}

var registry []Experiment

// register adds an experiment to the catalog. Duplicate ids panic at
// init time with both titles, so an id collision (the E10/E11 clash of
// PR 1, which silently landed as E15/E16) cannot ship again: pick the
// next free number instead (see EXPERIMENTS.md's id-allocation note).
func register(e Experiment) {
	for _, x := range registry {
		if x.ID == e.ID {
			panic(fmt.Sprintf("bench: duplicate experiment id %s (%q vs %q) — allocate the next free id",
				e.ID, x.Title, e.Title))
		}
	}
	registry = append(registry, e)
}

// All returns the experiments in id order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 (numeric, not lexicographic).
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// hammer drives procs goroutines of mixed push/pop against one stack
// instance for the duration and returns per-process completed-op
// counts. Values conserve the workload encoding so failures surface in
// other experiments; here only counts matter.
func hammer(procs int, d time.Duration, seed uint64,
	push func(pid int, v uint64) error, pop func(pid int) (uint64, error)) []uint64 {
	var stop atomic.Bool
	counts := make([]uint64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := workload.NewRNG(seed + uint64(pid))
			n := uint64(0)
			i := 0
			for !stop.Load() {
				if workload.Balanced.NextIsPush(rng) {
					_ = push(pid, workload.Value(pid, i))
					i++
				} else {
					_, _ = pop(pid)
				}
				n++
			}
			counts[pid] = n
		}(p)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return counts
}

// opsPerSec converts a count over a window into a rate.
func opsPerSec(total uint64, d time.Duration) float64 {
	return float64(total) / d.Seconds()
}

// procSteps returns the proc counts a scaling experiment sweeps:
// 1, 2, 4, ... up to max.
func procSteps(max int) []int {
	var steps []int
	for p := 1; p <= max; p *= 2 {
		steps = append(steps, p)
	}
	if len(steps) == 0 || steps[len(steps)-1] != max {
		steps = append(steps, max)
	}
	return steps
}

// fprintf writes formatted output, propagating the error.
func fprintf(w io.Writer, format string, args ...interface{}) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}
