package bench

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/stack"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "starvation-freedom of the Figure 3 stack (Lemmas 2-3)",
		Claim: "with the FLAG/TURN round-robin over a deadlock-free lock, every process completes operations under saturation (Jain index near 1, non-zero minimum); the same stack without the round-robin inherits only deadlock-freedom",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E10",
		Title: "lock transformation (§4.4): deadlock-free → starvation-free",
		Claim: "RoundRobin(TAS) buys ticket-lock-class fairness for a few extra shared accesses; raw TAS can be arbitrarily unfair",
		Run:   runE10,
	})
}

func runE4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	procs := cfg.Procs
	tb := metrics.NewTable("configuration", "total ops", "min/proc", "max/proc", "jain")
	defer cfg.logTable("E4 fairness", tb)

	type variant struct {
		name string
		mk   func() (func(pid int, v uint64) error, func(pid int) (uint64, error))
	}
	variants := []variant{
		{"sensitive RR(TAS) [paper]", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewSensitive[uint64](8, procs)
			return s.Push, s.Pop
		}},
		{"sensitive raw TAS (no RR)", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewSensitiveFrom[uint64](stack.NewAbortable[uint64](8), lock.IgnorePid(lock.NewTAS()))
			return s.Push, s.Pop
		}},
		{"lock-based TAS", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewLockBasedWith[uint64](8, lock.IgnorePid(lock.NewTAS()))
			return s.Push, s.Pop
		}},
		{"lock-based ticket", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewLockBasedWith[uint64](8, lock.IgnorePid(lock.NewTicket()))
			return s.Push, s.Pop
		}},
	}
	for _, v := range variants {
		push, pop := v.mk()
		counts := hammer(procs, cfg.Duration, cfg.Seed, push, pop)
		min, max := metrics.MinMax(counts)
		tb.AddRow(v.name, metrics.Sum(counts), min, max, metrics.JainIndex(counts))
	}
	if err := fprintf(w, "per-process completions over %v at %d procs (tiny stack, maximal conflicts)\n",
		cfg.Duration, procs); err != nil {
		return err
	}
	return fprintf(w, "%s", tb.String())
}

func runE10(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	procs := cfg.Procs
	tb := metrics.NewTable("lock", "liveness", "sections/s", "min/proc", "max/proc", "jain", "longest dry spell")
	defer cfg.logTable("E10 lock liveness", tb)

	type variant struct {
		name string
		mk   func() lock.PidLock
	}
	variants := []variant{
		{"TAS", func() lock.PidLock { return lock.IgnorePid(lock.NewTAS()) }},
		{"TTAS", func() lock.PidLock { return lock.IgnorePid(lock.NewTTAS()) }},
		{"Backoff", func() lock.PidLock { return lock.IgnorePid(lock.NewBackoff()) }},
		{"Ticket", func() lock.PidLock { return lock.IgnorePid(lock.NewTicket()) }},
		{"Mutex", func() lock.PidLock { return lock.IgnorePid(lock.NewMutex()) }},
		{"Tournament", func() lock.PidLock { return lock.NewTournament(procs) }},
		{"RR(TAS) [§4.4]", func() lock.PidLock { return lock.NewRoundRobin(lock.NewTAS(), procs) }},
		{"RR(Backoff)", func() lock.PidLock { return lock.NewRoundRobin(lock.NewBackoff(), procs) }},
	}
	for _, v := range variants {
		lk := v.mk()
		counts := make([]uint64, procs)
		// Longest gap between two consecutive acquisitions by the
		// same process, across all processes: the starvation proxy.
		gaps := make([]int64, procs)
		lastAt := make([]int64, procs)
		start := time.Now()
		var stop atomic.Bool
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				lastAt[pid] = 0
				for !stop.Load() {
					lk.Acquire(pid)
					now := time.Since(start).Nanoseconds()
					if g := now - lastAt[pid]; g > gaps[pid] {
						gaps[pid] = g
					}
					lastAt[pid] = now
					counts[pid]++
					lk.Release(pid)
				}
			}(p)
		}
		time.Sleep(cfg.Duration)
		stop.Store(true)
		wg.Wait()
		var worstGap int64
		for _, g := range gaps {
			if g > worstGap {
				worstGap = g
			}
		}
		liveness := "deadlock-free"
		if li, ok := lk.(lock.LivenessInfo); ok {
			liveness = li.Liveness().String()
		}
		min, max := metrics.MinMax(counts)
		tb.AddRow(v.name, liveness, int64(opsPerSec(metrics.Sum(counts), cfg.Duration)),
			min, max, metrics.JainIndex(counts), time.Duration(worstGap).String())
	}
	if err := fprintf(w, "critical sections over %v at %d procs\n", cfg.Duration, procs); err != nil {
		return err
	}
	return fprintf(w, "%s", tb.String())
}
