package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "split-ordered hashing: O(1) expected set operations vs the O(n) lists",
		Claim: "every list-shaped set backend pays per-operation work that grows with the resident key range — the COW ladder through path copies, the Harris list through full-prefix traversals — while the split-ordered hash layer over the SAME pooled Harris list walks one bucket chain whatever the range: its throughput stays roughly flat from 64 to 65536 keys as the others fall away, the table doubling (resize column) amortizes to O(1), and per-key conservation holds across lazy splits, adopted sentinels, and republished tables",
		Run:   runE19,
	})
}

// e19Impl is one backend of the key-range sweep: the uniform pid-aware
// closures plus a quiescent snapshot for O(n)-once conservation
// checking (E18 verifies by probing every key, which is itself O(n)
// per probe on the list backends — ruinous at 65536) and an optional
// resize counter.
type e19Impl struct {
	name  string
	build func(procs int) (
		add func(pid int, k uint64) bool,
		remove func(pid int, k uint64) bool,
		contains func(pid int, k uint64) bool,
		snapshot func() []uint64,
		resizes func() uint64)
}

// e19Impls selects the key-range sweep's backends from the catalog:
// the strong, lock-free set backends — the COW Figure 2 list, the
// Harris list, and the split-ordered hash layer — whose instances can
// produce the quiescent snapshot the conservation check walks. (The
// guard-serialized backends are covered by E18's narrower ranges; at
// 65536 keys their path copies would dominate the sweep.)
func e19Impls() []e19Impl {
	var out []e19Impl
	for _, b := range repro.CatalogByKind(repro.KindSet) {
		if b.Weak || !strings.Contains(b.Progress, "lock-free") {
			continue
		}
		b := b
		out = append(out, e19Impl{name: b.Name, build: func(procs int) (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool, func() []uint64, func() uint64) {
			s := b.Set(repro.WithProcs(procs))
			inner := repro.Unwrap(s)
			sn, ok := inner.(interface{ Snapshot() []uint64 })
			if !ok {
				panic(fmt.Sprintf("bench: E19 backend %s cannot produce the quiescent snapshot its conservation check walks", b.Name))
			}
			snapshot := sn.Snapshot
			var resizes func() uint64
			if r, ok := inner.(interface{ Resizes() uint64 }); ok {
				resizes = r.Resizes
			}
			add := func(pid int, k uint64) bool { ok, _ := s.Add(pid, k); return ok }
			remove := func(pid int, k uint64) bool { ok, _ := s.Remove(pid, k); return ok }
			contains := func(pid int, k uint64) bool { ok, _ := s.Contains(pid, k); return ok }
			return add, remove, contains, snapshot, resizes
		}})
	}
	return out
}

// hammerSetSnapshot is E19's driver: driveSetMix plus conservation
// verified at quiescence against ONE snapshot walk — adds(k) -
// removes(k) must be 1 exactly for the keys the snapshot holds
// (probing every key, as E18 does, is O(n) per probe on the list
// backends and ruinous at 65536).
func hammerSetSnapshot(procs int, d time.Duration, seed uint64, keyRange int, mix workload.SetMix,
	add, remove, contains func(pid int, k uint64) bool, snapshot func() []uint64) (total uint64, err error) {
	total, adds, removes := driveSetMix(procs, d, seed, keyRange, mix, add, remove, contains)
	resident := make(map[uint64]bool, keyRange)
	for _, k := range snapshot() {
		if k >= uint64(keyRange) {
			return total, fmt.Errorf("quiescent snapshot holds key %d, outside the workload's [0, %d) range", k, keyRange)
		}
		if resident[k] {
			return total, fmt.Errorf("key %d appears twice in the quiescent snapshot", k)
		}
		resident[k] = true
	}
	for k := 0; k < keyRange; k++ {
		diff := adds[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			return total, fmt.Errorf("key %d: %d adds vs %d removes", k, adds[k].Load(), removes[k].Load())
		}
		if got, want := resident[uint64(k)], diff == 1; got != want {
			return total, fmt.Errorf("key %d: snapshot membership %v, accounting says %v", k, got, want)
		}
	}
	return total, nil
}

func runE19(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const procs = 4
	keyRanges := []int{64, 4096, 65536}
	if cfg.Quick {
		keyRanges = []int{64, 512, 4096}
	}
	mixes := []struct {
		name string
		mix  workload.SetMix
	}{
		{"read-mostly 90/9/1", workload.SetReadMostly},
		{"mixed 50/25/25", workload.SetMixed},
	}
	headers := []string{"backend", "mix"}
	for _, keys := range keyRanges {
		headers = append(headers, fmt.Sprintf("keys=%d ops/s", keys))
	}
	headers = append(headers, "flatness", "resizes", "verdict")
	tb := metrics.NewTable(headers...)
	defer cfg.logTable("E19 key-range sweep", tb)
	var failed []string
	for _, impl := range e19Impls() {
		implFailed := false
		for _, m := range mixes {
			verdict := "conserved"
			rates := make([]float64, len(keyRanges))
			resizes := "—"
			for i, keys := range keyRanges {
				add, remove, contains, snapshot, resizeCount := impl.build(procs)
				total, err := hammerSetSnapshot(procs, cfg.Duration, cfg.Seed, keys, m.mix, add, remove, contains, snapshot)
				rates[i] = opsPerSec(total, cfg.Duration)
				if err != nil {
					verdict = fmt.Sprintf("FAIL: %v", err)
					implFailed = true
				}
				if resizeCount != nil && i == len(keyRanges)-1 {
					resizes = fmt.Sprint(resizeCount())
				}
			}
			// Flatness is the headline number: throughput at the widest
			// range as a fraction of the narrowest. O(1) expected work
			// keeps it near 1; O(n) work drives it toward 0.
			row := []interface{}{impl.name, m.name}
			for _, r := range rates {
				row = append(row, int64(r))
			}
			row = append(row, fmt.Sprintf("%.2f", rates[len(rates)-1]/rates[0]), resizes, verdict)
			tb.AddRow(row...)
		}
		if implFailed {
			failed = append(failed, impl.name)
		}
	}
	if err := fprintf(w, "%d procs, %v per cell, key range sweep %v (resizes column = final table doublings at keys=%d)\n%s",
		procs, cfg.Duration, keyRanges, keyRanges[len(keyRanges)-1], tb.String()); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("E19: conservation violated on %v", failed)
	}
	return nil
}
