package bench

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "scenario suite: the standard workload scenarios over every applicable backend, with latency quantiles",
		Claim: "which rung of the ladder wins is regime-dependent: under the declarative scenario suite (bursty arrivals, Zipf hot keys, phase flips, role imbalance, slow/crashed processes) every backend keeps its conservation invariant, and the per-op p50/p99/p999 rows — one per scenario x backend x rerun — are what cmd/slogate's SLO and variance release gates check",
		Gate:  "cmd/slogate -exp E21",
		Run:   runE21,
	})
}

// e21Caption names the table cmd/slogate looks up in the -json
// document; scenario.ParseRows pins its column schema.
const e21Caption = "E21 scenario suite"

func runE21(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	reruns, scale := 3, 1.0
	if cfg.Quick {
		reruns, scale = 2, 0.02
	}

	tb := metrics.NewTable(scenario.RowColumns()...)
	defer cfg.logTable(e21Caption, tb)

	violations := 0
	cells := 0
	for _, sc := range scenario.Library() {
		// The scenario's own seed keeps streams stable across hosts;
		// a caller-chosen seed shifts every scenario deterministically.
		if cfg.Seed != 0x5eed {
			sc.Seed += cfg.Seed
		}
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			cells++
			for rerun := 0; rerun < reruns; rerun++ {
				res := scenario.Run(b, sc, scenario.Options{Scale: scale})
				conserved := "ok"
				if res.Conserved != nil {
					conserved = fmt.Sprintf("FAIL: %v", res.Conserved)
					violations++
				}
				tb.AddRow(sc.Name, b.Name, rerun, res.Procs, res.Ops, res.OKOps,
					res.OpsPerSec(),
					int64(res.Hist.Percentile(50)),
					int64(res.Hist.Percentile(99)),
					int64(res.Hist.Percentile(99.9)),
					conserved)
			}
		}
	}

	if err := fprintf(w, "%d scenarios x applicable backends (%d cells) x %d reruns, op-budget scale %.2f\n%s",
		len(scenario.Library()), cells, reruns, scale, tb.String()); err != nil {
		return err
	}
	if err := fprintf(w, "note: quantiles are per-op latency in ns; gates (SLO medians, cross-rerun variance, coverage) are applied by cmd/slogate over the -json rows\n"); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("E21: %d scenario run(s) violated conservation", violations)
	}
	return nil
}
