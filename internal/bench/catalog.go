package bench

import (
	"repro"
	"repro/internal/lock"
	"repro/internal/queue"
	"repro/internal/stack"
)

// This file adapts the public backend catalog (repro.Catalog) to the
// shapes the experiments drive. The harnesses iterate the catalog
// instead of keeping their own backend lists: a backend's name is
// written once, in repro's catalog, and shows up here only through
// iteration. The lists below are measurement-only baselines
// (lock-based references, internal packed/pooled variants) that the
// public catalog deliberately does not export.

// hammerImpl is one backend of a throughput comparison: pid-aware
// push/pop (or enq/deq) closures over a fresh instance of capacity k
// for procs processes.
type hammerImpl struct {
	name  string
	build func(k, procs int) (push func(pid int, v uint64) error, pop func(pid int) (uint64, error))
}

// catalogStackImpls returns every strong (never-aborting) stack
// backend in the public catalog. Weak backends are excluded: under a
// hammer their single attempts abort, which would count no-effect
// operations as throughput.
func catalogStackImpls() []hammerImpl {
	var out []hammerImpl
	for _, b := range repro.CatalogByKind(repro.KindStack) {
		if b.Weak {
			continue
		}
		b := b
		out = append(out, hammerImpl{name: b.Name, build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
			s := b.Stack(repro.WithCapacity(k), repro.WithProcs(procs))
			return s.Push, s.Pop
		}})
	}
	return out
}

// catalogQueueImpls is catalogStackImpls' FIFO sibling.
func catalogQueueImpls() []hammerImpl {
	var out []hammerImpl
	for _, b := range repro.CatalogByKind(repro.KindQueue) {
		if b.Weak {
			continue
		}
		b := b
		out = append(out, hammerImpl{name: b.Name, build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
			q := b.Queue(repro.WithCapacity(k), repro.WithProcs(procs))
			return q.Enqueue, q.Dequeue
		}})
	}
	return out
}

// paperSensitiveStack returns the catalog's Figure 3 stack (paper
// tier, starvation-free): the serialized-fallback baseline E15
// compares flat combining against.
func paperSensitiveStack() hammerImpl {
	for _, b := range repro.CatalogByKind(repro.KindStack) {
		if b.Tier != "paper" || b.Progress != "starvation-free" {
			continue
		}
		b := b
		return hammerImpl{name: b.Name, build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
			s := b.Stack(repro.WithCapacity(k), repro.WithProcs(procs))
			return s.Push, s.Pop
		}}
	}
	panic("bench: the catalog has no paper-tier starvation-free stack")
}

// lockStackImpls returns the traditional lock-based stack baselines
// of E5/E6/E15. They are measurement references, not exported
// backends, so they are defined here rather than in the catalog.
func lockStackImpls() []hammerImpl {
	return []hammerImpl{
		{
			name: "lock(mutex)",
			build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
				s := stack.NewLockBased[uint64](k)
				return s.Push, s.Pop
			},
		},
		{
			name: "lock(ticket)",
			build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
				s := stack.NewLockBasedWith[uint64](k, lock.IgnorePid(lock.NewTicket()))
				return s.Push, s.Pop
			},
		},
		{
			name: "lock(tas)",
			build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
				s := stack.NewLockBasedWith[uint64](k, lock.IgnorePid(lock.NewTAS()))
				return s.Push, s.Pop
			},
		},
	}
}

// lockQueueImpls returns E9's lock-based and boxed Michael-Scott
// references (the boxed MS queue is internal-only; the catalog
// exports its pooled retrofit).
func lockQueueImpls() []hammerImpl {
	return []hammerImpl{
		{
			name: "lock(mutex)",
			build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
				q := queue.NewLockBased[uint64](k)
				return q.Enqueue, q.Dequeue
			},
		},
		{
			name: "michael-scott(boxed)",
			build: func(k, procs int) (func(int, uint64) error, func(int) (uint64, error)) {
				q := queue.NewMichaelScott[uint64]()
				return func(_ int, v uint64) error { q.Enqueue(v); return nil },
					func(_ int) (uint64, error) { return q.Dequeue() }
			},
		},
	}
}
