package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "unified dispatch: the capability interfaces vs direct calls over the full catalog",
		Claim: "one object contract per kind serves every backend: routing the same mixed workload through the capability-typed interface (adapters included) costs within a few percent of calling the concrete type's own methods, on every entry of repro.Catalog()",
		Run:   runE20,
	})
}

// e20Round drives one Ops driver through a fixed, seeded solo op
// stream and returns the round's ns/op. Solo keeps the comparison
// about dispatch: the per-call adapter/interface cost is a constant,
// and contention noise on a loaded host would swamp the few-percent
// effect being measured. The same seed replays the exact op/value
// sequence on both paths of a backend.
func e20Round(ops repro.Ops, n int, seed uint64) float64 {
	rng := workload.NewRNG(seed)
	start := time.Now()
	for i := 0; i < n; i++ {
		op := rng.Intn(ops.N)
		_, _ = ops.Do(0, op, uint64(rng.Intn(256)))
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// e20Compare measures the two paths in alternating rounds (the heap
// settled before each timing, so one path never pays the other's
// garbage) and returns each path's best round.
func e20Compare(direct, iface repro.Ops, rounds, n int, seed uint64) (directNs, ifaceNs float64) {
	for r := 0; r < rounds; r++ {
		runtime.GC()
		d := e20Round(direct, n, seed)
		runtime.GC()
		i := e20Round(iface, n, seed)
		if directNs == 0 || d < directNs {
			directNs = d
		}
		if ifaceNs == 0 || i < ifaceNs {
			ifaceNs = i
		}
	}
	return directNs, ifaceNs
}

func runE20(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rounds, n := 7, 50000
	if cfg.Quick {
		rounds, n = 5, 10000
	}
	opts := []repro.Option{repro.WithCapacity(1024), repro.WithProcs(1)}

	tb := metrics.NewTable("backend", "kind", "direct ns/op", "interface ns/op", "overhead", "verdict")
	defer cfg.logTable("E20 dispatch overhead", tb)
	covered := 0
	for _, b := range repro.Catalog() {
		// Fresh instances per path, same seeded op stream: the direct
		// path calls the concrete type's methods, the interface path
		// goes through the capability contract and its adapters.
		direct, iface := e20Compare(b.Direct(opts...), repro.Drive(b, opts...), rounds, n, cfg.Seed)
		overhead := iface/direct - 1
		verdict := "ok (≤5%)"
		switch {
		case overhead > 0.25:
			verdict = "HIGH"
		case overhead > 0.05:
			verdict = "noisy (>5%)"
		}
		tb.AddRow(b.Name, b.Kind,
			fmt.Sprintf("%.1f", direct),
			fmt.Sprintf("%.1f", iface),
			fmt.Sprintf("%+.1f%%", overhead*100),
			verdict)
		covered++
	}
	if err := fprintf(w, "solo mixed workload, %d ops × %d rounds (best), %d catalog backends\n%s",
		n, rounds, covered, tb.String()); err != nil {
		return err
	}
	return fprintf(w, "note: negative overhead = measurement jitter; the contract costs one interface dispatch plus pid plumbing\n")
}
