// Package bench is the experiment harness: it reproduces every
// analytical claim of the paper as a measured experiment (the paper
// has no empirical tables; DESIGN.md §4 maps its claims to the
// experiment ids used here). cmd/contbench is the CLI front end, the
// repository-root benchmarks drive the same code under testing.B, and
// EXPERIMENTS.md quotes the tables these experiments print.
package bench
