package adaptive

import (
	"sync/atomic"
	"time"

	"repro/internal/cmanager"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/set"
)

// The set ladder's rung indices, bottom first.
const (
	rungCow = iota
	rungHarris
	rungHash
)

// setRungs names the ladder, bottom first.
var setRungs = []string{"cow", "harris", "hash"}

// upLevel is the cmanager.Adaptive backoff level treated as a climb
// signal when such a manager paces the cow rung's retries: a shared
// backoff that deep means the single root register is saturated.
const upLevel = 3

// setRec is one immutable epoch record of the adaptive set; the
// register holding it is the migration epoch (see the package
// comment). impl is *set.Abortable, *set.Harris or *set.Hash.
type setRec struct {
	gen  uint64
	rung int
	impl any
	mig  bool
	dst  int
}

// Set is the contention-adaptive sorted set: the copy-on-write list
// while small and calm (wait-free reads, trivial aborts), the
// Harris/Michael list once size or abort rate says the single root is
// the bottleneck, the split-ordered hash layer once the sorted walk
// itself dominates (the E18/E19 crossovers). Keys must be < 2^63 (the
// hash rung's reserved bit).
//
// The cow rung needs no announce protocol: its whole abstract state is
// one root register, so a migrator freezes it with set.Abortable.Seal
// and any update that raced the flip fails its stale root CAS. The
// harris and hash rungs are multi-register, so their updates run under
// the announce protocol and a migrator quiesces the announce array
// before snapshotting. Reads never announce on any rung: the source
// stays authoritative until the close CAS.
type Set struct {
	state *memory.Ref[setRec]
	ann   []annSlot
	obs   memory.Observer
	n     int
	t     Thresholds

	// m paces the cow rung's retries; budget > 0 sheds a fully aborted
	// update after budget attempts, like set.NonBlocking.
	m      core.Manager
	budget int

	// ops feeds decision windows and the active-pid signal; adds/rems
	// maintain the approximate size; cowAborts is the cow rung's
	// contention signal.
	ops, adds, rems, cowAborts []counter

	deciding   atomic.Bool
	prevOps    []uint64
	prevAborts uint64

	consecAborts atomic.Uint32
	disabled     atomic.Bool
	migrations   atomic.Uint64
	abortedMig   atomic.Uint64
	curRung      atomic.Int32
	enterNS      atomic.Int64
	inRung       [3]atomic.Int64
}

// NewSet returns an adaptive set for n processes governed by t,
// starting on the cow rung.
func NewSet(n int, t Thresholds) *Set { return NewSetObserved(n, t, nil) }

// NewSetObserved is NewSet with every protocol register — the epoch
// record, the announce slots, the cow root, and every register of the
// rungs built by future migrations — reported to obs first: under
// internal/sched's controller the whole migration window becomes
// deterministically schedulable. A nil obs is equivalent to NewSet.
func NewSetObserved(n int, t Thresholds, obs memory.Observer) *Set {
	s := &Set{
		ann:       make([]annSlot, n),
		obs:       obs,
		n:         n,
		t:         t,
		ops:       make([]counter, n),
		adds:      make([]counter, n),
		rems:      make([]counter, n),
		cowAborts: make([]counter, n),
		prevOps:   make([]uint64, n),
	}
	for i := range s.ann {
		s.ann[i].w.Observe(obs)
	}
	s.state = memory.NewRefObserved(&setRec{gen: 1, rung: rungCow, impl: set.NewAbortableObserved(obs)}, obs)
	s.enterNS.Store(time.Now().UnixNano())
	return s
}

// SetRetryPolicy replaces the cow rung's contention manager and sets
// an attempt budget (0 = unbounded); with a budget, a fully aborted
// update sheds with no effect and reports false, like set.NonBlocking.
// Call at quiescence.
func (s *Set) SetRetryPolicy(m core.Manager, budget int) { s.m, s.budget = m, budget }

// RetryPolicy reports the current contention manager and attempt
// budget (tests and diagnostics).
func (s *Set) RetryPolicy() (core.Manager, int) { return s.m, s.budget }

// Add inserts k; it reports whether k was newly inserted.
func (s *Set) Add(pid int, k uint64) bool { return s.update(pid, k, true) }

// Remove deletes k; it reports whether k was present.
func (s *Set) Remove(pid int, k uint64) bool { return s.update(pid, k, false) }

// Contains reports membership. It never announces: during a migration
// window the source structure is authoritative until the close CAS, so
// one epoch read plus the rung's own wait-free/lock-free read path is
// linearizable mid-flight.
func (s *Set) Contains(pid int, k uint64) bool {
	rec := s.state.Read()
	if c, ok := rec.impl.(*set.Abortable); ok {
		return c.Contains(k)
	}
	return rec.impl.(set.Strong).Contains(pid, k)
}

// update runs one strong update through the epoch record.
func (s *Set) update(pid int, k uint64, add bool) bool {
	attempts := 0
	for {
		rec := s.state.Read()
		if rec.mig {
			if done, res := s.updateDuringMig(pid, k, add, rec, &attempts); done {
				return res
			}
			continue
		}
		if rec.rung == rungCow {
			if done, res := s.tryCowOnce(pid, k, add, rec.impl.(*set.Abortable), &attempts); done {
				return res
			}
			continue
		}
		// harris / hash: a lock-free total op under the announce
		// protocol (announce, re-validate the epoch, run, clear).
		s.ann[pid].w.Write(rec.gen)
		if s.state.Read() != rec {
			s.ann[pid].w.Write(0)
			continue
		}
		st := rec.impl.(set.Strong)
		var res bool
		if add {
			res = st.Add(pid, k)
		} else {
			res = st.Remove(pid, k)
		}
		s.ann[pid].w.Write(0)
		s.finish(pid, add, res, attempts)
		return res
	}
}

// tryCowOnce makes one cow attempt. done=false means the caller must
// re-read the epoch record (abort under interference, or the root was
// sealed by a migrator).
func (s *Set) tryCowOnce(pid int, k uint64, add bool, cw *set.Abortable, attempts *int) (done, res bool) {
	var err error
	if add {
		res, err = cw.TryAdd(k)
	} else {
		res, err = cw.TryRemove(k)
	}
	if err == nil {
		s.finish(pid, add, res, *attempts)
		return true, res
	}
	if err == set.ErrAborted {
		s.cowAborts[pid].v.Add(1)
		*attempts++
		if s.budget > 0 && *attempts >= s.budget {
			// Budget spent: shed with no effect, like set.NonBlocking.
			return true, false
		}
		if s.m != nil {
			s.m.OnAbort(*attempts)
		}
	}
	return false, false
}

// updateDuringMig handles an update that found a migration window
// open. done=true means the update completed on the still-live source.
func (s *Set) updateDuringMig(pid int, k uint64, add bool, rec *setRec, attempts *int) (done, res bool) {
	if rec.rung == rungCow {
		cw := rec.impl.(*set.Abortable)
		if !cw.Sealed() {
			// The migrator has not frozen the root yet (or crashed
			// before it could): the source is still authoritative and
			// live, and the root CAS arbitrates against the seal — an
			// update that lands here linearizes before the flip.
			return s.tryCowOnce(pid, k, add, cw, attempts)
		}
		s.completeFromCow(pid, rec, cw)
		return false, false
	}
	s.helpQuiesced(pid, rec)
	return false, false
}

// completeFromCow finishes a window whose cow source is sealed:
// snapshot the frozen list, rebuild the target privately, close with
// one CAS. Any process can run it; close-CAS losers discard.
func (s *Set) completeFromCow(pid int, rec *setRec, cw *set.Abortable) {
	dst := s.buildRung(pid, rec.dst, cw.Snapshot())
	if s.state.CAS(rec, &setRec{gen: rec.gen + 1, rung: rec.dst, impl: dst}) {
		s.onClose(rec.rung, rec.dst)
	}
}

// helpQuiesced drives a window with an announce-gated source (harris
// or hash): quiesce, snapshot, rebuild, close — or abort the window
// when the budget runs out.
func (s *Set) helpQuiesced(pid int, rec *setRec) {
	if quiesceSlots(s.ann, pid, s.t.quiesceBudget()) {
		snap := rec.impl.(interface{ Snapshot() []uint64 }).Snapshot()
		dst := s.buildRung(pid, rec.dst, snap)
		if s.state.CAS(rec, &setRec{gen: rec.gen + 1, rung: rec.dst, impl: dst}) {
			s.onClose(rec.rung, rec.dst)
		}
		return
	}
	if s.state.CAS(rec, &setRec{gen: rec.gen + 1, rung: rec.rung, impl: rec.impl}) {
		s.onAbort()
	}
}

// buildRung constructs rung from an ascending snapshot, privately.
// Descending inserts land each key at the head of the list engines, so
// the rebuild is linear, not quadratic.
func (s *Set) buildRung(pid, rung int, snap []uint64) any {
	switch rung {
	case rungCow:
		c := set.NewAbortableObserved(s.obs)
		for i := len(snap) - 1; i >= 0; i-- {
			c.TryAdd(snap[i]) // private: never aborts
		}
		return c
	case rungHarris:
		h := set.NewHarrisObserved(s.n, s.obs)
		for i := len(snap) - 1; i >= 0; i-- {
			h.Add(pid, snap[i])
		}
		return h
	default:
		h := set.NewHashObserved(s.n, s.obs)
		for _, k := range snap {
			h.Add(pid, k)
		}
		return h
	}
}

// finish closes one completed update: reset the retry manager, feed
// the size and window counters, maybe adapt.
func (s *Set) finish(pid int, add, changed bool, attempts int) {
	if attempts > 0 && s.m != nil {
		s.m.OnSuccess()
	}
	if changed {
		if add {
			s.adds[pid].v.Add(1)
		} else {
			s.rems[pid].v.Add(1)
		}
	}
	n := s.ops[pid].v.Add(1)
	if s.t.Window > 0 && n%uint64(s.t.Window) == 0 {
		s.maybeAdapt(pid)
	}
}

// approxSize is the counter-derived size (successful adds minus
// successful removes): exact at quiescence, a cheap deterministic
// signal under load.
func (s *Set) approxSize() int {
	a, r := sumCounters(s.adds), sumCounters(s.rems)
	if a <= r {
		return 0
	}
	return int(a - r)
}

// maybeAdapt takes one adaptation decision under the try-lock.
// Climbing is checked first.
func (s *Set) maybeAdapt(pid int) {
	if s.disabled.Load() || !s.deciding.CompareAndSwap(false, true) {
		return
	}
	defer s.deciding.Store(false)
	rec := s.state.Read()
	if rec.mig {
		return
	}
	size := s.approxSize()
	aborts := sumCounters(s.cowAborts)
	delta := aborts - s.prevAborts
	s.prevAborts = aborts
	act := 0
	for i := range s.ops {
		if cur := s.ops[i].v.Load(); cur != s.prevOps[i] {
			s.prevOps[i] = cur
			act++
		}
	}
	lvl := 0
	if a, ok := s.m.(*cmanager.Adaptive); ok {
		lvl = a.Level()
	}
	var up, down bool
	switch rec.rung {
	case rungCow:
		up = size >= s.t.SetSizeUp[0] || delta >= uint64(s.t.UpContended) || lvl >= upLevel
	case rungHarris:
		up = size >= s.t.SetSizeUp[1]
		down = size <= s.t.SetSizeDown[0] && act <= s.t.DownProcs
	case rungHash:
		down = size <= s.t.SetSizeDown[1] && act <= s.t.DownProcs
	}
	switch {
	case up && rec.rung < rungHash:
		s.migrate(pid, rec, rec.rung+1)
	case down && rec.rung > rungCow:
		s.migrate(pid, rec, rec.rung-1)
	}
}

// migrate opens a window from rec to dst and drives it. For a cow
// source only the opener seals (helpers require a sealed root), so an
// exhausted seal budget aborts with no counterparty to race.
func (s *Set) migrate(pid int, rec *setRec, dst int) {
	mig := &setRec{gen: rec.gen + 1, rung: rec.rung, impl: rec.impl, mig: true, dst: dst}
	if !s.state.CAS(rec, mig) {
		return
	}
	if rec.rung == rungCow {
		cw := rec.impl.(*set.Abortable)
		budget := s.t.quiesceBudget()
		for cw.Seal() != nil {
			budget--
			if budget <= 0 {
				if s.state.CAS(mig, &setRec{gen: mig.gen + 1, rung: mig.rung, impl: mig.impl}) {
					s.onAbort()
				}
				return
			}
		}
		s.completeFromCow(pid, mig, cw)
		return
	}
	s.helpQuiesced(pid, mig)
}

// MorphTo steps the set to rung dst (an index into Rungs) ignoring
// thresholds; it reports whether dst was reached. Test hook.
func (s *Set) MorphTo(pid, dst int) bool {
	if dst < rungCow || dst > rungHash {
		return false
	}
	for i := 0; i < 64; i++ {
		rec := s.state.Read()
		if rec.mig {
			if rec.rung == rungCow {
				if cw := rec.impl.(*set.Abortable); cw.Sealed() {
					s.completeFromCow(pid, rec, cw)
				}
				// An unsealed open window resolves only through its
				// opener; keep re-reading.
				continue
			}
			s.helpQuiesced(pid, rec)
			continue
		}
		if rec.rung == dst {
			return true
		}
		next := rec.rung + 1
		if dst < rec.rung {
			next = rec.rung - 1
		}
		s.migrate(pid, rec, next)
	}
	return false
}

func (s *Set) onClose(src, dst int) {
	s.migrations.Add(1)
	s.consecAborts.Store(0)
	s.curRung.Store(int32(dst))
	now := time.Now().UnixNano()
	prev := s.enterNS.Swap(now)
	s.inRung[src].Add(now - prev)
}

func (s *Set) onAbort() {
	s.abortedMig.Add(1)
	if s.consecAborts.Add(1) >= abortLimit {
		s.disabled.Store(true)
	}
}

// Stats returns the migration counters and time-in-regime without
// touching the (possibly observed) epoch register.
func (s *Set) Stats() Stats {
	cur := int(s.curRung.Load())
	st := Stats{
		Migrations: s.migrations.Load(),
		Aborted:    s.abortedMig.Load(),
		Rung:       setRungs[cur],
		InRung:     make(map[string]time.Duration, len(setRungs)),
	}
	now := time.Now().UnixNano()
	for i, name := range setRungs {
		d := s.inRung[i].Load()
		if i == cur {
			d += now - s.enterNS.Load()
		}
		if d > 0 {
			st.InRung[name] = time.Duration(d)
		}
	}
	return st
}

// Rung returns the current rung's name.
func (s *Set) Rung() string { return setRungs[s.curRung.Load()] }

// Rungs returns the ladder's rung names, bottom first.
func (s *Set) Rungs() []string { return append([]string(nil), setRungs...) }

// Unwrap returns the current rung's concrete backend (*set.Abortable,
// *set.Harris or *set.Hash). After a morph it returns the new rung.
func (s *Set) Unwrap() any { return s.state.Read().impl }

// Len returns the number of keys; quiescent states only.
func (s *Set) Len() int {
	switch c := s.state.Read().impl.(type) {
	case *set.Abortable:
		return c.Len()
	case *set.Harris:
		return c.Len()
	default:
		return c.(*set.Hash).Len()
	}
}

// Snapshot returns the keys in ascending order; quiescent states only.
func (s *Set) Snapshot() []uint64 {
	switch c := s.state.Read().impl.(type) {
	case *set.Abortable:
		return c.Snapshot()
	case *set.Harris:
		return c.Snapshot()
	default:
		return c.(*set.Hash).Snapshot()
	}
}

// Progress reports NonBlocking: the cow rung's retry loop is the
// weakest link of the ladder (the list-engine rungs are lock-free).
func (s *Set) Progress() core.Progress { return core.NonBlocking }

var _ set.Strong = (*Set)(nil)
