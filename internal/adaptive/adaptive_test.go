package adaptive

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cmanager"
	"repro/internal/queue"
	"repro/internal/set"
	"repro/internal/stack"
)

// manual returns thresholds with automatic adaptation disabled, so
// every migration in a test is an explicit MorphTo.
func manual() Thresholds {
	t := DefaultThresholds()
	t.Window = 0
	return t
}

func TestStackMorphPreservesLIFO(t *testing.T) {
	s := NewStack[int](16, 4, manual())
	for i := 0; i < 10; i++ {
		if err := s.Push(0, i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if s.Rung() != "sensitive" {
		t.Fatalf("start rung = %q", s.Rung())
	}
	if !s.MorphTo(0, 1) {
		t.Fatal("MorphTo(combining) failed")
	}
	if s.Rung() != "combining" {
		t.Fatalf("rung after morph = %q", s.Rung())
	}
	for i := 9; i >= 0; i-- {
		v, err := s.Pop(0)
		if err != nil || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, err, i)
		}
	}
	if _, err := s.Pop(0); !errors.Is(err, stack.ErrEmpty) {
		t.Fatalf("pop on empty = %v", err)
	}
	if st := s.Stats(); st.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", st.Migrations)
	}
}

func TestQueueMorphPreservesFIFO(t *testing.T) {
	q := NewQueue[int](32, 4, 2, manual())
	for i := 0; i < 12; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// Climb to combining (strict FIFO across the morph), drain half.
	if !q.MorphTo(0, 1) {
		t.Fatal("MorphTo(combining) failed")
	}
	for i := 0; i < 6; i++ {
		v, err := q.Dequeue(0)
		if err != nil || v != i {
			t.Fatalf("dequeue = %d, %v; want %d", v, err, i)
		}
	}
	// Descend back and drain the rest: still FIFO.
	if !q.MorphTo(0, 0) {
		t.Fatal("MorphTo(sensitive) failed")
	}
	for i := 6; i < 12; i++ {
		v, err := q.Dequeue(0)
		if err != nil || v != i {
			t.Fatalf("dequeue = %d, %v; want %d", v, err, i)
		}
	}
	if _, err := q.Dequeue(0); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
	if st := q.Stats(); st.Migrations != 2 {
		t.Fatalf("migrations = %d, want 2", st.Migrations)
	}
}

func TestQueueShardedMorphKeepsMultiset(t *testing.T) {
	q := NewQueue[int](32, 4, 2, manual())
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if !q.MorphTo(0, 2) {
		t.Fatal("MorphTo(sharded) failed")
	}
	if q.Rung() != "sharded" {
		t.Fatalf("rung = %q", q.Rung())
	}
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		v, err := q.Dequeue(0)
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if _, err := q.Dequeue(0); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
}

func TestSetMorphPreservesMembership(t *testing.T) {
	s := NewSet(4, manual())
	for k := uint64(1); k <= 20; k++ {
		if !s.Add(0, k*3) {
			t.Fatalf("add %d reported false", k*3)
		}
	}
	for dst, name := range []string{"cow", "harris", "hash", "harris", "cow"} {
		_ = dst
		var idx int
		switch name {
		case "cow":
			idx = rungCow
		case "harris":
			idx = rungHarris
		case "hash":
			idx = rungHash
		}
		if !s.MorphTo(0, idx) {
			t.Fatalf("MorphTo(%s) failed", name)
		}
		if s.Rung() != name {
			t.Fatalf("rung = %q, want %q", s.Rung(), name)
		}
		for k := uint64(1); k <= 20; k++ {
			if !s.Contains(0, k*3) {
				t.Fatalf("on %s: missing key %d", name, k*3)
			}
			if s.Contains(0, k*3+1) {
				t.Fatalf("on %s: phantom key %d", name, k*3+1)
			}
		}
		if got := s.Len(); got != 20 {
			t.Fatalf("on %s: len = %d, want 20", name, got)
		}
	}
	if !s.Remove(0, 3) || s.Contains(0, 3) {
		t.Fatal("remove after morphs broken")
	}
	if st := s.Stats(); st.Migrations != 4 {
		t.Fatalf("migrations = %d, want 4", st.Migrations)
	}
}

func TestUnwrapTracksCurrentRung(t *testing.T) {
	s := NewStack[int](8, 2, manual())
	if _, ok := s.Unwrap().(*stack.Sensitive[int]); !ok {
		t.Fatalf("unwrap on rung 0 = %T", s.Unwrap())
	}
	s.MorphTo(0, 1)
	if _, ok := s.Unwrap().(*stack.Combining[int]); !ok {
		t.Fatalf("unwrap on rung 1 = %T", s.Unwrap())
	}

	st := NewSet(2, manual())
	if _, ok := st.Unwrap().(*set.Abortable); !ok {
		t.Fatalf("set unwrap on cow = %T", st.Unwrap())
	}
	st.MorphTo(0, rungHash)
	if _, ok := st.Unwrap().(*set.Hash); !ok {
		t.Fatalf("set unwrap on hash = %T", st.Unwrap())
	}
}

func TestForcingThresholdsOscillate(t *testing.T) {
	s := NewStack[int](64, 2, ForcingThresholds())
	for i := 0; i < 64; i++ {
		if err := s.Push(0, i); err != nil {
			t.Fatalf("push: %v", err)
		}
		if _, err := s.Pop(0); err != nil {
			t.Fatalf("pop: %v", err)
		}
	}
	if st := s.Stats(); st.Migrations < 4 {
		t.Fatalf("stack migrations under forcing = %d, want >= 4", st.Migrations)
	}

	se := NewSet(2, ForcingThresholds())
	for k := uint64(0); k < 64; k++ {
		se.Add(0, k%8)
		se.Remove(0, k%8)
	}
	if st := se.Stats(); st.Migrations < 4 {
		t.Fatalf("set migrations under forcing = %d, want >= 4", st.Migrations)
	}
}

func TestAutomaticClimbOnActiveProcs(t *testing.T) {
	th := DefaultThresholds()
	th.Window = 8
	th.UpProcs = 2
	th.UpContended = 1 << 30 // climb only via the active-pid signal
	th.DownProcs = 0         // and keep descent out of the picture
	s := NewStack[int](256, 4, th)
	// Interleave two pids from one goroutine so every decision window
	// deterministically sees two active pids.
	for i := 0; i < 100; i++ {
		for pid := 0; pid < 2; pid++ {
			s.Push(pid, i)
			s.Pop(pid)
		}
	}
	if st := s.Stats(); st.Migrations == 0 {
		t.Fatalf("no climb despite 2 active pids per window: %+v", st)
	}
	if s.Rung() != "combining" {
		t.Fatalf("rung = %q, want combining", s.Rung())
	}
}

func TestSetSizeClimb(t *testing.T) {
	th := DefaultThresholds()
	th.Window = 8
	s := NewSet(2, th)
	for k := uint64(0); k < 1000; k++ {
		s.Add(0, k)
	}
	if s.Rung() != "hash" {
		t.Fatalf("rung after 1000 inserts = %q, want hash", s.Rung())
	}
	for k := uint64(0); k < 1000; k++ {
		if !s.Contains(0, k) {
			t.Fatalf("missing key %d after climbs", k)
		}
	}
	// Shrink back below the descent thresholds; solo traffic descends.
	for k := uint64(0); k < 995; k++ {
		s.Remove(0, k)
	}
	for i := 0; i < 400; i++ {
		k := uint64(995 + i%5)
		s.Contains(0, k)
		s.Add(0, k)
	}
	if s.Rung() == "hash" {
		t.Fatalf("still on hash after shrink: %+v", s.Stats())
	}
}

func TestConcurrentMorphSmoke(t *testing.T) {
	const procs = 4
	q := NewQueue[int](4*1024, procs, 2, manual())
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if pid == 0 && i%50 == 0 {
					q.MorphTo(pid, (i/50)%3)
				}
				if err := q.Enqueue(pid, pid*1000+i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
				if _, err := q.Dequeue(pid); err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if _, err := q.Dequeue(0); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("queue not drained: %v", err)
	}
}

func TestConcurrentSetMorphSmoke(t *testing.T) {
	const procs = 4
	s := NewSet(procs, manual())
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if pid == 0 && i%40 == 0 {
					s.MorphTo(pid, (i/40)%3)
				}
				k := uint64(pid*1000 + i)
				if !s.Add(pid, k) {
					t.Errorf("add %d reported false", k)
					return
				}
				if !s.Contains(pid, k) {
					t.Errorf("lost key %d", k)
					return
				}
				if !s.Remove(pid, k) {
					t.Errorf("remove %d reported false", k)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got := s.Len(); got != 0 {
		t.Fatalf("len after balanced ops = %d, want 0", got)
	}
}

func TestQuiesceBudgetAbortsAndDisables(t *testing.T) {
	th := manual()
	th.QuiesceBudget = 4
	s := NewStack[int](8, 2, th)
	// A stuck announce from a "crashed" pid 1 makes every window abort.
	s.m.ann[1].w.Write(1)
	for i := 0; i < abortLimit; i++ {
		if s.MorphTo(0, 1) {
			t.Fatal("morph succeeded despite stuck announce")
		}
	}
	st := s.Stats()
	if st.Aborted < abortLimit {
		t.Fatalf("aborted = %d, want >= %d", st.Aborted, abortLimit)
	}
	if !s.m.disabled.Load() {
		t.Fatal("object not disabled after consecutive aborts")
	}
	// The object still serves operations on its current rung.
	if err := s.Push(0, 7); err != nil {
		t.Fatalf("push after disable: %v", err)
	}
	if v, err := s.Pop(0); err != nil || v != 7 {
		t.Fatalf("pop after disable = %d, %v", v, err)
	}
}

func TestSetRetryPolicySheds(t *testing.T) {
	s := NewSet(2, manual())
	s.SetRetryPolicy(cmanager.ByName("none"), 3)
	if m, b := s.RetryPolicy(); m == nil || b != 3 {
		t.Fatalf("RetryPolicy = %v, %d", m, b)
	}
	// Normal solo traffic on the cow rung never aborts, so the budget
	// is invisible here; this is a smoke test of the plumbing.
	if !s.Add(0, 42) || !s.Contains(0, 42) {
		t.Fatal("add under retry policy failed")
	}
}

func TestStatsTimeInRegime(t *testing.T) {
	s := NewQueue[int](8, 2, 0, manual())
	s.MorphTo(0, 1)
	st := s.Stats()
	if st.Rung != "combining" {
		t.Fatalf("rung = %q", st.Rung)
	}
	if len(st.InRung) == 0 {
		t.Fatal("no time-in-regime recorded")
	}
	if _, ok := st.InRung["sensitive"]; !ok {
		t.Fatal("no time recorded for the departed rung")
	}
}

func TestRungsNames(t *testing.T) {
	if got := NewStack[int](1, 1, manual()).Rungs(); len(got) != 2 || got[0] != "sensitive" || got[1] != "combining" {
		t.Fatalf("stack rungs = %v", got)
	}
	if got := NewQueue[int](1, 1, 0, manual()).Rungs(); len(got) != 3 || got[2] != "sharded" {
		t.Fatalf("queue rungs = %v", got)
	}
	if got := NewSet(1, manual()).Rungs(); len(got) != 3 || got[0] != "cow" || got[2] != "hash" {
		t.Fatalf("set rungs = %v", got)
	}
}
