package adaptive

import (
	"sync/atomic"
	"time"

	"repro/internal/memory"
)

// container is the rung-side contract of the adaptive containers: one
// strong put/take pair, a quiescent snapshot for migration rebuilds, a
// cumulative contended-operation counter (the rung's own slow-path or
// publication statistic), and the concrete backend for Unwrap.
type container[T any] interface {
	put(pid int, v T) error
	take(pid int) (T, error)
	snapshot() []T
	contended() uint64
	inner() any
}

// contRec is one immutable epoch record of an adaptive container; see
// the package comment for the transition diagram. The register holding
// it is the migration epoch: every transition installs a fresh record,
// so pointer identity identifies the epoch with no ABA.
type contRec[T any] struct {
	gen  uint64
	rung int
	impl container[T]
	mig  bool
	dst  int
}

// meta is the shared engine of Stack and Queue: the epoch register,
// the announce array, the rung builders, and the decision state.
type meta[T any] struct {
	state *memory.Ref[contRec[T]]
	ann   []annSlot
	build []func() container[T]
	names []string
	t     Thresholds

	// ops feeds both the per-pid decision windows and the
	// distinct-active-pid signal.
	ops []counter

	// deciding serializes adaptation decisions; prevOps/prevCont/
	// lastImpl are owned by the holder.
	deciding atomic.Bool
	prevOps  []uint64
	prevCont uint64
	lastImpl container[T]

	consecAborts atomic.Uint32
	disabled     atomic.Bool
	migrations   atomic.Uint64
	abortedMig   atomic.Uint64
	curRung      atomic.Int32
	enterNS      atomic.Int64
	inRung       []atomic.Int64
}

func newMeta[T any](n int, t Thresholds, names []string, build []func() container[T]) *meta[T] {
	m := &meta[T]{
		ann:     make([]annSlot, n),
		build:   build,
		names:   names,
		t:       t,
		ops:     make([]counter, n),
		prevOps: make([]uint64, n),
		inRung:  make([]atomic.Int64, len(build)),
	}
	first := build[0]()
	m.state = memory.NewRef(&contRec[T]{gen: 1, rung: 0, impl: first})
	m.lastImpl = first
	m.enterNS.Store(time.Now().UnixNano())
	return m
}

// do runs one strong operation under the announce protocol: read the
// epoch record, announce, re-validate the record pointer (the Dekker
// handshake with a migrator opening a window), run the operation on
// the validated rung, clear the announce. An open migration window is
// helped to a resolution first.
func (m *meta[T]) do(pid int, op func(container[T]) (T, error)) (T, error) {
	for {
		rec := m.state.Read()
		if rec.mig {
			m.help(pid, rec)
			continue
		}
		m.ann[pid].w.Write(rec.gen)
		if m.state.Read() != rec {
			m.ann[pid].w.Write(0)
			continue
		}
		v, err := op(rec.impl)
		m.ann[pid].w.Write(0)
		m.account(pid)
		return v, err
	}
}

// help drives an open migration window to a resolution: quiesce the
// announce array, snapshot the frozen source, rebuild the target
// privately, and publish target-plus-close in one CAS — or abort the
// window when quiescence cannot be reached within the budget. Any
// process can help; losers of the close CAS discard their private
// target, which is what makes a crashed migrator harmless.
func (m *meta[T]) help(pid int, rec *contRec[T]) {
	if quiesceSlots(m.ann, pid, m.t.quiesceBudget()) {
		snap := rec.impl.snapshot()
		dst := m.build[rec.dst]()
		for _, v := range snap {
			// The target is private until the close CAS publishes it:
			// refills run contention-free and cannot overflow (equal
			// capacity), so the error is always nil.
			dst.put(pid, v)
		}
		if m.state.CAS(rec, &contRec[T]{gen: rec.gen + 1, rung: rec.dst, impl: dst}) {
			m.onClose(rec.rung, rec.dst)
		}
		return
	}
	if m.state.CAS(rec, &contRec[T]{gen: rec.gen + 1, rung: rec.rung, impl: rec.impl}) {
		m.onAbort()
	}
}

// account bumps pid's operation counter and runs an adaptation
// decision at window boundaries.
func (m *meta[T]) account(pid int) {
	n := m.ops[pid].v.Add(1)
	if m.t.Window > 0 && n%uint64(m.t.Window) == 0 {
		m.maybeAdapt(pid)
	}
}

// maybeAdapt takes one adaptation decision under the try-lock: read
// the current rung's contended-operation delta and the set of pids
// active since the last decision, then climb or descend. Climbing is
// checked first, so a saturated signal never descends.
func (m *meta[T]) maybeAdapt(pid int) {
	if m.disabled.Load() || !m.deciding.CompareAndSwap(false, true) {
		return
	}
	defer m.deciding.Store(false)
	rec := m.state.Read()
	if rec.mig {
		return
	}
	cont := rec.impl.contended()
	delta := cont
	if rec.impl == m.lastImpl {
		delta = cont - m.prevCont
	}
	m.lastImpl, m.prevCont = rec.impl, cont
	act := 0
	for i := range m.ops {
		if cur := m.ops[i].v.Load(); cur != m.prevOps[i] {
			m.prevOps[i] = cur
			act++
		}
	}
	up := delta >= uint64(m.t.UpContended) || act >= m.t.UpProcs
	down := delta <= uint64(m.t.DownContended) && act <= m.t.DownProcs
	switch {
	case up && rec.rung < len(m.build)-1:
		m.migrate(pid, rec, rec.rung+1)
	case down && rec.rung > 0:
		m.migrate(pid, rec, rec.rung-1)
	}
}

// migrate opens a migration window from rec to dst and drives it.
func (m *meta[T]) migrate(pid int, rec *contRec[T], dst int) {
	mig := &contRec[T]{gen: rec.gen + 1, rung: rec.rung, impl: rec.impl, mig: true, dst: dst}
	if m.state.CAS(rec, mig) {
		m.help(pid, mig)
	}
}

// morphTo steps the object rung by rung to dst, ignoring thresholds —
// the test hook behind the migration-forcing fuzzers. It reports
// whether dst was reached.
func (m *meta[T]) morphTo(pid, dst int) bool {
	if dst < 0 || dst >= len(m.build) {
		return false
	}
	for i := 0; i < 64; i++ {
		rec := m.state.Read()
		if rec.mig {
			m.help(pid, rec)
			continue
		}
		if rec.rung == dst {
			return true
		}
		next := rec.rung + 1
		if dst < rec.rung {
			next = rec.rung - 1
		}
		m.migrate(pid, rec, next)
	}
	return false
}

func (m *meta[T]) onClose(src, dst int) {
	m.migrations.Add(1)
	m.consecAborts.Store(0)
	m.curRung.Store(int32(dst))
	now := time.Now().UnixNano()
	prev := m.enterNS.Swap(now)
	m.inRung[src].Add(now - prev)
}

func (m *meta[T]) onAbort() {
	m.abortedMig.Add(1)
	if m.consecAborts.Add(1) >= abortLimit {
		m.disabled.Store(true)
	}
}

// stats assembles a Stats snapshot without touching the (possibly
// observed) epoch register, so it is safe outside replayed schedules.
func (m *meta[T]) stats() Stats {
	cur := int(m.curRung.Load())
	st := Stats{
		Migrations: m.migrations.Load(),
		Aborted:    m.abortedMig.Load(),
		Rung:       m.names[cur],
		InRung:     make(map[string]time.Duration, len(m.names)),
	}
	now := time.Now().UnixNano()
	for i, name := range m.names {
		d := m.inRung[i].Load()
		if i == cur {
			d += now - m.enterNS.Load()
		}
		if d > 0 {
			st.InRung[name] = time.Duration(d)
		}
	}
	return st
}

func (m *meta[T]) unwrap() any { return m.state.Read().impl.inner() }
