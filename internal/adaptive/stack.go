package adaptive

import (
	"repro/internal/core"
	"repro/internal/stack"
)

// Stack is the contention-adaptive stack: the sensitive rung while
// solo traffic dominates (six-access fast path, no batching overhead),
// the flat-combining rung once the slow-path counter says contention
// pays for batching. Both rungs are linearizable and starvation-free,
// and the epoch-gated handoff preserves the LIFO state across morphs.
type Stack[T any] struct {
	m *meta[T]
}

// stackRungs names the ladder, bottom first.
var stackRungs = []string{"sensitive", "combining"}

// NewStack returns an adaptive stack of capacity k for n processes
// governed by t.
func NewStack[T any](k, n int, t Thresholds) *Stack[T] {
	build := []func() container[T]{
		func() container[T] { return sensStack[T]{stack.NewSensitive[T](k, n)} },
		func() container[T] { return combStack[T]{stack.NewCombining[T](k, n)} },
	}
	return &Stack[T]{m: newMeta[T](n, t, stackRungs, build)}
}

// Push pushes v on behalf of pid; it returns nil or stack.ErrFull and
// never aborts, whatever rung serves it.
func (s *Stack[T]) Push(pid int, v T) error {
	_, err := s.m.do(pid, func(c container[T]) (T, error) {
		var zero T
		return zero, c.put(pid, v)
	})
	return err
}

// Pop pops the top value on behalf of pid; it returns the value or
// stack.ErrEmpty and never aborts.
func (s *Stack[T]) Pop(pid int) (T, error) {
	return s.m.do(pid, func(c container[T]) (T, error) { return c.take(pid) })
}

// Stats returns the migration counters and time-in-regime.
func (s *Stack[T]) Stats() Stats { return s.m.stats() }

// Rung returns the current rung's name.
func (s *Stack[T]) Rung() string { return s.m.names[s.m.curRung.Load()] }

// Rungs returns the ladder's rung names, bottom first.
func (s *Stack[T]) Rungs() []string { return append([]string(nil), s.m.names...) }

// MorphTo steps the stack to rung dst (an index into Rungs) ignoring
// thresholds; it reports whether dst was reached. Test hook.
func (s *Stack[T]) MorphTo(pid, dst int) bool { return s.m.morphTo(pid, dst) }

// Unwrap returns the current rung's concrete backend. After a morph it
// returns the new rung — callers holding extensions across migrations
// must re-Unwrap.
func (s *Stack[T]) Unwrap() any { return s.m.unwrap() }

// Progress reports StarvationFree: every rung of the ladder is.
func (s *Stack[T]) Progress() core.Progress { return core.StarvationFree }

// sensStack adapts the sensitive rung; contention is the guard's
// slow-path counter (the E15 crossover signal).
type sensStack[T any] struct{ s *stack.Sensitive[T] }

func (a sensStack[T]) put(pid int, v T) error  { return a.s.Push(pid, v) }
func (a sensStack[T]) take(pid int) (T, error) { return a.s.Pop(pid) }
func (a sensStack[T]) snapshot() []T           { return a.s.Snapshot() }
func (a sensStack[T]) contended() uint64       { return a.s.Guard().Stats().Slow }
func (a sensStack[T]) inner() any              { return a.s }

// combStack adapts the combining rung; contention is the publication
// counter (requests that missed the fast path).
type combStack[T any] struct{ s *stack.Combining[T] }

func (a combStack[T]) put(pid int, v T) error  { return a.s.Push(pid, v) }
func (a combStack[T]) take(pid int) (T, error) { return a.s.Pop(pid) }
func (a combStack[T]) snapshot() []T           { return a.s.Snapshot() }
func (a combStack[T]) contended() uint64       { return a.s.Stats().Published }
func (a combStack[T]) inner() any              { return a.s }

var _ stack.Strong[int] = (*Stack[int])(nil)
