package adaptive

import (
	"repro/internal/core"
	"repro/internal/queue"
)

// Queue is the contention-adaptive FIFO queue: sensitive while solo,
// flat-combining once the slow path says contention pays for batching,
// pid-striped shards once even the combiner saturates (the E16
// regime). The sharded rung relaxes cross-shard order exactly as
// queue.Sharded documents; descending restores the strict FIFO rungs.
type Queue[T any] struct {
	m *meta[T]
}

// queueRungs names the ladder, bottom first.
var queueRungs = []string{"sensitive", "combining", "sharded"}

// NewQueue returns an adaptive queue of total capacity k for n
// processes governed by t; shards parameterizes the top rung (<= 0
// picks queue.NewSharded's default).
func NewQueue[T any](k, n, shards int, t Thresholds) *Queue[T] {
	build := []func() container[T]{
		func() container[T] { return sensQueue[T]{queue.NewSensitive[T](k, n)} },
		func() container[T] { return combQueue[T]{queue.NewCombining[T](k, n)} },
		func() container[T] { return shardQueue[T]{queue.NewSharded[T](k, n, shards)} },
	}
	return &Queue[T]{m: newMeta[T](n, t, queueRungs, build)}
}

// Enqueue appends v on behalf of pid; it returns nil or queue.ErrFull
// and never aborts, whatever rung serves it.
func (q *Queue[T]) Enqueue(pid int, v T) error {
	_, err := q.m.do(pid, func(c container[T]) (T, error) {
		var zero T
		return zero, c.put(pid, v)
	})
	return err
}

// Dequeue removes a value on behalf of pid; it returns the value or
// queue.ErrEmpty and never aborts.
func (q *Queue[T]) Dequeue(pid int) (T, error) {
	return q.m.do(pid, func(c container[T]) (T, error) { return c.take(pid) })
}

// Stats returns the migration counters and time-in-regime.
func (q *Queue[T]) Stats() Stats { return q.m.stats() }

// Rung returns the current rung's name.
func (q *Queue[T]) Rung() string { return q.m.names[q.m.curRung.Load()] }

// Rungs returns the ladder's rung names, bottom first.
func (q *Queue[T]) Rungs() []string { return append([]string(nil), q.m.names...) }

// MorphTo steps the queue to rung dst (an index into Rungs) ignoring
// thresholds; it reports whether dst was reached. Test hook.
func (q *Queue[T]) MorphTo(pid, dst int) bool { return q.m.morphTo(pid, dst) }

// Unwrap returns the current rung's concrete backend. After a morph it
// returns the new rung — callers holding extensions across migrations
// must re-Unwrap.
func (q *Queue[T]) Unwrap() any { return q.m.unwrap() }

// Progress reports StarvationFree: every rung of the ladder is.
func (q *Queue[T]) Progress() core.Progress { return core.StarvationFree }

// sensQueue adapts the sensitive rung; contention is the guard's
// slow-path counter.
type sensQueue[T any] struct{ q *queue.Sensitive[T] }

func (a sensQueue[T]) put(pid int, v T) error  { return a.q.Enqueue(pid, v) }
func (a sensQueue[T]) take(pid int) (T, error) { return a.q.Dequeue(pid) }
func (a sensQueue[T]) snapshot() []T           { return a.q.Snapshot() }
func (a sensQueue[T]) contended() uint64       { return a.q.Guard().Stats().Slow }
func (a sensQueue[T]) inner() any              { return a.q }

// combQueue adapts the combining rung; contention is the publication
// counter.
type combQueue[T any] struct{ q *queue.Combining[T] }

func (a combQueue[T]) put(pid int, v T) error  { return a.q.Enqueue(pid, v) }
func (a combQueue[T]) take(pid int) (T, error) { return a.q.Dequeue(pid) }
func (a combQueue[T]) snapshot() []T           { return a.q.Snapshot() }
func (a combQueue[T]) contended() uint64       { return a.q.Stats().Published }
func (a combQueue[T]) inner() any              { return a.q }

// shardQueue adapts the sharded rung; contention is the summed
// publication counter of every shard.
type shardQueue[T any] struct{ q *queue.Sharded[T] }

func (a shardQueue[T]) put(pid int, v T) error  { return a.q.Enqueue(pid, v) }
func (a shardQueue[T]) take(pid int) (T, error) { return a.q.Dequeue(pid) }
func (a shardQueue[T]) snapshot() []T           { return a.q.Snapshot() }
func (a shardQueue[T]) contended() uint64 {
	var t uint64
	for i := 0; i < a.q.Shards(); i++ {
		t += a.q.ShardStats(i).Published
	}
	return t
}
func (a shardQueue[T]) inner() any { return a.q }

var _ queue.Strong[int] = (*Queue[int])(nil)
