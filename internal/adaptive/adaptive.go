package adaptive

import (
	"sync/atomic"
	"time"

	"repro/internal/memory"
)

// abortLimit is the number of consecutive aborted migration windows
// after which an object stops trying to adapt. A crashed process with
// a stuck announce makes every future quiescence attempt time out;
// giving up keeps the (bounded) quiesce spin off the hot path forever
// after, at the price of staying on the current rung.
const abortLimit = 8

// Thresholds parameterizes when an adaptive object migrates. The
// defaults (DefaultThresholds) are seeded from the measured crossover
// points: E15 for sensitive→combining, E16 for combining→sharded, and
// E18/E19 for the set-size boundaries of the cow→harris→hash ladder.
// A zero Window disables automatic adaptation (MorphTo still works),
// which the deterministic replays use to keep migrations explicit.
type Thresholds struct {
	// Window is the number of operations a single pid completes
	// between adaptation decisions. <= 0 disables automatic decisions.
	Window int
	// UpContended is the contended-operation delta (slow-path entries,
	// publications, or cow aborts, per the current rung) per window at
	// or above which the object climbs a rung.
	UpContended int
	// DownContended is the contended-operation delta per window at or
	// below which the object may descend a rung.
	DownContended int
	// UpProcs is the distinct-active-pid count per window at or above
	// which a container climbs a rung (E15: combining wins from about
	// three contending processes).
	UpProcs int
	// DownProcs is the distinct-active-pid count per window at or
	// below which descent is allowed.
	DownProcs int
	// SetSizeUp are the set sizes opening the harris and hash rungs
	// (E18/E19: the sorted prefix walk loses to the list engine around
	// dozens of keys, to the hash layer around hundreds).
	SetSizeUp [2]int
	// SetSizeDown are the set sizes at or below which the set may
	// descend to cow and harris respectively (hysteresis: half of
	// SetSizeUp by default).
	SetSizeDown [2]int
	// QuiesceBudget bounds the announce-array spin of one migration
	// window; when it is exhausted the window aborts and the source
	// stays current. <= 0 picks a generous default.
	QuiesceBudget int
}

// DefaultThresholds returns the crossover-seeded configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Window:        256,
		UpContended:   64,
		DownContended: 16,
		UpProcs:       3,
		DownProcs:     1,
		SetSizeUp:     [2]int{64, 512},
		SetSizeDown:   [2]int{32, 256},
		QuiesceBudget: 1 << 15,
	}
}

// ForcingThresholds returns a configuration that migrates on every
// window: a one-operation window, a zero climb threshold, and descent
// thresholds no workload can miss, so the object oscillates between
// its top rungs and every history crosses migrations in both
// directions. The lincheck and fuzz harnesses use it to force the
// handoff onto every tested path.
func ForcingThresholds() Thresholds {
	const always = 1 << 30
	return Thresholds{
		Window:        1,
		UpContended:   0,
		DownContended: always,
		UpProcs:       always,
		DownProcs:     always,
		SetSizeUp:     [2]int{0, 0},
		SetSizeDown:   [2]int{always, always},
		QuiesceBudget: 1 << 12,
	}
}

// quiesceBudget returns the effective spin budget.
func (t Thresholds) quiesceBudget() int {
	if t.QuiesceBudget > 0 {
		return t.QuiesceBudget
	}
	return 1 << 15
}

// Stats is a snapshot of an adaptive object's migration history.
type Stats struct {
	// Migrations counts completed rung changes (closed windows).
	Migrations uint64
	// Aborted counts windows that opened but aborted (quiescence or
	// seal budget exhausted).
	Aborted uint64
	// Rung is the name of the current rung.
	Rung string
	// InRung is the wall-clock time spent on each rung so far
	// (time-in-regime; the current rung includes the running stretch).
	InRung map[string]time.Duration
}

// annSlot is one per-pid announce register, padded so concurrent
// announces from different pids never share a cache line.
type annSlot struct {
	w memory.Word
	_ [40]byte
}

// counter is a per-pid padded event counter: the hot path's only
// bookkeeping cost.
type counter struct {
	v atomic.Uint64
	_ [56]byte
}

// sumCounters totals a per-pid counter array.
func sumCounters(cs []counter) uint64 {
	var t uint64
	for i := range cs {
		t += cs[i].v.Load()
	}
	return t
}

// quiesceSlots spin-reads every announce slot except self until all
// are clear, within budget total reads; it reports whether quiescence
// was reached. Every read is an observed access when the slots carry
// an observer, so the deterministic scheduler gates the spin.
func quiesceSlots(ann []annSlot, self, budget int) bool {
	for q := range ann {
		if q == self {
			continue
		}
		for ann[q].w.Read() != 0 {
			budget--
			if budget <= 0 {
				return false
			}
		}
	}
	return true
}
