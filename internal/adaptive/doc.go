// Package adaptive implements contention-adaptive meta-backends: one
// wrapper per object kind that observes live contention signals and
// morphs between the catalog's fixed rungs at runtime, so the caller
// no longer has to guess the regime the paper says the choice depends
// on.
//
// # Ladders
//
// Each wrapper climbs (and descends) a ladder of existing backends:
//
//	Stack:  sensitive → combining
//	Queue:  sensitive → combining → sharded
//	Set:    cow → harris → hash
//
// The signals are the ones the experiments already measure: the
// guard's slow-path counter for the sensitive rungs (E15's crossover),
// the combine.Core publication counter for the combining rungs (E16),
// the copy-on-write abort rate and the approximate set size for the
// set ladder (E18/E19), the cmanager.Adaptive backoff level when one
// is attached, and the number of distinct active pids. Decisions are
// taken at per-pid operation-window boundaries under a try-lock, so
// the hot path pays only per-pid padded counters.
//
// # The epoch-gated handoff
//
// All of an object's regime state hangs off one atomic record
// register. A record is immutable after publication; every transition
// is a CAS installing a fresh record, so the register's pointer
// identity is the migration epoch:
//
//	stable{gen, rung, impl}  --open-->  mig{gen+1, rung, impl, dst}
//	mig  --close-->  stable{gen+2, dst, target}   (one winner)
//	mig  --abort-->  stable{gen+2, rung, impl}    (graceful degradation)
//
// Writers on an announce-gated rung publish their intent in a per-pid
// padded announce register, then re-validate the record pointer (a
// Dekker-style handshake with the migrator) before touching the
// structure; a migrator that has opened a window spin-reads the
// announce array until every other slot is clear (quiescence), within
// a bounded budget. Once the source is quiescent it is frozen: the
// migrator (or any helper that finds the window open) snapshots it,
// rebuilds the target privately, and publishes target-plus-close in a
// single CAS — crash-restartable, because a half-built private target
// is simply garbage and the next helper rebuilds it.
//
// The copy-on-write set rung needs no announces at all: its whole
// state is one root register, so the migrator freezes it by CASing a
// sealed wrapper onto the root (set.Abortable.Seal). A writer parked
// mid-update across the flip fails its stale root CAS against the
// sealed root and re-dispatches through the record — the exact replay
// pinned by sched.AdaptiveMigrationSchedule.
//
// Readers never announce: during a window the source structure stays
// authoritative until the close CAS (the target is unreachable before
// it), which is the deterministic tie-break that keeps mid-flight
// reads linearizable.
//
// If quiescence cannot be reached within the budget (a crashed process
// with a stuck announce, or livelock-grade interference), the window
// is aborted: the source stays current and operations continue
// unharmed. After abortLimit consecutive aborts the object stops
// adapting — a stuck announce can cost the optimization, never
// liveness.
//
// See DESIGN.md §9 for the linearizability argument and EXPERIMENTS.md
// E23 for the phase-shift evaluation.
package adaptive
