package soak

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// FaultKind is one entry type of a fault plan.
type FaultKind int

// The injectable faults. Kinds a backend cannot express degrade
// rather than vanish: CrashMidOp and CombinerKill fall back to
// StopCrash when the backend has no Abandon/ArmCrash seam, and Morph
// falls back to Stall on non-adaptive backends, so every plan injects
// its full fault count on every backend.
const (
	// FaultCrashMidOp publishes one update via Ops.Abandon and kills
	// the victim: a §5 process crash with an operation in flight.
	FaultCrashMidOp FaultKind = iota
	// FaultCombinerKill arms Ops.ArmCrash so the victim dies inside
	// its next combining pass with the lease held; survivors must
	// depose it.
	FaultCombinerKill
	// FaultStopCrash kills the victim between operations — the crash
	// every backend can absorb.
	FaultStopCrash
	// FaultStall turns the victim into a §5 slow process: it keeps
	// operating, but sleeps long pauses between operations until the
	// drain.
	FaultStall
	// FaultMorph forces an adaptive meta-backend one rung around its
	// ladder mid-traffic.
	FaultMorph
)

// String names the kind for logs and fault-plan dumps.
func (k FaultKind) String() string {
	switch k {
	case FaultCrashMidOp:
		return "crash-mid-op"
	case FaultCombinerKill:
		return "combiner-kill"
	case FaultStopCrash:
		return "stop-crash"
	case FaultStall:
		return "stall"
	case FaultMorph:
		return "morph"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultSpec schedules one fault at a fraction of the run's duration.
type FaultSpec struct {
	// At is the injection instant as a fraction of Config.Duration,
	// in (0, 1).
	At float64
	// Kind is the fault to inject (possibly degraded, see FaultKind).
	Kind FaultKind
}

// DefaultFaultPlan is the standard schedule: a mid-op crash at 25%, a
// combiner kill at 45%, a slow-process stall at 65%, and a forced
// morph at 85% — four faults, so even a backend that degrades every
// kind still absorbs at least the three crashes/stalls the E24
// fault-recovery gate demands.
func DefaultFaultPlan() []FaultSpec {
	return []FaultSpec{
		{At: 0.25, Kind: FaultCrashMidOp},
		{At: 0.45, Kind: FaultCombinerKill},
		{At: 0.65, Kind: FaultStall},
		{At: 0.85, Kind: FaultMorph},
	}
}

// DefaultBackends is the catalog slice a soak run covers when none is
// chosen: one lease-takeover combining backend (both crash seams), one
// pooled backend (PoolStats drift under churn), and one adaptive
// meta-backend (forced morphs land on a real ladder) — the coverage
// the E24 strict gate requires.
func DefaultBackends() []string {
	return []string{"queue/combining", "stack/treiber-pooled", "set/adaptive"}
}

// Config tunes one soak run over one backend. The zero value is
// usable: withDefaults fills every field.
type Config struct {
	// Duration is the wall-clock traffic window (default 10s); the
	// drain and final audit run after it.
	Duration time.Duration
	// Window is the metrics window (default Duration/10, clamped to
	// [200ms, 5s]); each window emits one Row.
	Window time.Duration
	// Workers is the number of session lanes — concurrent client
	// pids serving sessions (default 8, min 2).
	Workers int
	// Seed derives every lane's deterministic op stream (default
	// 0x5eed). Timing, and therefore interleaving, still varies.
	Seed uint64
	// ArrivalMean is the mean exponential gap between one lane's
	// sessions (default 200µs); ThinkMean the mean think time between
	// a session's ops (default 100µs); SessionOps the geometric mean
	// session length (default 48 ops).
	ArrivalMean time.Duration
	ThinkMean   time.Duration
	SessionOps  float64
	// KeyRange bounds set keys (default 512); ZipfS skews them
	// (default 1.1; 0 would mean uniform but is defaulted away —
	// pass a negative value for explicit uniform).
	KeyRange int
	ZipfS    float64
	// Write and Erase are the op-class mix (read is the remainder;
	// for stacks/queues both erase and read consume). Defaults
	// 0.5/0.3.
	Write, Erase float64
	// StallDeadline is the watchdog bound on one in-flight operation
	// (default 1s).
	StallDeadline time.Duration
	// Faults is the fault plan (default DefaultFaultPlan). Each entry
	// owns one victim pid beyond the Workers lanes.
	Faults []FaultSpec
	// Capacity bounds bounded backends (default 1024).
	Capacity int
	// ExtraOpts are appended to the constructor options.
	ExtraOpts []repro.Option
	// Stop, when non-nil, triggers the graceful drain early when
	// closed — cmd/soak wires SIGTERM/SIGINT to it.
	Stop <-chan struct{}
	// Log, when non-nil, receives progress lines (window summaries,
	// fault injections, watchdog flags).
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Window <= 0 {
		c.Window = c.Duration / 10
		if c.Window < 200*time.Millisecond {
			c.Window = 200 * time.Millisecond
		}
		if c.Window > 5*time.Second {
			c.Window = 5 * time.Second
		}
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Workers < 2 {
		c.Workers = 2
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.ArrivalMean == 0 {
		c.ArrivalMean = 200 * time.Microsecond
	}
	if c.ThinkMean == 0 {
		c.ThinkMean = 100 * time.Microsecond
	}
	if c.SessionOps == 0 {
		c.SessionOps = 48
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 512
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Write == 0 && c.Erase == 0 {
		c.Write, c.Erase = 0.5, 0.3
	}
	if c.StallDeadline <= 0 {
		c.StallDeadline = time.Second
	}
	if c.Faults == nil {
		c.Faults = DefaultFaultPlan()
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	return c
}

// morpher is the adaptive extension FaultMorph needs, reached through
// repro.Unwrap.
type morpher interface {
	MorphTo(pid, dst int) bool
	Rung() string
	Rungs() []string
}

// pooled is the allocation extension the leak audit scrapes.
type pooled interface{ PoolStats() repro.PoolStats }

// capabilityOf walks the adapter layers one Unwrap hop at a time and
// returns the first layer exposing the extension T. A full
// repro.Unwrap would overshoot: an adaptive backend is itself an
// Unwrapper (peeling to its current rung), so the adaptive layer's
// own extensions live mid-stack, not at the bottom.
func capabilityOf[T any](x any) (T, bool) {
	for {
		if c, ok := x.(T); ok {
			return c, true
		}
		u, ok := x.(repro.Unwrapper)
		if !ok {
			var zero T
			return zero, false
		}
		x = u.Unwrap()
	}
}

// lane is one pid's watchdog heartbeat: opStart holds the in-flight
// operation's start (ns since engine start, min 1), 0 when idle. The
// padding keeps neighbouring lanes off one cache line.
type lane struct {
	opStart atomic.Int64
	_       [56]byte
}

type engine struct {
	cfg  Config
	b    repro.Backend
	drv  repro.Ops
	cons *scenario.Conservation
	zipf *workload.Zipf
	pool pooled // nil when the backend has no pool

	start time.Time
	drain chan struct{}
	lanes []lane // workers only: victims model §5 crashed/slow processes

	attempted, okOps, sessions atomic.Uint64
	faultsInjected             atomic.Uint64
	faultsRecovered            atomic.Uint64
	stalls                     atomic.Uint64
	pendingFaultNS             atomic.Int64
	worstRecoveryNS            atomic.Int64
	hist                       *metrics.Histogram

	wg    sync.WaitGroup // workers and victim goroutines
	logMu sync.Mutex     // logf runs from several goroutines
}

// Run soaks one backend under cfg and returns the windowed rows plus
// the final summary/drain row (Window == -1). The conservation audit
// verdicts ride in Row.Audit; Evaluate turns rows into gate verdicts.
func Run(b repro.Backend, cfg Config) []Row {
	cfg = cfg.withDefaults()
	procs := cfg.Workers + len(cfg.Faults) // one victim pid per fault
	drv := repro.Drive(b, append([]repro.Option{
		repro.WithProcs(procs), repro.WithCapacity(cfg.Capacity)}, cfg.ExtraOpts...)...)

	e := &engine{
		cfg:   cfg,
		b:     b,
		drv:   drv,
		cons:  scenario.NewConservation(b.Kind, cfg.KeyRange),
		drain: make(chan struct{}),
		lanes: make([]lane, cfg.Workers),
		hist:  &metrics.Histogram{},
	}
	if b.Kind == repro.KindSet && cfg.ZipfS > 0 {
		e.zipf = workload.NewZipf(cfg.ZipfS, cfg.KeyRange)
	}
	e.pool, _ = capabilityOf[pooled](drv.Instance)
	e.start = time.Now()

	// The clock: duration elapses or the external stop closes — either
	// way the drain begins exactly once.
	go func() {
		t := time.NewTimer(cfg.Duration)
		defer t.Stop()
		select {
		case <-t.C:
		case <-cfg.Stop: // nil channel blocks forever — duration rules
		}
		close(e.drain)
	}()

	for pid := 0; pid < cfg.Workers; pid++ {
		e.wg.Add(1)
		go e.worker(pid)
	}
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go e.watchdog(watchStop, &watchWG)
	go e.injector()

	rows := e.collect()

	// Graceful drain: arrivals have stopped (drain is closed — collect
	// only returns then); every lane flushes its in-flight op and
	// joins, the watchdog observes the flush, then the quiescent audit
	// has the object to itself.
	e.wg.Wait()
	close(watchStop)
	watchWG.Wait()
	rows = append(rows, e.summaryRow())
	return rows
}

// laneSeed derives one pid's deterministic stream seed.
func laneSeed(seed uint64, pid int) uint64 {
	return workload.NewRNG(seed ^ 0xa24baed4963ee407*uint64(pid+1)).Uint64()
}

// drained reports whether the graceful drain has begun.
func (e *engine) drained() bool {
	select {
	case <-e.drain:
		return true
	default:
		return false
	}
}

// pace idles for d, returning false once the drain begins. Short
// pauses sleep through (bounding drain latency by 2ms); longer ones
// wake on the drain channel.
func (e *engine) pace(d time.Duration) bool {
	if d <= 0 {
		return !e.drained()
	}
	if d <= 2*time.Millisecond {
		time.Sleep(d)
		return !e.drained()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.drain:
		return false
	}
}

// sinceStartNS stamps now against the engine clock, min 1 (0 means
// idle/unset everywhere).
func (e *engine) sinceStartNS() int64 {
	ns := time.Since(e.start).Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	return ns
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Log == nil {
		return
	}
	e.logMu.Lock()
	defer e.logMu.Unlock()
	fmt.Fprintf(e.cfg.Log, format+"\n", args...)
}

// worker is one session lane: an open-loop arrival clock draws the
// next session's start, a geometric draw its length, exponential
// think times its pacing. A lane that falls behind its arrival clock
// starts the next session immediately (open-loop: the backlog shows
// up as latency, the lane never skips sessions to hide it).
func (e *engine) worker(pid int) {
	defer e.wg.Done()
	rng := workload.NewRNG(laneSeed(e.cfg.Seed, pid))
	i := 0
	var clock time.Duration
	for !e.drained() {
		clock += rng.ExpDuration(e.cfg.ArrivalMean)
		now := time.Since(e.start)
		if wait := clock - now; wait > 0 {
			if !e.pace(wait) {
				return
			}
		} else {
			clock = now
		}
		n := rng.GeometricLen(e.cfg.SessionOps)
		for k := 0; k < n; k++ {
			e.doOp(pid, rng, &i, true)
			if e.drained() {
				// In-flight op flushed; the session ends here.
				e.sessions.Add(1)
				return
			}
			if k+1 < n && !e.pace(rng.ExpDuration(e.cfg.ThinkMean)) {
				e.sessions.Add(1)
				return
			}
		}
		e.sessions.Add(1)
	}
}

// doOp draws and executes one operation on behalf of pid. Victims
// (record=false) only feed the conservation state: the traffic
// counters, the latency histogram, and the fault-recovery tracker
// measure the client sessions, and a fault counts as recovered only
// when a *worker* completes an operation after it — victims are the
// fault model, not the service.
func (e *engine) doOp(pid int, rng *workload.RNG, i *int, record bool) {
	class := scenario.DrawClass(e.cfg.Write, e.cfg.Erase, rng)
	op, v := scenario.KindOp(e.b.Kind, class, e.cfg.KeyRange, e.zipf, rng, pid, *i)
	*i++
	t0 := time.Now()
	if pid < len(e.lanes) {
		e.lanes[pid].opStart.Store(e.sinceStartNS())
	}
	got, err := e.drv.Do(pid, op, v)
	if pid < len(e.lanes) {
		e.lanes[pid].opStart.Store(0)
	}
	if record {
		e.hist.Record(time.Since(t0))
		e.attempted.Add(1)
	}
	if err != nil {
		return
	}
	e.cons.Account(op, got, v)
	if !record {
		return
	}
	e.okOps.Add(1)
	if p := e.pendingFaultNS.Load(); p != 0 && e.pendingFaultNS.CompareAndSwap(p, 0) {
		rec := e.sinceStartNS() - p
		if rec < 1 {
			rec = 1
		}
		e.faultsRecovered.Add(1)
		core.StoreMaxInt64(&e.worstRecoveryNS, rec)
	}
}

// markFault stamps one injected (landed) fault; the next successful
// worker operation closes it and records the recovery latency.
func (e *engine) markFault(kind FaultKind, victim int) {
	e.faultsInjected.Add(1)
	e.pendingFaultNS.Store(e.sinceStartNS())
	e.logf("[%s] fault %s landed (victim pid %d) at %v",
		e.b.Name, kind, victim, time.Since(e.start).Round(time.Millisecond))
}

// injector walks the fault plan in schedule order; fault i owns
// victim pid Workers+i, so no victim ever violates the one-client-
// per-pid discipline and no crashed pid is ever reused.
func (e *engine) injector() {
	faults := append([]FaultSpec(nil), e.cfg.Faults...)
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	for idx, f := range faults {
		at := time.Duration(f.At * float64(e.cfg.Duration))
		if wait := at - time.Since(e.start); wait > 0 && !e.pace(wait) {
			return
		}
		if e.drained() {
			return
		}
		e.inject(f.Kind, e.cfg.Workers+idx)
	}
}

// inject dispatches one fault, degrading kinds the backend cannot
// express (see FaultKind).
func (e *engine) inject(kind FaultKind, victim int) {
	switch kind {
	case FaultCrashMidOp:
		if e.drv.Abandon == nil {
			e.inject(FaultStopCrash, victim)
			return
		}
		e.wg.Add(1)
		go e.crashVictim(victim, true)
	case FaultCombinerKill:
		if e.drv.ArmCrash == nil {
			e.inject(FaultStopCrash, victim)
			return
		}
		e.wg.Add(1)
		go e.combinerVictim(victim)
	case FaultStopCrash:
		e.wg.Add(1)
		go e.crashVictim(victim, false)
	case FaultStall:
		e.wg.Add(1)
		go e.stallVictim(victim)
	case FaultMorph:
		m, ok := capabilityOf[morpher](e.drv.Instance)
		if !ok {
			e.inject(FaultStall, victim)
			return
		}
		e.morph(m, victim)
	}
}

// victimOps is how many operations a crash victim performs before
// dying: enough to be entangled with live traffic.
const victimOps = 32

// crashVictim runs a short burst of traffic and dies — mid-operation
// (one update published via Abandon, response never collected) when
// midOp, between operations otherwise. The pid is never used again.
func (e *engine) crashVictim(victim int, midOp bool) {
	defer e.wg.Done()
	rng := workload.NewRNG(laneSeed(e.cfg.Seed, victim))
	i := 0
	for n := 0; n < victimOps && !e.drained(); n++ {
		e.doOp(victim, rng, &i, false)
	}
	kind := FaultStopCrash
	if midOp {
		// Publish an update (reads have nothing to abandon) and die
		// without collecting the response; its effect is uncertain, so
		// it books into the conservation bracket.
		op, v := scenario.KindOp(e.b.Kind, scenario.ClassWrite, e.cfg.KeyRange, e.zipf, rng, victim, i)
		if e.drv.Abandon(victim, op, v) {
			e.cons.Book(op, v)
		}
		kind = FaultCrashMidOp
	}
	e.markFault(kind, victim)
}

// combinerVictim arms the one-shot combiner crash and operates until
// it dies inside a combining pass with the lease held (runtime.Goexit
// unwinds it out of Do, so the landing is detected in the defer). The
// loop is deliberately unpaced: the crash fires only when the victim
// actually serves a combining pass, and on a lightly loaded service
// paced ops would ride the uncontended shortcut forever — the victim
// must raise the contention that routes it onto the combining path.
// Its ops feed only the conservation state, so the burst never shows
// up as session traffic. The in-flight op at the crash was published
// to a slot and stays pending — abandoned, effect uncertain.
func (e *engine) combinerVictim(victim int) {
	inOp := false
	var curOp int
	var curV uint64
	defer func() {
		if inOp {
			e.cons.Book(curOp, curV)
			e.markFault(FaultCombinerKill, victim)
		} else {
			// Never became the combiner before the drain: the arm stays
			// pending forever on a pid that will never run again — a
			// stop-crash in effect.
			e.markFault(FaultStopCrash, victim)
		}
		e.wg.Done()
	}()
	e.drv.ArmCrash(victim, 1)
	rng := workload.NewRNG(laneSeed(e.cfg.Seed, victim))
	i := 0
	for !e.drained() {
		class := scenario.DrawClass(e.cfg.Write, e.cfg.Erase, rng)
		op, v := scenario.KindOp(e.b.Kind, class, e.cfg.KeyRange, e.zipf, rng, victim, i)
		i++
		inOp, curOp, curV = true, op, v
		got, err := e.drv.Do(victim, op, v)
		inOp = false
		if err == nil {
			e.cons.Account(op, got, v)
		}
	}
}

// stallVictim is the §5 slow process: it keeps operating correctly
// but pauses long stretches between operations until the drain. The
// watchdog does not monitor it (slowness between ops is its modeled
// behavior); what the gates check is that the workers never stall
// because of it.
func (e *engine) stallVictim(victim int) {
	defer e.wg.Done()
	e.markFault(FaultStall, victim)
	rng := workload.NewRNG(laneSeed(e.cfg.Seed, victim))
	i := 0
	pause := e.cfg.StallDeadline / 10
	if pause < 10*time.Millisecond {
		pause = 10 * time.Millisecond
	}
	for !e.drained() {
		e.doOp(victim, rng, &i, false)
		if !e.pace(pause) {
			return
		}
	}
}

// morph forces the adaptive ladder one rung around, serially from the
// injector goroutine on the fault's own pid.
func (e *engine) morph(m morpher, victim int) {
	rungs := m.Rungs()
	cur := m.Rung()
	dst := 0
	for r, name := range rungs {
		if name == cur {
			dst = (r + 1) % len(rungs)
			break
		}
	}
	ok := m.MorphTo(victim, dst)
	e.markFault(FaultMorph, victim)
	e.logf("[%s] forced morph %s -> %s (ok=%v)", e.b.Name, cur, rungs[dst], ok)
}

// watchdog flags worker operations in flight past the deadline, once
// per operation instance. Victims are exempt: a crashed process
// wedged forever is the fault model, not a finding.
func (e *engine) watchdog(stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	period := e.cfg.StallDeadline / 4
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	deadline := e.cfg.StallDeadline.Nanoseconds()
	flagged := make([]int64, len(e.lanes))
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			now := e.sinceStartNS()
			for pid := range e.lanes {
				s := e.lanes[pid].opStart.Load()
				if s != 0 && now-s > deadline && flagged[pid] != s {
					flagged[pid] = s
					e.stalls.Add(1)
					e.logf("[%s] WATCHDOG: pid %d op in flight for %v (deadline %v)",
						e.b.Name, pid, time.Duration(now-s), e.cfg.StallDeadline)
				}
			}
		}
	}
}

// memSnapshot is one ReadMemStats scrape.
func memSnapshot() (heap uint64, gc uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, uint64(ms.NumGC)
}

// collect emits one Row per elapsed window until the drain begins.
// Latency quantiles come from Snapshot+Delta over the shared
// histogram — live scraping, no pause, no scratch merge.
func (e *engine) collect() []Row {
	var rows []Row
	prevHist := e.hist.Snapshot()
	var prevOps, prevOK uint64
	winStart := time.Now()
	window := 0
	tick := time.NewTicker(e.cfg.Window)
	defer tick.Stop()
	for {
		select {
		case <-e.drain:
			return rows
		case <-tick.C:
			snap := e.hist.Snapshot()
			delta := snap.Delta(prevHist)
			prevHist = snap
			ops, ok := e.attempted.Load(), e.okOps.Load()
			dur := time.Since(winStart)
			winStart = time.Now()
			r := e.baseRow(window, dur, ops-prevOps, ok-prevOK, delta)
			prevOps, prevOK = ops, ok
			if err := e.liveAudit(); err != nil {
				r.Audit = fmt.Sprintf("FAIL: %v", err)
			}
			rows = append(rows, r)
			e.logf("[%s] window %d: %.0f ops/s, p99 %v, faults %d/%d recovered, stalls %d, heap %dB, audit %s",
				e.b.Name, window, r.OpsPerSec, r.P99, r.Recovered, r.Faults, r.Stalls, r.HeapBytes, r.Audit)
			window++
		}
	}
}

// liveAudit is the quiescence-free leak check: the conservation
// bracket's one-sided inequality (with in-flight slack) plus the
// pool's no-drop invariant.
func (e *engine) liveAudit() error {
	procs := e.cfg.Workers + len(e.cfg.Faults)
	if err := e.cons.LiveCheck(procs); err != nil {
		return err
	}
	if e.pool != nil {
		if st := e.pool.PoolStats(); st.Drops > 0 {
			return fmt.Errorf("pool dropped %d handles", st.Drops)
		}
	}
	return nil
}

// baseRow assembles the shared columns of a window or summary row.
func (e *engine) baseRow(window int, dur time.Duration, ops, okOps uint64, h *metrics.Histogram) Row {
	heap, gc := memSnapshot()
	r := Row{
		Backend:    e.b.Name,
		Window:     window,
		DurMS:      float64(dur.Microseconds()) / 1000,
		Ops:        ops,
		OKOps:      okOps,
		Sessions:   e.sessions.Load(),
		P50:        h.Percentile(50),
		P99:        h.Percentile(99),
		P999:       h.Percentile(99.9),
		Faults:     e.faultsInjected.Load(),
		Recovered:  e.faultsRecovered.Load(),
		RecoveryNS: e.worstRecoveryNS.Load(),
		Stalls:     e.stalls.Load(),
		HeapBytes:  heap,
		GCCycles:   gc,
		PoolAllocs: -1,
		Audit:      "ok",
	}
	if dur > 0 {
		r.OpsPerSec = float64(ops) / dur.Seconds()
	}
	if e.pool != nil {
		r.PoolAllocs = int64(e.pool.PoolStats().Allocs)
	}
	return r
}

// summaryRow is the drain-time row (Window == -1): whole-run totals
// and quantiles, and the quiescent conservation audit as the verdict.
func (e *engine) summaryRow() Row {
	r := e.baseRow(-1, time.Since(e.start), e.attempted.Load(), e.okOps.Load(), e.hist)
	if err := e.cons.Verify(e.drv); err != nil {
		r.Audit = fmt.Sprintf("FAIL: %v", err)
	}
	e.logf("[%s] drain: %d ops (%d ok) over %d sessions, %d/%d faults recovered (worst %v), stalls %d, audit %s",
		e.b.Name, r.Ops, r.OKOps, r.Sessions, r.Recovered, r.Faults,
		time.Duration(r.RecoveryNS), r.Stalls, r.Audit)
	return r
}
