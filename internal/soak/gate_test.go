package soak

import (
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// mkWindow builds one healthy window row.
func mkWindow(backend string, window int, faults, recovered uint64) Row {
	return Row{
		Backend: backend, Window: window, DurMS: 300, Ops: 5000, OKOps: 4800,
		OpsPerSec: 16666.667, Sessions: uint64(100 * (window + 1)),
		P50: 800 * time.Nanosecond, P99: 40 * time.Microsecond, P999: 200 * time.Microsecond,
		Faults: faults, Recovered: recovered, RecoveryNS: int64(2 * time.Millisecond),
		Stalls: 0, HeapBytes: 4 << 20, PoolAllocs: -1, GCCycles: 3, Audit: "ok",
	}
}

// mkSummary builds one healthy drain row.
func mkSummary(backend string, faults, recovered uint64) Row {
	r := mkWindow(backend, -1, faults, recovered)
	r.DurMS, r.Ops, r.OKOps, r.Sessions = 1200, 20000, 19000, 400
	return r
}

// healthyRows is a full strict-passing fixture: the coverage pair
// (lease-takeover + adaptive), two windows and a summary each, four
// faults all recovered.
func healthyRows() []Row {
	var rows []Row
	for _, b := range []string{"queue/combining", "set/adaptive"} {
		rows = append(rows,
			mkWindow(b, 0, 1, 1), mkWindow(b, 1, 4, 4), mkSummary(b, 4, 4))
	}
	return rows
}

func failures(vs []scenario.Verdict) []scenario.Verdict {
	var out []scenario.Verdict
	for _, v := range vs {
		if !v.OK {
			out = append(out, v)
		}
	}
	return out
}

func TestRowsTableRoundTrip(t *testing.T) {
	in := healthyRows()
	in[0].PoolAllocs = 1234
	in[0].Audit = "FAIL: key 3: 5 removes vs 4 adds"
	tb := Table(in)
	out, err := ParseRows(tb.Headers(), tb.Rows())
	if err != nil {
		t.Fatalf("ParseRows: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d rows, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("row %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestParseRowsRejectsMissingColumn(t *testing.T) {
	tb := Table(healthyRows())
	headers := tb.Headers()[1:] // drop "backend"
	rows := tb.Rows()
	for i := range rows {
		rows[i] = rows[i][1:]
	}
	if _, err := ParseRows(headers, rows); err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("want missing-column error naming backend, got %v", err)
	}
}

func TestEvaluateStrictPasses(t *testing.T) {
	for _, v := range Evaluate(healthyRows(), true) {
		if !v.OK {
			t.Errorf("healthy fixture failed gate %s/%s: observed %s, bound %s",
				v.Backend, v.Gate, v.Observed, v.Bound)
		}
	}
}

func TestEvaluateGateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(rows []Row) []Row
		gate   string
	}{
		{"watchdog", func(rows []Row) []Row {
			rows[2].Stalls = 2 // queue/combining summary
			return rows
		}, "watchdog"},
		{"live-audit", func(rows []Row) []Row {
			rows[1].Audit = "FAIL: pool dropped 3 handles"
			return rows
		}, "live-audit"},
		{"drain-audit", func(rows []Row) []Row {
			rows[2].Audit = "FAIL: conservation: produced 10 vs consumed 4 + drained 5"
			return rows
		}, "drain-audit"},
		{"fault-recovery", func(rows []Row) []Row {
			rows[2].Recovered = 3
			return rows
		}, "fault-recovery"},
		{"slow-recovery", func(rows []Row) []Row {
			rows[2].RecoveryNS = int64(6 * time.Second)
			return rows
		}, "fault-recovery"},
		{"heap-drift", func(rows []Row) []Row {
			rows[1].HeapBytes = 2*rows[0].HeapBytes + heapSlackBytes + 1
			return rows
		}, "heap-drift"},
		{"pool-drift", func(rows []Row) []Row {
			rows[0].PoolAllocs = 100
			rows[1].PoolAllocs = 2*100 + poolSlackRecords + 1
			return rows
		}, "pool-drift"},
		{"progress", func(rows []Row) []Row {
			rows[1].Ops = 0
			return rows
		}, "progress"},
		{"missing-summary", func(rows []Row) []Row {
			return append(rows[:2], rows[3:]...) // drop queue/combining summary
		}, "rows"},
		{"windows", func(rows []Row) []Row {
			return rows[1:] // queue/combining left with 1 window
		}, "windows"},
		{"coverage", func(rows []Row) []Row {
			return rows[:3] // single backend, no adaptive
		}, "coverage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := failures(Evaluate(tc.mutate(healthyRows()), true))
			if len(fails) == 0 {
				t.Fatalf("mutation tripped no gate, want %s", tc.gate)
			}
			found := false
			for _, v := range fails {
				if v.Gate == tc.gate {
					found = true
				}
			}
			if !found {
				t.Errorf("want gate %s among failures, got %+v", tc.gate, fails)
			}
		})
	}
}

func TestEvaluateNonStrictTolerance(t *testing.T) {
	// An interrupted run: one backend, one window, one fault injected
	// and recovered. Every invariant gate must still run; the strict
	// coverage/windows/fault-floor gates must not.
	rows := []Row{mkWindow("queue/combining", 0, 1, 1), mkSummary("queue/combining", 1, 1)}
	vs := Evaluate(rows, false)
	if fails := failures(vs); len(fails) != 0 {
		t.Fatalf("non-strict evaluation of a clean interrupted run failed: %+v", fails)
	}
	for _, v := range vs {
		if v.Gate == "coverage" || v.Gate == "windows" {
			t.Errorf("non-strict evaluation emitted strict gate %s", v.Gate)
		}
	}
	// But an unrecovered fault still fails.
	rows[1].Recovered = 0
	if fails := failures(Evaluate(rows, false)); len(fails) == 0 {
		t.Fatal("non-strict evaluation ignored an unrecovered fault")
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultCrashMidOp:   "crash-mid-op",
		FaultCombinerKill: "combiner-kill",
		FaultStopCrash:    "stop-crash",
		FaultStall:        "stall",
		FaultMorph:        "morph",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
