package soak

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// shortCfg compresses a soak run enough for the test suite while
// still exercising every moving part: multiple windows, the full
// default fault plan, the watchdog, and the drain audit.
func shortCfg() Config {
	return Config{
		Duration:      1200 * time.Millisecond,
		Window:        300 * time.Millisecond,
		Workers:       4,
		ArrivalMean:   100 * time.Microsecond,
		ThinkMean:     50 * time.Microsecond,
		SessionOps:    16,
		KeyRange:      64,
		StallDeadline: 2 * time.Second,
	}
}

func catalogByName(t *testing.T) map[string]repro.Backend {
	t.Helper()
	byName := map[string]repro.Backend{}
	for _, b := range repro.Catalog() {
		byName[b.Name] = b
	}
	return byName
}

// TestSoakDefaultBackends runs the real engine over the default
// coverage set and demands the full E24 strict contract from the
// combined rows — the in-process version of the CI smoke.
func TestSoakDefaultBackends(t *testing.T) {
	byName := catalogByName(t)
	// The default set must exercise the real seams, not their
	// degradations: the combiner kill on the lease-takeover backend,
	// the forced morph on the adaptive one.
	wantLog := map[string]string{
		"queue/combining": "combiner-kill",
		"set/adaptive":    "forced morph",
	}
	var all []Row
	for _, name := range DefaultBackends() {
		b, ok := byName[name]
		if !ok {
			t.Fatalf("default soak backend %q not in catalog", name)
		}
		var sb strings.Builder
		cfg := shortCfg()
		cfg.Log = &sb
		rows := Run(b, cfg)
		if want := wantLog[name]; want != "" && !strings.Contains(sb.String(), want) {
			t.Errorf("%s: log shows no %q — the fault degraded instead of landing:\n%s",
				name, want, sb.String())
		}
		if len(rows) < 3 {
			t.Fatalf("%s: got %d rows, want >= 2 windows + summary", name, len(rows))
		}
		sum := rows[len(rows)-1]
		if sum.Window != -1 {
			t.Fatalf("%s: last row is window %d, want summary (-1)", name, sum.Window)
		}
		if sum.Faults != uint64(len(DefaultFaultPlan())) {
			t.Errorf("%s: injected %d faults, want %d", name, sum.Faults, len(DefaultFaultPlan()))
		}
		if sum.Recovered != sum.Faults {
			t.Errorf("%s: recovered %d of %d faults", name, sum.Recovered, sum.Faults)
		}
		if sum.Stalls != 0 {
			t.Errorf("%s: watchdog flagged %d stalls", name, sum.Stalls)
		}
		for _, r := range rows {
			if r.Audit != "ok" {
				t.Errorf("%s window %d: audit %s", name, r.Window, r.Audit)
			}
			if r.Window >= 0 && r.Ops == 0 {
				t.Errorf("%s window %d: no traffic", name, r.Window)
			}
		}
		if sum.Sessions == 0 || sum.OKOps == 0 {
			t.Errorf("%s: summary shows no completed work: %+v", name, sum)
		}
		all = append(all, rows...)
	}
	for _, v := range Evaluate(all, true) {
		if !v.OK {
			t.Errorf("strict gate %s/%s failed: observed %s, bound %s",
				v.Backend, v.Gate, v.Observed, v.Bound)
		}
	}
}

// TestSoakPooledBackendTracksPool checks the leak audit actually
// scrapes PoolStats on a pooled backend instead of reporting -1.
func TestSoakPooledBackendTracksPool(t *testing.T) {
	b, ok := catalogByName(t)["stack/treiber-pooled"]
	if !ok {
		t.Skip("stack/treiber-pooled not in catalog")
	}
	cfg := shortCfg()
	cfg.Duration, cfg.Window = 600*time.Millisecond, 200*time.Millisecond
	rows := Run(b, cfg)
	sum := rows[len(rows)-1]
	if sum.PoolAllocs < 0 {
		t.Fatalf("pooled backend reported PoolAllocs %d, want >= 0", sum.PoolAllocs)
	}
}

// TestSoakGracefulStop closes Config.Stop long before Duration and
// demands a prompt drain with a clean final audit — the SIGTERM path.
func TestSoakGracefulStop(t *testing.T) {
	b, ok := catalogByName(t)["queue/combining"]
	if !ok {
		t.Skip("queue/combining not in catalog")
	}
	cfg := shortCfg()
	cfg.Duration = 30 * time.Second // the stop, not the clock, must end this
	cfg.Window = 100 * time.Millisecond
	stop := make(chan struct{})
	go func() {
		time.Sleep(250 * time.Millisecond)
		close(stop)
	}()
	cfg.Stop = stop
	t0 := time.Now()
	rows := Run(b, cfg)
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("stop-triggered drain took %v", took)
	}
	sum := rows[len(rows)-1]
	if sum.Window != -1 {
		t.Fatalf("last row is window %d, want summary", sum.Window)
	}
	if sum.Audit != "ok" {
		t.Errorf("drain audit after early stop: %s", sum.Audit)
	}
	if sum.Ops == 0 {
		t.Error("no traffic before the early stop")
	}
	if fails := len(Evaluate(rows, false)); fails == 0 {
		t.Error("non-strict evaluation produced no verdicts")
	}
	for _, v := range Evaluate(rows, false) {
		if !v.OK {
			t.Errorf("non-strict gate %s failed after graceful stop: %s vs %s",
				v.Gate, v.Observed, v.Bound)
		}
	}
}

// TestSoakFaultDegradation soaks a backend with neither crash seam nor
// adaptive ladder and checks the plan degrades instead of vanishing:
// the full fault count still lands and recovers.
func TestSoakFaultDegradation(t *testing.T) {
	b, ok := catalogByName(t)["stack/treiber-pooled"]
	if !ok {
		t.Skip("stack/treiber-pooled not in catalog")
	}
	drv := repro.Drive(b, repro.WithProcs(2))
	if drv.Abandon != nil || drv.ArmCrash != nil {
		t.Skip("backend grew crash seams; degradation no longer exercised here")
	}
	cfg := shortCfg()
	rows := Run(b, cfg)
	sum := rows[len(rows)-1]
	if want := uint64(len(DefaultFaultPlan())); sum.Faults != want {
		t.Fatalf("degraded plan injected %d faults, want %d", sum.Faults, want)
	}
	if sum.Recovered != sum.Faults {
		t.Errorf("degraded plan: recovered %d of %d", sum.Recovered, sum.Faults)
	}
}

// TestSoakLogLines checks the progress log carries the load-bearing
// lines: fault landings, window summaries, and the drain verdict.
func TestSoakLogLines(t *testing.T) {
	b, ok := catalogByName(t)["queue/combining"]
	if !ok {
		t.Skip("queue/combining not in catalog")
	}
	var sb strings.Builder
	cfg := shortCfg()
	cfg.Log = &sb // engine serializes writes internally
	Run(b, cfg)
	out := sb.String()
	for _, want := range []string{"fault", "window 0:", "drain:"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}
