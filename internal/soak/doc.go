// Package soak is the long-running robustness layer over the catalog:
// an open-loop session engine (simulated client sessions with a
// Poisson arrival process, geometric lengths, and exponential think
// times — connection churn, not a closed op loop) drives any
// repro.Catalog() backend for a wall-clock duration while a seeded
// fault plan injects the §5 failure model mid-run (mid-op crashes via
// Ops.Abandon, combiner kills via Ops.ArmCrash, slow-process stalls,
// forced adaptive morphs) and a robustness monitor watches the whole
// time: a per-pid heartbeat watchdog flags operations stalled past a
// deadline, a periodic leak/conservation audit (the PR 7 bracket,
// pool PoolStats drift, heap telemetry) runs without stopping
// traffic, and windowed metrics.Histogram deltas turn the run into
// the provenance-stamped rows experiment E24 emits and cmd/slogate
// gates. Stopping — by duration or by SIGTERM relayed through
// Config.Stop — is a graceful drain: arrivals stop, in-flight
// operations flush, and the drain-time conservation audit has the
// last word.
package soak
