package soak

import (
	"fmt"
	"strconv"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// Row is one E24 measurement row: one metrics window of one backend's
// soak run, or — with Window == -1 — the run's drain-time summary.
// Sessions, Faults, Recovered, RecoveryNS, Stalls, HeapBytes,
// PoolAllocs, and GCCycles are cumulative at the row's instant; Ops,
// OKOps, the duration, and the quantiles are the window's own.
type Row struct {
	Backend        string
	Window         int // -1 = summary/drain row
	DurMS          float64
	Ops, OKOps     uint64
	OpsPerSec      float64
	Sessions       uint64
	P50, P99, P999 time.Duration
	Faults         uint64
	Recovered      uint64
	RecoveryNS     int64 // worst fault-to-first-worker-op latency so far
	Stalls         uint64
	HeapBytes      uint64
	PoolAllocs     int64 // -1 when the backend has no pool
	GCCycles       uint64
	Audit          string // live audit (windows) or drain audit (summary)
}

// rowColumns are the "E24 soak suite" table columns, same contract as
// the scenario gate schemas: resolved by name, adding columns is
// compatible, removing or renaming one breaks cmd/slogate loudly.
var rowColumns = []string{"backend", "window", "dur-ms", "ops", "ok-ops", "ops/s", "sessions",
	"p50 ns", "p99 ns", "p999 ns", "faults", "recovered", "recovery-ns", "stalls",
	"heap-bytes", "pool-allocs", "gc-cycles", "audit"}

// RowColumns returns the required E24 table header, in order.
func RowColumns() []string { return append([]string(nil), rowColumns...) }

// Table renders rows as the E24 table, in RowColumns order.
func Table(rows []Row) *metrics.Table {
	tb := metrics.NewTable(RowColumns()...)
	for _, r := range rows {
		tb.AddRow(r.Backend, r.Window, r.DurMS, r.Ops, r.OKOps, r.OpsPerSec, r.Sessions,
			r.P50.Nanoseconds(), r.P99.Nanoseconds(), r.P999.Nanoseconds(),
			r.Faults, r.Recovered, r.RecoveryNS, r.Stalls,
			r.HeapBytes, r.PoolAllocs, r.GCCycles, r.Audit)
	}
	return tb
}

// ParseRows decodes an E24 table (headers plus string cells, the
// shape bench.TableResult carries) into typed rows.
func ParseRows(headers []string, rows [][]string) ([]Row, error) {
	col := map[string]int{}
	for i, h := range headers {
		col[h] = i
	}
	for _, want := range rowColumns {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("soak: E24 table is missing column %q (have %v)", want, headers)
		}
	}
	out := make([]Row, 0, len(rows))
	for i, cells := range rows {
		get := func(name string) string { return cells[col[name]] }
		var r Row
		var err error
		r.Backend, r.Audit = get("backend"), get("audit")
		if r.Window, err = strconv.Atoi(get("window")); err != nil {
			return nil, fmt.Errorf("soak: row %d: bad window %q", i, get("window"))
		}
		for _, f := range []struct {
			name string
			dst  *float64
		}{{"dur-ms", &r.DurMS}, {"ops/s", &r.OpsPerSec}} {
			if *f.dst, err = strconv.ParseFloat(get(f.name), 64); err != nil {
				return nil, fmt.Errorf("soak: row %d: bad %s %q", i, f.name, get(f.name))
			}
		}
		for _, u := range []struct {
			name string
			dst  *uint64
		}{{"ops", &r.Ops}, {"ok-ops", &r.OKOps}, {"sessions", &r.Sessions},
			{"faults", &r.Faults}, {"recovered", &r.Recovered}, {"stalls", &r.Stalls},
			{"heap-bytes", &r.HeapBytes}, {"gc-cycles", &r.GCCycles}} {
			if *u.dst, err = strconv.ParseUint(get(u.name), 10, 64); err != nil {
				return nil, fmt.Errorf("soak: row %d: bad %s %q", i, u.name, get(u.name))
			}
		}
		for _, q := range []struct {
			name string
			dst  *time.Duration
		}{{"p50 ns", &r.P50}, {"p99 ns", &r.P99}, {"p999 ns", &r.P999}} {
			ns, err := strconv.ParseInt(get(q.name), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("soak: row %d: bad %s %q", i, q.name, get(q.name))
			}
			*q.dst = time.Duration(ns)
		}
		for _, s := range []struct {
			name string
			dst  *int64
		}{{"recovery-ns", &r.RecoveryNS}, {"pool-allocs", &r.PoolAllocs}} {
			if *s.dst, err = strconv.ParseInt(get(s.name), 10, 64); err != nil {
				return nil, fmt.Errorf("soak: row %d: bad %s %q", i, s.name, get(s.name))
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// The E24 gate bounds.
const (
	// maxRecovery bounds the worst fault-to-first-worker-op latency.
	maxRecovery = 5 * time.Second
	// minFaultsStrict is the fault floor a full run must inject.
	minFaultsStrict = 3
	// heapSlackBytes absorbs the GC noise floor in the heap-drift
	// bound; poolSlackRecords the pool warm-up tail.
	heapSlackBytes   = 64 << 20
	poolSlackRecords = 4096
)

// Evaluate applies the E24 release gates to the parsed rows and
// returns the verdict table (Verdict.Scenario is "soak" throughout).
// Per backend: a summary row must exist (rows gate); the watchdog
// must have flagged nothing; every window's live audit and the drain
// audit must hold; every window must carry traffic (survivor progress
// across every injected fault); every injected fault must be
// recovered; and with two or more windows, heap and pool growth
// between the first and last window must stay bounded. Strict mode —
// the full-run contract cmd/slogate enforces in CI — additionally
// requires at least two windows, at least minFaultsStrict injected
// faults with the worst recovery under maxRecovery, and coverage: at
// least two distinct backends, including one lease-takeover and one
// adaptive-tier catalog entry. Non-strict mode is for runs cut short
// by SIGTERM, where the invariants must still hold but the coverage
// and fault floors cannot be demanded of an interrupted clock.
func Evaluate(rows []Row, strict bool) []scenario.Verdict {
	byBackend := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if _, seen := byBackend[r.Backend]; !seen {
			order = append(order, r.Backend)
		}
		byBackend[r.Backend] = append(byBackend[r.Backend], r)
	}

	var verdicts []scenario.Verdict
	add := func(backend, gate, observed, bound string, ok bool) {
		verdicts = append(verdicts, scenario.Verdict{Scenario: "soak", Backend: backend,
			Gate: gate, Observed: observed, Bound: bound, OK: ok})
	}

	if strict {
		robustness := map[string]string{}
		tier := map[string]string{}
		for _, b := range repro.Catalog() {
			robustness[b.Name] = b.Robustness
			tier[b.Name] = b.Tier
		}
		lease, adaptive := 0, 0
		for _, name := range order {
			if robustness[name] == "lease-takeover" {
				lease++
			}
			if tier[name] == "adaptive" {
				adaptive++
			}
		}
		add("*", "coverage",
			fmt.Sprintf("%d backends (%d lease-takeover, %d adaptive)", len(order), lease, adaptive),
			"≥ 2 backends incl. ≥ 1 lease-takeover and ≥ 1 adaptive",
			len(order) >= 2 && lease >= 1 && adaptive >= 1)
	}

	for _, name := range order {
		var windows []Row
		var summary *Row
		for i, r := range byBackend[name] {
			if r.Window < 0 {
				summary = &byBackend[name][i]
			} else {
				windows = append(windows, r)
			}
		}
		if summary == nil {
			add(name, "rows", "no summary row", "one Window == -1 row per backend", false)
			continue
		}
		if strict {
			add(name, "windows", fmt.Sprintf("%d windows", len(windows)),
				"≥ 2", len(windows) >= 2)
		}

		add(name, "watchdog", fmt.Sprintf("%d stalled ops", summary.Stalls),
			"0", summary.Stalls == 0)

		liveOK, firstFail := true, ""
		for _, w := range windows {
			if w.Audit != "ok" && liveOK {
				liveOK, firstFail = false, fmt.Sprintf("window %d: %s", w.Window, w.Audit)
			}
		}
		obs := "every window ok"
		if !liveOK {
			obs = firstFail
		}
		add(name, "live-audit", obs, "every window ok", liveOK)
		add(name, "drain-audit", summary.Audit, "ok", summary.Audit == "ok")

		minOps := uint64(0)
		if len(windows) > 0 {
			minOps = windows[0].Ops
			for _, w := range windows[1:] {
				if w.Ops < minOps {
					minOps = w.Ops
				}
			}
		}
		add(name, "progress", fmt.Sprintf("min %d ops per window", minOps),
			"> 0 in every window", len(windows) == 0 || minOps > 0)

		recObs := fmt.Sprintf("%d/%d recovered, worst %v",
			summary.Recovered, summary.Faults, time.Duration(summary.RecoveryNS))
		if strict {
			add(name, "fault-recovery", recObs,
				fmt.Sprintf("≥ %d injected, all recovered ≤ %v", minFaultsStrict, maxRecovery),
				summary.Faults >= minFaultsStrict && summary.Recovered == summary.Faults &&
					time.Duration(summary.RecoveryNS) <= maxRecovery)
		} else if summary.Faults > 0 {
			add(name, "fault-recovery", recObs, "all injected faults recovered",
				summary.Recovered == summary.Faults)
		}

		if len(windows) >= 2 {
			first, last := windows[0], windows[len(windows)-1]
			add(name, "heap-drift",
				fmt.Sprintf("%d -> %d bytes", first.HeapBytes, last.HeapBytes),
				fmt.Sprintf("≤ 2x first + %dMiB", heapSlackBytes>>20),
				last.HeapBytes <= 2*first.HeapBytes+heapSlackBytes)
			if first.PoolAllocs >= 0 && last.PoolAllocs >= 0 {
				add(name, "pool-drift",
					fmt.Sprintf("%d -> %d arena records", first.PoolAllocs, last.PoolAllocs),
					fmt.Sprintf("≤ 2x first + %d", poolSlackRecords),
					last.PoolAllocs <= 2*first.PoolAllocs+poolSlackRecords)
			}
		}
	}
	return verdicts
}
