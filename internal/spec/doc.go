// Package spec provides plain sequential reference implementations of
// the bounded stack, queue, deque, and the sorted set. They are the
// ground truth for differential and fuzz tests: any solo run of a
// concurrent implementation must agree with these op-for-op, and the
// linearizability models in internal/linearizability encode the same
// semantics over immutable states.
package spec
