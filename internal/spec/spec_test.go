package spec

import "testing"

func TestStackSemantics(t *testing.T) {
	s := NewStack[int](2)
	if _, ok := s.Pop(); ok {
		t.Fatal("pop on empty succeeded")
	}
	if !s.Push(1) || !s.Push(2) {
		t.Fatal("push failed below capacity")
	}
	if s.Push(3) {
		t.Fatal("push on full succeeded")
	}
	if got := s.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Snapshot = %v", got)
	}
	if v, ok := s.Pop(); !ok || v != 2 {
		t.Fatalf("Pop = (%d, %v)", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestQueueSemantics(t *testing.T) {
	q := NewQueue[int](2)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	if !q.Enqueue(1) || !q.Enqueue(2) {
		t.Fatal("enqueue failed below capacity")
	}
	if q.Enqueue(3) {
		t.Fatal("enqueue on full succeeded")
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d, %v)", v, ok)
	}
	if got := q.Snapshot(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"stack": func() { NewStack[int](0) },
		"queue": func() { NewQueue[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor did not panic", name)
				}
			}()
			f()
		}()
	}
}
