package spec

import "slices"

// Stack is a sequential bounded LIFO stack. Not safe for concurrent
// use — that is the point.
type Stack[T any] struct {
	items []T
	cap   int
}

// NewStack returns a stack of capacity k >= 1.
func NewStack[T any](k int) *Stack[T] {
	if k < 1 {
		panic("spec: capacity must be >= 1")
	}
	return &Stack[T]{cap: k}
}

// Push appends v and reports false iff the stack is full.
func (s *Stack[T]) Push(v T) bool {
	if len(s.items) == s.cap {
		return false
	}
	s.items = append(s.items, v)
	return true
}

// Pop removes and returns the top value; ok is false iff empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	if len(s.items) == 0 {
		return v, false
	}
	v = s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, true
}

// Len returns the number of elements.
func (s *Stack[T]) Len() int { return len(s.items) }

// Snapshot returns the contents bottom-first.
func (s *Stack[T]) Snapshot() []T {
	out := make([]T, len(s.items))
	copy(out, s.items)
	return out
}

// Deque is a sequential bounded double-ended queue with the
// non-circular window semantics of the Herlihy-Luchangco-Moir array
// deque (the paper's reference [8]): the data region slides inside an
// array of max+2 cells whose left part is LN sentinels and right part
// RN sentinels, so each side reports "full" when *its* sentinel supply
// is exhausted, even if the other side still has room. PushLeft
// consumes an LN cell, PopLeft returns one, and symmetrically for the
// right side.
type Deque[T any] struct {
	numLN int // cells 0..numLN-1 are LN; cell 0 is a permanent sentinel
	items []T
	max   int // capacity of the underlying array (cells 1..max)
}

// NewDeque returns a deque over an array of max data cells with the
// initial window split in the middle, so both sides start with room.
func NewDeque[T any](max int) *Deque[T] {
	if max < 1 {
		panic("spec: capacity must be >= 1")
	}
	return &Deque[T]{numLN: max/2 + 1, max: max}
}

// PushRight appends v on the right; false iff the right side is full.
func (d *Deque[T]) PushRight(v T) bool {
	if d.numLN+len(d.items) == d.max+1 {
		return false
	}
	d.items = append(d.items, v)
	return true
}

// PopRight removes the rightmost value; ok is false iff empty.
func (d *Deque[T]) PopRight() (v T, ok bool) {
	if len(d.items) == 0 {
		return v, false
	}
	v = d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return v, true
}

// PushLeft prepends v on the left; false iff the left side is full.
func (d *Deque[T]) PushLeft(v T) bool {
	if d.numLN == 1 {
		return false
	}
	d.numLN--
	d.items = append([]T{v}, d.items...)
	return true
}

// PopLeft removes the leftmost value; ok is false iff empty.
func (d *Deque[T]) PopLeft() (v T, ok bool) {
	if len(d.items) == 0 {
		return v, false
	}
	v = d.items[0]
	d.items = d.items[1:]
	d.numLN++
	return v, true
}

// Len returns the number of elements.
func (d *Deque[T]) Len() int { return len(d.items) }

// Snapshot returns the contents left to right.
func (d *Deque[T]) Snapshot() []T {
	out := make([]T, len(d.items))
	copy(out, d.items)
	return out
}

// Set is a sequential sorted set of uint64 keys. Not safe for
// concurrent use. It is the ground truth of the set tier
// (internal/set): Add and Remove report whether they changed the set,
// Contains reports membership.
type Set struct {
	keys []uint64 // sorted ascending, no duplicates
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Add inserts k and reports true iff it was not already present.
func (s *Set) Add(k uint64) bool {
	i, ok := slices.BinarySearch(s.keys, k)
	if ok {
		return false
	}
	s.keys = slices.Insert(s.keys, i, k)
	return true
}

// Remove deletes k and reports true iff it was present.
func (s *Set) Remove(k uint64) bool {
	i, ok := slices.BinarySearch(s.keys, k)
	if !ok {
		return false
	}
	s.keys = slices.Delete(s.keys, i, i+1)
	return true
}

// Contains reports whether k is in the set.
func (s *Set) Contains(k uint64) bool {
	_, ok := slices.BinarySearch(s.keys, k)
	return ok
}

// Len returns the number of keys.
func (s *Set) Len() int { return len(s.keys) }

// Snapshot returns the keys in ascending order.
func (s *Set) Snapshot() []uint64 {
	out := make([]uint64, len(s.keys))
	copy(out, s.keys)
	return out
}

// Queue is a sequential bounded FIFO queue. Not safe for concurrent
// use.
type Queue[T any] struct {
	items []T
	cap   int
}

// NewQueue returns a queue of capacity k >= 1.
func NewQueue[T any](k int) *Queue[T] {
	if k < 1 {
		panic("spec: capacity must be >= 1")
	}
	return &Queue[T]{cap: k}
}

// Enqueue appends v and reports false iff the queue is full.
func (q *Queue[T]) Enqueue(v T) bool {
	if len(q.items) == q.cap {
		return false
	}
	q.items = append(q.items, v)
	return true
}

// Dequeue removes and returns the oldest value; ok is false iff empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of elements.
func (q *Queue[T]) Len() int { return len(q.items) }

// Snapshot returns the contents oldest-first.
func (q *Queue[T]) Snapshot() []T {
	out := make([]T, len(q.items))
	copy(out, q.items)
	return out
}
