package core

// Progress is a liveness (progress) condition for concurrent-object
// implementations, ordered from weakest to strongest exactly as in the
// paper's §1.2 hierarchy. The paper's implicit safety condition is
// always linearizability; Progress only classifies which operations
// are guaranteed to terminate.
type Progress int

const (
	// ObstructionFree guarantees termination only for operations that
	// eventually run solo (concurrency-free). An abortable object is
	// strictly stronger: every operation terminates, possibly
	// returning ⊥ under concurrency.
	ObstructionFree Progress = iota
	// NonBlocking guarantees that under concurrency at least one of
	// the concurrent operations terminates (deadlock-freedom in the
	// failure-free case). The paper also calls such implementations
	// lock-free when they use no locks.
	NonBlocking
	// StarvationFree guarantees that every invoked operation
	// terminates.
	StarvationFree
	// WaitFree is starvation-freedom in the presence of any number of
	// process crashes ((n-1)-resilience, the paper's footnote 1).
	// None of the algorithms here are wait-free — the slow path can
	// block behind a crashed lock holder — but the taxonomy keeps the
	// slot for comparisons.
	WaitFree
)

// String returns the conventional name of the progress condition.
func (p Progress) String() string {
	switch p {
	case ObstructionFree:
		return "obstruction-free"
	case NonBlocking:
		return "non-blocking"
	case StarvationFree:
		return "starvation-free"
	case WaitFree:
		return "wait-free"
	default:
		return "unknown"
	}
}

// Implies reports whether p is at least as strong as q in the paper's
// hierarchy (every p implementation is also a q implementation).
func (p Progress) Implies(q Progress) bool { return p >= q }

// ProgressInfo is implemented by objects that advertise the progress
// condition of their operations; the experiment harness uses it to
// label results.
type ProgressInfo interface {
	Progress() Progress
}
