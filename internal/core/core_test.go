package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/memory"
)

// weakCounter is a minimal abortable object: one CAS-able counter.
// A single attempt aborts iff the CAS loses a race, so solo attempts
// never abort.
type weakCounter struct {
	w *memory.Word
}

func newWeakCounter() *weakCounter { return &weakCounter{w: memory.NewWord(0)} }

func (c *weakCounter) TryOp(delta uint64) (uint64, bool) {
	v := c.w.Read()
	if c.w.CAS(v, v+delta) {
		return v + delta, true
	}
	return 0, false
}

// flaky aborts the first n attempts, then succeeds returning 42.
type flaky struct {
	remaining int
}

func (f *flaky) try() (int, bool) {
	if f.remaining > 0 {
		f.remaining--
		return 0, false
	}
	return 42, true
}

func TestDoFastPathSolo(t *testing.T) {
	g := NewGuard(lock.IgnorePid(lock.NewTAS()))
	c := newWeakCounter()
	for i := 1; i <= 100; i++ {
		got := Do(g, 0, func() (uint64, bool) { return c.TryOp(1) })
		if got != uint64(i) {
			t.Fatalf("Do #%d = %d, want %d", i, got, i)
		}
	}
	st := g.Stats()
	if st.Fast != 100 || st.Slow != 0 || st.Retries != 0 {
		t.Fatalf("solo stats = %+v, want all fast", st)
	}
}

func TestDoSlowPathOnAbort(t *testing.T) {
	g := NewGuard(lock.IgnorePid(lock.NewTAS()))
	f := &flaky{remaining: 3}
	got := Do(g, 0, f.try)
	if got != 42 {
		t.Fatalf("Do = %d, want 42", got)
	}
	st := g.Stats()
	if st.Fast != 0 || st.Slow != 1 {
		t.Fatalf("stats = %+v, want one slow-path entry", st)
	}
	// 1 aborted fast attempt + line-08 loop: 2 aborts + 1 success.
	if st.Retries != 3 {
		t.Fatalf("retries = %d, want 3", st.Retries)
	}
}

func TestDoShortcutCostIsOneContentionRead(t *testing.T) {
	// The guard itself must add exactly one shared access (the read
	// of CONTENTION) to a successful contention-free operation.
	var st memory.Stats
	g := NewGuardObserved(lock.IgnorePid(lock.NewTAS()), &st)
	c := newWeakCounter()
	Do(g, 0, func() (uint64, bool) { return c.TryOp(1) })
	if got := st.Snapshot(); got.Reads != 1 || got.Writes != 0 || got.CASes != 0 {
		t.Fatalf("guard accesses = %+v, want exactly 1 read", got)
	}
}

func TestDoNeverLocksWhenUncontended(t *testing.T) {
	g := NewGuard(lock.IgnorePid(lock.NewTAS()))
	c := newWeakCounter()
	for i := 0; i < 1000; i++ {
		Do(g, 0, func() (uint64, bool) { return c.TryOp(1) })
	}
	if st := g.Stats(); st.Slow != 0 {
		t.Fatalf("uncontended run took the lock %d times", st.Slow)
	}
}

func TestDoConcurrentExactlyOnce(t *testing.T) {
	const procs, iters = 8, 5000
	g := NewGuard(lock.NewRoundRobin(lock.NewTAS(), procs))
	c := newWeakCounter()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Do(g, pid, func() (uint64, bool) { return c.TryOp(1) })
			}
		}(p)
	}
	wg.Wait()
	if got := c.w.Read(); got != procs*iters {
		t.Fatalf("counter = %d, want %d (lost or duplicated increments)", got, procs*iters)
	}
	st := g.Stats()
	if st.Fast+st.Slow != procs*iters {
		t.Fatalf("fast+slow = %d, want %d", st.Fast+st.Slow, procs*iters)
	}
}

func TestGuardResetStats(t *testing.T) {
	g := NewGuard(lock.IgnorePid(lock.NewTAS()))
	c := newWeakCounter()
	Do(g, 0, func() (uint64, bool) { return c.TryOp(1) })
	g.ResetStats()
	if st := g.Stats(); st != (GuardStats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestSensitiveDo(t *testing.T) {
	s := NewSensitive[uint64, uint64](newWeakCounter(), lock.IgnorePid(lock.NewTicket()))
	if got := s.Do(0, 5); got != 5 {
		t.Fatalf("Do(0,5) = %d, want 5", got)
	}
	if got := s.Do(1, 7); got != 12 {
		t.Fatalf("Do(1,7) = %d, want 12", got)
	}
	if s.Progress() != StarvationFree {
		t.Fatal("Sensitive does not advertise starvation-freedom")
	}
	if s.Guard().Stats().Fast != 2 {
		t.Fatal("guard stats not visible through Sensitive")
	}
}

func TestSensitiveConcurrent(t *testing.T) {
	const procs, iters = 6, 4000
	c := newWeakCounter()
	s := NewSensitive[uint64, uint64](c, lock.NewRoundRobin(lock.NewTTAS(), procs))
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Do(pid, 1)
			}
		}(p)
	}
	wg.Wait()
	if got := c.w.Read(); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
}

// recordingManager records contention-manager callbacks.
type recordingManager struct {
	aborts    []int
	successes int
}

func (m *recordingManager) OnAbort(attempt int) { m.aborts = append(m.aborts, attempt) }
func (m *recordingManager) OnSuccess()          { m.successes++ }

func TestRetryBareLoop(t *testing.T) {
	f := &flaky{remaining: 5}
	if got := Retry(nil, f.try); got != 42 {
		t.Fatalf("Retry = %d, want 42", got)
	}
}

func TestRetryManagerCallbacks(t *testing.T) {
	m := &recordingManager{}
	f := &flaky{remaining: 3}
	if got := Retry[int](m, f.try); got != 42 {
		t.Fatalf("Retry = %d, want 42", got)
	}
	if m.successes != 1 {
		t.Fatalf("OnSuccess called %d times, want 1", m.successes)
	}
	want := []int{1, 2, 3}
	if len(m.aborts) != len(want) {
		t.Fatalf("OnAbort calls = %v, want %v", m.aborts, want)
	}
	for i := range want {
		if m.aborts[i] != want[i] {
			t.Fatalf("OnAbort calls = %v, want %v", m.aborts, want)
		}
	}
}

func TestRetryCounted(t *testing.T) {
	f := &flaky{remaining: 4}
	got, aborts := RetryCounted[int](nil, f.try)
	if got != 42 || aborts != 4 {
		t.Fatalf("RetryCounted = (%d, %d), want (42, 4)", got, aborts)
	}
	f2 := &flaky{remaining: 0}
	if _, aborts := RetryCounted[int](nil, f2.try); aborts != 0 {
		t.Fatalf("immediate success counted %d aborts", aborts)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	m := &recordingManager{}
	attempts := 0
	_, err := RetryBudget[int](m, 3, func() (int, bool) { attempts++; return 0, false })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if attempts != 3 {
		t.Fatalf("made %d attempts, want exactly the budget of 3", attempts)
	}
	// Pacing happens between attempts, not after the budget is spent: a
	// shed operation must not pay one final backoff on the way out.
	if len(m.aborts) != 2 {
		t.Fatalf("OnAbort called %d times, want 2 (between the 3 attempts)", len(m.aborts))
	}
	if m.successes != 0 {
		t.Fatal("OnSuccess called for an exhausted operation")
	}
}

func TestRetryBudgetSucceedsWithinBudget(t *testing.T) {
	f := &flaky{remaining: 2}
	got, err := RetryBudget[int](nil, 5, f.try)
	if err != nil || got != 42 {
		t.Fatalf("RetryBudget = (%d, %v), want (42, nil)", got, err)
	}
	// Success on exactly the last budgeted attempt still counts.
	f2 := &flaky{remaining: 4}
	got, err = RetryBudget[int](nil, 5, f2.try)
	if err != nil || got != 42 {
		t.Fatalf("last-attempt RetryBudget = (%d, %v), want (42, nil)", got, err)
	}
}

func TestRetryBudgetClampsToOneAttempt(t *testing.T) {
	// A budget below 1 clamps to 1: exactly one weak attempt, the
	// obstruction-free rung exposed directly.
	for _, budget := range []int{0, -3, 1} {
		attempts := 0
		_, err := RetryBudget[int](nil, budget, func() (int, bool) { attempts++; return 0, false })
		if attempts != 1 || !errors.Is(err, ErrExhausted) {
			t.Fatalf("budget %d: %d attempts, err %v; want 1 attempt, ErrExhausted", budget, attempts, err)
		}
	}
}

func TestRetryDeadlineAlwaysAttemptsOnce(t *testing.T) {
	// Even an already-expired deadline makes one attempt, so a solo
	// operation (whose first weak attempt must succeed) never sheds.
	f := &flaky{remaining: 0}
	got, err := RetryDeadline[int](nil, -time.Second, f.try)
	if err != nil || got != 42 {
		t.Fatalf("RetryDeadline = (%d, %v), want (42, nil)", got, err)
	}
	attempts := 0
	_, err = RetryDeadline[int](nil, -time.Second, func() (int, bool) { attempts++; return 0, false })
	if attempts != 1 || !errors.Is(err, ErrExhausted) {
		t.Fatalf("expired deadline: %d attempts, err %v; want 1 attempt, ErrExhausted", attempts, err)
	}
}

func TestRetryDeadlineExhaustsUnderPersistentFailure(t *testing.T) {
	start := time.Now()
	_, err := RetryDeadline[int](nil, 10*time.Millisecond, func() (int, bool) { return 0, false })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline overshot wildly: %v", elapsed)
	}
}

func TestProgressHierarchy(t *testing.T) {
	if !NonBlocking.Implies(ObstructionFree) {
		t.Fatal("non-blocking must imply obstruction-free")
	}
	if !StarvationFree.Implies(NonBlocking) {
		t.Fatal("starvation-free must imply non-blocking")
	}
	if ObstructionFree.Implies(NonBlocking) {
		t.Fatal("obstruction-free must not imply non-blocking")
	}
	if !WaitFree.Implies(StarvationFree) {
		t.Fatal("wait-free must imply starvation-free")
	}
}

func TestProgressString(t *testing.T) {
	cases := map[Progress]string{
		ObstructionFree: "obstruction-free",
		NonBlocking:     "non-blocking",
		StarvationFree:  "starvation-free",
		WaitFree:        "wait-free",
		Progress(9):     "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Progress(%d).String() = %q, want %q", p, got, want)
		}
	}
}
