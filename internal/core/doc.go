// Package core implements the paper's primary contribution in a form
// reusable for any concurrent object: the contention-sensitive
// construction of Figure 3, generalized from the stack to an arbitrary
// abortable ("weak") operation.
//
// The building blocks mirror the paper's incremental presentation:
//
//   - a weak operation (§3) is a single attempt that either takes
//     effect and returns a result, or aborts (⊥) with no effect. In Go
//     that is a func() (R, bool) — the comma-ok idiom plays the role
//     of ⊥. Solo attempts must never abort (abortable objects are
//     obstruction-free by construction).
//   - Retry (Figure 2) upgrades a weak operation to a non-blocking one
//     by retrying until success, optionally pacing retries with a
//     contention Manager (§5).
//   - Guard and Do (Figure 3) upgrade a weak operation to a
//     starvation-free, contention-sensitive one: a lock-free shortcut
//     (one CONTENTION read + one weak attempt) serves the
//     contention-free case in a constant number of shared accesses and
//     without the lock; the slow path serializes conflicting
//     operations behind a PidLock — typically lock.RoundRobin over a
//     deadlock-free lock, which is what makes the whole object
//     starvation-free (Theorem 1).
//
// Progress documents the liveness hierarchy the paper walks through
// (§1.2): obstruction-freedom ⊂ non-blocking ⊂ starvation-freedom.
package core
