package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/memory"
)

// Guard carries the shared state of Figure 3's contention-sensitive
// protocol for one concurrent object: the CONTENTION register and the
// lock protecting the slow path. All strong operations of the object
// (e.g. both push and pop of a stack) must share one Guard, because
// CONTENTION is a per-object signal.
//
// The lock is a PidLock; pass lock.NewRoundRobin(deadlockFreeLock, n)
// to obtain the paper's exact Figure 3 (starvation-free over a merely
// deadlock-free lock), or lock.IgnorePid(starvationFreeLock) for the
// simplified variant of the §4 Remark.
type Guard struct {
	contention *memory.Flag
	lk         lock.PidLock

	fast    atomic.Uint64 // operations completed on the shortcut
	slow    atomic.Uint64 // operations that took the lock
	retries atomic.Uint64 // weak attempts consumed inside the slow path
}

// NewGuard returns a Guard over lk with an uninstrumented CONTENTION
// register.
func NewGuard(lk lock.PidLock) *Guard {
	return NewGuardObserved(lk, nil)
}

// NewGuardObserved returns a Guard whose CONTENTION register reports
// every access to obs, so that experiment E1 can count the shortcut's
// shared accesses. A nil obs disables instrumentation.
func NewGuardObserved(lk lock.PidLock, obs memory.Observer) *Guard {
	return &Guard{contention: memory.NewFlagObserved(false, obs), lk: lk}
}

// GuardStats is a snapshot of a Guard's path counters.
type GuardStats struct {
	// Fast is the number of operations completed on the lock-free
	// shortcut (line 02 success).
	Fast uint64
	// Slow is the number of operations that entered the lock-based
	// slow path.
	Slow uint64
	// Retries is the total number of weak attempts consumed inside
	// the slow path's line-08 loop (at least one per slow operation).
	Retries uint64
}

// Stats returns a snapshot of the guard's path counters.
func (g *Guard) Stats() GuardStats {
	return GuardStats{Fast: g.fast.Load(), Slow: g.slow.Load(), Retries: g.retries.Load()}
}

// ResetStats zeroes the path counters (between quiescent phases only).
func (g *Guard) ResetStats() {
	g.fast.Store(0)
	g.slow.Store(0)
	g.retries.Store(0)
}

// Do runs one strong operation according to Figure 3. try is the weak
// operation (line 02/08's weak_push_or_pop): a single attempt that
// returns ok=false to report ⊥. pid is the calling process identity,
// forwarded to the slow-path lock.
//
// Contention-free cost: 1 shared read of CONTENTION plus the accesses
// of one successful weak attempt — six in total for the paper's stack
// (Theorem 1) — and no lock.
func Do[R any](g *Guard, pid int, try func() (R, bool)) R {
	if !g.contention.Read() { // line 01
		if res, ok := try(); ok { // line 02
			g.fast.Add(1)
			return res
		}
	}
	// Slow path: lines 04-13. Lines 04-06 and 10-12 (the FLAG/TURN
	// round-robin and the underlying lock) live inside the PidLock.
	g.slow.Add(1)
	g.lk.Acquire(pid)        // lines 04-06
	g.contention.Write(true) // line 07
	for {                    // line 08
		g.retries.Add(1)
		res, ok := try()
		if ok {
			g.contention.Write(false) // line 09
			g.lk.Release(pid)         // lines 10-12
			return res
		}
		// A failed attempt means some process is concurrently inside
		// a line-02 shortcut; yield so it can finish (the paper's
		// asynchrony assumption makes this a no-op in the model, but
		// a cooperative scheduler needs it).
		runtime.Gosched()
	}
}

// Weak is an abortable object operation keyed by an argument: a single
// attempt of op(arg) that either takes effect (ok=true) or aborts with
// no effect (ok=false, the paper's ⊥). Implementations must guarantee
// that a solo attempt never aborts.
type Weak[A, R any] interface {
	TryOp(arg A) (res R, ok bool)
}

// Sensitive is the contention-sensitive, starvation-free strong object
// built from a Weak object and a Guard — Figure 3 as a reusable
// generic construction.
type Sensitive[A, R any] struct {
	weak  Weak[A, R]
	guard *Guard
}

// NewSensitive builds the strong object over weak, serializing
// conflicting operations behind lk.
func NewSensitive[A, R any](weak Weak[A, R], lk lock.PidLock) *Sensitive[A, R] {
	return &Sensitive[A, R]{weak: weak, guard: NewGuard(lk)}
}

// Guard exposes the underlying guard (for stats and instrumentation).
func (s *Sensitive[A, R]) Guard() *Guard { return s.guard }

// Do executes the strong operation for arg on behalf of pid. It always
// returns a real result, never ⊥ (Lemma 1), and terminates for every
// caller (Lemmas 2-3).
func (s *Sensitive[A, R]) Do(pid int, arg A) R {
	return Do(s.guard, pid, func() (R, bool) { return s.weak.TryOp(arg) })
}

// Progress reports StarvationFree, Theorem 1's guarantee (assuming the
// guard's lock is deadlock-free and wrapped in lock.RoundRobin, or
// itself starvation-free).
func (s *Sensitive[A, R]) Progress() Progress { return StarvationFree }
