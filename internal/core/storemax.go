package core

import "sync/atomic"

// StoreMax atomically raises a to at least v, the lock-free running-
// maximum idiom. The CAS loop converges: a failure means another
// writer published a larger (or equal) maximum, which is progress for
// the aggregate, so the loop is bounded by contention on strictly
// increasing values — not a retry of a failed operation. It lives here
// so the hand-rolled spin exists once, in the one package allowed to
// hand-roll them (see internal/analysis, pass retryloop); callers
// (histogram maxima, combiner batch high-water marks, recovery-latency
// worst cases) stay loop-free.
func StoreMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StoreMaxInt64 is StoreMax for signed words.
func StoreMaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
