package core

import (
	"errors"
	"time"
)

// Manager is a contention manager (§5): a policy deciding how a
// process behaves between failed attempts of a weak operation.
// Implementations live in package cmanager. Managers may be shared by
// several goroutines and must be safe for concurrent use.
type Manager interface {
	// OnAbort is called after the attempt-th consecutive abort of the
	// current operation (attempt starts at 1). The manager may spin,
	// yield or sleep to pace the retry.
	OnAbort(attempt int)
	// OnSuccess is called once when the operation finally succeeds,
	// letting adaptive managers reset their state.
	OnSuccess()
}

// ErrExhausted is returned by the bounded retry variants when the
// budget or deadline ran out before any attempt took effect. It is the
// graceful-degradation escape hatch from Figure 2's unbounded loop:
// under livelock-grade interference a caller with a budget sheds the
// operation (with no effect on the object) instead of spinning forever.
var ErrExhausted = errors.New("core: retry budget exhausted")

// retryLoop is the one retry implementation behind Retry, RetryCounted,
// RetryBudget and RetryDeadline: repeat the weak attempt until it takes
// effect, pacing with m, giving up after budget attempts (0 = never) or
// once deadline passes (zero = never). aborts reports how many attempts
// aborted; err is nil or ErrExhausted.
func retryLoop[R any](m Manager, try func() (R, bool), budget int, deadline time.Time) (res R, aborts int, err error) {
	attempt := 0
	for {
		r, ok := try()
		if ok {
			if m != nil {
				m.OnSuccess()
			}
			return r, attempt, nil
		}
		attempt++
		if budget > 0 && attempt >= budget {
			return res, attempt, ErrExhausted
		}
		if m != nil {
			m.OnAbort(attempt)
		}
		// The deadline is checked after pacing so a sleeping manager
		// cannot overshoot it by more than one OnAbort.
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return res, attempt, ErrExhausted
		}
	}
}

// Retry upgrades a weak operation to a non-blocking one by retrying
// until success — Figure 2's construction:
//
//	repeat res ← weak_op() until res ≠ ⊥
//
// m paces the retries; a nil m reproduces the paper's bare loop.
// Retry never aborts; it returns only when an attempt took effect.
func Retry[R any](m Manager, try func() (R, bool)) R {
	res, _, _ := retryLoop(m, try, 0, time.Time{})
	return res
}

// RetryCounted is Retry instrumented for the E3/E7 experiments: it
// additionally reports how many attempts aborted before success.
func RetryCounted[R any](m Manager, try func() (R, bool)) (res R, aborts int) {
	res, aborts, _ = retryLoop(m, try, 0, time.Time{})
	return res, aborts
}

// RetryBudget is Retry bounded by an attempt budget: after budget
// consecutive aborts (budget >= 1) it gives up and returns
// ErrExhausted with no effect on the object. A budget of 1 is exactly
// one weak attempt — the paper's obstruction-free rung exposed
// directly.
func RetryBudget[R any](m Manager, budget int, try func() (R, bool)) (R, error) {
	if budget < 1 {
		budget = 1
	}
	res, _, err := retryLoop(m, try, budget, time.Time{})
	return res, err
}

// RetryDeadline is Retry bounded by wall-clock time: once d has
// elapsed (measured from the call) the next abort returns ErrExhausted
// with no effect. At least one attempt is always made, so a solo
// operation — whose first weak attempt must succeed — never observes
// the deadline.
func RetryDeadline[R any](m Manager, d time.Duration, try func() (R, bool)) (R, error) {
	res, _, err := retryLoop(m, try, 0, time.Now().Add(d))
	return res, err
}
