package core

// Manager is a contention manager (§5): a policy deciding how a
// process behaves between failed attempts of a weak operation.
// Implementations live in package cmanager. Managers may be shared by
// several goroutines and must be safe for concurrent use.
type Manager interface {
	// OnAbort is called after the attempt-th consecutive abort of the
	// current operation (attempt starts at 1). The manager may spin,
	// yield or sleep to pace the retry.
	OnAbort(attempt int)
	// OnSuccess is called once when the operation finally succeeds,
	// letting adaptive managers reset their state.
	OnSuccess()
}

// Retry upgrades a weak operation to a non-blocking one by retrying
// until success — Figure 2's construction:
//
//	repeat res ← weak_op() until res ≠ ⊥
//
// m paces the retries; a nil m reproduces the paper's bare loop.
// Retry never aborts; it returns only when an attempt took effect.
func Retry[R any](m Manager, try func() (R, bool)) R {
	attempt := 0
	for {
		res, ok := try()
		if ok {
			if m != nil {
				m.OnSuccess()
			}
			return res
		}
		attempt++
		if m != nil {
			m.OnAbort(attempt)
		}
	}
}

// RetryCounted is Retry instrumented for the E3/E7 experiments: it
// additionally reports how many attempts aborted before success.
func RetryCounted[R any](m Manager, try func() (R, bool)) (res R, aborts int) {
	attempt := 0
	for {
		r, ok := try()
		if ok {
			if m != nil {
				m.OnSuccess()
			}
			return r, attempt
		}
		attempt++
		if m != nil {
			m.OnAbort(attempt)
		}
	}
}
