package deque

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// dconserved drives mixed both-end traffic and verifies multiset
// conservation: every pushed value is popped or still present, exactly
// once.
func dconserved(t *testing.T, procs, perProc int,
	push func(pid int, right bool, v uint32) error,
	pop func(pid int, right bool) (uint32, error),
	drain func() []uint32,
) {
	t.Helper()
	popped := make([][]uint32, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := uint32(pid)<<24 | uint32(i)
				right := (pid+i)%2 == 0
				for {
					err := push(pid, right, v)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrFull) {
						t.Errorf("push: %v", err)
						return
					}
					// This side's window is exhausted: pop from the
					// same side to make room.
					if got, err := pop(pid, right); err == nil {
						popped[pid] = append(popped[pid], got)
					} else {
						right = !right // try the other side
					}
				}
				if i%3 == 0 {
					if got, err := pop(pid, !right); err == nil {
						popped[pid] = append(popped[pid], got)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	seen := make(map[uint32]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drain() {
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("value set size = %d, want %d (lost values)", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times (duplicated)", v, n)
		}
	}
}

func TestNonBlockingDequeConserves(t *testing.T) {
	const procs, perProc = 6, 2000
	d := NewNonBlocking(128)
	push := func(_ int, right bool, v uint32) error {
		if right {
			return d.PushRight(v)
		}
		return d.PushLeft(v)
	}
	pop := func(_ int, right bool) (uint32, error) {
		if right {
			return d.PopRight()
		}
		return d.PopLeft()
	}
	dconserved(t, procs, perProc, push, pop, func() []uint32 {
		var out []uint32
		for {
			v, err := d.PopLeft()
			if err != nil {
				return out
			}
			out = append(out, v)
		}
	})
}

func TestSensitiveDequeConserves(t *testing.T) {
	const procs, perProc = 6, 2000
	d := NewSensitive(128, procs)
	push := func(pid int, right bool, v uint32) error {
		if right {
			return d.PushRight(pid, v)
		}
		return d.PushLeft(pid, v)
	}
	pop := func(pid int, right bool) (uint32, error) {
		if right {
			return d.PopRight(pid)
		}
		return d.PopLeft(pid)
	}
	dconserved(t, procs, perProc, push, pop, func() []uint32 {
		var out []uint32
		for {
			v, err := d.PopLeft(0)
			if err != nil {
				return out
			}
			out = append(out, v)
		}
	})
	if st := d.Guard().Stats(); st.Fast+st.Slow == 0 {
		t.Fatal("guard saw no operations")
	}
}

func TestOppositeEndsRarelyInterfere(t *testing.T) {
	// HLM's selling point, echoing the paper's §1.1: operations on
	// opposite ends of a non-nearly-empty deque touch disjoint cells.
	// Keep ~half the window occupied and measure cross-end aborts.
	d := NewAbortable(1024)
	for i := uint32(0); i < 256; i++ {
		if err := d.TryPushRight(i); err != nil {
			t.Fatal(err)
		}
	}
	const opsPerSide = 50000
	var leftAborts, rightAborts atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // right side: push/pop pairs
		defer wg.Done()
		done := 0
		for done < opsPerSide {
			if err := d.TryPushRight(1); errors.Is(err, ErrAborted) {
				rightAborts.Add(1)
				continue
			}
			done++
			_, n := core.RetryCounted(nil, func() (struct{}, bool) {
				_, err := d.TryPopRight()
				return struct{}{}, !errors.Is(err, ErrAborted)
			})
			rightAborts.Add(int64(n))
		}
	}()
	go func() { // left side: pop/push pairs (window stays put)
		defer wg.Done()
		done := 0
		for done < opsPerSide {
			v, err := d.TryPopLeft()
			if errors.Is(err, ErrAborted) {
				leftAborts.Add(1)
				continue
			}
			if errors.Is(err, ErrEmpty) {
				continue
			}
			done++
			_, n := core.RetryCounted(nil, func() (struct{}, bool) {
				err := d.TryPushLeft(v)
				return struct{}{}, !errors.Is(err, ErrAborted)
			})
			leftAborts.Add(int64(n))
		}
	}()
	wg.Wait()
	if a := leftAborts.Load() + rightAborts.Load(); a > opsPerSide/10 {
		t.Fatalf("opposite ends aborted %d times over %d ops/side", a, opsPerSide)
	}
}
