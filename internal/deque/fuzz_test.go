package deque

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

// FuzzDequeVsSpec cross-checks solo runs of the weak deque against the
// sequential spec: byte 2i selects the op kind (mod 4), byte 2i+1 the
// pushed value.
func FuzzDequeVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0, 3, 0})
	f.Add([]byte{1, 9, 1, 8, 1, 7, 3, 0, 3, 0, 0, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 5
		d := NewAbortable(max)
		ref := spec.NewDeque[uint32](max)
		for i := 0; i+1 < len(data); i += 2 {
			v := uint32(data[i+1])
			switch data[i] % 4 {
			case 0:
				err := d.TryPushRight(v)
				ok := ref.PushRight(v)
				if ok != (err == nil) || (!ok && !errors.Is(err, ErrFull)) {
					t.Fatalf("op %d pushr: impl %v, spec %v", i, err, ok)
				}
			case 1:
				err := d.TryPushLeft(v)
				ok := ref.PushLeft(v)
				if ok != (err == nil) || (!ok && !errors.Is(err, ErrFull)) {
					t.Fatalf("op %d pushl: impl %v, spec %v", i, err, ok)
				}
			case 2:
				got, err := d.TryPopRight()
				want, ok := ref.PopRight()
				if ok != (err == nil) || (!ok && !errors.Is(err, ErrEmpty)) || (ok && got != want) {
					t.Fatalf("op %d popr: impl (%d,%v), spec (%d,%v)", i, got, err, want, ok)
				}
			case 3:
				got, err := d.TryPopLeft()
				want, ok := ref.PopLeft()
				if ok != (err == nil) || (!ok && !errors.Is(err, ErrEmpty)) || (ok && got != want) {
					t.Fatalf("op %d popl: impl (%d,%v), spec (%d,%v)", i, got, err, want, ok)
				}
			}
		}
		if d.Len() != ref.Len() {
			t.Fatalf("final length %d, spec %d", d.Len(), ref.Len())
		}
	})
}
