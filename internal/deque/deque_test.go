package deque

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/spec"
)

func TestSoloBothEnds(t *testing.T) {
	d := NewAbortable(8)
	if err := d.TryPushRight(1); err != nil {
		t.Fatal(err)
	}
	if err := d.TryPushRight(2); err != nil {
		t.Fatal(err)
	}
	if err := d.TryPushLeft(3); err != nil {
		t.Fatal(err)
	}
	// Contents: 3 1 2
	got := d.Snapshot()
	want := []uint32{3, 1, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	if v, err := d.TryPopLeft(); err != nil || v != 3 {
		t.Fatalf("PopLeft = (%d, %v), want (3, nil)", v, err)
	}
	if v, err := d.TryPopRight(); err != nil || v != 2 {
		t.Fatalf("PopRight = (%d, %v), want (2, nil)", v, err)
	}
	if v, err := d.TryPopRight(); err != nil || v != 1 {
		t.Fatalf("PopRight = (%d, %v), want (1, nil)", v, err)
	}
	if _, err := d.TryPopLeft(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("PopLeft on empty = %v", err)
	}
	if _, err := d.TryPopRight(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("PopRight on empty = %v", err)
	}
}

func TestWindowDriftFullSemantics(t *testing.T) {
	// The non-circular array: each side is full when its sentinel
	// supply runs out. max=4, middle split: 2 LN cells usable on the
	// left (indices 1..2), 2 RN on the right (3..4)... exactly per
	// spec.Deque.
	d := NewAbortable(4)
	ref := spec.NewDeque[uint32](4)
	// Fill the right side.
	for i := uint32(0); ; i++ {
		err := d.TryPushRight(i)
		ok := ref.PushRight(i)
		if ok != (err == nil) {
			t.Fatalf("push %d: impl %v, spec %v", i, err, ok)
		}
		if !ok {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("expected ErrFull, got %v", err)
			}
			break
		}
	}
	// The left side still has room.
	if err := d.TryPushLeft(99); err != nil {
		t.Fatalf("left push after right-full = %v", err)
	}
	if !ref.PushLeft(99) {
		t.Fatal("spec disagrees on left push")
	}
	// Popping right frees right-side room again.
	if _, err := d.TryPopRight(); err != nil {
		t.Fatal(err)
	}
	ref.PopRight()
	if err := d.TryPushRight(7); err != nil {
		t.Fatalf("push after pop = %v", err)
	}
	ref.PushRight(7)
	if d.Len() != ref.Len() {
		t.Fatalf("Len = %d, spec %d", d.Len(), ref.Len())
	}
}

func TestDifferentialVsSpec(t *testing.T) {
	d := NewAbortable(6)
	ref := spec.NewDeque[uint32](6)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100000; i++ {
		v := rng.Uint32() >> 1
		switch rng.Intn(4) {
		case 0:
			err := d.TryPushRight(v)
			ok := ref.PushRight(v)
			if ok != (err == nil) || (!ok && !errors.Is(err, ErrFull)) {
				t.Fatalf("op %d pushR: impl %v, spec %v", i, err, ok)
			}
		case 1:
			err := d.TryPushLeft(v)
			ok := ref.PushLeft(v)
			if ok != (err == nil) || (!ok && !errors.Is(err, ErrFull)) {
				t.Fatalf("op %d pushL: impl %v, spec %v", i, err, ok)
			}
		case 2:
			got, err := d.TryPopRight()
			want, ok := ref.PopRight()
			if ok != (err == nil) || (!ok && !errors.Is(err, ErrEmpty)) || (ok && got != want) {
				t.Fatalf("op %d popR: impl (%d,%v), spec (%d,%v)", i, got, err, want, ok)
			}
		case 3:
			got, err := d.TryPopLeft()
			want, ok := ref.PopLeft()
			if ok != (err == nil) || (!ok && !errors.Is(err, ErrEmpty)) || (ok && got != want) {
				t.Fatalf("op %d popL: impl (%d,%v), spec (%d,%v)", i, got, err, want, ok)
			}
		}
	}
}

func TestSoloNeverAborts(t *testing.T) {
	d := NewAbortable(8)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40000; i++ {
		var err error
		switch rng.Intn(4) {
		case 0:
			err = d.TryPushRight(uint32(i))
		case 1:
			err = d.TryPushLeft(uint32(i))
		case 2:
			_, err = d.TryPopRight()
		case 3:
			_, err = d.TryPopLeft()
		}
		if errors.Is(err, ErrAborted) {
			t.Fatalf("solo op %d aborted", i)
		}
	}
}

func TestInvariantAlwaysHolds(t *testing.T) {
	// After every solo op the array must match LN+ Data* RN+.
	d := NewAbortable(5)
	rng := rand.New(rand.NewSource(3))
	check := func() {
		state := 0 // 0: in LN prefix, 1: in data, 2: in RN suffix
		for i := 0; i <= d.max+1; i++ {
			_, kind := d.kindAt(i)
			switch kind {
			case kindLN:
				if state != 0 {
					t.Fatalf("LN after non-LN at %d", i)
				}
			case kindData:
				if state == 2 {
					t.Fatalf("data after RN at %d", i)
				}
				state = 1
			case kindRN:
				state = 2
			}
		}
		if _, kind := d.kindAt(0); kind != kindLN {
			t.Fatal("left sentinel not LN")
		}
		if _, kind := d.kindAt(d.max + 1); kind != kindRN {
			t.Fatal("right sentinel not RN")
		}
	}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(4) {
		case 0:
			d.TryPushRight(uint32(i))
		case 1:
			d.TryPushLeft(uint32(i))
		case 2:
			d.TryPopRight()
		case 3:
			d.TryPopLeft()
		}
		check()
	}
}

func TestAccessCountsSolo(t *testing.T) {
	// Not constant like the stack's 5 — the oracle scan costs extra —
	// but bounded and hint-stabilized: measure and pin the steady
	// state so regressions surface.
	var st memory.Stats
	d := NewAbortableObserved(8, &st)
	if err := d.TryPushRight(1); err != nil {
		t.Fatal(err)
	}
	st.Reset()
	if err := d.TryPushRight(2); err != nil {
		t.Fatal(err)
	}
	pushCost := st.Total()
	if pushCost < 6 || pushCost > 10 {
		t.Fatalf("steady-state TryPushRight = %d accesses, want 6..10 (%+v)", pushCost, st.Snapshot())
	}
	st.Reset()
	if _, err := d.TryPopRight(); err != nil {
		t.Fatal(err)
	}
	popCost := st.Total()
	if popCost < 6 || popCost > 10 {
		t.Fatalf("steady-state TryPopRight = %d accesses, want 6..10 (%+v)", popCost, st.Snapshot())
	}
}

func TestCapacityOne(t *testing.T) {
	d := NewAbortable(1)
	// Middle split with max=1: no usable LN cells → left always full.
	if err := d.TryPushLeft(1); !errors.Is(err, ErrFull) {
		t.Fatalf("pushLeft on max=1 = %v, want ErrFull", err)
	}
	if err := d.TryPushRight(5); err != nil {
		t.Fatal(err)
	}
	if err := d.TryPushRight(6); !errors.Is(err, ErrFull) {
		t.Fatalf("second pushRight = %v, want ErrFull", err)
	}
	// Both ends can pop the single element.
	if v, err := d.TryPopLeft(); err != nil || v != 5 {
		t.Fatalf("PopLeft = (%d, %v)", v, err)
	}
}

func TestConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAbortable(0) did not panic")
		}
	}()
	NewAbortable(0)
}

func TestProgressLabels(t *testing.T) {
	if NewAbortable(2).Progress() != core.ObstructionFree {
		t.Error("Abortable label")
	}
	if NewNonBlocking(2).Progress() != core.NonBlocking {
		t.Error("NonBlocking label")
	}
	if NewSensitive(2, 2).Progress() != core.StarvationFree {
		t.Error("Sensitive label")
	}
}

func TestTowersSolo(t *testing.T) {
	nb := NewNonBlocking(4)
	if err := nb.PushRight(1); err != nil {
		t.Fatal(err)
	}
	if err := nb.PushLeft(2); err != nil {
		t.Fatal(err)
	}
	if v, err := nb.PopLeft(); err != nil || v != 2 {
		t.Fatalf("PopLeft = (%d, %v)", v, err)
	}
	if v, err := nb.PopRight(); err != nil || v != 1 {
		t.Fatalf("PopRight = (%d, %v)", v, err)
	}

	s := NewSensitive(4, 2)
	if err := s.PushRight(0, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := s.PopLeft(1); err != nil || v != 7 {
		t.Fatalf("strong PopLeft = (%d, %v)", v, err)
	}
	if st := s.Guard().Stats(); st.Slow != 0 {
		t.Fatalf("solo strong ops took the slow path %d times", st.Slow)
	}
}
