package deque

import (
	"errors"

	"repro/internal/core"
	"repro/internal/memory"
)

// Sentinel results of the total deque operations.
var (
	// ErrFull is returned by a push whose side of the array has no
	// sentinel cells left (the window has slid against that edge).
	ErrFull = errors.New("deque: full on this side")
	// ErrEmpty is returned by a pop on an empty deque.
	ErrEmpty = errors.New("deque: empty")
	// ErrAborted is the paper's ⊥: the weak attempt detected
	// interference and had no effect.
	ErrAborted = errors.New("deque: aborted by contention")
)

// Cell encoding: one 64-bit word per cell, [kind:2][value:32][ctr:30].
// The counter is HLM's version tag (§2.2's ABA defence): every CAS
// bumps it, so a cell word never repeats within 2^30 writes of the
// same cell.
const (
	kindLN   = uint64(0)
	kindRN   = uint64(1)
	kindData = uint64(2)

	ctrBits   = 30
	ctrMask   = 1<<ctrBits - 1
	valShift  = ctrBits
	kindShift = ctrBits + 32
)

func pack(kind uint64, value uint32, ctr uint64) uint64 {
	return kind<<kindShift | uint64(value)<<valShift | (ctr & ctrMask)
}

func unpack(w uint64) (kind uint64, value uint32, ctr uint64) {
	return w >> kindShift, uint32(w >> valShift), w & ctrMask
}

// bumped returns the same cell content with the version counter
// incremented — HLM's "logically idle" first CAS.
func bumped(w uint64) uint64 {
	kind, value, ctr := unpack(w)
	return pack(kind, value, ctr+1)
}

// Abortable is the HLM array deque as an abortable object (values are
// uint32; the cells are packed single words as in the original).
// Cells 0 and max+1 are permanent LN/RN sentinels.
type Abortable struct {
	cells *memory.Words
	max   int
	// hint is a non-authoritative guess of the left end of the RN
	// region, updated after successful right-side operations (and a
	// mirror for the left side). It only shortens the oracle scan;
	// correctness never depends on it.
	rightHint *memory.Word
	leftHint  *memory.Word
}

// NewAbortable returns a deque of capacity k >= 1 with the window
// split in the middle (matching spec.NewDeque).
func NewAbortable(k int) *Abortable { return NewAbortableObserved(k, nil) }

// NewAbortableObserved returns an instrumented deque (nil obs disables
// instrumentation).
func NewAbortableObserved(k int, obs memory.Observer) *Abortable {
	if k < 1 {
		panic("deque: capacity must be >= 1")
	}
	numLN := k/2 + 1 // cells 0..numLN-1 start as LN
	d := &Abortable{
		max:       k,
		rightHint: memory.NewWordObserved(uint64(numLN), obs),
		leftHint:  memory.NewWordObserved(uint64(numLN-1), obs),
	}
	d.cells = memory.NewWordsInit(k+2, func(i int) uint64 {
		if i < numLN {
			return pack(kindLN, 0, 0)
		}
		return pack(kindRN, 0, 0)
	}, obs)
	return d
}

// Capacity returns the size of the data region.
func (d *Abortable) Capacity() int { return d.max }

// kindAt reads cell i and returns its word and kind.
func (d *Abortable) kindAt(i int) (w uint64, kind uint64) {
	w = d.cells.At(i).Read()
	kind, _, _ = unpack(w)
	return w, kind
}

// findRightBoundary returns an index k such that A[k] was RN and
// A[k-1] was not RN at the respective reads, starting from the hint.
// ok=false means the scan raced interference and the caller should
// abort.
func (d *Abortable) findRightBoundary() (k int, ok bool) {
	k = int(d.rightHint.Read())
	if k < 1 {
		k = 1
	}
	if k > d.max+1 {
		k = d.max + 1
	}
	for steps := 0; steps <= 2*(d.max+2); steps++ {
		_, kind := d.kindAt(k)
		if kind == kindRN {
			if k == 1 {
				return 1, true // A[0] is a permanent LN
			}
			_, prev := d.kindAt(k - 1)
			if prev != kindRN {
				return k, true
			}
			k-- // RN region extends further left
		} else {
			if k == d.max+1 {
				return 0, false // sentinel must be RN; racing writes
			}
			k++
		}
	}
	return 0, false
}

// findLeftBoundary returns j such that A[j] was LN and A[j+1] was not
// LN at the respective reads.
func (d *Abortable) findLeftBoundary() (j int, ok bool) {
	j = int(d.leftHint.Read())
	if j < 0 {
		j = 0
	}
	if j > d.max {
		j = d.max
	}
	for steps := 0; steps <= 2*(d.max+2); steps++ {
		_, kind := d.kindAt(j)
		if kind == kindLN {
			if j == d.max {
				return d.max, true // A[max+1] is a permanent RN
			}
			_, next := d.kindAt(j + 1)
			if next != kindLN {
				return j, true
			}
			j++
		} else {
			if j == 0 {
				return 0, false
			}
			j--
		}
	}
	return 0, false
}

// TryPushRight makes one attempt to append v on the right: one
// iteration of HLM's rightpush loop. nil on success, ErrFull if the
// right sentinel supply is exhausted (the LN⁺data*RN⁺ invariant makes
// the single A[max] read a linearizable full test), ErrAborted on
// interference. Solo attempts never abort.
func (d *Abortable) TryPushRight(v uint32) error {
	k, ok := d.findRightBoundary()
	if !ok {
		return ErrAborted
	}
	if k == d.max+1 {
		if _, kind := d.kindAt(d.max); kind != kindRN {
			return ErrFull
		}
		return ErrAborted // boundary moved since the scan
	}
	prev := d.cells.At(k - 1).Read()
	if kind, _, _ := unpack(prev); kind == kindRN {
		return ErrAborted
	}
	cur := d.cells.At(k).Read()
	if kind, _, _ := unpack(cur); kind != kindRN {
		return ErrAborted
	}
	// HLM's two-step commit: bump the left neighbour (no logical
	// change) to pin it, then install the value. Aborting between the
	// CASes is harmless.
	if !d.cells.At(k-1).CAS(prev, bumped(prev)) {
		return ErrAborted
	}
	_, _, ctr := unpack(cur)
	if !d.cells.At(k).CAS(cur, pack(kindData, v, ctr+1)) {
		return ErrAborted
	}
	d.rightHint.Write(uint64(k + 1))
	return nil
}

// TryPopRight makes one attempt to remove the rightmost value.
func (d *Abortable) TryPopRight() (uint32, error) {
	k, ok := d.findRightBoundary()
	if !ok {
		return 0, ErrAborted
	}
	next := d.cells.At(k).Read()
	if kind, _, _ := unpack(next); kind != kindRN {
		return 0, ErrAborted
	}
	cur := d.cells.At(k - 1).Read()
	kind, value, ctr := unpack(cur)
	switch kind {
	case kindRN:
		return 0, ErrAborted // stale scan
	case kindLN:
		// Candidate empty: prove the (LN, RN) pair held at one
		// instant by re-reading A[k].
		if d.cells.At(k).Read() == next {
			return 0, ErrEmpty
		}
		return 0, ErrAborted
	}
	// Two-step commit: pin A[k] (stays RN, counter bumped), then take
	// the value by writing RN over it.
	if !d.cells.At(k).CAS(next, bumped(next)) {
		return 0, ErrAborted
	}
	if !d.cells.At(k-1).CAS(cur, pack(kindRN, 0, ctr+1)) {
		return 0, ErrAborted // interference; no logical change happened
	}
	d.rightHint.Write(uint64(k - 1))
	return value, nil
}

// TryPushLeft makes one attempt to prepend v on the left (mirror of
// TryPushRight).
func (d *Abortable) TryPushLeft(v uint32) error {
	j, ok := d.findLeftBoundary()
	if !ok {
		return ErrAborted
	}
	if j == 0 {
		if _, kind := d.kindAt(1); kind != kindLN {
			return ErrFull
		}
		return ErrAborted
	}
	next := d.cells.At(j + 1).Read()
	if kind, _, _ := unpack(next); kind == kindLN {
		return ErrAborted
	}
	cur := d.cells.At(j).Read()
	if kind, _, _ := unpack(cur); kind != kindLN {
		return ErrAborted
	}
	if !d.cells.At(j+1).CAS(next, bumped(next)) {
		return ErrAborted
	}
	_, _, ctr := unpack(cur)
	if !d.cells.At(j).CAS(cur, pack(kindData, v, ctr+1)) {
		return ErrAborted
	}
	d.leftHint.Write(uint64(j - 1))
	return nil
}

// TryPopLeft makes one attempt to remove the leftmost value (mirror of
// TryPopRight).
func (d *Abortable) TryPopLeft() (uint32, error) {
	j, ok := d.findLeftBoundary()
	if !ok {
		return 0, ErrAborted
	}
	prev := d.cells.At(j).Read()
	if kind, _, _ := unpack(prev); kind != kindLN {
		return 0, ErrAborted
	}
	cur := d.cells.At(j + 1).Read()
	kind, value, ctr := unpack(cur)
	switch kind {
	case kindLN:
		return 0, ErrAborted
	case kindRN:
		if d.cells.At(j).Read() == prev {
			return 0, ErrEmpty
		}
		return 0, ErrAborted
	}
	if !d.cells.At(j).CAS(prev, bumped(prev)) {
		return 0, ErrAborted
	}
	if !d.cells.At(j+1).CAS(cur, pack(kindLN, 0, ctr+1)) {
		return 0, ErrAborted
	}
	d.leftHint.Write(uint64(j + 1))
	return value, nil
}

// Len returns the number of elements; quiescent states only.
func (d *Abortable) Len() int {
	n := 0
	for i := 1; i <= d.max; i++ {
		if _, kind := d.kindAt(i); kind == kindData {
			n++
		}
	}
	return n
}

// Snapshot returns the contents left to right; quiescent states only.
func (d *Abortable) Snapshot() []uint32 {
	var out []uint32
	for i := 1; i <= d.max; i++ {
		w, kind := d.kindAt(i)
		if kind == kindData {
			_, v, _ := unpack(w)
			out = append(out, v)
		}
	}
	return out
}

// Progress classifies the weak deque (abortable, hence on the
// obstruction-free rung — fittingly, since HLM's original is the
// algorithm obstruction-freedom was defined for).
func (d *Abortable) Progress() core.Progress { return core.ObstructionFree }
