package deque

import (
	"repro/internal/core"
	"repro/internal/lock"
)

// NonBlocking is Figure 2 applied to the deque: retry each weak
// operation until non-⊥. This is precisely the "boosting" step the
// paper's §1.2 describes for obstruction-free algorithms.
type NonBlocking struct {
	weak   *Abortable
	m      core.Manager
	budget int
}

// NewNonBlocking returns a non-blocking deque of capacity k with the
// bare retry loop.
func NewNonBlocking(k int) *NonBlocking {
	return NewNonBlockingFrom(NewAbortable(k), nil)
}

// NewNonBlockingFrom builds the retry construction over an existing
// weak deque, pacing retries with m (nil for the bare loop).
func NewNonBlockingFrom(weak *Abortable, m core.Manager) *NonBlocking {
	return &NonBlocking{weak: weak, m: m}
}

// SetRetryPolicy replaces the contention manager and sets an attempt
// budget (0 = unbounded); with a budget, a fully aborted operation
// returns core.ErrExhausted with no effect. Call at quiescence.
func (d *NonBlocking) SetRetryPolicy(m core.Manager, budget int) {
	d.m, d.budget = m, budget
}

// RetryPolicy reports the current contention manager and attempt
// budget (tests and diagnostics).
func (d *NonBlocking) RetryPolicy() (core.Manager, int) { return d.m, d.budget }

func (d *NonBlocking) retryPush(try func() error) error {
	attempt := func() (error, bool) {
		err := try()
		return err, err != ErrAborted
	}
	if d.budget > 0 {
		err, rerr := core.RetryBudget(d.m, d.budget, attempt)
		if rerr != nil {
			return rerr
		}
		return err
	}
	return core.Retry(d.m, attempt)
}

func (d *NonBlocking) retryPop(try func() (uint32, error)) (uint32, error) {
	type res struct {
		v   uint32
		err error
	}
	attempt := func() (res, bool) {
		v, err := try()
		return res{v, err}, err != ErrAborted
	}
	if d.budget > 0 {
		r, rerr := core.RetryBudget(d.m, d.budget, attempt)
		if rerr != nil {
			return r.v, rerr
		}
		return r.v, r.err
	}
	r := core.Retry(d.m, attempt)
	return r.v, r.err
}

// PushRight appends v on the right; nil or ErrFull.
func (d *NonBlocking) PushRight(v uint32) error {
	return d.retryPush(func() error { return d.weak.TryPushRight(v) })
}

// PushLeft prepends v on the left; nil or ErrFull.
func (d *NonBlocking) PushLeft(v uint32) error {
	return d.retryPush(func() error { return d.weak.TryPushLeft(v) })
}

// PopRight removes the rightmost value; the value or ErrEmpty.
func (d *NonBlocking) PopRight() (uint32, error) { return d.retryPop(d.weak.TryPopRight) }

// PopLeft removes the leftmost value; the value or ErrEmpty.
func (d *NonBlocking) PopLeft() (uint32, error) { return d.retryPop(d.weak.TryPopLeft) }

// Progress reports NonBlocking.
func (d *NonBlocking) Progress() core.Progress { return core.NonBlocking }

// Sensitive is Figure 3 applied to the deque: all four operations
// share one guard (CONTENTION is per object), making the deque
// linearizable, starvation-free, and contention-sensitive.
type Sensitive struct {
	weak  *Abortable
	guard *core.Guard
}

// NewSensitive returns the paper's configuration for n processes: a
// fresh weak deque of capacity k behind a round-robin-wrapped
// test-and-set lock.
func NewSensitive(k, n int) *Sensitive {
	return NewSensitiveFrom(NewAbortable(k), lock.NewRoundRobin(lock.NewTAS(), n))
}

// NewSensitiveFrom builds Figure 3 over an existing weak deque and
// PidLock.
func NewSensitiveFrom(weak *Abortable, lk lock.PidLock) *Sensitive {
	return &Sensitive{weak: weak, guard: core.NewGuard(lk)}
}

func (d *Sensitive) strongPush(pid int, try func() error) error {
	return core.Do(d.guard, pid, func() (error, bool) {
		err := try()
		return err, err != ErrAborted
	})
}

func (d *Sensitive) strongPop(pid int, try func() (uint32, error)) (uint32, error) {
	type res struct {
		v   uint32
		err error
	}
	r := core.Do(d.guard, pid, func() (res, bool) {
		v, err := try()
		return res{v, err}, err != ErrAborted
	})
	return r.v, r.err
}

// PushRight appends v on the right; never aborts.
func (d *Sensitive) PushRight(pid int, v uint32) error {
	return d.strongPush(pid, func() error { return d.weak.TryPushRight(v) })
}

// PushLeft prepends v on the left; never aborts.
func (d *Sensitive) PushLeft(pid int, v uint32) error {
	return d.strongPush(pid, func() error { return d.weak.TryPushLeft(v) })
}

// PopRight removes the rightmost value; never aborts.
func (d *Sensitive) PopRight(pid int) (uint32, error) {
	return d.strongPop(pid, d.weak.TryPopRight)
}

// PopLeft removes the leftmost value; never aborts.
func (d *Sensitive) PopLeft(pid int) (uint32, error) {
	return d.strongPop(pid, d.weak.TryPopLeft)
}

// Guard exposes the fast/slow-path counters.
func (d *Sensitive) Guard() *core.Guard { return d.guard }

// Progress reports StarvationFree (Theorem 1 over the weak deque).
func (d *Sensitive) Progress() core.Progress { return core.StarvationFree }
