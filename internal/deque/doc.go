// Package deque implements the bounded double-ended queue family,
// extending the reproduction to the object the paper's progress
// hierarchy was originally defined on: obstruction-freedom was
// introduced with "double-ended queues as an example" (Herlihy,
// Luchangco & Moir, ICDCS'03 — the paper's reference [8]).
//
// Abortable is the HLM array deque recast as an abortable object in
// the sense of the paper's §1.2: each operation makes a single attempt
// of HLM's retry loop and returns ⊥ on any interference, taking no
// logical effect (the attempt's first CAS only bumps a version
// counter, so aborting after it is harmless). Solo attempts never
// abort, and — HLM's selling point, echoing §1.1's non-interference
// motivation — operations on opposite ends interfere only when the
// deque is nearly empty, because they touch disjoint cells otherwise.
//
// The array is non-circular: cells are LN sentinels on the left, data
// in the middle, RN sentinels on the right, with the invariant
// LN⁺ data* RN⁺ at every instant. A push consumes a sentinel of its
// side and a pop returns one, so each side reports full when its own
// sentinel supply runs out (the data window slides; see spec.Deque
// for the exact sequential semantics; HLM's circular variant with DN
// markers lifts this at significant algorithmic cost and is out of
// scope).
//
// On top of the weak deque the package assembles the usual tower:
// NonBlocking (Figure 2) and Sensitive (Figure 3), which — composed
// over an obstruction-free-born algorithm — realize exactly the
// boosting story of the paper's §1.2/§5.
package deque
