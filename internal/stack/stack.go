package stack

import "errors"

// The paper's total operations never block: on a full or empty stack
// they return a value rather than waiting (§1.1). Weak operations may
// additionally abort. These sentinels encode the three outcomes.
var (
	// ErrFull is returned by push on a full stack (the paper's
	// "full" result, line 03 of Figure 1).
	ErrFull = errors.New("stack: full")
	// ErrEmpty is returned by pop on an empty stack (the paper's
	// "empty" result, line 10 of Figure 1).
	ErrEmpty = errors.New("stack: empty")
	// ErrAborted is the paper's ⊥: the weak operation detected
	// interference and had no effect. Only Try* operations return it;
	// strong operations never do (Lemma 1).
	ErrAborted = errors.New("stack: aborted by contention")
)

// Strong is the interface of total, never-aborting stacks whose
// operations take the calling process identity (needed by the
// starvation-free slow path). Push returns nil or ErrFull; Pop returns
// the popped value or ErrEmpty.
type Strong[T any] interface {
	Push(pid int, v T) error
	Pop(pid int) (T, error)
}

// Weak is the interface of abortable stacks: single attempts that may
// return ErrAborted, in which case the operation had no effect and may
// be retried.
type Weak[T any] interface {
	TryPush(v T) error
	TryPop() (T, error)
}
