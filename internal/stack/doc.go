// Package stack implements the concurrent bounded stack family that
// the paper develops incrementally (§3-§4), plus the baselines its
// argument is measured against:
//
//   - Abortable[T] (Figure 1) — the abortable stack, a simplified
//     version of Shafiei's non-blocking array stack: TryPush/TryPop
//     are single attempts that either take effect or abort (⊥) with
//     no effect; solo attempts never abort. Boxed backend for any T.
//   - Packed — the same algorithm on a single bit-packed 64-bit word
//     per register (uint32 values), matching the paper's machine
//     model word-for-word; used by the ablation benchmarks.
//   - NonBlocking[T] (Figure 2) — retry the weak operation until it
//     succeeds; at least one concurrent operation always terminates.
//   - Sensitive[T] (Figure 3) — the contention-sensitive,
//     starvation-free stack: lock-free shortcut in contention-free
//     runs (six shared-memory accesses, no lock), a single lock under
//     contention.
//   - LockBased[T] — the traditional fully lock-based implementation
//     (§1.1) over any lock.
//   - Treiber[T] — the classic unbounded lock-free linked stack, the
//     standard non-blocking comparator.
//   - Naive[T] — a deliberately ABA-broken CAS stack (§2.2's cautionary
//     tale) used only by experiment E8 and the model checker.
//
// All stacks are linearizable (checked by internal/linearizability)
// except Naive, whose purpose is to fail those checks.
package stack
