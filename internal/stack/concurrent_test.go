package stack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/lock"
)

// stressN scales a stress-test iteration budget: the full budget by
// default, a twentieth (min 100) under -short so `go test -short`
// finishes fast (the CI race job runs short; full budgets remain the
// local default).
func stressN(full int) int {
	if testing.Short() {
		if full /= 20; full < 100 {
			full = 100
		}
	}
	return full
}

// conserved drives producers and consumers against pid-aware push/pop
// functions and verifies multiset conservation: every value pushed is
// popped or left on the stack, exactly once.
func conserved(t *testing.T, procs, perProc int,
	push func(pid int, v uint64) error,
	pop func(pid int) (uint64, error),
	drain func() []uint64,
) {
	t.Helper()
	var wg sync.WaitGroup
	popped := make([][]uint64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := uint64(pid)<<32 | uint64(i)
				for {
					err := push(pid, v)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrFull) {
						t.Errorf("push = %v", err)
						return
					}
					// Full: pop one to make room.
					if got, err := pop(pid); err == nil {
						popped[pid] = append(popped[pid], got)
					}
				}
				if i%3 == 0 {
					if got, err := pop(pid); err == nil {
						popped[pid] = append(popped[pid], got)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drain() {
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("value set size = %d, want %d (lost values)", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times (duplicated)", v, n)
		}
	}
}

func TestSensitiveConserves(t *testing.T) {
	procs, perProc, k := 8, stressN(2000), 64
	s := NewSensitive[uint64](k, procs)
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
	st := s.Guard().Stats()
	if st.Fast+st.Slow == 0 {
		t.Fatal("guard saw no operations")
	}
}

func TestSensitiveWithStarvationFreeLockConserves(t *testing.T) {
	// The §4 Remark variant: a starvation-free lock, no FLAG/TURN.
	procs, perProc, k := 6, stressN(1500), 32
	s := NewSensitiveFrom[uint64](NewAbortable[uint64](k), lock.IgnorePid(lock.NewTicket()))
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestNonBlockingConserves(t *testing.T) {
	procs, perProc, k := 8, stressN(2000), 64
	s := NewNonBlocking[uint64](k)
	conserved(t, procs, perProc,
		func(_ int, v uint64) error { return s.Push(v) },
		func(_ int) (uint64, error) { return s.Pop() },
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop()
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestNonBlockingPackedConserves(t *testing.T) {
	// The packed backend under the Figure 2 construction. Values must
	// fit 32 bits, so shrink the id encoding.
	procs, perProc, k := 4, stressN(1500), 32
	s := NewNonBlockingFrom[uint32](NewPacked(k), nil)
	var wg sync.WaitGroup
	popped := make([][]uint32, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := uint32(pid)<<24 | uint32(i)
				for {
					err := s.Push(v)
					if err == nil {
						break
					}
					if got, err := s.Pop(); err == nil {
						popped[pid] = append(popped[pid], got)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint32]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for {
		v, err := s.Pop()
		if err != nil {
			break
		}
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("value set size = %d, want %d", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times", v, n)
		}
	}
}

func TestTreiberConserves(t *testing.T) {
	procs, perProc := 8, stressN(3000)
	s := NewTreiber[uint64]()
	conserved(t, procs, perProc,
		func(_ int, v uint64) error { return s.Push(v) },
		func(_ int) (uint64, error) { return s.Pop() },
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop()
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestLockBasedConserves(t *testing.T) {
	procs, perProc, k := 8, stressN(2000), 64
	s := NewLockBasedWith[uint64](k, lock.NewRoundRobin(lock.NewTAS(), procs))
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestSensitiveFastPathDominatesWhenSolo(t *testing.T) {
	s := NewSensitive[int](16, 4)
	for i := 0; i < 1000; i++ {
		if err := s.Push(0, i%10); err != nil && !errors.Is(err, ErrFull) {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := s.Pop(0); err != nil && !errors.Is(err, ErrEmpty) {
				t.Fatal(err)
			}
		}
	}
	st := s.Guard().Stats()
	if st.Slow != 0 {
		t.Fatalf("solo run took the slow path %d times", st.Slow)
	}
}

func TestTreiberUnderSensitiveConstruction(t *testing.T) {
	// Treiber exposes the weak interface, so Figure 3 composes with it
	// — an unbounded contention-sensitive stack.
	procs, perProc := 6, stressN(2000)
	s := NewSensitiveFrom[uint64](NewTreiber[uint64](), lock.NewRoundRobin(lock.NewTTAS(), procs))
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestNonBlockingCountedReportsAborts(t *testing.T) {
	procs, perProc, k := 8, stressN(1000), 8
	s := NewNonBlocking[uint64](k)
	var wg sync.WaitGroup
	var totalAborts int64
	var mu sync.Mutex
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < perProc; i++ {
				_, a := s.PushCounted(uint64(i))
				local += int64(a)
				_, _, a2 := s.PopCounted()
				local += int64(a2)
			}
			mu.Lock()
			totalAborts += local
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	// With 8 procs hammering a tiny stack there must be interference.
	if totalAborts == 0 {
		t.Log("warning: no aborts observed (machine too serial?); counts still consistent")
	}
}
