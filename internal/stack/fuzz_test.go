package stack

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

// interpretOps decodes a fuzz byte string into a solo op sequence and
// cross-checks a weak stack against the sequential spec. Byte 2i
// selects push (even) or pop (odd); byte 2i+1 is the pushed value.
func interpretOps(t *testing.T, data []byte, k int, tryPush func(uint32) error, tryPop func() (uint32, error)) {
	t.Helper()
	ref := spec.NewStack[uint32](k)
	for i := 0; i+1 < len(data); i += 2 {
		if data[i]%2 == 0 {
			v := uint32(data[i+1])
			err := tryPush(v)
			if ref.Push(v) {
				if err != nil {
					t.Fatalf("op %d: push(%d) = %v, spec accepted", i, v, err)
				}
			} else if !errors.Is(err, ErrFull) {
				t.Fatalf("op %d: push(%d) = %v, spec reports full", i, v, err)
			}
		} else {
			v, err := tryPop()
			want, ok := ref.Pop()
			if ok {
				if err != nil || v != want {
					t.Fatalf("op %d: pop = (%d, %v), spec has %d", i, v, err, want)
				}
			} else if !errors.Is(err, ErrEmpty) {
				t.Fatalf("op %d: pop = (%d, %v), spec reports empty", i, v, err)
			}
		}
	}
}

func FuzzAbortableVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 1, 0, 0, 8, 0, 7, 0, 6, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewAbortable[uint32](k)
		interpretOps(t, data, k,
			s.TryPush,
			s.TryPop)
	})
}

func FuzzPackedVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0})
	f.Add([]byte{1, 0, 0, 3, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewPacked(k)
		interpretOps(t, data, k,
			s.TryPush,
			s.TryPop)
	})
}

func FuzzSensitiveVsSpec(f *testing.F) {
	f.Add([]byte{0, 5, 1, 0, 0, 6, 0, 7, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewSensitive[uint32](k, 1)
		interpretOps(t, data, k,
			func(v uint32) error { return s.Push(0, v) },
			func() (uint32, error) { return s.Pop(0) })
	})
}

func FuzzCombiningVsSpec(f *testing.F) {
	// Drive the contended entry points: a solo run of Push/Pop never
	// leaves the fast path (covered by TestCombiningMatchesSpecSolo),
	// so this target forces every op through publish + combine.
	f.Add([]byte{0, 5, 1, 0, 0, 6, 0, 7, 1, 0, 1, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewCombining[uint32](k, 1)
		interpretOps(t, data, k,
			func(v uint32) error { return s.PushContended(0, v) },
			func() (uint32, error) { return s.PopContended(0) })
	})
}

func FuzzTreiberPooledVsSpec(f *testing.F) {
	// Solo cross-check of the recycled-node stack against the spec: the
	// single-pid pool is LIFO, so every pop's node returns on the very
	// next push — maximum same-address reuse pressure on the head tag.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 1, 0, 0, 8, 1, 0, 0, 7, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewTreiberPooled(1)
		interpretOps(t, data, 1<<30, // effectively unbounded
			func(v uint32) error { return s.TryPush(0, uint64(v)) },
			func() (uint32, error) { v, err := s.TryPop(0); return uint32(v), err })
	})
}

func FuzzAbortablePooledVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{1, 0, 0, 3, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewAbortablePooled(k, 1)
		interpretOps(t, data, k,
			func(v uint32) error { return s.TryPush(0, uint64(v)) },
			func() (uint32, error) { v, err := s.TryPop(0); return uint32(v), err })
	})
}

// The cross-backend lockstep fuzzers live at the repo root now
// (FuzzStackBackendsAgree in the public repro_test package): they
// iterate repro.Catalog() instead of enumerating backends by hand, so
// every exported backend — including the internal variants' public
// faces — is replayed against the spec from one list. The per-backend
// *VsSpec targets above stay here to keep the internal-only packed and
// pooled variants covered solo.
