package stack

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// pTopRec is the pooled content of the TOP register; pCellRec of one
// STACK[x] register. Fields are atomics: a stale reader may overlap a
// recycler rewriting the record (the snapshot is then discarded by the
// validation re-read, but the accesses must be race-free).
type pTopRec struct {
	index atomic.Uint64
	value atomic.Uint64
	seq   atomic.Uint64
}

type pCellRec struct {
	value atomic.Uint64
	seq   atomic.Uint64
}

// topSnap / cellSnap are validated local copies of a record — the
// pooled equivalent of the boxed backend's immutable *topRec/*cellRec.
type topSnap struct {
	index int
	value uint64
	seq   uint64
}

type cellSnap struct {
	value uint64
	seq   uint64
}

// AbortablePooled is the paper's Figure 1 stack over pooled, tagged
// registers: the third backend next to boxed (Abortable) and packed
// (Packed). Each register holds a 〈handle, seqnb〉 word; a successful
// CAS retires the replaced record to the pool, and the next operation
// recycles it. Because a recycled record's fields are rewritten while
// stale readers may still hold its handle, every dereference goes
// through a validated snapshot: read the register word, copy the
// record's fields, re-read the word — if it is unchanged the record
// was not retired in between (retirement requires a successful CAS,
// which advances the tag), so the copy equals what the boxed backend's
// immutable record would have contained. The snapshot costs one extra
// shared read per register read; in exchange the hot path allocates
// nothing (experiment E17).
//
// Values are uint64 (the record fields must be atomics; compare the
// packed backend's uint32 restriction). Operations take the calling
// pid for the pool's per-pid free lists.
type AbortablePooled struct {
	top   *memory.TaggedRef[pTopRec]
	cells *memory.TaggedRefs[pCellRec]
	tpool *memory.Pool[pTopRec]
	cpool *memory.Pool[pCellRec]
	k     int
}

// NewAbortablePooled returns a pooled abortable stack of capacity
// k >= 1 for procs processes (pids in [0, procs)).
func NewAbortablePooled(k, procs int) *AbortablePooled {
	return NewAbortablePooledObserved(k, procs, nil)
}

// NewAbortablePooledObserved returns a pooled abortable stack whose
// every register access (including snapshot validation re-reads) is
// reported to obs first (nil disables instrumentation).
func NewAbortablePooledObserved(k, procs int, obs memory.Observer) *AbortablePooled {
	if k < 1 {
		panic("stack: capacity must be >= 1")
	}
	s := &AbortablePooled{
		tpool: memory.NewPool[pTopRec](procs, nil),
		cpool: memory.NewPool[pCellRec](procs, nil),
		k:     k,
	}
	// TOP = 〈0, ⊥, 0〉; STACK[0] is the dummy 〈⊥, -1〉; STACK[1..k] are
	// 〈⊥, 0〉 — the same initial state as the boxed backend.
	th := s.tpool.Get(0)
	s.top = memory.NewTaggedRefObserved(s.tpool, memory.PackTagged(th, 0), obs)
	s.cells = memory.NewTaggedRefs(s.cpool, k+1, func(i int) memory.TaggedVal {
		ch := s.cpool.Get(0)
		if i == 0 {
			s.cpool.At(ch).seq.Store(^uint64(0)) // -1
		}
		return memory.PackTagged(ch, 0)
	}, obs)
	return s
}

// Capacity returns k, the number of storable elements.
func (s *AbortablePooled) Capacity() int { return s.k }

// loadTop returns the TOP word and a validated snapshot of its record.
func (s *AbortablePooled) loadTop() (memory.TaggedVal, topSnap) {
	for {
		w := s.top.Read()
		r := s.top.Deref(w)
		t := topSnap{index: int(r.index.Load()), value: r.value.Load(), seq: r.seq.Load()}
		if s.top.Read() == w {
			return w, t
		}
	}
}

// loadCell returns cell x's word and a validated snapshot.
func (s *AbortablePooled) loadCell(x int) (memory.TaggedVal, cellSnap) {
	reg := s.cells.At(x)
	for {
		w := reg.Read()
		r := reg.Deref(w)
		c := cellSnap{value: r.value.Load(), seq: r.seq.Load()}
		if reg.Read() == w {
			return w, c
		}
	}
}

// help terminates the previous non-aborted operation (Figure 1 lines
// 15-16) exactly as the boxed backend's help does: the pending write
// of 〈t.value, t.seq〉 lands in STACK[t.index] only if the cell still
// carries the predecessor tag. The cell's tagged CAS plays the role of
// the boxed pointer CAS; on success the replaced record is retired, on
// failure the never-published one is recycled immediately.
func (s *AbortablePooled) help(pid int, t topSnap) {
	cw, c := s.loadCell(t.index)
	if c.seq+1 != t.seq {
		return
	}
	nh := s.cpool.Get(pid)
	n := s.cpool.At(nh)
	n.value.Store(t.value)
	n.seq.Store(t.seq)
	if s.cells.At(t.index).CAS(cw, cw.Next(nh)) {
		s.cpool.Put(pid, cw.Handle())
	} else {
		s.cpool.Put(pid, nh)
	}
}

// TryPush is the paper's weak_push(v) by pid: one attempt that returns
// nil, ErrFull, or ErrAborted (no effect). A solo TryPush never
// aborts.
func (s *AbortablePooled) TryPush(pid int, v uint64) error {
	w, t := s.loadTop() // line 01
	s.help(pid, t)      // line 02
	if t.index == s.k {
		return ErrFull // line 03
	}
	_, next := s.loadCell(t.index + 1) // line 04
	nh := s.tpool.Get(pid)
	n := s.tpool.At(nh)
	n.index.Store(uint64(t.index + 1))
	n.value.Store(v)
	n.seq.Store(next.seq + 1)
	if s.top.CAS(w, w.Next(nh)) { // line 06
		s.tpool.Put(pid, w.Handle())
		return nil
	}
	s.tpool.Put(pid, nh)
	return ErrAborted
}

// TryPop is the paper's weak_pop() by pid: one attempt that returns
// the value, ErrEmpty, or ErrAborted (no effect). A solo TryPop never
// aborts.
func (s *AbortablePooled) TryPop(pid int) (uint64, error) {
	w, t := s.loadTop() // line 08
	s.help(pid, t)      // line 09
	if t.index == 0 {
		return 0, ErrEmpty // line 10
	}
	_, below := s.loadCell(t.index - 1) // line 11
	nh := s.tpool.Get(pid)
	n := s.tpool.At(nh)
	n.index.Store(uint64(t.index - 1))
	n.value.Store(below.value)
	n.seq.Store(below.seq + 1)
	if s.top.CAS(w, w.Next(nh)) { // line 13
		s.tpool.Put(pid, w.Handle())
		return t.value, nil
	}
	s.tpool.Put(pid, nh)
	return 0, ErrAborted
}

// Len returns the number of elements; quiescent states only.
func (s *AbortablePooled) Len() int {
	_, t := s.loadTop()
	return t.index
}

// Snapshot returns the stack contents bottom-first; quiescent states
// only.
func (s *AbortablePooled) Snapshot() []uint64 {
	_, t := s.loadTop()
	out := make([]uint64, 0, t.index)
	for x := 1; x < t.index; x++ {
		_, c := s.loadCell(x)
		out = append(out, c.value)
	}
	if t.index > 0 {
		out = append(out, t.value)
	}
	return out
}

// PoolStats exposes the record pools' recycling counters (TOP records
// and cell records share the report).
func (s *AbortablePooled) PoolStats() memory.PoolStats {
	ts, cs := s.tpool.Stats(), s.cpool.Stats()
	return memory.PoolStats{
		Allocs:  ts.Allocs + cs.Allocs,
		Reuses:  ts.Reuses + cs.Reuses,
		Spills:  ts.Spills + cs.Spills,
		Refills: ts.Refills + cs.Refills,
		Drops:   ts.Drops + cs.Drops,
	}
}

// Progress classifies the pooled abortable stack (see
// Abortable.Progress).
func (s *AbortablePooled) Progress() core.Progress { return core.ObstructionFree }
