package stack

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// elimOffer is a parked push offer in the elimination array. Records
// are immutable; a pop claims an offer by CASing the slot from the
// offer back to nil, so claiming and withdrawing race on the slot
// register, never on the record.
type elimOffer[T any] struct {
	value T
}

// Elimination is a Treiber stack with an elimination-backoff array
// (after Hendler, Shavit & Yerushalmi, SPAA'04): operations that lose
// the CAS race on TOP visit a random slot of a small array where a
// concurrent push and pop can serve each other and vanish without
// touching TOP at all — push(v) immediately followed by pop() → v is
// linearizable with the pair placed back to back at the moment of the
// claim.
//
// It extends the paper's theme: where Figure 3 diverts conflicting
// operations to a lock, elimination diverts *complementary* ones to
// each other; the two compose (an eliminated pair never reaches the
// weak object). The implementation stays lock-free.
type Elimination[T any] struct {
	inner  *Treiber[T]
	slots  []*memory.Ref[elimOffer[T]]
	spins  int
	ticket atomic.Uint64

	pushEliminated atomic.Uint64
	popEliminated  atomic.Uint64
}

// NewElimination returns an elimination stack with `width` exchange
// slots (0 means 4) and the default park time.
func NewElimination[T any](width int) *Elimination[T] {
	if width <= 0 {
		width = 4
	}
	s := &Elimination[T]{
		inner: NewTreiber[T](),
		slots: make([]*memory.Ref[elimOffer[T]], width),
		spins: 128,
	}
	for i := range s.slots {
		s.slots[i] = memory.NewRef[elimOffer[T]](nil)
	}
	return s
}

// slot picks an exchange slot; the rotating ticket spreads concurrent
// visitors without per-goroutine state.
func (s *Elimination[T]) slot() *memory.Ref[elimOffer[T]] {
	return s.slots[int(s.ticket.Add(1))%len(s.slots)]
}

// tryEliminatePush parks v in a slot for a bounded time and reports
// whether a pop claimed it.
func (s *Elimination[T]) tryEliminatePush(v T) bool {
	reg := s.slot()
	off := &elimOffer[T]{value: v}
	if !reg.CAS(nil, off) {
		return false // slot busy
	}
	for i := 0; i < s.spins; i++ {
		if reg.Read() != off {
			s.pushEliminated.Add(1)
			return true // claimed
		}
	}
	if reg.CAS(off, nil) {
		return false // withdrew unclaimed
	}
	s.pushEliminated.Add(1)
	return true // claimed at the last moment
}

// tryEliminatePop attempts to claim a parked push offer.
func (s *Elimination[T]) tryEliminatePop() (T, bool) {
	reg := s.slot()
	off := reg.Read()
	if off == nil {
		var zero T
		return zero, false
	}
	if reg.CAS(off, nil) {
		s.popEliminated.Add(1)
		return off.value, true
	}
	var zero T
	return zero, false
}

// Push pushes v; it always succeeds (unbounded) and is lock-free.
func (s *Elimination[T]) Push(v T) error {
	return core.Retry(nil, func() (error, bool) {
		if err := s.inner.TryPush(v); err != ErrAborted {
			return err, true
		}
		if s.tryEliminatePush(v) {
			return nil, true
		}
		return nil, false
	})
}

// Pop pops the top value or returns ErrEmpty; lock-free.
func (s *Elimination[T]) Pop() (T, error) {
	type res struct {
		v   T
		err error
	}
	r := core.Retry(nil, func() (res, bool) {
		if v, err := s.inner.TryPop(); err != ErrAborted {
			return res{v, err}, true
		}
		if v, ok := s.tryEliminatePop(); ok {
			return res{v: v}, true
		}
		return res{}, false
	})
	return r.v, r.err
}

// EliminationStats reports how many operations were served by the
// elimination array rather than the stack.
type EliminationStats struct {
	PushesEliminated uint64
	PopsEliminated   uint64
}

// Stats returns the elimination counters.
func (s *Elimination[T]) Stats() EliminationStats {
	return EliminationStats{
		PushesEliminated: s.pushEliminated.Load(),
		PopsEliminated:   s.popEliminated.Load(),
	}
}

// Len counts the non-eliminated elements; quiescent states only.
func (s *Elimination[T]) Len() int { return s.inner.Len() }

// Progress reports NonBlocking (elimination adds only bounded work to
// the lock-free retry loop).
func (s *Elimination[T]) Progress() core.Progress { return core.NonBlocking }
