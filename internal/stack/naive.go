package stack

import (
	"repro/internal/memory"
)

// Naive is the cautionary tale of §2.2 made executable: a
// plausible-looking CAS-based bounded stack with NO sequence tags. The
// top-of-stack index lives in one CAS-able word and the cells are
// plain registers written non-atomically with the index update.
//
// The algorithm suffers the ABA problem: between a process's read of
// TOP=i and its CAS, other processes can pop and re-push so that TOP
// returns to i with different contents, and the stale CAS still
// succeeds — a pop can then return a value that was already popped
// while a freshly pushed value is lost. Experiment E8 exhibits a
// concrete interleaving under the deterministic scheduler and shows
// the tagged Abortable stack survives the same schedules.
//
// Naive is exported only for experiments and tests; do not use it.
type Naive[T any] struct {
	top   *memory.Word // holds the index of the top element (0 = empty)
	cells *memory.Refs[T]
	k     int
}

// NewNaive returns a naive (ABA-broken) stack of capacity k.
func NewNaive[T any](k int) *Naive[T] { return NewNaiveObserved[T](k, nil) }

// NewNaiveObserved returns an instrumented naive stack (nil obs
// disables instrumentation); the deterministic scheduler drives it
// through this hook.
func NewNaiveObserved[T any](k int, obs memory.Observer) *Naive[T] {
	if k < 1 {
		panic("stack: capacity must be >= 1")
	}
	var zero T
	return &Naive[T]{
		top:   memory.NewWordObserved(0, obs),
		cells: memory.NewRefs(k+1, func(int) *T { z := zero; return &z }, obs),
		k:     k,
	}
}

// TryPush is a single push attempt. The fatal flaw: the cell is
// written *before* the index CAS, with no tag tying the two together.
func (s *Naive[T]) TryPush(v T) error {
	t := s.top.Read()
	if int(t) == s.k {
		return ErrFull
	}
	s.cells.At(int(t) + 1).Write(&v)
	if s.top.CAS(t, t+1) {
		return nil
	}
	return ErrAborted
}

// TryPop is a single pop attempt. The fatal flaw: the value is read
// before the index CAS, and the CAS succeeding does not prove the
// stack was untouched (ABA on the index word).
func (s *Naive[T]) TryPop() (T, error) {
	var zero T
	t := s.top.Read()
	if t == 0 {
		return zero, ErrEmpty
	}
	v := s.cells.At(int(t)).Read()
	if s.top.CAS(t, t-1) {
		return *v, nil
	}
	return zero, ErrAborted
}

// Len returns the element count; quiescent states only.
func (s *Naive[T]) Len() int { return int(s.top.Read()) }

var _ Weak[int] = (*Naive[int])(nil)
