package stack

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// tnode is a Treiber stack link.
type tnode[T any] struct {
	value T
	next  *tnode[T]
}

// Treiber is the classic unbounded lock-free linked stack (Treiber
// 1986), the standard non-blocking comparator for experiment E5. In a
// garbage-collected language the pointer CAS cannot suffer ABA, so no
// tags are needed. Treiber also exposes the weak single-attempt
// interface, which makes it pluggable into the paper's Figure 2/3
// constructions (an unbounded contention-sensitive stack "for free").
type Treiber[T any] struct {
	head *memory.Ref[tnode[T]]
}

// NewTreiber returns an empty Treiber stack.
func NewTreiber[T any]() *Treiber[T] { return NewTreiberObserved[T](nil) }

// NewTreiberObserved returns a Treiber stack whose head-register
// accesses are reported to obs (nil disables instrumentation).
func NewTreiberObserved[T any](obs memory.Observer) *Treiber[T] {
	return &Treiber[T]{head: memory.NewRefObserved[tnode[T]](nil, obs)}
}

// TryPush is a single push attempt; it aborts iff the head CAS loses a
// race. It never returns ErrFull (the stack is unbounded).
func (s *Treiber[T]) TryPush(v T) error {
	h := s.head.Read()
	if s.head.CAS(h, &tnode[T]{value: v, next: h}) {
		return nil
	}
	return ErrAborted
}

// TryPop is a single pop attempt.
func (s *Treiber[T]) TryPop() (T, error) {
	var zero T
	h := s.head.Read()
	if h == nil {
		return zero, ErrEmpty
	}
	if s.head.CAS(h, h.next) {
		return h.value, nil
	}
	return zero, ErrAborted
}

// Push pushes v, retrying until success (never returns an error; the
// signature keeps the weak/strong symmetry).
func (s *Treiber[T]) Push(v T) error {
	return core.Retry(nil, func() (error, bool) {
		err := s.TryPush(v)
		return err, err != ErrAborted
	})
}

// Pop pops the top value, retrying aborted attempts; it returns the
// value or ErrEmpty.
func (s *Treiber[T]) Pop() (T, error) {
	type res struct {
		v   T
		err error
	}
	r := core.Retry(nil, func() (res, bool) {
		v, err := s.TryPop()
		return res{v, err}, err != ErrAborted
	})
	return r.v, r.err
}

// Len counts the elements; quiescent states only (O(n) walk).
func (s *Treiber[T]) Len() int {
	n := 0
	for h := s.head.Read(); h != nil; h = h.next {
		n++
	}
	return n
}

// Progress reports NonBlocking (the retry loop is lock-free).
func (s *Treiber[T]) Progress() core.Progress { return core.NonBlocking }

var _ Weak[int] = (*Treiber[int])(nil)
