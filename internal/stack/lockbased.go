package stack

import (
	"repro/internal/core"
	"repro/internal/lock"
)

// LockBased is the traditional fully lock-based bounded stack the
// paper positions itself against (§1.1): every operation, contended or
// not, takes the lock. Its progress condition is that of the lock —
// starvation-free over a starvation-free lock, deadlock-free
// otherwise. It is the baseline of experiments E4-E6.
type LockBased[T any] struct {
	lk  lock.PidLock
	buf []T
	top int
}

// NewLockBased returns a lock-based stack of capacity k guarded by a
// mutex (the "what you would actually write" baseline).
func NewLockBased[T any](k int) *LockBased[T] {
	return NewLockBasedWith[T](k, lock.IgnorePid(lock.NewMutex()))
}

// NewLockBasedWith returns a lock-based stack of capacity k guarded by
// lk, so the experiments can vary the lock's liveness class.
func NewLockBasedWith[T any](k int, lk lock.PidLock) *LockBased[T] {
	if k < 1 {
		panic("stack: capacity must be >= 1")
	}
	return &LockBased[T]{lk: lk, buf: make([]T, 0, k)}
}

// Capacity returns the number of storable elements.
func (s *LockBased[T]) Capacity() int { return cap(s.buf) }

// Push pushes v; it returns nil or ErrFull.
func (s *LockBased[T]) Push(pid int, v T) error {
	s.lk.Acquire(pid)
	defer s.lk.Release(pid)
	if len(s.buf) == cap(s.buf) {
		return ErrFull
	}
	s.buf = append(s.buf, v)
	return nil
}

// Pop pops the top value; it returns the value or ErrEmpty.
func (s *LockBased[T]) Pop(pid int) (T, error) {
	s.lk.Acquire(pid)
	defer s.lk.Release(pid)
	var zero T
	if len(s.buf) == 0 {
		return zero, ErrEmpty
	}
	v := s.buf[len(s.buf)-1]
	s.buf[len(s.buf)-1] = zero // do not retain popped values
	s.buf = s.buf[:len(s.buf)-1]
	return v, nil
}

// Len returns the number of elements; quiescent states only (the read
// is unsynchronized by design, for symmetry with the other stacks).
func (s *LockBased[T]) Len() int { return len(s.buf) }

// Progress reports the progress condition inherited from the lock.
func (s *LockBased[T]) Progress() core.Progress {
	if li, ok := s.lk.(lock.LivenessInfo); ok && li.Liveness() == lock.StarvationFree {
		return core.StarvationFree
	}
	return core.NonBlocking // deadlock-free lock ⇒ deadlock-free object
}

var _ Strong[int] = (*LockBased[int])(nil)
