package stack

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// topRec is the content of the TOP register: the index of the top
// entry, the value stored there, and the sequence number destined for
// STACK[index] (§3, "Shared data structures").
type topRec[T any] struct {
	index int
	value T
	seq   uint64
}

// cellRec is the content of one STACK[x] register: a value and the
// sequence number that tags it against ABA (§2.2).
type cellRec[T any] struct {
	value T
	seq   uint64
}

// Abortable is the paper's Figure 1: an abortable bounded stack over
// atomic registers and Compare&Swap. The implementation is lazy — a
// successful operation installs its result in TOP and leaves the
// corresponding STACK write to the help step of the next operation —
// so every operation first helps terminate its predecessor.
//
// The boxed backend stores each register's multi-field content as an
// immutable record behind memory.Ref; see Packed for the bit-packed
// single-word backend.
type Abortable[T any] struct {
	top   *memory.Ref[topRec[T]]
	cells *memory.Refs[cellRec[T]]
	k     int
}

// NewAbortable returns an abortable stack of capacity k >= 1.
func NewAbortable[T any](k int) *Abortable[T] {
	return NewAbortableObserved[T](k, nil)
}

// NewAbortableObserved returns an abortable stack whose every shared
// access is reported to obs first (nil disables instrumentation). The
// E1 experiment uses this to count the accesses of Theorem 1.
func NewAbortableObserved[T any](k int, obs memory.Observer) *Abortable[T] {
	if k < 1 {
		panic("stack: capacity must be >= 1")
	}
	if k > memory.MaxIndex {
		// Keep both backends interchangeable in the experiments.
		panic("stack: capacity exceeds memory.MaxIndex")
	}
	var zero T
	s := &Abortable[T]{k: k}
	// TOP is initialized to 〈0, ⊥, 0〉; STACK[0] is the dummy entry
	// 〈⊥, -1〉 (so that helping the initial TOP is a harmless write of
	// 〈⊥, 0〉); STACK[1..k] start at 〈⊥, 0〉.
	s.top = memory.NewRefObserved(&topRec[T]{index: 0, value: zero, seq: 0}, obs)
	s.cells = memory.NewRefs(k+1, func(i int) *cellRec[T] {
		if i == 0 {
			return &cellRec[T]{value: zero, seq: ^uint64(0)} // -1
		}
		return &cellRec[T]{value: zero, seq: 0}
	}, obs)
	return s
}

// Capacity returns k, the number of storable elements.
func (s *Abortable[T]) Capacity() int { return s.k }

// help terminates the previous non-aborted operation (lines 15-16): it
// completes the pending write of 〈t.value, t.seq〉 into STACK[t.index].
//
// The paper's C&S compares 〈stacktop, seqnb-1〉 against the cell, i.e.
// it succeeds only if the cell still carries the predecessor tag. With
// boxed records the pointer CAS alone would be *too* strong a success
// condition in one direction (it only succeeds if the cell is
// untouched) but too weak in the other — a stale helper holding an old
// TOP record could overwrite a newer cell that happens not to have
// changed since its read. The explicit sequence check reproduces the
// value-compare semantics exactly: help writes only the pending
// successor of what it read.
func (s *Abortable[T]) help(t *topRec[T]) {
	reg := s.cells.At(t.index)
	c := reg.Read() // line 15
	if c.seq+1 == t.seq {
		reg.CAS(c, &cellRec[T]{value: t.value, seq: t.seq}) // line 16
	}
}

// TryPush is the paper's weak_push(v): one attempt to push v. It
// returns nil on success, ErrFull if the stack is full, and ErrAborted
// if a concurrent operation interfered (in which case the push had no
// effect). A solo TryPush never returns ErrAborted.
func (s *Abortable[T]) TryPush(v T) error {
	t := s.top.Read() // line 01
	s.help(t)         // line 02
	if t.index == s.k {
		return ErrFull // line 03
	}
	next := s.cells.At(t.index + 1).Read() // line 04
	newTop := &topRec[T]{index: t.index + 1, value: v, seq: next.seq + 1}
	if s.top.CAS(t, newTop) { // line 06
		return nil
	}
	return ErrAborted
}

// TryPop is the paper's weak_pop(): one attempt to pop. It returns the
// popped value on success, ErrEmpty if the stack is empty, and
// ErrAborted if a concurrent operation interfered. A solo TryPop never
// returns ErrAborted.
func (s *Abortable[T]) TryPop() (T, error) {
	var zero T
	t := s.top.Read() // line 08
	s.help(t)         // line 09
	if t.index == 0 {
		return zero, ErrEmpty // line 10
	}
	below := s.cells.At(t.index - 1).Read() // line 11
	newTop := &topRec[T]{index: t.index - 1, value: below.value, seq: below.seq + 1}
	if s.top.CAS(t, newTop) { // line 13
		return t.value, nil
	}
	return zero, ErrAborted
}

// Len returns the number of elements currently on the stack. It is
// meaningful only in quiescent states (no concurrent operations).
func (s *Abortable[T]) Len() int { return s.top.Read().index }

// Snapshot returns the stack contents bottom-first. It is meaningful
// only in quiescent states: it reads TOP for the (lazily written) top
// element and the STACK array for the rest.
func (s *Abortable[T]) Snapshot() []T {
	t := s.top.Read()
	out := make([]T, 0, t.index)
	for x := 1; x < t.index; x++ {
		out = append(out, s.cells.At(x).Read().value)
	}
	if t.index > 0 {
		out = append(out, t.value)
	}
	return out
}

// Progress classifies the abortable stack. Abortability is strictly
// stronger than obstruction-freedom (§1.2) — every attempt terminates,
// solo attempts succeed — but in the paper's three-level hierarchy the
// object occupies the obstruction-free rung.
func (s *Abortable[T]) Progress() core.Progress { return core.ObstructionFree }
