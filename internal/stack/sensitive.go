package stack

import (
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/memory"
)

// Sensitive is the paper's Figure 3: the contention-sensitive,
// starvation-free stack. An operation invoked in a contention-free
// context completes on the lock-free shortcut in exactly six shared
// memory accesses (Theorem 1); operations that hit contention
// serialize behind a single lock, made starvation-free by the
// FLAG/TURN round-robin (lock.RoundRobin).
type Sensitive[T any] struct {
	weak  Weak[T]
	guard *core.Guard
}

// NewSensitive returns the paper's exact configuration for n
// processes: a fresh abortable stack of capacity k guarded by a
// round-robin transformation of a deadlock-free test-and-set lock.
// Callers pass pids in [0, n).
func NewSensitive[T any](k, n int) *Sensitive[T] {
	return NewSensitiveFrom[T](NewAbortable[T](k), lock.NewRoundRobin(lock.NewTAS(), n))
}

// NewSensitiveFrom builds Figure 3 over any weak stack and any
// PidLock. Use lock.IgnorePid(starvationFreeLock) for the simplified
// variant of the paper's §4 Remark.
func NewSensitiveFrom[T any](weak Weak[T], lk lock.PidLock) *Sensitive[T] {
	return &Sensitive[T]{weak: weak, guard: core.NewGuard(lk)}
}

// NewSensitiveObserved is NewSensitive with every shared access of
// both the weak stack and the CONTENTION register reported to obs —
// the configuration under which E1 counts Theorem 1's six accesses.
func NewSensitiveObserved[T any](k, n int, obs memory.Observer) *Sensitive[T] {
	weak := NewAbortableObserved[T](k, obs)
	lk := lock.NewRoundRobin(lock.NewTAS(), n)
	return &Sensitive[T]{weak: weak, guard: core.NewGuardObserved(lk, obs)}
}

// NewSensitiveFromObserved builds Figure 3 over an already-constructed
// (and typically already-instrumented) weak stack, additionally
// reporting the CONTENTION register's accesses to obs. It lets E1
// instrument the packed backend end to end.
func NewSensitiveFromObserved[T any](weak Weak[T], lk lock.PidLock, obs memory.Observer) *Sensitive[T] {
	return &Sensitive[T]{weak: weak, guard: core.NewGuardObserved(lk, obs)}
}

// Push is strong_push(v): it always takes effect (or reports a full
// stack) and never aborts, whatever the contention (Lemma 1,
// Theorem 1). pid identifies the calling process for the slow path's
// round-robin.
func (s *Sensitive[T]) Push(pid int, v T) error {
	return core.Do(s.guard, pid, func() (error, bool) {
		err := s.weak.TryPush(v)
		return err, err != ErrAborted
	})
}

// Pop is strong_pop(): it always returns the top value or ErrEmpty,
// never aborts, and terminates for every caller.
func (s *Sensitive[T]) Pop(pid int) (T, error) {
	type res struct {
		v   T
		err error
	}
	r := core.Do(s.guard, pid, func() (res, bool) {
		v, err := s.weak.TryPop()
		return res{v, err}, err != ErrAborted
	})
	return r.v, r.err
}

// Guard exposes the guard's fast/slow-path counters for tests and
// experiments.
func (s *Sensitive[T]) Guard() *core.Guard { return s.guard }

// Snapshot returns the elements bottom-first when the weak backend
// exposes a snapshot, nil otherwise. Quiescent states only: the weak
// snapshot is not atomic under concurrent updates. The adaptive tier
// calls it on a quiesced source to rebuild the migration target.
func (s *Sensitive[T]) Snapshot() []T {
	if w, ok := s.weak.(interface{ Snapshot() []T }); ok {
		return w.Snapshot()
	}
	return nil
}

// Len returns the number of elements when the weak backend exposes a
// length (quiescent states only), -1 otherwise.
func (s *Sensitive[T]) Len() int {
	if w, ok := s.weak.(interface{ Len() int }); ok {
		return w.Len()
	}
	return -1
}

// Progress reports StarvationFree (Theorem 1).
func (s *Sensitive[T]) Progress() core.Progress { return core.StarvationFree }

var _ Strong[int] = (*Sensitive[int])(nil)
