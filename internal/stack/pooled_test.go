package stack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/spec"
)

// pooledVsSpec cross-checks a solo pid-aware weak stack against the
// sequential spec (the pooled sibling of interpretOps).
func pooledVsSpec(t *testing.T, k, ops int,
	tryPush func(pid int, v uint64) error,
	tryPop func(pid int) (uint64, error),
) {
	t.Helper()
	ref := spec.NewStack[uint64](k)
	for i := 0; i < ops; i++ {
		if i%3 != 1 {
			v := uint64(i)
			err := tryPush(0, v)
			if ref.Push(v) {
				if err != nil {
					t.Fatalf("op %d: push(%d) = %v, spec accepted", i, v, err)
				}
			} else if !errors.Is(err, ErrFull) {
				t.Fatalf("op %d: push(%d) = %v, spec reports full", i, v, err)
			}
		} else {
			v, err := tryPop(0)
			want, ok := ref.Pop()
			if ok {
				if err != nil || v != want {
					t.Fatalf("op %d: pop = (%d, %v), spec has %d", i, v, err, want)
				}
			} else if !errors.Is(err, ErrEmpty) {
				t.Fatalf("op %d: pop = (%d, %v), spec reports empty", i, v, err)
			}
		}
	}
}

func TestTreiberPooledMatchesSpecSolo(t *testing.T) {
	s := NewTreiberPooled(1)
	pooledVsSpec(t, 1<<30, 5000, s.TryPush, s.TryPop)
	st := s.PoolStats()
	if st.Reuses == 0 {
		t.Fatalf("solo churn never recycled a node: %+v", st)
	}
}

func TestAbortablePooledMatchesSpecSolo(t *testing.T) {
	const k = 4
	s := NewAbortablePooled(k, 1)
	pooledVsSpec(t, k, 5000, s.TryPush, s.TryPop)
	if st := s.PoolStats(); st.Reuses == 0 {
		t.Fatalf("solo churn never recycled a record: %+v", st)
	}
}

func TestAbortablePooledAgreesWithBoxed(t *testing.T) {
	const k = 3
	boxed := NewAbortable[uint64](k)
	pooled := NewAbortablePooled(k, 1)
	for i := 0; i < 4000; i++ {
		if i%5 < 3 {
			v := uint64(i)
			be, pe := boxed.TryPush(v), pooled.TryPush(0, v)
			if (be == nil) != (pe == nil) {
				t.Fatalf("op %d: push disagreement: boxed=%v pooled=%v", i, be, pe)
			}
		} else {
			bv, be := boxed.TryPop()
			pv, pe := pooled.TryPop(0)
			if (be == nil) != (pe == nil) || (be == nil && bv != pv) {
				t.Fatalf("op %d: pop disagreement: (%d,%v) vs (%d,%v)", i, bv, be, pv, pe)
			}
		}
	}
}

func TestTreiberPooledConserves(t *testing.T) {
	procs, perProc := 8, stressN(3000)
	s := NewTreiberPooled(procs)
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
	st := s.PoolStats()
	if st.Reuses == 0 {
		t.Fatalf("concurrent churn never recycled: %+v", st)
	}
}

func TestCombiningPooledConserves(t *testing.T) {
	// The pooled weak stack under the flat-combining construction:
	// strong, starvation-free, and allocation-free.
	procs, perProc, k := 6, stressN(1500), 32
	s := NewCombiningPooled(k, procs)
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestAbortablePooledSnapshotAndLen(t *testing.T) {
	s := NewAbortablePooled(8, 1)
	for i := uint64(1); i <= 5; i++ {
		if err := s.TryPush(0, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	snap := s.Snapshot()
	want := []uint64{10, 20, 30, 40, 50}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot = %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", snap, want)
		}
	}
}

// TestTreiberPooledForcedReuseABA keeps the stack near-empty — every
// worker pops right after it pushes — so nearly every push lands on a
// just-recycled node: the §2.2 window at maximum pressure.
// Conservation proves the sequence tags are doing their job (a single
// wrongly successful stale CAS would duplicate or lose a value).
func TestTreiberPooledForcedReuseABA(t *testing.T) {
	procs, perProc := 4, stressN(5000)
	s := NewTreiberPooled(procs)
	var wg sync.WaitGroup
	popped := make([][]uint64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				_ = s.Push(pid, uint64(pid)<<32|uint64(i))
				if v, err := s.Pop(pid); err == nil {
					popped[pid] = append(popped[pid], v)
				}
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for {
		v, err := s.Pop(0)
		if err != nil {
			break
		}
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("value set size = %d, want %d (lost values)", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times (duplicated)", v, n)
		}
	}
	st := s.PoolStats()
	if st.Reuses < st.Allocs {
		t.Fatalf("reuse did not dominate: %+v", st)
	}
	if st.Drops != 0 {
		t.Fatalf("pool dropped %d handles (overflow too small)", st.Drops)
	}
}

func BenchmarkTreiberBoxedSolo(b *testing.B) {
	b.ReportAllocs()
	s := NewTreiber[uint64]()
	for i := 0; i < b.N; i++ {
		_ = s.Push(uint64(i))
		_, _ = s.Pop()
	}
}

func BenchmarkTreiberPooledSolo(b *testing.B) {
	b.ReportAllocs()
	s := NewTreiberPooled(1)
	for i := 0; i < b.N; i++ {
		_ = s.Push(0, uint64(i))
		_, _ = s.Pop(0)
	}
}

func BenchmarkAbortableBoxedSolo(b *testing.B) {
	b.ReportAllocs()
	s := NewAbortable[uint64](16)
	for i := 0; i < b.N; i++ {
		_ = s.TryPush(uint64(i))
		_, _ = s.TryPop()
	}
}

func BenchmarkAbortablePooledSolo(b *testing.B) {
	b.ReportAllocs()
	s := NewAbortablePooled(16, 1)
	for i := 0; i < b.N; i++ {
		_ = s.TryPush(0, uint64(i))
		_, _ = s.TryPop(0)
	}
}
