package stack

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/memory"
)

// weakUint32 lets one test body exercise both weak backends.
type weakUint32 interface {
	Weak[uint32]
	Len() int
	Snapshot() []uint32
	Capacity() int
}

func backends(k int) map[string]weakUint32 {
	return map[string]weakUint32{
		"boxed":  NewAbortable[uint32](k),
		"packed": NewPacked(k),
	}
}

func TestWeakLIFOSolo(t *testing.T) {
	for name, s := range backends(8) {
		t.Run(name, func(t *testing.T) {
			for i := uint32(1); i <= 5; i++ {
				if err := s.TryPush(i); err != nil {
					t.Fatalf("TryPush(%d) = %v", i, err)
				}
			}
			for want := uint32(5); want >= 1; want-- {
				v, err := s.TryPop()
				if err != nil {
					t.Fatalf("TryPop() = %v", err)
				}
				if v != want {
					t.Fatalf("TryPop() = %d, want %d", v, want)
				}
			}
			if _, err := s.TryPop(); !errors.Is(err, ErrEmpty) {
				t.Fatalf("TryPop() on empty = %v, want ErrEmpty", err)
			}
		})
	}
}

func TestWeakFull(t *testing.T) {
	for name, s := range backends(3) {
		t.Run(name, func(t *testing.T) {
			for i := uint32(0); i < 3; i++ {
				if err := s.TryPush(i); err != nil {
					t.Fatalf("TryPush #%d = %v", i, err)
				}
			}
			if err := s.TryPush(99); !errors.Is(err, ErrFull) {
				t.Fatalf("TryPush on full = %v, want ErrFull", err)
			}
			// A failed-full push must not clobber the contents.
			if got := s.Len(); got != 3 {
				t.Fatalf("Len after full push = %d, want 3", got)
			}
		})
	}
}

func TestWeakSoloNeverAborts(t *testing.T) {
	// Claim A2: an operation executed in a concurrency-free context
	// always returns a non-⊥ value.
	for name, s := range backends(16) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			depth := 0
			for i := 0; i < 20000; i++ {
				if rng.Intn(2) == 0 {
					err := s.TryPush(uint32(i))
					if errors.Is(err, ErrAborted) {
						t.Fatalf("solo TryPush aborted at op %d", i)
					}
					if err == nil {
						depth++
					}
				} else {
					_, err := s.TryPop()
					if errors.Is(err, ErrAborted) {
						t.Fatalf("solo TryPop aborted at op %d", i)
					}
					if err == nil {
						depth--
					}
				}
			}
			if got := s.Len(); got != depth {
				t.Fatalf("Len = %d, want %d", got, depth)
			}
		})
	}
}

func TestWeakDifferentialVsReference(t *testing.T) {
	// Random solo runs must agree op-for-op with a plain slice stack.
	for name, s := range backends(10) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var ref []uint32
			for i := 0; i < 50000; i++ {
				if rng.Intn(2) == 0 {
					v := rng.Uint32()
					err := s.TryPush(v)
					switch {
					case len(ref) == s.Capacity():
						if !errors.Is(err, ErrFull) {
							t.Fatalf("op %d: push on full = %v", i, err)
						}
					case err != nil:
						t.Fatalf("op %d: push = %v", i, err)
					default:
						ref = append(ref, v)
					}
				} else {
					v, err := s.TryPop()
					if len(ref) == 0 {
						if !errors.Is(err, ErrEmpty) {
							t.Fatalf("op %d: pop on empty = %v", i, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: pop = %v", i, err)
					}
					want := ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					if v != want {
						t.Fatalf("op %d: pop = %d, want %d", i, v, want)
					}
				}
			}
		})
	}
}

func TestWeakSnapshot(t *testing.T) {
	for name, s := range backends(8) {
		t.Run(name, func(t *testing.T) {
			for _, v := range []uint32{10, 20, 30} {
				if err := s.TryPush(v); err != nil {
					t.Fatal(err)
				}
			}
			got := s.Snapshot()
			want := []uint32{10, 20, 30}
			if len(got) != len(want) {
				t.Fatalf("Snapshot = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Snapshot = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestWeakSnapshotEmpty(t *testing.T) {
	for name, s := range backends(4) {
		t.Run(name, func(t *testing.T) {
			if got := s.Snapshot(); len(got) != 0 {
				t.Fatalf("Snapshot of empty = %v", got)
			}
		})
	}
}

func TestWeakPropertyPushPopRoundTrip(t *testing.T) {
	// Property: pushing a batch then popping it returns the reverse.
	for name := range backends(1) {
		t.Run(name, func(t *testing.T) {
			f := func(vals []uint32) bool {
				if len(vals) == 0 {
					return true
				}
				if len(vals) > 64 {
					vals = vals[:64]
				}
				var s weakUint32
				if name == "boxed" {
					s = NewAbortable[uint32](len(vals))
				} else {
					s = NewPacked(len(vals))
				}
				for _, v := range vals {
					if s.TryPush(v) != nil {
						return false
					}
				}
				for i := len(vals) - 1; i >= 0; i-- {
					v, err := s.TryPop()
					if err != nil || v != vals[i] {
						return false
					}
				}
				_, err := s.TryPop()
				return errors.Is(err, ErrEmpty)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAbortableGenericPayload(t *testing.T) {
	// The boxed backend must carry arbitrary types.
	type payload struct {
		s string
		n int
	}
	s := NewAbortable[payload](4)
	in := payload{s: "hello", n: 42}
	if err := s.TryPush(in); err != nil {
		t.Fatal(err)
	}
	got, err := s.TryPop()
	if err != nil || got != in {
		t.Fatalf("TryPop = (%+v, %v), want (%+v, nil)", got, err, in)
	}
}

func TestAbortableHelpCompletesLazyWrite(t *testing.T) {
	// The implementation is lazy: after a push, STACK[top] may be
	// stale until the next operation helps. Verify help happens by
	// pushing twice and checking the first cell through Snapshot.
	s := NewAbortable[uint32](4)
	if err := s.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := s.TryPush(2); err != nil {
		t.Fatal(err)
	}
	// cell[1] must now hold 1 (written by the second push's help).
	if got := s.cells.At(1).Read(); got.value != 1 {
		t.Fatalf("cell[1] = %+v, want value 1 after help", got)
	}
	got := s.Snapshot()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Snapshot = %v, want [1 2]", got)
	}
}

func TestAbortableStaleHelperCannotCorrupt(t *testing.T) {
	// Regression test for the boxed-help subtlety: a helper holding a
	// stale TOP record must not overwrite a newer cell. Simulate the
	// stale helper directly.
	s := NewAbortable[uint32](4)
	if err := s.TryPush(1); err != nil {
		t.Fatal(err)
	}
	stale := s.top.Read() // TOP = (1, 1, seq)
	// Advance the stack so cell[1] is rewritten with newer tags.
	if _, err := s.TryPop(); err != nil {
		t.Fatal(err)
	} // TOP = (0, ⊥, _), pending cell[0] write
	if err := s.TryPush(7); err != nil {
		t.Fatal(err)
	} // TOP = (1, 7, seq'), helps cell[0]
	if err := s.TryPush(8); err != nil {
		t.Fatal(err)
	} // helps cell[1] ← (7, seq')
	before := s.cells.At(1).Read()
	s.help(stale) // stale helper replays
	after := s.cells.At(1).Read()
	if before != after {
		t.Fatalf("stale helper overwrote cell[1]: %+v -> %+v", before, after)
	}
	// And the stack still pops correctly.
	if v, err := s.TryPop(); err != nil || v != 8 {
		t.Fatalf("pop = (%d, %v), want (8, nil)", v, err)
	}
	if v, err := s.TryPop(); err != nil || v != 7 {
		t.Fatalf("pop = (%d, %v), want (7, nil)", v, err)
	}
}

func TestWeakAccessCountSolo(t *testing.T) {
	// Claim A1 at the weak level: a successful contention-free
	// weak_push/weak_pop performs exactly 5 shared accesses
	// (read TOP, help read, help CAS, read neighbour cell, CAS TOP).
	var st memory.Stats
	s := NewAbortableObserved[uint32](8, &st)
	if err := s.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 5 {
		t.Fatalf("weak_push accesses = %d (%+v), want 5", got, st.Snapshot())
	}
	st.Reset()
	if _, err := s.TryPop(); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 5 {
		t.Fatalf("weak_pop accesses = %d (%+v), want 5", got, st.Snapshot())
	}

	// Packed backend: the unconditional help CAS gives the same count.
	var stp memory.Stats
	p := NewPackedObserved(8, &stp)
	if err := p.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if got := stp.Total(); got != 5 {
		t.Fatalf("packed weak_push accesses = %d (%+v), want 5", got, stp.Snapshot())
	}
}

func TestWeakEmptyFullAccessCount(t *testing.T) {
	// Returning empty/full is even cheaper: 3 accesses (read TOP,
	// help read + CAS).
	var st memory.Stats
	s := NewAbortableObserved[uint32](2, &st)
	if _, err := s.TryPop(); !errors.Is(err, ErrEmpty) {
		t.Fatal(err)
	}
	if got := st.Total(); got != 3 {
		t.Fatalf("empty pop accesses = %d, want 3", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"abortable k=0":      func() { NewAbortable[int](0) },
		"packed k=0":         func() { NewPacked(0) },
		"packed k too large": func() { NewPacked(memory.MaxIndex + 1) },
		"lockbased k=0":      func() { NewLockBased[int](0) },
		"naive k=0":          func() { NewNaive[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestProgressLabels(t *testing.T) {
	if NewAbortable[int](1).Progress() != core.ObstructionFree {
		t.Error("Abortable progress label")
	}
	if NewPacked(1).Progress() != core.ObstructionFree {
		t.Error("Packed progress label")
	}
	if NewNonBlocking[int](1).Progress() != core.NonBlocking {
		t.Error("NonBlocking progress label")
	}
	if NewSensitive[int](1, 2).Progress() != core.StarvationFree {
		t.Error("Sensitive progress label")
	}
	if NewTreiber[int]().Progress() != core.NonBlocking {
		t.Error("Treiber progress label")
	}
	if NewLockBased[int](1).Progress() != core.StarvationFree {
		t.Error("LockBased(mutex) progress label")
	}
}

func TestNaiveSequentiallyCorrect(t *testing.T) {
	// The ABA strawman must be a perfectly good stack when used solo —
	// that is what makes it a fair cautionary tale.
	s := NewNaive[uint32](8)
	for i := uint32(1); i <= 5; i++ {
		if err := s.TryPush(i); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint32(5); want >= 1; want-- {
		v, err := s.TryPop()
		if err != nil || v != want {
			t.Fatalf("pop = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := s.TryPop(); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty pop")
	}
	if err := func() error {
		for i := uint32(0); i < 9; i++ {
			if err := s.TryPush(i); err != nil {
				return err
			}
		}
		return nil
	}(); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull push = %v, want ErrFull", err)
	}
}
