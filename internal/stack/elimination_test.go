package stack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestEliminationSequentialLIFO(t *testing.T) {
	s := NewElimination[int](0)
	for i := 1; i <= 100; i++ {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for want := 100; want >= 1; want-- {
		v, err := s.Pop()
		if err != nil || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := s.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Pop on empty = %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("Len != 0 after drain")
	}
}

func TestEliminationConserves(t *testing.T) {
	procs, perProc := 8, stressN(3000)
	s := NewElimination[uint64](4)
	conserved(t, procs, perProc,
		func(_ int, v uint64) error { return s.Push(v) },
		func(_ int) (uint64, error) { return s.Pop() },
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop()
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestEliminationFiresUnderContention(t *testing.T) {
	// Under a symmetric push/pop storm the elimination array should
	// actually serve pairs (statistical: assert it fired at all over
	// a large run on a contended stack).
	s := NewElimination[uint64](4)
	const procs, per = 8, 20000
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if pid%2 == 0 {
					_ = s.Push(uint64(pid)<<32 | uint64(i))
				} else {
					_, _ = s.Pop()
				}
			}
		}(p)
	}
	wg.Wait()
	st := s.Stats()
	if st.PushesEliminated != st.PopsEliminated {
		t.Fatalf("eliminated pushes (%d) != eliminated pops (%d): unpaired elimination",
			st.PushesEliminated, st.PopsEliminated)
	}
	t.Logf("eliminated pairs: %d", st.PushesEliminated)
}

func TestEliminationPairCountsAlwaysMatch(t *testing.T) {
	// Every eliminated push must pair with exactly one eliminated
	// pop, under any mix.
	s := NewElimination[uint64](2)
	procs, per := 6, stressN(10000)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = s.Push(uint64(pid)<<32 | uint64(i))
				if _, err := s.Pop(); err != nil && !errors.Is(err, ErrEmpty) {
					t.Errorf("pop: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()
	st := s.Stats()
	if st.PushesEliminated != st.PopsEliminated {
		t.Fatalf("unpaired elimination: %+v", st)
	}
}

func TestEliminationProgressLabel(t *testing.T) {
	if NewElimination[int](0).Progress() != core.NonBlocking {
		t.Fatal("Elimination progress label")
	}
}

func TestEliminationDefaultWidth(t *testing.T) {
	s := NewElimination[int](0)
	if len(s.slots) != 4 {
		t.Fatalf("default width = %d, want 4", len(s.slots))
	}
	if err := s.Push(1); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Pop(); err != nil || v != 1 {
		t.Fatalf("round-trip = (%d, %v)", v, err)
	}
}
