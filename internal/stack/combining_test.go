package stack

import (
	"errors"
	"testing"
)

func TestCombiningMatchesSpecSolo(t *testing.T) {
	const k = 4
	s := NewCombining[uint32](k, 1)
	// Reuse the fuzz interpreter's spec cross-check on a fixed tape:
	// fill past capacity, drain past empty, interleave.
	tape := []byte{
		0, 1, 0, 2, 0, 3, 0, 4, 0, 5, // pushes 1-5 (5th hits full)
		1, 0, 1, 0, 1, 0, 1, 0, 1, 0, // pops past empty
		0, 7, 1, 0, 0, 8, 0, 9, 1, 0,
	}
	interpretOps(t, tape, k,
		func(v uint32) error { return s.Push(0, v) },
		func() (uint32, error) { return s.Pop(0) })
	if st := s.Stats(); st.Published != 0 {
		t.Fatalf("solo run published %d requests", st.Published)
	}
}

func TestCombiningConserves(t *testing.T) {
	procs, perProc, k := 8, stressN(2000), 64
	s := NewCombining[uint64](k, procs)
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
	st := s.Stats()
	if st.Fast+st.Published == 0 {
		t.Fatal("core saw no operations")
	}
	if st.Served != st.Published {
		t.Fatalf("Served = %d, Published = %d", st.Served, st.Published)
	}
}

func TestCombiningOverTreiber(t *testing.T) {
	// Like Figure 3, the combining construction composes with any weak
	// stack — here the unbounded Treiber stack.
	procs, perProc := 6, stressN(2000)
	s := NewCombiningFrom[uint64](NewTreiber[uint64](), procs)
	conserved(t, procs, perProc,
		s.Push,
		s.Pop,
		func() []uint64 {
			var out []uint64
			for {
				v, err := s.Pop(0)
				if err != nil {
					return out
				}
				out = append(out, v)
			}
		},
	)
}

func TestCombiningFastPathDominatesWhenSolo(t *testing.T) {
	s := NewCombining[int](16, 4)
	for i := 0; i < 1000; i++ {
		if err := s.Push(0, i%10); err != nil && !errors.Is(err, ErrFull) {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := s.Pop(0); err != nil && !errors.Is(err, ErrEmpty) {
				t.Fatal(err)
			}
		}
	}
	if st := s.Stats(); st.Published != 0 {
		t.Fatalf("solo run took the publication path %d times", st.Published)
	}
}

func TestCombiningContendedPath(t *testing.T) {
	s := NewCombining[int](4, 2)
	if err := s.PushContended(0, 7); err != nil {
		t.Fatal(err)
	}
	v, err := s.PopContended(1)
	if err != nil || v != 7 {
		t.Fatalf("PopContended = (%d, %v), want (7, nil)", v, err)
	}
	st := s.Stats()
	if st.Fast != 0 || st.Published != 2 || st.Combines == 0 {
		t.Fatalf("stats = %+v, want 0 fast / 2 published", st)
	}
}
