package stack

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// ptNode is a pooled Treiber link. Fields are atomics because a stale
// reader (one whose head word is about to fail its CAS) may overlap a
// recycler rewriting the node; every such read is discarded, but the
// access itself must be data-race-free.
type ptNode struct {
	value atomic.Uint64
	next  atomic.Uint64 // Handle of the node below (no tag needed: see TryPop)
}

// TreiberPooled is the Treiber stack over recycled nodes: the same
// algorithm as Treiber, but nodes come from a memory.Pool and the head
// register is a tagged 〈handle, seqnb〉 word instead of a GC-protected
// pointer. Reuse makes ABA a real possibility again — a popped node
// can return as the head while a slow pop still holds its old handle —
// and the §2.2 sequence tag CASed together with the handle is what
// makes the stale CAS fail. The steady state allocates nothing per
// operation (experiment E17).
//
// Values are uint64 (the node fields must be atomics; compare the
// packed backend's uint32 restriction). Operations take the calling
// pid for the pool's per-pid free lists.
type TreiberPooled struct {
	head *memory.TaggedRef[ptNode]
	pool *memory.Pool[ptNode]
}

// NewTreiberPooled returns an empty pooled Treiber stack for procs
// processes (pids in [0, procs)).
func NewTreiberPooled(procs int) *TreiberPooled {
	return NewTreiberPooledObserved(procs, nil)
}

// NewTreiberPooledObserved returns a pooled Treiber stack whose
// head-register accesses are reported to obs (nil disables
// instrumentation). Pool traffic is arena-private and not observed.
func NewTreiberPooledObserved(procs int, obs memory.Observer) *TreiberPooled {
	pool := memory.NewPool[ptNode](procs, nil)
	return &TreiberPooled{
		head: memory.NewTaggedRefObserved(pool, memory.PackTagged(memory.NilHandle, 0), obs),
		pool: pool,
	}
}

// TryPush is a single push attempt by pid; it aborts iff the head CAS
// loses a race. The node is recycled immediately on abort (it was
// never published).
func (s *TreiberPooled) TryPush(pid int, v uint64) error {
	h := s.pool.Get(pid)
	n := s.pool.At(h)
	n.value.Store(v)
	top := s.head.Read()
	n.next.Store(uint64(top.Handle()))
	if s.head.CAS(top, top.Next(h)) {
		return nil
	}
	s.pool.Put(pid, h)
	return ErrAborted
}

// TryPop is a single pop attempt by pid. The value and successor are
// read before the CAS; if the node was recycled in between, the head
// tag has necessarily advanced (recycling requires the node to have
// been popped, and every pop CASes the head), so the CAS fails and the
// garbage reads are discarded. This is why the node's next field needs
// no tag of its own: it is only trusted when the head CAS succeeds.
func (s *TreiberPooled) TryPop(pid int) (uint64, error) {
	top := s.head.Read()
	if top.Handle() == memory.NilHandle {
		return 0, ErrEmpty
	}
	n := s.pool.At(top.Handle())
	v := n.value.Load()
	next := memory.Handle(n.next.Load())
	if s.head.CAS(top, top.Next(next)) {
		s.pool.Put(pid, top.Handle())
		return v, nil
	}
	return 0, ErrAborted
}

// Push pushes v on behalf of pid, retrying aborted attempts (never
// returns an error; the stack is unbounded).
func (s *TreiberPooled) Push(pid int, v uint64) error {
	//contlint:allow retryloop E17 zero-alloc hot path: core.Retry's closure would escape per call; the bare loop keeps Push allocation-free
	for {
		if err := s.TryPush(pid, v); err != ErrAborted {
			return err
		}
	}
}

// Pop pops the top value on behalf of pid, retrying aborted attempts;
// it returns the value or ErrEmpty.
func (s *TreiberPooled) Pop(pid int) (uint64, error) {
	//contlint:allow retryloop E17 zero-alloc hot path: core.Retry's closure would escape per call; the bare loop keeps Pop allocation-free
	for {
		v, err := s.TryPop(pid)
		if err != ErrAborted {
			return v, err
		}
	}
}

// Len counts the elements; quiescent states only (O(n) walk).
func (s *TreiberPooled) Len() int {
	n := 0
	for h := s.head.Read().Handle(); h != memory.NilHandle; {
		n++
		h = memory.Handle(s.pool.At(h).next.Load())
	}
	return n
}

// PoolStats exposes the node pool's recycling counters (E17's
// forced-reuse table).
func (s *TreiberPooled) PoolStats() memory.PoolStats { return s.pool.Stats() }

// Progress reports NonBlocking (the retry loop is lock-free).
func (s *TreiberPooled) Progress() core.Progress { return core.NonBlocking }
