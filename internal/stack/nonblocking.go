package stack

import (
	"repro/internal/core"
)

// NonBlocking is the paper's Figure 2: the linearizable non-blocking
// stack obtained by retrying a weak operation until it returns
// non-⊥. Push and Pop never abort; under contention at least one of
// the concurrent operations always terminates, but an individual
// operation may retry unboundedly (no starvation-freedom).
//
// A contention manager (§5) may pace the retries; the paper's bare
// loop is the nil manager.
type NonBlocking[T any] struct {
	weak   Weak[T]
	m      core.Manager
	budget int
}

// NewNonBlocking returns a non-blocking stack of capacity k over a
// fresh abortable stack, with the paper's bare retry loop.
func NewNonBlocking[T any](k int) *NonBlocking[T] {
	return NewNonBlockingFrom[T](NewAbortable[T](k), nil)
}

// NewNonBlockingFrom builds the Figure 2 construction over any weak
// stack, pacing retries with m (nil for the bare loop). Sharing one
// weak stack between a NonBlocking wrapper and other users is safe:
// the construction adds no state of its own.
func NewNonBlockingFrom[T any](weak Weak[T], m core.Manager) *NonBlocking[T] {
	return &NonBlocking[T]{weak: weak, m: m}
}

// SetRetryPolicy replaces the contention manager and sets an attempt
// budget for Push/Pop (0 = unbounded, the paper's loop). With a
// budget, an operation whose every attempt aborts returns
// core.ErrExhausted with no effect — graceful degradation instead of
// livelock. Call at quiescence (construction time).
func (s *NonBlocking[T]) SetRetryPolicy(m core.Manager, budget int) {
	s.m, s.budget = m, budget
}

// RetryPolicy reports the current contention manager and attempt
// budget (tests and diagnostics).
func (s *NonBlocking[T]) RetryPolicy() (core.Manager, int) { return s.m, s.budget }

// Push pushes v, retrying aborted attempts; it returns nil or ErrFull
// (or core.ErrExhausted when a retry budget is set and spent).
func (s *NonBlocking[T]) Push(v T) error {
	try := func() (error, bool) {
		err := s.weak.TryPush(v)
		return err, err != ErrAborted
	}
	if s.budget > 0 {
		err, rerr := core.RetryBudget(s.m, s.budget, try)
		if rerr != nil {
			return rerr
		}
		return err
	}
	return core.Retry(s.m, try)
}

// Pop pops the top value, retrying aborted attempts; it returns the
// value or ErrEmpty (or core.ErrExhausted when a retry budget is set
// and spent).
func (s *NonBlocking[T]) Pop() (T, error) {
	type res struct {
		v   T
		err error
	}
	try := func() (res, bool) {
		v, err := s.weak.TryPop()
		return res{v, err}, err != ErrAborted
	}
	if s.budget > 0 {
		r, rerr := core.RetryBudget(s.m, s.budget, try)
		if rerr != nil {
			return r.v, rerr
		}
		return r.v, r.err
	}
	r := core.Retry(s.m, try)
	return r.v, r.err
}

// PushCounted is Push instrumented for E3/E7: it also reports how many
// attempts aborted before success.
func (s *NonBlocking[T]) PushCounted(v T) (error, int) {
	return core.RetryCounted(s.m, func() (error, bool) {
		err := s.weak.TryPush(v)
		return err, err != ErrAborted
	})
}

// PopCounted is Pop instrumented for E3/E7.
func (s *NonBlocking[T]) PopCounted() (T, error, int) {
	type res struct {
		v   T
		err error
	}
	r, aborts := core.RetryCounted(s.m, func() (res, bool) {
		v, err := s.weak.TryPop()
		return res{v, err}, err != ErrAborted
	})
	return r.v, r.err, aborts
}

// Progress reports NonBlocking: at least one concurrent operation
// terminates (proved in Shafiei's paper, cited as [22]).
func (s *NonBlocking[T]) Progress() core.Progress { return core.NonBlocking }
