package stack

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// Packed is Figure 1 on the bit-packed register backend: TOP and every
// STACK[x] are single 64-bit words holding 〈index, value, seqnb〉 /
// 〈value, sn〉 (see memory/pack.go for the layout and the wrap-around
// caveat). This matches the paper's machine model — one-word
// Compare&Swap, unconditional help CAS — and is allocation-free, at
// the price of uint32 values and capacity <= memory.MaxIndex.
type Packed struct {
	top   *memory.Word
	cells *memory.Words
	k     int
}

// NewPacked returns a packed abortable stack of capacity k in
// [1, memory.MaxIndex].
func NewPacked(k int) *Packed { return NewPackedObserved(k, nil) }

// NewPackedObserved returns a packed stack whose every shared access
// is reported to obs first (nil disables instrumentation).
func NewPackedObserved(k int, obs memory.Observer) *Packed {
	if k < 1 || k > memory.MaxIndex {
		panic("stack: packed capacity out of range")
	}
	s := &Packed{k: k}
	s.top = memory.NewWordObserved(memory.PackTop(0, 0, 0), obs)
	// STACK[0] is the dummy entry 〈⊥, -1〉; STACK[1..k] start at 〈⊥, 0〉.
	s.cells = memory.NewWordsInit(k+1, func(i int) uint64 {
		if i == 0 {
			return memory.PackCell(0, memory.PrevSeq(0))
		}
		return memory.PackCell(0, 0)
	}, obs)
	return s
}

// Capacity returns k, the number of storable elements.
func (s *Packed) Capacity() int { return s.k }

// help is lines 15-16 verbatim: read the cell's current value, then
// C&S(〈stacktop, seqnb-1〉, 〈value, seqnb〉). With packed words the CAS
// compares the full bit pattern, so no extra guard is needed — a
// mismatching sequence number simply fails the CAS, exactly as in the
// paper.
func (s *Packed) help(index int, value uint32, seq uint32) {
	reg := s.cells.At(index)
	stacktop, _ := memory.UnpackCell(reg.Read()) // line 15
	reg.CAS(                                     // line 16
		memory.PackCell(stacktop, memory.PrevSeq(seq)),
		memory.PackCell(value, seq),
	)
}

// TryPush is weak_push(v) on the packed backend; see Abortable.TryPush
// for the contract.
func (s *Packed) TryPush(v uint32) error {
	topw := s.top.Read() // line 01
	index, value, seq := memory.UnpackTop(topw)
	s.help(index, value, seq) // line 02
	if index == s.k {
		return ErrFull // line 03
	}
	_, snNext := memory.UnpackCell(s.cells.At(index + 1).Read()) // line 04
	newTop := memory.PackTop(index+1, v, memory.NextSeq(snNext)) // line 05
	if s.top.CAS(topw, newTop) {                                 // line 06
		return nil
	}
	return ErrAborted
}

// TryPop is weak_pop() on the packed backend; see Abortable.TryPop for
// the contract.
func (s *Packed) TryPop() (uint32, error) {
	topw := s.top.Read() // line 08
	index, value, seq := memory.UnpackTop(topw)
	s.help(index, value, seq) // line 09
	if index == 0 {
		return 0, ErrEmpty // line 10
	}
	bv, bs := memory.UnpackCell(s.cells.At(index - 1).Read()) // line 11
	newTop := memory.PackTop(index-1, bv, memory.NextSeq(bs)) // line 12
	if s.top.CAS(topw, newTop) {                              // line 13
		return value, nil
	}
	return 0, ErrAborted
}

// Len returns the number of elements; quiescent states only.
func (s *Packed) Len() int {
	index, _, _ := memory.UnpackTop(s.top.Read())
	return index
}

// Snapshot returns the contents bottom-first; quiescent states only.
func (s *Packed) Snapshot() []uint32 {
	index, value, _ := memory.UnpackTop(s.top.Read())
	out := make([]uint32, 0, index)
	for x := 1; x < index; x++ {
		v, _ := memory.UnpackCell(s.cells.At(x).Read())
		out = append(out, v)
	}
	if index > 0 {
		out = append(out, value)
	}
	return out
}

// Progress classifies the packed abortable stack (see
// Abortable.Progress).
func (s *Packed) Progress() core.Progress { return core.ObstructionFree }

// Compile-time checks that both backends implement the weak interface.
var (
	_ Weak[uint32] = (*Packed)(nil)
	_ Weak[int]    = (*Abortable[int])(nil)
)
