package stack

import (
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/memory"
)

// combOp is one published stack request: push (with the value) or pop.
type combOp[T any] struct {
	push bool
	v    T
}

// combRes is a served request's outcome: the popped value (pop only)
// and the sentinel error (nil, ErrFull, or ErrEmpty — never
// ErrAborted).
type combRes[T any] struct {
	v   T
	err error
}

// Combining is the flat-combining stack: the Figure 3 interface and
// fast path with a batched contended path. Solo operations still
// complete on the six-access lock-free shortcut; operations that hit
// contention publish their request and one combiner serves the whole
// batch under a single combiner-lock acquisition, instead of every
// process taking the slow-path lock in turn. See internal/combine.
type Combining[T any] struct {
	// tryPush/tryPop are the weak backend's single attempts, taking the
	// pid of the executing process (the caller on the fast path, the
	// combiner when serving the publication list) so pooled backends
	// can recycle through per-pid free lists.
	tryPush  func(pid int, v T) error
	tryPop   func(pid int) (T, error)
	length   func() int // nil when the backend exposes no Len
	snapshot func() []T // nil when the backend exposes no Snapshot
	core     *combine.Core[combOp[T], combRes[T]]
}

// NewCombining returns a flat-combining stack of capacity k for n
// processes (pids in [0, n)) over the paper's Figure 1 weak stack.
func NewCombining[T any](k, n int) *Combining[T] {
	return NewCombiningFrom[T](NewAbortable[T](k), n)
}

// NewCombiningFrom builds the flat-combining construction over any
// weak stack for n processes.
func NewCombiningFrom[T any](weak Weak[T], n int) *Combining[T] {
	s := &Combining[T]{
		tryPush: func(_ int, v T) error { return weak.TryPush(v) },
		tryPop:  func(_ int) (T, error) { return weak.TryPop() },
	}
	if w, ok := weak.(interface{ Len() int }); ok {
		s.length = w.Len
	}
	if w, ok := weak.(interface{ Snapshot() []T }); ok {
		s.snapshot = w.Snapshot
	}
	s.core = combine.NewCore[combOp[T], combRes[T]](n, s.attempt)
	return s
}

// NewCombiningPooled returns a flat-combining stack of capacity k for
// n processes over the pooled abortable backend: the whole strong
// path — fast-path attempt, published request, combiner service — runs
// allocation-free (experiment E17).
func NewCombiningPooled(k, n int) *Combining[uint64] {
	weak := NewAbortablePooled(k, n)
	s := &Combining[uint64]{
		tryPush:  weak.TryPush,
		tryPop:   weak.TryPop,
		length:   weak.Len,
		snapshot: weak.Snapshot,
	}
	s.core = combine.NewCore[combOp[uint64], combRes[uint64]](n, s.attempt)
	return s
}

// NewCombiningObserved returns a flat-combining stack of capacity k
// for n processes over the observed boxed weak stack, with the
// combiner lease, heartbeat and CONTENTION observed too: under
// internal/sched's controller the whole contended path — publication,
// combining, crash, takeover — becomes deterministically schedulable.
func NewCombiningObserved(k, n int, obs memory.Observer) *Combining[uint64] {
	weak := NewAbortableObserved[uint64](k, obs)
	s := &Combining[uint64]{
		tryPush:  func(_ int, v uint64) error { return weak.TryPush(v) },
		tryPop:   func(_ int) (uint64, error) { return weak.TryPop() },
		length:   weak.Len,
		snapshot: weak.Snapshot,
	}
	s.core = combine.NewCoreObserved[combOp[uint64], combRes[uint64]](n, s.attempt, obs)
	return s
}

// attempt adapts the weak stack to combine.Core's try shape: one weak
// attempt by pid, ok=false iff it aborted.
func (s *Combining[T]) attempt(pid int, op combOp[T]) (combRes[T], bool) {
	if op.push {
		err := s.tryPush(pid, op.v)
		return combRes[T]{err: err}, err != ErrAborted
	}
	v, err := s.tryPop(pid)
	return combRes[T]{v: v, err: err}, err != ErrAborted
}

// Push pushes v on behalf of pid; it returns nil or ErrFull and never
// aborts.
func (s *Combining[T]) Push(pid int, v T) error {
	return s.core.Do(pid, combOp[T]{push: true, v: v}).err
}

// Pop pops the top value on behalf of pid; it returns the value or
// ErrEmpty and never aborts.
func (s *Combining[T]) Pop(pid int) (T, error) {
	r := s.core.Do(pid, combOp[T]{})
	return r.v, r.err
}

// PushContended pushes v entirely on the contended path: the request
// is published without attempting the lock-free shortcut. Benchmarks
// (E15) use it to isolate the batched fallback.
func (s *Combining[T]) PushContended(pid int, v T) error {
	return s.core.DoContended(pid, combOp[T]{push: true, v: v}).err
}

// PopContended pops entirely on the contended path; see PushContended.
func (s *Combining[T]) PopContended(pid int) (T, error) {
	r := s.core.DoContended(pid, combOp[T]{})
	return r.v, r.err
}

// Len returns the weak backend's length when it exposes one
// (quiescent states only), -1 otherwise.
func (s *Combining[T]) Len() int {
	if s.length != nil {
		return s.length()
	}
	return -1
}

// Snapshot returns the weak backend's elements bottom-first when it
// exposes a snapshot, nil otherwise. Quiescent states only — the
// adaptive tier calls it on a quiesced source to rebuild the migration
// target.
func (s *Combining[T]) Snapshot() []T {
	if s.snapshot != nil {
		return s.snapshot()
	}
	return nil
}

// AbandonPush publishes a push request that will never be collected —
// the scenario layer's model of a process crashing mid-push: the
// request is pending and a combiner may or may not serve it. pid must
// never operate on this stack again.
func (s *Combining[T]) AbandonPush(pid int, v T) {
	s.core.Publish(pid, combOp[T]{push: true, v: v})
}

// AbandonPop is AbandonPush for a pop request.
func (s *Combining[T]) AbandonPop(pid int) {
	s.core.Publish(pid, combOp[T]{})
}

// ArmCombinerCrash arms the combine.Core fault injection: pid's next
// combining pass dies after `after` slot applications with the lease
// held. See combine.Core.ArmCombinerCrash.
func (s *Combining[T]) ArmCombinerCrash(pid, after int) bool {
	return s.core.ArmCombinerCrash(pid, after)
}

// SetLeaseBudget forwards to combine.Core.SetLeaseBudget (tests).
func (s *Combining[T]) SetLeaseBudget(n int) { s.core.SetLeaseBudget(n) }

// Stats exposes the fast-path and combining counters.
func (s *Combining[T]) Stats() combine.Stats { return s.core.Stats() }

// ResetStats zeroes the counters (between quiescent phases only).
func (s *Combining[T]) ResetStats() { s.core.ResetStats() }

// Progress reports StarvationFree: every published request is served
// by the current or next combining pass (internal/combine's liveness
// argument).
func (s *Combining[T]) Progress() core.Progress { return core.StarvationFree }

var _ Strong[int] = (*Combining[int])(nil)
