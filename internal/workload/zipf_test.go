package workload

import "testing"

func TestZipfRange(t *testing.T) {
	z := NewZipf(1.1, 64)
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := z.Next(r); v < 0 || v >= 64 {
			t.Fatalf("Next = %d, outside [0, 64)", v)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(1.2, 128)
	a, b := NewRNG(17), NewRNG(17)
	for i := 0; i < 1000; i++ {
		if z.Next(a) != z.Next(b) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must dominate: with s=1.2 over 1024 ranks the hottest
	// key draws well over 10% of the mass, and the top 8 ranks a
	// majority — while a uniform draw would give 8/1024 < 1%.
	z := NewZipf(1.2, 1024)
	r := NewRNG(23)
	const n = 100000
	counts := make([]int, 1024)
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	if counts[0] < n/10 {
		t.Fatalf("rank 0 drew %d of %d, want > %d", counts[0], n, n/10)
	}
	top8 := 0
	for _, c := range counts[:8] {
		top8 += c
	}
	if top8 < n/2 {
		t.Fatalf("top 8 ranks drew %d of %d, want a majority", top8, n)
	}
	// Monotone-ish head: rank 0 beats rank 1 beats rank 7.
	if counts[0] <= counts[1] || counts[1] <= counts[7] {
		t.Fatalf("head not decreasing: %v", counts[:8])
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(1.1, 0) },
		func() { NewZipf(0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad NewZipf args did not panic")
				}
			}()
			f()
		}()
	}
}
