package workload

import "math"

// Zipf draws ranks from a Zipf(s) distribution over [0, n): rank r is
// drawn with probability proportional to 1/(r+1)^s, so rank 0 is the
// hottest key. The sampler precomputes the CDF once and inverts it
// with a binary search per draw, so sampling is deterministic for a
// given RNG state and allocation-free after construction.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a sampler over [0, n) with skew s > 0 (s around
// 1 gives the classic hot-key shape; larger s concentrates harder).
func NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf needs n > 0")
	}
	if s <= 0 {
		panic("workload: NewZipf needs s > 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the rank-space size the sampler was built for.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next rank using r. The sampler itself is read-only
// after construction, so one Zipf may serve many goroutines as long
// as each supplies its own RNG.
func (z *Zipf) Next(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
