// Package workload generates the deterministic operation streams the
// experiments drive through the stacks and queues: a seedable
// splitmix64 PRNG (reproducible across runs and platforms, unlike the
// global math/rand), push/pop operation mixes, collision-free value
// encoding, and the phased solo/contended schedules that exhibit
// contention-sensitivity (E6).
package workload
