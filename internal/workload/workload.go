package workload

import (
	"math"
	"time"
)

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and
// deterministic for a given seed on every platform. Not safe for
// concurrent use; give each goroutine its own, seeded distinctly.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Mix is an operation mix for a two-operation object.
type Mix struct {
	// PushFraction is the probability that the next operation is a
	// push/enqueue (the rest are pops/dequeues).
	PushFraction float64
}

// Balanced is the 50/50 mix used by most experiments.
var Balanced = Mix{PushFraction: 0.5}

// PushHeavy and PopHeavy skew the mix to stress one end.
var (
	PushHeavy = Mix{PushFraction: 0.8}
	PopHeavy  = Mix{PushFraction: 0.2}
)

// NextIsPush draws the next operation kind from the mix.
func (m Mix) NextIsPush(r *RNG) bool { return r.Float64() < m.PushFraction }

// SetOpKind is one of the set tier's three operations.
type SetOpKind int

// Set operation kinds drawn by SetMix.
const (
	SetAdd SetOpKind = iota
	SetRemove
	SetContains
)

// SetMix is an operation mix for the set tier's three-operation
// shape; the remainder after adds and removes is membership checks.
type SetMix struct {
	// AddFraction is the probability that the next operation inserts.
	AddFraction float64
	// RemoveFraction is the probability that it deletes.
	RemoveFraction float64
}

// The E18 mixes: a Contains-dominated 90/9/1 read-mostly workload and
// a 50/25/25 update-heavy one.
var (
	SetReadMostly = SetMix{AddFraction: 0.09, RemoveFraction: 0.01}
	SetMixed      = SetMix{AddFraction: 0.25, RemoveFraction: 0.25}
)

// Next draws the next set operation kind from the mix.
func (m SetMix) Next(r *RNG) SetOpKind {
	f := r.Float64()
	switch {
	case f < m.AddFraction:
		return SetAdd
	case f < m.AddFraction+m.RemoveFraction:
		return SetRemove
	default:
		return SetContains
	}
}

// ExpDuration draws an exponentially distributed duration with the
// given mean: the inter-arrival gaps of a Poisson arrival process and
// the memoryless think times an open-loop session engine schedules
// with. A non-positive mean returns 0 (a closed loop).
func (r *RNG) ExpDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return time.Duration(-float64(mean) * math.Log(1-u))
}

// GeometricLen draws a session length (>= 1 operations) from a
// geometric distribution with the given mean: after each operation the
// session ends with probability 1/mean, so short sessions dominate but
// a heavy tail of long-lived connections persists — the connection
// churn shape a soak run needs. A mean of 1 or less pins every
// session to a single operation.
func (r *RNG) GeometricLen(mean float64) int {
	if mean <= 1 {
		return 1
	}
	n := 1
	p := 1 / mean
	for r.Float64() >= p {
		n++
	}
	return n
}

// Value encodes a collision-free payload for operation i of process
// pid, so conservation checks can attribute every value.
func Value(pid int, i int) uint64 { return uint64(pid)<<32 | uint64(uint32(i)) }

// Owner decodes the producing process of a Value.
func Owner(v uint64) int { return int(v >> 32) }

// Index decodes the per-process index of a Value.
func Index(v uint64) int { return int(uint32(v)) }

// Phase describes one phase of a phased workload (experiment E6).
type Phase struct {
	// Procs is the number of processes active in this phase (1 =
	// contention-free).
	Procs int
	// Ops is the number of operations each active process performs.
	Ops int
}

// SoloThenStorm is the canonical E6 schedule: a contention-free warm
// phase, a full-contention storm, and a solo cool-down — the
// contention-sensitive stack should match lock-free cost in phases 1
// and 3 and lock-based robustness in phase 2.
func SoloThenStorm(procs, opsPerPhase int) []Phase {
	return []Phase{
		{Procs: 1, Ops: opsPerPhase},
		{Procs: procs, Ops: opsPerPhase},
		{Procs: 1, Ops: opsPerPhase},
	}
}
