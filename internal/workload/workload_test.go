package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(11)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d (expected ~%d)", i, c, n, n/10)
		}
	}
}

func TestMixFractions(t *testing.T) {
	r := NewRNG(3)
	pushes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if PushHeavy.NextIsPush(r) {
			pushes++
		}
	}
	if frac := float64(pushes) / n; frac < 0.78 || frac > 0.82 {
		t.Fatalf("PushHeavy fraction = %v, want ~0.8", frac)
	}
}

func TestValueRoundTrip(t *testing.T) {
	f := func(pid uint16, i uint32) bool {
		v := Value(int(pid), int(i))
		return Owner(v) == int(pid) && Index(v) == int(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCollisionFree(t *testing.T) {
	seen := map[uint64]bool{}
	for pid := 0; pid < 8; pid++ {
		for i := 0; i < 100; i++ {
			v := Value(pid, i)
			if seen[v] {
				t.Fatalf("collision at pid=%d i=%d", pid, i)
			}
			seen[v] = true
		}
	}
}

func TestExpDurationMean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	mean := 50 * time.Microsecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("ExpDuration = %v, negative", d)
		}
		sum += d
	}
	got := sum / n
	if got < mean*9/10 || got > mean*11/10 {
		t.Fatalf("ExpDuration sample mean = %v, want ~%v", got, mean)
	}
	if r.ExpDuration(0) != 0 || r.ExpDuration(-time.Second) != 0 {
		t.Fatal("non-positive mean must draw 0")
	}
}

func TestGeometricLenMean(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	sum, min := 0, 1<<30
	for i := 0; i < n; i++ {
		l := r.GeometricLen(32)
		if l < 1 {
			t.Fatalf("GeometricLen = %d, below 1", l)
		}
		if l < min {
			min = l
		}
		sum += l
	}
	if got := float64(sum) / n; got < 32*0.9 || got > 32*1.1 {
		t.Fatalf("GeometricLen sample mean = %v, want ~32", got)
	}
	if min != 1 {
		t.Fatalf("GeometricLen never drew a 1-op session (min %d)", min)
	}
	if r.GeometricLen(1) != 1 || r.GeometricLen(0) != 1 {
		t.Fatal("mean <= 1 must pin sessions to one op")
	}
}

func TestSoloThenStorm(t *testing.T) {
	phases := SoloThenStorm(8, 1000)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(phases))
	}
	if phases[0].Procs != 1 || phases[1].Procs != 8 || phases[2].Procs != 1 {
		t.Fatalf("phase procs = %v", phases)
	}
	for _, p := range phases {
		if p.Ops != 1000 {
			t.Fatalf("phase ops = %d, want 1000", p.Ops)
		}
	}
}
