// Package cmanager provides contention managers: policies that decide
// how a process behaves between failed attempts of a weak (abortable)
// operation. The paper points to contention management (§5) as the
// standard way to boost obstruction-free and non-blocking algorithms
// toward stronger liveness; the Figure 2 retry loop takes any of these
// via core.Manager, and experiment E7 ablates them against each other:
//
//   - None — the paper's bare retry loop;
//   - Yield — surrender the processor after every abort;
//   - Spin — burn a fixed number of iterations before retrying;
//   - Backoff — exponential backoff with deterministic jitter, the
//     classic choice for CAS-contended structures.
//
// All managers are safe for concurrent use by any number of
// goroutines.
package cmanager
