package cmanager

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestManagersDriveRetryToCompletion(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := ByName(name)
			remaining := 10
			got := core.Retry(m, func() (int, bool) {
				if remaining > 0 {
					remaining--
					return 0, false
				}
				return 7, true
			})
			if got != 7 {
				t.Fatalf("Retry = %d, want 7", got)
			}
		})
	}
}

func TestByNameUnknownIsNil(t *testing.T) {
	if ByName("bogus") != nil {
		t.Fatal("unknown manager name did not return nil")
	}
}

func TestNamesMatchesByName(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Fatalf("Names lists %q but ByName rejects it", name)
		}
	}
}

func TestBackoffBoundedAndConcurrent(t *testing.T) {
	// Backoff with huge attempt counts must not explode, and must be
	// usable from many goroutines at once.
	b := NewBackoff(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 1; attempt <= 40; attempt++ {
				b.OnAbort(attempt)
			}
			b.OnSuccess()
		}()
	}
	wg.Wait()
}

func TestSpinDefault(t *testing.T) {
	Spin{}.OnAbort(1)              // default iterations
	Spin{Iterations: 5}.OnAbort(2) // explicit
}

func TestNoneAndYieldAreNoops(t *testing.T) {
	None{}.OnAbort(3)
	None{}.OnSuccess()
	Yield{}.OnAbort(3)
	Yield{}.OnSuccess()
}
