package cmanager

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestManagersDriveRetryToCompletion(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := ByName(name)
			remaining := 10
			got := core.Retry(m, func() (int, bool) {
				if remaining > 0 {
					remaining--
					return 0, false
				}
				return 7, true
			})
			if got != 7 {
				t.Fatalf("Retry = %d, want 7", got)
			}
		})
	}
}

func TestByNameUnknownIsNil(t *testing.T) {
	if ByName("bogus") != nil {
		t.Fatal("unknown manager name did not return nil")
	}
}

func TestNamesMatchesByName(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Fatalf("Names lists %q but ByName rejects it", name)
		}
	}
}

func TestBackoffBoundedAndConcurrent(t *testing.T) {
	// Backoff with huge attempt counts must not explode, and must be
	// usable from many goroutines at once.
	b := NewBackoff(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 1; attempt <= 40; attempt++ {
				b.OnAbort(attempt)
			}
			b.OnSuccess()
		}()
	}
	wg.Wait()
}

func TestAdaptiveLevelDoublesAndDecays(t *testing.T) {
	a := NewAdaptive(1, 8)
	if got := a.Level(); got != 1 {
		t.Fatalf("fresh level = %d, want the floor 1", got)
	}
	// Each operation's first abort doubles the shared level...
	for i, want := range []int{2, 4, 8, 8, 8} {
		a.OnAbort(1)
		if got := a.Level(); got != want {
			t.Fatalf("level after first-abort #%d = %d, want %d (capped at MaxYields)", i+1, got, want)
		}
	}
	// ...a later abort of the same operation does not move it...
	a.OnAbort(2)
	a.OnAbort(3)
	if got := a.Level(); got != 8 {
		t.Fatalf("level after later aborts = %d, want unchanged 8", got)
	}
	// ...and every success halves it back toward the floor.
	for i, want := range []int{4, 2, 1, 1} {
		a.OnSuccess()
		if got := a.Level(); got != want {
			t.Fatalf("level after success #%d = %d, want %d (floored at MinYields)", i+1, got, want)
		}
	}
}

func TestAdaptiveDefaultsAndConcurrency(t *testing.T) {
	a := NewAdaptive(0, 0) // defaults: floor 1, cap 256
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 1; attempt <= 40; attempt++ {
				a.OnAbort(attempt)
			}
			a.OnSuccess()
		}()
	}
	wg.Wait()
	if got := a.Level(); got < 1 || got > 256 {
		t.Fatalf("level = %d, escaped the [1, 256] default bounds", got)
	}
}

func TestByNameAdaptive(t *testing.T) {
	m := ByName("adaptive")
	a, ok := m.(*Adaptive)
	if !ok {
		t.Fatalf("ByName(adaptive) = %T, want *Adaptive", m)
	}
	a.OnAbort(1)
	if a.Level() <= 1 {
		t.Fatal("ByName adaptive manager does not adapt")
	}
}

func TestSpinDefault(t *testing.T) {
	Spin{}.OnAbort(1)              // default iterations
	Spin{Iterations: 5}.OnAbort(2) // explicit
}

func TestNoneAndYieldAreNoops(t *testing.T) {
	None{}.OnAbort(3)
	None{}.OnSuccess()
	Yield{}.OnAbort(3)
	Yield{}.OnSuccess()
}
