package cmanager

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
)

func TestPriorityEscalatesAndReleases(t *testing.T) {
	p := NewPriority(3)
	h := p.ForProc().(*prioHandle)
	h.OnAbort(1)
	h.OnAbort(2)
	if h.holds {
		t.Fatal("escalated below threshold")
	}
	h.OnAbort(3)
	if !h.holds {
		t.Fatal("did not escalate at threshold")
	}
	if p.token.Load() != 1 {
		t.Fatal("token not taken")
	}
	h.OnAbort(4) // holding: immediate retry, no deadlock
	h.OnSuccess()
	if h.holds || p.token.Load() != 0 {
		t.Fatal("token not released on success")
	}
	h.OnSuccess() // idempotent when not holding
}

func TestPriorityTokenIsExclusive(t *testing.T) {
	p := NewPriority(1)
	a := p.ForProc().(*prioHandle)
	b := p.ForProc().(*prioHandle)
	a.OnAbort(1)
	if !a.holds {
		t.Fatal("a did not take the token")
	}
	done := make(chan struct{})
	go func() {
		b.OnAbort(1) // must block until a releases
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("b acquired the token while a held it")
	default:
	}
	a.OnSuccess()
	<-done
	if !b.holds {
		t.Fatal("b did not take the released token")
	}
	b.OnSuccess()
}

func TestPriorityDrivesContendedRetriesToCompletion(t *testing.T) {
	// A CAS counter under heavy contention with per-proc handles:
	// everything completes and the count is exact.
	const procs, iters = 8, 5000
	p := NewPriority(0)
	w := memory.NewWord(0)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := p.ForProc()
			for i := 0; i < iters; i++ {
				core.Retry(m, func() (uint64, bool) {
					v := w.Read()
					if w.CAS(v, v+1) {
						return v + 1, true
					}
					return 0, false
				})
			}
		}()
	}
	wg.Wait()
	if got := w.Read(); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	if p.token.Load() != 0 {
		t.Fatal("token leaked")
	}
}

func TestPriorityDefaultThreshold(t *testing.T) {
	h := NewPriority(0).ForProc().(*prioHandle)
	if h.threshold != 8 {
		t.Fatalf("default threshold = %d, want 8", h.threshold)
	}
}
