package cmanager

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// Priority is a panic-mode contention manager in the spirit of the
// boosting transformations the paper cites in §5 (Fich, Luchangco,
// Moir & Shavit: obstruction-free algorithms can be practically
// wait-free): a process whose operation keeps aborting acquires a
// global priority token; while it holds the token it retries at full
// speed and everyone else backs off harder, so the starving operation
// finishes. With the token released on success, long-run fairness
// emerges without locking the object itself.
//
// Priority is shared state; each goroutine must drive its retries
// through its own handle (ForProc), because the manager must remember
// whether *this* process holds the token between callbacks.
type Priority struct {
	token atomic.Uint32
	// Threshold is the consecutive-abort count after which a process
	// escalates to token acquisition (default 8 when zero).
	Threshold int
}

// NewPriority returns a priority manager with the given escalation
// threshold (0 for the default).
func NewPriority(threshold int) *Priority {
	return &Priority{Threshold: threshold}
}

// ForProc returns this process's handle; handles share the token.
func (p *Priority) ForProc() core.Manager {
	t := p.Threshold
	if t == 0 {
		t = 8
	}
	return &prioHandle{shared: p, threshold: t}
}

// prioHandle is the per-process view of a Priority manager.
type prioHandle struct {
	shared    *Priority
	threshold int
	holds     bool
}

// OnAbort implements core.Manager: yield below the threshold, then
// escalate by taking the global token and retrying at full speed.
func (h *prioHandle) OnAbort(attempt int) {
	if h.holds {
		return // highest priority: retry immediately
	}
	if attempt < h.threshold {
		runtime.Gosched()
		return
	}
	spins := 0
	for !h.shared.token.CompareAndSwap(0, 1) {
		if spins++; spins >= 32 {
			spins = 0
			runtime.Gosched()
		}
	}
	h.holds = true
}

// OnSuccess implements core.Manager: release the token if held.
func (h *prioHandle) OnSuccess() {
	if h.holds {
		h.holds = false
		h.shared.token.Store(0)
	}
}

var _ core.Manager = (*prioHandle)(nil)
