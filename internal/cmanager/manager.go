package cmanager

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// None is the paper's bare retry loop: retry immediately after every
// abort. Equivalent to passing a nil manager, provided for explicit
// configuration tables.
type None struct{}

// OnAbort implements core.Manager (it does nothing).
func (None) OnAbort(int) {}

// OnSuccess implements core.Manager (it does nothing).
func (None) OnSuccess() {}

// Yield cedes the processor after every abort, letting the interfering
// operation finish — the cheapest useful manager on an oversubscribed
// machine.
type Yield struct{}

// OnAbort implements core.Manager by yielding once.
func (Yield) OnAbort(int) { runtime.Gosched() }

// OnSuccess implements core.Manager (it does nothing).
func (Yield) OnSuccess() {}

// Spin busy-waits a fixed number of iterations after every abort,
// trading CPU for latency when the interfering operation is short.
type Spin struct {
	// Iterations is the number of busy iterations per abort (default
	// 64 when zero).
	Iterations int
}

var spinSink atomic.Uint64

// OnAbort implements core.Manager by busy-waiting.
func (s Spin) OnAbort(int) {
	n := s.Iterations
	if n == 0 {
		n = 64
	}
	acc := uint64(0)
	for i := 0; i < n; i++ {
		acc += uint64(i)
	}
	spinSink.Store(acc) // defeat dead-code elimination
}

// OnSuccess implements core.Manager (it does nothing).
func (Spin) OnSuccess() {}

// Backoff yields an exponentially growing, jittered number of times
// after consecutive aborts: 2^attempt capped at MaxYields, with up to
// 50% deterministic jitter to break lock-step retry convoys.
type Backoff struct {
	// MaxYields caps the backoff (default 256 when zero).
	MaxYields int

	seed atomic.Uint64
}

// NewBackoff returns a Backoff manager with the given cap and a fixed
// jitter seed (deterministic across runs).
func NewBackoff(maxYields int) *Backoff {
	b := &Backoff{MaxYields: maxYields}
	b.seed.Store(0x9e3779b97f4a7c15)
	return b
}

// OnAbort implements core.Manager with capped exponential backoff.
func (b *Backoff) OnAbort(attempt int) {
	max := b.MaxYields
	if max == 0 {
		max = 256
	}
	n := 1
	if attempt < 30 {
		n = 1 << attempt
	} else {
		n = max
	}
	if n > max {
		n = max
	}
	// Deterministic jitter in [n/2, n].
	s := b.seed.Add(0x9e3779b97f4a7c15)
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	n = n/2 + int(s%uint64(n/2+1))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// OnSuccess implements core.Manager (the per-operation attempt counter
// is maintained by the retry loop, so there is nothing to reset).
func (b *Backoff) OnSuccess() {}

// ByName returns the named manager, used by the experiment CLI:
// "none", "yield", "spin", "backoff". Unknown names return nil (the
// bare loop).
func ByName(name string) core.Manager {
	switch name {
	case "none":
		return None{}
	case "yield":
		return Yield{}
	case "spin":
		return Spin{}
	case "backoff":
		return NewBackoff(0)
	default:
		return nil
	}
}

// Names lists the managers ByName understands, in ablation order.
func Names() []string { return []string{"none", "yield", "spin", "backoff"} }

var (
	_ core.Manager = None{}
	_ core.Manager = Yield{}
	_ core.Manager = Spin{}
	_ core.Manager = (*Backoff)(nil)
)
