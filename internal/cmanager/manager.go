package cmanager

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// None is the paper's bare retry loop: retry immediately after every
// abort. Equivalent to passing a nil manager, provided for explicit
// configuration tables.
type None struct{}

// OnAbort implements core.Manager (it does nothing).
func (None) OnAbort(int) {}

// OnSuccess implements core.Manager (it does nothing).
func (None) OnSuccess() {}

// Yield cedes the processor after every abort, letting the interfering
// operation finish — the cheapest useful manager on an oversubscribed
// machine.
type Yield struct{}

// OnAbort implements core.Manager by yielding once.
func (Yield) OnAbort(int) { runtime.Gosched() }

// OnSuccess implements core.Manager (it does nothing).
func (Yield) OnSuccess() {}

// Spin busy-waits a fixed number of iterations after every abort,
// trading CPU for latency when the interfering operation is short.
type Spin struct {
	// Iterations is the number of busy iterations per abort (default
	// 64 when zero).
	Iterations int
}

var spinSink atomic.Uint64

// OnAbort implements core.Manager by busy-waiting.
func (s Spin) OnAbort(int) {
	n := s.Iterations
	if n == 0 {
		n = 64
	}
	acc := uint64(0)
	for i := 0; i < n; i++ {
		acc += uint64(i)
	}
	spinSink.Store(acc) // defeat dead-code elimination
}

// OnSuccess implements core.Manager (it does nothing).
func (Spin) OnSuccess() {}

// Backoff yields an exponentially growing, jittered number of times
// after consecutive aborts: 2^attempt capped at MaxYields, with up to
// 50% deterministic jitter to break lock-step retry convoys.
type Backoff struct {
	// MaxYields caps the backoff (default 256 when zero).
	MaxYields int

	seed atomic.Uint64
}

// NewBackoff returns a Backoff manager with the given cap and a fixed
// jitter seed (deterministic across runs).
func NewBackoff(maxYields int) *Backoff {
	b := &Backoff{MaxYields: maxYields}
	b.seed.Store(0x9e3779b97f4a7c15)
	return b
}

// OnAbort implements core.Manager with capped exponential backoff.
func (b *Backoff) OnAbort(attempt int) {
	max := b.MaxYields
	if max == 0 {
		max = 256
	}
	n := 1
	if attempt < 30 {
		n = 1 << attempt
	} else {
		n = max
	}
	if n > max {
		n = max
	}
	// Deterministic jitter in [n/2, n].
	s := b.seed.Add(0x9e3779b97f4a7c15)
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	n = n/2 + int(s%uint64(n/2+1))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// OnSuccess implements core.Manager (the per-operation attempt counter
// is maintained by the retry loop, so there is nothing to reset).
func (b *Backoff) OnSuccess() {}

// Adaptive is bounded exponential backoff with cross-operation
// memory: a shared "level" word remembers how contended the object
// was for recent operations. An operation's first abort starts its
// backoff at the current level instead of at 1, so a process joining
// an already-contended object backs off immediately; every successful
// operation decays the level multiplicatively. The level moves by
// doubling/halving between MinYields and MaxYields — a multiplicative
// increase / multiplicative-decrease loop, the load-shedding analogue
// of the §5 exponential manager.
type Adaptive struct {
	// MinYields is the floor the level decays to (default 1 when zero).
	MinYields int
	// MaxYields caps both the level and any single backoff (default
	// 256 when zero).
	MaxYields int

	level atomic.Int64
	seed  atomic.Uint64
}

// NewAdaptive returns an Adaptive manager between min and max yields
// with a fixed jitter seed (deterministic across runs).
func NewAdaptive(min, max int) *Adaptive {
	a := &Adaptive{MinYields: min, MaxYields: max}
	a.seed.Store(0x9e3779b97f4a7c15)
	return a
}

func (a *Adaptive) bounds() (min, max int) {
	min, max = a.MinYields, a.MaxYields
	if min <= 0 {
		min = 1
	}
	if max <= 0 {
		max = 256
	}
	if min > max {
		min = max
	}
	return min, max
}

// OnAbort implements core.Manager: yield level·2^(attempt-1) times
// (capped, jittered), and on an operation's first abort double the
// shared level so later operations start backed off.
func (a *Adaptive) OnAbort(attempt int) {
	min, max := a.bounds()
	level := int(a.level.Load())
	if level < min {
		level = min
	}
	if attempt == 1 {
		next := level * 2
		if next > max {
			next = max
		}
		a.level.Store(int64(next))
	}
	n := max
	if attempt <= 30 && level<<(attempt-1) < max {
		n = level << (attempt - 1)
	}
	// Deterministic jitter in [n/2, n], as in Backoff.
	s := a.seed.Add(0x9e3779b97f4a7c15)
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	n = n/2 + int(s%uint64(n/2+1))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// OnSuccess implements core.Manager by halving the shared level: the
// object just admitted an operation, so contention is receding.
func (a *Adaptive) OnSuccess() {
	min, _ := a.bounds()
	level := int(a.level.Load()) / 2
	if level < min {
		level = min
	}
	a.level.Store(int64(level))
}

// Level returns the current shared backoff level (tests and E-series
// diagnostics).
func (a *Adaptive) Level() int {
	min, _ := a.bounds()
	if l := int(a.level.Load()); l > min {
		return l
	}
	return min
}

// ByName returns the named manager, used by the experiment CLI:
// "none", "yield", "spin", "backoff", "adaptive". Unknown names
// return nil (the bare loop).
func ByName(name string) core.Manager {
	switch name {
	case "none":
		return None{}
	case "yield":
		return Yield{}
	case "spin":
		return Spin{}
	case "backoff":
		return NewBackoff(0)
	case "adaptive":
		return NewAdaptive(0, 0)
	default:
		return nil
	}
}

// Names lists the managers ByName understands, in ablation order.
func Names() []string { return []string{"none", "yield", "spin", "backoff", "adaptive"} }

var (
	_ core.Manager = None{}
	_ core.Manager = Yield{}
	_ core.Manager = Spin{}
	_ core.Manager = (*Backoff)(nil)
	_ core.Manager = (*Adaptive)(nil)
)
