package metrics

import (
	"math"
	"sort"
	"testing"
	"time"
)

// The quantile-accuracy suite: Percentile returns the upper edge of
// the power-of-two bucket holding the rank-th sample, so for every
// distribution the answer is bounded by the true quantile on one side
// and twice it on the other (sample s lands in [2^i, 2^(i+1)) with
// 2^i <= s, and the reported edge 2^(i+1) <= 2s). The tests feed
// known synthetic shapes, compute the exact quantile with the same
// rank convention (sorted[floor(n*p/100)]), and assert the histogram
// answer lands in [true, 2*true].

// histRNG is a self-contained splitmix64 so the synthetic streams are
// identical on every platform and run (mirrors workload.RNG without
// importing it: metrics sits below workload in the layering).
type histRNG struct{ state uint64 }

func (r *histRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *histRNG) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// trueQuantile applies Percentile's rank convention to the raw
// samples: the value at index floor(n*p/100) of the sorted stream.
func trueQuantile(sorted []time.Duration, p float64) time.Duration {
	rank := int(float64(len(sorted)) * p / 100)
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// checkQuantiles records samples and asserts p50/p99/p999 each land
// within the bucket error band [true, 2*true].
func checkQuantiles(t *testing.T, name string, samples []time.Duration) {
	t.Helper()
	var h Histogram
	for _, s := range samples {
		h.Record(s)
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{50, 99, 99.9} {
		want := trueQuantile(sorted, p)
		got := h.Percentile(p)
		if got < want || got > 2*want {
			t.Errorf("%s: p%v = %v, want within [%v, %v]", name, p, got, want, 2*want)
		}
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	r := &histRNG{state: 1}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// Uniform over [1us, 1ms).
		samples[i] = time.Duration(1000 + r.next()%999000)
	}
	checkQuantiles(t, "uniform", samples)
}

func TestHistogramQuantilesExponential(t *testing.T) {
	r := &histRNG{state: 2}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// Exponential with a 50us mean: the long tail spreads p999
		// far from p50, exercising many buckets.
		u := r.float()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		ns := -50000 * math.Log(1-u)
		if ns < 1 {
			ns = 1
		}
		samples[i] = time.Duration(ns)
	}
	checkQuantiles(t, "exponential", samples)
}

func TestHistogramQuantilesBimodal(t *testing.T) {
	r := &histRNG{state: 3}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// 90% fast mode around 2us, 10% slow mode around 500us —
		// the cache-hit/combiner-wait shape scenario latencies take.
		// p50 sits in the fast mode, p99/p999 in the slow one.
		if r.float() < 0.9 {
			samples[i] = time.Duration(1500 + r.next()%1000)
		} else {
			samples[i] = time.Duration(400000 + r.next()%200000)
		}
	}
	checkQuantiles(t, "bimodal", samples)
}

func TestHistogramMergeEquivalence(t *testing.T) {
	// Recording a stream into one histogram must be indistinguishable
	// from splitting it across two and merging: identical buckets,
	// count, sum, max, and therefore identical quantiles.
	r := &histRNG{state: 4}
	samples := make([]time.Duration, 50000)
	for i := range samples {
		samples[i] = time.Duration(1 + r.next()%10000000)
	}
	var whole, left, right Histogram
	for i, s := range samples {
		whole.Record(s)
		if i%2 == 0 {
			left.Record(s)
		} else {
			right.Record(s)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", left.Count(), whole.Count())
	}
	if left.Mean() != whole.Mean() {
		t.Fatalf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if left.Max() != whole.Max() {
		t.Fatalf("merged Max = %v, want %v", left.Max(), whole.Max())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if got, want := left.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("merged p%v = %v, want %v", p, got, want)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var h, empty Histogram
	h.Record(5 * time.Microsecond)
	h.Merge(&empty)
	if h.Count() != 1 || h.Max() != 5*time.Microsecond {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	empty.Merge(&h)
	if empty.Count() != 1 || empty.Percentile(50) != h.Percentile(50) {
		t.Fatal("merging into an empty histogram lost samples")
	}
}
