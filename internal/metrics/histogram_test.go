package metrics

import (
	"math"
	"sort"
	"testing"
	"time"
)

// The quantile-accuracy suite: Percentile returns the upper edge of
// the power-of-two bucket holding the rank-th sample, so for every
// distribution the answer is bounded by the true quantile on one side
// and twice it on the other (sample s lands in [2^i, 2^(i+1)) with
// 2^i <= s, and the reported edge 2^(i+1) <= 2s). The tests feed
// known synthetic shapes, compute the exact quantile with the same
// rank convention (sorted[floor(n*p/100)]), and assert the histogram
// answer lands in [true, 2*true].

// histRNG is a self-contained splitmix64 so the synthetic streams are
// identical on every platform and run (mirrors workload.RNG without
// importing it: metrics sits below workload in the layering).
type histRNG struct{ state uint64 }

func (r *histRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *histRNG) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// trueQuantile applies Percentile's rank convention to the raw
// samples: the value at index floor(n*p/100) of the sorted stream.
func trueQuantile(sorted []time.Duration, p float64) time.Duration {
	rank := int(float64(len(sorted)) * p / 100)
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// checkQuantiles records samples and asserts p50/p99/p999 each land
// within the bucket error band [true, 2*true].
func checkQuantiles(t *testing.T, name string, samples []time.Duration) {
	t.Helper()
	var h Histogram
	for _, s := range samples {
		h.Record(s)
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{50, 99, 99.9} {
		want := trueQuantile(sorted, p)
		got := h.Percentile(p)
		if got < want || got > 2*want {
			t.Errorf("%s: p%v = %v, want within [%v, %v]", name, p, got, want, 2*want)
		}
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	r := &histRNG{state: 1}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// Uniform over [1us, 1ms).
		samples[i] = time.Duration(1000 + r.next()%999000)
	}
	checkQuantiles(t, "uniform", samples)
}

func TestHistogramQuantilesExponential(t *testing.T) {
	r := &histRNG{state: 2}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// Exponential with a 50us mean: the long tail spreads p999
		// far from p50, exercising many buckets.
		u := r.float()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		ns := -50000 * math.Log(1-u)
		if ns < 1 {
			ns = 1
		}
		samples[i] = time.Duration(ns)
	}
	checkQuantiles(t, "exponential", samples)
}

func TestHistogramQuantilesBimodal(t *testing.T) {
	r := &histRNG{state: 3}
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// 90% fast mode around 2us, 10% slow mode around 500us —
		// the cache-hit/combiner-wait shape scenario latencies take.
		// p50 sits in the fast mode, p99/p999 in the slow one.
		if r.float() < 0.9 {
			samples[i] = time.Duration(1500 + r.next()%1000)
		} else {
			samples[i] = time.Duration(400000 + r.next()%200000)
		}
	}
	checkQuantiles(t, "bimodal", samples)
}

func TestHistogramMergeEquivalence(t *testing.T) {
	// Recording a stream into one histogram must be indistinguishable
	// from splitting it across two and merging: identical buckets,
	// count, sum, max, and therefore identical quantiles.
	r := &histRNG{state: 4}
	samples := make([]time.Duration, 50000)
	for i := range samples {
		samples[i] = time.Duration(1 + r.next()%10000000)
	}
	var whole, left, right Histogram
	for i, s := range samples {
		whole.Record(s)
		if i%2 == 0 {
			left.Record(s)
		} else {
			right.Record(s)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", left.Count(), whole.Count())
	}
	if left.Mean() != whole.Mean() {
		t.Fatalf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if left.Max() != whole.Max() {
		t.Fatalf("merged Max = %v, want %v", left.Max(), whole.Max())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if got, want := left.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("merged p%v = %v, want %v", p, got, want)
		}
	}
}

func TestHistogramSnapshotDelta(t *testing.T) {
	// A snapshot is a full copy, and the delta of two snapshots
	// bracketing a recording burst answers quantiles exactly as a
	// histogram fed only that burst would — the contract the soak
	// monitor's windowed rows rely on.
	r := &histRNG{state: 5}
	var h, windowOnly Histogram
	for i := 0; i < 20000; i++ {
		h.Record(time.Duration(1 + r.next()%1000000))
	}
	prev := h.Snapshot()
	if prev.Count() != h.Count() || prev.Mean() != h.Mean() || prev.Max() != h.Max() {
		t.Fatalf("snapshot diverges: count %d/%d mean %v/%v max %v/%v",
			prev.Count(), h.Count(), prev.Mean(), h.Mean(), prev.Max(), h.Max())
	}
	for i := 0; i < 20000; i++ {
		d := time.Duration(1 + r.next()%1000000)
		h.Record(d)
		windowOnly.Record(d)
	}
	delta := h.Snapshot().Delta(prev)
	if delta.Count() != windowOnly.Count() {
		t.Fatalf("delta Count = %d, want %d", delta.Count(), windowOnly.Count())
	}
	if delta.Mean() != windowOnly.Mean() {
		t.Fatalf("delta Mean = %v, want %v", delta.Mean(), windowOnly.Mean())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if got, want := delta.Percentile(p), windowOnly.Percentile(p); got != want {
			t.Fatalf("delta p%v = %v, want %v", p, got, want)
		}
	}
	// Max is documented as the cumulative upper bound, never below the
	// window's true max.
	if delta.Max() < windowOnly.Max() {
		t.Fatalf("delta Max = %v, below window max %v", delta.Max(), windowOnly.Max())
	}
	// Mutating the snapshot must not touch the source.
	before := h.Count()
	prev.Record(time.Second)
	if h.Count() != before {
		t.Fatal("recording into a snapshot mutated the source histogram")
	}
}

func TestHistogramSnapshotConcurrentRecord(t *testing.T) {
	// Snapshot while recorders are live (the soak monitor scrapes
	// mid-flight): under -race this doubles as the data-race proof, and
	// every snapshot must be internally sane — counts monotone across
	// snapshots and bucket sums never ahead of the count word (Record
	// bumps the count before the bucket; Snapshot reads in the reverse
	// order).
	var h Histogram
	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(seed uint64) {
			defer func() { done <- struct{}{} }()
			r := &histRNG{state: seed}
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(time.Duration(1 + r.next()%100000))
				}
			}
		}(uint64(g + 1))
	}
	var prevCount uint64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count() < prevCount {
			t.Errorf("snapshot %d: count went backwards (%d -> %d)", i, prevCount, s.Count())
		}
		prevCount = s.Count()
		var inBuckets uint64
		for b := range s.buckets {
			inBuckets += s.buckets[b].Load()
		}
		if inBuckets > s.Count() {
			t.Errorf("snapshot %d: %d samples in buckets but count %d", i, inBuckets, s.Count())
		}
	}
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}
	final := h.Snapshot()
	if final.Count() != h.Count() {
		t.Fatalf("quiescent snapshot count = %d, want %d", final.Count(), h.Count())
	}
}

func TestHistogramDeltaClampsMismatched(t *testing.T) {
	// Swapped arguments (prev ahead of cur) clamp to zero rather than
	// wrapping the unsigned counters.
	var a, b Histogram
	a.Record(time.Microsecond)
	b.Record(time.Microsecond)
	b.Record(time.Millisecond)
	d := a.Snapshot().Delta(b.Snapshot())
	if d.Count() != 0 {
		t.Fatalf("clamped delta Count = %d, want 0", d.Count())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var h, empty Histogram
	h.Record(5 * time.Microsecond)
	h.Merge(&empty)
	if h.Count() != 1 || h.Max() != 5*time.Microsecond {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	empty.Merge(&h)
	if empty.Count() != 1 || empty.Percentile(50) != h.Percentile(50) {
		t.Fatal("merging into an empty histogram lost samples")
	}
}
