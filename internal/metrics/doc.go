// Package metrics provides the measurement machinery of the
// experiment harness: lock-free latency histograms, throughput and
// fairness statistics (the starvation-freedom experiments need
// per-process completion distributions, Jain's index and maximum
// inter-completion gaps), and a plain-text table formatter for the
// rows EXPERIMENTS.md reports.
package metrics
