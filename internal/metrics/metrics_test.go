package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("zero histogram not empty")
	}
	h.Record(100 * time.Nanosecond)
	h.Record(200 * time.Nanosecond)
	h.Record(300 * time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got != 200*time.Nanosecond {
		t.Fatalf("Mean = %v, want 200ns", got)
	}
	if got := h.Max(); got != 300*time.Nanosecond {
		t.Fatalf("Max = %v, want 300ns", got)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
		got := h.Percentile(p)
		if got < prev {
			t.Fatalf("percentile %v = %v < previous %v", p, got, prev)
		}
		prev = got
	}
	// The p50 upper bound must be within 2x of the true median (the
	// bucket resolution).
	p50 := h.Percentile(50)
	if p50 < 500*time.Microsecond || p50 > 2*500*time.Microsecond {
		t.Fatalf("p50 = %v, want within [500us, 1ms]", p50)
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram
	h.Record(0) // clamped to 1ns, must not panic
	if h.Count() != 1 {
		t.Fatal("zero-duration sample dropped")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const procs, per = 8, 10000
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i+1) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != procs*per {
		t.Fatalf("Count = %d, want %d", h.Count(), procs*per)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestJainIndexExtremes(t *testing.T) {
	if got := JainIndex([]uint64{5, 5, 5, 5}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal shares: %v, want 1", got)
	}
	got := JainIndex([]uint64{100, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("single worker of 4: %v, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]uint64{0, 0}) != 1 {
		t.Fatal("degenerate inputs must report 1")
	}
}

func TestJainIndexRange(t *testing.T) {
	f := func(counts []uint64) bool {
		for i := range counts {
			counts[i] %= 1 << 20 // avoid float overflow in the property
		}
		got := JainIndex(counts)
		return got > 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAndSum(t *testing.T) {
	min, max := MinMax([]uint64{3, 9, 1, 7})
	if min != 1 || max != 9 {
		t.Fatalf("MinMax = (%d, %d), want (1, 9)", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatal("MinMax(nil) != (0,0)")
	}
	if Sum([]uint64{3, 9, 1, 7}) != 20 {
		t.Fatal("Sum mismatch")
	}
}

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("impl", "ops/s", "jain")
	tb.AddRow("lock(mutex)", 123456, 0.98765)
	tb.AddRow("contention-sensitive", 777, 1.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "impl") || !strings.Contains(lines[0], "jain") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "0.988") {
		t.Fatalf("float not rounded to 3 places:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}
