package metrics

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table formats experiment rows as aligned plain text, the format
// EXPERIMENTS.md quotes. It is not safe for concurrent use.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Headers returns the column headers, for machine-readable export.
func (t *Table) Headers() []string {
	return append([]string(nil), t.headers...)
}

// Rows returns a copy of the accumulated rows (cells as rendered), for
// machine-readable export alongside the String form.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
