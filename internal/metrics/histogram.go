package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts samples in [2^i, 2^(i+1)) nanoseconds, which spans 1ns to
// ~18s.
const histBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two
// nanosecond buckets. The zero value is ready to use; Record may be
// called from any number of goroutines.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one latency sample. The count word is bumped before the
// bucket — paired with Snapshot reading buckets before count, that
// order guarantees every snapshot's bucket sum is <= its count word
// even while recorders are live.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(ns)-1].Add(1)
	core.StoreMax(&h.max, ns)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns an upper bound of the p-th percentile latency
// (p in [0,100]), at power-of-two resolution.
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(float64(n) * p / 100)
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			// Upper edge of bucket i.
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return h.Max()
}

// Merge adds every sample recorded in o into h. Safe against
// concurrent Record on either histogram (each counter moves
// atomically), though a merge racing a Record may observe the sample
// in some counters and not yet others; merge at quiescence when exact
// totals matter. Merging preserves every quantile the bucket
// resolution can express: a merged histogram answers Percentile
// exactly as one histogram fed both sample streams would.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	core.StoreMax(&h.max, o.max.Load())
}

// Snapshot returns a copy of the histogram for live scraping: a soak
// or monitoring loop snapshots mid-flight, then computes windowed
// quantiles via Delta, without merging into a scratch histogram or
// pausing the recorders. Safe against concurrent Record with the same
// consistency contract as Merge — each counter is read atomically, so
// a snapshot racing a Record may hold the sample in some counters and
// not yet others; snapshot at quiescence when exact totals matter.
// Buckets are read before the count word — the reverse of Record's
// write order — so the one cross-counter invariant windowed quantiles
// rely on (bucket sum <= count) holds in every snapshot.
func (h *Histogram) Snapshot() *Histogram {
	s := &Histogram{}
	for i := range h.buckets {
		s.buckets[i].Store(h.buckets[i].Load())
	}
	s.count.Store(h.count.Load())
	s.sum.Store(h.sum.Load())
	s.max.Store(h.max.Load())
	return s
}

// Delta returns the histogram of the samples recorded between prev
// and h, where prev is an earlier Snapshot of the same (monotonically
// growing) histogram: bucket counts, count, and sum subtract; the
// returned Max is h's cumulative max, an upper bound on the window's
// true max (the bucket resolution, not the max word, is what windowed
// quantiles are computed from). Counters that would go negative (h
// and prev from different histograms, or arguments swapped) clamp to
// zero.
func (h *Histogram) Delta(prev *Histogram) *Histogram {
	d := &Histogram{}
	sub := func(cur, old uint64) uint64 {
		if cur < old {
			return 0
		}
		return cur - old
	}
	for i := range h.buckets {
		d.buckets[i].Store(sub(h.buckets[i].Load(), prev.buckets[i].Load()))
	}
	d.count.Store(sub(h.count.Load(), prev.count.Load()))
	d.sum.Store(sub(h.sum.Load(), prev.sum.Load()))
	d.max.Store(h.max.Load())
	return d
}

// Reset zeroes the histogram; not atomic with concurrent Record.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}
