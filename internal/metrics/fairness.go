package metrics

// JainIndex computes Jain's fairness index over per-process counts:
// (Σx)² / (n·Σx²), in (0, 1]. 1 means perfectly equal shares; 1/n
// means one process did all the work. It is the summary statistic of
// the starvation-freedom experiments (E4, E10): a starvation-free
// object keeps the index near 1 under saturation, a deadlock-free one
// can drive it toward 1/n.
func JainIndex(counts []uint64) float64 {
	if len(counts) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, c := range counts {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // nobody did anything: trivially fair
	}
	n := float64(len(counts))
	return sum * sum / (n * sumSq)
}

// MinMax returns the smallest and largest of the counts (0, 0 for an
// empty slice). A zero minimum under saturation is the starvation
// signature.
func MinMax(counts []uint64) (min, max uint64) {
	if len(counts) == 0 {
		return 0, 0
	}
	min, max = counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max
}

// Sum adds the counts.
func Sum(counts []uint64) uint64 {
	var s uint64
	for _, c := range counts {
		s += c
	}
	return s
}
