package memory

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Pool is a type-stable arena of records addressed by Handle, with
// per-pid free lists and a bounded shared overflow. It is the
// allocation backend of the tagged register family: the hot paths of
// the pooled stacks and queues Get and Put nodes here instead of
// allocating per operation, so their steady state runs at zero
// allocations per operation (experiment E17).
//
// Memory handed out by Get is never returned to the Go heap — blocks
// live for the pool's lifetime — which is precisely what makes
// dereferencing a stale handle memory-safe: a recycled record may hold
// another operation's data, never unmapped memory. Detecting that the
// data is another operation's is the tagged registers' job (§2.2).
//
// Discipline:
//
//   - Get(pid)/Put(pid) may be called concurrently by different pids;
//     a given pid's calls must be serial (the paper's model of n known
//     processes, as in internal/combine's publication slots).
//   - Put only handles that no register can install again (the old
//     word of a successful CAS, or a freshly Got handle that was never
//     published). Records are NOT zeroed on reuse — per-node state
//     such as an accumulated next-tag must survive recycling (see
//     queue.MichaelScottPooled).
type Pool[T any] struct {
	blocks atomic.Pointer[[]*poolBlock[T]]
	init   func(*T)

	mu       sync.Mutex // guards next, arena growth, overflow
	next     uint64
	overflow []Handle

	localCap    int
	overflowCap int
	limit       uint64 // test-only shrunken handle horizon (0 = 2^31-1)
	locals      []poolLocal
	drops       atomic.Uint64
}

const (
	poolBlockBits = 8
	poolBlockSize = 1 << poolBlockBits

	// poolLocalCap bounds each pid's private free list; beyond it, the
	// older half spills to the shared overflow.
	poolLocalCap = 64
)

type poolBlock[T any] [poolBlockSize]T

// poolLocal is one pid's free list and path counters. Only the owner
// pid touches free; the counters are atomics so Stats can read them
// concurrently. The padding keeps neighbouring pids off one line.
type poolLocal struct {
	free    []Handle
	allocs  atomic.Uint64
	reuses  atomic.Uint64
	spills  atomic.Uint64
	refills atomic.Uint64
	_       [64]byte
}

// PoolStats is a snapshot of a pool's allocation and recycling
// counters.
type PoolStats struct {
	// Allocs counts records carved fresh from the arena (a growing
	// arena in steady state means recycling is not keeping up).
	Allocs uint64
	// Reuses counts Gets served from a free list (local or refilled).
	Reuses uint64
	// Spills counts local-cache overflows into the shared list.
	Spills uint64
	// Refills counts local-cache refills from the shared list.
	Refills uint64
	// Drops counts handles abandoned because the bounded overflow was
	// full; each drop strands one arena record. A correctly sized
	// overflow never drops.
	Drops uint64
}

// NewPool returns a pool for procs pids (pids in [0, procs)). init, if
// non-nil, runs once on every record freshly carved from the arena —
// recycled records are handed back as-is.
func NewPool[T any](procs int, init func(*T)) *Pool[T] {
	if procs < 1 {
		panic("memory: pool process count must be >= 1")
	}
	p := &Pool[T]{
		init:        init,
		next:        1, // handle 0 is NilHandle
		localCap:    poolLocalCap,
		overflowCap: 2 * procs * poolLocalCap,
		locals:      make([]poolLocal, procs),
	}
	blocks := []*poolBlock[T]{new(poolBlock[T])}
	p.blocks.Store(&blocks)
	return p
}

// At resolves a handle to its record. h must have been returned by Get
// of this pool; At is lock-free and safe concurrently with Get/Put.
func (p *Pool[T]) At(h Handle) *T {
	bs := *p.blocks.Load()
	return &bs[h>>poolBlockBits][h&(poolBlockSize-1)]
}

// ErrArenaExhausted is TryGet's typed failure: the arena has handed
// out every addressable handle. See the TagBits comment in TryGet for
// why the limit is 2^31-1 records.
var ErrArenaExhausted = errors.New("memory: pool arena exhausted (2^31-1 records)")

// Get returns a free record's handle, preferring pid's local free list
// (LIFO: the hottest record first), then a batch refill from the
// shared overflow, then a fresh arena record. Get panics on arena
// exhaustion; callers that can shed load instead should use TryGet.
func (p *Pool[T]) Get(pid int) Handle {
	h, err := p.TryGet(pid)
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryGet is Get with a graceful failure path: when the arena is
// exhausted it returns ErrArenaExhausted instead of panicking, so a
// bounded-retry caller can surface the condition as a typed error
// (core.ErrExhausted-style degradation) rather than crash the process.
func (p *Pool[T]) TryGet(pid int) (Handle, error) {
	l := &p.locals[pid]
	if n := len(l.free); n > 0 {
		h := l.free[n-1]
		l.free = l.free[:n-1]
		l.reuses.Add(1)
		return h, nil
	}
	p.mu.Lock()
	if n := len(p.overflow); n > 0 {
		take := p.localCap / 2
		if take > n {
			take = n
		}
		l.free = append(l.free, p.overflow[n-take:]...)
		p.overflow = p.overflow[:n-take]
		p.mu.Unlock()
		l.refills.Add(1)
		l.reuses.Add(1)
		h := l.free[len(l.free)-1]
		l.free = l.free[:len(l.free)-1]
		return h, nil
	}
	h := Handle(p.next)
	// The handle field of a TaggedVal reserves its top bit for the
	// TaggedMark deletion flag, so the last valid handle is 2^31-1 —
	// enforced here, where every handle is born, rather than letting a
	// larger handle silently alias the mark. Tests shrink the horizon
	// via limit to make exhaustion reachable.
	limit := uint64(1)<<(TagBits-1) - 1
	if p.limit != 0 {
		limit = p.limit
	}
	if uint64(h) > limit {
		p.mu.Unlock()
		return NilHandle, ErrArenaExhausted
	}
	if p.next>>poolBlockBits >= uint64(len(*p.blocks.Load())) {
		grown := append(append([]*poolBlock[T]{}, *p.blocks.Load()...), new(poolBlock[T]))
		p.blocks.Store(&grown)
	}
	p.next++
	p.mu.Unlock()
	l.allocs.Add(1)
	rec := p.At(h)
	if p.init != nil {
		p.init(rec)
	}
	return h, nil
}

// Put recycles h onto pid's free list, spilling the older half to the
// bounded shared overflow when the local list is full.
func (p *Pool[T]) Put(pid int, h Handle) {
	l := &p.locals[pid]
	l.free = append(l.free, h)
	if len(l.free) <= p.localCap {
		return
	}
	spill := l.free[:p.localCap/2]
	p.mu.Lock()
	room := p.overflowCap - len(p.overflow)
	take := len(spill)
	if take > room {
		take = room
	}
	p.overflow = append(p.overflow, spill[:take]...)
	p.mu.Unlock()
	if dropped := len(spill) - take; dropped > 0 {
		p.drops.Add(uint64(dropped))
	}
	l.free = append(l.free[:0], l.free[p.localCap/2:]...)
	l.spills.Add(1)
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool[T]) Stats() PoolStats {
	st := PoolStats{Drops: p.drops.Load()}
	for i := range p.locals {
		l := &p.locals[i]
		st.Allocs += l.allocs.Load()
		st.Reuses += l.reuses.Load()
		st.Spills += l.spills.Load()
		st.Refills += l.refills.Load()
	}
	return st
}

// ArenaSize returns the number of records ever carved from the arena
// (live + free), a measure of the pool's high-water footprint.
func (p *Pool[T]) ArenaSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.next - 1)
}

// Procs returns the number of pids the pool serves.
func (p *Pool[T]) Procs() int { return len(p.locals) }
