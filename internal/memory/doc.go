// Package memory provides the shared-memory substrate assumed by the
// paper's computation model (§2): atomic registers supporting read,
// write and Compare&Swap, optionally instrumented so that every shared
// access can be observed (counted, traced, or gated by a deterministic
// scheduler).
//
// Three register families are provided:
//
//   - Word and Flag: single 64-bit (resp. boolean) registers backed by
//     sync/atomic. Multi-field register contents such as the paper's
//     TOP = 〈index, value, seqnb〉 are bit-packed into one word with the
//     codecs in pack.go, exactly as on the machines the paper cites
//     (single-word CAS).
//   - Ref[T]: a register holding an immutable boxed record (*T), for
//     arbitrary payload types. CAS compares the boxed pointer read
//     earlier, so a successful CAS proves the register was not written
//     in between — the GC prevents pointer-level ABA, at the price of
//     one heap allocation per published record.
//   - TaggedRef[T] over Pool[T] (tagged.go, pool.go): a register
//     holding 〈handle, seqnb〉 in one word, with records recycled
//     through a type-stable arena (per-pid free lists, bounded shared
//     overflow). The hot path allocates nothing (experiment E17);
//     recycling makes ABA real again and the tag, CASed together with
//     the handle, is what defeats it.
//
// Sequence tags are carried by all families because the paper's
// algorithms use them (§2.2): they make logical ABA detectable and are
// load-bearing in the packed family, where the same 64-bit pattern can
// recur, and in the pooled family, where the same handle genuinely
// returns.
//
// Instrumentation. Every register constructor has an Observed variant
// taking an Observer whose OnAccess method is invoked immediately
// before each shared access. A nil observer (the plain constructors)
// costs a single predictable branch. Stats is the counting observer
// used by the E1 step-complexity experiment; package sched supplies a
// gating observer that turns real register accesses into deterministic
// scheduler decision points.
package memory
