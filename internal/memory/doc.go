// Package memory provides the shared-memory substrate assumed by the
// paper's computation model (§2): atomic registers supporting read,
// write and Compare&Swap, optionally instrumented so that every shared
// access can be observed (counted, traced, or gated by a deterministic
// scheduler).
//
// Two register families are provided:
//
//   - Word and Flag: single 64-bit (resp. boolean) registers backed by
//     sync/atomic. Multi-field register contents such as the paper's
//     TOP = 〈index, value, seqnb〉 are bit-packed into one word with the
//     codecs in pack.go, exactly as on the machines the paper cites
//     (single-word CAS).
//   - Ref[T]: a register holding an immutable boxed record (*T), for
//     arbitrary payload types. CAS compares the boxed pointer read
//     earlier, so a successful CAS proves the register was not written
//     in between — the GC prevents pointer-level ABA.
//
// Sequence tags are still carried by both families because the paper's
// algorithms use them (§2.2): they make logical ABA detectable and are
// load-bearing in the packed family, where the same 64-bit pattern can
// recur.
//
// Instrumentation. Every register constructor has an Observed variant
// taking an Observer whose OnAccess method is invoked immediately
// before each shared access. A nil observer (the plain constructors)
// costs a single predictable branch. Stats is the counting observer
// used by the E1 step-complexity experiment; package sched supplies a
// gating observer that turns real register accesses into deterministic
// scheduler decision points.
package memory
