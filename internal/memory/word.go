package memory

import "sync/atomic"

// Word is an atomic 64-bit register supporting the three base
// operations of the paper's computation model (§2.1): read, write and
// Compare&Swap. Multi-field contents are bit-packed with the codecs in
// pack.go. The zero value is a register holding 0 with no observer.
type Word struct {
	v   atomic.Uint64
	obs Observer
}

// NewWord returns an uninstrumented register initialized to init.
func NewWord(init uint64) *Word {
	w := &Word{}
	w.v.Store(init)
	return w
}

// NewWordObserved returns a register initialized to init whose every
// access is reported to obs first. A nil obs is equivalent to NewWord.
func NewWordObserved(init uint64, obs Observer) *Word {
	w := NewWord(init)
	w.obs = obs
	return w
}

// Observe sets the observer for subsequent accesses. It must be called
// before the register is shared between goroutines.
func (w *Word) Observe(obs Observer) { w.obs = obs }

// Read returns the current value of the register.
func (w *Word) Read() uint64 {
	if w.obs != nil {
		w.obs.OnAccess(Read)
	}
	return w.v.Load()
}

// Write stores x into the register.
func (w *Word) Write(x uint64) {
	if w.obs != nil {
		w.obs.OnAccess(Write)
	}
	w.v.Store(x)
}

// CAS is the paper's X.C&S(old, new): atomically, if the register holds
// old it is set to new and CAS reports true; otherwise it reports false
// and the register is unchanged.
func (w *Word) CAS(old, new uint64) bool {
	if w.obs != nil {
		w.obs.OnAccess(CAS)
	}
	return w.v.CompareAndSwap(old, new)
}

// Flag is an atomic boolean register (the paper's CONTENTION and
// FLAG[i] registers). The zero value holds false with no observer.
type Flag struct {
	v   atomic.Bool
	obs Observer
}

// NewFlag returns an uninstrumented flag initialized to init.
func NewFlag(init bool) *Flag {
	f := &Flag{}
	f.v.Store(init)
	return f
}

// NewFlagObserved returns a flag whose every access is reported to obs
// first. A nil obs is equivalent to NewFlag.
func NewFlagObserved(init bool, obs Observer) *Flag {
	f := NewFlag(init)
	f.obs = obs
	return f
}

// Observe sets the observer for subsequent accesses. It must be called
// before the flag is shared between goroutines.
func (f *Flag) Observe(obs Observer) { f.obs = obs }

// Read returns the current value of the flag.
func (f *Flag) Read() bool {
	if f.obs != nil {
		f.obs.OnAccess(Read)
	}
	return f.v.Load()
}

// Write stores x into the flag.
func (f *Flag) Write(x bool) {
	if f.obs != nil {
		f.obs.OnAccess(Write)
	}
	f.v.Store(x)
}

// CAS atomically replaces old with new and reports whether it did.
func (f *Flag) CAS(old, new bool) bool {
	if f.obs != nil {
		f.obs.OnAccess(CAS)
	}
	return f.v.CompareAndSwap(old, new)
}

// Words is a fixed array of Word registers sharing one observer, the
// shape of the paper's STACK[0..k] array.
type Words struct {
	regs []Word
}

// NewWords returns n registers all initialized to init.
func NewWords(n int, init uint64) *Words {
	return NewWordsObserved(n, init, nil)
}

// NewWordsObserved returns n registers all initialized to init and all
// reporting to obs. A nil obs disables instrumentation.
func NewWordsObserved(n int, init uint64, obs Observer) *Words {
	return NewWordsInit(n, func(int) uint64 { return init }, obs)
}

// NewWordsInit returns n registers, the i-th initialized to init(i),
// all reporting to obs. Initialization is not observed (it is not a
// shared access of the algorithm being measured).
func NewWordsInit(n int, init func(i int) uint64, obs Observer) *Words {
	a := &Words{regs: make([]Word, n)}
	for i := range a.regs {
		a.regs[i].v.Store(init(i))
		a.regs[i].obs = obs
	}
	return a
}

// At returns the i-th register.
func (a *Words) At(i int) *Word { return &a.regs[i] }

// Len returns the number of registers.
func (a *Words) Len() int { return len(a.regs) }
