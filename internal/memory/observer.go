package memory

import "sync/atomic"

// Kind identifies the kind of shared-memory access performed on a
// register. The paper's cost model (§1.2, Theorem 1) counts all three
// kinds uniformly as "shared memory accesses".
type Kind uint8

const (
	// Read is a linearizable load of a register.
	Read Kind = iota
	// Write is a linearizable store to a register.
	Write
	// CAS is a Compare&Swap attempt (counted whether or not it
	// succeeds; the paper's analysis does the same).
	CAS
	numKinds
)

// String returns the conventional lower-case name of the access kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case CAS:
		return "cas"
	default:
		return "unknown"
	}
}

// Observer receives a callback immediately before every shared access
// performed through an instrumented register. Implementations must be
// safe for concurrent use; OnAccess may be invoked from many goroutines
// at once. An observer that blocks delays (but does not reorder) the
// access, which is exactly what the deterministic scheduler in package
// sched exploits.
type Observer interface {
	OnAccess(k Kind)
}

// Stats is an Observer that counts accesses by kind. The zero value is
// ready to use. Counting uses atomics so a single Stats may be shared
// by all registers of an object and by all accessing goroutines.
type Stats struct {
	counts [numKinds]atomic.Uint64
}

// OnAccess implements Observer.
func (s *Stats) OnAccess(k Kind) { s.counts[k].Add(1) }

// Reads returns the number of reads observed.
func (s *Stats) Reads() uint64 { return s.counts[Read].Load() }

// Writes returns the number of writes observed.
func (s *Stats) Writes() uint64 { return s.counts[Write].Load() }

// CASes returns the number of Compare&Swap attempts observed.
func (s *Stats) CASes() uint64 { return s.counts[CAS].Load() }

// Total returns the total number of shared accesses observed, the
// quantity bounded by the paper's Theorem 1.
func (s *Stats) Total() uint64 { return s.Reads() + s.Writes() + s.CASes() }

// Reset zeroes all counters. It is not atomic with respect to
// concurrent OnAccess calls; reset only between quiescent phases.
func (s *Stats) Reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
}

// Snapshot is an immutable copy of a Stats counter set.
type Snapshot struct {
	Reads, Writes, CASes uint64
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{Reads: s.Reads(), Writes: s.Writes(), CASes: s.CASes()}
}

// Total returns the total number of accesses in the snapshot.
func (sn Snapshot) Total() uint64 { return sn.Reads + sn.Writes + sn.CASes }

// Sub returns the component-wise difference sn - earlier, used to
// attribute accesses to a window of execution.
func (sn Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		Reads:  sn.Reads - earlier.Reads,
		Writes: sn.Writes - earlier.Writes,
		CASes:  sn.CASes - earlier.CASes,
	}
}

// FuncObserver adapts a function to the Observer interface.
type FuncObserver func(k Kind)

// OnAccess implements Observer.
func (f FuncObserver) OnAccess(k Kind) { f(k) }

// MultiObserver fans an access notification out to several observers in
// order. It is used to combine counting with gating in the simulator.
type MultiObserver []Observer

// OnAccess implements Observer.
func (m MultiObserver) OnAccess(k Kind) {
	for _, o := range m {
		o.OnAccess(k)
	}
}
