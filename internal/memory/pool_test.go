package memory

import (
	"errors"
	"sync"
	"testing"
)

func TestTaggedValCodec(t *testing.T) {
	cases := []struct {
		h   Handle
		tag uint32
	}{
		{NilHandle, 0},
		{1, 0},
		{42, 7},
		// The top handle bit is the TaggedMark deletion flag, so the
		// largest addressable handle is 2^31-1.
		{1<<31 - 1, 1<<32 - 1},
	}
	for _, c := range cases {
		v := PackTagged(c.h, c.tag)
		if v.Handle() != c.h || v.Tag() != c.tag {
			t.Fatalf("PackTagged(%d,%d) round-trips to (%d,%d)", c.h, c.tag, v.Handle(), v.Tag())
		}
	}
	v := PackTagged(9, 5)
	n := v.Next(11)
	if n.Handle() != 11 || n.Tag() != 6 {
		t.Fatalf("Next = (%d,%d), want (11,6)", n.Handle(), n.Tag())
	}
	// Tag wraparound is modulo 2^32, handle untouched.
	w := PackTagged(3, 1<<32-1).Next(3)
	if w.Handle() != 3 || w.Tag() != 0 {
		t.Fatalf("wrapping Next = (%d,%d), want (3,0)", w.Handle(), w.Tag())
	}
}

func TestTaggedMark(t *testing.T) {
	v := PackTagged(42, 7)
	if v.Marked() {
		t.Fatal("fresh word is marked")
	}
	m := v.WithMark()
	if !m.Marked() {
		t.Fatal("WithMark did not mark")
	}
	// The mark changes the word (a CAS expecting the unmarked word
	// must fail) but not its handle or tag decode.
	if m == v {
		t.Fatal("marked word equals unmarked word")
	}
	if m.Handle() != 42 || m.Tag() != 7 {
		t.Fatalf("marked word decodes to (%d,%d), want (42,7)", m.Handle(), m.Tag())
	}
	if m.WithoutMark() != v {
		t.Fatal("WithoutMark does not restore the original word")
	}
	// Next always returns an unmarked word with an advanced tag, which
	// is what keeps recycled-node words strictly newer than any stale
	// pre-mark word.
	n := m.Next(42)
	if n.Marked() || n.Tag() != 8 {
		t.Fatalf("Next over a marked word = (marked=%v, tag=%d), want (false, 8)", n.Marked(), n.Tag())
	}
}

func TestPoolGetPutRecycles(t *testing.T) {
	p := NewPool[uint64](2, nil)
	h1 := p.Get(0)
	h2 := p.Get(0)
	if h1 == NilHandle || h2 == NilHandle || h1 == h2 {
		t.Fatalf("fresh handles: %d, %d", h1, h2)
	}
	*p.At(h1) = 111
	p.Put(0, h1)
	h3 := p.Get(0) // LIFO: the hottest handle first
	if h3 != h1 {
		t.Fatalf("Get after Put = %d, want recycled %d", h3, h1)
	}
	if *p.At(h3) != 111 {
		t.Fatal("recycled record was zeroed; per-node state must survive recycling")
	}
	st := p.Stats()
	if st.Allocs != 2 || st.Reuses != 1 {
		t.Fatalf("stats = %+v, want 2 allocs, 1 reuse", st)
	}
}

func TestPoolInitRunsOncePerArenaRecord(t *testing.T) {
	inits := 0
	p := NewPool[uint64](1, func(r *uint64) { inits++; *r = 7 })
	h := p.Get(0)
	if inits != 1 || *p.At(h) != 7 {
		t.Fatalf("init ran %d times, record = %d", inits, *p.At(h))
	}
	p.Put(0, h)
	if got := p.Get(0); got != h || inits != 1 {
		t.Fatalf("recycled Get reran init (%d times)", inits)
	}
}

func TestPoolSpillAndRefill(t *testing.T) {
	p := NewPool[uint64](2, nil)
	// Overfill pid 0's local list to force a spill...
	var hs []Handle
	for i := 0; i < poolLocalCap+1; i++ {
		hs = append(hs, p.Get(0))
	}
	for _, h := range hs {
		p.Put(0, h)
	}
	st := p.Stats()
	if st.Spills == 0 {
		t.Fatalf("no spill after %d puts: %+v", len(hs), st)
	}
	// ...then drain through pid 1, which must refill from the overflow
	// rather than growing the arena.
	arena := p.ArenaSize()
	for i := 0; i < poolLocalCap/2; i++ {
		p.Get(1)
	}
	st = p.Stats()
	if st.Refills == 0 {
		t.Fatalf("pid 1 never refilled from overflow: %+v", st)
	}
	if p.ArenaSize() != arena {
		t.Fatalf("arena grew from %d to %d with free records available", arena, p.ArenaSize())
	}
	if st.Drops != 0 {
		t.Fatalf("unexpected drops: %+v", st)
	}
}

func TestPoolArenaGrowthAcrossBlocks(t *testing.T) {
	p := NewPool[uint64](1, nil)
	seen := map[Handle]bool{}
	n := 3*poolBlockSize + 5
	for i := 0; i < n; i++ {
		h := p.Get(0)
		if seen[h] {
			t.Fatalf("handle %d issued twice", h)
		}
		seen[h] = true
		*p.At(h) = uint64(i)
	}
	for h := range seen {
		got := *p.At(h)
		if got >= uint64(n) {
			t.Fatalf("record %d corrupted: %d", h, got)
		}
	}
	if p.ArenaSize() != n {
		t.Fatalf("ArenaSize = %d, want %d", p.ArenaSize(), n)
	}
}

func TestPoolConcurrentDistinctHandles(t *testing.T) {
	const procs, rounds = 4, 2000
	p := NewPool[uint64](procs, nil)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			held := make([]Handle, 0, 8)
			for i := 0; i < rounds; i++ {
				h := p.Get(pid)
				*p.At(h) = uint64(pid) // owner writes while held
				held = append(held, h)
				if len(held) == 8 {
					for _, h := range held {
						if *p.At(h) != uint64(pid) {
							t.Errorf("record %d stolen while held", h)
							return
						}
						p.Put(pid, h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				p.Put(pid, h)
			}
		}(pid)
	}
	wg.Wait()
	st := p.Stats()
	if st.Reuses == 0 {
		t.Fatalf("no recycling under churn: %+v", st)
	}
}

func TestPoolTryGetExhaustionIsTyped(t *testing.T) {
	p := NewPool[uint64](1, nil)
	p.limit = 3 // shrink the handle horizon so exhaustion is reachable
	var hs []Handle
	for i := 0; i < 3; i++ {
		h, err := p.TryGet(0)
		if err != nil || h == NilHandle {
			t.Fatalf("TryGet #%d = (%d, %v) before the horizon", i, h, err)
		}
		hs = append(hs, h)
	}
	h, err := p.TryGet(0)
	if !errors.Is(err, ErrArenaExhausted) || h != NilHandle {
		t.Fatalf("TryGet past the horizon = (%d, %v), want (NilHandle, ErrArenaExhausted)", h, err)
	}
	// Exhaustion is about fresh carving only: recycling still serves.
	p.Put(0, hs[0])
	if h, err := p.TryGet(0); err != nil || h != hs[0] {
		t.Fatalf("recycled TryGet = (%d, %v), want (%d, nil)", h, err, hs[0])
	}
}

func TestPoolGetPanicsOnExhaustion(t *testing.T) {
	p := NewPool[uint64](1, nil)
	p.limit = 1
	p.Get(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Get past the horizon did not panic")
		}
	}()
	p.Get(0)
}

func TestPoolSizedOverflowNeverDrops(t *testing.T) {
	// The overflow is sized 2·procs·poolLocalCap: even if every pid
	// spills its whole local cache and one pid absorbs all frees, no
	// handle is ever dropped (each drop strands an arena record).
	const procs = 4
	p := NewPool[uint64](procs, nil)
	var held [procs][]Handle
	for pid := 0; pid < procs; pid++ {
		for i := 0; i < 2*poolLocalCap; i++ {
			held[pid] = append(held[pid], p.Get(pid))
		}
	}
	// Every pid frees everything it holds, overfilling each local list
	// and forcing repeated spills into the shared overflow.
	for pid := 0; pid < procs; pid++ {
		for _, h := range held[pid] {
			p.Put(pid, h)
		}
	}
	st := p.Stats()
	if st.Spills == 0 {
		t.Fatalf("the churn never spilled: %+v", st)
	}
	if st.Drops != 0 {
		t.Fatalf("correctly sized overflow dropped %d handles: %+v", st.Drops, st)
	}
	// The arena must now satisfy the same demand purely by recycling:
	// every handle is reachable again through its local list or the
	// shared overflow, so no fresh record is carved.
	arena := p.ArenaSize()
	for pid := 0; pid < procs; pid++ {
		for i := 0; i < 2*poolLocalCap; i++ {
			p.Get(pid)
		}
	}
	if grown := p.ArenaSize(); grown != arena {
		t.Fatalf("arena grew %d -> %d although every record was recycled", arena, grown)
	}
	if st := p.Stats(); st.Refills == 0 {
		t.Fatalf("the drain never refilled from overflow: %+v", st)
	}
}

func TestTaggedRefCASCatchesRecycledHandle(t *testing.T) {
	// The §2.2 scenario in miniature: a register returns to an old
	// handle after recycling, and the tag makes the stale CAS fail.
	p := NewPool[uint64](1, nil)
	r := NewTaggedRef(p, PackTagged(NilHandle, 0))
	h := p.Get(0)
	old := r.Read()
	r.Write(old.Next(h)) // install h...
	stale := r.Read()    // ...a slow process reads 〈h, 1〉...
	w2 := r.Read()
	if !r.CAS(w2, w2.Next(NilHandle)) { // ...h is removed and retired...
		t.Fatal("CAS by the up-to-date process failed")
	}
	p.Put(0, h)
	h2 := p.Get(0) // ...recycled...
	if h2 != h {
		t.Fatalf("expected recycled handle %d, got %d", h, h2)
	}
	w3 := r.Read()
	r.Write(w3.Next(h2)) // ...and reinstalled: register holds 〈h, 3〉.
	if r.CAS(stale, stale.Next(NilHandle)) {
		t.Fatal("stale CAS succeeded on a recycled handle: tags are not load-bearing")
	}
	if got := r.Read(); got.Handle() != h || got.Tag() != 3 {
		t.Fatalf("register = (%d,%d), want (%d,3)", got.Handle(), got.Tag(), h)
	}
}

func TestTaggedRefObserved(t *testing.T) {
	var st Stats
	p := NewPool[uint64](1, nil)
	r := NewTaggedRefObserved(p, PackTagged(NilHandle, 0), &st)
	w := r.Read()
	r.Write(w)
	r.CAS(w, w)
	if st.Reads() != 1 || st.Writes() != 1 || st.CASes() != 1 {
		t.Fatalf("observer saw %d/%d/%d", st.Reads(), st.Writes(), st.CASes())
	}
	if r.Deref(PackTagged(NilHandle, 9)) != nil {
		t.Fatal("Deref(nil handle) != nil")
	}
	h := p.Get(0)
	*p.At(h) = 5
	if got := r.Deref(PackTagged(h, 0)); got == nil || *got != 5 {
		t.Fatal("Deref missed the pooled record")
	}
	if st.Total() != 3 {
		t.Fatal("Deref must not count as a shared access")
	}
}

func TestPoolChurnStaysBounded(t *testing.T) {
	// The long-run invariant the soak leak audit relies on: once a
	// pool's working set is warm, unbounded get/put churn is served
	// entirely by recycling — Allocs plateau at the high-water mark,
	// ArenaSize never grows past it, and nothing is ever dropped,
	// generation after generation.
	const (
		procs       = 4
		perPid      = 48 // working set per pid, below and above localCap in mix
		generations = 500
	)
	p := NewPool[uint64](procs, nil)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			held := make([]Handle, 0, perPid)
			for gen := 0; gen < generations; gen++ {
				// Vary the per-generation working set so the local list
				// crosses its spill threshold on some generations and
				// not others.
				n := perPid
				if gen%3 == 0 {
					n = 2 * perPid
				}
				for i := 0; i < n; i++ {
					held = append(held, p.Get(pid))
				}
				for _, h := range held {
					p.Put(pid, h)
				}
				held = held[:0]
			}
		}(pid)
	}
	wg.Wait()
	st := p.Stats()
	if st.Drops != 0 {
		t.Fatalf("churn dropped %d handles: %+v", st.Drops, st)
	}
	// The peak simultaneous demand is procs * 2*perPid records; with
	// every handle recycled between generations, allocations can never
	// exceed that (plus nothing: a Get only allocates when no free
	// record exists anywhere for the pid).
	peak := uint64(procs * 2 * perPid)
	if st.Allocs > peak {
		t.Fatalf("Allocs %d exceeded the peak working set %d — the free lists leak: %+v",
			st.Allocs, peak, st)
	}
	if got := uint64(p.ArenaSize()); got != st.Allocs {
		t.Fatalf("ArenaSize %d != Allocs %d", got, st.Allocs)
	}
	// ~500 generations over a plateaued arena means reuse dominates
	// allocation by orders of magnitude.
	if st.Reuses < 100*st.Allocs {
		t.Fatalf("reuse is not carrying the churn: %+v", st)
	}
	// A second churn round must not move the high-water mark at all.
	before := p.ArenaSize()
	for pid := 0; pid < procs; pid++ {
		for gen := 0; gen < 10; gen++ {
			var held []Handle
			for i := 0; i < perPid; i++ {
				held = append(held, p.Get(pid))
			}
			for _, h := range held {
				p.Put(pid, h)
			}
		}
	}
	if after := p.ArenaSize(); after != before {
		t.Fatalf("arena grew %d -> %d on a warm pool", before, after)
	}
}
