package memory

import "sync/atomic"

// Tagged registers: the pooled-backend realization of the paper's
// multi-field registers. Where the boxed family (ref.go) leans on the
// garbage collector to rule out pointer ABA and the packed family
// (pack.go) squeezes 〈index, value, seqnb〉 into one word, the tagged
// family stores records in a Pool arena and keeps the register itself
// a single word packing 〈handle, sequence tag〉. Nodes are recycled, so
// the same handle can legitimately reappear in a register — exactly
// the situation of §2.2 — and the tag, CASed together with the handle,
// is what makes the stale CAS fail. Here the sequence tags are
// load-bearing, as on the paper's target machines.
const (
	// TagBits is the width of the tagged register's sequence field.
	// Tags wrap modulo 2^32; as with the packed backend's SeqPeriod, a
	// recurrence within one register-read-to-CAS window of another
	// process is astronomically unlikely.
	TagBits = 32
	// TagMask extracts a sequence tag from a tagged word.
	TagMask = 1<<TagBits - 1
)

// Handle identifies a pooled record inside its Pool. The zero Handle
// is the nil reference.
type Handle uint32

// NilHandle is the null pooled reference.
const NilHandle Handle = 0

// TaggedVal is the packed content of a tagged register: a pool Handle
// in the high 32 bits and a sequence tag in the low 32 bits.
type TaggedVal uint64

// PackTagged packs a handle and a sequence tag into one register word.
func PackTagged(h Handle, tag uint32) TaggedVal {
	return TaggedVal(uint64(h)<<TagBits | uint64(tag))
}

// Handle returns the pooled-record handle of the word (mark excluded).
func (v TaggedVal) Handle() Handle { return Handle((v &^ TaggedMark) >> TagBits) }

// Tag returns the sequence tag of the word.
func (v TaggedVal) Tag() uint32 { return uint32(v & TagMask) }

// Next returns the word that installs h over v: same register, handle
// h, tag advanced by one, mark cleared. Every successful CAS on a
// tagged register installs a Next word (possibly re-marked via
// WithMark), which is what keeps tags strictly monotonic (modulo 2^32)
// and recycled handles distinguishable.
func (v TaggedVal) Next(h Handle) TaggedVal {
	return PackTagged(h, v.Tag()+1)
}

// TaggedMark is the Harris/Michael deletion mark: list-shaped
// structures (internal/set) flag a node as logically deleted by
// setting this bit in the node's next word, atomically with the
// handle and tag. The bit is the top bit of the handle field, so
// handles are limited to 2^31-1 — Pool.Get enforces exactly that
// boundary (far beyond any real arena), so a live handle can never
// alias the mark.
const TaggedMark TaggedVal = 1 << 63

// Marked reports whether the word carries the deletion mark.
func (v TaggedVal) Marked() bool { return v&TaggedMark != 0 }

// WithMark returns the word with the deletion mark set.
func (v TaggedVal) WithMark() TaggedVal { return v | TaggedMark }

// WithoutMark returns the word with the deletion mark cleared.
func (v TaggedVal) WithoutMark() TaggedVal { return v &^ TaggedMark }

// TaggedRef is an atomic register holding a TaggedVal over records of
// type T allocated from one Pool. It supports the model's three base
// operations with the same Observer instrumentation as Word and Ref,
// so the pooled backends plug into the E1 access counting and the
// deterministic scheduler unchanged.
//
// Records are NOT immutable across recycling: after a Put, the pool
// may hand the same handle to another operation, which rewrites the
// record's fields. Algorithms must therefore either (a) only trust a
// dereferenced field when a subsequent CAS on the register succeeds
// (the tag proves the register — hence the record — was untouched in
// between), or (b) validate a read snapshot by re-reading the register
// word (see stack.AbortablePooled). Record fields must be atomics:
// a stale reader may race a recycler, and although every such read is
// discarded by (a)/(b), the access itself must be data-race-free.
type TaggedRef[T any] struct {
	w    atomic.Uint64
	pool *Pool[T]
	obs  Observer
}

// NewTaggedRef returns an uninstrumented tagged register over pool
// holding init.
func NewTaggedRef[T any](pool *Pool[T], init TaggedVal) *TaggedRef[T] {
	return NewTaggedRefObserved(pool, init, nil)
}

// NewTaggedRefObserved returns a tagged register whose every access is
// reported to obs first. A nil obs is equivalent to NewTaggedRef.
func NewTaggedRefObserved[T any](pool *Pool[T], init TaggedVal, obs Observer) *TaggedRef[T] {
	r := &TaggedRef[T]{pool: pool, obs: obs}
	r.w.Store(uint64(init))
	return r
}

// Init initializes r in place over pool holding init, reporting to
// obs. It exists for registers embedded inside pooled records (a list
// node's next register, say), which cannot be assigned from a
// constructed TaggedRef because the atomic word must not be copied.
// Call it only while no other process can reach r — in practice from a
// Pool's init hook, once per freshly carved record; recycled records
// keep their accumulated tag and are never re-Init'ed.
func (r *TaggedRef[T]) Init(pool *Pool[T], init TaggedVal, obs Observer) {
	r.pool = pool
	r.obs = obs
	r.w.Store(uint64(init))
}

// Read returns the current 〈handle, tag〉 word.
func (r *TaggedRef[T]) Read() TaggedVal {
	if r.obs != nil {
		r.obs.OnAccess(Read)
	}
	return TaggedVal(r.w.Load())
}

// Write stores v into the register.
func (r *TaggedRef[T]) Write(v TaggedVal) {
	if r.obs != nil {
		r.obs.OnAccess(Write)
	}
	r.w.Store(uint64(v))
}

// CAS atomically replaces old with new and reports whether it did.
// Handle and tag are compared together: a recycled handle with an
// advanced tag does not match an old word.
func (r *TaggedRef[T]) CAS(old, new TaggedVal) bool {
	if r.obs != nil {
		r.obs.OnAccess(CAS)
	}
	return r.w.CompareAndSwap(uint64(old), uint64(new))
}

// Deref resolves the word's handle in the register's pool; a nil
// handle yields nil. Dereferencing is not a shared access of the
// model (the arena is private memory) and is not observed.
func (r *TaggedRef[T]) Deref(v TaggedVal) *T {
	if v.Handle() == NilHandle {
		return nil
	}
	return r.pool.At(v.Handle())
}

// Pool returns the register's backing pool.
func (r *TaggedRef[T]) Pool() *Pool[T] { return r.pool }

// TaggedRefs is a fixed array of tagged registers sharing one pool and
// observer, the pooled sibling of Refs.
type TaggedRefs[T any] struct {
	regs []TaggedRef[T]
}

// NewTaggedRefs returns n registers over pool, the i-th initialized to
// init(i). A nil obs disables instrumentation.
func NewTaggedRefs[T any](pool *Pool[T], n int, init func(i int) TaggedVal, obs Observer) *TaggedRefs[T] {
	a := &TaggedRefs[T]{regs: make([]TaggedRef[T], n)}
	for i := range a.regs {
		a.regs[i].pool = pool
		a.regs[i].obs = obs
		a.regs[i].w.Store(uint64(init(i)))
	}
	return a
}

// At returns the i-th register.
func (a *TaggedRefs[T]) At(i int) *TaggedRef[T] { return &a.regs[i] }

// Len returns the number of registers.
func (a *TaggedRefs[T]) Len() int { return len(a.regs) }
