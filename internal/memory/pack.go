package memory

// Bit-packing codecs for the paper's multi-field registers.
//
// The machines the paper cites (§2.2) CAS one machine word, so the
// packed backend lays the TOP register's 〈index, value, seqnb〉 triple
// and a STACK cell's 〈value, sn〉 pair out in a single uint64:
//
//	bit  0..19  sequence number (20 bits, wraps modulo 2^20)
//	bit 20..31  index           (12 bits; TOP only)
//	bit 32..63  value           (32 bits)
//
// Consequences, documented for users of the packed backend:
//
//   - stack/queue capacity k is limited to MaxIndex entries;
//   - values are uint32 (the boxed backend lifts both restrictions);
//   - a sequence number can recur after SeqPeriod writes to the same
//     cell within one register-read-to-CAS window of some other
//     process. The paper's counters are unbounded integers; 2^20 per
//     cell makes the ABA window astronomically unlikely in practice
//     and the boxed backend eliminates it entirely.
const (
	// SeqBits is the width of the packed sequence-number field.
	SeqBits = 20
	// IndexBits is the width of the packed index field.
	IndexBits = 12
	// SeqMask extracts a sequence number from its field.
	SeqMask = 1<<SeqBits - 1
	// IndexMask extracts an index from its field.
	IndexMask = 1<<IndexBits - 1
	// MaxIndex is the largest index representable, hence the largest
	// usable capacity of a packed-backend stack or queue.
	MaxIndex = IndexMask
	// SeqPeriod is the period after which per-cell sequence numbers
	// wrap around.
	SeqPeriod = 1 << SeqBits

	indexShift = SeqBits
	valueShift = SeqBits + IndexBits
)

// PackTop packs the paper's TOP = 〈index, value, seqnb〉 triple into one
// word. index must be in [0, MaxIndex] and seq is taken modulo
// SeqPeriod.
func PackTop(index int, value uint32, seq uint32) uint64 {
	if index < 0 || index > MaxIndex {
		panic("memory: packed index out of range")
	}
	return uint64(seq&SeqMask) |
		uint64(index)<<indexShift |
		uint64(value)<<valueShift
}

// UnpackTop is the inverse of PackTop.
func UnpackTop(w uint64) (index int, value uint32, seq uint32) {
	seq = uint32(w & SeqMask)
	index = int(w >> indexShift & IndexMask)
	value = uint32(w >> valueShift)
	return index, value, seq
}

// PackCell packs a STACK cell 〈value, sn〉 pair into one word (the index
// field is left zero).
func PackCell(value uint32, seq uint32) uint64 {
	return uint64(seq&SeqMask) | uint64(value)<<valueShift
}

// UnpackCell is the inverse of PackCell.
func UnpackCell(w uint64) (value uint32, seq uint32) {
	return uint32(w >> valueShift), uint32(w & SeqMask)
}

// NextSeq returns seq+1 modulo SeqPeriod.
func NextSeq(seq uint32) uint32 { return (seq + 1) & SeqMask }

// PrevSeq returns seq-1 modulo SeqPeriod; PrevSeq(0) is the packed
// encoding of the paper's initial dummy tag −1.
func PrevSeq(seq uint32) uint32 { return (seq - 1) & SeqMask }
