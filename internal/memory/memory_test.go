package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWordReadWrite(t *testing.T) {
	w := NewWord(7)
	if got := w.Read(); got != 7 {
		t.Fatalf("Read() = %d, want 7", got)
	}
	w.Write(42)
	if got := w.Read(); got != 42 {
		t.Fatalf("Read() after Write = %d, want 42", got)
	}
}

func TestWordCASSemantics(t *testing.T) {
	w := NewWord(1)
	if !w.CAS(1, 2) {
		t.Fatal("CAS(1,2) on value 1 failed")
	}
	if w.CAS(1, 3) {
		t.Fatal("CAS(1,3) on value 2 succeeded")
	}
	if got := w.Read(); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
}

func TestFlagSemantics(t *testing.T) {
	f := NewFlag(false)
	if f.Read() {
		t.Fatal("initial flag true, want false")
	}
	f.Write(true)
	if !f.Read() {
		t.Fatal("flag false after Write(true)")
	}
	if f.CAS(false, true) {
		t.Fatal("CAS(false,true) succeeded on true flag")
	}
	if !f.CAS(true, false) {
		t.Fatal("CAS(true,false) failed on true flag")
	}
}

func TestRefCASIsIdentityBased(t *testing.T) {
	type rec struct{ v int }
	a, b := &rec{1}, &rec{1}
	r := NewRef(a)
	if r.CAS(b, &rec{2}) {
		t.Fatal("CAS with equal-valued but distinct pointer succeeded")
	}
	if !r.CAS(a, b) {
		t.Fatal("CAS with the read pointer failed")
	}
	if got := r.Read(); got != b {
		t.Fatalf("Read() = %p, want %p", got, b)
	}
}

func TestWordCASMutualExclusion(t *testing.T) {
	// Under contention, exactly one CAS per round may succeed.
	const procs, rounds = 8, 2000
	w := NewWord(0)
	var wins [procs]int
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := uint64(0); r < rounds; r++ {
				if w.CAS(r, r+1) {
					wins[p]++
				}
				for w.Read() == r { // wait for the round to advance
				}
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != rounds {
		t.Fatalf("total CAS wins = %d, want %d", total, rounds)
	}
	if got := w.Read(); got != rounds {
		t.Fatalf("final value = %d, want %d", got, rounds)
	}
}

func TestStatsCounts(t *testing.T) {
	var st Stats
	w := NewWordObserved(0, &st)
	f := NewFlagObserved(false, &st)
	w.Read()
	w.Write(1)
	w.CAS(1, 2)
	w.CAS(9, 10) // failed CAS still counts as an access
	f.Read()
	sn := st.Snapshot()
	if sn.Reads != 2 || sn.Writes != 1 || sn.CASes != 2 {
		t.Fatalf("snapshot = %+v, want 2 reads, 1 write, 2 CASes", sn)
	}
	if st.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", st.Total())
	}
	st.Reset()
	if st.Total() != 0 {
		t.Fatalf("Total() after Reset = %d, want 0", st.Total())
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{Reads: 10, Writes: 4, CASes: 6}
	b := Snapshot{Reads: 3, Writes: 1, CASes: 2}
	d := a.Sub(b)
	if d != (Snapshot{Reads: 7, Writes: 3, CASes: 4}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Total() != 14 {
		t.Fatalf("Total = %d, want 14", d.Total())
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	var a, b Stats
	m := MultiObserver{&a, &b}
	w := NewWordObserved(0, m)
	w.Read()
	w.Write(1)
	if a.Total() != 2 || b.Total() != 2 {
		t.Fatalf("fan-out totals = %d, %d, want 2, 2", a.Total(), b.Total())
	}
}

func TestFuncObserver(t *testing.T) {
	var kinds []Kind
	w := NewWordObserved(0, FuncObserver(func(k Kind) { kinds = append(kinds, k) }))
	w.Read()
	w.CAS(0, 1)
	w.Write(2)
	want := []Kind{Read, CAS, Write}
	if len(kinds) != len(want) {
		t.Fatalf("observed %d accesses, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("access %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Read: "read", Write: "write", CAS: "cas", Kind(99): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestWordsArray(t *testing.T) {
	var st Stats
	a := NewWordsObserved(4, 9, &st)
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if got := a.At(i).Read(); got != 9 {
			t.Fatalf("At(%d) = %d, want 9", i, got)
		}
	}
	a.At(2).Write(1)
	if a.At(2).Read() != 1 || a.At(1).Read() != 9 {
		t.Fatal("write leaked between array entries")
	}
	if st.Total() != 7 { // 4 reads + 1 write + 2 verification reads
		t.Fatalf("array accesses = %d, want 7", st.Total())
	}
}

func TestRefsArray(t *testing.T) {
	type rec struct{ v int }
	a := NewRefs(3, func(i int) *rec { return &rec{v: i * i} }, nil)
	for i := 0; i < a.Len(); i++ {
		if got := a.At(i).Read().v; got != i*i {
			t.Fatalf("At(%d).v = %d, want %d", i, got, i*i)
		}
	}
}

func TestPackTopRoundTrip(t *testing.T) {
	f := func(index uint16, value uint32, seq uint32) bool {
		idx := int(index) & IndexMask
		w := PackTop(idx, value, seq)
		gi, gv, gs := UnpackTop(w)
		return gi == idx && gv == value && gs == seq&SeqMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackCellRoundTrip(t *testing.T) {
	f := func(value uint32, seq uint32) bool {
		gv, gs := UnpackCell(PackCell(value, seq))
		return gv == value && gs == seq&SeqMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackTopDistinctFields(t *testing.T) {
	// Changing one field must never alias another packed word.
	a := PackTop(1, 0, 0)
	b := PackTop(0, 1, 0)
	c := PackTop(0, 0, 1)
	if a == b || b == c || a == c {
		t.Fatalf("packed fields alias: %x %x %x", a, b, c)
	}
}

func TestPackTopPanicsOutOfRange(t *testing.T) {
	for _, idx := range []int{-1, MaxIndex + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackTop(%d,...) did not panic", idx)
				}
			}()
			PackTop(idx, 0, 0)
		}()
	}
}

func TestSeqArithmetic(t *testing.T) {
	if NextSeq(0) != 1 {
		t.Fatal("NextSeq(0) != 1")
	}
	if NextSeq(SeqMask) != 0 {
		t.Fatal("NextSeq does not wrap")
	}
	if PrevSeq(0) != SeqMask {
		t.Fatal("PrevSeq(0) is not the encoding of -1")
	}
	f := func(s uint32) bool {
		s &= SeqMask
		return PrevSeq(NextSeq(s)) == s && NextSeq(PrevSeq(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
