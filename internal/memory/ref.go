package memory

import "sync/atomic"

// Ref is an atomic register holding an immutable boxed record of type
// T. It is the boxed-backend realization of the paper's multi-field
// registers: instead of bit-packing 〈index, value, seqnb〉 into one
// machine word, the triple is allocated once and the register holds the
// pointer. CAS compares against the exact pointer returned by an
// earlier Read, so a successful CAS proves the register was untouched
// in between; the garbage collector guarantees a live pointer is never
// reused, which rules out pointer-level ABA (the logical sequence tags
// of §2.2 are still kept by the algorithms on top).
//
// Records stored in a Ref must be treated as immutable after
// publication: build a new record, never mutate one that was Read.
type Ref[T any] struct {
	p   atomic.Pointer[T]
	obs Observer
}

// NewRef returns an uninstrumented register holding init (which may be
// nil).
func NewRef[T any](init *T) *Ref[T] {
	r := &Ref[T]{}
	r.p.Store(init)
	return r
}

// NewRefObserved returns a register holding init whose every access is
// reported to obs first. A nil obs is equivalent to NewRef.
func NewRefObserved[T any](init *T, obs Observer) *Ref[T] {
	r := NewRef(init)
	r.obs = obs
	return r
}

// Observe sets the observer for subsequent accesses. It must be called
// before the register is shared between goroutines.
func (r *Ref[T]) Observe(obs Observer) { r.obs = obs }

// Read returns the current record. The caller must not mutate it.
func (r *Ref[T]) Read() *T {
	if r.obs != nil {
		r.obs.OnAccess(Read)
	}
	return r.p.Load()
}

// Write stores rec into the register.
func (r *Ref[T]) Write(rec *T) {
	if r.obs != nil {
		r.obs.OnAccess(Write)
	}
	r.p.Store(rec)
}

// CAS atomically replaces old with new and reports whether it did. old
// must be a pointer previously obtained from Read on this register.
func (r *Ref[T]) CAS(old, new *T) bool {
	if r.obs != nil {
		r.obs.OnAccess(CAS)
	}
	return r.p.CompareAndSwap(old, new)
}

// Refs is a fixed array of Ref registers sharing one observer.
type Refs[T any] struct {
	regs []Ref[T]
}

// NewRefs returns n registers, each initialized by calling init(i).
// A nil obs disables instrumentation.
func NewRefs[T any](n int, init func(i int) *T, obs Observer) *Refs[T] {
	a := &Refs[T]{regs: make([]Ref[T], n)}
	for i := range a.regs {
		a.regs[i].p.Store(init(i))
		a.regs[i].obs = obs
	}
	return a
}

// At returns the i-th register.
func (a *Refs[T]) At(i int) *Ref[T] { return &a.regs[i] }

// Len returns the number of registers.
func (a *Refs[T]) Len() int { return len(a.regs) }
