package combine

import (
	"sync"
	"testing"
	"time"
)

// TestCombinerCrashTakeover kills the combiner mid-pass (armed fault
// injection: the serving goroutine Goexits with the lease held and
// CONTENTION raised) and checks that the waiting processes steal the
// lease, re-serve the pending slots, and finish — bounded delay
// instead of the deadlock the pre-lease protocol would exhibit.
func TestCombinerCrashTakeover(t *testing.T) {
	const procs = 4
	var cnt casCounter
	c := NewCore[struct{}, uint64](procs, cnt.tryInc)
	c.SetLeaseBudget(128) // keep recovery fast; correctness is budget-independent

	// Pids 2 and 3 published requests and then crashed (abandoned, the
	// §5 "crashed op is pending" shape), so the combiner's pass has a
	// backlog to work through.
	c.Publish(2, struct{}{})
	c.Publish(3, struct{}{})

	// pid 0 becomes the combiner and crashes after two applications —
	// its own slot and pid 2's — leaving pid 3's request pending and
	// the lease held.
	if !c.ArmCombinerCrash(0, 2) {
		t.Fatal("ArmCombinerCrash refused")
	}
	if c.ArmCombinerCrash(0, 1) {
		t.Fatal("second ArmCombinerCrash should refuse while one is armed")
	}

	var crasherDone sync.WaitGroup
	crasherDone.Add(1)
	go func() {
		defer crasherDone.Done()
		// DoContended publishes and combines; the injection fires on
		// the third slot application and Goexits. The deferred Done
		// still runs (Goexit runs defers), which is how we detect it.
		c.DoContended(0, struct{}{})
		t.Error("crashed combiner returned from DoContended")
	}()
	crasherDone.Wait()
	if got := c.Stats().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}

	// The survivor's op must complete via takeover, and the takeover
	// pass must also serve pid 3's still-pending request.
	done := make(chan struct{})
	var survivorGot uint64
	go func() {
		survivorGot = c.DoContended(1, struct{}{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivor wedged after combiner crash (no takeover)")
	}

	st := c.Stats()
	if st.Steals == 0 {
		t.Fatalf("no lease steal recorded: %+v", st)
	}
	// Fetch-and-increment applied exactly once per request: pid 0's
	// and pid 2's landed before the crash, pid 1's and pid 3's after
	// the takeover.
	if got := cnt.v.Load(); got != procs {
		t.Fatalf("counter = %d, want %d (lost or double-applied op)", got, procs)
	}
	if survivorGot != 2 && survivorGot != 3 {
		t.Fatalf("survivor's value = %d, want 2 or 3 (served after the takeover)", survivorGot)
	}
}

// TestCombinerCrashBeforeAnyServe crashes the combiner before it
// applies a single slot: even its own operation stays pending, and the
// survivors' takeover serves it (the crashed op "takes effect" after
// the crash — allowed, since a crashed op is pending, §5).
func TestCombinerCrashBeforeAnyServe(t *testing.T) {
	const procs = 2
	var cnt casCounter
	c := NewCore[struct{}, uint64](procs, cnt.tryInc)
	c.SetLeaseBudget(128)

	if !c.ArmCombinerCrash(0, 0) {
		t.Fatal("ArmCombinerCrash refused")
	}
	var crasherDone sync.WaitGroup
	crasherDone.Add(1)
	go func() {
		defer crasherDone.Done()
		c.DoContended(0, struct{}{})
		t.Error("crashed combiner returned")
	}()
	crasherDone.Wait()

	done := make(chan struct{})
	go func() {
		c.DoContended(1, struct{}{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivor wedged after pre-serve combiner crash")
	}
	// Both the survivor's op and the crashed pid's pending op were
	// applied by the takeover pass.
	if got := cnt.v.Load(); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	if st := c.Stats(); st.Steals == 0 || st.Crashes != 1 {
		t.Fatalf("Steals = %d, Crashes = %d, want >0, 1", st.Steals, st.Crashes)
	}
}

// TestPublishAbandonLeavesPendingOp models a process crashing between
// publishing and collecting: the request may be served by a later
// combiner (here it is), and the object stays consistent.
func TestPublishAbandonLeavesPendingOp(t *testing.T) {
	const procs = 2
	var cnt casCounter
	c := NewCore[struct{}, uint64](procs, cnt.tryInc)
	c.Publish(0, struct{}{}) // pid 0 dies here, op pending

	// pid 1's contended op triggers a combining pass, which serves the
	// abandoned slot too.
	c.DoContended(1, struct{}{})
	if got := cnt.v.Load(); got != 2 {
		t.Fatalf("counter = %d, want 2 (abandoned op should be served by the pass)", got)
	}
	if st := c.Stats(); st.Published != 2 || st.Served != 2 {
		t.Fatalf("Published = %d, Served = %d, want 2, 2", st.Published, st.Served)
	}
}

// TestLeasePacking pins the lease word layout the takeover protocol
// and the deterministic schedules rely on.
func TestLeasePacking(t *testing.T) {
	for _, pid := range []int{0, 1, 63} {
		for _, epoch := range []uint32{0, 1, 1<<32 - 1} {
			l := packLease(pid, epoch)
			if leaseOwner(l) != pid || leaseEpoch(l) != epoch {
				t.Fatalf("pack(%d,%d) round-trips to (%d,%d)", pid, epoch, leaseOwner(l), leaseEpoch(l))
			}
		}
	}
	if leaseOwner(uint64(7)) != -1 {
		t.Fatal("owner of a released lease word should be -1 (free)")
	}
}
