package combine

import (
	"sync"
	"sync/atomic"
	"testing"
)

// casCounter is a minimal abortable object: fetch-and-increment built
// from one CAS word. A solo attempt never aborts; a lost CAS race
// aborts with no effect.
type casCounter struct {
	v atomic.Uint64
}

func (c *casCounter) tryInc(_ int, _ struct{}) (uint64, bool) {
	cur := c.v.Load()
	if c.v.CompareAndSwap(cur, cur+1) {
		return cur, true
	}
	return 0, false
}

func TestSoloStaysOnFastPath(t *testing.T) {
	var cnt casCounter
	c := NewCore[struct{}, uint64](4, cnt.tryInc)
	const ops = 1000
	for i := 0; i < ops; i++ {
		if got := c.Do(0, struct{}{}); got != uint64(i) {
			t.Fatalf("op %d returned %d", i, got)
		}
	}
	st := c.Stats()
	if st.Fast != ops {
		t.Fatalf("Fast = %d, want %d (solo ops must not publish)", st.Fast, ops)
	}
	if st.Published != 0 || st.Combines != 0 {
		t.Fatalf("solo run published %d / combined %d times", st.Published, st.Combines)
	}
}

func TestConcurrentIncrementsAreExactlyOnce(t *testing.T) {
	const procs, perProc = 8, 5000
	var cnt casCounter
	c := NewCore[struct{}, uint64](procs, cnt.tryInc)
	results := make([][]uint64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out := make([]uint64, 0, perProc)
			for i := 0; i < perProc; i++ {
				out = append(out, c.Do(pid, struct{}{}))
			}
			results[pid] = out
		}(p)
	}
	wg.Wait()

	// Fetch-and-increment hands out each value exactly once: the Do
	// layer must neither lose a published request nor apply it twice.
	seen := make(map[uint64]bool)
	for _, vs := range results {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d returned twice (request applied twice)", v)
			}
			seen[v] = true
		}
	}
	if want := procs * perProc; len(seen) != want {
		t.Fatalf("distinct results = %d, want %d", len(seen), want)
	}
	if got := cnt.v.Load(); got != uint64(procs*perProc) {
		t.Fatalf("counter = %d, want %d", got, procs*perProc)
	}
}

func TestCombinerAccounting(t *testing.T) {
	const procs, perProc = 8, 5000
	var cnt casCounter
	c := NewCore[struct{}, uint64](procs, cnt.tryInc)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				c.Do(pid, struct{}{})
			}
		}(p)
	}
	wg.Wait()

	st := c.Stats()
	if st.Fast+st.Published != procs*perProc {
		t.Fatalf("Fast(%d) + Published(%d) != %d ops", st.Fast, st.Published, procs*perProc)
	}
	// At quiescence every published request has been served by exactly
	// one combining pass (its own or another process's).
	if st.Served != st.Published {
		t.Fatalf("Served = %d, Published = %d (requests lost or double-served)", st.Served, st.Published)
	}
	if st.Published > 0 && st.Combines == 0 {
		t.Fatal("requests were published but no combining pass ran")
	}
	if st.Combines > st.Published {
		t.Fatalf("Combines = %d > Published = %d", st.Combines, st.Published)
	}
	if st.MaxBatch > procs*combinePasses {
		t.Fatalf("MaxBatch = %d exceeds %d slots x %d passes", st.MaxBatch, procs, combinePasses)
	}
	if mean := st.BatchMean(); st.Combines > 0 && (mean < 1 || mean > float64(procs*combinePasses)) {
		t.Fatalf("BatchMean = %v out of range", mean)
	}
}

func TestResetStats(t *testing.T) {
	var cnt casCounter
	c := NewCore[struct{}, uint64](2, cnt.tryInc)
	for i := 0; i < 10; i++ {
		c.Do(0, struct{}{})
	}
	c.ResetStats()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset: %+v", st)
	}
	if c.Procs() != 2 {
		t.Fatalf("Procs = %d", c.Procs())
	}
}

func TestArgsAndResultsAreDeliveredToTheRightProcess(t *testing.T) {
	// Each op's result must come back to its publisher, not another
	// waiter: echo pid-tagged args through an abortable identity op.
	const procs, perProc = 8, 3000
	var word atomic.Uint64
	try := func(_ int, arg uint64) (uint64, bool) {
		cur := word.Load()
		if word.CompareAndSwap(cur, arg) {
			return arg, true
		}
		return 0, false
	}
	c := NewCore[uint64, uint64](procs, try)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				arg := uint64(pid)<<32 | uint64(i)
				if got := c.Do(pid, arg); got != arg {
					t.Errorf("pid %d op %d: got %x, want %x (result cross-delivered)", pid, i, got, arg)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}
