// Package combine implements flat combining over an abortable object:
// the scaling tier of the contended path.
//
// The contention-sensitive protocol (Figure 3, internal/core) is
// optimal when contention is rare: a solo operation costs six shared
// accesses and no lock. But its fallback serializes every contended
// operation behind one lock — each process acquires, retries the weak
// operation, releases, and the next process repeats the full hand-off.
// Under sustained contention the lock hand-off itself dominates.
//
// Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010) keeps
// the same interface and the same lock-free shortcut but turns the
// contended path into a batched one: a process that hits contention
// publishes its request in a per-process publication slot and one
// process — the combiner, whoever wins the combiner lock — serves
// every published request in a single pass before releasing. One lock
// acquisition amortizes over the whole batch, and the waiting
// processes never touch the object's shared registers at all, which
// is exactly the parallelism-extraction direction of "In Search of
// Optimal Concurrency" (Gramoli, Kuznetsov & Ravi).
//
// Core is generic over the weak (abortable) operation, mirroring
// core.Do's shape: the fast path is the paper's line 01-02 shortcut
// (read CONTENTION, one weak attempt), so a contention-free operation
// still costs six accesses and no lock; only the fallback changes.
//
// Liveness: a published request is served by the current or next
// combining pass, because every combiner scans all slots before
// releasing. With a deadlock-free combiner lock the construction is
// therefore starvation-free — the same guarantee as Figure 3, by a
// helping argument instead of a round-robin one.
//
// Crash tolerance: the combiner role is a lease, not a lock. The
// holder heartbeats a shared word once per served slot; a waiter that
// observes the (lease, heartbeat) pair frozen for the lease budget
// presumes the holder crashed, CAS-steals the lease (bumping its
// epoch) and re-serves every still-pending slot. A combiner that dies
// mid-pass — the failure the paper's §5 crash model allows at any
// step — therefore costs the survivors one lease budget of spinning
// instead of wedging every future contended operation forever.
//
// The steal is safe against a merely-slow holder up to one in-flight
// application: the thief's CAS changes the lease word, and the old
// combiner re-reads that word before every slot application and
// abandons the pass when deposed. The one application it may already
// have started can still land after the thief re-serves the same
// slot — re-serving a black-box non-idempotent operation exactly once
// past an arbitrary crash point is impossible without operation-level
// idempotence — which is why the default lease budget is generous
// enough that a runnable combiner is effectively never presumed dead
// (see defaultLeaseBudget), and why deterministic tests inject
// crashes at the pre-apply point, where takeover is exactly-once.
package combine
