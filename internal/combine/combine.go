package combine

import (
	"runtime"
	"sync/atomic"

	"repro/internal/memory"
)

// Publication-slot states. A slot cycles free → pending → done → free;
// only the owner moves it out of done, only a combiner moves it out of
// pending.
const (
	slotFree uint32 = iota
	slotPending
	slotDone
)

// spinBudget bounds busy-waiting before yielding, as in internal/lock:
// with more goroutines than GOMAXPROCS the serving combiner must get
// scheduled for a waiter's request to complete.
const spinBudget = 64

// combinePasses is how many times a combiner re-scans the publication
// list before releasing: a second pass picks up requests published
// while the first ran, amortizing the lock hand-off further.
const combinePasses = 2

// slot is one process's publication record. arg and res are plain
// fields ordered by the atomic state transitions: the owner writes arg
// before publishing pending, the combiner writes res before publishing
// done. fast and published are the owner's path counters: only pid
// touches its own, so the increments stay on a core-local cache line
// instead of contending on one shared word per operation (Stats sums
// them).
type slot[A, R any] struct {
	state     atomic.Uint32
	_         [60]byte // waiters spin on state: keep it alone on its line
	fast      atomic.Uint64
	published atomic.Uint64
	arg       A
	res       R
	_         [64]byte // keep the next slot's state off this slot's data
}

// Stats is a snapshot of a Core's path and batching counters.
type Stats struct {
	// Fast counts operations completed on the lock-free shortcut.
	Fast uint64
	// Published counts operations that fell back to the publication
	// list (the contended path).
	Published uint64
	// Combines counts combining passes (combiner-lock acquisitions).
	Combines uint64
	// Served counts requests completed by combiners on behalf of any
	// process; Served/Combines is the mean batch size.
	Served uint64
	// MaxBatch is the largest number of requests one combining pass
	// served.
	MaxBatch uint64
	// Retries counts weak attempts consumed inside combining passes
	// beyond the first per request (interference from concurrent
	// fast-path operations).
	Retries uint64
}

// BatchMean returns the mean combining batch size (0 when no pass ran).
func (s Stats) BatchMean() float64 {
	if s.Combines == 0 {
		return 0
	}
	return float64(s.Served) / float64(s.Combines)
}

// Core is the flat-combining construction over one abortable object.
// try is the object's weak operation: a single attempt that either
// takes effect (ok=true) or aborts with no effect (ok=false); a solo
// attempt must never abort. try receives the pid of the EXECUTING
// process — the caller on the fast path, the combiner when a request
// is served from the publication list — so pooled backends can route
// node recycling through the executor's per-pid free list. All strong
// operations of the object must share one Core, for the same reason
// all of Figure 3's share one Guard: CONTENTION and the publication
// list are per-object.
type Core[A, R any] struct {
	try        func(pid int, arg A) (R, bool)
	contention *memory.Flag
	combiner   atomic.Uint32
	slots      []slot[A, R]

	// Combiner-side counters: touched once per combining pass, not
	// per operation, so sharing the words is harmless.
	combines atomic.Uint64
	served   atomic.Uint64
	maxBatch atomic.Uint64
	retries  atomic.Uint64
}

// NewCore returns a Core for n processes (pids in [0, n)) over try.
func NewCore[A, R any](n int, try func(pid int, arg A) (R, bool)) *Core[A, R] {
	if n < 1 {
		panic("combine: process count must be >= 1")
	}
	return &Core[A, R]{
		try:        try,
		contention: memory.NewFlag(false),
		slots:      make([]slot[A, R], n),
	}
}

// Do runs one strong operation on behalf of pid. The fast path is
// Figure 3's line 01-02 shortcut unchanged; the fallback publishes the
// request and either waits for a combiner to serve it or becomes the
// combiner itself. Do always returns a real result and terminates for
// every caller (see the package comment's liveness argument).
func (c *Core[A, R]) Do(pid int, arg A) R {
	if !c.contention.Read() {
		if res, ok := c.try(pid, arg); ok {
			c.slots[pid].fast.Add(1)
			return res
		}
	}
	return c.DoContended(pid, arg)
}

// DoContended runs one strong operation entirely on the contended
// path: the request is published without attempting the lock-free
// shortcut. Do falls back to it; benchmarks (E15) call it directly to
// isolate the batched contended path against Figure 3's serialized
// per-operation lock fallback.
func (c *Core[A, R]) DoContended(pid int, arg A) R {
	s := &c.slots[pid]
	s.arg = arg
	s.state.Store(slotPending)
	s.published.Add(1)
	spins := 0
	for {
		if s.state.Load() == slotDone {
			s.state.Store(slotFree)
			return s.res
		}
		if c.combiner.CompareAndSwap(0, 1) {
			// The previous combiner may have served us between the
			// state load above and winning the CAS; don't burn a
			// zero-batch scan (and skew BatchMean) in that case —
			// any still-pending waiter will win the lock itself.
			if s.state.Load() != slotDone {
				c.combine(pid)
			}
			c.combiner.Store(0)
			// A pass serves every pending slot, ours included (it
			// was published before the CAS); loop back to collect.
			continue
		}
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// combine serves every published request. The caller holds the
// combiner lock; pid is the combiner's own identity, under which every
// served request executes. CONTENTION is raised for the duration so
// that new arrivals divert to the publication list instead of racing
// the combiner on the object's registers — the same role it plays in
// Figure 3's slow path.
func (c *Core[A, R]) combine(pid int) {
	c.combines.Add(1)
	c.contention.Write(true)
	batch := uint64(0)
	for pass := 0; pass < combinePasses; pass++ {
		for i := range c.slots {
			s := &c.slots[i]
			if s.state.Load() != slotPending {
				continue
			}
			s.res = c.apply(pid, s.arg)
			s.state.Store(slotDone)
			batch++
		}
	}
	c.contention.Write(false)
	c.served.Add(batch)
	for {
		cur := c.maxBatch.Load()
		if batch <= cur || c.maxBatch.CompareAndSwap(cur, batch) {
			break
		}
	}
}

// apply retries the weak operation until it takes effect, on behalf of
// the combiner pid. A failed attempt means a fast-path operation that
// started before CONTENTION was raised is mid-flight; yielding lets it
// finish.
func (c *Core[A, R]) apply(pid int, arg A) R {
	for attempt := 0; ; attempt++ {
		if res, ok := c.try(pid, arg); ok {
			if attempt > 0 {
				c.retries.Add(uint64(attempt))
			}
			return res
		}
		runtime.Gosched()
	}
}

// Stats returns a snapshot of the path and batching counters.
func (c *Core[A, R]) Stats() Stats {
	st := Stats{
		Combines: c.combines.Load(),
		Served:   c.served.Load(),
		MaxBatch: c.maxBatch.Load(),
		Retries:  c.retries.Load(),
	}
	for i := range c.slots {
		st.Fast += c.slots[i].fast.Load()
		st.Published += c.slots[i].published.Load()
	}
	return st
}

// ResetStats zeroes the counters (between quiescent phases only).
func (c *Core[A, R]) ResetStats() {
	for i := range c.slots {
		c.slots[i].fast.Store(0)
		c.slots[i].published.Store(0)
	}
	c.combines.Store(0)
	c.served.Store(0)
	c.maxBatch.Store(0)
	c.retries.Store(0)
}

// Procs returns n, the size of the publication list.
func (c *Core[A, R]) Procs() int { return len(c.slots) }
