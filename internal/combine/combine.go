package combine

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// Publication-slot states. A slot cycles free → pending → done → free;
// only the owner moves it out of done, only a combiner moves it out of
// pending.
const (
	slotFree uint32 = iota
	slotPending
	slotDone
)

// spinBudget bounds busy-waiting before yielding, as in internal/lock:
// with more goroutines than GOMAXPROCS the serving combiner must get
// scheduled for a waiter's request to complete.
const spinBudget = 64

// combinePasses is how many times a combiner re-scans the publication
// list before releasing: a second pass picks up requests published
// while the first ran, amortizing the lock hand-off further.
const combinePasses = 2

// defaultLeaseBudget is how many consecutive unchanged (lease, beat)
// observations a waiter tolerates before it presumes the combiner
// crashed and steals the lease. The combiner bumps the heartbeat once
// per slot application, so a live combiner is stale only while one
// apply is in flight; the budget is deliberately generous (with a
// Gosched every spinBudget observations a runnable combiner gets
// scheduled long before it expires), making false steals — the only
// path to a double-applied request — vanishingly unlikely while
// keeping crash recovery in the low milliseconds. Tests shrink it via
// SetLeaseBudget to pin takeovers deterministically.
const defaultLeaseBudget = 1 << 16

// The combiner lease word packs (owner pid + 1) in the high 32 bits —
// zero means the lease is free — and an acquisition epoch in the low
// 32. Every acquisition (normal or steal) increments the epoch, so a
// deposed combiner discovers it lost the lease by re-reading the word:
// even if its pid re-acquired, the epoch moved. (Epoch wrap-around
// would need 2^32 acquisitions between two reads by one stalled
// process; we accept that as unreachable.)
func packLease(pid int, epoch uint32) uint64 {
	return uint64(pid+1)<<32 | uint64(epoch)
}

// leaseOwner returns the holder's pid, or -1 when the lease is free.
func leaseOwner(l uint64) int { return int(l>>32) - 1 }

// leaseEpoch returns the acquisition epoch.
func leaseEpoch(l uint64) uint32 { return uint32(l) }

// slot is one process's publication record. arg and res are plain
// fields ordered by the atomic state transitions: the owner writes arg
// before publishing pending, the combiner writes res before publishing
// done. fast and published are the owner's path counters: only pid
// touches its own, so the increments stay on a core-local cache line
// instead of contending on one shared word per operation (Stats sums
// them).
type slot[A, R any] struct {
	state     atomic.Uint32
	_         [60]byte // waiters spin on state: keep it alone on its line
	fast      atomic.Uint64
	published atomic.Uint64
	arg       A
	res       R
	_         [64]byte // keep the next slot's state off this slot's data
}

// Stats is a snapshot of a Core's path and batching counters.
type Stats struct {
	// Fast counts operations completed on the lock-free shortcut.
	Fast uint64
	// Published counts operations that fell back to the publication
	// list (the contended path).
	Published uint64
	// Combines counts combining passes (lease acquisitions that
	// scanned the list, takeovers included).
	Combines uint64
	// Served counts requests completed by combiners on behalf of any
	// process; Served/Combines is the mean batch size.
	Served uint64
	// MaxBatch is the largest number of requests one combining pass
	// served.
	MaxBatch uint64
	// Retries counts weak attempts consumed inside combining passes
	// beyond the first per request (interference from concurrent
	// fast-path operations).
	Retries uint64
	// Steals counts lease takeovers: a waiter observed the lease and
	// heartbeat unchanged for the full lease budget and seized the
	// combiner role from a presumed-crashed holder.
	Steals uint64
	// Crashes counts armed fault injections that fired (the combiner
	// goroutine exited mid-pass with the lease held).
	Crashes uint64
}

// BatchMean returns the mean combining batch size (0 when no pass ran).
func (s Stats) BatchMean() float64 {
	if s.Combines == 0 {
		return 0
	}
	return float64(s.Served) / float64(s.Combines)
}

// armedCrash is a one-shot fault-injection point: when pid next runs a
// combining pass it performs `serves` slot applications and then
// crashes (runtime.Goexit) with the lease held and CONTENTION raised —
// the worst-case mid-pass combiner death.
type armedCrash struct {
	pid    int
	serves atomic.Int64
}

// Core is the flat-combining construction over one abortable object.
// try is the object's weak operation: a single attempt that either
// takes effect (ok=true) or aborts with no effect (ok=false); a solo
// attempt must never abort. try receives the pid of the EXECUTING
// process — the caller on the fast path, the combiner when a request
// is served from the publication list — so pooled backends can route
// node recycling through the executor's per-pid free list. All strong
// operations of the object must share one Core, for the same reason
// all of Figure 3's share one Guard: CONTENTION and the publication
// list are per-object.
//
// The combiner role is held under a LEASE, not a plain lock: the
// holder heartbeats `beat` once per served slot, and a waiter that
// observes (lease, beat) frozen for the lease budget CAS-steals the
// lease and re-serves the still-pending slots. A combiner that crashes
// mid-pass therefore costs the survivors one lease budget of spinning
// instead of wedging every future contended operation — see the
// package comment's crash-tolerance argument.
type Core[A, R any] struct {
	try         func(pid int, arg A) (R, bool)
	contention  *memory.Flag
	lease       atomic.Uint64
	beat        atomic.Uint64
	obs         memory.Observer
	leaseBudget int
	slots       []slot[A, R]
	armed       atomic.Pointer[armedCrash]

	// Combiner-side counters: touched once per combining pass, not
	// per operation, so sharing the words is harmless.
	combines atomic.Uint64
	served   atomic.Uint64
	maxBatch atomic.Uint64
	retries  atomic.Uint64
	steals   atomic.Uint64
	crashes  atomic.Uint64
}

// NewCore returns a Core for n processes (pids in [0, n)) over try.
func NewCore[A, R any](n int, try func(pid int, arg A) (R, bool)) *Core[A, R] {
	if n < 1 {
		panic("combine: process count must be >= 1")
	}
	return &Core[A, R]{
		try:         try,
		contention:  memory.NewFlag(false),
		leaseBudget: defaultLeaseBudget,
		slots:       make([]slot[A, R], n),
	}
}

// NewCoreObserved is NewCore with every access to the combiner lease,
// the heartbeat and CONTENTION reported to obs first. Under
// internal/sched's controller this makes the whole contended path —
// publication, combining, takeover — deterministically schedulable:
// each waiter iteration performs observed loads, so the controller can
// interleave (and crash) combiners and waiters at chosen steps.
func NewCoreObserved[A, R any](n int, try func(pid int, arg A) (R, bool), obs memory.Observer) *Core[A, R] {
	c := NewCore(n, try)
	c.obs = obs
	c.contention = memory.NewFlagObserved(false, obs)
	return c
}

// SetLeaseBudget overrides the stale-observation budget after which a
// waiter steals a frozen lease (n >= 1). Deterministic tests shrink it
// so a pinned schedule reaches the takeover in a handful of steps.
func (c *Core[A, R]) SetLeaseBudget(n int) {
	if n >= 1 {
		c.leaseBudget = n
	}
}

// observed-access helpers: the lease and heartbeat words are the
// protocol's shared registers, so they report to the observer exactly
// like the object's own words do.
func (c *Core[A, R]) loadLease() uint64 {
	if c.obs != nil {
		c.obs.OnAccess(memory.Read)
	}
	return c.lease.Load()
}

func (c *Core[A, R]) casLease(old, new uint64) bool {
	if c.obs != nil {
		c.obs.OnAccess(memory.CAS)
	}
	return c.lease.CompareAndSwap(old, new)
}

func (c *Core[A, R]) loadBeat() uint64 {
	if c.obs != nil {
		c.obs.OnAccess(memory.Read)
	}
	return c.beat.Load()
}

func (c *Core[A, R]) bumpBeat() {
	if c.obs != nil {
		c.obs.OnAccess(memory.Write)
	}
	c.beat.Add(1)
}

// Do runs one strong operation on behalf of pid. The fast path is
// Figure 3's line 01-02 shortcut unchanged; the fallback publishes the
// request and either waits for a combiner to serve it or becomes the
// combiner itself. Do always returns a real result and terminates for
// every caller (see the package comment's liveness argument).
func (c *Core[A, R]) Do(pid int, arg A) R {
	if !c.contention.Read() {
		if res, ok := c.try(pid, arg); ok {
			c.slots[pid].fast.Add(1)
			return res
		}
	}
	return c.DoContended(pid, arg)
}

// Publish posts pid's request on the publication list without waiting
// for the result — the scenario layer's crash-injection seam: a
// process that dies mid-operation is modelled as publish-and-abandon,
// leaving a pending request that a combiner may or may not serve
// before the run ends (the §5 "crashed operation is pending" rule).
// After Publish the pid must never operate on this Core again: its
// slot is permanently in flight.
func (c *Core[A, R]) Publish(pid int, arg A) {
	s := &c.slots[pid]
	s.arg = arg
	s.state.Store(slotPending)
	s.published.Add(1)
}

// ArmCombinerCrash arms the one-shot fault injection: the next time
// pid serves a combining pass it applies `after` slots and then its
// goroutine exits (runtime.Goexit) with the lease held and CONTENTION
// raised. Returns false if an injection is already armed. Survivors
// recover via the lease takeover; the crashed pid must never operate
// on this Core again.
func (c *Core[A, R]) ArmCombinerCrash(pid, after int) bool {
	a := &armedCrash{pid: pid}
	a.serves.Store(int64(after))
	return c.armed.CompareAndSwap(nil, a)
}

// maybeCrash fires an armed injection at the pre-apply crash point.
func (c *Core[A, R]) maybeCrash(pid int) {
	a := c.armed.Load()
	if a == nil || a.pid != pid {
		return
	}
	if a.serves.Add(-1) < 0 {
		c.armed.CompareAndSwap(a, nil)
		c.crashes.Add(1)
		runtime.Goexit()
	}
}

// DoContended runs one strong operation entirely on the contended
// path: the request is published without attempting the lock-free
// shortcut. Do falls back to it; benchmarks (E15) call it directly to
// isolate the batched contended path against Figure 3's serialized
// per-operation lock fallback.
func (c *Core[A, R]) DoContended(pid int, arg A) R {
	s := &c.slots[pid]
	s.arg = arg
	s.state.Store(slotPending)
	s.published.Add(1)
	spins, stale := 0, 0
	var lastLease, lastBeat uint64
	haveObs := false
	for {
		if s.state.Load() == slotDone {
			s.state.Store(slotFree)
			return s.res
		}
		l := c.loadLease()
		if leaseOwner(l) < 0 {
			// Lease free: become the combiner. The previous holder may
			// have served us between the state load above and the CAS;
			// don't burn a zero-batch scan (and skew BatchMean) then —
			// any still-pending waiter will win the lease itself.
			if c.casLease(l, packLease(pid, leaseEpoch(l)+1)) {
				if s.state.Load() != slotDone {
					c.combine(pid, leaseEpoch(l)+1)
				}
				c.releaseLease(pid, leaseEpoch(l)+1)
			}
			haveObs = false
			continue
		}
		b := c.loadBeat()
		if haveObs && l == lastLease && b == lastBeat {
			if stale++; stale >= c.leaseBudget {
				stale = 0
				// The holder made no progress for the whole budget:
				// presume it crashed and steal the lease. If it is in
				// fact alive the CAS publishes its deposition — it
				// re-checks the lease before every apply and abandons
				// the pass.
				if c.casLease(l, packLease(pid, leaseEpoch(l)+1)) {
					c.steals.Add(1)
					if s.state.Load() != slotDone {
						c.combine(pid, leaseEpoch(l)+1)
					}
					c.releaseLease(pid, leaseEpoch(l)+1)
				}
				haveObs = false
				continue
			}
		} else {
			lastLease, lastBeat, stale, haveObs = l, b, 0, true
		}
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// releaseLease hands the lease back (owner 0, epoch preserved). A
// failed CAS means a waiter stole the lease mid-pass — the thief owns
// the role now, so there is nothing to release.
func (c *Core[A, R]) releaseLease(pid int, epoch uint32) {
	c.casLease(packLease(pid, epoch), uint64(epoch))
}

// combine serves every published request. The caller holds the lease
// at the given epoch; pid is the combiner's own identity, under which
// every served request executes. CONTENTION is raised for the duration
// so that new arrivals divert to the publication list instead of
// racing the combiner on the object's registers — the same role it
// plays in Figure 3's slow path. Before every slot application the
// combiner re-reads the lease: a changed word means a waiter presumed
// it dead and stole the role, so it abandons the pass immediately
// (the thief re-serves anything still pending, and owns CONTENTION).
func (c *Core[A, R]) combine(pid int, epoch uint32) {
	c.combines.Add(1)
	c.contention.Write(true)
	batch := uint64(0)
	deposed := false
	held := packLease(pid, epoch)
	for pass := 0; pass < combinePasses && !deposed; pass++ {
		for i := range c.slots {
			s := &c.slots[i]
			if s.state.Load() != slotPending {
				continue
			}
			if c.loadLease() != held {
				deposed = true
				break
			}
			c.bumpBeat()
			c.maybeCrash(pid)
			s.res = c.apply(pid, s.arg)
			s.state.Store(slotDone)
			batch++
		}
	}
	if !deposed {
		c.contention.Write(false)
	}
	c.served.Add(batch)
	core.StoreMax(&c.maxBatch, batch)
}

// apply retries the weak operation until it takes effect, on behalf of
// the combiner pid. A failed attempt means a fast-path operation that
// started before CONTENTION was raised is mid-flight; yielding lets it
// finish.
func (c *Core[A, R]) apply(pid int, arg A) R {
	for attempt := 0; ; attempt++ {
		if res, ok := c.try(pid, arg); ok {
			if attempt > 0 {
				c.retries.Add(uint64(attempt))
			}
			return res
		}
		runtime.Gosched()
	}
}

// Stats returns a snapshot of the path and batching counters.
func (c *Core[A, R]) Stats() Stats {
	st := Stats{
		Combines: c.combines.Load(),
		Served:   c.served.Load(),
		MaxBatch: c.maxBatch.Load(),
		Retries:  c.retries.Load(),
		Steals:   c.steals.Load(),
		Crashes:  c.crashes.Load(),
	}
	for i := range c.slots {
		st.Fast += c.slots[i].fast.Load()
		st.Published += c.slots[i].published.Load()
	}
	return st
}

// ResetStats zeroes the counters (between quiescent phases only).
func (c *Core[A, R]) ResetStats() {
	for i := range c.slots {
		c.slots[i].fast.Store(0)
		c.slots[i].published.Store(0)
	}
	c.combines.Store(0)
	c.served.Store(0)
	c.maxBatch.Store(0)
	c.retries.Store(0)
	c.steals.Store(0)
	c.crashes.Store(0)
}

// Procs returns n, the size of the publication list.
func (c *Core[A, R]) Procs() int { return len(c.slots) }
