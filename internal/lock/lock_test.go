package lock

import (
	"sync"
	"sync/atomic"
	"testing"
)

// exercise runs procs goroutines each performing iters critical
// sections guarded by the given PidLock, and fails the test if two
// processes are ever inside simultaneously or increments are lost.
func exercise(t *testing.T, l PidLock, procs, iters int) {
	t.Helper()
	var inCS atomic.Int32
	counter := 0 // unsynchronized on purpose: protected by l
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Acquire(pid)
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d processes in CS", got)
				}
				counter++
				inCS.Add(-1)
				l.Release(pid)
			}
		}(p)
	}
	wg.Wait()
	if counter != procs*iters {
		t.Fatalf("lost updates: counter = %d, want %d", counter, procs*iters)
	}
}

func TestMutualExclusion(t *testing.T) {
	const procs, iters = 8, 3000
	cases := []struct {
		name string
		l    PidLock
	}{
		{"TAS", IgnorePid(NewTAS())},
		{"TTAS", IgnorePid(NewTTAS())},
		{"Backoff", IgnorePid(NewBackoff())},
		{"Ticket", IgnorePid(NewTicket())},
		{"Mutex", IgnorePid(NewMutex())},
		{"Tournament", NewTournament(procs)},
		{"RoundRobin(TAS)", NewRoundRobin(NewTAS(), procs)},
		{"RoundRobin(TTAS)", NewRoundRobin(NewTTAS(), procs)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			exercise(t, tc.l, procs, iters)
		})
	}
}

func TestPetersonMutualExclusion(t *testing.T) {
	exercise(t, NewPeterson(), 2, 20000)
}

func TestPetersonRejectsBadPid(t *testing.T) {
	l := NewPeterson()
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(2) did not panic")
		}
	}()
	l.Acquire(2)
}

func TestTournamentSingleProcess(t *testing.T) {
	l := NewTournament(1)
	l.Acquire(0)
	l.Release(0)
	l.Acquire(0)
	l.Release(0)
}

func TestTournamentOddN(t *testing.T) {
	// n not a power of two exercises the rounded tree.
	exercise(t, NewTournament(5), 5, 2000)
}

func TestTournamentRejectsBadPid(t *testing.T) {
	l := NewTournament(3)
	for _, pid := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Acquire(%d) did not panic", pid)
				}
			}()
			l.Acquire(pid)
		}()
	}
}

func TestRoundRobinAdvancesTurn(t *testing.T) {
	l := NewRoundRobin(NewTAS(), 3)
	if l.Turn() != 0 {
		t.Fatalf("initial TURN = %d, want 0", l.Turn())
	}
	// A solo acquire/release advances TURN (the prioritized process is
	// not competing).
	l.Acquire(1)
	l.Release(1)
	if l.Turn() != 1 {
		t.Fatalf("TURN after one cycle = %d, want 1", l.Turn())
	}
	l.Acquire(2)
	l.Release(2)
	l.Acquire(0)
	l.Release(0)
	if l.Turn() != 0 {
		t.Fatalf("TURN does not wrap round-robin: %d", l.Turn())
	}
}

func TestRoundRobinHoldsTurnForCompetitor(t *testing.T) {
	// If the prioritized process is competing, TURN must not advance
	// past it (this is what Lemma 3 relies on).
	l := NewRoundRobin(NewTAS(), 2)
	// Simulate p0 competing: raise its flag by taking the slow path on
	// another goroutine that blocks inside the inner lock.
	l.Acquire(0) // p0 holds the lock; FLAG[0] is up
	done := make(chan struct{})
	go func() {
		l.Acquire(1)
		l.Release(1)
		close(done)
	}()
	// p1 may or may not pass line 05 yet; release p0 and re-acquire.
	l.Release(0)
	<-done
	// After p1's release with nobody competing, TURN advanced at least
	// once; it must always stay in range.
	if turn := l.Turn(); turn < 0 || turn >= 2 {
		t.Fatalf("TURN out of range: %d", turn)
	}
}

func TestRoundRobinRejectsBadPid(t *testing.T) {
	l := NewRoundRobin(NewTAS(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(5) did not panic")
		}
	}()
	l.Acquire(5)
}

func TestConstructorsRejectBadN(t *testing.T) {
	for name, f := range map[string]func(){
		"RoundRobin": func() { NewRoundRobin(NewTAS(), 0) },
		"Tournament": func() { NewTournament(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with n=0 did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLivenessLabels(t *testing.T) {
	cases := []struct {
		l    LivenessInfo
		want Liveness
	}{
		{NewTAS(), DeadlockFree},
		{NewTTAS(), DeadlockFree},
		{NewBackoff(), DeadlockFree},
		{NewTicket(), StarvationFree},
		{NewMutex(), StarvationFree},
		{NewPeterson(), StarvationFree},
		{NewTournament(4), StarvationFree},
		{NewRoundRobin(NewTAS(), 4), StarvationFree},
	}
	for _, tc := range cases {
		if got := tc.l.Liveness(); got != tc.want {
			t.Errorf("%T.Liveness() = %v, want %v", tc.l, got, tc.want)
		}
	}
}

func TestLivenessString(t *testing.T) {
	if DeadlockFree.String() != "deadlock-free" ||
		StarvationFree.String() != "starvation-free" ||
		Liveness(9).String() != "unknown" {
		t.Fatal("Liveness.String mismatch")
	}
}

func TestAdaptersRoundTrip(t *testing.T) {
	// Bind(IgnorePid(l), pid) must behave as l.
	inner := NewTicket()
	l := Bind(IgnorePid(inner), 3)
	l.Lock()
	locked := make(chan bool, 1)
	go func() {
		inner.Lock()
		locked <- true
		inner.Unlock()
	}()
	select {
	case <-locked:
		t.Fatal("inner lock acquired while bound lock held")
	default:
	}
	l.Unlock()
	if !<-locked {
		t.Fatal("inner lock never acquired after unlock")
	}
}

func TestTicketFIFOUnderContention(t *testing.T) {
	// Ticket order is FIFO: with two alternating processes each should
	// complete a similar number of sections. This is a smoke test of
	// fairness, not a proof; E10 quantifies it.
	l := NewTicket()
	const iters = 5000
	var counts [2]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Lock()
				counts[pid].Add(1)
				l.Unlock()
			}
		}(p)
	}
	// Let them run until one side has done iters sections.
	for counts[0].Load() < iters && counts[1].Load() < iters {
	}
	close(stop)
	wg.Wait()
	a, b := counts[0].Load(), counts[1].Load()
	if a == 0 || b == 0 {
		t.Fatalf("one process starved: counts = %d, %d", a, b)
	}
}
