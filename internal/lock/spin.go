package lock

import (
	"runtime"
	"sync/atomic"
)

// spinBudget is the number of failed probe iterations a spinning lock
// tolerates before yielding the processor. Yielding keeps the spin
// locks live when there are more competing goroutines than GOMAXPROCS
// (the holder must get scheduled to release).
const spinBudget = 64

// TAS is a test-and-set spin lock: a single CAS-able register, the
// simplest deadlock-free lock and the paper's minimal assumption for
// Figure 3 ("this lock is assumed to be deadlock-free but it is not
// required to be starvation-free"). Under contention an unlucky
// process can lose the CAS race forever, so TAS is the canonical
// starvation witness for experiment E10. The zero value is unlocked.
type TAS struct {
	state atomic.Uint32
}

// NewTAS returns an unlocked test-and-set lock.
func NewTAS() *TAS { return &TAS{} }

// Lock acquires the lock, spinning until the CAS wins.
func (l *TAS) Lock() {
	spins := 0
	for !l.state.CompareAndSwap(0, 1) {
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock.
func (l *TAS) Unlock() { l.state.Store(0) }

// Liveness reports DeadlockFree.
func (l *TAS) Liveness() Liveness { return DeadlockFree }

// TTAS is a test-and-test-and-set spin lock: it probes the register
// with plain reads and attempts the CAS only when it observed the lock
// free, which avoids the cache-line ping-pong of TAS while keeping the
// same (deadlock-free only) liveness. The zero value is unlocked.
type TTAS struct {
	state atomic.Uint32
}

// NewTTAS returns an unlocked test-and-test-and-set lock.
func NewTTAS() *TTAS { return &TTAS{} }

// Lock acquires the lock.
func (l *TTAS) Lock() {
	//contlint:allow retryloop spinning until the CAS wins is the lock algorithm itself (E4's lock tier blocks by design); retry policies apply to weak objects, not locks
	for {
		spins := 0
		for l.state.Load() != 0 {
			if spins++; spins >= spinBudget {
				spins = 0
				runtime.Gosched()
			}
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// Unlock releases the lock.
func (l *TTAS) Unlock() { l.state.Store(0) }

// Liveness reports DeadlockFree.
func (l *TTAS) Liveness() Liveness { return DeadlockFree }

// Backoff is a TTAS lock with bounded exponential backoff after each
// lost CAS: losers progressively yield more, trading fairness for
// reduced contention on the lock word. Still only deadlock-free. The
// zero value is unlocked with the default backoff bounds.
type Backoff struct {
	state atomic.Uint32
	// MaxYields bounds the backoff; 0 means the default (1024).
	MaxYields int
}

// NewBackoff returns an unlocked backoff lock with default bounds.
func NewBackoff() *Backoff { return &Backoff{} }

// Lock acquires the lock.
func (l *Backoff) Lock() {
	max := l.MaxYields
	if max == 0 {
		max = 1024
	}
	backoff := 1
	//contlint:allow retryloop spinning until the CAS wins is the lock algorithm itself; the backoff schedule below is this loop's contention policy
	for {
		spins := 0
		for l.state.Load() != 0 {
			if spins++; spins >= spinBudget {
				spins = 0
				runtime.Gosched()
			}
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < max {
			backoff *= 2
		}
	}
}

// Unlock releases the lock.
func (l *Backoff) Unlock() { l.state.Store(0) }

// Liveness reports DeadlockFree.
func (l *Backoff) Liveness() Liveness { return DeadlockFree }
