package lock

import (
	"testing"

	"repro/internal/memory"
)

func TestFastMutexMutualExclusion(t *testing.T) {
	exercise(t, NewFastMutex(8), 8, 3000)
}

func TestFastMutexTwoProcs(t *testing.T) {
	exercise(t, NewFastMutex(2), 2, 20000)
}

func TestFastMutexSoloSevenAccesses(t *testing.T) {
	// The §1.2 claim, measured: a contention-free acquire/release
	// cycle performs exactly 7 shared accesses (5 entry + 2 exit).
	var st memory.Stats
	l := NewFastMutexObserved(8, &st)
	l.Acquire(3)
	entry := st.Total()
	l.Release(3)
	total := st.Total()
	if entry != 5 {
		t.Fatalf("entry accesses = %d, want 5 (%+v)", entry, st.Snapshot())
	}
	if total != 7 {
		t.Fatalf("acquire+release accesses = %d, want 7", total)
	}
	// And the cost stays constant per cycle.
	st.Reset()
	for i := 0; i < 100; i++ {
		l.Acquire(0)
		l.Release(0)
	}
	if got := st.Total(); got != 700 {
		t.Fatalf("100 solo cycles = %d accesses, want 700", got)
	}
}

func TestFastMutexSoloCostIndependentOfN(t *testing.T) {
	for _, n := range []int{1, 4, 64, 512} {
		var st memory.Stats
		l := NewFastMutexObserved(n, &st)
		l.Acquire(n - 1)
		l.Release(n - 1)
		if got := st.Total(); got != 7 {
			t.Fatalf("n=%d: solo cycle = %d accesses, want 7", n, got)
		}
	}
}

func TestFastMutexUnderRoundRobin(t *testing.T) {
	// FastMutex is deadlock-free, so it is a valid substrate for the
	// §4.4 idea; RoundRobin wraps identity-oblivious locks, so compose
	// by nesting pid-locks: RR(TAS) for the turn-taking, FastMutex
	// inside. The composition must still exclude.
	const procs = 4
	nested := nestedLock{
		outer: NewRoundRobin(NewTAS(), procs),
		inner: NewFastMutex(procs),
	}
	exercise(t, nested, procs, 2000)
}

// nestedLock acquires two pid-locks in order (and releases in
// reverse), for composition tests.
type nestedLock struct {
	outer PidLock
	inner PidLock
}

func (n nestedLock) Acquire(pid int) {
	n.outer.Acquire(pid)
	n.inner.Acquire(pid)
}

func (n nestedLock) Release(pid int) {
	n.inner.Release(pid)
	n.outer.Release(pid)
}

func TestFastMutexRejectsBadPid(t *testing.T) {
	l := NewFastMutex(2)
	for _, pid := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Acquire(%d) did not panic", pid)
				}
			}()
			l.Acquire(pid)
		}()
	}
}

func TestFastMutexConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFastMutex(0) did not panic")
		}
	}()
	NewFastMutex(0)
}

func TestFastMutexLiveness(t *testing.T) {
	if NewFastMutex(2).Liveness() != DeadlockFree {
		t.Fatal("FastMutex must advertise deadlock-freedom only")
	}
}
