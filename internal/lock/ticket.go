package lock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Ticket is a ticket (bakery-counter) lock: arrivals take strictly
// increasing tickets and are served in ticket order, so the lock is
// starvation-free with FIFO fairness. It is the strong-lock baseline
// against which the paper's RoundRobin transformation is compared
// (experiment E10), and the lock the paper's §4 "Remark" alludes to:
// with a starvation-free lock, Figure 3's FLAG/TURN lines can be
// dropped. The zero value is unlocked.
type Ticket struct {
	next  atomic.Uint64
	owner atomic.Uint64
}

// NewTicket returns an unlocked ticket lock.
func NewTicket() *Ticket { return &Ticket{} }

// Lock draws a ticket and waits until it is served.
func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	spins := 0
	for l.owner.Load() != t {
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// Unlock serves the next ticket.
func (l *Ticket) Unlock() { l.owner.Add(1) }

// Liveness reports StarvationFree.
func (l *Ticket) Liveness() Liveness { return StarvationFree }

// Mutex adapts sync.Mutex to this package's interfaces. Since Go 1.9
// sync.Mutex has a starvation mode that hands the lock to waiters
// blocked for over 1ms, making it starvation-free in practice; it is
// the "what you would actually use" baseline in the experiments. The
// zero value is unlocked.
type Mutex struct {
	mu sync.Mutex
}

// NewMutex returns an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex.
func (l *Mutex) Lock() { l.mu.Lock() }

// Unlock releases the mutex.
func (l *Mutex) Unlock() { l.mu.Unlock() }

// Liveness reports StarvationFree (Go's starvation mode).
func (l *Mutex) Liveness() Liveness { return StarvationFree }
