package lock

import (
	"math/bits"
	"runtime"

	"repro/internal/memory"
)

// Peterson is Peterson's two-process mutual-exclusion lock built from
// atomic registers only (no CAS), cited by the paper through [17]. It
// is starvation-free for its two processes (bounded bypass of 1).
// Process identities are 0 and 1. The registers are sync/atomic backed,
// which in Go's memory model gives the sequential consistency the
// algorithm requires.
type Peterson struct {
	flag   [2]memory.Flag
	victim memory.Word
}

// NewPeterson returns an unlocked two-process Peterson lock.
func NewPeterson() *Peterson { return &Peterson{} }

// Acquire enters the critical section on behalf of pid (0 or 1).
func (l *Peterson) Acquire(pid int) {
	if pid != 0 && pid != 1 {
		panic("lock: Peterson pid must be 0 or 1")
	}
	other := 1 - pid
	l.flag[pid].Write(true)
	l.victim.Write(uint64(pid))
	spins := 0
	for l.flag[other].Read() && l.victim.Read() == uint64(pid) {
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// Release leaves the critical section on behalf of pid.
func (l *Peterson) Release(pid int) { l.flag[pid].Write(false) }

// Liveness reports StarvationFree.
func (l *Peterson) Liveness() Liveness { return StarvationFree }

// Tournament is an n-process mutual-exclusion lock assembled as a
// complete binary tournament tree of Peterson locks: a process climbs
// from its leaf to the root, winning a two-process contest at every
// level, and releases top-down. It inherits starvation-freedom from
// Peterson at every node and needs only atomic read/write registers.
// It exists here as the register-only starvation-free baseline: the
// paper's point is that RoundRobin achieves the same liveness over a
// much cheaper deadlock-free lock.
type Tournament struct {
	n     int
	leaf  int // index of the first leaf in the implicit heap
	nodes []Peterson
}

// NewTournament returns a tournament lock for n >= 1 processes with
// identities in [0, n).
func NewTournament(n int) *Tournament {
	if n < 1 {
		panic("lock: Tournament needs n >= 1")
	}
	// Round the leaf count up to a power of two so that the tree is
	// complete; heap node 1 is the root and node leaf+pid is pid's
	// starting position.
	leaves := 1
	if n > 1 {
		leaves = 1 << bits.Len(uint(n-1))
	}
	return &Tournament{n: n, leaf: leaves, nodes: make([]Peterson, 2*leaves)}
}

// N returns the number of processes the lock was built for.
func (l *Tournament) N() int { return l.n }

// Acquire enters the critical section on behalf of pid.
func (l *Tournament) Acquire(pid int) {
	l.checkPid(pid)
	for node := l.leaf + pid; node > 1; node >>= 1 {
		//contlint:allow pidflow the tournament translates pid into a per-node side (0/1); this is the identity boundary where the global pid becomes a local one
		l.nodes[node>>1].Acquire(node & 1)
	}
}

// Release leaves the critical section on behalf of pid, unwinding the
// tournament from the root down (the reverse of the acquisition path).
func (l *Tournament) Release(pid int) {
	l.checkPid(pid)
	var path [64]int
	depth := 0
	for node := l.leaf + pid; node > 1; node >>= 1 {
		path[depth] = node
		depth++
	}
	for i := depth - 1; i >= 0; i-- {
		node := path[i]
		//contlint:allow pidflow the tournament translates pid into a per-node side (0/1); this is the identity boundary where the global pid becomes a local one
		l.nodes[node>>1].Release(node & 1)
	}
}

// Liveness reports StarvationFree.
func (l *Tournament) Liveness() Liveness { return StarvationFree }

func (l *Tournament) checkPid(pid int) {
	if pid < 0 || pid >= l.n {
		panic("lock: Tournament pid out of range")
	}
}
