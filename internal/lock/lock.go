package lock

// Lock is a mutual-exclusion lock that does not need to know the
// identity of the acquiring process.
type Lock interface {
	Lock()
	Unlock()
}

// PidLock is a mutual-exclusion lock whose operations take the calling
// process identity pid in [0, n). The paper's algorithms assume n
// asynchronous processes p_1..p_n that know their own index; PidLock is
// that assumption made explicit. A process must not re-enter a PidLock
// it already holds, and Release must be called by the process that
// acquired.
type PidLock interface {
	Acquire(pid int)
	Release(pid int)
}

// Liveness classifies the progress guarantee of a lock in a
// failure-free system (§1.2 of the paper; in a failure-free context
// non-blocking and deadlock-freedom coincide).
type Liveness int

const (
	// DeadlockFree guarantees that if processes are requesting the
	// lock, some process eventually acquires it — individual
	// processes may starve.
	DeadlockFree Liveness = iota
	// StarvationFree guarantees that every requesting process
	// eventually acquires the lock.
	StarvationFree
)

// String returns the conventional name of the liveness class.
func (l Liveness) String() string {
	switch l {
	case DeadlockFree:
		return "deadlock-free"
	case StarvationFree:
		return "starvation-free"
	default:
		return "unknown"
	}
}

// LivenessInfo is implemented by locks that advertise their progress
// guarantee; the experiment harness uses it to label results.
type LivenessInfo interface {
	Liveness() Liveness
}

// ignorePid adapts a Lock to the PidLock interface by discarding the
// process identity.
type ignorePid struct{ l Lock }

// IgnorePid returns a PidLock view of l. Fairness properties are
// whatever l provides; the identity is unused.
func IgnorePid(l Lock) PidLock { return ignorePid{l} }

func (a ignorePid) Acquire(int) { a.l.Lock() }
func (a ignorePid) Release(int) { a.l.Unlock() }

// Liveness forwards the wrapped lock's guarantee, defaulting to the
// conservative DeadlockFree when the lock does not advertise one.
func (a ignorePid) Liveness() Liveness {
	if li, ok := a.l.(LivenessInfo); ok {
		return li.Liveness()
	}
	return DeadlockFree
}

// bound adapts a PidLock to the Lock interface for a fixed process.
type bound struct {
	l   PidLock
	pid int
}

// Bind returns a Lock view of l as used by the single process pid.
func Bind(l PidLock, pid int) Lock { return bound{l, pid} }

func (b bound) Lock()   { b.l.Acquire(b.pid) }
func (b bound) Unlock() { b.l.Release(b.pid) }

// Liveness forwards the wrapped lock's guarantee, defaulting to the
// conservative DeadlockFree when the lock does not advertise one.
func (b bound) Liveness() Liveness {
	if li, ok := b.l.(LivenessInfo); ok {
		return li.Liveness()
	}
	return DeadlockFree
}
