package lock

import (
	"runtime"

	"repro/internal/memory"
)

// paddedFlag keeps each process's FLAG register on its own cache line
// so that spinning on FLAG[TURN] does not invalidate the lines of the
// other processes' flags.
type paddedFlag struct {
	f memory.Flag
	_ [40]byte
}

// RoundRobin is the paper's §4.4 transformation: it builds a
// starvation-free lock for n known processes out of any deadlock-free
// lock, using the starred lines of Figure 3.
//
// Acquire(pid) is lines 04-06: raise FLAG[pid], wait until either it is
// pid's turn or the prioritized process is not competing, then take the
// inner lock. Release(pid) is lines 10-12: lower FLAG[pid], advance
// TURN round-robin if the prioritized process is not competing, then
// release the inner lock. Lemma 3 of the paper proves every acquirer
// eventually succeeds: TURN visits every identity and while TURN = i
// with FLAG[i] raised, no later arrival can pass the line-05 wait, so
// the set of processes competing against p_i only shrinks, and
// deadlock-freedom of the inner lock hands the lock to p_i.
//
// The transformation costs 3 extra shared accesses on an uncontended
// Acquire (write FLAG, read TURN, read FLAG[TURN] — or one fewer when
// TURN = pid) and 3-4 on Release; experiment E10 measures the price
// against the fairness gained.
type RoundRobin struct {
	inner Lock
	n     int
	flag  []paddedFlag
	turn  memory.Word
}

// NewRoundRobin wraps the deadlock-free lock inner for n processes with
// identities in [0, n). Wrapping an already starvation-free lock is
// harmless but pointless (the paper's §4 Remark).
func NewRoundRobin(inner Lock, n int) *RoundRobin {
	if n < 1 {
		panic("lock: RoundRobin needs n >= 1")
	}
	return &RoundRobin{inner: inner, n: n, flag: make([]paddedFlag, n)}
}

// N returns the number of processes the lock was built for.
func (l *RoundRobin) N() int { return l.n }

// Acquire enters the critical section on behalf of pid (lines 04-06 of
// Figure 3).
func (l *RoundRobin) Acquire(pid int) {
	l.checkPid(pid)
	l.flag[pid].f.Write(true) // line 04
	spins := 0
	for { // line 05: wait (TURN = i) ∨ ¬FLAG[TURN]
		t := int(l.turn.Read())
		if t == pid || !l.flag[t].f.Read() {
			break
		}
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
	l.inner.Lock() // line 06
}

// Release leaves the critical section on behalf of pid (lines 10-12 of
// Figure 3).
func (l *RoundRobin) Release(pid int) {
	l.checkPid(pid)
	l.flag[pid].f.Write(false) // line 10
	// line 11: advance priority if its holder is not competing. Only
	// the lock holder executes this, so the read-then-write on TURN is
	// race-free.
	if t := int(l.turn.Read()); !l.flag[t].f.Read() {
		l.turn.Write(uint64((t + 1) % l.n))
	}
	l.inner.Unlock() // line 12
}

// Turn exposes the current TURN value for tests and experiments.
func (l *RoundRobin) Turn() int { return int(l.turn.Read()) }

// Liveness reports StarvationFree, the point of the transformation.
func (l *RoundRobin) Liveness() Liveness { return StarvationFree }

func (l *RoundRobin) checkPid(pid int) {
	if pid < 0 || pid >= l.n {
		panic("lock: RoundRobin pid out of range")
	}
}
