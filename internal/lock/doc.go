// Package lock provides the mutual-exclusion substrate used by the
// paper's contention-sensitive construction (§4) and by the lock-based
// baselines it argues against (§1.1).
//
// The package distinguishes two liveness classes, mirroring the paper's
// progress-condition hierarchy restricted to locks:
//
//   - deadlock-free: some requesting process eventually acquires the
//     lock (TAS, TTAS, Backoff);
//   - starvation-free: every requesting process eventually acquires the
//     lock (Ticket, Tournament of Petersons, and Go's sync.Mutex in its
//     starvation mode).
//
// RoundRobin is the paper's §4.4 contribution: the starred lines 04-06
// and 10-12 of Figure 3 extracted into a generic transformation that
// turns any deadlock-free lock into a starvation-free one using a
// FLAG[1..n] array and a round-robin TURN register. Locks whose fairness
// depends on process identities implement PidLock; identity-oblivious
// locks implement Lock, and adapters convert between the two.
package lock
