package lock

import (
	"runtime"

	"repro/internal/memory"
)

// FastMutex is Lamport's fast mutual-exclusion algorithm (ACM TOCS
// 1987), the paper's reference [16] and, per its §1.2, "the first
// paper that introduced contention-sensitiveness (without giving it a
// name)": in a contention-free context a process enters the critical
// section after only seven shared-memory accesses (five in the entry
// code, two in the exit code), independent of n. Under contention the
// cost depends on n and the interleaving. The lock is deadlock-free
// but not starvation-free — exactly the progress class Figure 3
// assumes of its underlying lock, so FastMutex composes with
// RoundRobin too.
//
// Registers: X and Y hold process identities (Y additionally the
// sentinel "none"), and B[0..n-1] are announcement flags. The fast
// path is X ← i; (Y = none)?; Y ← i; (X = i)? — two conditional
// writes fenced by two reads, which is what makes the solo cost
// constant.
type FastMutex struct {
	n int
	b []paddedFlag
	x *memory.Word
	y *memory.Word // holds pid+1; 0 means "none"
}

// NewFastMutex returns a fast mutex for n >= 1 processes with
// identities in [0, n).
func NewFastMutex(n int) *FastMutex {
	return NewFastMutexObserved(n, nil)
}

// NewFastMutexObserved returns an instrumented fast mutex whose every
// shared access is reported to obs (nil disables instrumentation);
// experiment E12 uses this to count the seven accesses of §1.2.
func NewFastMutexObserved(n int, obs memory.Observer) *FastMutex {
	if n < 1 {
		panic("lock: FastMutex needs n >= 1")
	}
	l := &FastMutex{
		n: n,
		b: make([]paddedFlag, n),
		x: memory.NewWordObserved(0, obs),
		y: memory.NewWordObserved(0, obs),
	}
	for i := range l.b {
		l.b[i].f.Observe(obs)
	}
	return l
}

// Acquire enters the critical section on behalf of pid.
func (l *FastMutex) Acquire(pid int) {
	if pid < 0 || pid >= l.n {
		panic("lock: FastMutex pid out of range")
	}
	me := uint64(pid + 1)
	for {
		l.b[pid].f.Write(true) // announce
		l.x.Write(me)
		if l.y.Read() != 0 {
			// Someone is past the gate; step back and wait for the
			// critical section to clear, then retry from the top.
			l.b[pid].f.Write(false)
			l.waitYClear()
			continue
		}
		l.y.Write(me)
		if l.x.Read() != me {
			// Contention on the gate: withdraw the announcement, wait
			// for every announced process to settle, and check who
			// won the gate.
			l.b[pid].f.Write(false)
			for j := 0; j < l.n; j++ {
				spins := 0
				for l.b[j].f.Read() {
					if spins++; spins >= spinBudget {
						spins = 0
						runtime.Gosched()
					}
				}
			}
			if l.y.Read() != me {
				// Someone else won; wait for the section to clear and
				// retry.
				l.waitYClear()
				continue
			}
		}
		return // fast path: 5 entry accesses when uncontended
	}
}

// Release leaves the critical section on behalf of pid (two shared
// accesses, completing the seven of §1.2).
func (l *FastMutex) Release(pid int) {
	l.y.Write(0)
	l.b[pid].f.Write(false)
}

func (l *FastMutex) waitYClear() {
	spins := 0
	for l.y.Read() != 0 {
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// Liveness reports DeadlockFree: under contention a process can lose
// the X/Y race forever (Lamport's algorithm trades fairness for the
// constant fast path).
func (l *FastMutex) Liveness() Liveness { return DeadlockFree }

var _ PidLock = (*FastMutex)(nil)
