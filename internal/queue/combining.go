package queue

import (
	"repro/internal/combine"
	"repro/internal/core"
)

// combOp is one published queue request: enqueue (with the value) or
// dequeue.
type combOp[T any] struct {
	enq bool
	v   T
}

// combRes is a served request's outcome: the dequeued value (dequeue
// only) and the sentinel error (nil, ErrFull, or ErrEmpty — never
// ErrAborted).
type combRes[T any] struct {
	v   T
	err error
}

// Combining is the flat-combining FIFO queue: the same interface and
// lock-free fast path as Sensitive, with the contended path batched —
// one combiner serves every published request under a single
// combiner-lock acquisition instead of each process taking the
// slow-path lock in turn. See internal/combine.
type Combining[T any] struct {
	weak Weak[T]
	core *combine.Core[combOp[T], combRes[T]]
}

// NewCombining returns a flat-combining queue of capacity k for n
// processes (pids in [0, n)) over the abortable ring queue.
func NewCombining[T any](k, n int) *Combining[T] {
	return NewCombiningFrom[T](NewAbortable[T](k), n)
}

// NewCombiningFrom builds the flat-combining construction over any
// weak queue for n processes.
func NewCombiningFrom[T any](weak Weak[T], n int) *Combining[T] {
	q := &Combining[T]{weak: weak}
	q.core = combine.NewCore[combOp[T], combRes[T]](n, q.attempt)
	return q
}

// NewCombiningPooled returns a flat-combining queue of capacity k for
// n processes over the pooled abortable ring: the whole strong path
// runs allocation-free (experiment E17). The queue's "pool" is the
// ring itself — see AbortablePooled — so unlike the stack no per-pid
// recycling is involved and the weak backend is pid-oblivious.
func NewCombiningPooled(k, n int) *Combining[uint64] {
	return NewCombiningFrom[uint64](NewAbortablePooled(k), n)
}

// attempt adapts the weak queue to combine.Core's try shape. The
// executing pid is unused: every weak queue backend is pid-oblivious.
func (q *Combining[T]) attempt(_ int, op combOp[T]) (combRes[T], bool) {
	if op.enq {
		err := q.weak.TryEnqueue(op.v)
		return combRes[T]{err: err}, err != ErrAborted
	}
	v, err := q.weak.TryDequeue()
	return combRes[T]{v: v, err: err}, err != ErrAborted
}

// Enqueue appends v on behalf of pid; it returns nil or ErrFull and
// never aborts.
func (q *Combining[T]) Enqueue(pid int, v T) error {
	return q.core.Do(pid, combOp[T]{enq: true, v: v}).err
}

// Dequeue removes the oldest value on behalf of pid; it returns the
// value or ErrEmpty and never aborts.
func (q *Combining[T]) Dequeue(pid int) (T, error) {
	r := q.core.Do(pid, combOp[T]{})
	return r.v, r.err
}

// EnqueueContended enqueues entirely on the contended path: the
// request is published without attempting the lock-free shortcut.
// Benchmarks and fuzz targets use it to drive the publication
// machinery deterministically.
func (q *Combining[T]) EnqueueContended(pid int, v T) error {
	return q.core.DoContended(pid, combOp[T]{enq: true, v: v}).err
}

// DequeueContended dequeues entirely on the contended path; see
// EnqueueContended.
func (q *Combining[T]) DequeueContended(pid int) (T, error) {
	r := q.core.DoContended(pid, combOp[T]{})
	return r.v, r.err
}

// Len returns the weak backend's length when it exposes one
// (quiescent states only), -1 otherwise.
func (q *Combining[T]) Len() int {
	if s, ok := q.weak.(interface{ Len() int }); ok {
		return s.Len()
	}
	return -1
}

// Snapshot returns the weak backend's elements oldest-first when it
// exposes a snapshot, nil otherwise. Quiescent states only — the
// adaptive tier calls it on a quiesced source to rebuild the migration
// target.
func (q *Combining[T]) Snapshot() []T {
	if s, ok := q.weak.(interface{ Snapshot() []T }); ok {
		return s.Snapshot()
	}
	return nil
}

// Capacity returns the weak backend's capacity when it exposes one,
// -1 otherwise.
func (q *Combining[T]) Capacity() int {
	if s, ok := q.weak.(interface{ Capacity() int }); ok {
		return s.Capacity()
	}
	return -1
}

// AbandonEnqueue publishes an enqueue request that will never be
// collected — the scenario layer's model of a process crashing
// mid-enqueue: the request is pending and a combiner may or may not
// serve it. pid must never operate on this queue again.
func (q *Combining[T]) AbandonEnqueue(pid int, v T) {
	q.core.Publish(pid, combOp[T]{enq: true, v: v})
}

// AbandonDequeue is AbandonEnqueue for a dequeue request.
func (q *Combining[T]) AbandonDequeue(pid int) {
	q.core.Publish(pid, combOp[T]{})
}

// ArmCombinerCrash arms the combine.Core fault injection: pid's next
// combining pass dies after `after` slot applications with the lease
// held. See combine.Core.ArmCombinerCrash.
func (q *Combining[T]) ArmCombinerCrash(pid, after int) bool {
	return q.core.ArmCombinerCrash(pid, after)
}

// SetLeaseBudget forwards to combine.Core.SetLeaseBudget (tests).
func (q *Combining[T]) SetLeaseBudget(n int) { q.core.SetLeaseBudget(n) }

// Stats exposes the fast-path and combining counters.
func (q *Combining[T]) Stats() combine.Stats { return q.core.Stats() }

// ResetStats zeroes the counters (between quiescent phases only).
func (q *Combining[T]) ResetStats() { q.core.ResetStats() }

// Progress reports StarvationFree (internal/combine's liveness
// argument).
func (q *Combining[T]) Progress() core.Progress { return core.StarvationFree }

var _ Strong[int] = (*Combining[int])(nil)
