package queue

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// Packed is the abortable queue on the bit-packed register backend:
// each ring slot is a single 64-bit word holding 〈value:32, seq:32〉,
// so an enqueue publishes value and state in one atomic write. This
// drops the cost of a successful weak operation to 4 shared accesses
// (read position, read slot, CAS position, write slot) — one fewer
// than the boxed backend, because the separate value write disappears
// into the packed word. The slot-state encoding matches Abortable
// (2·pos free / 2·pos+1 occupied / 2·(pos+k) freed), truncated to 32
// bits: states can only be confused after 2³¹ tickets land on the same
// slot within one read-to-CAS window, which is unreachable in
// practice (the boxed backend has no wrap at all).
type Packed struct {
	head  *memory.Word
	tail  *memory.Word
	slots *memory.Words
	k     uint64
}

func packSlot(value uint32, seq uint32) uint64 { return uint64(value)<<32 | uint64(seq) }
func unpackSlot(w uint64) (value uint32, seq uint32) {
	return uint32(w >> 32), uint32(w)
}

// NewPacked returns a packed abortable queue of capacity k >= 1
// holding uint32 values.
func NewPacked(k int) *Packed { return NewPackedObserved(k, nil) }

// NewPackedObserved returns an instrumented packed queue (nil obs
// disables instrumentation).
func NewPackedObserved(k int, obs memory.Observer) *Packed {
	if k < 1 {
		panic("queue: capacity must be >= 1")
	}
	q := &Packed{
		head: memory.NewWordObserved(0, obs),
		tail: memory.NewWordObserved(0, obs),
		k:    uint64(k),
	}
	q.slots = memory.NewWordsInit(k, func(j int) uint64 {
		return packSlot(0, uint32(2*j)) // free for ticket j, lap 0
	}, obs)
	return q
}

// Capacity returns k, the number of storable elements.
func (q *Packed) Capacity() int { return int(q.k) }

// TryEnqueue makes one attempt to append v; see Abortable.TryEnqueue
// for the contract. Successful attempts cost 4 shared accesses.
func (q *Packed) TryEnqueue(v uint32) error {
	pos := q.tail.Read()
	reg := q.slots.At(int(pos % q.k))
	_, seq := unpackSlot(reg.Read())
	switch dif := int32(seq - uint32(2*pos)); {
	case dif == 0: // free for this ticket: claim it
		if !q.tail.CAS(pos, pos+1) {
			return ErrAborted
		}
		reg.Write(packSlot(v, uint32(2*pos+1))) // value + publish, one word
		return nil
	case dif < 0: // previous-lap value not yet fully dequeued
		if h := q.head.Read(); h+q.k == pos {
			return ErrFull
		}
		return ErrAborted
	default: // stale tail read
		return ErrAborted
	}
}

// TryDequeue makes one attempt to remove the oldest value; see
// Abortable.TryDequeue for the contract. Successful attempts cost 4
// shared accesses.
func (q *Packed) TryDequeue() (uint32, error) {
	pos := q.head.Read()
	reg := q.slots.At(int(pos % q.k))
	v, seq := unpackSlot(reg.Read())
	switch dif := int32(seq - uint32(2*pos)); {
	case dif == 1: // occupied and ready: claim it
		if !q.head.CAS(pos, pos+1) {
			return 0, ErrAborted
		}
		// The pre-claim read is the value: the slot word can only be
		// rewritten by this ticket's dequeuer (us) once seq = 2·pos+1
		// was observed.
		reg.Write(packSlot(0, uint32(2*(pos+q.k))))
		return v, nil
	case dif == 0: // no enqueue has published this ticket
		if t := q.tail.Read(); t == pos {
			return 0, ErrEmpty
		}
		return 0, ErrAborted
	default:
		return 0, ErrAborted
	}
}

// Len returns the number of elements; quiescent states only.
func (q *Packed) Len() int { return int(q.tail.Read() - q.head.Read()) }

// Snapshot returns the contents oldest-first; quiescent states only.
func (q *Packed) Snapshot() []uint32 {
	h, t := q.head.Read(), q.tail.Read()
	out := make([]uint32, 0, t-h)
	for pos := h; pos < t; pos++ {
		v, _ := unpackSlot(q.slots.At(int(pos % q.k)).Read())
		out = append(out, v)
	}
	return out
}

// Progress classifies the packed abortable queue.
func (q *Packed) Progress() core.Progress { return core.ObstructionFree }

var _ Weak[uint32] = (*Packed)(nil)
