package queue

import "errors"

// Sentinel results of the total queue operations (§1.1: a total
// operation never blocks; dequeue on an empty queue returns empty).
var (
	// ErrFull is returned by enqueue on a full queue.
	ErrFull = errors.New("queue: full")
	// ErrEmpty is returned by dequeue on an empty queue.
	ErrEmpty = errors.New("queue: empty")
	// ErrAborted is the paper's ⊥: the weak operation detected
	// interference and had no effect.
	ErrAborted = errors.New("queue: aborted by contention")
)

// Strong is the interface of total, never-aborting queues whose
// operations carry the calling process identity.
type Strong[T any] interface {
	Enqueue(pid int, v T) error
	Dequeue(pid int) (T, error)
}

// Weak is the interface of abortable queues: single attempts that may
// return ErrAborted, in which case the operation had no effect.
type Weak[T any] interface {
	TryEnqueue(v T) error
	TryDequeue() (T, error)
}
