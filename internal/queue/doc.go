// Package queue implements the bounded FIFO counterpart of the stack
// family, motivated by the paper's own example of non-interference:
// "enqueuing and dequeuing on a non-empty queue" do not conflict
// (§1.1), so a contention-sensitive queue should keep both ends
// lock-free except under genuine interference.
//
// The abortable queue follows the same recipe as the paper's Figure 1
// stack — CAS-able position registers plus per-slot sequence numbers
// against ABA (§2.2) — arranged as a ring:
//
//   - HEAD and TAIL are monotonically increasing tickets;
//   - slot j serves tickets pos with pos ≡ j (mod k); its sequence
//     register encodes the slot state: seq = pos means free for the
//     enqueuer holding ticket pos, seq = pos+1 means occupied and
//     ready for the dequeuer holding ticket pos.
//
// A weak operation makes one attempt: it claims its ticket with a
// single CAS and aborts (⊥) whenever it observes interference it
// cannot attribute (a mid-flight claim by another process). full and
// empty are reported only when a second read proves them — the
// analysis in abortable.go shows each such report is linearizable.
// A solo weak operation never aborts.
//
// On top of the weak queue the package assembles the same tower as the
// stack package: NonBlocking (Figure 2), Sensitive (Figure 3),
// LockBased (the traditional baseline) and MichaelScott (the classic
// unbounded lock-free comparator).
package queue
