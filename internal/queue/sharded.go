package queue

import (
	"sync/atomic"

	"repro/internal/combine"
	"repro/internal/core"
)

// defaultShards bounds the automatic shard count: beyond a handful of
// stripes the steal scan's cost outweighs the contention reduction.
const defaultShards = 8

// Sharded is a pid-striped queue: K independent flat-combining
// sub-queues, with each process enqueueing to its home shard
// (pid mod K) and dequeueing from its home shard first, stealing from
// the other shards when the home shard is empty — the same
// owner-first/steal-on-empty discipline as a work-stealing deque's
// Take/Steal split (see internal/deque and examples/worksteal).
//
// Striping relaxes the global order: each shard is individually FIFO
// and linearizable (with K = 1 the whole queue is), but once values
// spread across shards they may be dequeued out of enqueue order —
// values from different processes always, and even two values from
// one process when the first spilled to a non-home shard on full.
// ErrEmpty means a full scan of all shards found nothing — under
// concurrent enqueues this is best-effort, like any pool.
// Conservation still holds: every enqueued value is dequeued at most
// once and never lost.
type Sharded[T any] struct {
	shards []*Combining[T]
	steals atomic.Uint64
	spills atomic.Uint64
}

// NewSharded returns a sharded queue of total capacity exactly k for
// n processes, striped over the given number of shards; shards <= 0
// picks min(n, 8). k is split as evenly as possible (the first
// k mod shards shards hold one extra value).
func NewSharded[T any](k, n, shards int) *Sharded[T] {
	if k < 1 {
		panic("queue: capacity must be >= 1")
	}
	if n < 1 {
		panic("queue: process count must be >= 1")
	}
	if shards <= 0 {
		shards = n
		if shards > defaultShards {
			shards = defaultShards
		}
	}
	if shards > k {
		shards = k // every shard must hold at least one value
	}
	per, extra := k/shards, k%shards
	q := &Sharded[T]{shards: make([]*Combining[T], shards)}
	for i := range q.shards {
		size := per
		if i < extra {
			size++
		}
		q.shards[i] = NewCombining[T](size, n)
	}
	return q
}

// Shards returns the shard count K.
func (q *Sharded[T]) Shards() int { return len(q.shards) }

// Capacity returns the summed capacity of all shards.
func (q *Sharded[T]) Capacity() int {
	total := 0
	for _, s := range q.shards {
		total += s.Capacity()
	}
	return total
}

// Enqueue appends v to pid's home shard, spilling to the next shards
// in order when it is full. ErrFull means a full scan found every
// shard full — best-effort under concurrent dequeues, like ErrEmpty.
func (q *Sharded[T]) Enqueue(pid int, v T) error {
	k := len(q.shards)
	home := pid % k
	for i := 0; i < k; i++ {
		err := q.shards[(home+i)%k].Enqueue(pid, v)
		if err == nil {
			if i > 0 {
				q.spills.Add(1)
			}
			return nil
		}
		if err != ErrFull {
			return err
		}
	}
	return ErrFull
}

// Dequeue removes a value, preferring pid's home shard and stealing
// from the other shards when it is empty. It returns ErrEmpty only
// when a full scan found every shard empty.
func (q *Sharded[T]) Dequeue(pid int) (T, error) {
	k := len(q.shards)
	home := pid % k
	for i := 0; i < k; i++ {
		v, err := q.shards[(home+i)%k].Dequeue(pid)
		if err == nil {
			if i > 0 {
				q.steals.Add(1)
			}
			return v, nil
		}
		if err != ErrEmpty {
			return v, err
		}
	}
	var zero T
	return zero, ErrEmpty
}

// Steals returns how many dequeues were served by a non-home shard.
func (q *Sharded[T]) Steals() uint64 { return q.steals.Load() }

// Spills returns how many enqueues overflowed to a non-home shard.
func (q *Sharded[T]) Spills() uint64 { return q.spills.Load() }

// Len returns the summed length of all shards; quiescent states only.
func (q *Sharded[T]) Len() int {
	total := 0
	for _, s := range q.shards {
		total += s.Len()
	}
	return total
}

// Snapshot returns the elements of every shard concatenated in shard
// order, each shard oldest-first; quiescent states only. Cross-shard
// order is relaxed while the queue is live, so the concatenation is
// "the multiset of elements" rather than a FIFO history — exactly what
// the adaptive tier needs to rebuild a migration target.
func (q *Sharded[T]) Snapshot() []T {
	var out []T
	for _, s := range q.shards {
		out = append(out, s.Snapshot()...)
	}
	return out
}

// ShardStats returns shard i's combining counters.
func (q *Sharded[T]) ShardStats(i int) combine.Stats { return q.shards[i].Stats() }

// Progress reports StarvationFree, inherited from the flat-combining
// shards (each operation touches at most K of them, each
// starvation-free).
func (q *Sharded[T]) Progress() core.Progress { return core.StarvationFree }

var _ Strong[int] = (*Sharded[int])(nil)
