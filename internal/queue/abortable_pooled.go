package queue

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// AbortablePooled is the allocation-free backend of the abortable
// bounded queue. The boxed Abortable stores each enqueued value as a
// fresh GC-boxed record behind a memory.Ref (one allocation per
// enqueue); here the ring's k slots ARE the pool — each slot's value
// register is a plain memory.Word rewritten in place, and the slot's
// sequence register, which the protocol already maintains (2*pos free
// / 2*pos+1 occupied / 2*(pos+k) freed), is the §2.2 tag that makes
// the recycling safe: a value cell is only written by the enqueuer
// that claimed ticket pos via the TAIL CAS, and only read by the
// dequeuer that observed seq = 2*pos+1, so no stale process ever
// touches a recycled slot. The steady state allocates nothing per
// operation (experiment E17).
//
// Values are uint64 (they live in a Word register; compare the packed
// backend's uint32 restriction). The linearization points are
// identical to Abortable's — see that type's comment.
type AbortablePooled struct {
	head *memory.Word
	tail *memory.Word
	seqs *memory.Words
	vals *memory.Words
	k    uint64
}

// NewAbortablePooled returns a pooled abortable queue of capacity
// k >= 1.
func NewAbortablePooled(k int) *AbortablePooled {
	return NewAbortablePooledObserved(k, nil)
}

// NewAbortablePooledObserved returns a pooled abortable queue whose
// every shared access is reported to obs first (nil disables
// instrumentation). The access counts match the boxed backend's: a
// successful attempt costs 5 shared accesses.
func NewAbortablePooledObserved(k int, obs memory.Observer) *AbortablePooled {
	if k < 1 {
		panic("queue: capacity must be >= 1")
	}
	return &AbortablePooled{
		head: memory.NewWordObserved(0, obs),
		tail: memory.NewWordObserved(0, obs),
		// Slot j is initially free for ticket j (lap 0).
		seqs: memory.NewWordsInit(k, func(j int) uint64 { return 2 * uint64(j) }, obs),
		vals: memory.NewWordsObserved(k, 0, obs),
		k:    uint64(k),
	}
}

// Capacity returns k, the number of storable elements.
func (q *AbortablePooled) Capacity() int { return int(q.k) }

// TryEnqueue makes one attempt to append v; nil, ErrFull, or
// ErrAborted (no effect). Solo attempts never abort.
func (q *AbortablePooled) TryEnqueue(v uint64) error {
	pos := q.tail.Read()
	j := int(pos % q.k)
	seq := q.seqs.At(j).Read()
	switch {
	case seq == 2*pos: // slot free for this ticket: claim it
		if !q.tail.CAS(pos, pos+1) {
			return ErrAborted // another enqueuer claimed first
		}
		q.vals.At(j).Write(v)
		q.seqs.At(j).Write(2*pos + 1) // publish
		return nil
	case seq < 2*pos: // previous-lap value not yet fully dequeued
		if h := q.head.Read(); h+q.k == pos {
			return ErrFull // proven: tail-head = k (see Abortable)
		}
		return ErrAborted // a dequeuer is mid-flight
	default: // seq > 2*pos: our tail read is stale
		return ErrAborted
	}
}

// TryDequeue makes one attempt to remove the oldest value; the value,
// ErrEmpty, or ErrAborted (no effect). Solo attempts never abort.
func (q *AbortablePooled) TryDequeue() (uint64, error) {
	pos := q.head.Read()
	j := int(pos % q.k)
	seq := q.seqs.At(j).Read()
	switch {
	case seq == 2*pos+1: // occupied and ready: claim it
		if !q.head.CAS(pos, pos+1) {
			return 0, ErrAborted // another dequeuer claimed first
		}
		v := q.vals.At(j).Read()
		q.seqs.At(j).Write(2 * (pos + q.k)) // free the slot for the next lap
		return v, nil
	case seq == 2*pos: // no enqueue has published ticket pos
		if t := q.tail.Read(); t == pos {
			return 0, ErrEmpty // proven: head = tail (see Abortable)
		}
		return 0, ErrAborted // an enqueuer is mid-flight
	default: // stale head read or mid-flight previous-lap dequeue
		return 0, ErrAborted
	}
}

// Len returns the number of elements; quiescent states only.
func (q *AbortablePooled) Len() int { return int(q.tail.Read() - q.head.Read()) }

// Snapshot returns the contents oldest-first; quiescent states only.
func (q *AbortablePooled) Snapshot() []uint64 {
	h, t := q.head.Read(), q.tail.Read()
	out := make([]uint64, 0, t-h)
	for pos := h; pos < t; pos++ {
		out = append(out, q.vals.At(int(pos%q.k)).Read())
	}
	return out
}

// Progress classifies the pooled abortable queue (see
// Abortable.Progress).
func (q *AbortablePooled) Progress() core.Progress { return core.ObstructionFree }

var _ Weak[uint64] = (*AbortablePooled)(nil)
