package queue

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lock"
)

// stressN scales a stress-test iteration budget: the full budget by
// default, a twentieth (min 100) under -short so `go test -short`
// finishes fast (the CI race job runs short; full budgets remain the
// local default).
func stressN(full int) int {
	if testing.Short() {
		if full /= 20; full < 100 {
			full = 100
		}
	}
	return full
}

// qconserved drives producers/consumers and verifies multiset
// conservation plus per-producer FIFO order of the dequeued values.
func qconserved(t *testing.T, producers, consumers, perProducer int,
	enq func(pid int, v uint64) error,
	deq func(pid int) (uint64, error),
) {
	t.Helper()
	total := producers * perProducer
	var consumed atomic.Int64
	got := make([][]uint64, consumers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint64(pid)<<32 | uint64(i)
				for {
					err := enq(pid, v)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrFull) {
						t.Errorf("enqueue = %v", err)
						return
					}
					runtime.Gosched() // full: let a dequeuer run
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			pid := producers + cid
			for consumed.Load() < int64(total) {
				v, err := deq(pid)
				if err != nil {
					if !errors.Is(err, ErrEmpty) {
						t.Errorf("dequeue = %v", err)
						return
					}
					runtime.Gosched() // empty: let a producer run
					continue
				}
				got[cid] = append(got[cid], v)
				consumed.Add(1)
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[uint64]int)
	for cid := range got {
		// Per-consumer, values from one producer must arrive in
		// enqueue order (FIFO restricted to a subsequence).
		last := make(map[uint64]uint64)
		for _, v := range got[cid] {
			seen[v]++
			prod, idx := v>>32, v&0xffffffff
			if prev, ok := last[prod]; ok && idx <= prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", cid, prod, idx, prev)
			}
			last[prod] = idx
		}
	}
	if len(seen) != total {
		t.Fatalf("value set size = %d, want %d (lost values)", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times (duplicated)", v, n)
		}
	}
}

func TestNonBlockingQueueConserves(t *testing.T) {
	q := NewNonBlocking[uint64](32)
	qconserved(t, 4, 4, stressN(3000),
		func(_ int, v uint64) error { return q.Enqueue(v) },
		func(_ int) (uint64, error) { return q.Dequeue() },
	)
}

func TestSensitiveQueueConserves(t *testing.T) {
	const producers, consumers = 4, 4
	q := NewSensitive[uint64](32, producers+consumers)
	qconserved(t, producers, consumers, stressN(2500), q.Enqueue, q.Dequeue)
	if st := q.Guard().Stats(); st.Fast+st.Slow == 0 {
		t.Fatal("guard saw no operations")
	}
}

func TestSensitiveQueueTicketLockConserves(t *testing.T) {
	q := NewSensitiveFrom[uint64](NewAbortable[uint64](16), lock.IgnorePid(lock.NewTicket()))
	qconserved(t, 3, 3, stressN(2000), q.Enqueue, q.Dequeue)
}

func TestLockBasedQueueConserves(t *testing.T) {
	const producers, consumers = 4, 4
	q := NewLockBasedWith[uint64](32, lock.NewRoundRobin(lock.NewTAS(), producers+consumers))
	qconserved(t, producers, consumers, stressN(2500), q.Enqueue, q.Dequeue)
}

func TestMichaelScottConserves(t *testing.T) {
	q := NewMichaelScott[uint64]()
	qconserved(t, 4, 4, stressN(3000),
		func(_ int, v uint64) error { q.Enqueue(v); return nil },
		func(_ int) (uint64, error) { return q.Dequeue() },
	)
}

func TestAbortableSingleSlotQueueConcurrent(t *testing.T) {
	// Capacity 1 maximizes interference on a single slot.
	q := NewNonBlocking[uint64](1)
	qconserved(t, 2, 2, stressN(2000),
		func(_ int, v uint64) error { return q.Enqueue(v) },
		func(_ int) (uint64, error) { return q.Dequeue() },
	)
}

func TestNonInterferenceEnqDeqDisjointEnds(t *testing.T) {
	// The paper's §1.1 motivation: enqueue and dequeue on a non-empty,
	// non-full queue touch disjoint ends. One enqueuer and one
	// dequeuer are paced to stay in disjoint regions of the ring (the
	// dequeuer holds off while the backlog is small, the enqueuer
	// while it is large); their weak operations then touch no common
	// register and should essentially never abort. We assert a loose
	// bound (< 1% aborts) rather than zero because the pacing reads
	// are themselves racy.
	q := NewAbortable[uint64](1024)
	for i := uint64(0); i < 512; i++ {
		if err := q.TryEnqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	opsPerSide := stressN(100000)
	var enqAborts, deqAborts atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		done := 0
		for done < opsPerSide {
			if q.Len() > 896 {
				continue // let the dequeuer catch up
			}
			if err := q.TryEnqueue(uint64(done)); errors.Is(err, ErrAborted) {
				enqAborts.Add(1)
			} else {
				done++
			}
		}
	}()
	go func() {
		defer wg.Done()
		done := 0
		for done < opsPerSide {
			if q.Len() < 128 {
				continue // stay away from the enqueue frontier
			}
			if _, err := q.TryDequeue(); errors.Is(err, ErrAborted) {
				deqAborts.Add(1)
			} else {
				done++
			}
		}
	}()
	wg.Wait()
	if a := enqAborts.Load(); a > int64(opsPerSide/100) {
		t.Fatalf("enqueue aborted %d/%d times against a disjoint dequeuer", a, opsPerSide)
	}
	if a := deqAborts.Load(); a > int64(opsPerSide/100) {
		t.Fatalf("dequeue aborted %d/%d times against a disjoint enqueuer", a, opsPerSide)
	}
}
