package queue

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// slot is one ring entry: a sequence register encoding the slot state
// and a boxed value register. For slot j and ticket pos (pos ≡ j mod k)
// the sequence register takes the values
//
//	2*pos      — free, reserved for the enqueuer holding ticket pos;
//	2*pos+1    — occupied, ready for the dequeuer holding ticket pos;
//	2*(pos+k)  — freed by that dequeuer (= the next lap's "free").
//
// The doubling keeps "occupied for ticket pos" (odd) distinct from
// "free for ticket pos+k" (even) even when k = 1, where pos+1 and
// pos+k would otherwise coincide and let a second enqueuer overwrite
// an element that was never dequeued.
type slot[T any] struct {
	seq *memory.Word
	val *memory.Ref[T]
}

// Abortable is the abortable bounded FIFO queue: the queue-shaped
// sibling of the paper's Figure 1 stack. TryEnqueue/TryDequeue make a
// single attempt and abort on interference; solo attempts never abort.
//
// Linearization points (mirroring §3's presentation for the stack):
//
//   - a successful enqueue linearizes at its TAIL CAS (ticket order is
//     claim order, and a value only becomes visible after it);
//   - a successful dequeue linearizes at its HEAD CAS;
//   - an empty report linearizes at its TAIL read: it is issued only
//     when head = pos was read, slot seq = pos (no enqueue published),
//     and then tail = pos — since tail is monotonic and any claim of
//     ticket pos would have advanced it, head = tail = pos held at
//     that read, so the queue was empty then;
//   - a full report linearizes at its HEAD read: it is issued only
//     when tail = pos was read, the slot still carried a previous-lap
//     value, and then head = pos-k — tail cannot have passed pos
//     (the slot's sequence only reaches pos when the ticket pos-k
//     dequeue publishes, which happens after its HEAD CAS, yet head
//     still equals pos-k), so tail-head = k held at that read.
type Abortable[T any] struct {
	head  *memory.Word
	tail  *memory.Word
	slots []slot[T]
	k     uint64
}

// NewAbortable returns an abortable queue of capacity k >= 1.
func NewAbortable[T any](k int) *Abortable[T] {
	return NewAbortableObserved[T](k, nil)
}

// NewAbortableObserved returns an abortable queue whose every shared
// access is reported to obs first (nil disables instrumentation).
func NewAbortableObserved[T any](k int, obs memory.Observer) *Abortable[T] {
	if k < 1 {
		panic("queue: capacity must be >= 1")
	}
	q := &Abortable[T]{
		head:  memory.NewWordObserved(0, obs),
		tail:  memory.NewWordObserved(0, obs),
		slots: make([]slot[T], k),
		k:     uint64(k),
	}
	for j := range q.slots {
		// Slot j is initially free for ticket j (lap 0).
		q.slots[j] = slot[T]{
			seq: memory.NewWordObserved(2*uint64(j), obs),
			val: memory.NewRefObserved[T](nil, obs),
		}
	}
	return q
}

// Capacity returns k, the number of storable elements.
func (q *Abortable[T]) Capacity() int { return int(q.k) }

// TryEnqueue makes one attempt to append v. It returns nil on success,
// ErrFull if the queue is provably full, and ErrAborted on
// interference (no effect). Solo attempts never abort.
//
// A successful attempt costs 5 shared accesses (read TAIL, read slot
// seq, CAS TAIL, write value, publish seq) — the same count as the
// stack's weak operations, which is what makes the E9 comparison to
// Theorem 1 meaningful.
func (q *Abortable[T]) TryEnqueue(v T) error {
	pos := q.tail.Read()
	s := &q.slots[pos%q.k]
	seq := s.seq.Read()
	switch {
	case seq == 2*pos: // slot free for this ticket: claim it
		if !q.tail.CAS(pos, pos+1) {
			return ErrAborted // another enqueuer claimed first
		}
		s.val.Write(&v)
		s.seq.Write(2*pos + 1) // publish
		return nil
	case seq < 2*pos: // previous-lap value not yet fully dequeued
		if h := q.head.Read(); h+q.k == pos {
			return ErrFull // proven: tail-head = k (see type comment)
		}
		return ErrAborted // a dequeuer is mid-flight
	default: // seq > 2*pos: our tail read is stale
		return ErrAborted
	}
}

// TryDequeue makes one attempt to remove the oldest value. It returns
// the value on success, ErrEmpty if the queue is provably empty, and
// ErrAborted on interference (no effect). Solo attempts never abort.
func (q *Abortable[T]) TryDequeue() (T, error) {
	var zero T
	pos := q.head.Read()
	s := &q.slots[pos%q.k]
	seq := s.seq.Read()
	switch {
	case seq == 2*pos+1: // occupied and ready: claim it
		if !q.head.CAS(pos, pos+1) {
			return zero, ErrAborted // another dequeuer claimed first
		}
		v := s.val.Read()
		s.seq.Write(2 * (pos + q.k)) // free the slot for the next lap
		return *v, nil
	case seq == 2*pos: // no enqueue has published ticket pos
		if t := q.tail.Read(); t == pos {
			return zero, ErrEmpty // proven: head = tail (see type comment)
		}
		return zero, ErrAborted // an enqueuer is mid-flight
	default: // stale head read or mid-flight previous-lap dequeue
		return zero, ErrAborted
	}
}

// Len returns the number of elements; quiescent states only.
func (q *Abortable[T]) Len() int { return int(q.tail.Read() - q.head.Read()) }

// Snapshot returns the contents oldest-first; quiescent states only.
func (q *Abortable[T]) Snapshot() []T {
	h, t := q.head.Read(), q.tail.Read()
	out := make([]T, 0, t-h)
	for pos := h; pos < t; pos++ {
		out = append(out, *q.slots[pos%q.k].val.Read())
	}
	return out
}

// Progress classifies the abortable queue (see the stack's
// Abortable.Progress: abortable objects sit on the obstruction-free
// rung of the paper's hierarchy).
func (q *Abortable[T]) Progress() core.Progress { return core.ObstructionFree }

var _ Weak[int] = (*Abortable[int])(nil)
