package queue

import (
	"errors"
	"testing"
)

func TestCombiningQueueMatchesSpecSolo(t *testing.T) {
	const k = 4
	q := NewCombining[uint32](k, 1)
	// Fill past capacity, drain past empty, interleave.
	tape := []byte{
		0, 1, 0, 2, 0, 3, 0, 4, 0, 5, // enqueues 1-5 (5th hits full)
		1, 0, 1, 0, 1, 0, 1, 0, 1, 0, // dequeues past empty
		0, 7, 1, 0, 0, 8, 0, 9, 1, 0,
	}
	interpretQueueOps(t, tape, k,
		func(v uint32) error { return q.Enqueue(0, v) },
		func() (uint32, error) { return q.Dequeue(0) })
	if st := q.Stats(); st.Published != 0 {
		t.Fatalf("solo run published %d requests", st.Published)
	}
}

func TestCombiningQueueConserves(t *testing.T) {
	producers, consumers, perProducer := 4, 4, stressN(3000)
	q := NewCombining[uint64](64, producers+consumers)
	qconserved(t, producers, consumers, perProducer, q.Enqueue, q.Dequeue)
	st := q.Stats()
	if st.Fast+st.Published == 0 {
		t.Fatal("core saw no operations")
	}
	if st.Served != st.Published {
		t.Fatalf("Served = %d, Published = %d", st.Served, st.Published)
	}
}

func TestCombiningQueueFastPathDominatesWhenSolo(t *testing.T) {
	q := NewCombining[int](16, 4)
	for i := 0; i < 1000; i++ {
		if err := q.Enqueue(0, i); err != nil && !errors.Is(err, ErrFull) {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, err := q.Dequeue(0); err != nil && !errors.Is(err, ErrEmpty) {
				t.Fatal(err)
			}
		}
	}
	if st := q.Stats(); st.Published != 0 {
		t.Fatalf("solo run took the publication path %d times", st.Published)
	}
}

func TestCombiningQueueCapacityAndLen(t *testing.T) {
	q := NewCombining[int](3, 2)
	if got := q.Capacity(); got != 3 {
		t.Fatalf("Capacity = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := q.Enqueue(0, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue on full = %v, want ErrFull", err)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}
