package queue

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

func TestMichaelScottPooledFIFOSolo(t *testing.T) {
	q := NewMichaelScottPooled(1)
	ref := spec.NewQueue[uint64](1 << 30)
	for i := 0; i < 5000; i++ {
		if i%3 != 1 {
			v := uint64(i)
			q.Enqueue(0, v)
			ref.Enqueue(v)
		} else {
			v, err := q.Dequeue(0)
			want, ok := ref.Dequeue()
			if ok {
				if err != nil || v != want {
					t.Fatalf("op %d: dequeue = (%d, %v), spec has %d", i, v, err, want)
				}
			} else if !errors.Is(err, ErrEmpty) {
				t.Fatalf("op %d: dequeue = (%d, %v), spec reports empty", i, v, err)
			}
		}
	}
	if st := q.PoolStats(); st.Reuses == 0 {
		t.Fatalf("solo churn never recycled a node: %+v", st)
	}
}

func TestAbortablePooledMatchesBoxedSolo(t *testing.T) {
	const k = 3
	boxed := NewAbortable[uint64](k)
	pooled := NewAbortablePooled(k)
	for i := 0; i < 4000; i++ {
		if i%5 < 3 {
			v := uint64(i)
			be, pe := boxed.TryEnqueue(v), pooled.TryEnqueue(v)
			if !errors.Is(pe, be) {
				t.Fatalf("op %d: enqueue disagreement: boxed=%v pooled=%v", i, be, pe)
			}
		} else {
			bv, be := boxed.TryDequeue()
			pv, pe := pooled.TryDequeue()
			if (be == nil) != (pe == nil) || (be == nil && bv != pv) {
				t.Fatalf("op %d: dequeue disagreement: (%d,%v) vs (%d,%v)", i, bv, be, pv, pe)
			}
		}
	}
}

func TestMichaelScottPooledConserves(t *testing.T) {
	q := NewMichaelScottPooled(8)
	qconserved(t, 4, 4, stressN(3000),
		func(pid int, v uint64) error { q.Enqueue(pid, v); return nil },
		func(pid int) (uint64, error) { return q.Dequeue(pid) },
	)
}

// TestMichaelScottPooledForcedReuseABA keeps the queue near-empty —
// every worker dequeues right after it enqueues, so the retired dummy
// is recycled on almost every operation: the §2.2 window at maximum
// pressure. Conservation proves the tags held (a single wrongly
// successful stale CAS would duplicate or lose a value).
func TestMichaelScottPooledForcedReuseABA(t *testing.T) {
	procs, perProc := 4, stressN(5000)
	q := NewMichaelScottPooled(procs)
	var wg sync.WaitGroup
	popped := make([][]uint64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				q.Enqueue(pid, uint64(pid)<<32|uint64(i))
				if v, err := q.Dequeue(pid); err == nil {
					popped[pid] = append(popped[pid], v)
				}
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for {
		v, err := q.Dequeue(0)
		if err != nil {
			break
		}
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("value set size = %d, want %d (lost values)", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x observed %d times (duplicated)", v, n)
		}
	}
	st := q.PoolStats()
	if st.Reuses < st.Allocs {
		t.Fatalf("reuse did not dominate: %+v", st)
	}
	if st.Drops != 0 {
		t.Fatalf("pool dropped %d handles (overflow too small)", st.Drops)
	}
}

func TestAbortablePooledConserves(t *testing.T) {
	q := NewAbortablePooled(32)
	qconserved(t, 4, 4, stressN(2000),
		func(_ int, v uint64) error {
			return core.Retry(nil, func() (error, bool) {
				err := q.TryEnqueue(v)
				return err, !errors.Is(err, ErrAborted)
			})
		},
		func(_ int) (uint64, error) {
			type res struct {
				v   uint64
				err error
			}
			r := core.Retry(nil, func() (res, bool) {
				v, err := q.TryDequeue()
				return res{v, err}, !errors.Is(err, ErrAborted)
			})
			return r.v, r.err
		},
	)
}

func TestCombiningPooledQueueConserves(t *testing.T) {
	producers, consumers, perProducer := 4, 4, stressN(2500)
	q := NewCombiningPooled(32, producers+consumers)
	qconserved(t, producers, consumers, perProducer, q.Enqueue, q.Dequeue)
}

func TestMichaelScottPooledLen(t *testing.T) {
	q := NewMichaelScottPooled(1)
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(0, i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(0); i < 5; i++ {
		v, err := q.Dequeue(0)
		if err != nil || v != i {
			t.Fatalf("dequeue %d = (%d, %v)", i, v, err)
		}
	}
	if _, err := q.Dequeue(0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
}

func BenchmarkMichaelScottBoxedSolo(b *testing.B) {
	b.ReportAllocs()
	q := NewMichaelScott[uint64]()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
		_, _ = q.Dequeue()
	}
}

func BenchmarkMichaelScottPooledSolo(b *testing.B) {
	b.ReportAllocs()
	q := NewMichaelScottPooled(1)
	for i := 0; i < b.N; i++ {
		q.Enqueue(0, uint64(i))
		_, _ = q.Dequeue(0)
	}
}

func BenchmarkAbortableBoxedQueueSolo(b *testing.B) {
	b.ReportAllocs()
	q := NewAbortable[uint64](16)
	for i := 0; i < b.N; i++ {
		_ = q.TryEnqueue(uint64(i))
		_, _ = q.TryDequeue()
	}
}

func BenchmarkAbortablePooledQueueSolo(b *testing.B) {
	b.ReportAllocs()
	q := NewAbortablePooled(16)
	for i := 0; i < b.N; i++ {
		_ = q.TryEnqueue(uint64(i))
		_, _ = q.TryDequeue()
	}
}
