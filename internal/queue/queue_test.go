package queue

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/memory"
)

func TestAbortableFIFOSolo(t *testing.T) {
	q := NewAbortable[int](8)
	for i := 1; i <= 5; i++ {
		if err := q.TryEnqueue(i); err != nil {
			t.Fatalf("TryEnqueue(%d) = %v", i, err)
		}
	}
	for want := 1; want <= 5; want++ {
		v, err := q.TryDequeue()
		if err != nil || v != want {
			t.Fatalf("TryDequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.TryDequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("dequeue on empty = %v, want ErrEmpty", err)
	}
}

func TestAbortableFull(t *testing.T) {
	q := NewAbortable[int](3)
	for i := 0; i < 3; i++ {
		if err := q.TryEnqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.TryEnqueue(99); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue on full = %v, want ErrFull", err)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestAbortableWrapsAround(t *testing.T) {
	// Exercise several laps around a tiny ring.
	q := NewAbortable[int](2)
	for lap := 0; lap < 1000; lap++ {
		if err := q.TryEnqueue(2 * lap); err != nil {
			t.Fatalf("lap %d: %v", lap, err)
		}
		if err := q.TryEnqueue(2*lap + 1); err != nil {
			t.Fatalf("lap %d: %v", lap, err)
		}
		if v, err := q.TryDequeue(); err != nil || v != 2*lap {
			t.Fatalf("lap %d: dequeue = (%d, %v)", lap, v, err)
		}
		if v, err := q.TryDequeue(); err != nil || v != 2*lap+1 {
			t.Fatalf("lap %d: dequeue = (%d, %v)", lap, v, err)
		}
	}
}

func TestAbortableSoloNeverAborts(t *testing.T) {
	q := NewAbortable[int](16)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			if err := q.TryEnqueue(i); errors.Is(err, ErrAborted) {
				t.Fatalf("solo TryEnqueue aborted at op %d", i)
			}
		} else {
			if _, err := q.TryDequeue(); errors.Is(err, ErrAborted) {
				t.Fatalf("solo TryDequeue aborted at op %d", i)
			}
		}
	}
}

func TestAbortableDifferentialVsReference(t *testing.T) {
	q := NewAbortable[uint32](7)
	rng := rand.New(rand.NewSource(9))
	var ref []uint32
	for i := 0; i < 50000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			err := q.TryEnqueue(v)
			switch {
			case len(ref) == q.Capacity():
				if !errors.Is(err, ErrFull) {
					t.Fatalf("op %d: enqueue on full = %v", i, err)
				}
			case err != nil:
				t.Fatalf("op %d: enqueue = %v", i, err)
			default:
				ref = append(ref, v)
			}
		} else {
			v, err := q.TryDequeue()
			if len(ref) == 0 {
				if !errors.Is(err, ErrEmpty) {
					t.Fatalf("op %d: dequeue on empty = %v", i, err)
				}
				continue
			}
			if err != nil || v != ref[0] {
				t.Fatalf("op %d: dequeue = (%d, %v), want (%d, nil)", i, v, err, ref[0])
			}
			ref = ref[1:]
		}
	}
}

func TestAbortableSnapshot(t *testing.T) {
	q := NewAbortable[int](4)
	for _, v := range []int{10, 20, 30} {
		if err := q.TryEnqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.TryDequeue(); err != nil {
		t.Fatal(err)
	}
	got := q.Snapshot()
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("Snapshot = %v, want [20 30]", got)
	}
}

func TestAbortableAccessCountSolo(t *testing.T) {
	// The queue's weak operations cost the same 5 shared accesses as
	// the stack's (E9's symmetry with Theorem 1).
	var st memory.Stats
	q := NewAbortableObserved[int](8, &st)
	if err := q.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 5 {
		t.Fatalf("TryEnqueue accesses = %d (%+v), want 5", got, st.Snapshot())
	}
	st.Reset()
	if _, err := q.TryDequeue(); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 5 {
		t.Fatalf("TryDequeue accesses = %d (%+v), want 5", got, st.Snapshot())
	}
	st.Reset()
	if _, err := q.TryDequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected empty")
	}
	if got := st.Total(); got != 3 { // read HEAD, read seq, read TAIL
		t.Fatalf("empty dequeue accesses = %d, want 3", got)
	}
}

func TestAbortablePropertyRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		q := NewAbortable[uint16](len(vals))
		for _, v := range vals {
			if q.TryEnqueue(v) != nil {
				return false
			}
		}
		for _, want := range vals {
			v, err := q.TryDequeue()
			if err != nil || v != want {
				return false
			}
		}
		_, err := q.TryDequeue()
		return errors.Is(err, ErrEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMichaelScottFIFOSolo(t *testing.T) {
	q := NewMichaelScott[int]()
	for i := 1; i <= 100; i++ {
		q.Enqueue(i)
	}
	for want := 1; want <= 100; want++ {
		v, err := q.Dequeue()
		if err != nil || v != want {
			t.Fatalf("Dequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
	if q.Len() != 0 {
		t.Fatal("Len != 0 after drain")
	}
}

func TestLockBasedFIFO(t *testing.T) {
	q := NewLockBased[int](3)
	if q.Capacity() != 3 {
		t.Fatal("capacity")
	}
	for i := 1; i <= 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(0, 4); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue on full = %v", err)
	}
	for want := 1; want <= 3; want++ {
		v, err := q.Dequeue(0)
		if err != nil || v != want {
			t.Fatalf("Dequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.Dequeue(0); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
}

func TestNonBlockingQueueSolo(t *testing.T) {
	q := NewNonBlocking[int](4)
	if err := q.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	v, err := q.Dequeue()
	if err != nil || v != 1 {
		t.Fatalf("Dequeue = (%d, %v)", v, err)
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatal("expected ErrEmpty")
	}
}

func TestSensitiveQueueSolo(t *testing.T) {
	q := NewSensitive[int](4, 2)
	if err := q.Enqueue(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := q.Dequeue(0); err != nil || v != 1 {
		t.Fatalf("Dequeue = (%d, %v)", v, err)
	}
	if v, err := q.Dequeue(1); err != nil || v != 2 {
		t.Fatalf("Dequeue = (%d, %v)", v, err)
	}
	if st := q.Guard().Stats(); st.Slow != 0 {
		t.Fatalf("solo run took the slow path %d times", st.Slow)
	}
}

func TestQueueProgressLabels(t *testing.T) {
	if NewAbortable[int](1).Progress() != core.ObstructionFree {
		t.Error("Abortable label")
	}
	if NewNonBlocking[int](1).Progress() != core.NonBlocking {
		t.Error("NonBlocking label")
	}
	if NewSensitive[int](1, 2).Progress() != core.StarvationFree {
		t.Error("Sensitive label")
	}
	if NewMichaelScott[int]().Progress() != core.NonBlocking {
		t.Error("MichaelScott label")
	}
	if NewLockBased[int](1).Progress() != core.StarvationFree {
		t.Error("LockBased label")
	}
}

func TestQueueConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"abortable": func() { NewAbortable[int](0) },
		"lockbased": func() { NewLockBased[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with k=0 did not panic", name)
				}
			}()
			f()
		}()
	}
}
