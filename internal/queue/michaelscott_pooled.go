package queue

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// mspNode is a pooled Michael-Scott link. value is atomic because a
// stale dequeuer may overlap a recycler rewriting the node (the read
// is discarded when its head CAS fails, but must be race-free). next
// holds a packed memory.TaggedVal whose tag is NEVER reset: it
// accumulates across the node's lives, which is exactly the original
// algorithm's counted-pointer discipline (Michael & Scott, PODC'96)
// and what makes a free-list node safe to reuse.
type mspNode struct {
	value atomic.Uint64
	next  atomic.Uint64
}

// MichaelScottPooled is the Michael-Scott queue with the original
// paper's free-list memory management restored: nodes are recycled
// through a memory.Pool and head/tail are tagged 〈handle, seqnb〉
// registers. The boxed MichaelScott leans on the GC to rule out
// pointer ABA and allocates a node per enqueue; here reuse makes ABA
// real (the retired dummy can come back as the tail while a slow
// dequeue still holds its old handle) and the §2.2 tags — on head,
// tail, and every node's next field — are load-bearing. The steady
// state allocates nothing per operation (experiment E17).
//
// Values are uint64; operations take the calling pid for the pool's
// per-pid free lists.
type MichaelScottPooled struct {
	head *memory.TaggedRef[mspNode] // dummy; head.next is the front
	tail *memory.TaggedRef[mspNode] // last or second-to-last node
	pool *memory.Pool[mspNode]
}

// NewMichaelScottPooled returns an empty pooled queue for procs
// processes (pids in [0, procs)).
func NewMichaelScottPooled(procs int) *MichaelScottPooled {
	return NewMichaelScottPooledObserved(procs, nil)
}

// NewMichaelScottPooledObserved returns an instrumented pooled queue:
// head and tail accesses are reported to obs (nil disables
// instrumentation). Node next-field traffic and pool traffic are not
// observed (they are not registers of the paper's model).
func NewMichaelScottPooledObserved(procs int, obs memory.Observer) *MichaelScottPooled {
	pool := memory.NewPool[mspNode](procs, nil)
	dummy := pool.Get(0)
	init := memory.PackTagged(dummy, 0)
	return &MichaelScottPooled{
		head: memory.NewTaggedRefObserved(pool, init, obs),
		tail: memory.NewTaggedRefObserved(pool, init, obs),
		pool: pool,
	}
}

// Enqueue appends v on behalf of pid. It always succeeds (the queue is
// unbounded) and is lock-free. The shape is MS'96 with counted
// pointers: the consistency re-read of tail is REQUIRED here — unlike
// the boxed variant, a stale tail's node may have been recycled, and
// only a tail unchanged across the next-read proves the next word
// belonged to this life of the node.
func (q *MichaelScottPooled) Enqueue(pid int, v uint64) {
	h := q.pool.Get(pid)
	n := q.pool.At(h)
	n.value.Store(v)
	// Reset next to nil, advancing its accumulated tag. A node is only
	// freed after its next was CASed non-nil (the dequeue that retired
	// it moved head over that successor), so every stale 〈nil, tag〉 a
	// slow enqueuer may still hold is strictly older than this word and
	// its CAS on it must fail.
	old := memory.TaggedVal(n.next.Load())
	n.next.Store(uint64(old.Next(memory.NilHandle)))
	//contlint:allow retryloop E17 zero-alloc hot path: core.Retry's closure would escape per call; the bare helping loop keeps Enqueue allocation-free
	for {
		t := q.tail.Read()
		tn := q.pool.At(t.Handle())
		next := memory.TaggedVal(tn.next.Load())
		if q.tail.Read() != t {
			continue // tail moved: next may be another life's word
		}
		if next.Handle() == memory.NilHandle {
			if tn.next.CompareAndSwap(uint64(next), uint64(next.Next(h))) {
				q.tail.CAS(t, t.Next(h)) // swing; failure means someone helped
				return
			}
		} else {
			q.tail.CAS(t, t.Next(next.Handle())) // help a lagging enqueue
		}
	}
}

// Dequeue removes the oldest value on behalf of pid; it returns the
// value or ErrEmpty. The retired dummy goes back to pid's free list.
func (q *MichaelScottPooled) Dequeue(pid int) (uint64, error) {
	//contlint:allow retryloop E17 zero-alloc hot path: core.Retry's closure would escape per call; the bare helping loop keeps Dequeue allocation-free
	for {
		hd := q.head.Read()
		t := q.tail.Read()
		hn := q.pool.At(hd.Handle())
		next := memory.TaggedVal(hn.next.Load())
		if q.head.Read() != hd {
			continue // head moved: next may be another life's word
		}
		if hd.Handle() == t.Handle() {
			if next.Handle() == memory.NilHandle {
				return 0, ErrEmpty
			}
			q.tail.CAS(t, t.Next(next.Handle())) // help a lagging enqueue
			continue
		}
		if next.Handle() == memory.NilHandle {
			continue // stale tail read; retry
		}
		v := q.pool.At(next.Handle()).value.Load()
		if q.head.CAS(hd, hd.Next(next.Handle())) {
			q.pool.Put(pid, hd.Handle())
			return v, nil
		}
	}
}

// Len counts the elements; quiescent states only (O(n) walk).
func (q *MichaelScottPooled) Len() int {
	n := 0
	h := memory.TaggedVal(q.pool.At(q.head.Read().Handle()).next.Load()).Handle()
	for h != memory.NilHandle {
		n++
		h = memory.TaggedVal(q.pool.At(h).next.Load()).Handle()
	}
	return n
}

// PoolStats exposes the node pool's recycling counters.
func (q *MichaelScottPooled) PoolStats() memory.PoolStats { return q.pool.Stats() }

// Progress reports NonBlocking (lock-freedom).
func (q *MichaelScottPooled) Progress() core.Progress { return core.NonBlocking }
