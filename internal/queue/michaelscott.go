package queue

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// msNode is a Michael-Scott queue link. The value of the dummy node is
// never observed.
type msNode[T any] struct {
	value T
	next  *memory.Ref[msNode[T]]
}

// MichaelScott is the classic unbounded lock-free FIFO queue (Michael
// & Scott, PODC'96), the standard non-blocking comparator for the E9
// experiment. In a garbage-collected language the pointer CASes cannot
// suffer ABA, so the original's counted pointers are unnecessary —
// the same simplification the paper's §2.2 tags would otherwise
// provide.
type MichaelScott[T any] struct {
	head *memory.Ref[msNode[T]] // points at the dummy; head.next is the front
	tail *memory.Ref[msNode[T]] // points at the last or second-to-last node
}

// NewMichaelScott returns an empty queue.
func NewMichaelScott[T any]() *MichaelScott[T] {
	return NewMichaelScottObserved[T](nil)
}

// NewMichaelScottObserved returns an instrumented queue (nil obs
// disables instrumentation).
func NewMichaelScottObserved[T any](obs memory.Observer) *MichaelScott[T] {
	dummy := &msNode[T]{next: memory.NewRefObserved[msNode[T]](nil, obs)}
	return &MichaelScott[T]{
		head: memory.NewRefObserved(dummy, obs),
		tail: memory.NewRefObserved(dummy, obs),
	}
}

// Enqueue appends v. It always succeeds (the queue is unbounded) and
// is lock-free: a failed CAS implies another enqueue succeeded.
func (q *MichaelScott[T]) Enqueue(v T) {
	n := &msNode[T]{value: v, next: memory.NewRef[msNode[T]](nil)}
	core.Retry(nil, func() (struct{}, bool) {
		t := q.tail.Read()
		next := t.next.Read()
		if next != nil {
			q.tail.CAS(t, next) // help a lagging enqueue
			return struct{}{}, false
		}
		if t.next.CAS(nil, n) {
			q.tail.CAS(t, n) // swing tail; failure means someone helped
			return struct{}{}, true
		}
		return struct{}{}, false
	})
}

// Dequeue removes the oldest value; it returns the value or ErrEmpty.
func (q *MichaelScott[T]) Dequeue() (T, error) {
	type res struct {
		v   T
		err error
	}
	r := core.Retry(nil, func() (res, bool) {
		h := q.head.Read()
		t := q.tail.Read()
		next := h.next.Read()
		if h == t {
			if next == nil {
				return res{err: ErrEmpty}, true
			}
			q.tail.CAS(t, next) // help a lagging enqueue
			return res{}, false
		}
		if next == nil {
			// head moved between the reads; retry
			return res{}, false
		}
		v := next.value
		if q.head.CAS(h, next) {
			return res{v: v}, true
		}
		return res{}, false
	})
	return r.v, r.err
}

// Len counts the elements; quiescent states only (O(n) walk).
func (q *MichaelScott[T]) Len() int {
	n := 0
	for node := q.head.Read().next.Read(); node != nil; node = node.next.Read() {
		n++
	}
	return n
}

// Progress reports NonBlocking (lock-freedom).
func (q *MichaelScott[T]) Progress() core.Progress { return core.NonBlocking }
