package queue

import (
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/memory"
)

// NonBlocking is Figure 2 applied to the queue: retry the weak
// operation until non-⊥.
type NonBlocking[T any] struct {
	weak   Weak[T]
	m      core.Manager
	budget int
}

// NewNonBlocking returns a non-blocking queue of capacity k with the
// paper's bare retry loop.
func NewNonBlocking[T any](k int) *NonBlocking[T] {
	return NewNonBlockingFrom[T](NewAbortable[T](k), nil)
}

// NewNonBlockingFrom builds the retry construction over any weak
// queue, pacing retries with m (nil for the bare loop).
func NewNonBlockingFrom[T any](weak Weak[T], m core.Manager) *NonBlocking[T] {
	return &NonBlocking[T]{weak: weak, m: m}
}

// SetRetryPolicy replaces the contention manager and sets an attempt
// budget (0 = unbounded); with a budget, a fully aborted operation
// returns core.ErrExhausted with no effect. Call at quiescence.
func (q *NonBlocking[T]) SetRetryPolicy(m core.Manager, budget int) {
	q.m, q.budget = m, budget
}

// RetryPolicy reports the current contention manager and attempt
// budget (tests and diagnostics).
func (q *NonBlocking[T]) RetryPolicy() (core.Manager, int) { return q.m, q.budget }

// Enqueue appends v, retrying aborted attempts; returns nil or ErrFull
// (or core.ErrExhausted when a retry budget is set and spent).
func (q *NonBlocking[T]) Enqueue(v T) error {
	try := func() (error, bool) {
		err := q.weak.TryEnqueue(v)
		return err, err != ErrAborted
	}
	if q.budget > 0 {
		err, rerr := core.RetryBudget(q.m, q.budget, try)
		if rerr != nil {
			return rerr
		}
		return err
	}
	return core.Retry(q.m, try)
}

// Dequeue removes the oldest value, retrying aborted attempts; returns
// the value or ErrEmpty (or core.ErrExhausted when a retry budget is
// set and spent).
func (q *NonBlocking[T]) Dequeue() (T, error) {
	type res struct {
		v   T
		err error
	}
	try := func() (res, bool) {
		v, err := q.weak.TryDequeue()
		return res{v, err}, err != ErrAborted
	}
	if q.budget > 0 {
		r, rerr := core.RetryBudget(q.m, q.budget, try)
		if rerr != nil {
			return r.v, rerr
		}
		return r.v, r.err
	}
	r := core.Retry(q.m, try)
	return r.v, r.err
}

// Progress reports NonBlocking.
func (q *NonBlocking[T]) Progress() core.Progress { return core.NonBlocking }

// Sensitive is Figure 3 applied to the queue: contention-sensitive and
// starvation-free. One guard is shared by both operations, because
// CONTENTION is a per-object signal.
type Sensitive[T any] struct {
	weak  Weak[T]
	guard *core.Guard
}

// NewSensitive returns the paper's configuration for n processes: a
// fresh abortable queue of capacity k over a round-robin-wrapped
// test-and-set lock.
func NewSensitive[T any](k, n int) *Sensitive[T] {
	return NewSensitiveFrom[T](NewAbortable[T](k), lock.NewRoundRobin(lock.NewTAS(), n))
}

// NewSensitiveFrom builds Figure 3 over any weak queue and PidLock.
func NewSensitiveFrom[T any](weak Weak[T], lk lock.PidLock) *Sensitive[T] {
	return &Sensitive[T]{weak: weak, guard: core.NewGuard(lk)}
}

// NewSensitiveObserved is NewSensitive with all shared accesses (weak
// queue and CONTENTION register) reported to obs.
func NewSensitiveObserved[T any](k, n int, obs memory.Observer) *Sensitive[T] {
	weak := NewAbortableObserved[T](k, obs)
	lk := lock.NewRoundRobin(lock.NewTAS(), n)
	return &Sensitive[T]{weak: weak, guard: core.NewGuardObserved(lk, obs)}
}

// Enqueue is the strong enqueue: never aborts, returns nil or ErrFull.
func (q *Sensitive[T]) Enqueue(pid int, v T) error {
	return core.Do(q.guard, pid, func() (error, bool) {
		err := q.weak.TryEnqueue(v)
		return err, err != ErrAborted
	})
}

// Dequeue is the strong dequeue: never aborts, returns the oldest
// value or ErrEmpty.
func (q *Sensitive[T]) Dequeue(pid int) (T, error) {
	type res struct {
		v   T
		err error
	}
	r := core.Do(q.guard, pid, func() (res, bool) {
		v, err := q.weak.TryDequeue()
		return res{v, err}, err != ErrAborted
	})
	return r.v, r.err
}

// Guard exposes the fast/slow-path counters.
func (q *Sensitive[T]) Guard() *core.Guard { return q.guard }

// Snapshot returns the elements oldest-first when the weak backend
// exposes a snapshot, nil otherwise. Quiescent states only: the weak
// snapshot is not atomic under concurrent updates. The adaptive tier
// calls it on a quiesced source to rebuild the migration target.
func (q *Sensitive[T]) Snapshot() []T {
	if w, ok := q.weak.(interface{ Snapshot() []T }); ok {
		return w.Snapshot()
	}
	return nil
}

// Len returns the number of elements when the weak backend exposes a
// length (quiescent states only), -1 otherwise.
func (q *Sensitive[T]) Len() int {
	if w, ok := q.weak.(interface{ Len() int }); ok {
		return w.Len()
	}
	return -1
}

// Progress reports StarvationFree.
func (q *Sensitive[T]) Progress() core.Progress { return core.StarvationFree }

// LockBased is the traditional fully lock-based bounded queue (§1.1's
// baseline): every operation takes the lock.
type LockBased[T any] struct {
	lk   lock.PidLock
	buf  []T
	head int
	size int
}

// NewLockBased returns a mutex-guarded queue of capacity k.
func NewLockBased[T any](k int) *LockBased[T] {
	return NewLockBasedWith[T](k, lock.IgnorePid(lock.NewMutex()))
}

// NewLockBasedWith returns a queue of capacity k guarded by lk.
func NewLockBasedWith[T any](k int, lk lock.PidLock) *LockBased[T] {
	if k < 1 {
		panic("queue: capacity must be >= 1")
	}
	return &LockBased[T]{lk: lk, buf: make([]T, k)}
}

// Capacity returns the number of storable elements.
func (q *LockBased[T]) Capacity() int { return len(q.buf) }

// Enqueue appends v; returns nil or ErrFull.
func (q *LockBased[T]) Enqueue(pid int, v T) error {
	q.lk.Acquire(pid)
	defer q.lk.Release(pid)
	if q.size == len(q.buf) {
		return ErrFull
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	return nil
}

// Dequeue removes the oldest value; returns it or ErrEmpty.
func (q *LockBased[T]) Dequeue(pid int) (T, error) {
	q.lk.Acquire(pid)
	defer q.lk.Release(pid)
	var zero T
	if q.size == 0 {
		return zero, ErrEmpty
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v, nil
}

// Len returns the number of elements; quiescent states only.
func (q *LockBased[T]) Len() int { return q.size }

// Progress reports the condition inherited from the lock.
func (q *LockBased[T]) Progress() core.Progress {
	if li, ok := q.lk.(lock.LivenessInfo); ok && li.Liveness() == lock.StarvationFree {
		return core.StarvationFree
	}
	return core.NonBlocking
}

var (
	_ Strong[int] = (*Sensitive[int])(nil)
	_ Strong[int] = (*LockBased[int])(nil)
)
