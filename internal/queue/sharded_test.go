package queue

import (
	"errors"
	"testing"
)

func TestShardedDefaultsAndCapacity(t *testing.T) {
	q := NewSharded[int](64, 4, 0)
	if got := q.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want min(n, 8) = 4", got)
	}
	if got := q.Capacity(); got != 64 {
		t.Fatalf("Capacity = %d, want exactly 64", got)
	}
	// Uneven split: capacity is still exactly k.
	if got := NewSharded[int](10, 4, 3).Capacity(); got != 10 {
		t.Fatalf("Capacity = %d, want exactly 10", got)
	}
	// More shards than capacity: clamped so every shard holds a value.
	if got := NewSharded[int](3, 16, 8).Shards(); got != 3 {
		t.Fatalf("Shards = %d, want clamp to capacity 3", got)
	}
	// The default shard count is bounded even for many processes.
	if got := NewSharded[int](1024, 64, 0).Shards(); got != defaultShards {
		t.Fatalf("Shards = %d, want %d", got, defaultShards)
	}
}

func TestShardedPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"capacity": func() { NewSharded[int](0, 4, 2) },
		"procs":    func() { NewSharded[int](8, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSharded with bad %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShardedK1MatchesSpecSolo(t *testing.T) {
	// With one shard the queue is globally FIFO: the sequential spec
	// applies exactly.
	const k = 4
	q := NewSharded[uint32](k, 1, 1)
	tape := []byte{
		0, 1, 0, 2, 0, 3, 0, 4, 0, 5,
		1, 0, 1, 0, 1, 0, 1, 0, 1, 0,
		0, 7, 1, 0, 0, 8, 0, 9, 1, 0,
	}
	interpretQueueOps(t, tape, k,
		func(v uint32) error { return q.Enqueue(0, v) },
		func() (uint32, error) { return q.Dequeue(0) })
}

func TestShardedConserves(t *testing.T) {
	// qconserved also checks that each consumer sees every producer's
	// values in enqueue order. That holds here because each producer's
	// values stay in its home shard in FIFO order: the capacity covers
	// the full workload, so no enqueue ever spills to another shard.
	producers, consumers, perProducer := 4, 4, stressN(3000)
	q := NewSharded[uint64](4*producers*perProducer, producers+consumers, 4)
	qconserved(t, producers, consumers, perProducer, q.Enqueue, q.Dequeue)
	if got := q.Spills(); got != 0 {
		t.Fatalf("Spills = %d, want 0 (capacity covers the workload)", got)
	}
}

func TestShardedStealsWhenHomeEmpty(t *testing.T) {
	q := NewSharded[int](8, 4, 2)
	// pid 0's home shard is 0; pid 1's home is 1 and stays empty.
	if err := q.Enqueue(0, 42); err != nil {
		t.Fatal(err)
	}
	v, err := q.Dequeue(1)
	if err != nil || v != 42 {
		t.Fatalf("Dequeue = (%d, %v), want (42, nil)", v, err)
	}
	if got := q.Steals(); got != 1 {
		t.Fatalf("Steals = %d, want 1", got)
	}
	if _, err := q.Dequeue(1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Dequeue on drained queue = %v, want ErrEmpty", err)
	}
}

func TestShardedSpillsWhenHomeFull(t *testing.T) {
	// Total capacity 4 over 2 shards: pid 0's home shard holds 2, the
	// third and fourth enqueues spill to shard 1, the fifth is ErrFull.
	q := NewSharded[int](4, 2, 2)
	for i := 0; i < 4; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if got := q.Spills(); got != 2 {
		t.Fatalf("Spills = %d, want 2", got)
	}
	if err := q.Enqueue(0, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue on full = %v, want ErrFull", err)
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	// Every spilled value is still dequeued exactly once.
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		v, err := q.Dequeue(0)
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
}

func TestShardedShardStats(t *testing.T) {
	q := NewSharded[int](8, 2, 2)
	if err := q.Enqueue(0, 1); err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for i := 0; i < q.Shards(); i++ {
		st := q.ShardStats(i)
		total += st.Fast + st.Published
	}
	if total == 0 {
		t.Fatal("no shard recorded the operation")
	}
}
