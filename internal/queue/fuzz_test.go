package queue

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

// interpretQueueOps decodes a fuzz byte string into a solo op sequence
// and cross-checks a weak queue against the sequential spec.
func interpretQueueOps(t *testing.T, data []byte, k int, tryEnq func(uint32) error, tryDeq func() (uint32, error)) {
	t.Helper()
	ref := spec.NewQueue[uint32](k)
	for i := 0; i+1 < len(data); i += 2 {
		if data[i]%2 == 0 {
			v := uint32(data[i+1])
			err := tryEnq(v)
			if ref.Enqueue(v) {
				if err != nil {
					t.Fatalf("op %d: enq(%d) = %v, spec accepted", i, v, err)
				}
			} else if !errors.Is(err, ErrFull) {
				t.Fatalf("op %d: enq(%d) = %v, spec reports full", i, v, err)
			}
		} else {
			v, err := tryDeq()
			want, ok := ref.Dequeue()
			if ok {
				if err != nil || v != want {
					t.Fatalf("op %d: deq = (%d, %v), spec has %d", i, v, err, want)
				}
			} else if !errors.Is(err, ErrEmpty) {
				t.Fatalf("op %d: deq = (%d, %v), spec reports empty", i, v, err)
			}
		}
	}
}

func FuzzAbortableQueueVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 0, 8, 0, 7, 0, 6, 1, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		q := NewAbortable[uint32](k)
		interpretQueueOps(t, data, k, q.TryEnqueue, q.TryDequeue)
	})
}

func FuzzPackedQueueVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 3
		q := NewPacked(k)
		interpretQueueOps(t, data, k, q.TryEnqueue, q.TryDequeue)
	})
}

func FuzzMichaelScottVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewMichaelScott[uint32]()
		ref := spec.NewQueue[uint32](1 << 20) // effectively unbounded
		for i := 0; i+1 < len(data); i += 2 {
			if data[i]%2 == 0 {
				v := uint32(data[i+1])
				q.Enqueue(v)
				ref.Enqueue(v)
			} else {
				v, err := q.Dequeue()
				want, ok := ref.Dequeue()
				if ok {
					if err != nil || v != want {
						t.Fatalf("op %d: deq = (%d, %v), spec has %d", i, v, err, want)
					}
				} else if !errors.Is(err, ErrEmpty) {
					t.Fatalf("op %d: deq = (%d, %v), spec reports empty", i, v, err)
				}
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("final length %d, spec %d", q.Len(), ref.Len())
		}
	})
}

func FuzzCombiningQueueVsSpec(f *testing.F) {
	// Drive the contended entry points: a solo run of Enqueue/Dequeue
	// never leaves the fast path (covered by
	// TestCombiningQueueMatchesSpecSolo), so this target forces every
	// op through publish + combine.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 0, 8, 0, 7, 0, 6, 1, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		q := NewCombining[uint32](k, 1)
		interpretQueueOps(t, data, k,
			func(v uint32) error { return q.EnqueueContended(0, v) },
			func() (uint32, error) { return q.DequeueContended(0) })
	})
}

func FuzzAbortablePooledVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 0, 8, 0, 7, 0, 6, 1, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		q := NewAbortablePooled(k)
		interpretQueueOps(t, data, k,
			func(v uint32) error { return q.TryEnqueue(uint64(v)) },
			func() (uint32, error) { v, err := q.TryDequeue(); return uint32(v), err })
	})
}

func FuzzMichaelScottPooledVsSpec(f *testing.F) {
	// Solo cross-check of the recycled-node queue against the spec: the
	// single-pid pool maximizes same-address reuse (every retired dummy
	// comes straight back on the next enqueue), so any tag mistake in
	// the counted-pointer protocol corrupts the FIFO order here.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 1, 1, 0, 0, 2, 1, 0, 0, 3, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewMichaelScottPooled(1)
		ref := spec.NewQueue[uint32](1 << 20) // effectively unbounded
		for i := 0; i+1 < len(data); i += 2 {
			if data[i]%2 == 0 {
				v := uint32(data[i+1])
				q.Enqueue(0, uint64(v))
				ref.Enqueue(v)
			} else {
				v, err := q.Dequeue(0)
				want, ok := ref.Dequeue()
				if ok {
					if err != nil || uint32(v) != want {
						t.Fatalf("op %d: deq = (%d, %v), spec has %d", i, v, err, want)
					}
				} else if !errors.Is(err, ErrEmpty) {
					t.Fatalf("op %d: deq = (%d, %v), spec reports empty", i, v, err)
				}
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("final length %d, spec %d", q.Len(), ref.Len())
		}
	})
}

func FuzzShardedQueueVsSpec(f *testing.F) {
	// K=1 keeps the global FIFO spec exact (striping relaxes it).
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		q := NewSharded[uint32](k, 1, 1)
		interpretQueueOps(t, data, k,
			func(v uint32) error { return q.Enqueue(0, v) },
			func() (uint32, error) { return q.Dequeue(0) })
	})
}
