package queue

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/memory"
)

func TestPackedFIFOSolo(t *testing.T) {
	q := NewPacked(8)
	for i := uint32(1); i <= 5; i++ {
		if err := q.TryEnqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint32(1); want <= 5; want++ {
		v, err := q.TryDequeue()
		if err != nil || v != want {
			t.Fatalf("TryDequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.TryDequeue(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
}

func TestPackedFullAndWrap(t *testing.T) {
	q := NewPacked(2)
	for lap := 0; lap < 1000; lap++ {
		if err := q.TryEnqueue(uint32(2 * lap)); err != nil {
			t.Fatalf("lap %d: %v", lap, err)
		}
		if err := q.TryEnqueue(uint32(2*lap + 1)); err != nil {
			t.Fatalf("lap %d: %v", lap, err)
		}
		if err := q.TryEnqueue(99); !errors.Is(err, ErrFull) {
			t.Fatalf("lap %d: enqueue on full = %v", lap, err)
		}
		if v, err := q.TryDequeue(); err != nil || v != uint32(2*lap) {
			t.Fatalf("lap %d: dequeue = (%d, %v)", lap, v, err)
		}
		if v, err := q.TryDequeue(); err != nil || v != uint32(2*lap+1) {
			t.Fatalf("lap %d: dequeue = (%d, %v)", lap, v, err)
		}
	}
}

func TestPackedDifferentialVsBoxed(t *testing.T) {
	// The two backends must agree op-for-op on solo runs.
	packed := NewPacked(7)
	boxed := NewAbortable[uint32](7)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			pe := packed.TryEnqueue(v)
			be := boxed.TryEnqueue(v)
			if !errors.Is(pe, be) && (pe != nil || be != nil) {
				t.Fatalf("op %d: enqueue mismatch: packed=%v boxed=%v", i, pe, be)
			}
		} else {
			pv, pe := packed.TryDequeue()
			bv, be := boxed.TryDequeue()
			if !errors.Is(pe, be) && (pe != nil || be != nil) {
				t.Fatalf("op %d: dequeue mismatch: packed=%v boxed=%v", i, pe, be)
			}
			if pe == nil && pv != bv {
				t.Fatalf("op %d: dequeue values differ: %d vs %d", i, pv, bv)
			}
		}
	}
	if packed.Len() != boxed.Len() {
		t.Fatalf("final lengths differ: %d vs %d", packed.Len(), boxed.Len())
	}
}

func TestPackedAccessCounts(t *testing.T) {
	// The packed backend's single-word slots drop the per-op cost to
	// 4 shared accesses (the value write merges into the publish).
	var st memory.Stats
	q := NewPackedObserved(4, &st)
	if err := q.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 4 {
		t.Fatalf("TryEnqueue accesses = %d (%+v), want 4", got, st.Snapshot())
	}
	st.Reset()
	if _, err := q.TryDequeue(); err != nil {
		t.Fatal(err)
	}
	if got := st.Total(); got != 4 {
		t.Fatalf("TryDequeue accesses = %d (%+v), want 4", got, st.Snapshot())
	}
}

func TestPackedSoloNeverAborts(t *testing.T) {
	q := NewPacked(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			if err := q.TryEnqueue(uint32(i)); errors.Is(err, ErrAborted) {
				t.Fatalf("solo TryEnqueue aborted at op %d", i)
			}
		} else {
			if _, err := q.TryDequeue(); errors.Is(err, ErrAborted) {
				t.Fatalf("solo TryDequeue aborted at op %d", i)
			}
		}
	}
}

func TestPackedSnapshot(t *testing.T) {
	q := NewPacked(4)
	for _, v := range []uint32{10, 20, 30} {
		if err := q.TryEnqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.TryDequeue(); err != nil {
		t.Fatal(err)
	}
	got := q.Snapshot()
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("Snapshot = %v, want [20 30]", got)
	}
}

func TestPackedConcurrentConserves(t *testing.T) {
	producers, consumers, perProducer := 4, 4, stressN(2000)
	q := NewNonBlockingFrom[uint32](NewPacked(16), nil)
	total := producers * perProducer
	var mu sync.Mutex
	seen := make(map[uint32]int)
	var wg sync.WaitGroup
	consumed := 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint32(pid)<<24 | uint32(i)
				for q.Enqueue(v) != nil {
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if consumed >= total {
					mu.Unlock()
					return
				}
				mu.Unlock()
				v, err := q.Dequeue()
				if err != nil {
					continue
				}
				mu.Lock()
				seen[v]++
				consumed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("value set = %d, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x seen %d times", v, n)
		}
	}
}

func TestPackedConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPacked(0) did not panic")
		}
	}()
	NewPacked(0)
}
