package linearizability

// Result reports the outcome of a linearizability check.
type Result struct {
	// Ok is true when a legal linearization was found.
	Ok bool
	// Exhausted is true when the search hit its state budget before
	// deciding; Ok is then false but the history was not proven
	// non-linearizable.
	Exhausted bool
	// Witness is a legal linearization order (indices into the input
	// history) when Ok.
	Witness []int
	// States is the number of memoized search states visited.
	States int
	// FailedSegment holds the offending ops when CheckSegmented
	// rejects a history, for diagnostics.
	FailedSegment []Op
}

// MaxOps bounds the history length Check accepts (the linearized set
// is tracked as a 64-bit mask).
const MaxOps = 64

// Check decides whether history is linearizable with respect to model
// m, exploring at most maxStates memoized states (0 means a generous
// default). The algorithm is the classic Wing & Gong search with the
// WGL memoization: depth-first over "which op is linearized next",
// where an op may go next only if no other remaining op returned
// before it was invoked, pruning on previously seen
// (linearized-set, state) pairs.
func Check(m Model, history []Op, maxStates int) Result {
	n := len(history)
	if n == 0 {
		return Result{Ok: true}
	}
	if n > MaxOps {
		panic("linearizability: history longer than MaxOps; partition it")
	}
	if maxStates == 0 {
		maxStates = 1 << 22
	}

	type frame struct {
		mask  uint64 // ops already linearized
		state string // model state after them
		order []int  // linearization so far
	}
	full := uint64(1)<<n - 1
	seen := make(map[string]struct{})
	key := func(mask uint64, state string) string {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(mask >> (8 * i))
		}
		return string(b[:]) + state
	}

	stack := []frame{{mask: 0, state: m.Init()}}
	states := 0
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.mask == full {
			return Result{Ok: true, Witness: f.order, States: states}
		}
		k := key(f.mask, f.state)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if states++; states > maxStates {
			return Result{Exhausted: true, States: states}
		}
		// minReturn over the remaining ops: an op can be linearized
		// next only if it was invoked before every remaining response
		// (otherwise some completed op must precede it).
		minReturn := int64(1) << 62
		for i := 0; i < n; i++ {
			if f.mask&(1<<i) == 0 && history[i].Return < minReturn {
				minReturn = history[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if f.mask&(1<<i) != 0 {
				continue
			}
			op := history[i]
			if op.Call > minReturn {
				continue
			}
			next, ok := m.Step(f.state, op)
			if !ok {
				continue
			}
			order := make([]int, len(f.order)+1)
			copy(order, f.order)
			order[len(f.order)] = i
			stack = append(stack, frame{mask: f.mask | 1<<i, state: next, order: order})
		}
	}
	return Result{Ok: false, States: states}
}

// maxCarriedStates bounds the set of candidate object states carried
// across quiescent cuts by CheckSegmented before it gives up.
const maxCarriedStates = 1 << 14

// CheckSegmented checks a long history by cutting it at quiescent
// points: instants where every operation invoked so far has returned.
// A segment of concurrent operations can admit several legal
// linearizations ending in different object states, so the checker
// carries the full set of reachable end states from one segment into
// the next (committing to a single witness would be unsound). The
// result is exact for histories with quiescent cuts and lets E11 check
// tens of thousands of ops.
func CheckSegmented(m Model, history []Op, segmentMax int, maxStates int) Result {
	if segmentMax <= 0 || segmentMax > MaxOps {
		segmentMax = MaxOps
	}
	states := []string{m.Init()}
	total := Result{Ok: true}
	start := 0
	for start < len(history) {
		// Grow the segment to the next quiescent cut under segmentMax.
		// The input is sorted by Call, so the cut is quiescent when
		// the next op's Call exceeds every Return seen so far.
		end := start
		maxRet := int64(0)
		cut := false
		for end < len(history) && end-start < segmentMax {
			if history[end].Return > maxRet {
				maxRet = history[end].Return
			}
			end++
			if end == len(history) || history[end].Call > maxRet {
				cut = true
				break
			}
		}
		if !cut {
			// No quiescent cut fits the segment budget; truncating
			// here would be unsound, so report the check undecided.
			return Result{Exhausted: true, States: total.States}
		}
		seg := history[start:end]
		finals, visited, exhausted := finalStates(m, states, seg, maxStates)
		total.States += visited
		if exhausted {
			return Result{Exhausted: true, States: total.States}
		}
		if len(finals) == 0 {
			return Result{Ok: false, States: total.States, FailedSegment: seg}
		}
		if len(finals) > maxCarriedStates {
			return Result{Exhausted: true, States: total.States}
		}
		states = finals
		start = end
	}
	return total
}

// finalStates explores the linearizations of history from every state
// in from and returns the distinct reachable end states.
func finalStates(m Model, from []string, history []Op, maxStates int) (finals []string, visited int, exhausted bool) {
	n := len(history)
	if n == 0 {
		return from, 0, false
	}
	if n > MaxOps {
		panic("linearizability: history longer than MaxOps; partition it")
	}
	if maxStates == 0 {
		maxStates = 1 << 22
	}
	type frame struct {
		mask  uint64
		state string
	}
	full := uint64(1)<<n - 1
	seen := make(map[string]struct{})
	finalSet := make(map[string]struct{})
	key := func(mask uint64, state string) string {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(mask >> (8 * i))
		}
		return string(b[:]) + state
	}
	stack := make([]frame, 0, len(from))
	for _, s := range from {
		stack = append(stack, frame{mask: 0, state: s})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.mask == full {
			if _, dup := finalSet[f.state]; !dup {
				finalSet[f.state] = struct{}{}
				finals = append(finals, f.state)
			}
			continue
		}
		k := key(f.mask, f.state)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if visited++; visited > maxStates {
			return nil, visited, true
		}
		minReturn := int64(1) << 62
		for i := 0; i < n; i++ {
			if f.mask&(1<<i) == 0 && history[i].Return < minReturn {
				minReturn = history[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if f.mask&(1<<i) != 0 {
				continue
			}
			op := history[i]
			if op.Call > minReturn {
				continue
			}
			next, ok := m.Step(f.state, op)
			if !ok {
				continue
			}
			stack = append(stack, frame{mask: f.mask | 1<<i, state: next})
		}
	}
	return finals, visited, false
}
