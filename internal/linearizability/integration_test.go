package linearizability_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	lin "repro/internal/linearizability"
	"repro/internal/queue"
	"repro/internal/stack"
)

// recordStackRounds runs rounds of concurrent bursts against pid-aware
// push/pop callbacks. Between rounds all goroutines join, so the
// recorded history has quiescent cuts and CheckSegmented stays exact.
func recordStackRounds(t *testing.T, procs, rounds, opsPerRound int, seed int64,
	push func(pid int, v uint64) error,
	pop func(pid int) (uint64, error),
	full, empty, aborted error,
) []lin.Op {
	t.Helper()
	r := lin.NewRecorder(procs)
	next := uint64(1)
	var mu sync.Mutex
	fresh := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		next++
		return next
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerRound; i++ {
					if rng.Intn(2) == 0 {
						v := fresh()
						pend := r.Invoke(pid, "push", v)
						err := push(pid, v)
						switch {
						case err == nil:
							r.Return(pend, 0, lin.OutcomeOK)
						case errors.Is(err, full):
							r.Return(pend, 0, lin.OutcomeFull)
						case aborted != nil && errors.Is(err, aborted):
							r.Return(pend, 0, lin.OutcomeAborted)
						default:
							t.Errorf("push: %v", err)
						}
					} else {
						pend := r.Invoke(pid, "pop", 0)
						v, err := pop(pid)
						switch {
						case err == nil:
							r.Return(pend, v, lin.OutcomeOK)
						case errors.Is(err, empty):
							r.Return(pend, 0, lin.OutcomeEmpty)
						case aborted != nil && errors.Is(err, aborted):
							r.Return(pend, 0, lin.OutcomeAborted)
						default:
							t.Errorf("pop: %v", err)
						}
					}
				}
			}(p, seed+int64(round*procs+p))
		}
		wg.Wait()
	}
	return r.History()
}

func checkStackHistory(t *testing.T, name string, k int, h []lin.Op) {
	t.Helper()
	res := lin.CheckSegmented(lin.StackModel(k), h, 0, 0)
	if res.Exhausted {
		t.Fatalf("%s: check exhausted (%d states)", name, res.States)
	}
	if !res.Ok {
		t.Fatalf("%s: history of %d ops NOT linearizable", name, len(h))
	}
}

func TestSensitiveStackLinearizable(t *testing.T) {
	const procs, k = 4, 6
	for seed := int64(0); seed < 8; seed++ {
		s := stack.NewSensitive[uint64](k, procs)
		h := recordStackRounds(t, procs, 30, 4, seed,
			s.Push, s.Pop, stack.ErrFull, stack.ErrEmpty, nil)
		checkStackHistory(t, "sensitive", k, h)
	}
}

func TestNonBlockingStackLinearizable(t *testing.T) {
	const procs, k = 4, 6
	for seed := int64(100); seed < 108; seed++ {
		s := stack.NewNonBlocking[uint64](k)
		h := recordStackRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { return s.Push(v) },
			func(_ int) (uint64, error) { return s.Pop() },
			stack.ErrFull, stack.ErrEmpty, nil)
		checkStackHistory(t, "nonblocking", k, h)
	}
}

func TestAbortableStackWeakOpsLinearizable(t *testing.T) {
	// The weak stack's non-⊥ subhistory must be linearizable (§3's
	// linearization points). Aborted ops are dropped by the recorder.
	const procs, k = 4, 6
	for seed := int64(200); seed < 208; seed++ {
		s := stack.NewAbortable[uint64](k)
		h := recordStackRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { return s.TryPush(v) },
			func(_ int) (uint64, error) { return s.TryPop() },
			stack.ErrFull, stack.ErrEmpty, stack.ErrAborted)
		checkStackHistory(t, "abortable", k, h)
	}
}

func TestPackedStackWeakOpsLinearizable(t *testing.T) {
	const procs, k = 4, 6
	for seed := int64(300); seed < 308; seed++ {
		s := stack.NewPacked(k)
		h := recordStackRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { return s.TryPush(uint32(v)) },
			func(_ int) (uint64, error) {
				v, err := s.TryPop()
				return uint64(v), err
			},
			stack.ErrFull, stack.ErrEmpty, stack.ErrAborted)
		checkStackHistory(t, "packed", k, h)
	}
}

func TestTreiberStackLinearizable(t *testing.T) {
	const procs = 4
	for seed := int64(400); seed < 408; seed++ {
		s := stack.NewTreiber[uint64]()
		h := recordStackRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { return s.Push(v) },
			func(_ int) (uint64, error) { return s.Pop() },
			stack.ErrFull, stack.ErrEmpty, nil)
		checkStackHistory(t, "treiber", 0, h)
	}
}

func TestLockBasedStackLinearizable(t *testing.T) {
	const procs, k = 4, 6
	for seed := int64(500); seed < 504; seed++ {
		s := stack.NewLockBased[uint64](k)
		h := recordStackRounds(t, procs, 20, 4, seed,
			s.Push, s.Pop, stack.ErrFull, stack.ErrEmpty, nil)
		checkStackHistory(t, "lockbased", k, h)
	}
}

// recordQueueRounds mirrors recordStackRounds for queues.
func recordQueueRounds(t *testing.T, procs, rounds, opsPerRound int, seed int64,
	enq func(pid int, v uint64) error,
	deq func(pid int) (uint64, error),
	full, empty, aborted error,
) []lin.Op {
	t.Helper()
	r := lin.NewRecorder(procs)
	next := uint64(1)
	var mu sync.Mutex
	fresh := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		next++
		return next
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerRound; i++ {
					if rng.Intn(2) == 0 {
						v := fresh()
						pend := r.Invoke(pid, "enq", v)
						err := enq(pid, v)
						switch {
						case err == nil:
							r.Return(pend, 0, lin.OutcomeOK)
						case errors.Is(err, full):
							r.Return(pend, 0, lin.OutcomeFull)
						case aborted != nil && errors.Is(err, aborted):
							r.Return(pend, 0, lin.OutcomeAborted)
						default:
							t.Errorf("enq: %v", err)
						}
					} else {
						pend := r.Invoke(pid, "deq", 0)
						v, err := deq(pid)
						switch {
						case err == nil:
							r.Return(pend, v, lin.OutcomeOK)
						case errors.Is(err, empty):
							r.Return(pend, 0, lin.OutcomeEmpty)
						case aborted != nil && errors.Is(err, aborted):
							r.Return(pend, 0, lin.OutcomeAborted)
						default:
							t.Errorf("deq: %v", err)
						}
					}
				}
			}(p, seed+int64(round*procs+p))
		}
		wg.Wait()
	}
	return r.History()
}

func checkQueueHistory(t *testing.T, name string, k int, h []lin.Op) {
	t.Helper()
	res := lin.CheckSegmented(lin.QueueModel(k), h, 0, 0)
	if res.Exhausted {
		t.Fatalf("%s: check exhausted (%d states)", name, res.States)
	}
	if !res.Ok {
		t.Fatalf("%s: history of %d ops NOT linearizable", name, len(h))
	}
}

func TestAbortableQueueWeakOpsLinearizable(t *testing.T) {
	const procs, k = 4, 5
	for seed := int64(600); seed < 612; seed++ {
		q := queue.NewAbortable[uint64](k)
		h := recordQueueRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { return q.TryEnqueue(v) },
			func(_ int) (uint64, error) { return q.TryDequeue() },
			queue.ErrFull, queue.ErrEmpty, queue.ErrAborted)
		checkQueueHistory(t, "abortable-queue", k, h)
	}
}

func TestSensitiveQueueLinearizable(t *testing.T) {
	const procs, k = 4, 5
	for seed := int64(700); seed < 708; seed++ {
		q := queue.NewSensitive[uint64](k, procs)
		h := recordQueueRounds(t, procs, 30, 4, seed,
			q.Enqueue, q.Dequeue, queue.ErrFull, queue.ErrEmpty, nil)
		checkQueueHistory(t, "sensitive-queue", k, h)
	}
}

func TestMichaelScottLinearizable(t *testing.T) {
	const procs = 4
	for seed := int64(800); seed < 808; seed++ {
		q := queue.NewMichaelScott[uint64]()
		h := recordQueueRounds(t, procs, 30, 4, seed,
			func(_ int, v uint64) error { q.Enqueue(v); return nil },
			func(_ int) (uint64, error) { return q.Dequeue() },
			queue.ErrFull, queue.ErrEmpty, nil)
		checkQueueHistory(t, "michael-scott", 0, h)
	}
}
