package linearizability

import "encoding/binary"

// Model is a sequential specification over an immutable encoded state.
// States are strings so they can key the checker's memoization table;
// the encoding is private to each model.
type Model interface {
	// Init returns the encoded initial state.
	Init() string
	// Step checks whether op is legal from state and, if so, returns
	// the successor state.
	Step(state string, op Op) (next string, ok bool)
}

// appendVal appends one value to an encoded value sequence.
func appendVal(state string, v uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return state + string(buf[:])
}

// lastVal splits off the final value of an encoded sequence.
func lastVal(state string) (rest string, v uint64) {
	n := len(state)
	return state[:n-8], binary.BigEndian.Uint64([]byte(state[n-8:]))
}

// firstVal splits off the initial value of an encoded sequence.
func firstVal(state string) (v uint64, rest string) {
	return binary.BigEndian.Uint64([]byte(state[:8])), state[8:]
}

// stackModel is the sequential bounded stack: Kind "push" with
// OutcomeOK/OutcomeFull, Kind "pop" with OutcomeOK/OutcomeEmpty.
type stackModel struct {
	k int
}

// StackModel returns the sequential specification of a bounded stack
// of capacity k (k <= 0 means unbounded).
func StackModel(k int) Model { return stackModel{k: k} }

func (m stackModel) Init() string { return "" }

func (m stackModel) Step(state string, op Op) (string, bool) {
	depth := len(state) / 8
	switch op.Kind {
	case "push":
		switch op.Outcome {
		case OutcomeFull:
			return state, m.k > 0 && depth == m.k
		case OutcomeOK:
			if m.k > 0 && depth == m.k {
				return state, false
			}
			return appendVal(state, op.Input), true
		}
	case "pop":
		switch op.Outcome {
		case OutcomeEmpty:
			return state, depth == 0
		case OutcomeOK:
			if depth == 0 {
				return state, false
			}
			rest, top := lastVal(state)
			return rest, top == op.Output
		}
	}
	return state, false
}

// queueModel is the sequential bounded FIFO queue: Kind "enq" with
// OutcomeOK/OutcomeFull, Kind "deq" with OutcomeOK/OutcomeEmpty.
type queueModel struct {
	k int
}

// QueueModel returns the sequential specification of a bounded queue
// of capacity k (k <= 0 means unbounded).
func QueueModel(k int) Model { return queueModel{k: k} }

func (m queueModel) Init() string { return "" }

func (m queueModel) Step(state string, op Op) (string, bool) {
	size := len(state) / 8
	switch op.Kind {
	case "enq":
		switch op.Outcome {
		case OutcomeFull:
			return state, m.k > 0 && size == m.k
		case OutcomeOK:
			if m.k > 0 && size == m.k {
				return state, false
			}
			return appendVal(state, op.Input), true
		}
	case "deq":
		switch op.Outcome {
		case OutcomeEmpty:
			return state, size == 0
		case OutcomeOK:
			if size == 0 {
				return state, false
			}
			front, rest := firstVal(state)
			return rest, front == op.Output
		}
	}
	return state, false
}

// dequeModel is the sequential bounded deque with the non-circular
// HLM window semantics (see spec.Deque): Kind "pushl"/"pushr" with
// OutcomeOK/OutcomeFull, "popl"/"popr" with OutcomeOK/OutcomeEmpty.
// The state tracks the window position (numLN) besides the values,
// because each side's "full" depends on it.
type dequeModel struct {
	max int
}

// DequeModel returns the sequential specification of the bounded
// array deque of capacity max with the initial window split in the
// middle.
func DequeModel(max int) Model { return dequeModel{max: max} }

func (m dequeModel) Init() string {
	return string([]byte{byte(m.max/2 + 1)})
}

func (m dequeModel) Step(state string, op Op) (string, bool) {
	numLN := int(state[0])
	vals := state[1:]
	size := len(vals) / 8
	switch op.Kind {
	case "pushr":
		full := numLN+size == m.max+1
		switch op.Outcome {
		case OutcomeFull:
			return state, full
		case OutcomeOK:
			if full {
				return state, false
			}
			return string([]byte{byte(numLN)}) + appendVal(vals, op.Input), true
		}
	case "pushl":
		full := numLN == 1
		switch op.Outcome {
		case OutcomeFull:
			return state, full
		case OutcomeOK:
			if full {
				return state, false
			}
			return string([]byte{byte(numLN - 1)}) + appendVal("", op.Input) + vals, true
		}
	case "popr":
		switch op.Outcome {
		case OutcomeEmpty:
			return state, size == 0
		case OutcomeOK:
			if size == 0 {
				return state, false
			}
			rest, last := lastVal(vals)
			return string([]byte{byte(numLN)}) + rest, last == op.Output
		}
	case "popl":
		switch op.Outcome {
		case OutcomeEmpty:
			return state, size == 0
		case OutcomeOK:
			if size == 0 {
				return state, false
			}
			first, rest := firstVal(vals)
			return string([]byte{byte(numLN + 1)}) + rest, first == op.Output
		}
	}
	return state, false
}

// setModel is the sequential sorted set over uint64 keys: Kind "add"
// (Input = key, Output = 1 iff newly inserted), "rem" (Output = 1 iff
// the key was present), "has" (Output = 1 iff present). All three are
// total: the only outcome is OutcomeOK (weak attempts that abort are
// dropped by the recorder before checking).
type setModel struct{}

// SetModel returns the sequential specification of the sorted set
// (internal/set, spec.Set).
func SetModel() Model { return setModel{} }

func (setModel) Init() string { return "" }

// setFind returns the byte offset where key sits (or would sit) in the
// sorted encoded state, and whether it is present.
func setFind(state string, key uint64) (int, bool) {
	for i := 0; i < len(state); i += 8 {
		k, _ := firstVal(state[i:])
		if k == key {
			return i, true
		}
		if k > key {
			return i, false
		}
	}
	return len(state), false
}

func (m setModel) Step(state string, op Op) (string, bool) {
	if op.Outcome != OutcomeOK {
		return state, false
	}
	i, present := setFind(state, op.Input)
	switch op.Kind {
	case "add":
		if present {
			return state, op.Output == 0
		}
		return state[:i] + appendVal("", op.Input) + state[i:], op.Output == 1
	case "rem":
		if !present {
			return state, op.Output == 0
		}
		return state[:i] + state[i+8:], op.Output == 1
	case "has":
		if present {
			return state, op.Output == 1
		}
		return state, op.Output == 0
	}
	return state, false
}

// registerModel is a sequential read/write/CAS register: Kind "read"
// (Output = value), "write" (Input = value), "cas" (Input packs
// old<<32|new in the low bits, Output = 1 on success, 0 on failure).
type registerModel struct {
	init uint64
}

// RegisterModel returns the sequential specification of an atomic
// register initialized to init, the base object of the paper's §2.
func RegisterModel(init uint64) Model { return registerModel{init: init} }

func (m registerModel) Init() string { return appendVal("", m.init) }

func (m registerModel) Step(state string, op Op) (string, bool) {
	_, cur := lastVal(state)
	switch op.Kind {
	case "read":
		return state, op.Output == cur && op.Outcome == OutcomeOK
	case "write":
		return appendVal("", op.Input), op.Outcome == OutcomeOK
	case "cas":
		old, new := op.Input>>32, op.Input&0xffffffff
		if cur == old {
			return appendVal("", new), op.Output == 1
		}
		return state, op.Output == 0
	}
	return state, false
}
