package linearizability

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Outcome classifies an operation's observed result beyond its output
// value. The empty string means a normal value-bearing completion.
const (
	// OutcomeOK marks a normal completion.
	OutcomeOK = ""
	// OutcomeFull marks a push/enqueue that reported a full object.
	OutcomeFull = "full"
	// OutcomeEmpty marks a pop/dequeue that reported an empty object.
	OutcomeEmpty = "empty"
	// OutcomeAborted marks a weak operation that returned ⊥; the
	// Recorder drops such operations from the checked history.
	OutcomeAborted = "aborted"
)

// Op is one completed operation of a recorded history.
type Op struct {
	// Proc is the recording process identity.
	Proc int
	// Call and Return are logical timestamps from the recorder's
	// global clock; Call < Return always.
	Call, Return int64
	// Kind names the operation ("push", "pop", "enq", "deq", ...).
	Kind string
	// Input is the operation argument (0 when none).
	Input uint64
	// Output is the operation result (0 when none).
	Output uint64
	// Outcome is OutcomeOK, OutcomeFull, OutcomeEmpty or
	// OutcomeAborted.
	Outcome string
}

// String renders the op for failure messages.
func (o Op) String() string {
	return fmt.Sprintf("p%d %s(%d)=%d/%q @[%d,%d]", o.Proc, o.Kind, o.Input, o.Output, o.Outcome, o.Call, o.Return)
}

// Recorder collects a concurrent history. Each process records into
// its own log (no cross-process synchronization beyond the clock), so
// recording perturbs the measured object as little as possible. Use
// one goroutine per process identity.
type Recorder struct {
	clock atomic.Int64
	logs  [][]Op
}

// NewRecorder returns a recorder for procs process identities.
func NewRecorder(procs int) *Recorder {
	return &Recorder{logs: make([][]Op, procs)}
}

// Pending is an invoked-but-unfinished operation handle.
type Pending struct {
	proc int
	op   Op
}

// CallTime returns the invocation timestamp, for callers that need to
// reason about operations that never return (crashed processes).
func (p Pending) CallTime() int64 { return p.op.Call }

// Invoke stamps the invocation of kind(input) by proc.
func (r *Recorder) Invoke(proc int, kind string, input uint64) Pending {
	return Pending{proc: proc, op: Op{
		Proc:  proc,
		Call:  r.clock.Add(1),
		Kind:  kind,
		Input: input,
	}}
}

// Return stamps the response and appends the completed op to the
// process log. Aborted operations are recorded but excluded from
// History (they took no effect).
func (r *Recorder) Return(p Pending, output uint64, outcome string) {
	p.op.Return = r.clock.Add(1)
	p.op.Output = output
	p.op.Outcome = outcome
	r.logs[p.proc] = append(r.logs[p.proc], p.op)
}

// History merges all process logs into one history ordered by
// invocation time, dropping aborted operations. Call only after all
// recording goroutines have finished.
func (r *Recorder) History() []Op {
	var out []Op
	for _, log := range r.logs {
		for _, op := range log {
			if op.Outcome != OutcomeAborted {
				out = append(out, op)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call < out[j].Call })
	return out
}

// Aborts counts the recorded aborted operations (for abort-rate
// reporting in E3/E7).
func (r *Recorder) Aborts() int {
	n := 0
	for _, log := range r.logs {
		for _, op := range log {
			if op.Outcome == OutcomeAborted {
				n++
			}
		}
	}
	return n
}

// Len returns the total number of recorded operations including
// aborted ones.
func (r *Recorder) Len() int {
	n := 0
	for _, log := range r.logs {
		n += len(log)
	}
	return n
}
