package linearizability

import (
	"testing"
)

// seqOps builds a purely sequential history from (kind, in, out,
// outcome) tuples: op i occupies [2i+1, 2i+2].
func seqOps(tuples ...[4]interface{}) []Op {
	ops := make([]Op, len(tuples))
	for i, t := range tuples {
		ops[i] = Op{
			Proc:    0,
			Call:    int64(2*i + 1),
			Return:  int64(2*i + 2),
			Kind:    t[0].(string),
			Input:   uint64(t[1].(int)),
			Output:  uint64(t[2].(int)),
			Outcome: t[3].(string),
		}
	}
	return ops
}

func TestCheckEmptyHistory(t *testing.T) {
	if !Check(StackModel(4), nil, 0).Ok {
		t.Fatal("empty history must be linearizable")
	}
}

func TestCheckSequentialStack(t *testing.T) {
	h := seqOps(
		[4]interface{}{"push", 1, 0, OutcomeOK},
		[4]interface{}{"push", 2, 0, OutcomeOK},
		[4]interface{}{"pop", 0, 2, OutcomeOK},
		[4]interface{}{"pop", 0, 1, OutcomeOK},
		[4]interface{}{"pop", 0, 0, OutcomeEmpty},
	)
	res := Check(StackModel(4), h, 0)
	if !res.Ok {
		t.Fatalf("legal sequential stack history rejected (states=%d)", res.States)
	}
	if len(res.Witness) != len(h) {
		t.Fatalf("witness length %d, want %d", len(res.Witness), len(h))
	}
}

func TestCheckRejectsWrongPopOrder(t *testing.T) {
	// A stack must pop 2 before 1 here; popping 1 first is FIFO, not
	// LIFO.
	h := seqOps(
		[4]interface{}{"push", 1, 0, OutcomeOK},
		[4]interface{}{"push", 2, 0, OutcomeOK},
		[4]interface{}{"pop", 0, 1, OutcomeOK},
	)
	if Check(StackModel(4), h, 0).Ok {
		t.Fatal("FIFO pop accepted by stack model")
	}
	// But the same shape is exactly what the queue model wants.
	hq := seqOps(
		[4]interface{}{"enq", 1, 0, OutcomeOK},
		[4]interface{}{"enq", 2, 0, OutcomeOK},
		[4]interface{}{"deq", 0, 1, OutcomeOK},
	)
	if !Check(QueueModel(4), hq, 0).Ok {
		t.Fatal("FIFO dequeue rejected by queue model")
	}
}

func TestCheckRejectsDuplicatePop(t *testing.T) {
	// The ABA signature (E8): one pushed value popped twice.
	h := seqOps(
		[4]interface{}{"push", 7, 0, OutcomeOK},
		[4]interface{}{"pop", 0, 7, OutcomeOK},
		[4]interface{}{"pop", 0, 7, OutcomeOK},
	)
	if Check(StackModel(4), h, 0).Ok {
		t.Fatal("duplicate pop accepted")
	}
}

func TestCheckRejectsPhantomValue(t *testing.T) {
	h := seqOps(
		[4]interface{}{"push", 1, 0, OutcomeOK},
		[4]interface{}{"pop", 0, 9, OutcomeOK},
	)
	if Check(StackModel(4), h, 0).Ok {
		t.Fatal("pop of never-pushed value accepted")
	}
}

func TestCheckRejectsBogusEmpty(t *testing.T) {
	// pop=empty strictly after a completed push with no intervening
	// pop cannot linearize.
	h := seqOps(
		[4]interface{}{"push", 1, 0, OutcomeOK},
		[4]interface{}{"pop", 0, 0, OutcomeEmpty},
	)
	if Check(StackModel(4), h, 0).Ok {
		t.Fatal("bogus empty accepted")
	}
}

func TestCheckRespectsFullCapacity(t *testing.T) {
	h := seqOps(
		[4]interface{}{"push", 1, 0, OutcomeOK},
		[4]interface{}{"push", 2, 0, OutcomeFull},
	)
	if !Check(StackModel(1), h, 0).Ok {
		t.Fatal("legal full report rejected")
	}
	if Check(StackModel(2), h, 0).Ok {
		t.Fatal("premature full report accepted")
	}
}

func TestCheckConcurrentOverlapUsesFlexibility(t *testing.T) {
	// Two overlapping pushes followed by pops that only linearize if
	// the second-invoked push linearized first.
	h := []Op{
		{Proc: 0, Call: 1, Return: 10, Kind: "push", Input: 1, Outcome: OutcomeOK},
		{Proc: 1, Call: 2, Return: 9, Kind: "push", Input: 2, Outcome: OutcomeOK},
		{Proc: 0, Call: 11, Return: 12, Kind: "pop", Output: 1, Outcome: OutcomeOK},
		{Proc: 0, Call: 13, Return: 14, Kind: "pop", Output: 2, Outcome: OutcomeOK},
	}
	if !Check(StackModel(4), h, 0).Ok {
		t.Fatal("valid reordering of concurrent pushes rejected")
	}
}

func TestCheckHonorsRealTimeOrder(t *testing.T) {
	// Non-overlapping pushes cannot be reordered: push(1) returned
	// before push(2) was invoked, so pops must see 2 then 1.
	h := []Op{
		{Proc: 0, Call: 1, Return: 2, Kind: "push", Input: 1, Outcome: OutcomeOK},
		{Proc: 1, Call: 3, Return: 4, Kind: "push", Input: 2, Outcome: OutcomeOK},
		{Proc: 0, Call: 5, Return: 6, Kind: "pop", Output: 1, Outcome: OutcomeOK},
		{Proc: 0, Call: 7, Return: 8, Kind: "pop", Output: 2, Outcome: OutcomeOK},
	}
	if Check(StackModel(4), h, 0).Ok {
		t.Fatal("real-time order violation accepted")
	}
}

func TestCheckDequeModel(t *testing.T) {
	// max=4, initial window: numLN=3 (one usable left slot at index
	// 1.. wait: numLN=3 means indices 0..2 LN, usable left pushes: 2).
	h := seqOps(
		[4]interface{}{"pushr", 1, 0, OutcomeOK},
		[4]interface{}{"pushl", 2, 0, OutcomeOK},
		[4]interface{}{"popr", 0, 1, OutcomeOK},
		[4]interface{}{"popl", 0, 2, OutcomeOK},
		[4]interface{}{"popl", 0, 0, OutcomeEmpty},
	)
	if !Check(DequeModel(4), h, 0).Ok {
		t.Fatal("legal deque history rejected")
	}
	// Wrong end: after pushr(1), pushl(2), popr must return 1 not 2.
	bad := seqOps(
		[4]interface{}{"pushr", 1, 0, OutcomeOK},
		[4]interface{}{"pushl", 2, 0, OutcomeOK},
		[4]interface{}{"popr", 0, 2, OutcomeOK},
	)
	if Check(DequeModel(4), bad, 0).Ok {
		t.Fatal("wrong-end pop accepted")
	}
}

func TestCheckDequeModelWindowDrift(t *testing.T) {
	// max=2 → numLN=2: exactly one usable left slot and one right.
	okHist := seqOps(
		[4]interface{}{"pushl", 1, 0, OutcomeOK},
		[4]interface{}{"pushl", 2, 0, OutcomeFull}, // left exhausted
		[4]interface{}{"pushr", 3, 0, OutcomeOK},
		[4]interface{}{"pushr", 4, 0, OutcomeFull}, // right exhausted
	)
	if !Check(DequeModel(2), okHist, 0).Ok {
		t.Fatal("drift-consistent full reports rejected")
	}
	// After popl the left slot is reusable.
	okHist2 := seqOps(
		[4]interface{}{"pushl", 1, 0, OutcomeOK},
		[4]interface{}{"popl", 0, 1, OutcomeOK},
		[4]interface{}{"pushl", 2, 0, OutcomeOK},
	)
	if !Check(DequeModel(2), okHist2, 0).Ok {
		t.Fatal("left slot not recycled by popl")
	}
	// But popr does NOT free a left slot (the window drifts).
	bad := seqOps(
		[4]interface{}{"pushl", 1, 0, OutcomeOK},
		[4]interface{}{"popr", 0, 1, OutcomeOK},
		[4]interface{}{"pushl", 2, 0, OutcomeOK}, // illegal: left still exhausted
	)
	if Check(DequeModel(2), bad, 0).Ok {
		t.Fatal("window drift not modelled")
	}
}

func TestCheckRegisterModel(t *testing.T) {
	h := seqOps(
		[4]interface{}{"read", 0, 5, OutcomeOK},
		[4]interface{}{"write", 7, 0, OutcomeOK},
		[4]interface{}{"read", 0, 7, OutcomeOK},
	)
	if !Check(RegisterModel(5), h, 0).Ok {
		t.Fatal("legal register history rejected")
	}
	bad := seqOps(
		[4]interface{}{"write", 7, 0, OutcomeOK},
		[4]interface{}{"read", 0, 5, OutcomeOK},
	)
	if Check(RegisterModel(5), bad, 0).Ok {
		t.Fatal("stale read accepted")
	}
}

func TestCheckRegisterCAS(t *testing.T) {
	cas := func(old, new uint64) uint64 { return old<<32 | new }
	h := []Op{
		{Call: 1, Return: 2, Kind: "cas", Input: cas(5, 6), Output: 1, Outcome: OutcomeOK},
		{Call: 3, Return: 4, Kind: "cas", Input: cas(5, 7), Output: 0, Outcome: OutcomeOK},
		{Call: 5, Return: 6, Kind: "read", Output: 6, Outcome: OutcomeOK},
	}
	if !Check(RegisterModel(5), h, 0).Ok {
		t.Fatal("legal CAS history rejected")
	}
	bad := []Op{
		{Call: 1, Return: 2, Kind: "cas", Input: cas(9, 6), Output: 1, Outcome: OutcomeOK},
	}
	if Check(RegisterModel(5), bad, 0).Ok {
		t.Fatal("impossible CAS success accepted")
	}
}

func TestCheckStateBudget(t *testing.T) {
	// A tiny budget must report exhaustion, not a verdict.
	h := make([]Op, 12)
	for i := range h {
		// All fully concurrent pushes: maximal search width.
		h[i] = Op{Proc: i, Call: 1, Return: 100, Kind: "push", Input: uint64(i), Outcome: OutcomeOK}
	}
	res := Check(StackModel(0), h, 3)
	if !res.Exhausted {
		t.Fatalf("expected exhaustion, got %+v", res)
	}
}

func TestCheckPanicsOnHugeHistory(t *testing.T) {
	h := make([]Op, MaxOps+1)
	for i := range h {
		h[i] = Op{Call: int64(2*i + 1), Return: int64(2*i + 2), Kind: "push", Outcome: OutcomeOK}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history did not panic")
		}
	}()
	Check(StackModel(0), h, 0)
}

func TestCheckSegmentedLongHistory(t *testing.T) {
	// 3000 sequential ops: segmentation must make this cheap.
	var h []Op
	ts := int64(1)
	depth := 0
	for i := 0; i < 1500; i++ {
		h = append(h, Op{Call: ts, Return: ts + 1, Kind: "push", Input: uint64(i), Outcome: OutcomeOK})
		ts += 2
		depth++
	}
	for depth > 0 {
		depth--
		h = append(h, Op{Call: ts, Return: ts + 1, Kind: "pop", Output: uint64(depth), Outcome: OutcomeOK})
		ts += 2
	}
	res := CheckSegmented(StackModel(0), h, 16, 0)
	if !res.Ok {
		t.Fatalf("segmented check rejected a legal history: %+v", res)
	}
}

func TestCheckSegmentedDetectsViolationAcrossSegments(t *testing.T) {
	var h []Op
	ts := int64(1)
	push := func(v int) {
		h = append(h, Op{Call: ts, Return: ts + 1, Kind: "push", Input: uint64(v), Outcome: OutcomeOK})
		ts += 2
	}
	pop := func(v int) {
		h = append(h, Op{Call: ts, Return: ts + 1, Kind: "pop", Output: uint64(v), Outcome: OutcomeOK})
		ts += 2
	}
	for i := 0; i < 40; i++ {
		push(i)
	}
	pop(39)
	pop(39) // duplicate: the ABA signature, far from the start
	res := CheckSegmented(StackModel(0), h, 8, 0)
	if res.Ok {
		t.Fatal("segmented check accepted a duplicate pop")
	}
}

func TestCheckSegmentedNoQuiescentCut(t *testing.T) {
	// All ops mutually concurrent and more of them than the segment
	// budget: the segmented checker must refuse to decide rather than
	// cut unsoundly.
	var h []Op
	for i := 0; i < 10; i++ {
		h = append(h, Op{Proc: i, Call: int64(i + 1), Return: 1000, Kind: "push", Input: uint64(i), Outcome: OutcomeOK})
	}
	res := CheckSegmented(StackModel(0), h, 4, 0)
	if !res.Exhausted {
		t.Fatalf("expected exhaustion on uncuttable history, got %+v", res)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(2)
	p := r.Invoke(0, "push", 5)
	r.Return(p, 0, OutcomeOK)
	p = r.Invoke(1, "pop", 0)
	r.Return(p, 5, OutcomeOK)
	p = r.Invoke(0, "pop", 0)
	r.Return(p, 0, OutcomeAborted)
	h := r.History()
	if len(h) != 2 {
		t.Fatalf("history length %d, want 2 (aborted op dropped)", len(h))
	}
	if r.Aborts() != 1 {
		t.Fatalf("aborts = %d, want 1", r.Aborts())
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if h[0].Call >= h[0].Return || h[1].Call >= h[1].Return {
		t.Fatal("clock stamps not increasing")
	}
	if h[0].Call > h[1].Call {
		t.Fatal("history not sorted by invocation")
	}
	if !Check(StackModel(4), h, 0).Ok {
		t.Fatal("recorded history not linearizable")
	}
}

func TestOpString(t *testing.T) {
	op := Op{Proc: 2, Call: 1, Return: 4, Kind: "pop", Output: 9, Outcome: OutcomeOK}
	if s := op.String(); s == "" {
		t.Fatal("empty op string")
	}
}
