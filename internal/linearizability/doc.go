// Package linearizability machine-checks the paper's safety condition
// (§1.1): an object execution is linearizable if every operation
// appears to take effect instantaneously at some point between its
// invocation and its response, consistently with the object's
// sequential specification.
//
// The package provides:
//
//   - Recorder: contention-free recording of concurrent histories
//     (per-process logs stamped by one global logical clock);
//   - Model: sequential specifications as pure functions over an
//     encoded immutable state (stack, queue and register models are
//     built in);
//   - Check: a Wing & Gong / WGL-style exhaustive search for a
//     legal linearization, with memoization on (linearized-set,
//     state) pairs. Exponential in the worst case, so intended for
//     the short histories the tests and experiment E11 record.
//
// Aborted weak operations (the paper's ⊥) take no effect by
// definition, so the Recorder drops them from the history: an
// abortable object is linearizable iff its non-⊥ subhistory is.
package linearizability
