package analysis

import (
	"go/ast"
	"go/types"
)

// TaggedWord enforces the §2.2 sequence-tag discipline on the pooled
// register types: a memory.TaggedRef or memory.TaggedRefs — and any
// value embedding one — may only be initialized in place (Init, or the
// New* constructors, which hand back pointers) and mutated through
// CAS/Write on the register itself. Copying such a value by
// assignment, argument passing, return, range, send, or composite
// literal forks the atomic word: the copy's tag stream diverges from
// the original's and a recycled-handle CAS can then succeed against a
// stale snapshot, which is exactly the ABA the tags exist to prevent.
//
// The home package (internal/memory) is exempt from the
// direct-overwrite rule for construction, but not from the copy rule:
// even there a register is never copied, only built in place.
var TaggedWord = &Analyzer{
	Name: "taggedword",
	Doc:  "report copies and direct overwrites of memory.TaggedRef/TaggedRefs registers",
	Run:  runTaggedWord,
}

// taggedHomePkg is the package owning the register types.
const taggedHomePkg = "internal/memory"

// taggedTypeNames are the register types whose copy breaks the tag
// discipline.
var taggedTypeNames = []string{"TaggedRef", "TaggedRefs"}

func runTaggedWord(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if copiesTagged(pass.Info, rhs) {
						pass.Reportf(rhs.Pos(), "assignment copies a %s register; build it in place with Init", taggedWhat(pass.Info, rhs))
					}
				}
				for _, lhs := range n.Lhs {
					if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
						if containsTagged(exprType(pass.Info, star)) {
							pass.Reportf(lhs.Pos(), "overwrite of a %s register through a pointer; registers advance only by CAS (or Init before sharing)", taggedWhat(pass.Info, star))
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copiesTagged(pass.Info, v) {
						pass.Reportf(v.Pos(), "variable initialization copies a %s register; build it in place with Init", taggedWhat(pass.Info, v))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if copiesTagged(pass.Info, arg) {
						pass.Reportf(arg.Pos(), "call passes a %s register by value; pass a pointer", taggedWhat(pass.Info, arg))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if copiesTagged(pass.Info, r) {
						pass.Reportf(r.Pos(), "return copies a %s register; return a pointer", taggedWhat(pass.Info, r))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && containsTagged(exprType(pass.Info, n.Value)) {
					pass.Reportf(n.Value.Pos(), "range copies %s registers; range over indices instead", taggedWhat(pass.Info, n.Value))
				}
			case *ast.SendStmt:
				if copiesTagged(pass.Info, n.Value) {
					pass.Reportf(n.Value.Pos(), "send copies a %s register; send a pointer", taggedWhat(pass.Info, n.Value))
				}
			case *ast.KeyValueExpr:
				if copiesTagged(pass.Info, n.Value) {
					pass.Reportf(n.Value.Pos(), "composite literal copies a %s register; build it in place with Init", taggedWhat(pass.Info, n.Value))
				}
			}
			return true
		})
	}
	return nil
}

// copiesTagged reports whether evaluating e copies an existing tagged
// register: its type embeds one and it denotes existing storage (an
// identifier, selector, index or dereference) rather than a freshly
// constructed value (composite literal or call result, which are the
// constructors' business).
func copiesTagged(info *types.Info, e ast.Expr) bool {
	if !containsTagged(exprType(info, e)) {
		return false
	}
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// taggedWhat names the offending register type for the diagnostic.
func taggedWhat(info *types.Info, e ast.Expr) string {
	t := exprType(info, e)
	for _, name := range taggedTypeNames {
		if typeHasTagged(t, name) {
			return name
		}
	}
	return "tagged"
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// containsTagged reports whether a value of type t physically contains
// a tagged register (pointers, slices and maps reference rather than
// contain, so they are fine to copy).
func containsTagged(t types.Type) bool {
	for _, name := range taggedTypeNames {
		if typeHasTagged(t, name) {
			return true
		}
	}
	return false
}

func typeHasTagged(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if typeNamed(t, taggedHomePkg, name) {
		return true
	}
	switch t := t.(type) {
	case *types.Named:
		return typeHasTagged(t.Underlying(), name)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if typeHasTagged(t.Field(i).Type(), name) {
				return true
			}
		}
	case *types.Array:
		return typeHasTagged(t.Elem(), name)
	}
	return false
}
