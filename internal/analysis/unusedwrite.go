package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnusedWrite reports straight-line dead stores: a value assigned to a
// local variable that is overwritten, or abandoned by a return in the
// same block, before any read. It is a deliberately conservative,
// syntax-level subset of x/tools' SSA-based pass of the same name
// (carried in-tree because the module builds offline; see the package
// comment): a variable is skipped entirely if it is address-taken,
// captured by a closure, mentioned in a defer, or a named result, and
// the forward scan stops at the first branchy statement. What it does
// flag is therefore a real dead store on every path.
var UnusedWrite = &Analyzer{
	Name: "unusedwrite",
	Doc:  "report values written to locals and never read (straight-line subset)",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, ftype = fn.Body, fn.Type
			case *ast.FuncLit:
				body, ftype = fn.Body, fn.Type
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFuncWrites(pass, ftype, body)
			return true
		})
	}
	return nil
}

func checkFuncWrites(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	skip := collectUncheckableVars(pass, ftype, body)
	if skip == nil {
		return // function uses goto; give up on the whole body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // literals get their own checkFuncWrites visit
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlockWrites(pass, ftype, body, block, skip)
		return true
	})
}

// collectUncheckableVars gathers the objects the straight-line check
// must not reason about: address-taken variables, variables used inside
// function literals or defers (whose execution points the scan cannot
// see), and named results (read by every return). A nil map means the
// function is entirely uncheckable (it contains a goto or label).
func collectUncheckableVars(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	skip := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					skip[obj] = true
				}
			}
		}
	}
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				bad = true
			}
		case *ast.LabeledStmt:
			bad = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						skip[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			markIdentObjects(pass, n.Body, skip)
		case *ast.DeferStmt:
			markIdentObjects(pass, n, skip)
		case *ast.GoStmt:
			markIdentObjects(pass, n, skip)
		}
		return true
	})
	if bad {
		return nil
	}
	return skip
}

func markIdentObjects(pass *Pass, n ast.Node, set map[types.Object]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				set[obj] = true
			}
		}
		return true
	})
}

// checkBlockWrites runs the straight-line scan over one statement list.
func checkBlockWrites(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, block *ast.BlockStmt, skip map[types.Object]bool) {
	for i, stmt := range block.List {
		obj, id := simpleWrite(pass, stmt)
		if obj == nil || skip[obj] {
			continue
		}
		// Only reason about variables declared in the function being
		// checked: a write to a captured outer variable is visible to
		// the enclosing function and is the outer scan's business.
		if obj.Pos() < ftype.Pos() || obj.Pos() > body.End() {
			continue
		}
	scan:
		for _, later := range block.List[i+1:] {
			switch s := later.(type) {
			case *ast.AssignStmt:
				if usesObject(pass, s.Rhs, obj) {
					break scan
				}
				overwrites := false
				for _, lhs := range s.Lhs {
					if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						who := pass.Info.Uses[lid]
						if who == nil {
							who = pass.Info.Defs[lid]
						}
						if who == obj && s.Tok == token.ASSIGN {
							overwrites = true
						} else if who == obj {
							break scan // += etc. reads first
						}
					} else if usesObject(pass, lhs, obj) {
						break scan
					}
				}
				if overwrites {
					line := pass.Fset.Position(s.Pos()).Line
					pass.Reportf(id.Pos(), "value written to %s is never read (overwritten at line %d)", id.Name, line)
					break scan
				}
			case *ast.ReturnStmt:
				if !usesObject(pass, s, obj) {
					line := pass.Fset.Position(s.Pos()).Line
					pass.Reportf(id.Pos(), "value written to %s is never read (function returns at line %d)", id.Name, line)
				}
				break scan
			case *ast.ExprStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt, *ast.DeclStmt:
				if usesObject(pass, s, obj) {
					break scan
				}
			default:
				break scan // control flow: the scan cannot follow
			}
		}
	}
}

// simpleWrite recognizes `x = expr` / `x := expr` with a single plain
// identifier target naming a checkable local, returning its object.
func simpleWrite(pass *Pass, stmt ast.Stmt) (types.Object, *ast.Ident) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil, nil
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
		return nil, nil // fields, package-level vars: other goroutines may read
	}
	return v, id
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pass *Pass, n any, obj types.Object) bool {
	found := false
	visit := func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	}
	switch n := n.(type) {
	case ast.Node:
		ast.Inspect(n, visit)
	case []ast.Expr:
		for _, e := range n {
			ast.Inspect(e, visit)
		}
	}
	return found
}
