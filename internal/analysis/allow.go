package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// AllowLintName is the name under which problems with the allow
// comments themselves are reported.
const AllowLintName = "allowlint"

// allowPrefix is the suppression comment marker. The full form is
//
//	//contlint:allow <pass> <reason...>
//
// and it silences diagnostics of exactly <pass> raised on the comment's
// own line or on the line directly below it (so it works both as a
// trailing comment and as an annotation above the offending statement).
const allowPrefix = "contlint:allow"

// An allow is one parsed suppression comment.
type allow struct {
	pos    token.Pos // of the comment
	file   string
	line   int
	pass   string
	reason string
	used   bool
}

type allowSet struct {
	all []*allow
	// byKey indexes file:line -> allows covering that line.
	byKey map[string][]*allow
}

func allowKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// collectAllows parses every //contlint:allow comment in pkg.
func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{byKey: make(map[string][]*allow)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				pass, reason, _ := strings.Cut(rest, " ")
				posn := pkg.Fset.Position(c.Pos())
				a := &allow{
					pos:    c.Pos(),
					file:   posn.Filename,
					line:   posn.Line,
					pass:   pass,
					reason: strings.TrimSpace(reason),
				}
				s.all = append(s.all, a)
				for _, line := range []int{a.line, a.line + 1} {
					k := allowKey(a.file, line)
					s.byKey[k] = append(s.byKey[k], a)
				}
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by an allow comment for its
// pass, marking the comment used.
func (s *allowSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	posn := fset.Position(d.Pos)
	hit := false
	for _, a := range s.byKey[allowKey(posn.Filename, posn.Line)] {
		if a.pass == d.Analyzer {
			a.used = true
			hit = true
		}
	}
	return hit
}

// lint reports problems with the allow comments themselves: unknown
// pass names, missing reasons, and — for passes that actually ran —
// stale comments that suppressed nothing. ran holds the names of the
// passes that were executed.
func (s *allowSet) lint(ran map[string]bool) []Diagnostic {
	known := knownPassNames()
	var diags []Diagnostic
	for _, a := range s.all {
		switch {
		case a.pass == "":
			diags = append(diags, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowLintName,
				Message:  "malformed allow comment: want //contlint:allow <pass> <reason>",
			})
		case !known[a.pass]:
			diags = append(diags, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowLintName,
				Message:  "allow comment names unknown pass " + a.pass,
			})
		case a.reason == "":
			diags = append(diags, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowLintName,
				Message:  "allow comment for " + a.pass + " is missing a reason",
			})
		case ran[a.pass] && !a.used:
			diags = append(diags, Diagnostic{
				Pos:      a.pos,
				Analyzer: AllowLintName,
				Message:  "stale allow comment: " + a.pass + " reports nothing here; delete it",
			})
		}
	}
	return diags
}
