package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load loads and type-checks the non-test compilation of every package
// matching the go-list patterns (e.g. "./..."), resolving imports from
// compiled export data. It shells out to the go tool — contlint is a
// development-time checker and the toolchain is always present where it
// runs — but performs all parsing and type checking in-process so the
// passes see full syntax plus types.
//
// Offline note (see the package comment): this is the stdlib-only
// stand-in for golang.org/x/tools/go/packages.Load.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goListTargets(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	exports, err := goListExports(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := CheckFiles(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir (every .go file in it,
// not recursing), resolving its imports from export data produced by
// the go tool. Unlike Load it does not require dir to be visible to
// `go list` — golden-test fixtures live under testdata, which the go
// tool ignores — so the package path is synthesized from importPath.
func LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	imp := ExportImporter(fset, func(path string) (string, bool) {
		if f, ok := exports[path]; ok {
			return f, ok
		}
		// Resolve lazily so fixtures may import any std or module
		// package without pre-declaring it.
		more, err := goListExports(dir, []string{path})
		if err != nil {
			return "", false
		}
		for k, v := range more {
			exports[k] = v
		}
		f, ok := exports[path]
		return f, ok
	})
	return CheckFiles(fset, imp, importPath, dir, files)
}

// CheckFiles parses and type-checks one package from explicit file
// names, resolving imports through imp. It is the shared back end of
// Load, LoadDir and cmd/contlint's vet-tool mode.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("%s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ExportImporter wraps the standard gc export-data importer with a
// lookup over files named by the resolve function (an export-file map
// from `go list -export` in standalone mode, the vet config's
// PackageFile map in vet-tool mode).
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Error      *struct{ Err string }
}

// goListTargets enumerates the packages matching patterns.
func goListTargets(dir string, patterns []string) ([]*listedPackage, error) {
	return goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...))
}

// goListExports builds (if needed) and locates export data for every
// dependency of the packages matching patterns, including the packages
// themselves.
func goListExports(dir string, patterns []string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,Error"}, patterns...))
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, errBuf.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// FormatDiagnostic renders d the way the multichecker prints it:
// file:line:col: [pass] message.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	posn := fset.Position(d.Pos)
	return posn.String() + ": [" + d.Analyzer + "] " + d.Message
}
