package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the passes port verbatim
// if the module ever vendors x/tools (see the package comment).
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //contlint:allow comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, attributed to the pass that raised it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Suite returns the full ordered contlint suite. allowlint (the
// suppression-comment linter) is not listed: RunPackage applies it
// whenever the whole suite runs, because staleness is only meaningful
// once every suppressible pass has had its chance to be suppressed.
func Suite() []*Analyzer {
	return []*Analyzer{
		MixedAtomic,
		TaggedWord,
		PidFlow,
		RetryLoop,
		BenchRegistry,
		UnusedWrite,
		Nilness,
	}
}

// knownPassNames returns every pass name an allow comment may cite.
func knownPassNames() map[string]bool {
	m := map[string]bool{AllowLintName: true}
	for _, a := range Suite() {
		m[a.Name] = true
	}
	return m
}

// RunPackage runs the given passes over pkg, applies //contlint:allow
// suppression, and returns the surviving diagnostics sorted by
// position. When lintAllows is set (the multichecker's mode, i.e. the
// full suite is running) stale, unknown-pass and reasonless allow
// comments are reported as allowlint diagnostics; single-pass golden
// tests leave it off so an allow aimed at another pass is not
// misreported as stale.
func RunPackage(pkg *Package, passes []*Analyzer, lintAllows bool) ([]Diagnostic, error) {
	allows := collectAllows(pkg)

	var kept []Diagnostic
	ran := make(map[string]bool)
	for _, a := range passes {
		ran[a.Name] = true
		p := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report: func(d Diagnostic) {
				if allows.suppresses(pkg.Fset, d) {
					return
				}
				kept = append(kept, d)
			},
		}
		if err := a.Run(p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	if lintAllows {
		kept = append(kept, allows.lint(ran)...)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// walkStack walks the tree rooted at root, invoking fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // pruned: Inspect sends no matching pop
		}
		stack = append(stack, n)
		return true
	})
}

// isPkgPath reports whether path is exactly want or ends in "/"+want,
// letting passes match both the real module layout and golden-test
// fixture packages.
func isPkgPath(path, want string) bool {
	if path == want {
		return true
	}
	n, w := len(path), len(want)
	return n > w && path[n-w-1] == '/' && path[n-w:] == want
}

// typeNamed reports whether t (after unwrapping aliases and generic
// instantiation) is the named type pkgPath.name, matching pkgPath via
// isPkgPath.
func typeNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Name() == name && isPkgPath(obj.Pkg().Path(), pkgPath)
}
