package analysis

import (
	"go/ast"
	"strings"
)

// RetryLoop keeps Figure 2's unbounded retry construction in one
// place: outside the allowlisted engines, a naked `for {}` whose body
// retries a weak attempt (a CAS, or a Try* operation) must be written
// as core.Retry / core.RetryBudget / core.RetryDeadline over a try
// closure. That is what makes WithRetryPolicy pacing and ErrExhausted
// graceful degradation (PR 7) universal properties of the catalog
// instead of per-backend accidents: a hand-rolled spin can neither be
// paced by a contention manager nor shed under a budget.
//
// Allowlisted: internal/core (it implements the loop), internal/memory
// (pool carving spins below the retry abstraction) and internal/set
// (the lock-free list engine, whose search/helping loops are integral
// to the Harris algorithm and are bounded by list length, not by
// contention alone).
//
// Loops that block on channels (select or receive) are event loops,
// not retry spins, and are ignored.
var RetryLoop = &Analyzer{
	Name: "retryloop",
	Doc:  "report naked unbounded CAS/Try retry loops that bypass core.Retry",
	Run:  runRetryLoop,
}

// retryLoopExempt lists the package-path suffixes allowed to hand-roll
// retry loops.
var retryLoopExempt = []string{"internal/core", "internal/memory", "internal/set"}

func runRetryLoop(pass *Pass) error {
	for _, suffix := range retryLoopExempt {
		if isPkgPath(pass.Pkg.Path(), suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
				return true
			}
			if name := retrySpinCallee(loop.Body); name != "" {
				pass.Reportf(loop.Pos(), "unbounded retry loop around %s; use core.Retry/RetryBudget so retry policies and graceful degradation apply", name)
			}
			return true
		})
	}
	return nil
}

// retrySpinCallee scans a loop body (not descending into nested
// function literals or nested for-loops, which are checked on their
// own) and returns the name of the first weak-attempt call that makes
// the loop a retry spin, or "" if the loop blocks on channels or makes
// no such call.
func retrySpinCallee(body *ast.BlockStmt) string {
	name := ""
	blocks := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SelectStmt:
			blocks = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				blocks = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isWeakAttemptName(sel.Sel.Name) && name == "" {
					name = sel.Sel.Name
				}
			} else if id, ok := n.Fun.(*ast.Ident); ok {
				if isWeakAttemptName(id.Name) && name == "" {
					name = id.Name
				}
			}
		}
		return true
	})
	if blocks {
		return ""
	}
	return name
}

// isWeakAttemptName reports whether a callee name denotes a weak
// attempt in the paper's sense: a CAS on a register, or a Try*
// operation exposing the abortable rung.
func isWeakAttemptName(name string) bool {
	return name == "CAS" ||
		strings.HasPrefix(name, "CompareAndSwap") ||
		(strings.HasPrefix(name, "Try") && len(name) > len("Try"))
}
