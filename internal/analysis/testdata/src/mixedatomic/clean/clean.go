// Package clean holds the disciplined counterparts of the mixedatomic
// fixtures: the pass must stay silent on all of it.
package clean

import "sync/atomic"

type counters struct {
	hits  uint64
	calls atomic.Uint64
	slots [4]atomic.Int64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	c.calls.Add(1)
}

func read(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits) + c.calls.Load()
}

func reset(c *counters) {
	atomic.StoreUint64(&c.hits, 0)
	c.calls.Store(0)
}

func drain(c *counters) int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].Load()
	}
	return sum
}

func borrow(c *counters) *atomic.Uint64 {
	return &c.calls
}
