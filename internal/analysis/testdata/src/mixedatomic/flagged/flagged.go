// Package flagged exercises every mixedatomic diagnostic.
package flagged

import "sync/atomic"

type counters struct {
	hits  uint64
	calls atomic.Uint64
	slots [4]atomic.Int64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

func readPlain(c *counters) uint64 {
	return c.hits // want `plain read of field hits, which is accessed with sync/atomic elsewhere`
}

func writePlain(c *counters) {
	c.hits = 0 // want `plain write of field hits, which is accessed with sync/atomic elsewhere`
}

func incPlain(c *counters) {
	c.hits++ // want `plain write of field hits, which is accessed with sync/atomic elsewhere`
}

func fork(c *counters) atomic.Uint64 {
	return c.calls // want `atomic field calls copied; use its methods or take its address`
}

func clobber(c *counters) {
	c.calls = atomic.Uint64{} // want `atomic field calls reassigned; use its Store/CAS methods`
}

func drain(c *counters) int64 {
	var sum int64
	for _, s := range c.slots { // want `range copies atomic field slots; range over indices and use the methods`
		sum += s.Load()
	}
	return sum
}
