// Package bench (fixture) holds well-formed registrations: dense ids
// from E1, gates naming their own experiment, Title and Run present.
// The pass must stay silent on all of it.
package bench

type Experiment struct {
	ID    string
	Title string
	Gate  string
	Run   func()
}

func register(e Experiment) {}

func runNothing() {}

func init() {
	register(Experiment{ID: "E1", Title: "first", Run: runNothing})
	register(Experiment{ID: "E2", Title: "second", Run: runNothing, Gate: "cmd/slogate -exp E2"})
	register(Experiment{ID: "E3", Title: "third", Run: runNothing})
}
