// Package bench (fixture) exercises every benchregistry diagnostic.
package bench

// Experiment mirrors the real registry's shape closely enough for the
// pass, which matches the register call and the literal's field names.
type Experiment struct {
	ID    string
	Title string
	Gate  string
	Run   func()
}

func register(e Experiment) {}

func runNothing() {}

func init() {
	register(Experiment{ID: "E1", Title: "first", Run: runNothing})
	register(Experiment{ID: "E2", Title: "second", Run: runNothing, Gate: "cmd/slogate -exp E2"})
	register(Experiment{ID: "E1", Title: "clash", Run: runNothing})                                   // want `duplicate experiment id E1 \(already registered at .*\); allocate the next free id`
	register(Experiment{ID: "e9", Title: "bad id", Run: runNothing})                                  // want `experiment ID "e9" is malformed: ids look like E7 \(E then a positive number\)`
	register(Experiment{ID: "E7", Title: "gap", Run: runNothing})                                     // want `experiment id E7 leaves a gap: ids are allocated densely and the next free id is E5`
	register(Experiment{ID: "E3", Title: "wrong gate", Run: runNothing, Gate: "cmd/slogate -exp E2"}) // want `experiment E3's Gate is "cmd/slogate -exp E2"; the gate command for an experiment is "cmd/slogate -exp E3"`
	register(Experiment{Title: "anonymous", Run: runNothing})                                         // want `experiment registration has no ID field`
	register(Experiment{ID: "E4"})                                                                    // want `experiment registration has no Run function; it can be listed but never executed` `experiment registration has no Title`
	register(Experiment{ID: "E" + "5", Title: "computed", Run: runNothing})                           // want `experiment ID must be a string literal, not a computed value`
}
