// Package flagged exercises every pidflow diagnostic.
package flagged

type backend struct{}

func (b *backend) Push(pid int, v uint64) error { return nil }

func workerID() int { return 0 }

func drop(b *backend, pid int, v uint64) error {
	return b.Push(0, v) // want `argument to Push's pid parameter is not the caller's pid; pass it through unmodified`
}

func rederive(b *backend, pid int) {
	pid = workerID() // want `pid is reassigned; process identity must flow through unmodified`
	_ = b.Push(pid, 1)
}

func bump(pid int) {
	pid++ // want `pid is reassigned; process identity must flow through unmodified`
}

func shadow(pid int) int {
	{
		pid := 0 // want `pid is shadowed; process identity must flow through unmodified`
		_ = pid
	}
	return pid
}

func declareShadow(pid int) {
	if pid > 0 {
		var pid int // want `pid is shadowed; process identity must flow through unmodified`
		_ = pid
	}
}
