// Package clean holds the blessed pid-plumbing shapes: the pid reaches
// every pid-taking callee as-is, and spawned goroutines mint their own
// pid parameter. The pass must stay silent on all of it.
package clean

type backend struct{}

func (b *backend) Push(pid int, v uint64) error { return nil }

func forward(b *backend, pid int, v uint64) error {
	return b.Push(pid, v)
}

func nest(b *backend, pid int) {
	done := make(chan struct{})
	go func(pid int) {
		_ = b.Push(pid, 1)
		close(done)
	}(pid)
	<-done
}

func derived(b *backend, pid int) error {
	// Deriving OTHER values from pid is fine; only the identity itself
	// must flow unmodified.
	v := uint64(pid) * 2
	return b.Push(pid, v)
}
