// Package flagged exercises the retryloop diagnostics.
package flagged

import "sync/atomic"

type node struct{ next *node }

type stack struct{ top atomic.Pointer[node] }

func push(s *stack, n *node) {
	for { // want `unbounded retry loop around CompareAndSwap; use core.Retry/RetryBudget so retry policies and graceful degradation apply`
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			return
		}
	}
}

type weak interface{ TryPush(v uint64) error }

func pushAll(w weak, v uint64) {
	for { // want `unbounded retry loop around TryPush; use core.Retry/RetryBudget so retry policies and graceful degradation apply`
		if w.TryPush(v) == nil {
			return
		}
	}
}
