// Package clean holds the loop shapes retryloop must not flag:
// bounded retries, event loops that block on channels, and spins with
// no weak attempt in them.
package clean

import "sync/atomic"

type counter struct{ v atomic.Uint64 }

func bounded(c *counter) bool {
	for i := 0; i < 8; i++ {
		cur := c.v.Load()
		if c.v.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
	return false
}

func eventLoop(c *counter, ch chan uint64) {
	for {
		v, ok := <-ch
		if !ok {
			return
		}
		if c.v.CompareAndSwap(c.v.Load(), v) {
			continue
		}
	}
}

func busyWork(c *counter, n int) {
	for {
		if c.v.Load() > uint64(n) {
			return
		}
		c.v.Add(1)
	}
}
