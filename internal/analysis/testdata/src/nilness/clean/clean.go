// Package clean holds nil-branch shapes the conservative nilness check
// must not flag: repairs before use, nil-safe map reads, and branches
// that close over or take the address of the tested variable.
package clean

type box struct{ n int }

func repaired(p *box) int {
	if p == nil {
		p = &box{}
		return p.n
	}
	return p.n
}

func mapRead(m map[int]int) int {
	if m == nil {
		return m[1]
	}
	return m[1]
}

func rebound(p *box, fill func(**box)) int {
	if p == nil {
		fill(&p)
		return p.n
	}
	return p.n
}

func guarded(p *box) int {
	if p != nil {
		return p.n
	}
	return 0
}
