// Package flagged exercises the nilness diagnostics.
package flagged

type box struct{ n int }

func deref(p *box) int {
	if p == nil {
		return p.n // want `p is nil in this branch; selecting through it panics`
	}
	return p.n
}

func star(p *box) box {
	if nil == p {
		return *p // want `p is nil in this branch; dereferencing it panics`
	}
	return *p
}

func call(f func() int) int {
	if f == nil {
		return f() // want `f is nil in this branch; calling it panics`
	}
	return f()
}

func index(s []int) int {
	if s != nil {
		return s[0]
	} else {
		return s[0] // want `s is nil in this branch; indexing it panics`
	}
}
