// Package clean holds the blessed tagged-register idioms: build in
// place with Init, advance by CAS, share by pointer. The pass must
// stay silent on all of it.
package clean

import "repro/internal/memory"

type slot struct {
	reg memory.TaggedRef[uint64]
}

func initSlot(s *slot, pool *memory.Pool[uint64]) {
	s.reg.Init(pool, memory.PackTagged(memory.NilHandle, 0), nil)
}

func advance(s *slot, h memory.Handle) bool {
	old := s.reg.Read()
	return s.reg.CAS(old, old.Next(h))
}

func borrow(s *slot) *memory.TaggedRef[uint64] {
	return &s.reg
}

func fresh(pool *memory.Pool[uint64]) *memory.TaggedRef[uint64] {
	return memory.NewTaggedRef(pool, memory.PackTagged(memory.NilHandle, 0))
}

func words(s *slot) (memory.TaggedVal, memory.TaggedVal) {
	v := s.reg.Read()
	return v, v.Next(memory.NilHandle)
}
