// Package flagged exercises every taggedword diagnostic.
package flagged

import "repro/internal/memory"

type slot struct {
	reg memory.TaggedRef[uint64]
}

func fork(s *slot) memory.TaggedRef[uint64] {
	cp := s.reg // want `assignment copies a TaggedRef register; build it in place with Init`
	return cp   // want `return copies a TaggedRef register; return a pointer`
}

func overwrite(p, q *memory.TaggedRef[uint64]) {
	*p = *q // want `overwrite of a TaggedRef register through a pointer` `assignment copies a TaggedRef register`
}

func consume(r memory.TaggedRef[uint64]) {}

func pass(s *slot) {
	consume(s.reg) // want `call passes a TaggedRef register by value; pass a pointer`
}

func ship(s *slot, ch chan memory.TaggedRef[uint64]) {
	ch <- s.reg // want `send copies a TaggedRef register; send a pointer`
}

func box(s *slot) slot {
	return slot{reg: s.reg} // want `composite literal copies a TaggedRef register; build it in place with Init`
}

var spare memory.TaggedRef[uint64]

func initCopy(s *slot) {
	var dup = s.reg // want `variable initialization copies a TaggedRef register; build it in place with Init`
	spare = dup     // want `assignment copies a TaggedRef register; build it in place with Init`
}
