// Package clean holds writes the straight-line unusedwrite check must
// not flag: reads before overwrite, address-taken and closure-captured
// variables, named results, and accumulating assignments.
package clean

func readFirst() int {
	x := 1
	y := x + 1
	x = y
	return x
}

func addressTaken() int {
	x := 1
	p := &x
	x = 2
	return *p
}

func captured() func() int {
	x := 1
	f := func() int { return x }
	x = 2
	return f
}

func named() (n int) {
	n = 3
	return
}

func accumulate(vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}
