// Package flagged exercises the unusedwrite diagnostics.
package flagged

func overwritten() int {
	x := 1 // want `value written to x is never read \(overwritten at line \d+\)`
	x = 2
	return x
}

func sink(int) {}

func abandoned(y int) int {
	z := y + 1
	sink(z)
	z = y * 2 // want `value written to z is never read \(function returns at line \d+\)`
	return y
}

func midBlock(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	total = 0 // want `value written to total is never read \(overwritten at line \d+\)`
	total = len(vals)
	return total
}
