// Package mixed exercises the //contlint:allow suppression comments:
// a correct allow, an allow naming the wrong pass, an allow naming an
// unknown pass, one missing its reason, and one malformed. The direct
// test in allow_test.go asserts exactly which diagnostics survive.
package mixed

import "sync/atomic"

type counters struct {
	a uint64
	b uint64
	c uint64
	d uint64
}

func touch(x *counters) {
	atomic.AddUint64(&x.a, 1)
	atomic.AddUint64(&x.b, 1)
	atomic.AddUint64(&x.c, 1)
	atomic.AddUint64(&x.d, 1)
}

// Suppressed: the allow names the pass that fires here.
//
//contlint:allow mixedatomic fixture exercising suppression
func readA(x *counters) uint64 { return x.a }

// Not suppressed: the allow names a different pass, and is stale for it.
//
//contlint:allow retryloop wrong pass for this line
func readB(x *counters) uint64 { return x.b }

// Not suppressed: unknown pass names never match anything.
//
//contlint:allow nosuchpass unknown pass names fail the allow linter
func readC(x *counters) uint64 { return x.c }

// Suppressed, but the missing reason is itself a finding.
//
//contlint:allow mixedatomic
func readD(x *counters) uint64 { return x.d }

//contlint:allow
func malformed() {}
