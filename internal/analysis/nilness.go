package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness reports dereferences of a variable inside the very branch
// whose condition proved it nil: the body of `if x == nil`, or the
// else-arm of `if x != nil`. It is a deliberately conservative,
// syntax-level subset of x/tools' SSA-based nilness (carried in-tree
// because the module builds offline; see the package comment): the
// branch is skipped as soon as it reassigns or takes the address of x,
// so a surviving report means the dereference really sees nil.
//
// Flagged uses are the ones that panic on nil: selecting through a
// pointer, calling a method or function value, dereferencing, and
// indexing a slice or assigning through a map/slice index.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "report dereferences in branches where the condition proved the value nil (straight-line subset)",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				return true
			}
			obj, eq := nilComparison(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			if eq {
				checkNilBranch(pass, ifs.Body, obj)
			} else if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				checkNilBranch(pass, els, obj)
			}
			return true
		})
	}
	return nil
}

// nilComparison matches `x == nil` / `nil == x` (eq true) and
// `x != nil` / `nil != x` (eq false) over a plain identifier x of a
// nilable type, returning x's object.
func nilComparison(pass *Pass, cond ast.Expr) (obj types.Object, eq bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x := bin.X
	if isNilIdent(pass, bin.X) {
		x = bin.Y
	} else if !isNilIdent(pass, bin.Y) {
		return nil, false
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return v, bin.Op == token.EQL
	}
	return nil, false
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch flags panicking uses of obj in a branch where it is
// known nil, unless the branch also reassigns it, takes its address or
// closes over it (any of which invalidates the straight-line fact).
func checkNilBranch(pass *Pass, body *ast.BlockStmt, obj types.Object) {
	invalidated := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if pass.Info.Uses[id] == obj || (pass.Info.Defs[id] != nil && id.Name == obj.Name()) {
						invalidated = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					invalidated = true
				}
			}
		case *ast.FuncLit:
			if usesObject(pass, n, obj) {
				invalidated = true
			}
			return false
		}
		return !invalidated
	})
	if invalidated {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				if derefSelector(pass, n) {
					pass.Reportf(n.Pos(), "%s is nil in this branch; selecting through it panics", obj.Name())
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil in this branch; dereferencing it panics", obj.Name())
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil in this branch; calling it panics", obj.Name())
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				if indexPanicsOnNil(pass, n) {
					pass.Reportf(n.Pos(), "%s is nil in this branch; indexing it panics", obj.Name())
				}
			}
		}
		return true
	})
}

// derefSelector reports whether sel.X's nilness makes the selection
// panic: field or method access through a nil pointer, or a method
// call on a nil interface. (Methods with pointer receivers that
// tolerate nil are beyond a syntax-level check; selecting a FIELD
// through nil always panics, and calling through a nil interface
// always panics.)
func derefSelector(pass *Pass, sel *ast.SelectorExpr) bool {
	v, isVar := pass.Info.Uses[sel.Sel].(*types.Var)
	if isVar && v.IsField() {
		return true
	}
	// Method value or call: panics when the receiver word itself is
	// the nil interface.
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	_, isIface := tv.Type.Underlying().(*types.Interface)
	return isIface
}

// indexPanicsOnNil reports whether n indexes a nil value in a way that
// panics: slice indexing always does; map reads yield zero values and
// are left alone (map writes through nil also panic, but recognizing
// the assignment context is not worth the false-positive risk here).
func indexPanicsOnNil(pass *Pass, n *ast.IndexExpr) bool {
	tv, ok := pass.Info.Types[n.X]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}
