package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
)

// BenchRegistry checks internal/bench's experiment registrations
// statically, where `register` today can only panic at init time (the
// E10/E11 id clash of PR 1 shipped silently as E15/E16 precisely
// because nothing ran the registering binary). Over all
// register(Experiment{...}) calls in the package it enforces:
//
//   - ID is a string literal matching E<n> with n >= 1 — ids must be
//     greppable, so no computed ids;
//   - ids are unique across the package;
//   - ids are contiguous from E1 (an id beyond the next free number
//     means a gap: EXPERIMENTS.md allocates ids densely, so a gap is a
//     typo or a collision dodge);
//   - a non-empty Gate names its own experiment: exactly
//     "cmd/slogate -exp <ID>" (a Gate citing another experiment's id
//     re-gates the wrong rows);
//   - Title and Run are present (a registration without Run is dead
//     weight the catalog lists but cannot execute).
var BenchRegistry = &Analyzer{
	Name: "benchregistry",
	Doc:  "statically validate experiment registrations in internal/bench",
	Run:  runBenchRegistry,
}

var benchIDPattern = regexp.MustCompile(`^E[1-9][0-9]*$`)

// A benchReg is one register(Experiment{...}) call site.
type benchReg struct {
	lit   *ast.CompositeLit
	id    string // literal value, "" if absent or non-literal
	idPos ast.Expr
	num   int
}

func runBenchRegistry(pass *Pass) error {
	if pass.Pkg.Name() != "bench" && !isPkgPath(pass.Pkg.Path(), "internal/bench") {
		return nil
	}
	var regs []*benchReg
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isLocalCall(pass, call, "register") || len(call.Args) != 1 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
			if !ok {
				return true
			}
			regs = append(regs, checkOneRegistration(pass, lit))
			return true
		})
	}

	// Cross-registration checks: uniqueness, then contiguity.
	byID := make(map[string]*benchReg)
	var nums []int
	for _, r := range regs {
		if r.id == "" {
			continue
		}
		if prev, ok := byID[r.id]; ok {
			prevPos := pass.Fset.Position(prev.lit.Pos())
			pass.Reportf(r.idPos.Pos(), "duplicate experiment id %s (already registered at %s); allocate the next free id", r.id, prevPos)
			continue
		}
		byID[r.id] = r
		if r.num > 0 {
			nums = append(nums, r.num)
		}
	}
	sort.Ints(nums)
	for i, n := range nums {
		if n != i+1 {
			want := i + 1
			r := byID[fmt.Sprintf("E%d", n)]
			pass.Reportf(r.idPos.Pos(), "experiment id E%d leaves a gap: ids are allocated densely and the next free id is E%d", n, want)
			break
		}
	}
	return nil
}

// checkOneRegistration validates a single Experiment literal.
func checkOneRegistration(pass *Pass, lit *ast.CompositeLit) *benchReg {
	r := &benchReg{lit: lit, idPos: lit}
	fields := make(map[string]ast.Expr)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}

	idExpr, ok := fields["ID"]
	if !ok {
		pass.Reportf(lit.Pos(), "experiment registration has no ID field")
	} else {
		r.idPos = idExpr
		if s, isLit := stringLit(idExpr); !isLit {
			pass.Reportf(idExpr.Pos(), "experiment ID must be a string literal, not a computed value")
		} else if !benchIDPattern.MatchString(s) {
			pass.Reportf(idExpr.Pos(), "experiment ID %q is malformed: ids look like E7 (E then a positive number)", s)
		} else {
			r.id = s
			r.num, _ = strconv.Atoi(s[1:])
		}
	}

	if gateExpr, ok := fields["Gate"]; ok {
		if s, isLit := stringLit(gateExpr); !isLit {
			pass.Reportf(gateExpr.Pos(), "experiment Gate must be a string literal, not a computed value")
		} else if r.id != "" && s != "cmd/slogate -exp "+r.id {
			pass.Reportf(gateExpr.Pos(), "experiment %s's Gate is %q; the gate command for an experiment is %q", r.id, s, "cmd/slogate -exp "+r.id)
		}
	}

	if _, ok := fields["Run"]; !ok {
		pass.Reportf(lit.Pos(), "experiment registration has no Run function; it can be listed but never executed")
	}
	if _, ok := fields["Title"]; !ok {
		pass.Reportf(lit.Pos(), "experiment registration has no Title")
	}
	return r
}

// stringLit evaluates e as a constant string.
func stringLit(e ast.Expr) (string, bool) {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		s, err := strconv.Unquote(lit.Value)
		if err == nil {
			return s, true
		}
	}
	return "", false
}

// isLocalCall reports whether call invokes the package-level function
// of the given name declared in the package under analysis.
func isLocalCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() == pass.Pkg
}
