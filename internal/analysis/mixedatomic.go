package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MixedAtomic reports struct fields that are accessed both atomically
// and plainly. Two disciplines are enforced over every package:
//
//   - A field whose address is passed to a sync/atomic function
//     (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f, 1), ...)
//     anywhere in the package must never be plain-read or
//     plain-written: the mixed access is a data race the dynamic
//     detector only reports on interleavings it happens to witness.
//   - A field of one of the sync/atomic register types (atomic.Uint64,
//     atomic.Pointer[T], ...) may only be used as a method receiver or
//     by address; copying it or reassigning it forks or tears the
//     register. This is the typed-atomics face of the same rule (vet's
//     copylocks catches some of these; contlint owns the discipline so
//     suppressions and CI wiring stay uniform).
//
// The check is per-package, which in practice is complete: every
// atomic field in this module is unexported, so all its accesses live
// in its declaring package.
var MixedAtomic = &Analyzer{
	Name: "mixedatomic",
	Doc:  "report struct fields accessed both through sync/atomic and plainly",
	Run:  runMixedAtomic,
}

// atomicOpPrefixes are the sync/atomic function families that take a
// pointer to the word as their first argument.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func runMixedAtomic(pass *Pass) error {
	// Phase A: fields whose address reaches a sync/atomic function.
	called := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			if fld := addrOfField(pass.Info, call.Args[0]); fld != nil {
				if _, seen := called[fld]; !seen {
					called[fld] = call.Pos()
				}
			}
			return true
		})
	}

	// Phase B: classify every field use.
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldObj(pass.Info, sel)
			if fld == nil {
				return true
			}
			if _, ok := called[fld]; ok {
				checkCalledFieldUse(pass, sel, fld, stack)
				return true
			}
			if fieldHoldsAtomics(fld.Type()) {
				checkTypedFieldUse(pass, sel, fld, stack)
			}
			return true
		})
	}
	return nil
}

// checkCalledFieldUse flags plain uses of a field that is elsewhere
// accessed through a sync/atomic function. Taking the field's address
// is always fine (that is how the atomic accesses themselves look).
func checkCalledFieldUse(pass *Pass, sel *ast.SelectorExpr, fld *types.Var, stack []ast.Node) {
	cur, parent := climbAccessPath(sel, stack)
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return
		}
	case *ast.AssignStmt:
		if exprInList(cur, p.Lhs) {
			pass.Reportf(sel.Pos(), "plain write of field %s, which is accessed with sync/atomic elsewhere", fld.Name())
			return
		}
	case *ast.IncDecStmt:
		pass.Reportf(sel.Pos(), "plain write of field %s, which is accessed with sync/atomic elsewhere", fld.Name())
		return
	}
	pass.Reportf(sel.Pos(), "plain read of field %s, which is accessed with sync/atomic elsewhere", fld.Name())
}

// checkTypedFieldUse flags value uses of fields that hold atomic.*
// registers (directly, or as arrays of them). Method calls, address-of,
// indexing and slice-header manipulation are the allowed shapes.
func checkTypedFieldUse(pass *Pass, sel *ast.SelectorExpr, fld *types.Var, stack []ast.Node) {
	cur, parent := climbAccessPath(sel, stack)
	// Only a use whose resulting type still IS an atomic value can
	// fork a register; slice headers and derived scalars are fine.
	if tv, ok := pass.Info.Types[cur.(ast.Expr)]; !ok || !typeIsAtomicValue(tv.Type) {
		return
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.Load(...): selecting a method from the register.
		return
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return
		}
	case *ast.RangeStmt:
		if p.X == cur {
			if p.Value != nil {
				pass.Reportf(sel.Pos(), "range copies atomic field %s; range over indices and use the methods", fld.Name())
			}
			return
		}
	case *ast.AssignStmt:
		if exprInList(cur, p.Lhs) {
			pass.Reportf(sel.Pos(), "atomic field %s reassigned; use its Store/CAS methods", fld.Name())
			return
		}
	}
	pass.Reportf(sel.Pos(), "atomic field %s copied; use its methods or take its address", fld.Name())
}

// climbAccessPath walks up from sel through parens and indexing —
// the shapes that extend an access path rather than use its value —
// and returns the topmost path node plus its parent.
func climbAccessPath(sel ast.Node, stack []ast.Node) (cur, parent ast.Node) {
	cur = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				continue
			}
		}
		return cur, stack[i]
	}
	return cur, nil
}

func exprInList(e ast.Node, list []ast.Expr) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// fieldObj resolves sel to the struct field it selects, or nil.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// addrOfField unwraps &expr (through parens and indexing) to the
// struct field whose storage the address denotes, or nil.
func addrOfField(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	x := ast.Unparen(un.X)
	for {
		if ix, ok := x.(*ast.IndexExpr); ok {
			x = ast.Unparen(ix.X)
			continue
		}
		break
	}
	if sel, ok := x.(*ast.SelectorExpr); ok {
		return fieldObj(info, sel)
	}
	return nil
}

// isAtomicFuncCall reports whether call invokes a sync/atomic
// package-level function from one of the pointer-taking families.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(sel.Sel.Name, p) {
			return true
		}
	}
	return false
}

// typeIsAtomicValue reports whether t is a sync/atomic register type or
// an array of them — the types whose plain copy forks a register.
func typeIsAtomicValue(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		obj := t.Obj()
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
	case *types.Array:
		return typeIsAtomicValue(t.Elem())
	}
	return false
}

// fieldHoldsAtomics reports whether a field of type t stores atomic
// registers reachable through the field itself: the register type, an
// array of them, or a slice of them (whose elements are reached by
// indexing).
func fieldHoldsAtomics(t types.Type) bool {
	if typeIsAtomicValue(t) {
		return true
	}
	if s, ok := types.Unalias(t).(*types.Slice); ok {
		return typeIsAtomicValue(s.Elem())
	}
	return false
}
