package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestAllowSuppression runs the full suite (with the allow linter on,
// as cmd/contlint does) over the allowlint fixture and asserts the
// exact surviving diagnostics: an allow suppresses only the pass it
// names, unknown pass names are findings themselves, and so are
// missing reasons, malformed comments, and stale allows.
func TestAllowSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allowlint", "mixed")
	pkg, err := analysis.LoadDir("repro/internal/analysis/testdata/src/allowlint/mixed", dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunPackage(pkg, analysis.Suite(), true)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, "["+d.Analyzer+"] "+d.Message)
	}

	wantSubstrings := []string{
		// readB: the allow names retryloop, so mixedatomic still fires
		// on the plain read of b, and the retryloop allow is stale.
		"[mixedatomic] plain read of field b",
		"[allowlint] stale allow comment: retryloop reports nothing here; delete it",
		// readC: unknown pass names suppress nothing and are reported.
		"[mixedatomic] plain read of field c",
		"[allowlint] allow comment names unknown pass nosuchpass",
		// readD: suppressed, but the reasonless allow is a finding.
		"[allowlint] allow comment for mixedatomic is missing a reason",
		// The bare marker is malformed.
		"[allowlint] malformed allow comment: want //contlint:allow <pass> <reason>",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected diagnostic %q in:\n  %s", want, strings.Join(got, "\n  "))
		}
	}

	// readA and readD are correctly suppressed: no surviving
	// mixedatomic diagnostic may mention fields a or d.
	for _, g := range got {
		if strings.Contains(g, "[mixedatomic] plain read of field a") {
			t.Errorf("allow comment failed to suppress the named pass: %s", g)
		}
		if strings.Contains(g, "[mixedatomic] plain read of field d") {
			t.Errorf("reasonless allow should still suppress (the missing reason is its own finding): %s", g)
		}
	}
	if want, got := len(wantSubstrings), len(diags); want != got {
		t.Errorf("want exactly %d diagnostics, got %d:\n  %s", want, got, strings.Join(nil, ""))
		for _, d := range diags {
			t.Logf("  %s", analysis.FormatDiagnostic(pkg.Fset, d))
		}
	}
}
