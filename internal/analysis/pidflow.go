package analysis

import (
	"go/ast"
	"go/types"
)

// PidFlow enforces the catalog's process-identity plumbing contract: a
// parameter named pid is minted by the caller's controller (the sched
// tier or the harness spawning the goroutines) and must reach every
// pid-taking callee unmodified. Inside any function with a `pid int`
// parameter the pass flags:
//
//   - reassigning or shadowing pid (re-deriving process identity —
//     e.g. from a goroutine-id hack — breaks the per-process striping
//     of the combining arrays, pools and the sched controller);
//   - calls that pass anything other than that pid to a callee
//     parameter itself named pid (dropping the identity, or hardcoding
//     one while the real pid is in scope).
//
// internal/sched is exempt: its controller is the one place that mints
// and remaps pids by design.
var PidFlow = &Analyzer{
	Name: "pidflow",
	Doc:  "report pid parameters that are modified, shadowed or not passed through",
	Run:  runPidFlow,
}

// pidFlowExempt lists package-path suffixes allowed to mint and remap
// pids.
var pidFlowExempt = []string{"internal/sched"}

func runPidFlow(pass *Pass) error {
	for _, suffix := range pidFlowExempt {
		if isPkgPath(pass.Pkg.Path(), suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if pid := pidParam(pass.Info, fn.Type); pid != nil {
				checkPidBody(pass, fn.Body, pid)
			}
			return true
		})
	}
	return nil
}

// pidParam returns the object of a parameter literally named pid with
// an integer type, or nil.
func pidParam(info *types.Info, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name != "pid" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return obj
			}
		}
	}
	return nil
}

// checkPidBody walks one function body holding pid. Nested function
// literals that declare their own pid parameter are re-checked against
// that inner pid (the closure spawning pattern `go func(pid int)`),
// and their bodies are excluded from the outer check.
func checkPidBody(pass *Pass, body *ast.BlockStmt, pid types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inner := pidParam(pass.Info, n.Type); inner != nil {
				checkPidBody(pass, n.Body, inner)
				return false
			}
			return true // closure capturing the outer pid: keep checking against it
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if pass.Info.Uses[id] == pid {
						pass.Reportf(id.Pos(), "pid is reassigned; process identity must flow through unmodified")
					}
					if def := pass.Info.Defs[id]; def != nil && id.Name == "pid" && def != pid {
						pass.Reportf(id.Pos(), "pid is shadowed; process identity must flow through unmodified")
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == pid {
				pass.Reportf(id.Pos(), "pid is reassigned; process identity must flow through unmodified")
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							if name.Name == "pid" {
								pass.Reportf(name.Pos(), "pid is shadowed; process identity must flow through unmodified")
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			checkPidArgs(pass, n, pid)
		}
		return true
	})
}

// checkPidArgs flags arguments that land in a callee parameter named
// pid but are not the caller's own pid.
func checkPidArgs(pass *Pass, call *ast.CallExpr, pid types.Object) {
	sig := calleeSignature(pass.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		p := params.At(pi)
		if p.Name() != "pid" {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == pid {
			continue
		}
		pass.Reportf(arg.Pos(), "argument to %s's pid parameter is not the caller's pid; pass it through unmodified", calleeName(call))
	}
}

// calleeSignature resolves the (possibly generic, possibly method)
// signature of call's callee, or nil for builtins, conversions and
// indirect calls without a known signature.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.IndexExpr:
		return calleeName(&ast.CallExpr{Fun: f.X})
	case *ast.IndexListExpr:
		return calleeName(&ast.CallExpr{Fun: f.X})
	}
	return "the callee"
}
