package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"repro/internal/analysis"
	"strings"
	"testing"
)

// This file is the golden-test harness, an analysistest workalike (see
// the package comment for why x/tools is not imported directly).
// Fixture packages live under testdata/src/<pass>/<name> and annotate
// the lines where diagnostics are expected:
//
//	x = s.words // want `plain write of field words`
//
// Each `want` carries one or more backquoted or double-quoted regular
// expressions; every diagnostic on that line must match one of them,
// every expectation must be matched by a diagnostic, and diagnostics
// on unannotated lines fail the test. A fixture with no want comments
// is a clean fixture: the test asserts the passes stay silent on it.

// wantRe matches one expectation within a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// RunGolden loads the fixture package at testdata/src/<rel> (relative
// to the caller's package directory) and checks the given passes'
// diagnostics against its want comments. Suppression comments are
// honored; the allowlint meta-checks are off, since a fixture
// exercising one pass legitimately carries allows for others.
func RunGolden(t *testing.T, rel string, passes ...*analysis.Analyzer) {
	t.Helper()
	runGolden(t, rel, false, passes)
}

// RunGoldenAllowLint is RunGolden with the allowlint meta-checks on,
// for fixtures exercising the suppression comments themselves.
func RunGoldenAllowLint(t *testing.T, rel string, passes ...*analysis.Analyzer) {
	t.Helper()
	runGolden(t, rel, true, passes)
}

func runGolden(t *testing.T, rel string, lintAllows bool, passes []*analysis.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	importPath := "repro/internal/analysis/testdata/src/" + rel
	pkg, err := analysis.LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	diags, err := analysis.RunPackage(pkg, passes, lintAllows)
	if err != nil {
		t.Fatalf("running passes over %s: %v", rel, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		key := wantKey(posn)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic matched `%s`", w.posn, w.re)
			}
		}
	}
}

type want struct {
	posn token.Position
	re   *regexp.Regexp
	used bool
}

func wantKey(posn token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
}

// collectWants parses the `// want ...` comments of every fixture file.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", posn, c.Text)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants[wantKey(posn)] = append(wants[wantKey(posn)], &want{posn: posn, re: re})
				}
			}
		}
	}
	return wants
}
