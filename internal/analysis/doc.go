// Package analysis implements contlint, the repo's static-enforcement
// layer: a suite of vet-style passes that turn the concurrency
// disciplines the dynamic harnesses (race detector, fuzzers, pinned
// replay schedules) can only witness per-execution into compile-time
// facts checked over every package on every build.
//
// The suite (see Suite) encodes the house rules:
//
//   - mixedatomic: a struct field accessed through sync/atomic anywhere
//     must never be plain-read or plain-written elsewhere, and fields
//     of the atomic.* register types must only be touched through
//     their methods (or by address) — the classic latent race the
//     dynamic detector only finds on witnessed interleavings.
//   - taggedword: memory.TaggedRef/TaggedRefs registers may only be
//     initialized in place (Init) and advanced by CAS; copying one —
//     by assignment, argument passing, return, range, or composite
//     literal — forks the atomic word and breaks the §2.2 sequence-tag
//     discipline that makes recycled-node CAS safe.
//   - pidflow: a `pid int` parameter is the catalog's process identity
//     and must flow to the backend call unmodified — reassigning it,
//     shadowing it, or passing anything else where a callee expects a
//     pid breaks the per-process striping contract everything from the
//     combining arrays to the sched controller relies on.
//   - retryloop: naked unbounded `for { ...CAS... }` retry spins
//     outside the allowlisted engines (internal/core, internal/memory,
//     the internal/set list engine) must route through core.Retry /
//     core.RetryBudget so WithRetryPolicy pacing and ErrExhausted
//     graceful degradation stay universal.
//   - benchregistry: experiment registrations in internal/bench are
//     checked statically — literal contiguous ids, no duplicates, Gate
//     strings that name their own experiment — instead of at register
//     panic time.
//   - unusedwrite: straight-line dead stores (a value written to a
//     local and overwritten, or abandoned by return, before any read).
//     A deliberately conservative, SSA-free subset of the x/tools pass
//     of the same name (see the offline note below).
//   - nilness: dereference of a variable inside the very branch whose
//     condition proved it nil. Same note.
//
// Every pass honors a shared suppression comment,
//
//	//contlint:allow <pass> <reason>
//
// which silences exactly the named pass on the same line or the line
// below. Suppressions are themselves linted (pass allowlint): an
// unknown pass name, a missing reason, or a stale comment that no
// longer suppresses anything is a diagnostic, so annotations cannot
// outlive the code they excuse.
//
// Offline note: the canonical home for passes like these is
// golang.org/x/tools/go/analysis, and this package deliberately mirrors
// its Analyzer/Pass/Diagnostic shape and its analysistest golden-test
// workflow (checktest.go). The build environment pins a stdlib-only
// module (no module proxy at build time), so instead of depending on
// x/tools the package carries a minimal workalike: loading is done with
// `go list -export` plus the standard gc export-data importer
// (load.go), and cmd/contlint speaks both a standalone mode and the
// `go vet -vettool` unit-checker protocol (see cmd/contlint). If the
// module ever grows a vendored x/tools, the passes port over verbatim.
package analysis
