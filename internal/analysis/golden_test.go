package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each pass gets one fixture package that must fire (every diagnostic
// annotated with a want comment) and one that must stay silent.

func TestMixedAtomicGolden(t *testing.T) {
	analysistest.RunGolden(t, "mixedatomic/flagged", analysis.MixedAtomic)
	analysistest.RunGolden(t, "mixedatomic/clean", analysis.MixedAtomic)
}

func TestTaggedWordGolden(t *testing.T) {
	analysistest.RunGolden(t, "taggedword/flagged", analysis.TaggedWord)
	analysistest.RunGolden(t, "taggedword/clean", analysis.TaggedWord)
}

func TestPidFlowGolden(t *testing.T) {
	analysistest.RunGolden(t, "pidflow/flagged", analysis.PidFlow)
	analysistest.RunGolden(t, "pidflow/clean", analysis.PidFlow)
}

func TestRetryLoopGolden(t *testing.T) {
	analysistest.RunGolden(t, "retryloop/flagged", analysis.RetryLoop)
	analysistest.RunGolden(t, "retryloop/clean", analysis.RetryLoop)
}

func TestBenchRegistryGolden(t *testing.T) {
	analysistest.RunGolden(t, "benchregistry/flagged", analysis.BenchRegistry)
	analysistest.RunGolden(t, "benchregistry/clean", analysis.BenchRegistry)
}

func TestUnusedWriteGolden(t *testing.T) {
	analysistest.RunGolden(t, "unusedwrite/flagged", analysis.UnusedWrite)
	analysistest.RunGolden(t, "unusedwrite/clean", analysis.UnusedWrite)
}

func TestNilnessGolden(t *testing.T) {
	analysistest.RunGolden(t, "nilness/flagged", analysis.Nilness)
	analysistest.RunGolden(t, "nilness/clean", analysis.Nilness)
}
