package set

import "errors"

// Set operations are total: Add and Remove report whether they changed
// the set, Contains reports membership — nothing blocks and there is
// no full/empty condition. Weak operations may additionally abort.
var (
	// ErrAborted is the paper's ⊥: the weak operation detected
	// interference and had no effect. Only Try* operations return it;
	// strong operations never do (Lemma 1).
	ErrAborted = errors.New("set: aborted by contention")

	// ErrSealed reports an update attempt against a sealed
	// copy-on-write root (see Abortable.Seal): the set has been frozen
	// for migration, the attempt had no effect, and the caller should
	// redirect to the migration target. Reads never return it.
	ErrSealed = errors.New("set: sealed for migration")
)

// Strong is the interface of total, never-aborting sets whose
// operations take the calling process identity (needed by the
// starvation-free slow path and the pooled free lists). Add reports
// true iff k was newly inserted, Remove true iff k was present,
// Contains membership.
type Strong interface {
	Add(pid int, k uint64) bool
	Remove(pid int, k uint64) bool
	Contains(pid int, k uint64) bool
}

// Weak is the interface of abortable sets: single attempts that may
// return ErrAborted, in which case the operation had no effect and may
// be retried. The boolean carries the operation's answer when err is
// nil.
type Weak interface {
	TryAdd(k uint64) (bool, error)
	TryRemove(k uint64) (bool, error)
	TryContains(k uint64) (bool, error)
}
