// Package set carries the paper's methodology — abortable weak object
// → retry / contention-sensitive / combining strong object — to a
// genuinely new workload shape: a sorted list-based set, where
// read-mostly membership traversals dominate instead of the
// stack/queue tier's endpoint contention ("A Concurrency-Optimal
// List-Based Set", Aksenov et al., and "In the Search of Optimal
// Concurrency", Gramoli, Kuznetsov & Ravi, argue this is where
// concurrency trade-offs become visible; see PAPERS.md).
//
// Keys are uint64 throughout the tier (map richer domains through an
// index or hash). Two weak/lock-free list designs anchor the ladder:
//
//   - Abortable — the Figure 1 pattern on a copy-on-write sorted
//     list: one boxed root register carries the whole (immutable)
//     list, a mutating attempt path-copies down to its window and
//     CASes the root, aborting on interference. Contains reads the
//     root once and walks private immutable memory: wait-free, never
//     aborts. Updates serialize at the root — the price paid for a weak
//     object this simple; the ladder's strong constructions
//     (Sensitive, NonBlocking, Combining) stack over it exactly as
//     over the weak stack.
//   - Harris — the Harris/Michael lock-free linked list (Harris,
//     DISC 2001; Michael, SPAA 2002) over pooled, recycled nodes with
//     tagged 〈handle, seqnb〉 next registers (memory.TaggedRef plus the
//     TaggedMark deletion bit). Disjoint windows update in parallel;
//     node recycling makes §2.2's ABA real on every next register and
//     the tags are load-bearing, as in the allocation tier.
//
// Both lists pay per-operation work that grows with the resident key
// count. Hash is the exit: the split-ordered hash layer (Shalev &
// Shavit, J.ACM 2006) over the same Harris engine — one list in
// bit-reversed key order, a lazily split, CAS-doubled bucket array of
// sentinel shortcuts into it — bringing Add/Remove/Contains to O(1)
// expected while reusing the mark/unlink, tag-validation and
// recycling disciplines unchanged (keys < 2^63; one reserved bit).
//
// Experiments E18/E19 measure the tier across read ratios and key
// ranges; sched.HarrisABASchedule and sched.HashSplitABASchedule
// replay the recycled-node ABA windows deterministically.
package set
