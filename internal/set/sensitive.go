package set

import (
	"repro/internal/core"
	"repro/internal/lock"
)

// Sensitive is the contention-sensitive, starvation-free set: the
// Figure 3 construction (core.Guard/Do) over a weak abortable set.
// Mutating operations invoked in a contention-free context complete on
// the lock-free shortcut (one CONTENTION read plus one weak attempt);
// under contention they serialize behind the starvation-free
// round-robin lock. Contains bypasses the guard entirely: the weak
// set's membership check never aborts, so wrapping it in the protocol
// would only add the CONTENTION read and, worse, park wait-free
// readers on the slow-path lock — reads stay wait-free instead.
type Sensitive struct {
	weak  Weak
	guard *core.Guard
}

// NewSensitive returns the paper's exact configuration for n processes
// over a fresh abortable set: round-robin over a deadlock-free
// test-and-set lock. Callers pass pids in [0, n).
func NewSensitive(n int) *Sensitive {
	return NewSensitiveFrom(NewAbortable(), lock.NewRoundRobin(lock.NewTAS(), n))
}

// NewSensitiveFrom builds Figure 3 over any weak set and any PidLock.
func NewSensitiveFrom(weak Weak, lk lock.PidLock) *Sensitive {
	return &Sensitive{weak: weak, guard: core.NewGuard(lk)}
}

// Add inserts k on behalf of pid; it reports whether k was newly
// inserted, never aborts, and terminates for every caller.
func (s *Sensitive) Add(pid int, k uint64) bool {
	return core.Do(s.guard, pid, func() (bool, bool) {
		added, err := s.weak.TryAdd(k)
		return added, err == nil
	})
}

// Remove deletes k on behalf of pid; it reports whether k was present.
func (s *Sensitive) Remove(pid int, k uint64) bool {
	return core.Do(s.guard, pid, func() (bool, bool) {
		removed, err := s.weak.TryRemove(k)
		return removed, err == nil
	})
}

// Contains reports membership of k. It goes straight to the weak
// set's wait-free check — no guard, no lock, whatever the contention.
func (s *Sensitive) Contains(_ int, k uint64) bool {
	ok, _ := s.weak.TryContains(k)
	return ok
}

// Guard exposes the guard's fast/slow-path counters for tests and
// experiments.
func (s *Sensitive) Guard() *core.Guard { return s.guard }

// Progress reports StarvationFree for updates (Theorem 1's argument);
// Contains is wait-free.
func (s *Sensitive) Progress() core.Progress { return core.StarvationFree }

var _ Strong = (*Sensitive)(nil)
