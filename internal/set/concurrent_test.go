package set

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// stressN scales a stress-test iteration budget: the full budget by
// default, a twentieth (min 100) under -short so `go test -short`
// finishes fast (the CI race job runs short; full budgets remain the
// local default).
func stressN(full int) int {
	if testing.Short() {
		if full /= 20; full < 100 {
			full = 100
		}
	}
	return full
}

// accounted drives procs goroutines of a mixed add/remove/contains
// workload over a small key range and verifies the set tier's
// conservation invariant: successful adds and removes of each key
// strictly alternate, so at quiescence adds(k) - removes(k) is 1 when
// k ended in the set and 0 when it did not. A lost update, a double
// insert, or a resurrection through a recycled node breaks the
// balance.
func accounted(t *testing.T, procs, perProc, keyRange int,
	add func(pid int, k uint64) bool,
	remove func(pid int, k uint64) bool,
	contains func(pid int, k uint64) bool,
) {
	t.Helper()
	adds := make([]atomic.Int64, keyRange)
	removes := make([]atomic.Int64, keyRange)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(pid)*0x9e37 + 1)
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					if add(pid, k) {
						adds[k].Add(1)
					}
				case 1:
					if remove(pid, k) {
						removes[k].Add(1)
					}
				default:
					contains(pid, k)
				}
			}
		}(p)
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		diff := adds[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: %d successful adds vs %d removes (diff %d)",
				k, adds[k].Load(), removes[k].Load(), diff)
		}
		if got, want := contains(0, uint64(k)), diff == 1; got != want {
			t.Fatalf("key %d: Contains = %v, accounting says %v", k, got, want)
		}
	}
}

// retryWeak lifts the abortable set to the strong surface for the
// stress harness.
func retryWeak(s *Abortable) (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool) {
	add := func(_ int, k uint64) bool {
		for {
			if ok, err := s.TryAdd(k); err == nil {
				return ok
			}
		}
	}
	remove := func(_ int, k uint64) bool {
		for {
			if ok, err := s.TryRemove(k); err == nil {
				return ok
			}
		}
	}
	has := func(_ int, k uint64) bool { return s.Contains(k) }
	return add, remove, has
}

func TestAbortableAccounting(t *testing.T) {
	add, remove, has := retryWeak(NewAbortable())
	accounted(t, 4, stressN(4000), 16, add, remove, has)
}

func TestSensitiveAccounting(t *testing.T) {
	const procs = 4
	s := NewSensitive(procs)
	accounted(t, procs, stressN(4000), 16, s.Add, s.Remove, s.Contains)
}

func TestNonBlockingAccounting(t *testing.T) {
	s := NewNonBlocking()
	accounted(t, 4, stressN(4000), 16, s.Add, s.Remove, s.Contains)
}

func TestHarrisAccounting(t *testing.T) {
	const procs = 4
	s := NewHarris(procs)
	accounted(t, procs, stressN(6000), 16, s.Add, s.Remove, s.Contains)
	// The churn above retires and reuses nodes constantly; recycling
	// actually happening is part of what the invariant just vetted.
	if st := s.PoolStats(); st.Reuses == 0 {
		t.Fatal("stress run never recycled a node")
	}
}

func TestCombiningAccounting(t *testing.T) {
	const procs = 4
	s := NewCombining(procs)
	accounted(t, procs, stressN(4000), 16, s.Add, s.Remove, s.Contains)
}

// TestCombiningContendedAccounting forces every operation through the
// publication list (no fast path), the path a solo test never takes.
func TestCombiningContendedAccounting(t *testing.T) {
	const procs = 4
	s := NewCombining(procs)
	accounted(t, procs, stressN(2000), 8,
		s.AddContended, s.RemoveContended, s.ContainsContended)
}

func TestHashAccounting(t *testing.T) {
	const procs = 4
	s := NewHash(procs)
	// Key range 256 forces several table doublings mid-stress, so the
	// conservation invariant also vets operations racing a publish
	// (stale-mask walks, lost shortcut caches).
	accounted(t, procs, stressN(6000), 256, s.Add, s.Remove, s.Contains)
	if st := s.PoolStats(); st.Reuses == 0 {
		t.Fatal("stress run never recycled a node")
	}
	if s.Resizes() == 0 {
		t.Fatalf("stress over 256 keys never resized (buckets %d)", s.Buckets())
	}
}

// TestHashSingleBucketWar concentrates every process on keys of one
// bucket (stride = a large power of two, so all keys share low bits):
// maximal split-chain contention plus recycle pressure on one window.
func TestHashSingleBucketWar(t *testing.T) {
	const procs = 4
	s := NewHash(procs)
	perProc := stressN(4000)
	var wg sync.WaitGroup
	adds := make([]int64, procs)
	removes := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(pid)*0xb1c + 7)
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(4)) << 40 // same bucket at every realistic mask
				if rng.Intn(2) == 0 {
					if s.Add(pid, k) {
						adds[pid]++
					}
				} else if s.Remove(pid, k) {
					removes[pid]++
				}
			}
		}(p)
	}
	wg.Wait()
	var a, r int64
	for p := 0; p < procs; p++ {
		a, r = a+adds[p], r+removes[p]
	}
	if got := int64(s.Len()); a-r != got {
		t.Fatalf("adds %d - removes %d = %d, but %d keys resident", a, r, a-r, got)
	}
	if got, want := s.Len(), s.Size(); got != want {
		t.Fatalf("Len() = %d disagrees with Size() = %d at quiescence", got, want)
	}
}

// TestHarrisSingleKeyWar pits every process against ONE key — the
// densest possible recycle-and-relink pressure on a single window:
// each successful add hands the node to a remover, whose free list
// feeds the next add at the same handle.
func TestHarrisSingleKeyWar(t *testing.T) {
	const procs = 4
	s := NewHarris(procs)
	perProc := stressN(8000)
	adds := make([]int64, procs)
	removes := make([]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if s.Add(pid, 7) {
					adds[pid]++
				}
				if s.Remove(pid, 7) {
					removes[pid]++
				}
			}
		}(p)
	}
	wg.Wait()
	var a, r int64
	for p := 0; p < procs; p++ {
		a += adds[p]
		r += removes[p]
	}
	final := int64(0)
	if s.Contains(0, 7) {
		final = 1
	}
	if a-r != final {
		t.Fatalf("adds %d - removes %d = %d, want %d (final membership)", a, r, a-r, final)
	}
	if got := s.Len(); int64(got) != final {
		t.Fatalf("Len() = %d after single-key war, want %d", got, final)
	}
}
