package set

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// Split-ordered hashing (Shalev & Shavit, "Split-Ordered Lists:
// Lock-Free Extensible Hash Tables", J.ACM 2006) turns the pooled
// Harris list into a hash table without ever moving a node: the single
// sorted list holds every key in *bit-reversed* order, and a lazily
// grown bucket array holds shortcuts into it. Key k lives in bucket
// k mod M (M the current table size, a power of two); because the low
// bits that pick the bucket become the HIGH bits of the reversed sort
// key, each bucket's keys are contiguous in the list, and doubling M
// splits every bucket's run in place — the new bucket's sentinel node
// drops into the middle of its parent's run, and no key moves.
//
// Sort-key encoding: one bit distinguishes the two node populations.
//
//	regular key k   → reverse64(k) | 1   (odd)
//	bucket b's sentinel → reverse64(b)   (even)
//
// Sentinels order strictly before every regular key of their bucket
// (equal reversed prefix, even < odd) and the two populations can
// never collide, at the price of one reserved bit: Hash keys must be
// < 2^63. Sentinels are never marked, never removed, and never
// recycled, so a bucket shortcut never dangles.
const (
	// hashInitialBuckets is a fresh table's bucket count.
	hashInitialBuckets = 2
	// hashMaxBuckets caps table doubling; beyond it operations degrade
	// gracefully toward the plain list's O(chain) walks.
	hashMaxBuckets = 1 << 20
	// hashMaxLoad is the average number of regular keys per bucket
	// tolerated before the table doubles.
	hashMaxLoad = 3
)

// hashMaxKey bounds the representable key range: the low bit of the
// split-order key says sentinel/regular, so the key itself has 63
// bits (exactly the original paper's reserved bit).
const hashMaxKey = uint64(1)<<63 - 1

// regularSkey maps a set key to its split-order sort key.
func regularSkey(k uint64) uint64 {
	if k > hashMaxKey {
		panic("set: Hash keys must be < 2^63 (one bit is reserved to keep sentinel and regular split-order keys apart)")
	}
	return bits.Reverse64(k) | 1
}

// sentinelSkey maps a bucket index to its sentinel's sort key.
func sentinelSkey(b uint64) uint64 { return bits.Reverse64(b) }

// keyOfSkey inverts regularSkey.
func keyOfSkey(sk uint64) uint64 { return bits.Reverse64(sk &^ 1) }

// hashTable is one published generation of the bucket index: a word
// per bucket holding 〈sentinel handle, tag〉, NilHandle while the
// bucket is uninitialized. Entries are shortcut caches — the sentinel
// nodes themselves live in the list — so a table can be copied and
// republished wholesale (see grow) without synchronizing with bucket
// initializers: a lost shortcut update is re-derived from the list.
type hashTable struct {
	mask    uint64
	buckets *memory.TaggedRefs[hmNode]
}

// Hash is the split-ordered hash set: the same pooled, tagged,
// markable Harris list as Harris — one sorted list, identical window
// primitives, identical recycling discipline — reached through a
// bucket array of sentinel shortcuts, making Add / Remove / Contains
// O(1) expected instead of O(n). Updates on distinct buckets touch
// disjoint windows and proceed in parallel; the table doubles (a copy
// of the shortcut words, CAS-published) when the load factor passes
// hashMaxLoad, and buckets initialize lazily by splitting their
// parent. Keys must be < 2^63 (one reserved bit; see the package
// notes above). Operations take the calling pid for the pool's
// per-pid free lists.
type Hash struct {
	l       *list
	table   atomic.Pointer[hashTable]
	count   atomic.Int64
	resizes atomic.Uint64
	obs     memory.Observer
}

// NewHash returns an empty split-ordered hash set for procs processes
// (pids in [0, procs)).
func NewHash(procs int) *Hash {
	return NewHashObserved(procs, nil)
}

// NewHashObserved returns an instrumented hash set: bucket-shortcut
// words and node next registers report to obs (nil disables
// instrumentation); key loads, pool traffic, and the table pointer
// (pure metadata — every decision made from a stale table is still
// correct, see grow) are not observed.
func NewHashObserved(procs int, obs memory.Observer) *Hash {
	l := newList(procs, obs)
	s := &Hash{l: l, obs: obs}
	// Bucket 0's sentinel anchors the list and exists from birth, so
	// parent walks always terminate. Constructed single-threaded: the
	// pool Get and the word stores are unobserved builder accesses.
	h0 := l.pool.Get(0)
	l.pool.At(h0).key.Store(sentinelSkey(0))
	s.table.Store(&hashTable{
		mask: hashInitialBuckets - 1,
		buckets: memory.NewTaggedRefs[hmNode](l.pool, hashInitialBuckets, func(i int) memory.TaggedVal {
			if i == 0 {
				return memory.PackTagged(h0, 0)
			}
			return memory.PackTagged(memory.NilHandle, 0)
		}, obs),
	})
	return s
}

// bucket resolves k's bucket in the current table and returns the
// start register for its window walks: the bucket sentinel's next
// register. First touch initializes the bucket (and, recursively, any
// uninitialized ancestors).
func (s *Hash) bucket(pid int, k uint64) *memory.TaggedRef[hmNode] {
	t := s.table.Load()
	return s.bucketIn(pid, t, k&t.mask)
}

func (s *Hash) bucketIn(pid int, t *hashTable, b uint64) *memory.TaggedRef[hmNode] {
	w := t.buckets.At(int(b))
	v := w.Read()
	if v.Handle() != memory.NilHandle {
		return &s.l.pool.At(v.Handle()).next
	}
	return s.initBucket(pid, t, b, w, v)
}

// initBucket splits bucket b off its parent (b with its highest set
// bit cleared): it links b's sentinel into the list at its split-order
// position — or adopts the sentinel a concurrent initializer already
// linked — and caches the handle in the bucket word. The linking CAS
// is tag-validated like any other: the §2.2 hazard is live here
// because a loser's prepared node is recycled and can reappear, same
// handle, as anything (sched.HashSplitABASchedule replays exactly
// that window deterministically).
func (s *Hash) initBucket(pid int, t *hashTable, b uint64, w *memory.TaggedRef[hmNode], v memory.TaggedVal) *memory.TaggedRef[hmNode] {
	parent := b &^ (uint64(1) << (63 - uint(bits.LeadingZeros64(b)))) // b > 0: bucket 0 is born initialized
	start := s.bucketIn(pid, t, parent)
	sk := sentinelSkey(b)
	var h memory.Handle
	for {
		pred, predW, _, found := s.l.find(pid, start, sk)
		if found {
			h = predW.Handle() // another initializer won: adopt its sentinel
			break
		}
		h = s.l.pool.Get(pid)
		n := s.l.pool.At(h)
		n.key.Store(sk)
		n.next.Write(n.next.Read().Next(predW.Handle()))
		if pred.CAS(predW, predW.Next(h)) {
			break
		}
		s.l.pool.Put(pid, h) // never published: safe to recycle directly
	}
	// Cache the shortcut. Losing this CAS means a concurrent
	// initializer already cached the same handle (sentinels are
	// permanent, so there is exactly one per split-order key);
	// losing the whole word to a table swap just costs a re-derivation.
	w.CAS(v, v.Next(h))
	return &s.l.pool.At(h).next
}

// grow doubles the bucket table when the load factor still warrants
// it. The new table adopts the old shortcut words as they stand; a
// bucket initialized in the old table after the copy merely loses its
// shortcut and is re-derived from the list (idempotently — the
// sentinel itself is in the list, not in the table) on next access.
// One CAS publishes the doubled table; a losing grower discards its
// copy. Everything here is metadata: operations running against a
// stale table compute a coarser bucket index whose sentinel is an
// ancestor of the fresh one, so their walks are longer but never
// wrong.
func (s *Hash) grow() {
	t := s.table.Load()
	old := t.mask + 1
	if old >= hashMaxBuckets || s.count.Load() <= hashMaxLoad*int64(old) {
		return
	}
	nb := memory.NewTaggedRefs[hmNode](s.l.pool, int(2*old), func(i int) memory.TaggedVal {
		if uint64(i) < old {
			return t.buckets.At(i).Read()
		}
		return memory.PackTagged(memory.NilHandle, 0)
	}, s.obs)
	if s.table.CompareAndSwap(t, &hashTable{mask: 2*old - 1, buckets: nb}) {
		s.resizes.Add(1)
	}
}

// Add inserts k on behalf of pid; it reports whether k was newly
// inserted. O(1) expected: the walk starts at k's bucket sentinel and
// crosses only that bucket's keys.
func (s *Hash) Add(pid int, k uint64) bool {
	sk := regularSkey(k)
	if !s.l.insert(pid, s.bucket(pid, k), sk) {
		return false
	}
	if s.count.Add(1) > hashMaxLoad*int64(s.table.Load().mask+1) {
		s.grow()
	}
	return true
}

// Remove deletes k on behalf of pid; it reports whether k was present.
// Only regular nodes are ever marked: a sentinel's split-order key is
// even, a removal target's odd, so the shared delete primitive cannot
// touch the bucket skeleton.
func (s *Hash) Remove(pid int, k uint64) bool {
	if !s.l.delete(pid, s.bucket(pid, k), regularSkey(k)) {
		return false
	}
	s.count.Add(-1)
	return true
}

// Contains reports membership of k on behalf of pid: lock-free, O(1)
// expected, sharing the same validated traversal as the updates.
func (s *Hash) Contains(pid int, k uint64) bool {
	return s.l.search(pid, s.bucket(pid, k), regularSkey(k))
}

// Size returns the atomic count of present keys. Safe concurrently
// (unlike Len/Snapshot), momentarily out of sync with in-flight
// operations by at most one per process.
func (s *Hash) Size() int { return int(s.count.Load()) }

// Buckets returns the current table size.
func (s *Hash) Buckets() int { return int(s.table.Load().mask + 1) }

// Resizes returns the number of published table doublings.
func (s *Hash) Resizes() uint64 { return s.resizes.Load() }

// Len returns the number of unmarked keys; quiescent states only.
func (s *Hash) Len() int { return len(s.Snapshot()) }

// Snapshot returns the keys in ascending order; quiescent states
// only. The list walk yields split order (bit-reversed), so the keys
// are sorted before returning.
func (s *Hash) Snapshot() []uint64 {
	var out []uint64
	w := s.l.pool.At(s.table.Load().buckets.At(0).Read().Handle()).next.Read()
	for w.Handle() != memory.NilHandle {
		n := s.l.pool.At(w.Handle())
		nw := n.next.Read()
		sk := n.key.Load()
		if !nw.Marked() && sk&1 == 1 {
			out = append(out, keyOfSkey(sk))
		}
		w = nw
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PoolStats exposes the node pool's recycling counters.
func (s *Hash) PoolStats() memory.PoolStats { return s.l.pool.Stats() }

// Progress reports NonBlocking (lock-freedom): the table pointer and
// shortcut words only ever help, and every list-level retry implies
// another operation's CAS succeeded.
func (s *Hash) Progress() core.Progress { return core.NonBlocking }

var _ Strong = (*Hash)(nil)
