package set

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
)

// hmNode is one pooled list node. key is atomic because a stale
// traverser may overlap a recycler rewriting the node (the read is
// discarded when validation fails, but must be data-race-free). next
// is a full tagged register: unlike the pooled Michael-Scott queue,
// where head/tail are the model's registers and node links are private
// plumbing, here the next words ARE the object's shared registers —
// every traversal step reads one, every update CASes one — so they are
// observed (the deterministic scheduler gates on them) and their tags
// accumulate across node lives.
type hmNode struct {
	key  atomic.Uint64
	next memory.TaggedRef[hmNode]
}

// list is the Harris/Michael engine shared by the plain sorted list
// (Harris) and the split-ordered hash set (Hash): the find / insert /
// delete / search window primitives over one pool of recycled nodes,
// parameterized by the register the traversal starts from. Harris
// always starts at its head register; Hash starts at a bucket
// sentinel's next register, which is what turns the O(n) walk into an
// O(1) expected one — the primitives themselves are identical, so the
// mark/unlink, tag-validation, and recycling disciplines are written
// (and model-checked) exactly once.
type list struct {
	pool *memory.Pool[hmNode]
	obs  memory.Observer
}

// newList returns the shared engine for procs processes (pids in
// [0, procs)), reporting node next-register accesses to obs (nil
// disables instrumentation).
func newList(procs int, obs memory.Observer) *list {
	l := &list{obs: obs}
	l.pool = memory.NewPool[hmNode](procs, func(n *hmNode) {
		// Fresh arena records only: recycled nodes keep their
		// accumulated next tag (monotonic across lives, like the pooled
		// Michael-Scott queue's counted pointers).
		n.next.Init(l.pool, memory.PackTagged(memory.NilHandle, 0), obs)
	})
	return l
}

// find walks from the start register to k's window. It returns the
// register holding the window (start itself or a node's next
// register), that register's word predW — whose handle is the first
// node with key >= k, or nil — the current content currW of that
// node's next register (meaningful only when such a node exists), and
// whether the node's key equals k. Marked nodes met on the way are
// unlinked (and retired to pid's free list when this process's unlink
// CAS wins). start must be a register that k's node can only ever
// appear after (the list head, or a bucket sentinel's next register
// for a key belonging to that bucket): a failed validation restarts
// from start, not from any global head.
//
// The verdict linearizes at the last validation read: at that instant
// pred's register still held predW, so the chain up to and including
// the current node was intact and the key read belongs to this life of
// the node.
func (l *list) find(pid int, start *memory.TaggedRef[hmNode], k uint64) (pred *memory.TaggedRef[hmNode], predW, currW memory.TaggedVal, found bool) {
restart:
	for {
		pred = start
		predW = pred.Read()
		for {
			curr := predW.Handle()
			if curr == memory.NilHandle {
				return pred, predW, 0, false
			}
			cn := l.pool.At(curr)
			currW = cn.next.Read()
			ckey := cn.key.Load()
			if pred.Read() != predW {
				continue restart // pred moved: curr may be another life
			}
			if currW.Marked() {
				// curr is logically deleted: unlink it from pred. A
				// marked node's next register is frozen (every CAS on
				// it expects an unmarked word), so its successor is
				// stable until the node is recycled — and recycling
				// waits for this unlink.
				unlinked := predW.Next(currW.Handle())
				if !pred.CAS(predW, unlinked) {
					continue restart
				}
				l.pool.Put(pid, curr)
				predW = unlinked
				continue
			}
			if ckey >= k {
				return pred, predW, currW, ckey == k
			}
			pred, predW = &cn.next, currW
		}
	}
}

// insert adds a node with key k into the window found from start; it
// reports whether k was newly inserted. Lock-free: a failed link CAS
// means some concurrent update succeeded.
func (l *list) insert(pid int, start *memory.TaggedRef[hmNode], k uint64) bool {
	for {
		pred, predW, _, found := l.find(pid, start, k)
		if found {
			return false
		}
		h := l.pool.Get(pid)
		n := l.pool.At(h)
		n.key.Store(k)
		// The node is private until the link CAS below publishes it;
		// advancing the next word off the register's current content
		// keeps the tag monotonic across the node's lives, so a stale
		// CAS from a previous life can never match.
		n.next.Write(n.next.Read().Next(predW.Handle()))
		if pred.CAS(predW, predW.Next(h)) {
			return true
		}
		l.pool.Put(pid, h) // never published: safe to recycle directly
	}
}

// delete removes k's node from the window found from start; it reports
// whether k was present. The two-step Harris discipline: mark the
// victim's next word (the linearization point), then unlink it —
// leaving the unlink to a later traversal if the CAS is lost.
func (l *list) delete(pid int, start *memory.TaggedRef[hmNode], k uint64) bool {
	for {
		pred, predW, currW, found := l.find(pid, start, k)
		if !found {
			return false
		}
		curr := predW.Handle()
		cn := l.pool.At(curr)
		if !cn.next.CAS(currW, currW.Next(currW.Handle()).WithMark()) {
			continue // curr changed under us: retry the whole window
		}
		if pred.CAS(predW, predW.Next(currW.Handle())) {
			l.pool.Put(pid, curr) // this process unlinked it: retire
		}
		return true
	}
}

// search reports whether k is reachable from start. It shares find's
// validated traversal (including the helping unlinks), so it is
// lock-free rather than wait-free.
func (l *list) search(pid int, start *memory.TaggedRef[hmNode], k uint64) bool {
	_, _, _, found := l.find(pid, start, k)
	return found
}

// Harris is the lock-free sorted linked-list set (Harris, DISC 2001,
// in Michael's SPAA 2002 tagged-pointer formulation, which is the one
// compatible with free-list node recycling) over a memory.Pool arena.
// Each node's next register packs 〈successor handle, sequence tag〉
// with the memory.TaggedMark deletion bit; Remove first marks the
// victim's next word (logical delete, atomic with the tag) and then
// unlinks it, and traversals help unlink marked nodes they pass.
//
// Recycling makes §2.2's ABA concrete on every link: a removed node
// goes back to a per-pid free list and can reappear anywhere in the
// list — same handle, different key — while a slow traverser still
// holds its old next word. Two disciplines keep that safe, both from
// DESIGN.md §3: every CAS is tag-validated (a stale word's tag can
// never match, because marks and reuses always advance it), and every
// traversal step is snapshot-validated — after reading the current
// node's fields, the predecessor's register is re-read; if it moved,
// the walk restarts from the head.
//
// Unlike Abortable's copy-on-write root, disjoint windows of the list
// update in parallel; the price is that Contains shares find's
// validated (hence restartable) traversal, so it is lock-free rather
// than wait-free. Operations take the calling pid for the pool's
// per-pid free lists. Every operation walks the whole prefix before
// its key — O(n) per operation; Hash is the same engine behind a
// split-ordered bucket index, at O(1) expected.
type Harris struct {
	l    *list
	head *memory.TaggedRef[hmNode]
}

// NewHarris returns an empty lock-free set for procs processes (pids
// in [0, procs)).
func NewHarris(procs int) *Harris {
	return NewHarrisObserved(procs, nil)
}

// NewHarrisObserved returns an instrumented lock-free set: head and
// node next-register accesses are reported to obs (nil disables
// instrumentation). Key loads and pool traffic are arena-private and
// not observed.
func NewHarrisObserved(procs int, obs memory.Observer) *Harris {
	l := newList(procs, obs)
	return &Harris{
		l:    l,
		head: memory.NewTaggedRefObserved(l.pool, memory.PackTagged(memory.NilHandle, 0), obs),
	}
}

// Add inserts k on behalf of pid; it reports whether k was newly
// inserted.
func (s *Harris) Add(pid int, k uint64) bool {
	return s.l.insert(pid, s.head, k)
}

// Remove deletes k on behalf of pid; it reports whether k was present.
func (s *Harris) Remove(pid int, k uint64) bool {
	return s.l.delete(pid, s.head, k)
}

// Contains reports membership of k on behalf of pid. It shares find's
// validated traversal (including the helping unlinks), so it is
// lock-free; see Abortable for the wait-free alternative.
func (s *Harris) Contains(pid int, k uint64) bool {
	return s.l.search(pid, s.head, k)
}

// Len returns the number of unmarked keys; quiescent states only.
func (s *Harris) Len() int { return len(s.Snapshot()) }

// Snapshot returns the unmarked keys in ascending order; quiescent
// states only.
func (s *Harris) Snapshot() []uint64 {
	var out []uint64
	w := s.head.Read()
	for w.Handle() != memory.NilHandle {
		n := s.l.pool.At(w.Handle())
		nw := n.next.Read()
		if !nw.Marked() {
			out = append(out, n.key.Load())
		}
		w = nw
	}
	return out
}

// PoolStats exposes the node pool's recycling counters.
func (s *Harris) PoolStats() memory.PoolStats { return s.l.pool.Stats() }

// Progress reports NonBlocking (lock-freedom).
func (s *Harris) Progress() core.Progress { return core.NonBlocking }

var _ Strong = (*Harris)(nil)
