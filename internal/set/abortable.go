package set

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// cowNode is one immutable cell of the copy-on-write sorted list.
// Nodes are never mutated after publication: an update path-copies the
// prefix it changes and shares the untouched suffix.
type cowNode struct {
	key  uint64
	next *cowNode
	// sealed is set only on the wrapper node installed by Seal: the
	// wrapper is not an element, it freezes the list hanging off next.
	sealed bool
}

// Abortable is the set tier's Figure 1 analogue: an abortable sorted
// set whose entire state hangs off one boxed root register. Because
// nodes are immutable and suffixes are shared, pointer identity of the
// root implies identity of the whole abstract state — so a single CAS
// on the root is a correct "compare the set, swap the set", the exact
// role TOP plays for the paper's weak stack. A mutating attempt that
// loses the root CAS returns ErrAborted with no effect; a solo attempt
// never aborts.
//
// TryContains (and the read-only outcomes of TryAdd/TryRemove — key
// already present / already absent) linearize at the single root read
// and never abort: membership checks are wait-free. The flip side is
// that all updates interfere at the root even on disjoint keys; Harris
// is the backend that trades the simple abort discipline for
// disjoint-window parallelism.
type Abortable struct {
	root *memory.Ref[cowNode]
}

// NewAbortable returns an empty abortable set.
func NewAbortable() *Abortable {
	return NewAbortableObserved(nil)
}

// NewAbortableObserved returns an abortable set whose root accesses
// are reported to obs first (nil disables instrumentation); the
// deterministic scheduler gates on them. Node memory is private and
// immutable, so the root is the object's only shared register.
func NewAbortableObserved(obs memory.Observer) *Abortable {
	return &Abortable{root: memory.NewRefObserved[cowNode](nil, obs)}
}

// search walks the immutable list from head to k's window: it returns
// the node holding k (or nil) and the nodes strictly before k, oldest
// first, for path copying.
func search(head *cowNode, k uint64) (prefix []*cowNode, at *cowNode, suffix *cowNode) {
	n := head
	for n != nil && n.key < k {
		prefix = append(prefix, n)
		n = n.next
	}
	if n != nil && n.key == k {
		return prefix, n, n.next
	}
	return prefix, nil, n
}

// rebuild copies prefix (in order) onto tail and returns the new head.
func rebuild(prefix []*cowNode, tail *cowNode) *cowNode {
	for i := len(prefix) - 1; i >= 0; i-- {
		tail = &cowNode{key: prefix[i].key, next: tail}
	}
	return tail
}

// TryAdd is one attempt to insert k. It returns (true, nil) when k was
// inserted, (false, nil) when k was already present (a read-only
// outcome, linearized at the root read), and (false, ErrAborted) when
// a concurrent update won the root CAS.
func (s *Abortable) TryAdd(k uint64) (bool, error) {
	old := s.root.Read()
	if old != nil && old.sealed {
		return false, ErrSealed
	}
	prefix, at, suffix := search(old, k)
	if at != nil {
		return false, nil
	}
	head := rebuild(prefix, &cowNode{key: k, next: suffix})
	if s.root.CAS(old, head) {
		return true, nil
	}
	return false, ErrAborted
}

// TryRemove is one attempt to delete k. It returns (true, nil) when k
// was removed, (false, nil) when k was absent, and (false, ErrAborted)
// on interference.
func (s *Abortable) TryRemove(k uint64) (bool, error) {
	old := s.root.Read()
	if old != nil && old.sealed {
		return false, ErrSealed
	}
	prefix, at, suffix := search(old, k)
	if at == nil {
		return false, nil
	}
	head := rebuild(prefix, suffix)
	if s.root.CAS(old, head) {
		return true, nil
	}
	return false, ErrAborted
}

// TryContains reports whether k is in the set. It reads one shared
// register and then walks private immutable memory: wait-free,
// allocation-free (unlike the update paths it never accumulates a
// prefix), and the error is always nil (it satisfies Weak so the
// strong constructions can treat the three operations uniformly).
func (s *Abortable) TryContains(k uint64) (bool, error) {
	n := s.root.Read()
	if n != nil && n.sealed {
		n = n.next
	}
	for n != nil && n.key < k {
		n = n.next
	}
	return n != nil && n.key == k, nil
}

// Contains is TryContains without the vestigial error.
func (s *Abortable) Contains(k uint64) bool {
	ok, _ := s.TryContains(k)
	return ok
}

// Len returns the number of keys (a wait-free snapshot walk).
func (s *Abortable) Len() int {
	n := 0
	c := s.root.Read()
	if c != nil && c.sealed {
		c = c.next
	}
	for ; c != nil; c = c.next {
		n++
	}
	return n
}

// Snapshot returns the keys in ascending order, from one atomic root
// read.
func (s *Abortable) Snapshot() []uint64 {
	var out []uint64
	c := s.root.Read()
	if c != nil && c.sealed {
		c = c.next
	}
	for ; c != nil; c = c.next {
		out = append(out, c.key)
	}
	return out
}

// Seal is one attempt to freeze the set for migration: it CASes the
// root to a wrapper node that retains the current list but makes every
// later update attempt return ErrSealed. Reads keep working through the
// wrapper. Crucially, an update that read the root before the seal
// landed fails its root CAS (the register no longer holds the head it
// read) — sealing wins every race with in-flight writers, so the
// snapshot taken after a successful Seal is the set's final abstract
// state. Seal returns nil when the set is sealed after the call
// (freshly, or already — sealing is idempotent) and ErrAborted when a
// concurrent update won the root CAS; a sealed root is never unsealed.
func (s *Abortable) Seal() error {
	old := s.root.Read()
	if old != nil && old.sealed {
		return nil
	}
	if s.root.CAS(old, &cowNode{sealed: true, next: old}) {
		return nil
	}
	return ErrAborted
}

// Sealed reports whether the set is frozen (one root read).
func (s *Abortable) Sealed() bool {
	n := s.root.Read()
	return n != nil && n.sealed
}

// Progress classifies the weak set: abortable, hence on the
// obstruction-free rung of the paper's hierarchy (§1.2).
func (s *Abortable) Progress() core.Progress { return core.ObstructionFree }

var _ Weak = (*Abortable)(nil)
