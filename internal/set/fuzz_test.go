package set

import (
	"testing"

	"repro/internal/spec"
)

// The cross-backend lockstep fuzzer lives at the repo root now
// (FuzzSetBackendsAgree in the public repro_test package): it iterates
// repro.Catalog() instead of enumerating backends by hand, with
// single-pid pools so every remove's node returns on the very next add
// — maximum same-handle reuse pressure on the next-register tags.
// FuzzHashVsSpec stays here for the split-ordering internals (table
// doublings, sentinel adoption, snapshot shape) the uniform surface
// cannot reach.

// FuzzHashVsSpec runs the split-ordered hash set in lockstep with
// spec.Set across table resizes: byte 2i picks the op, byte 2i+1 the
// key over a 256-key range — wide enough that a long input crosses
// several doublings (the load threshold is hashMaxLoad per bucket
// starting from hashInitialBuckets buckets), so answers are checked on
// both sides of every publish, through lazy bucket splits and adopted
// sentinels. The final Snapshot/Size must match the reference exactly.
func FuzzHashVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 2, 1})
	seed := make([]byte, 0, 128)
	for i := byte(0); i < 64; i++ { // forces at least one resize
		seed = append(seed, 0, i)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewHash(1)
		ref := spec.NewSet()
		for i := 0; i+1 < len(data); i += 2 {
			k := uint64(data[i+1])
			var got, want bool
			switch data[i] % 3 {
			case 0:
				got, want = s.Add(0, k), ref.Add(k)
			case 1:
				got, want = s.Remove(0, k), ref.Remove(k)
			default:
				got, want = s.Contains(0, k), ref.Contains(k)
			}
			if got != want {
				t.Fatalf("op %d key %d: hash %v, spec %v (buckets %d, resizes %d)",
					i, k, got, want, s.Buckets(), s.Resizes())
			}
		}
		if got, want := s.Size(), ref.Len(); got != want {
			t.Fatalf("Size() = %d, spec %d", got, want)
		}
		// Bidirectional final-state check: same length and strictly
		// ascending makes snapshot ⊆ spec imply snapshot == spec (a
		// duplicated key plus a dropped one cannot cancel out).
		snap := s.Snapshot()
		if got, want := len(snap), ref.Len(); got != want {
			t.Fatalf("Snapshot has %d keys, spec %d", got, want)
		}
		for i, k := range snap {
			if i > 0 && snap[i-1] >= k {
				t.Fatalf("Snapshot not strictly ascending at %d: %v", i, snap[i-1:i+1])
			}
			if !ref.Contains(k) {
				t.Fatalf("Snapshot holds %d, spec does not", k)
			}
		}
	})
}
