package set

import (
	"testing"

	"repro/internal/spec"
)

// FuzzSetBackendsAgree decodes a byte string into a solo op sequence
// and cross-checks every set backend against spec.Set on each answer.
// Byte 2i selects the op (mod 3: add, remove, contains); byte 2i+1 is
// the key (a small range, so duplicate adds, absent removes and
// membership flips all occur). The Harris backend runs with a
// single-pid pool, so every remove's node returns on the very next add
// — maximum same-handle reuse pressure on the next-register tags.
func FuzzSetBackendsAgree(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 2, 1})
	f.Add([]byte{0, 5, 0, 3, 1, 5, 0, 4, 1, 3, 2, 4})
	f.Add([]byte{0, 9, 1, 9, 0, 9, 1, 9, 0, 9, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		bes := backends(1)
		ref := spec.NewSet()
		for i := 0; i+1 < len(data); i += 2 {
			k := uint64(data[i+1] % 16)
			var want bool
			switch data[i] % 3 {
			case 0:
				want = ref.Add(k)
			case 1:
				want = ref.Remove(k)
			default:
				want = ref.Contains(k)
			}
			for _, be := range bes {
				var got bool
				switch data[i] % 3 {
				case 0:
					got = be.add(0, k)
				case 1:
					got = be.remove(0, k)
				default:
					got = be.contains(0, k)
				}
				if got != want {
					t.Fatalf("op %d: %s disagrees with spec on key %d: got %v want %v",
						i, be.name, k, got, want)
				}
			}
		}
	})
}
