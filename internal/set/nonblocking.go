package set

import (
	"repro/internal/core"
)

// NonBlocking is the Figure 2 construction over a weak set: retry each
// weak attempt until it returns non-⊥. Operations never abort; under
// contention at least one concurrent operation always terminates, but
// an individual update may retry unboundedly. A contention manager
// (§5) may pace the retries; the paper's bare loop is the nil manager.
type NonBlocking struct {
	weak   Weak
	m      core.Manager
	budget int
}

// NewNonBlocking returns a non-blocking set over a fresh abortable
// set, with the paper's bare retry loop.
func NewNonBlocking() *NonBlocking {
	return NewNonBlockingFrom(NewAbortable(), nil)
}

// NewNonBlockingFrom builds the Figure 2 construction over any weak
// set, pacing retries with m (nil for the bare loop).
func NewNonBlockingFrom(weak Weak, m core.Manager) *NonBlocking {
	return &NonBlocking{weak: weak, m: m}
}

// SetRetryPolicy replaces the contention manager and sets an attempt
// budget (0 = unbounded). The Strong set interface reports updates as
// booleans, so a budget-exhausted Add/Remove sheds the operation with
// no effect and reports false — accurate in effect terms (nothing was
// inserted or removed), indistinguishable from a no-op outcome. Call
// at quiescence.
func (s *NonBlocking) SetRetryPolicy(m core.Manager, budget int) {
	s.m, s.budget = m, budget
}

// RetryPolicy reports the current contention manager and attempt
// budget (tests and diagnostics).
func (s *NonBlocking) RetryPolicy() (core.Manager, int) { return s.m, s.budget }

func (s *NonBlocking) retry(try func() (bool, bool)) bool {
	if s.budget > 0 {
		ok, err := core.RetryBudget(s.m, s.budget, try)
		return ok && err == nil
	}
	return core.Retry(s.m, try)
}

// Add inserts k, retrying aborted attempts; it reports whether k was
// newly inserted. The pid is unused (kept for the Strong shape).
func (s *NonBlocking) Add(_ int, k uint64) bool {
	return s.retry(func() (bool, bool) {
		added, err := s.weak.TryAdd(k)
		return added, err == nil
	})
}

// Remove deletes k, retrying aborted attempts; it reports whether k
// was present.
func (s *NonBlocking) Remove(_ int, k uint64) bool {
	return s.retry(func() (bool, bool) {
		removed, err := s.weak.TryRemove(k)
		return removed, err == nil
	})
}

// Contains reports membership: the weak check never aborts, so the
// "retry loop" is a single wait-free attempt.
func (s *NonBlocking) Contains(_ int, k uint64) bool {
	ok, _ := s.weak.TryContains(k)
	return ok
}

// Snapshot returns the resident keys in ascending order when the
// underlying weak set can produce one (the copy-on-write list can);
// it returns nil otherwise. Meaningful at quiescence only.
func (s *NonBlocking) Snapshot() []uint64 {
	if sn, ok := s.weak.(interface{ Snapshot() []uint64 }); ok {
		return sn.Snapshot()
	}
	return nil
}

// Progress reports NonBlocking: at least one concurrent operation
// terminates.
func (s *NonBlocking) Progress() core.Progress { return core.NonBlocking }

var _ Strong = (*NonBlocking)(nil)
