package set

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestSplitOrderKeys pins the sort-key encoding: sentinels even,
// regulars odd, bijective, and every bucket's sentinel strictly before
// every key of that bucket at any power-of-two table size.
func TestSplitOrderKeys(t *testing.T) {
	for _, k := range []uint64{0, 1, 2, 3, 6, 255, 1 << 40, hashMaxKey} {
		sk := regularSkey(k)
		if sk&1 != 1 {
			t.Fatalf("regularSkey(%d) = %#x, want odd", k, sk)
		}
		if got := keyOfSkey(sk); got != k {
			t.Fatalf("keyOfSkey(regularSkey(%d)) = %d", k, got)
		}
	}
	for mask := uint64(1); mask <= 15; mask = mask<<1 | 1 {
		for k := uint64(0); k < 64; k++ {
			b := k & mask
			if sentinelSkey(b)&1 != 0 {
				t.Fatalf("sentinelSkey(%d) odd", b)
			}
			if sentinelSkey(b) >= regularSkey(k) {
				t.Fatalf("mask %d: sentinel %d (%#x) not before key %d (%#x)",
					mask, b, sentinelSkey(b), k, regularSkey(k))
			}
			// No foreign bucket's sentinel falls between b's sentinel
			// and k: k's walk from its sentinel crosses only its own
			// bucket (plus child sentinels of that bucket).
			for o := uint64(0); o <= mask; o++ {
				if o != b && sentinelSkey(o) > sentinelSkey(b) && sentinelSkey(o) < regularSkey(k) {
					t.Fatalf("mask %d: sentinel %d inside bucket %d's run before key %d", mask, o, b, k)
				}
			}
		}
	}
}

// TestHashKeyRangePanics checks the reserved-bit boundary.
func TestHashKeyRangePanics(t *testing.T) {
	s := NewHash(1)
	if !s.Add(0, hashMaxKey) {
		t.Fatal("Add(2^63-1) = false")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(2^63) did not panic")
		}
	}()
	s.Add(0, 1<<63)
}

// TestHashSoloVsSpec drives the hash set through a seeded solo stream
// wide enough to force several table doublings and cross-checks every
// answer against the sequential reference.
func TestHashSoloVsSpec(t *testing.T) {
	s := NewHash(1)
	ref := spec.NewSet()
	rng := workload.NewRNG(0xba5e)
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(512))
		var got, want bool
		switch rng.Intn(3) {
		case 0:
			got, want = s.Add(0, k), ref.Add(k)
		case 1:
			got, want = s.Remove(0, k), ref.Remove(k)
		default:
			got, want = s.Contains(0, k), ref.Contains(k)
		}
		if got != want {
			t.Fatalf("op %d key %d: hash %v, spec %v", i, k, got, want)
		}
	}
	if s.Resizes() == 0 {
		t.Fatalf("512-key stream never resized (buckets %d)", s.Buckets())
	}
	if got, want := s.Size(), ref.Len(); got != want {
		t.Fatalf("Size() = %d, spec %d", got, want)
	}
	if got, want := s.Len(), ref.Len(); got != want {
		t.Fatalf("Len() = %d, spec %d", got, want)
	}
	snap := s.Snapshot()
	for i, k := range snap {
		if i > 0 && snap[i-1] >= k {
			t.Fatalf("Snapshot not ascending at %d: %v", i, snap[i:])
		}
		if !ref.Contains(k) {
			t.Fatalf("Snapshot holds %d, spec does not", k)
		}
	}
}

// TestHashGrowth checks the doubling trigger and that growth preserves
// contents: every key stays reachable across every resize, including
// through stale-table windows (operations racing the publish).
func TestHashGrowth(t *testing.T) {
	s := NewHash(1)
	if s.Buckets() != hashInitialBuckets {
		t.Fatalf("fresh table has %d buckets, want %d", s.Buckets(), hashInitialBuckets)
	}
	const n = 1 << 10
	for k := uint64(0); k < n; k++ {
		if !s.Add(0, k) {
			t.Fatalf("Add(%d) = false", k)
		}
	}
	if s.Buckets() < n/(2*hashMaxLoad) {
		t.Fatalf("after %d adds: %d buckets (load %d) — doubling never kept up",
			n, s.Buckets(), hashMaxLoad)
	}
	if s.Resizes() == 0 {
		t.Fatal("no resize recorded")
	}
	for k := uint64(0); k < n; k++ {
		if !s.Contains(0, k) {
			t.Fatalf("key %d lost across resizes", k)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		if !s.Remove(0, k) {
			t.Fatalf("Remove(%d) = false", k)
		}
	}
	if got := s.Size(); got != n/2 {
		t.Fatalf("Size() = %d after removing half, want %d", got, n/2)
	}
	if got := s.Len(); got != n/2 {
		t.Fatalf("Len() = %d after removing half, want %d", got, n/2)
	}
}

// TestHashRecyclesNodes checks that the hash layer inherits the pool
// discipline: removed nodes come back through the per-pid free lists.
func TestHashRecyclesNodes(t *testing.T) {
	s := NewHash(1)
	for i := 0; i < 200; i++ {
		k := uint64(i % 8)
		s.Add(0, k)
		s.Remove(0, k)
	}
	if st := s.PoolStats(); st.Reuses == 0 {
		t.Fatal("churn never recycled a node")
	}
}

// TestHashWalkFlat measures the structural point of split ordering: a
// membership walk from the bucket sentinel touches O(load factor)
// nodes regardless of the resident population, where the plain list
// walks O(n). Counted via the observer (next-register reads only grow
// with chain length).
func TestHashWalkFlat(t *testing.T) {
	costOf := func(n uint64) uint64 {
		var st obsCounter
		s := NewHashObserved(1, &st)
		for k := uint64(0); k < n; k++ {
			s.Add(0, k)
		}
		st.n = 0
		const probes = 64
		for k := uint64(0); k < probes; k++ {
			s.Contains(0, k*(n/probes))
		}
		return st.n / probes
	}
	small, large := costOf(1<<8), costOf(1<<14)
	// 64× the keys should not cost anywhere near 64× the accesses;
	// allow generous constant-factor noise (lazy child sentinels etc.).
	if large > 4*small {
		t.Fatalf("per-Contains access cost grew %d → %d across a 64× population (not O(1))",
			small, large)
	}
}

// obsCounter counts observed shared accesses without gating them
// (solo use only; the bench/sched observers are the concurrent ones).
type obsCounter struct{ n uint64 }

func (o *obsCounter) OnAccess(memory.Kind) { o.n++ }
