package set

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/workload"
)

// backends returns every set backend under a uniform pid-aware strong
// surface (weak backends retried, which solo never needs more than
// once) plus its name.
func backends(procs int) []struct {
	name     string
	add      func(pid int, k uint64) bool
	remove   func(pid int, k uint64) bool
	contains func(pid int, k uint64) bool
} {
	ab := NewAbortable()
	nb := NewNonBlocking()
	sn := NewSensitive(procs)
	hr := NewHarris(procs)
	cb := NewCombining(procs)
	hs := NewHash(procs)
	return []struct {
		name     string
		add      func(pid int, k uint64) bool
		remove   func(pid int, k uint64) bool
		contains func(pid int, k uint64) bool
	}{
		{"abortable", func(_ int, k uint64) bool { ok, _ := ab.TryAdd(k); return ok },
			func(_ int, k uint64) bool { ok, _ := ab.TryRemove(k); return ok },
			func(_ int, k uint64) bool { return ab.Contains(k) }},
		{"non-blocking", nb.Add, nb.Remove, nb.Contains},
		{"sensitive", sn.Add, sn.Remove, sn.Contains},
		{"harris", hr.Add, hr.Remove, hr.Contains},
		{"combining", cb.Add, cb.Remove, cb.Contains},
		{"hash", hs.Add, hs.Remove, hs.Contains},
	}
}

// TestBackendsMatchSpecSolo drives every backend through one seeded
// solo op stream and cross-checks each answer against spec.Set.
func TestBackendsMatchSpecSolo(t *testing.T) {
	for _, be := range backends(2) {
		t.Run(be.name, func(t *testing.T) {
			ref := spec.NewSet()
			rng := workload.NewRNG(0x5e7 + 1)
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(32))
				switch rng.Intn(3) {
				case 0:
					if got, want := be.add(0, k), ref.Add(k); got != want {
						t.Fatalf("op %d: Add(%d) = %v, spec %v", i, k, got, want)
					}
				case 1:
					if got, want := be.remove(0, k), ref.Remove(k); got != want {
						t.Fatalf("op %d: Remove(%d) = %v, spec %v", i, k, got, want)
					}
				default:
					if got, want := be.contains(0, k), ref.Contains(k); got != want {
						t.Fatalf("op %d: Contains(%d) = %v, spec %v", i, k, got, want)
					}
				}
			}
		})
	}
}

// TestAbortableSnapshotSorted checks the COW list's quiescent views.
func TestAbortableSnapshotSorted(t *testing.T) {
	s := NewAbortable()
	for _, k := range []uint64{5, 1, 9, 3, 7, 1, 9} {
		s.TryAdd(k)
	}
	want := []uint64{1, 3, 5, 7, 9}
	got := s.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot() = %v, want %v", got, want)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", s.Len())
	}
	if ok, _ := s.TryRemove(5); !ok {
		t.Fatal("TryRemove(5) = false")
	}
	if s.Contains(5) {
		t.Fatal("Contains(5) after remove")
	}
}

// TestHarrisSnapshotSorted checks the lock-free list's quiescent views
// and that solo recycling (remove feeding the next add) keeps them
// exact.
func TestHarrisSnapshotSorted(t *testing.T) {
	s := NewHarris(1)
	for _, k := range []uint64{5, 1, 9} {
		if !s.Add(0, k) {
			t.Fatalf("Add(%d) = false", k)
		}
	}
	if !s.Remove(0, 5) || s.Remove(0, 5) {
		t.Fatal("Remove(5) sequence wrong")
	}
	if !s.Add(0, 4) { // reuses 5's node
		t.Fatal("Add(4) = false")
	}
	want := []uint64{1, 4, 9}
	got := s.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot() = %v, want %v", got, want)
		}
	}
	if st := s.PoolStats(); st.Reuses < 1 {
		t.Fatalf("PoolStats().Reuses = %d, want >= 1", st.Reuses)
	}
}

// TestSensitiveFastPath checks that solo updates stay on the lock-free
// shortcut and that Contains never touches the guard at all.
func TestSensitiveFastPath(t *testing.T) {
	s := NewSensitive(1)
	for i := 0; i < 100; i++ {
		s.Add(0, uint64(i))
		s.Contains(0, uint64(i))
	}
	st := s.Guard().Stats()
	if st.Slow != 0 {
		t.Fatalf("solo run took the slow path %d times", st.Slow)
	}
	if st.Fast != 100 {
		t.Fatalf("fast path count = %d, want 100 (Contains must bypass the guard)", st.Fast)
	}
}
