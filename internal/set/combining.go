package set

import (
	"repro/internal/combine"
	"repro/internal/core"
)

// setOpKind selects a published set operation.
type setOpKind uint8

const (
	opAdd setOpKind = iota
	opRemove
	opContains
)

// setOp is one published set request.
type setOp struct {
	kind setOpKind
	key  uint64
}

// Combining is the flat-combining set: the same interface and
// lock-free fast path as Sensitive, with the contended path batched —
// operations that hit interference publish their request and one
// combiner serves the whole batch per lock acquisition (see
// internal/combine). Because the weak backend's updates all CAS one
// root register, batching is particularly effective here: a combining
// pass applies its whole batch without ever losing a CAS.
type Combining struct {
	weak Weak
	core *combine.Core[setOp, bool]
}

// NewCombining returns a flat-combining set for n processes (pids in
// [0, n)) over a fresh abortable copy-on-write set.
func NewCombining(n int) *Combining {
	return NewCombiningFrom(NewAbortable(), n)
}

// NewCombiningFrom builds the flat-combining construction over any
// weak set for n processes.
func NewCombiningFrom(weak Weak, n int) *Combining {
	s := &Combining{weak: weak}
	s.core = combine.NewCore[setOp, bool](n, s.attempt)
	return s
}

// attempt adapts the weak set to combine.Core's try shape: one weak
// attempt by the executing process, ok=false iff it aborted.
func (s *Combining) attempt(_ int, op setOp) (bool, bool) {
	var res bool
	var err error
	switch op.kind {
	case opAdd:
		res, err = s.weak.TryAdd(op.key)
	case opRemove:
		res, err = s.weak.TryRemove(op.key)
	default:
		res, err = s.weak.TryContains(op.key)
	}
	return res, err == nil
}

// Add inserts k on behalf of pid; it reports whether k was newly
// inserted and never aborts.
func (s *Combining) Add(pid int, k uint64) bool {
	return s.core.Do(pid, setOp{kind: opAdd, key: k})
}

// Remove deletes k on behalf of pid; it reports whether k was present.
func (s *Combining) Remove(pid int, k uint64) bool {
	return s.core.Do(pid, setOp{kind: opRemove, key: k})
}

// Contains reports membership of k. The weak check never aborts, so
// solo and contended callers alike complete it on the fast path unless
// a combiner holds CONTENTION up — in which case the read is served,
// batched, by the combiner.
func (s *Combining) Contains(pid int, k uint64) bool {
	return s.core.Do(pid, setOp{kind: opContains, key: k})
}

// AddContended / RemoveContended / ContainsContended run entirely on
// the contended path (publish, no fast-path attempt); benchmarks use
// them to isolate the batched fallback, as E15 does for the stack.
func (s *Combining) AddContended(pid int, k uint64) bool {
	return s.core.DoContended(pid, setOp{kind: opAdd, key: k})
}

// RemoveContended is Remove on the forced contended path.
func (s *Combining) RemoveContended(pid int, k uint64) bool {
	return s.core.DoContended(pid, setOp{kind: opRemove, key: k})
}

// ContainsContended is Contains on the forced contended path.
func (s *Combining) ContainsContended(pid int, k uint64) bool {
	return s.core.DoContended(pid, setOp{kind: opContains, key: k})
}

// AbandonAdd publishes an add request that will never be collected —
// the scenario layer's model of a process crashing mid-add: the
// request is pending and a combiner may or may not serve it. pid must
// never operate on this set again.
func (s *Combining) AbandonAdd(pid int, k uint64) {
	s.core.Publish(pid, setOp{kind: opAdd, key: k})
}

// AbandonRemove is AbandonAdd for a remove request.
func (s *Combining) AbandonRemove(pid int, k uint64) {
	s.core.Publish(pid, setOp{kind: opRemove, key: k})
}

// ArmCombinerCrash arms the combine.Core fault injection: pid's next
// combining pass dies after `after` slot applications with the lease
// held. See combine.Core.ArmCombinerCrash.
func (s *Combining) ArmCombinerCrash(pid, after int) bool {
	return s.core.ArmCombinerCrash(pid, after)
}

// SetLeaseBudget forwards to combine.Core.SetLeaseBudget (tests).
func (s *Combining) SetLeaseBudget(n int) { s.core.SetLeaseBudget(n) }

// Stats exposes the fast-path and combining counters.
func (s *Combining) Stats() combine.Stats { return s.core.Stats() }

// ResetStats zeroes the counters (between quiescent phases only).
func (s *Combining) ResetStats() { s.core.ResetStats() }

// Progress reports StarvationFree: every published request is served
// by the current or next combining pass.
func (s *Combining) Progress() core.Progress { return core.StarvationFree }

var _ Strong = (*Combining)(nil)
