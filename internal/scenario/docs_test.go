package scenario

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docsRow matches the EXPERIMENTS.md scenario-library table rows:
//
//	| `steady-mixed` | all | 1 | balanced mixed baseline ... |
var docsRow = regexp.MustCompile("^\\s*\\| `([a-z-]+)` \\| ([a-z, ]+) \\| (\\d+) \\| (.+) \\|\\s*$")

// TestScenariosMatchDocs keeps the EXPERIMENTS.md scenario tables and
// scenario.Library() + scenario.CrashLibrary() + scenario.
// AdaptiveLibrary() in lockstep, both directions: every library
// scenario must appear in the tables with exactly its kind set and
// phase count, and every table row must name a library scenario — in
// the same order, so the docs read as the suites run (the E21 table
// first, then the E22 crash table, then the E23 adaptive table).
func TestScenariosMatchDocs(t *testing.T) {
	raw, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	type row struct {
		kinds  string
		phases int
	}
	documented := map[string]row{}
	var order []string
	for _, line := range strings.Split(string(raw), "\n") {
		m := docsRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		phases, err := strconv.Atoi(m[3])
		if err != nil {
			t.Fatalf("scenario row %q: bad phase count: %v", m[1], err)
		}
		documented[m[1]] = row{kinds: strings.TrimSpace(m[2]), phases: phases}
		order = append(order, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no scenario-library rows found in EXPERIMENTS.md (pattern drift?)")
	}

	lib := append(append(Library(), CrashLibrary()...), AdaptiveLibrary()...)
	if len(order) != len(lib) {
		t.Errorf("EXPERIMENTS.md documents %d scenarios, libraries have %d", len(order), len(lib))
	}
	inLibrary := map[string]bool{}
	for i, sc := range lib {
		inLibrary[sc.Name] = true
		doc, ok := documented[sc.Name]
		if !ok {
			t.Errorf("library scenario %s has no EXPERIMENTS.md table row", sc.Name)
			continue
		}
		kinds := "all"
		if len(sc.Kinds) > 0 {
			kinds = strings.Join(sc.Kinds, ", ")
		}
		if doc.kinds != kinds {
			t.Errorf("EXPERIMENTS.md kinds for %s drifted: docs %q, library %q", sc.Name, doc.kinds, kinds)
		}
		if doc.phases != len(sc.Phases) {
			t.Errorf("EXPERIMENTS.md phase count for %s drifted: docs %d, library %d", sc.Name, doc.phases, len(sc.Phases))
		}
		if i < len(order) && order[i] != sc.Name {
			t.Errorf("scenario order drifted at %d: docs %s, library %s", i, order[i], sc.Name)
		}
	}
	for name := range documented {
		if !inLibrary[name] {
			t.Errorf("EXPERIMENTS.md documents scenario %s but Library() does not carry it", name)
		}
	}
}
