package scenario

import (
	"fmt"
	"sync/atomic"

	"repro"
)

// Conservation is the shared accounting state behind the PR 7 crash
// bracket: produce/consume totals for the LIFO/FIFO kinds, per-key
// add/remove balances for sets, and the abandoned-operation counters
// that widen the exact check into a bracket under the §5 crash model.
// The scenario runner and the soak engine both feed one instance from
// their operation loops (Account/Book are atomic and safe from any
// number of goroutines) and judge it at quiescence with Verify; the
// soak monitor additionally polls LiveCheck mid-traffic.
type Conservation struct {
	kind    string
	maxKeys int

	produced, consumed          atomic.Uint64
	abandonedPush, abandonedPop atomic.Uint64
	adds, removes               []atomic.Int64
	abAdds, abRemoves           []atomic.Int64
}

// NewConservation returns accounting state for one instance of the
// given kind; maxKeys bounds the set key space (ignored for the
// container kinds).
func NewConservation(kind string, maxKeys int) *Conservation {
	c := &Conservation{kind: kind, maxKeys: maxKeys}
	if kind == repro.KindSet {
		c.adds = make([]atomic.Int64, maxKeys)
		c.removes = make([]atomic.Int64, maxKeys)
		c.abAdds = make([]atomic.Int64, maxKeys)
		c.abRemoves = make([]atomic.Int64, maxKeys)
	}
	return c
}

// Account books one successful operation (op code and returned value
// per the Ops contract).
func (c *Conservation) Account(op int, got, v uint64) {
	switch c.kind {
	case repro.KindSet:
		if op == 0 && got == 1 {
			c.adds[v].Add(1)
		}
		if op == 1 && got == 1 {
			c.removes[v].Add(1)
		}
	case repro.KindDeque:
		if op <= 1 {
			c.produced.Add(1)
		} else {
			c.consumed.Add(1)
		}
	default:
		if op == 0 {
			c.produced.Add(1)
		} else {
			c.consumed.Add(1)
		}
	}
}

// Book records one abandoned operation: published under the §5 crash
// model with the response never collected, so its effect is uncertain
// and the checks bracket it instead of counting it.
func (c *Conservation) Book(op int, v uint64) {
	switch c.kind {
	case repro.KindSet:
		if op == 0 {
			c.abAdds[v].Add(1)
		} else if op == 1 {
			c.abRemoves[v].Add(1)
		}
	case repro.KindDeque:
		if op <= 1 {
			c.abandonedPush.Add(1)
		} else {
			c.abandonedPop.Add(1)
		}
	default:
		if op == 0 {
			c.abandonedPush.Add(1)
		} else {
			c.abandonedPop.Add(1)
		}
	}
}

// LiveCheck is the audit a soak monitor can run without stopping
// traffic: nothing has ever been consumed that was not produced, up
// to the abandoned-push uncertainty plus an in-flight slack of one
// operation per process (an operation's effect lands in the object
// before its Account call runs, so a consumer may book the matching
// consume first). Each counter pair is loaded consumer-side first,
// making a transiently stale producer counter err on the safe side.
func (c *Conservation) LiveCheck(procs int) error {
	slack := int64(procs)
	if c.kind == repro.KindSet {
		for k := 0; k < c.maxKeys; k++ {
			rem := c.removes[k].Load()
			if ad, ab := c.adds[k].Load(), c.abAdds[k].Load(); rem > ad+ab+slack {
				return fmt.Errorf("key %d: %d removes vs %d adds (+%d abandoned, +%d in-flight)",
					k, rem, ad, ab, slack)
			}
		}
		return nil
	}
	cons := c.consumed.Load()
	if p, ab := c.produced.Load(), c.abandonedPush.Load(); cons > p+ab+uint64(slack) {
		return fmt.Errorf("%d consumed vs %d produced (+%d abandoned, +%d in-flight)",
			cons, p, ab, slack)
	}
	return nil
}

// Verify runs the quiescent conservation check: drain-and-count for
// the container kinds, per-key balance vs membership for sets. The
// caller must be the instance's only remaining client. Abandoned
// operations widen the equality into a bracket — with AP abandoned
// pushes and AC abandoned pops, produced − AC ≤ consumed + drained ≤
// produced + AP; sets bracket per key the same way. Without crashes
// the bracket collapses back to the exact check.
func (c *Conservation) Verify(drv repro.Ops) error {
	if c.kind == repro.KindSet {
		for k := 0; k < c.maxKeys; k++ {
			bal := c.adds[k].Load() - c.removes[k].Load()
			slackUp, slackDown := c.abAdds[k].Load(), c.abRemoves[k].Load()
			member, err := retryContains(drv, uint64(k))
			if err != nil {
				return fmt.Errorf("key %d: contains kept aborting at quiescence: %v", k, err)
			}
			var m int64
			if member {
				m = 1
			}
			if m-bal > slackUp || bal-m > slackDown {
				return fmt.Errorf("key %d: member=%v but add/remove balance %d (abandoned adds %d, removes %d)",
					k, member, bal, slackUp, slackDown)
			}
		}
		return nil
	}
	popOps := []int{1}
	if c.kind == repro.KindDeque {
		popOps = []int{2, 3}
	}
	ap, ac := c.abandonedPush.Load(), c.abandonedPop.Load()
	var drained uint64
	limit := c.produced.Load() + ap + 1 // at most this many values can remain
	for _, op := range popOps {
		aborts := 0
		for drained <= limit {
			_, err := drv.Do(0, op, 0)
			if err == nil {
				drained++
				aborts = 0
				continue
			}
			if isEmpty(err) {
				break
			}
			if aborts++; aborts > 1000 {
				return fmt.Errorf("drain kept aborting at quiescence: %v", err)
			}
		}
	}
	p, cons := c.produced.Load(), c.consumed.Load()
	if cons+drained > p+ap || cons+drained+ac < p {
		return fmt.Errorf("conservation: produced %d vs consumed %d + drained %d (abandoned pushes %d, pops %d)",
			p, cons, drained, ap, ac)
	}
	return nil
}
