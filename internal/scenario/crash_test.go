package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"time"

	"repro"
)

// churnSlowStreamSHA256 pins the churn-slow op stream byte-for-byte
// at Scale 0.01: the slow/crash schedule (who slows, who crashes,
// after how many ops, issuing which ops) is a pure function of the
// scenario and must not drift across changes to the runner. If an
// intentional generator change lands, re-derive the constant from the
// failure message — but know that it invalidates comparisons against
// every earlier BENCH_E21/E22 row.
const churnSlowStreamSHA256 = "5328ba93fd255e75b5a01abbbaf5edb46a6bfd81e0000607d07395ef630ad9a4"

func TestChurnSlowReplayPinnedBytes(t *testing.T) {
	sc, ok := ByName("churn-slow")
	if !ok {
		t.Fatal("churn-slow missing from the library")
	}
	b := replayBackends(t)[0] // stack/sensitive
	res := Run(b, sc, Options{Scale: 0.01, Record: true})
	if res.Conserved != nil {
		t.Fatalf("conservation: %v", res.Conserved)
	}
	sum := sha256.Sum256(res.OpStream)
	if got := hex.EncodeToString(sum[:]); got != churnSlowStreamSHA256 {
		t.Fatalf("churn-slow op stream drifted:\n  got  %s\n  want %s\n(len %d bytes)",
			got, churnSlowStreamSHA256, len(res.OpStream))
	}
}

// TestCrashLibraryShape pins the crash suite's structural invariants:
// complete descriptions, unique names, a recovery gate on every
// scenario, pid 0 never crashing, and — because a §5 crashed process
// may never take another step — no later phase reusing a crashed pid.
func TestCrashLibraryShape(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range CrashLibrary() {
		if sc.Name == "" || sc.Desc == "" || sc.Seed == 0 || len(sc.Phases) == 0 {
			t.Fatalf("crash scenario %q incompletely described", sc.Name)
		}
		if names[sc.Name] {
			t.Fatalf("duplicate crash scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if _, clash := ByName(sc.Name); clash {
			t.Fatalf("crash scenario %q collides with an E21 library name", sc.Name)
		}
		if sc.Gate.MaxRecovery == 0 || sc.Gate.MaxVarianceRatio == 0 {
			t.Fatalf("crash scenario %q ships without a recovery/variance gate", sc.Name)
		}
		crashes := false
		minSurvivors := 1 << 30
		for _, p := range sc.Phases {
			if p.Name == "" || p.Procs <= 0 || p.Ops <= 0 {
				t.Fatalf("crash scenario %q phase %+v incompletely described", sc.Name, p)
			}
			if p.Procs > minSurvivors {
				t.Fatalf("crash scenario %q phase %q reuses a crashed pid (procs %d > surviving %d)",
					sc.Name, p.Name, p.Procs, minSurvivors)
			}
			if p.CrashPids > 0 {
				crashes = true
				if p.CrashPids >= p.Procs {
					t.Fatalf("crash scenario %q phase %q crashes every pid (pid 0 must survive for drain)",
						sc.Name, p.Name)
				}
				if s := p.Procs - p.CrashPids; s < minSurvivors {
					minSurvivors = s
				}
			}
		}
		if !crashes {
			t.Fatalf("crash scenario %q crashes nobody", sc.Name)
		}
	}
	if _, ok := CrashByName("no-such-scenario"); ok {
		t.Fatal("CrashByName resolved a nonexistent scenario")
	}
}

// TestCrashScenarioSurvivors runs every crash scenario over one
// survivor-safe and one lease-takeover backend per applicable kind's
// worth of interest: conservation must bracket, survivors must make
// progress after the crash, and a recovery latency must be recorded.
func TestCrashScenarioSurvivors(t *testing.T) {
	var picks []repro.Backend
	for _, b := range repro.Catalog() {
		switch b.Name {
		case "stack/treiber", "stack/combining", "queue/combining", "set/combining", "deque/non-blocking":
			picks = append(picks, b)
		}
	}
	if len(picks) != 5 {
		t.Fatalf("expected 5 picked backends, got %d", len(picks))
	}
	for _, sc := range CrashLibrary() {
		for _, b := range picks {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			res := Run(b, sc, Options{Scale: 0.02})
			if res.Conserved != nil {
				t.Errorf("%s/%s: conservation bracket: %v", sc.Name, b.Name, res.Conserved)
			}
			if res.SurvivorOps == 0 {
				t.Errorf("%s/%s: no survivor progress after the crash", sc.Name, b.Name)
			}
			if res.RecoveryNS <= 0 {
				t.Errorf("%s/%s: no recovery latency recorded", sc.Name, b.Name)
			}
			if b.Robustness == "lease-takeover" && res.Abandoned == 0 {
				t.Errorf("%s/%s: mid-op crash abandoned nothing on a combining backend", sc.Name, b.Name)
			}
		}
	}
}

// fixtureCrashRows synthesizes a fully covered, gate-passing E22
// result: two reruns per crash scenario x applicable backend.
func fixtureCrashRows() []CrashRow {
	robustness := map[string]string{}
	for _, b := range repro.Catalog() {
		robustness[b.Name] = b.Robustness
	}
	var rows []CrashRow
	for _, sc := range CrashLibrary() {
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			for rerun := 0; rerun < 2; rerun++ {
				rows = append(rows, CrashRow{
					Scenario: sc.Name, Backend: b.Name, Rerun: rerun,
					Ops: 2000, OKOps: 1900, Abandoned: 2,
					OpsPerSec:   100000 + float64(rerun)*1000,
					SurvivorOps: 800, Recovery: 3 * time.Millisecond,
					Conserved: "ok", Robustness: robustness[b.Name],
				})
			}
		}
	}
	return rows
}

func TestEvaluateCrashPass(t *testing.T) {
	vs := EvaluateCrash(fixtureCrashRows())
	if got := failures(vs); len(got) != 0 {
		t.Fatalf("passing fixture failed gates: %v", got)
	}
	gates := map[string]int{}
	for _, v := range vs {
		gates[v.Gate]++
	}
	for _, g := range []string{"coverage", "survivor-progress", "recovery", "conservation", "classification", "variance"} {
		if gates[g] == 0 {
			t.Fatalf("no %q verdicts emitted (got %v)", g, gates)
		}
	}
	if gates["coverage"] != len(CrashLibrary()) {
		t.Fatalf("coverage verdicts = %d, want one per crash scenario (%d)", gates["coverage"], len(CrashLibrary()))
	}
}

func TestEvaluateCrashSurvivorStall(t *testing.T) {
	rows := fixtureCrashRows()
	for i := range rows {
		if rows[i].Scenario == "mid-op-storm" && rows[i].Backend == "stack/combining" && rows[i].Rerun == 1 {
			rows[i].SurvivorOps = 0 // one stalled rerun is enough to fail
		}
	}
	got := failures(EvaluateCrash(rows))
	if len(got) != 1 || got[0] != "mid-op-storm/stack/combining survivor-progress" {
		t.Fatalf("want exactly the survivor-progress failure, got %v", got)
	}
}

func TestEvaluateCrashRecoveryFail(t *testing.T) {
	rows := fixtureCrashRows()
	for i := range rows {
		if rows[i].Scenario == "combiner-crash" && rows[i].Backend == "queue/combining" {
			rows[i].Recovery = 30 * time.Second // both reruns: median trips
		}
	}
	got := failures(EvaluateCrash(rows))
	if len(got) != 1 || got[0] != "combiner-crash/queue/combining recovery" {
		t.Fatalf("want exactly the recovery failure, got %v", got)
	}
}

func TestEvaluateCrashClassificationDrift(t *testing.T) {
	rows := fixtureCrashRows()
	for i := range rows {
		if rows[i].Scenario == "crash-storm" && rows[i].Backend == "stack/treiber" {
			rows[i].Robustness = "lease-takeover" // rows disagree with the catalog
		}
	}
	got := failures(EvaluateCrash(rows))
	if len(got) != 1 || got[0] != "crash-storm/stack/treiber classification" {
		t.Fatalf("want exactly the classification failure, got %v", got)
	}
}

func TestEvaluateCrashUnknownScenario(t *testing.T) {
	rows := append(fixtureCrashRows(), CrashRow{Scenario: "who-dis", Backend: "stack/treiber",
		Ops: 1, OpsPerSec: 1, SurvivorOps: 1, Recovery: time.Millisecond,
		Conserved: "ok", Robustness: "survivor-safe"})
	got := failures(EvaluateCrash(rows))
	if len(got) != 1 || got[0] != "who-dis/stack/treiber known-scenario" {
		t.Fatalf("want exactly the known-scenario failure, got %v", got)
	}
}

func TestEvaluateCrashCoverageFail(t *testing.T) {
	var rows []CrashRow
	for _, r := range fixtureCrashRows() {
		if r.Scenario == "combiner-crash" && r.Backend == "set/combining" {
			continue
		}
		rows = append(rows, r)
	}
	got := failures(EvaluateCrash(rows))
	if len(got) != 1 || got[0] != "combiner-crash/* coverage" {
		t.Fatalf("want exactly the coverage failure, got %v", got)
	}
	for _, v := range EvaluateCrash(rows) {
		if v.Gate == "coverage" && v.Scenario == "combiner-crash" && !strings.Contains(v.Observed, "set/combining") {
			t.Fatalf("coverage verdict does not name the missing backend: %q", v.Observed)
		}
	}
}

func TestParseCrashRowsRoundTrip(t *testing.T) {
	headers := CrashRowColumns()
	cells := [][]string{
		{"mid-op-storm", "stack/combining", "1", "8", "2000", "1900", "3", "123456.789", "800", "3000000", "ok", "lease-takeover"},
	}
	rows, err := ParseCrashRows(headers, cells)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Scenario != "mid-op-storm" || r.Backend != "stack/combining" || r.Rerun != 1 ||
		r.Ops != 2000 || r.OKOps != 1900 || r.Abandoned != 3 ||
		r.OpsPerSec != 123456.789 || r.SurvivorOps != 800 ||
		r.Recovery != 3*time.Millisecond || r.Conserved != "ok" || r.Robustness != "lease-takeover" {
		t.Fatalf("round trip drifted: %+v", r)
	}
	if _, err := ParseCrashRows(headers[:6], nil); err == nil {
		t.Fatal("ParseCrashRows accepted a table missing required columns")
	}
}
