package scenario

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options tunes one runner invocation. The zero value runs the
// scenario at full size.
type Options struct {
	// Scale multiplies every phase's op budget and arrival interval
	// (0 = 1.0); quick/CI runs shrink with it. Budgets floor at
	// minOps per process so a heavily scaled run still says
	// something. The same Scale must be used when comparing runs —
	// it is part of the deterministic stream identity.
	Scale float64
	// Record captures the exact operation streams into
	// Result.OpStream (framed per phase x pid), for the
	// deterministic-replay tests. Off for measurement runs.
	Record bool
	// Capacity bounds bounded backends (0 = 1024).
	Capacity int
	// ExtraOpts are appended to the constructor options the runner
	// passes to repro.Drive — E23 uses it to hand the adaptive
	// meta-backends quick-scaled thresholds; backends that do not
	// consume an option ignore it.
	ExtraOpts []repro.Option
	// AfterPhase, when set, runs at the quiescent point after each
	// phase's processes have joined, with the phase index, its name,
	// and the driven backend (whose Instance field reaches the live
	// object). E23 samples per-phase adaptation stats here.
	AfterPhase func(phase int, name string, drv repro.Ops)
}

// minOps is the per-process floor a scaled phase budget never drops
// below: enough ops that quantiles and conservation stay meaningful.
const minOps = 32

// Result is one scenario run over one backend.
type Result struct {
	// Scenario and Backend name the cell this run measures.
	Scenario, Backend string
	// Procs is the scenario's maximum process count.
	Procs int
	// Ops is the number of operations attempted. It is a pure
	// function of (scenario, seed, Scale) — identical on every rerun
	// — because phase budgets are counts and crash points are fixed
	// indices, never wall-clock.
	Ops uint64
	// OKOps counts operations whose backend call returned nil
	// (timing-dependent on bounded/weak backends: full, empty, and
	// abort outcomes depend on the interleaving).
	OKOps uint64
	// Duration is the wall time across all phases, pacing idles
	// included (drain/verification excluded).
	Duration time.Duration
	// Hist holds every operation's latency (the backend call alone,
	// never pacing idles or injected pauses).
	Hist *metrics.Histogram
	// Conserved is nil when the post-run accounting holds: every
	// value popped/drained was pushed exactly once (stack, queue,
	// deque), or every key's membership equals its add/remove
	// balance (set). Crash and slow injection must not break it;
	// abandoned operations widen the check into a bracket (each may
	// or may not have taken effect) but never suspend it.
	Conserved error
	// Abandoned counts operations the §5 crash model left in flight:
	// published to the object (or killed mid-combining-pass by the
	// armed combiner crash) with the response never collected. Each
	// may or may not take effect — even after the run, a later
	// combiner can serve a dead process's pending slot — so the
	// conservation check brackets them instead of counting them.
	Abandoned uint64
	// SurvivorOps counts successful operations completed by
	// never-crashing processes after the first crash — the survivor-
	// progress number the E22 gate requires to stay positive.
	SurvivorOps uint64
	// RecoveryNS is the worst-process recovery latency: nanoseconds
	// from the latest crash to each surviving process's first
	// completed operation after it, maximized over processes. Zero
	// when nothing crashed.
	RecoveryNS int64
	// OpStream is the recorded op stream when Options.Record is set.
	OpStream []byte
	// Phases is the per-phase slice of the run: attempted ops and
	// wall time between the phase's spawn and join, in phase order.
	Phases []PhaseStat
}

// PhaseStat is one phase's slice of a Result.
type PhaseStat struct {
	Name     string
	Ops      uint64
	Duration time.Duration
}

// OpsPerSec is the phase's attempted-op throughput.
func (p PhaseStat) OpsPerSec() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Duration.Seconds()
}

// OpsPerSec is the run's attempted-op throughput.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// streamSeed derives the RNG seed of one process's stream in one
// phase: two splitmix64 steps over (seed, phase, pid) so neighboring
// pids and phases land in unrelated parts of the sequence space.
func streamSeed(seed uint64, phase, pid int) uint64 {
	s := workload.NewRNG(seed ^ 0x9e3779b97f4a7c15*uint64(phase+1)).Uint64()
	return workload.NewRNG(s ^ 0xa24baed4963ee407*uint64(pid+1)).Uint64()
}

// OpClass is the kind-independent operation class a workload mix
// draws; KindOp maps it onto a concrete backend op code. Exported so
// the soak engine shares the exact class-then-key stream shape the
// scenario suites pin.
type OpClass int

// The three classes every kind's op set collapses onto.
const (
	ClassWrite OpClass = iota
	ClassErase
	ClassRead
)

// DrawClass picks the next class from a (write, erase) mix, reads the
// remainder — the draw every phase mix and soak session makes.
func DrawClass(write, erase float64, rng *workload.RNG) OpClass {
	f := rng.Float64()
	switch {
	case f < write:
		return ClassWrite
	case f < write+erase:
		return ClassErase
	default:
		return ClassRead
	}
}

// draw picks the next class from the phase's mix (or role split).
func (p Phase) draw(pid int, rng *workload.RNG) OpClass {
	if p.Producers > 0 {
		if pid < p.Producers {
			return ClassWrite
		}
		return ClassErase
	}
	return DrawClass(p.Write, p.Erase, rng)
}

// Run executes sc against a fresh instance of backend b and returns
// the measured result. The op streams are fully determined by
// (sc, opt.Scale); only timing varies between invocations.
func Run(b repro.Backend, sc Scenario, opt Options) Result {
	scale := opt.Scale
	if scale <= 0 {
		scale = 1
	}
	capacity := opt.Capacity
	if capacity == 0 {
		capacity = 1024
	}
	procs := sc.MaxProcs()
	maxKeys := 0
	for _, p := range sc.Phases {
		if p := p.withDefaults(); p.KeyRange > maxKeys {
			maxKeys = p.KeyRange
		}
	}
	drv := repro.Drive(b, append([]repro.Option{
		repro.WithProcs(procs), repro.WithCapacity(capacity)}, opt.ExtraOpts...)...)

	res := Result{Scenario: sc.Name, Backend: b.Name, Procs: procs, Hist: &metrics.Histogram{}}

	// Conservation state: the exported bracket shared with the soak
	// engine. The abandoned bookings carry the crash model's
	// uncertainty: an abandoned op may or may not take effect, so
	// Verify brackets with them.
	cons := NewConservation(b.Kind, maxKeys)
	var attempted, okOps, abandoned, survivorOps atomic.Uint64
	var crashNS, recoveryNS atomic.Int64

	var streamMu sync.Mutex
	var streams []byte

	start := time.Now()
	// markCrash stamps the latest crash instant (ns since start, min
	// 1 so zero keeps meaning "nothing crashed yet").
	markCrash := func() {
		ns := time.Since(start).Nanoseconds()
		if ns < 1 {
			ns = 1
		}
		crashNS.Store(ns)
	}
	// book records one abandoned operation into the bracket state.
	book := func(op int, v uint64) {
		abandoned.Add(1)
		cons.Book(op, v)
	}
	for phaseIdx, phase := range sc.Phases {
		ph := phase.withDefaults()
		n := int(float64(ph.Ops) * scale)
		if n < minOps {
			n = minOps
		}
		interval := time.Duration(float64(ph.Interval) * scale)
		var zipf *workload.Zipf
		if ph.Dist == Zipfian {
			zipf = workload.NewZipf(ph.ZipfS, ph.KeyRange)
		}
		phaseStart := time.Now()
		var wg sync.WaitGroup
		for pid := 0; pid < ph.Procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := workload.NewRNG(streamSeed(sc.Seed, phaseIdx, pid))
				crashAt := -1
				if ph.CrashPids > 0 && pid >= ph.Procs-ph.CrashPids {
					crashAt = int(ph.CrashFrac * float64(n))
					if ph.CrashCombiner && drv.ArmCrash != nil {
						drv.ArmCrash(pid, 1)
					}
				}
				slow := ph.SlowPids > 0 && pid >= ph.Procs-ph.SlowPids
				var buf []byte
				if opt.Record {
					buf = make([]byte, 0, n*9)
				}
				var myAttempted, myOK uint64
				inOp := false
				var curOp int
				var curV uint64
				recovered := false
				// All totals flush in the defer: the armed combiner
				// crash kills this goroutine inside drv.Do (the pass
				// exits via runtime.Goexit with the lease held), so
				// nothing after the loop is guaranteed to run.
				defer func() {
					if inOp {
						// Died inside Do: the op stays pending in its
						// slot — abandoned, effect uncertain.
						myAttempted++
						book(curOp, curV)
						markCrash()
					}
					attempted.Add(myAttempted)
					okOps.Add(myOK)
					if opt.Record {
						framed := make([]byte, 0, len(buf)+6)
						framed = append(framed, byte(phaseIdx), byte(pid))
						framed = binary.BigEndian.AppendUint32(framed, uint32(len(buf)))
						framed = append(framed, buf...)
						streamMu.Lock()
						streams = append(streams, framed...)
						streamMu.Unlock()
					}
				}()
				tick := 1
				for i := 0; i < n; i++ {
					if i == crashAt {
						if ph.CrashMidOp && drv.Abandon != nil {
							// §5 mid-operation crash: publish the next
							// update and die without collecting the
							// response. Reads have nothing to abandon.
							class := ph.draw(pid, rng)
							op, v := KindOp(b.Kind, class, ph.KeyRange, zipf, rng, pid, i)
							if opt.Record {
								buf = append(buf, byte(op))
								buf = binary.BigEndian.AppendUint64(buf, v)
							}
							if !(b.Kind == repro.KindSet && op == 2) && drv.Abandon(pid, op, v) {
								book(op, v)
							}
						}
						markCrash()
						break // crashed: no further steps, ever
					}
					if interval > 0 && i > 0 && i%ph.Burst == 0 {
						// Open-loop arrival clock: sleep to the next
						// tick; a backlogged process has already
						// missed it and continues immediately.
						target := phaseStart.Add(time.Duration(tick) * interval)
						tick++
						if d := time.Until(target); d > 0 {
							time.Sleep(d)
						}
					}
					class := ph.draw(pid, rng)
					op, v := KindOp(b.Kind, class, ph.KeyRange, zipf, rng, pid, i)
					if opt.Record {
						buf = append(buf, byte(op))
						buf = binary.BigEndian.AppendUint64(buf, v)
					}
					t0 := time.Now()
					inOp, curOp, curV = true, op, v
					got, err := drv.Do(pid, op, v)
					inOp = false
					res.Hist.Record(time.Since(t0))
					myAttempted++
					if err == nil {
						myOK++
						cons.Account(op, got, v)
						if crashAt == -1 {
							if c := crashNS.Load(); c != 0 {
								survivorOps.Add(1)
								if !recovered {
									recovered = true
									d := time.Since(start).Nanoseconds() - c
									if d < 1 {
										d = 1
									}
									core.StoreMaxInt64(&recoveryNS, d)
								}
							}
						}
					}
					if slow && (i+1)%ph.SlowEvery == 0 {
						time.Sleep(ph.SlowPause)
					}
				}
			}(pid)
		}
		wg.Wait()
		// Every per-goroutine total has flushed (the defers ran before
		// Wait returned), so the attempted delta is this phase's ops.
		phaseOps := attempted.Load()
		for _, prev := range res.Phases {
			phaseOps -= prev.Ops
		}
		res.Phases = append(res.Phases, PhaseStat{
			Name: ph.Name, Ops: phaseOps, Duration: time.Since(phaseStart)})
		if opt.AfterPhase != nil {
			opt.AfterPhase(phaseIdx, ph.Name, drv)
		}
	}
	res.Duration = time.Since(start)
	res.Ops = attempted.Load()
	res.OKOps = okOps.Load()
	res.Abandoned = abandoned.Load()
	res.SurvivorOps = survivorOps.Load()
	res.RecoveryNS = recoveryNS.Load()
	if opt.Record {
		res.OpStream = canonicalize(streams, len(sc.Phases), procs)
	}
	res.Conserved = cons.Verify(drv)
	return res
}

// KindOp maps an op class onto the kind's op code and draws the
// value: sets draw a key in [0, keyRange) from zipf when non-nil
// (uniform otherwise), stacks and queues carry the collision-free
// (pid, i) encoding, deques pack (pid, i) into their uint32 domain
// and draw the end from the same stream. The RNG draw order per op is
// fixed (class, then key/side), which is what makes the recorded
// streams byte-stable.
func KindOp(kind string, class OpClass, keyRange int, zipf *workload.Zipf, rng *workload.RNG, pid, i int) (int, uint64) {
	switch kind {
	case repro.KindSet:
		var key uint64
		if zipf != nil {
			key = uint64(zipf.Next(rng))
		} else {
			key = uint64(rng.Intn(keyRange))
		}
		switch class {
		case ClassWrite:
			return 0, key
		case ClassErase:
			return 1, key
		default:
			return 2, key
		}
	case repro.KindDeque:
		side := int(rng.Uint64() & 1)
		v := uint64(pid)<<16 | uint64(i&0xffff)
		if class == ClassWrite {
			return side, v // 0 = pushL, 1 = pushR
		}
		return 2 + side, 0 // 2 = popL, 3 = popR
	default: // stack, queue: no read op; reads consume
		if class == ClassWrite {
			return 0, workload.Value(pid, i)
		}
		return 1, 0
	}
}

// isEmpty reports whether err is the kind's empty sentinel.
func isEmpty(err error) bool {
	return errors.Is(err, repro.ErrStackEmpty) ||
		errors.Is(err, repro.ErrQueueEmpty) ||
		errors.Is(err, repro.ErrDequeEmpty)
}

// retryContains asks membership at quiescence, absorbing a bounded
// number of (theoretically impossible solo) aborts.
func retryContains(drv repro.Ops, key uint64) (bool, error) {
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		var got uint64
		got, err = drv.Do(0, 2, key)
		if err == nil {
			return got == 1, nil
		}
	}
	return false, err
}

// canonicalize reorders the per-goroutine framed streams into (phase,
// pid) order so two runs of the same scenario compare byte-for-byte
// regardless of goroutine completion order.
func canonicalize(framed []byte, phases, procs int) []byte {
	index := make(map[[2]int][]byte)
	for off := 0; off+6 <= len(framed); {
		phase, pid := int(framed[off]), int(framed[off+1])
		n := int(binary.BigEndian.Uint32(framed[off+2 : off+6]))
		end := off + 6 + n
		index[[2]int{phase, pid}] = framed[off:end]
		off = end
	}
	out := make([]byte, 0, len(framed))
	for ph := 0; ph < phases; ph++ {
		for pid := 0; pid < procs; pid++ {
			out = append(out, index[[2]int{ph, pid}]...)
		}
	}
	return out
}
