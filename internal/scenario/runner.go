package scenario

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options tunes one runner invocation. The zero value runs the
// scenario at full size.
type Options struct {
	// Scale multiplies every phase's op budget and arrival interval
	// (0 = 1.0); quick/CI runs shrink with it. Budgets floor at
	// minOps per process so a heavily scaled run still says
	// something. The same Scale must be used when comparing runs —
	// it is part of the deterministic stream identity.
	Scale float64
	// Record captures the exact operation streams into
	// Result.OpStream (framed per phase x pid), for the
	// deterministic-replay tests. Off for measurement runs.
	Record bool
	// Capacity bounds bounded backends (0 = 1024).
	Capacity int
}

// minOps is the per-process floor a scaled phase budget never drops
// below: enough ops that quantiles and conservation stay meaningful.
const minOps = 32

// Result is one scenario run over one backend.
type Result struct {
	// Scenario and Backend name the cell this run measures.
	Scenario, Backend string
	// Procs is the scenario's maximum process count.
	Procs int
	// Ops is the number of operations attempted. It is a pure
	// function of (scenario, seed, Scale) — identical on every rerun
	// — because phase budgets are counts and crash points are fixed
	// indices, never wall-clock.
	Ops uint64
	// OKOps counts operations whose backend call returned nil
	// (timing-dependent on bounded/weak backends: full, empty, and
	// abort outcomes depend on the interleaving).
	OKOps uint64
	// Duration is the wall time across all phases, pacing idles
	// included (drain/verification excluded).
	Duration time.Duration
	// Hist holds every operation's latency (the backend call alone,
	// never pacing idles or injected pauses).
	Hist *metrics.Histogram
	// Conserved is nil when the post-run accounting holds: every
	// value popped/drained was pushed exactly once (stack, queue,
	// deque), or every key's membership equals its add/remove
	// balance (set). Crash and slow injection must not break it.
	Conserved error
	// OpStream is the recorded op stream when Options.Record is set.
	OpStream []byte
}

// OpsPerSec is the run's attempted-op throughput.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// streamSeed derives the RNG seed of one process's stream in one
// phase: two splitmix64 steps over (seed, phase, pid) so neighboring
// pids and phases land in unrelated parts of the sequence space.
func streamSeed(seed uint64, phase, pid int) uint64 {
	s := workload.NewRNG(seed ^ 0x9e3779b97f4a7c15*uint64(phase+1)).Uint64()
	return workload.NewRNG(s ^ 0xa24baed4963ee407*uint64(pid+1)).Uint64()
}

// opClass is the kind-independent operation class a phase mix draws.
type opClass int

const (
	classWrite opClass = iota
	classErase
	classRead
)

// draw picks the next class from the phase's mix (or role split).
func (p Phase) draw(pid int, rng *workload.RNG) opClass {
	if p.Producers > 0 {
		if pid < p.Producers {
			return classWrite
		}
		return classErase
	}
	f := rng.Float64()
	switch {
	case f < p.Write:
		return classWrite
	case f < p.Write+p.Erase:
		return classErase
	default:
		return classRead
	}
}

// Run executes sc against a fresh instance of backend b and returns
// the measured result. The op streams are fully determined by
// (sc, opt.Scale); only timing varies between invocations.
func Run(b repro.Backend, sc Scenario, opt Options) Result {
	scale := opt.Scale
	if scale <= 0 {
		scale = 1
	}
	capacity := opt.Capacity
	if capacity == 0 {
		capacity = 1024
	}
	procs := sc.MaxProcs()
	maxKeys := 0
	for _, p := range sc.Phases {
		if p := p.withDefaults(); p.KeyRange > maxKeys {
			maxKeys = p.KeyRange
		}
	}
	drv := repro.Drive(b, repro.WithProcs(procs), repro.WithCapacity(capacity))

	res := Result{Scenario: sc.Name, Backend: b.Name, Procs: procs, Hist: &metrics.Histogram{}}

	// Conservation state: produce/consume totals for the LIFO/FIFO
	// kinds, per-key add/remove balances for sets.
	var produced, consumed atomic.Uint64
	var adds, removes []atomic.Int64
	if b.Kind == repro.KindSet {
		adds = make([]atomic.Int64, maxKeys)
		removes = make([]atomic.Int64, maxKeys)
	}
	var attempted, okOps atomic.Uint64

	var streamMu sync.Mutex
	var streams []byte

	start := time.Now()
	for phaseIdx, phase := range sc.Phases {
		ph := phase.withDefaults()
		n := int(float64(ph.Ops) * scale)
		if n < minOps {
			n = minOps
		}
		interval := time.Duration(float64(ph.Interval) * scale)
		var zipf *workload.Zipf
		if ph.Dist == Zipfian {
			zipf = workload.NewZipf(ph.ZipfS, ph.KeyRange)
		}
		phaseStart := time.Now()
		var wg sync.WaitGroup
		for pid := 0; pid < ph.Procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := workload.NewRNG(streamSeed(sc.Seed, phaseIdx, pid))
				crashAt := -1
				if ph.CrashPids > 0 && pid >= ph.Procs-ph.CrashPids {
					crashAt = int(ph.CrashFrac * float64(n))
				}
				slow := ph.SlowPids > 0 && pid >= ph.Procs-ph.SlowPids
				var buf []byte
				if opt.Record {
					buf = make([]byte, 0, n*9)
				}
				var myAttempted, myOK uint64
				tick := 1
				for i := 0; i < n; i++ {
					if i == crashAt {
						break // crashed: no further steps, ever
					}
					if interval > 0 && i > 0 && i%ph.Burst == 0 {
						// Open-loop arrival clock: sleep to the next
						// tick; a backlogged process has already
						// missed it and continues immediately.
						target := phaseStart.Add(time.Duration(tick) * interval)
						tick++
						if d := time.Until(target); d > 0 {
							time.Sleep(d)
						}
					}
					class := ph.draw(pid, rng)
					op, v := nextOp(b.Kind, class, ph, zipf, rng, pid, i)
					if opt.Record {
						buf = append(buf, byte(op))
						buf = binary.BigEndian.AppendUint64(buf, v)
					}
					t0 := time.Now()
					got, err := drv.Do(pid, op, v)
					res.Hist.Record(time.Since(t0))
					myAttempted++
					if err == nil {
						myOK++
						account(b.Kind, op, got, v, &produced, &consumed, adds, removes)
					}
					if slow && (i+1)%ph.SlowEvery == 0 {
						time.Sleep(ph.SlowPause)
					}
				}
				attempted.Add(myAttempted)
				okOps.Add(myOK)
				if opt.Record {
					framed := make([]byte, 0, len(buf)+6)
					framed = append(framed, byte(phaseIdx), byte(pid))
					framed = binary.BigEndian.AppendUint32(framed, uint32(len(buf)))
					framed = append(framed, buf...)
					streamMu.Lock()
					streams = append(streams, framed...)
					streamMu.Unlock()
				}
			}(pid)
		}
		wg.Wait()
	}
	res.Duration = time.Since(start)
	res.Ops = attempted.Load()
	res.OKOps = okOps.Load()
	if opt.Record {
		res.OpStream = canonicalize(streams, len(sc.Phases), procs)
	}
	res.Conserved = verify(b.Kind, drv, maxKeys, &produced, &consumed, adds, removes)
	return res
}

// nextOp maps an op class onto the kind's op code and draws the
// value: sets draw a key from the phase distribution, stacks and
// queues carry the collision-free (pid, i) encoding, deques pack
// (pid, i) into their uint32 domain and draw the end from the same
// stream. The RNG draw order per op is fixed (class, then key/side),
// which is what makes the recorded streams byte-stable.
func nextOp(kind string, class opClass, ph Phase, zipf *workload.Zipf, rng *workload.RNG, pid, i int) (int, uint64) {
	switch kind {
	case repro.KindSet:
		var key uint64
		if zipf != nil {
			key = uint64(zipf.Next(rng))
		} else {
			key = uint64(rng.Intn(ph.KeyRange))
		}
		switch class {
		case classWrite:
			return 0, key
		case classErase:
			return 1, key
		default:
			return 2, key
		}
	case repro.KindDeque:
		side := int(rng.Uint64() & 1)
		v := uint64(pid)<<16 | uint64(i&0xffff)
		if class == classWrite {
			return side, v // 0 = pushL, 1 = pushR
		}
		return 2 + side, 0 // 2 = popL, 3 = popR
	default: // stack, queue: no read op; reads consume
		if class == classWrite {
			return 0, workload.Value(pid, i)
		}
		return 1, 0
	}
}

// account books one successful operation into the conservation state.
func account(kind string, op int, got, v uint64, produced, consumed *atomic.Uint64, adds, removes []atomic.Int64) {
	switch kind {
	case repro.KindSet:
		if op == 0 && got == 1 {
			adds[v].Add(1)
		}
		if op == 1 && got == 1 {
			removes[v].Add(1)
		}
	case repro.KindDeque:
		if op <= 1 {
			produced.Add(1)
		} else {
			consumed.Add(1)
		}
	default:
		if op == 0 {
			produced.Add(1)
		} else {
			consumed.Add(1)
		}
	}
}

// isEmpty reports whether err is the kind's empty sentinel.
func isEmpty(err error) bool {
	return errors.Is(err, repro.ErrStackEmpty) ||
		errors.Is(err, repro.ErrQueueEmpty) ||
		errors.Is(err, repro.ErrDequeEmpty)
}

// verify runs the quiescent conservation check: drain-and-count for
// the container kinds, per-key balance vs membership for sets. Weak
// backends cannot abort here — the runner is the only client left
// (the solo-never-aborts property E2 model-checks).
func verify(kind string, drv repro.Ops, maxKeys int, produced, consumed *atomic.Uint64, adds, removes []atomic.Int64) error {
	if kind == repro.KindSet {
		for k := 0; k < maxKeys; k++ {
			bal := adds[k].Load() - removes[k].Load()
			if bal < 0 || bal > 1 {
				return fmt.Errorf("key %d: add/remove balance %d (want 0 or 1)", k, bal)
			}
			member, err := retryContains(drv, uint64(k))
			if err != nil {
				return fmt.Errorf("key %d: contains kept aborting at quiescence: %v", k, err)
			}
			if member != (bal == 1) {
				return fmt.Errorf("key %d: member=%v but add/remove balance %d", k, member, bal)
			}
		}
		return nil
	}
	popOps := []int{1}
	if kind == repro.KindDeque {
		popOps = []int{2, 3}
	}
	var drained uint64
	limit := produced.Load() + 1 // at most this many values can remain
	for _, op := range popOps {
		aborts := 0
		for drained <= limit {
			_, err := drv.Do(0, op, 0)
			if err == nil {
				drained++
				aborts = 0
				continue
			}
			if isEmpty(err) {
				break
			}
			if aborts++; aborts > 1000 {
				return fmt.Errorf("drain kept aborting at quiescence: %v", err)
			}
		}
	}
	if p, c := produced.Load(), consumed.Load(); c+drained != p {
		return fmt.Errorf("conservation: produced %d != consumed %d + drained %d", p, c, drained)
	}
	return nil
}

// retryContains asks membership at quiescence, absorbing a bounded
// number of (theoretically impossible solo) aborts.
func retryContains(drv repro.Ops, key uint64) (bool, error) {
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		var got uint64
		got, err = drv.Do(0, 2, key)
		if err == nil {
			return got == 1, nil
		}
	}
	return false, err
}

// canonicalize reorders the per-goroutine framed streams into (phase,
// pid) order so two runs of the same scenario compare byte-for-byte
// regardless of goroutine completion order.
func canonicalize(framed []byte, phases, procs int) []byte {
	index := make(map[[2]int][]byte)
	for off := 0; off+6 <= len(framed); {
		phase, pid := int(framed[off]), int(framed[off+1])
		n := int(binary.BigEndian.Uint32(framed[off+2 : off+6]))
		end := off + 6 + n
		index[[2]int{phase, pid}] = framed[off:end]
		off = end
	}
	out := make([]byte, 0, len(framed))
	for ph := 0; ph < phases; ph++ {
		for pid := 0; pid < procs; pid++ {
			out = append(out, index[[2]int{ph, pid}]...)
		}
	}
	return out
}
