// Package scenario makes "as many scenarios as you can imagine"
// executable: a declarative workload-scenario type (named phases with
// per-phase process counts, operation mixes, key ranges and
// distributions, open-loop arrival pacing, and slow-process/crash
// injection), a deterministic runner that drives any repro.Catalog()
// entry through the uniform Drive() contract while recording per-op
// latency into metrics histograms, and the SLO/variance gate
// evaluation cmd/slogate applies to the runner's rows.
//
// Determinism is the design center: a scenario plus its seed fully
// determines every process's operation stream (kind, value, order —
// byte for byte), so reruns differ only in timing. That is what makes
// cross-rerun variance a meaningful gate and a latency regression
// attributable to the code rather than to the workload. Experiment
// E21 (internal/bench) runs the standard library of scenarios over
// every applicable catalog backend and emits one structured row per
// scenario x backend x rerun; cmd/slogate turns those rows into a
// release verdict.
package scenario
