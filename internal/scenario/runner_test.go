package scenario

import (
	"bytes"
	"testing"

	"repro"
)

// replayBackends picks one representative catalog backend per kind —
// the replay property is about the generator, so one backend per
// Drive() shape covers every op-code mapping.
func replayBackends(t *testing.T) []repro.Backend {
	t.Helper()
	want := map[string]string{
		repro.KindStack: "stack/sensitive",
		repro.KindQueue: "queue/sensitive",
		repro.KindDeque: "deque/sensitive",
		repro.KindSet:   "set/hashset",
	}
	var out []repro.Backend
	for _, b := range repro.Catalog() {
		if want[b.Kind] == b.Name {
			out = append(out, b)
		}
	}
	if len(out) != 4 {
		t.Fatalf("expected one backend per kind, got %d", len(out))
	}
	return out
}

// TestRunnerDeterministicReplay extends TestRNGDeterministic to the
// full engine: the same scenario + seed run twice must generate
// byte-identical op streams and identical attempted-op counts, for
// every library scenario across all four catalog kinds. (Succeeded
// counts may differ — full/empty/abort outcomes are interleaving-
// dependent — but what was *asked* of the object never does.)
func TestRunnerDeterministicReplay(t *testing.T) {
	opt := Options{Scale: 0.01, Record: true}
	for _, sc := range Library() {
		for _, b := range replayBackends(t) {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			r1 := Run(b, sc, opt)
			r2 := Run(b, sc, opt)
			if r1.Ops != r2.Ops {
				t.Errorf("%s/%s: attempted ops diverged: %d vs %d", sc.Name, b.Name, r1.Ops, r2.Ops)
			}
			if len(r1.OpStream) == 0 {
				t.Errorf("%s/%s: no op stream recorded", sc.Name, b.Name)
			}
			if !bytes.Equal(r1.OpStream, r2.OpStream) {
				t.Errorf("%s/%s: op streams diverged (len %d vs %d)", sc.Name, b.Name, len(r1.OpStream), len(r2.OpStream))
			}
			if r1.Conserved != nil {
				t.Errorf("%s/%s: conservation failed: %v", sc.Name, b.Name, r1.Conserved)
			}
		}
	}
}

// TestRunnerSeedMatters guards the other direction: a different seed
// must produce a different stream (else the seed is decorative).
func TestRunnerSeedMatters(t *testing.T) {
	sc, ok := ByName("steady-mixed")
	if !ok {
		t.Fatal("steady-mixed missing from the library")
	}
	b := replayBackends(t)[0]
	opt := Options{Scale: 0.01, Record: true}
	r1 := Run(b, sc, opt)
	sc.Seed++
	r2 := Run(b, sc, opt)
	if bytes.Equal(r1.OpStream, r2.OpStream) {
		t.Fatal("different seeds produced identical op streams")
	}
}

// TestRunnerConservationAllBackends drives one mixed scenario over
// every catalog entry at a small scale: the quiescent accounting must
// hold on all 24 backends, weak and bounded ones included.
func TestRunnerConservationAllBackends(t *testing.T) {
	sc, ok := ByName("steady-mixed")
	if !ok {
		t.Fatal("steady-mixed missing from the library")
	}
	for _, b := range repro.Catalog() {
		res := Run(b, sc, Options{Scale: 0.02})
		if res.Conserved != nil {
			t.Errorf("%s: %v", b.Name, res.Conserved)
		}
		if res.Hist.Count() != res.Ops {
			t.Errorf("%s: %d latency samples for %d ops", b.Name, res.Hist.Count(), res.Ops)
		}
	}
}

// TestRunnerCrashInjection pins the crash semantics: crashed pids
// stop at a fixed fraction of their budget, so the crash phase
// attempts deterministically fewer ops than the same scenario with
// the injection removed — and conservation still holds.
func TestRunnerCrashInjection(t *testing.T) {
	sc, ok := ByName("churn-slow")
	if !ok {
		t.Fatal("churn-slow missing from the library")
	}
	b := replayBackends(t)[1] // queue/sensitive
	withCrash := Run(b, sc, Options{Scale: 0.02})
	if withCrash.Conserved != nil {
		t.Fatalf("conservation with crashes: %v", withCrash.Conserved)
	}
	uncrashed := sc
	uncrashed.Phases = append([]Phase(nil), sc.Phases...)
	for i := range uncrashed.Phases {
		uncrashed.Phases[i].CrashPids = 0
	}
	full := Run(b, uncrashed, Options{Scale: 0.02})
	if withCrash.Ops >= full.Ops {
		t.Fatalf("crash injection did not shed ops: %d with vs %d without", withCrash.Ops, full.Ops)
	}
}

// TestRunnerProducerRoles checks the role split: with Producers set,
// producer pids only write and the rest only erase — visible as a
// producer-only op stream containing no consume op codes.
func TestRunnerProducerRoles(t *testing.T) {
	sc, ok := ByName("producer-consumer")
	if !ok {
		t.Fatal("producer-consumer missing from the library")
	}
	b := replayBackends(t)[0] // stack/sensitive
	res := Run(b, sc, Options{Scale: 0.01, Record: true})
	if res.Conserved != nil {
		t.Fatalf("conservation: %v", res.Conserved)
	}
	// Walk the framed stream: frames are (phase, pid, len, ops...)
	// with 9 bytes per op (code + value).
	for off := 0; off+6 <= len(res.OpStream); {
		pid := int(res.OpStream[off+1])
		n := int(uint32(res.OpStream[off+2])<<24 | uint32(res.OpStream[off+3])<<16 |
			uint32(res.OpStream[off+4])<<8 | uint32(res.OpStream[off+5]))
		body := res.OpStream[off+6 : off+6+n]
		for i := 0; i < len(body); i += 9 {
			op := body[i]
			if pid < 2 && op != 0 {
				t.Fatalf("producer pid %d issued op %d", pid, op)
			}
			if pid >= 2 && op != 1 {
				t.Fatalf("consumer pid %d issued op %d", pid, op)
			}
		}
		off += 6 + n
	}
}

func TestScenarioLibraryShape(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range Library() {
		if sc.Name == "" || sc.Desc == "" || sc.Seed == 0 || len(sc.Phases) == 0 {
			t.Fatalf("scenario %q incompletely described", sc.Name)
		}
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if sc.Gate.MaxP99 == 0 || sc.Gate.MaxVarianceRatio == 0 {
			t.Fatalf("scenario %q ships without a p99/variance gate", sc.Name)
		}
		for _, p := range sc.Phases {
			if p.Name == "" || p.Procs <= 0 || p.Ops <= 0 {
				t.Fatalf("scenario %q phase %+v incompletely described", sc.Name, p)
			}
			if p.Producers == 0 && p.Write+p.Erase > 1 {
				t.Fatalf("scenario %q phase %q mix exceeds 1", sc.Name, p.Name)
			}
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("ByName resolved a nonexistent scenario")
	}
}
